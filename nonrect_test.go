package nonrect

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	n := MustNewNest([]string{"N"},
		L("i", "0", "N-1"),
		L("j", "i+1", "N"),
	)
	res, err := Collapse(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	var sum atomic.Int64
	err = CollapsedFor(res, map[string]int64{"N": 100}, 8, Schedule{Kind: Static},
		func(tid int, idx []int64) {
			count.Add(1)
			sum.Add(idx[0] + idx[1])
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := count.Load(), int64(99*100/2); got != want {
		t.Errorf("iterations = %d, want %d", got, want)
	}
	// sum over triangle of (i+j): brute force.
	var want int64
	for i := int64(0); i < 99; i++ {
		for j := i + 1; j < 100; j++ {
			want += i + j
		}
	}
	if sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestFacadePolynomials(t *testing.T) {
	n := MustNewNest([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
	if got := Ranking(n).String(); !strings.Contains(got, "N*i") {
		t.Errorf("Ranking = %s", got)
	}
	c := Count(n)
	v, err := c.EvalInt64(map[string]int64{"N": 10})
	if err != nil || !v.IsInt() || v.Num().Int64() != 45 {
		t.Errorf("Count(10) = %v, %v", v, err)
	}
}

func TestFacadeParseAndEmit(t *testing.T) {
	prog, err := ParseC(`
#pragma omp parallel for collapse(2) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++)
    touch(i, j);
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collapse(prog.Nest, prog.CollapseCount)
	if err != nil {
		t.Fatal(err)
	}
	src, err := EmitC(res, CodegenOptions{Scheme: SchemeFirstIteration, Body: prog.Body})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"first_iteration", "touch(i, j);", "csqrt("} {
		if !strings.Contains(src, frag) {
			t.Errorf("emitted C missing %q:\n%s", frag, src)
		}
	}
	goSrc, err := EmitGo(res, CodegenOptions{Scheme: SchemePerIteration})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(GoFile("demo", goSrc), "package demo") {
		t.Error("GoFile wrapper broken")
	}
}

func TestFacadeBinarySearchMode(t *testing.T) {
	n := MustNewNest([]string{"N"}, L("i", "0", "N"), L("j", "i", "N"))
	res, err := CollapseBinarySearch(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	if err := CollapsedFor(res, map[string]int64{"N": 30}, 4, Schedule{Kind: Dynamic, Chunk: 8},
		func(int, []int64) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 30*31/2 {
		t.Errorf("count = %d", got)
	}
}

func TestFacadeSIMDAndWarp(t *testing.T) {
	n := MustNewNest([]string{"N"}, L("i", "0", "N"), L("j", "0", "i+1"))
	res, err := Collapse(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 25}
	var c1, c2 atomic.Int64
	if err := CollapsedForSIMD(res, params, 3, 8, func(tid int, batch [][]int64) {
		c1.Add(int64(len(batch)))
	}); err != nil {
		t.Fatal(err)
	}
	if err := CollapsedForWarp(res, params, 16, func(lane int, pc int64, idx []int64) {
		c2.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	want := int64(25 * 26 / 2)
	if c1.Load() != want || c2.Load() != want {
		t.Errorf("simd %d warp %d, want %d", c1.Load(), c2.Load(), want)
	}
}

func TestFacadeParallelFor(t *testing.T) {
	var sum atomic.Int64
	ParallelFor(5, 0, 100, Schedule{Kind: Guided}, func(tid int, i int64) { sum.Add(i) })
	if sum.Load() != 4950 {
		t.Errorf("sum = %d", sum.Load())
	}
}
