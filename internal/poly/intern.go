package poly

import (
	"encoding/binary"
	"sync"
)

// Variable interning. Variable names are global to the process and few
// (nest parameters, iterators, pc, a handful of substitution
// temporaries), so every name is interned once into a small dense ID
// space. Terms then carry []varExp pairs of int32 IDs instead of
// map[string]int exponent maps, and monomial identity becomes a packed
// byte-string key built with binary encoding rather than fmt.Sprintf —
// the difference between one small allocation and a formatted sort per
// monomial on the Faulhaber/ranking construction path.
var (
	internMu    sync.RWMutex
	internNames []string // id -> name
	internIDs   = map[string]int32{}
)

// varID interns name, returning its dense ID.
func varID(name string) int32 {
	internMu.RLock()
	id, ok := internIDs[name]
	internMu.RUnlock()
	if ok {
		return id
	}
	internMu.Lock()
	defer internMu.Unlock()
	if id, ok := internIDs[name]; ok {
		return id
	}
	id = int32(len(internNames))
	internNames = append(internNames, name)
	internIDs[name] = id
	return id
}

// varIDIfKnown looks a name up without interning it (for read-only
// queries like DegreeIn over names that may never have been seen).
func varIDIfKnown(name string) (int32, bool) {
	internMu.RLock()
	id, ok := internIDs[name]
	internMu.RUnlock()
	return id, ok
}

// varNameOf returns the interned spelling of id.
func varNameOf(id int32) string {
	internMu.RLock()
	name := internNames[id]
	internMu.RUnlock()
	return name
}

// varExp is one variable factor of a monomial: interned variable ID and
// its exponent (> 0). Slices of varExp are kept sorted by ID and treated
// as immutable once stored in a term.
type varExp struct {
	id  int32
	exp int32
}

// packKey encodes a sorted exponent vector as a comparable string: 8
// big-endian bytes per factor. The empty monomial packs to "".
func packKey(exps []varExp) string {
	if len(exps) == 0 {
		return ""
	}
	buf := make([]byte, 8*len(exps))
	for i, ve := range exps {
		binary.BigEndian.PutUint32(buf[8*i:], uint32(ve.id))
		binary.BigEndian.PutUint32(buf[8*i+4:], uint32(ve.exp))
	}
	return string(buf)
}
