package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket semantics: an
// observation v lands in the first bucket with v <= bound; values above
// the last bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // boundary value belongs to its bucket
		{1.0000001, 1}, {2, 1},
		{2.5, 2}, {4, 2},
		{4.0000001, 3}, {100, 3}, // overflow
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := []int64{3, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 9 {
		t.Errorf("Count = %d, want 9", h.Count())
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", h.Sum(), sum)
	}
}

// TestHistogramUnsortedBounds checks that bounds are sorted on
// construction.
func TestHistogramUnsortedBounds(t *testing.T) {
	h := newHistogram([]float64{4, 1, 2})
	if h.bucketIndex(1.5) != 1 {
		t.Errorf("bounds not sorted: bucketIndex(1.5) = %d", h.bucketIndex(1.5))
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this also proves the
// implementations are data-race free.
func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				// Counter handles are shared: looking one up again must
				// return the same counter.
				r.Counter("c").Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2*workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), 2*workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-0.25*workers*per) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), 0.25*workers*per)
	}
}

// TestSnapshotGoldenJSON pins the deterministic JSON serialisation of a
// registry snapshot (sorted keys, fixed field order).
func TestSnapshotGoldenJSON(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("g").Set(7)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"counters":{"a":1,"b":2},"gauges":{"g":7},` +
		`"histograms":{"h":{"bounds":[1,2],"counts":[1,0,1],"count":2,"sum":3.5}},"spans":0}`
	if string(data) != golden {
		t.Errorf("snapshot JSON:\n got %s\nwant %s", data, golden)
	}
}

// TestSpansAndChromeTrace records spans and validates the Chrome
// trace-event export structure.
func TestSpansAndChromeTrace(t *testing.T) {
	r := New()
	sp := r.StartSpan("compile", "phase1", 0)
	time.Sleep(time.Millisecond)
	sp.End(Arg{Name: "k", Value: 42})
	r.Trace().Add(Event{Name: "chunk", Cat: "chunk", TID: 3,
		Start: 10 * time.Microsecond, Dur: 5 * time.Microsecond,
		Args: []Arg{{Name: "iters", Value: 9}}})

	events := r.Trace().Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "phase1" || events[0].Dur <= 0 {
		t.Errorf("bad span event: %+v", events[0])
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			PID  int              `json:"pid"`
			TID  int              `json:"tid"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" || len(trace.TraceEvents) != 2 {
		t.Fatalf("bad trace envelope: %+v", trace)
	}
	chunk := trace.TraceEvents[1]
	if chunk.Ph != "X" || chunk.TID != 3 || chunk.Ts != 10 || chunk.Dur != 5 ||
		chunk.Args["iters"] != 9 {
		t.Errorf("bad chunk event: %+v", chunk)
	}
}

// TestImbalanceMath checks the report statistics on a known load set.
func TestImbalanceMath(t *testing.T) {
	rep := NewImbalance([]ThreadLoad{
		{TID: 0, Iterations: 10, Busy: 10 * time.Second, Chunks: 1},
		{TID: 1, Iterations: 30, Busy: 30 * time.Second, Chunks: 1},
	})
	if rep.TotalIter != 40 || rep.MaxIter != 30 {
		t.Errorf("iters: total %d max %d", rep.TotalIter, rep.MaxIter)
	}
	if math.Abs(rep.IterImbalance-1.5) > 1e-12 {
		t.Errorf("IterImbalance = %g, want 1.5", rep.IterImbalance)
	}
	// mean 20, deviations ±10 -> stddev 10, cv 0.5
	if math.Abs(rep.IterCV-0.5) > 1e-12 {
		t.Errorf("IterCV = %g, want 0.5", rep.IterCV)
	}
	if math.Abs(rep.BusyImbalance-1.5) > 1e-12 || math.Abs(rep.BusyCV-0.5) > 1e-12 {
		t.Errorf("busy: imbalance %g cv %g", rep.BusyImbalance, rep.BusyCV)
	}
	if !strings.Contains(rep.String(), "max/mean 1.5000") {
		t.Errorf("report rendering:\n%s", rep.String())
	}
}

// TestTraceImbalance derives a report from chunk events, including an
// idle thread row.
func TestTraceImbalance(t *testing.T) {
	r := New()
	tr := r.Trace()
	tr.Add(Event{Name: "static", Cat: "chunk", TID: 0, Dur: 2 * time.Millisecond,
		Args: []Arg{{Name: "iters", Value: 100}, {Name: "recovery_ns", Value: 500}}})
	tr.Add(Event{Name: "static", Cat: "chunk", TID: 0, Dur: 1 * time.Millisecond,
		Args: []Arg{{Name: "iters", Value: 50}}})
	tr.Add(Event{Name: "static", Cat: "chunk", TID: 1, Dur: 3 * time.Millisecond,
		Args: []Arg{{Name: "iters", Value: 150}, {Name: "increment_ns", Value: 700}}})
	tr.Add(Event{Name: "other", Cat: "compile", TID: 0, Dur: time.Second}) // ignored
	rep := tr.Imbalance("chunk", 3)
	if len(rep.Threads) != 3 {
		t.Fatalf("threads = %d, want 3 (idle thread must appear)", len(rep.Threads))
	}
	if rep.Threads[0].Chunks != 2 || rep.Threads[0].Iterations != 150 ||
		rep.Threads[0].Recovery != 500 {
		t.Errorf("thread 0: %+v", rep.Threads[0])
	}
	if rep.Threads[1].Increment != 700 {
		t.Errorf("thread 1 increment = %v", rep.Threads[1].Increment)
	}
	if rep.Threads[2].Chunks != 0 {
		t.Errorf("thread 2 should be idle: %+v", rep.Threads[2])
	}
	if rep.TotalIter != 300 {
		t.Errorf("TotalIter = %d", rep.TotalIter)
	}
}

// TestNilSafety exercises every method on nil handles: all must be
// no-ops, so instrumented code can run unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	if r.Counter("x").Value() != 0 {
		t.Error("nil counter value")
	}
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	if r.Gauge("x").Value() != 0 {
		t.Error("nil gauge value")
	}
	r.Histogram("x", nil).Observe(1)
	if r.Histogram("x", nil).Count() != 0 || r.Histogram("x", nil).Sum() != 0 {
		t.Error("nil histogram")
	}
	sp := r.StartSpan("c", "n", 0)
	sp.End(Arg{Name: "a", Value: 1})
	r.Trace().Add(Event{})
	if r.Trace().Len() != 0 || r.Trace().Events() != nil || r.Trace().Now() != 0 {
		t.Error("nil trace")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Spans != 0 {
		t.Error("nil snapshot")
	}
	if !strings.Contains(r.Report(), "disabled") {
		t.Error("nil report")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("nil chrome trace not valid JSON")
	}
	rep := r.Trace().Imbalance("chunk", 2)
	if len(rep.Threads) != 2 || rep.TotalIter != 0 {
		t.Errorf("nil trace imbalance: %+v", rep)
	}
}

// TestReportRendering smoke-tests the human-readable report.
func TestReportRendering(t *testing.T) {
	r := New()
	r.Counter("unrank.root_evals").Add(12)
	r.Histogram("omp.chunk_seconds", nil).Observe(0.001)
	sp := r.StartSpan("compile", "ehrhart.Ranking", 0)
	sp.End()
	rep := r.Report()
	for _, frag := range []string{
		"spans (1 events)", "compile/ehrhart.Ranking",
		"counters", "unrank.root_evals", "histograms", "omp.chunk_seconds",
	} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	if empty := New().Report(); !strings.Contains(empty, "no telemetry recorded") {
		t.Errorf("empty report: %q", empty)
	}
}
