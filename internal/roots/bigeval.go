package roots

// Adaptive-precision evaluation of radical root expressions.
//
// The complex128 fast path (Expr.Eval, Compile) loses precision once the
// ranking polynomial's coefficients approach 2^53: near term boundaries
// the discriminant of the quadratic/cubic formulas cancels catastrophically
// and the floored real part can be off by far more than the exact ±1
// correction tolerates. This file provides the escalation rungs: the same
// expression trees evaluated over big.Float complex pairs at a caller-
// chosen precision, together with a *certified error radius* — an upper
// bound on |computed − exact| propagated through every node (first-order
// interval/ulp propagation with conservative constants). The radius lets
// the unranker decide whether a floor is provably correct (the certified
// interval [Re−Rad, Re+Rad] contains no integer boundary) or whether it
// must escalate to the next precision tier or to exact binary search.
//
// Soundness of recovery never rests on the radius alone: the unranker
// re-verifies every floor with exact integer arithmetic (the monotone
// correction step). The radius only gates *when* a tier's floor is worth
// attempting, so a too-small radius costs correctness nothing — at worst
// a wasted correction attempt before escalating.

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"
)

// BigVal is an arbitrary-precision complex value with a certified error
// radius: |computed − exact| <= Rad (as complex modulus; each component
// individually satisfies the same bound). Rad is +Inf when no certificate
// could be established (division by a near-zero quantity, a radical of a
// value indistinguishable from zero) — callers must then escalate.
type BigVal struct {
	Re, Im *big.Float
	Rad    float64
}

// IsCertified reports whether the value carries a finite error bound.
func (v BigVal) IsCertified() bool {
	return !math.IsInf(v.Rad, 0) && !math.IsNaN(v.Rad)
}

// Complex128 rounds the value to a complex128 (for diagnostics).
func (v BigVal) Complex128() complex128 {
	re, _ := v.Re.Float64()
	im, _ := v.Im.Float64()
	return complex(re, im)
}

// FloorCertain returns floor(Re) when the certified interval
// [Re−Rad, Re+Rad] lies strictly within one unit interval — i.e. the
// floor of the exact value is provably the returned one — and the value
// fits in int64. ok is false when the radius straddles an integer
// boundary, the value is uncertified, or the floor exceeds int64.
func (v BigVal) FloorCertain() (floor int64, ok bool) {
	if !v.IsCertified() {
		return 0, false
	}
	rad := new(big.Float).SetPrec(v.Re.Prec()).SetFloat64(v.Rad)
	lo := new(big.Float).SetPrec(v.Re.Prec()).Sub(v.Re, rad)
	hi := new(big.Float).SetPrec(v.Re.Prec()).Add(v.Re, rad)
	flo, ok1 := floorInt64(lo)
	fhi, ok2 := floorInt64(hi)
	if !ok1 || !ok2 || flo != fhi {
		return 0, false
	}
	return flo, true
}

// FloorNear returns floor(Re+Rad) when the radius is small enough that
// the certified interval [Re−Rad, Re+Rad] contains at most one integer
// boundary (Rad < 1/4): the returned floor is then within one of the
// exact floor. It is the big-tier analogue of the float64 path's nudge
// for roots that land (to within the radius) exactly on an integer —
// FloorCertain must refuse those, but a caller holding an exact ±1
// verification step (the unranker's monotone correction) can still use
// the near-certain floor soundly.
func (v BigVal) FloorNear() (int64, bool) {
	if !v.IsCertified() || v.Rad >= 0.25 {
		return 0, false
	}
	hi := new(big.Float).SetPrec(v.Re.Prec()).Add(
		v.Re, new(big.Float).SetPrec(v.Re.Prec()).SetFloat64(v.Rad))
	return floorInt64(hi)
}

// ImagNegligible reports whether the imaginary component is consistent
// with an exactly real value: |Im| within twice the certified radius
// (plus a tiny absolute slack for radius-zero linear expressions).
func (v BigVal) ImagNegligible() bool {
	if !v.IsCertified() {
		return false
	}
	im, _ := new(big.Float).Abs(v.Im).Float64()
	re, _ := new(big.Float).Abs(v.Re).Float64()
	return im <= 2*v.Rad+1e-18*(1+re)
}

// floorInt64 returns floor(x) as an int64, ok=false when out of range.
func floorInt64(x *big.Float) (int64, bool) {
	if x.IsInf() {
		return 0, false
	}
	z, acc := x.Int(nil)
	// Int truncates toward zero; for negative non-integers the truncation
	// sits above x and must be stepped down to the floor.
	if acc == big.Above {
		z.Sub(z, big.NewInt(1))
	}
	if !z.IsInt64() {
		return 0, false
	}
	return z.Int64(), true
}

// BigEvalFunc evaluates a compiled expression at a positional integer
// point (the unranker's hot arguments — parameters, recovered prefix,
// pc — are all integers, so leaves evaluate exactly before one rounding).
type BigEvalFunc func(vals []int64) BigVal

// bigCtx carries the evaluation precision and the per-operation relative
// rounding bound (a generous multiple of one ulp at that precision).
type bigCtx struct {
	prec uint
	rel  float64 // >= a few ulps: bounds the rounding of one operation
}

func newBigCtx(prec uint) bigCtx {
	if prec < 64 {
		prec = 64
	}
	// 16 ulps per compound complex operation is far beyond the actual
	// 2–6 roundings each performs; cheap insurance on the certificate.
	return bigCtx{prec: prec, rel: math.Ldexp(1, 4-int(prec))}
}

func (c bigCtx) nf() *big.Float { return new(big.Float).SetPrec(c.prec) }

// mag returns |Re|+|Im| as float64 — an upper bound on the modulus
// (within a factor sqrt(2)) used in the radius formulas. Values beyond
// float64 range saturate to +Inf, which poisons the radius and forces
// escalation; magnitudes that large mean the domain is out of int64
// territory anyway.
func mag(v BigVal) float64 {
	re, _ := new(big.Float).Abs(v.Re).Float64()
	im, _ := new(big.Float).Abs(v.Im).Float64()
	return re + im
}

// modLower returns a lower bound on the modulus of v: the larger
// component's magnitude is >= modulus/sqrt(2) >= mag/2.
func modLower(v BigVal) float64 { return mag(v) / 2 }

func (c bigCtx) add(a, b BigVal) BigVal {
	v := BigVal{Re: c.nf().Add(a.Re, b.Re), Im: c.nf().Add(a.Im, b.Im)}
	v.Rad = a.Rad + b.Rad + c.rel*mag(v)
	return v
}

func (c bigCtx) sub(a, b BigVal) BigVal {
	v := BigVal{Re: c.nf().Sub(a.Re, b.Re), Im: c.nf().Sub(a.Im, b.Im)}
	v.Rad = a.Rad + b.Rad + c.rel*mag(v)
	return v
}

func (c bigCtx) neg(a BigVal) BigVal {
	return BigVal{Re: c.nf().Neg(a.Re), Im: c.nf().Neg(a.Im), Rad: a.Rad}
}

func (c bigCtx) mul(a, b BigVal) BigVal {
	rr := c.nf().Mul(a.Re, b.Re)
	ii := c.nf().Mul(a.Im, b.Im)
	ri := c.nf().Mul(a.Re, b.Im)
	ir := c.nf().Mul(a.Im, b.Re)
	v := BigVal{Re: c.nf().Sub(rr, ii), Im: c.nf().Add(ri, ir)}
	ma, mb := mag(a), mag(b)
	v.Rad = ma*b.Rad + mb*a.Rad + a.Rad*b.Rad + c.rel*ma*mb
	return v
}

func (c bigCtx) div(a, b BigVal) BigVal {
	den := c.nf().Add(c.nf().Mul(b.Re, b.Re), c.nf().Mul(b.Im, b.Im))
	if den.Sign() == 0 {
		// Division by exact zero: mirror the complex128 path's Inf/NaN
		// (callers detect non-finite values); no certificate.
		return BigVal{Re: c.nf().SetInf(false), Im: c.nf().SetInf(false), Rad: math.Inf(1)}
	}
	re := c.nf().Quo(c.nf().Add(c.nf().Mul(a.Re, b.Re), c.nf().Mul(a.Im, b.Im)), den)
	im := c.nf().Quo(c.nf().Sub(c.nf().Mul(a.Im, b.Re), c.nf().Mul(a.Re, b.Im)), den)
	v := BigVal{Re: re, Im: im}
	bLow := modLower(b)
	if b.Rad >= bLow/2 {
		v.Rad = math.Inf(1) // divisor indistinguishable from zero
		return v
	}
	v.Rad = (a.Rad+mag(v)*b.Rad)/(bLow-b.Rad) + c.rel*mag(v)
	return v
}

// sqrt computes the principal complex square root (branch matching
// cmplx.Sqrt: Re >= 0, with Im carrying the sign of the input's Im).
func (c bigCtx) sqrt(a BigVal) BigVal {
	if a.Re.Sign() == 0 && a.Im.Sign() == 0 {
		rad := a.Rad
		if rad > 0 {
			rad = 4 * math.Sqrt(rad)
		}
		return BigVal{Re: c.nf(), Im: c.nf(), Rad: rad}
	}
	// r = |a|; for Re >= 0: w = sqrt((r+Re)/2) + i*Im/(2 sqrt(...));
	// for Re < 0:  w = |Im|/(2u) + i*sign(Im)*u with u = sqrt((r-Re)/2).
	r := c.nf().Sqrt(c.nf().Add(c.nf().Mul(a.Re, a.Re), c.nf().Mul(a.Im, a.Im)))
	var re, im *big.Float
	if a.Re.Sign() >= 0 {
		t := c.nf().Sqrt(c.nf().Quo(c.nf().Add(r, a.Re), big.NewFloat(2)))
		re = t
		if t.Sign() == 0 {
			im = c.nf()
		} else {
			im = c.nf().Quo(a.Im, c.nf().Mul(big.NewFloat(2), t))
		}
	} else {
		u := c.nf().Sqrt(c.nf().Quo(c.nf().Sub(r, a.Re), big.NewFloat(2)))
		re = c.nf().Quo(c.nf().Abs(a.Im), c.nf().Mul(big.NewFloat(2), u))
		if a.Im.Signbit() {
			im = c.nf().Neg(u)
		} else {
			im = new(big.Float).SetPrec(c.prec).Set(u)
		}
	}
	v := BigVal{Re: re, Im: im}
	v.Rad = c.radRoot(a, v, 2)
	return v
}

// radRoot bounds the error of w = a^(1/n) given a's radius: first-order
// |δw| <= |δa| / (n·|a|^((n-1)/n)), with a fallback to the Hölder bound
// 4·|δa|^(1/n) when a is indistinguishable from zero at its radius.
func (c bigCtx) radRoot(a, w BigVal, n int) float64 {
	mw := mag(w)
	if a.Rad == 0 {
		return c.rel * mw
	}
	aLow := modLower(a)
	if a.Rad >= aLow/2 {
		return 4 * math.Pow(a.Rad, 1/float64(n))
	}
	deriv := a.Rad / (float64(n) * math.Pow(aLow-a.Rad, float64(n-1)/float64(n)))
	return 2*deriv + c.rel*mw
}

// rootN computes the branch of a^(1/n) continuing the principal branch
// of cmplx.Pow: the complex128 evaluation seeds a Newton iteration on
// w^n = a in big.Float arithmetic, which converges quadratically to the
// root nearest the seed. Exponents are pre-scaled by powers of 2^n so
// the seed never over/underflows float64.
func (c bigCtx) rootN(a BigVal, n int) BigVal {
	if a.Re.Sign() == 0 && a.Im.Sign() == 0 {
		rad := a.Rad
		if rad > 0 {
			rad = 4 * math.Pow(rad, 1/float64(n))
		}
		return BigVal{Re: c.nf(), Im: c.nf(), Rad: rad}
	}
	// Scale a by 2^(-k*n) so the float64 seed is well inside range.
	e := 0
	if a.Re.Sign() != 0 {
		e = a.Re.MantExp(nil)
	}
	if a.Im.Sign() != 0 {
		if ei := a.Im.MantExp(nil); ei > e || a.Re.Sign() == 0 {
			e = ei
		}
	}
	k := e / n
	shift := -k * n
	as := BigVal{Re: scale2(c, a.Re, shift), Im: scale2(c, a.Im, shift)}
	sre, _ := as.Re.Float64()
	sim, _ := as.Im.Float64()
	seed := cmplx.Pow(complex(sre, sim), complex(1/float64(n), 0))
	w := BigVal{Re: c.nf().SetFloat64(real(seed)), Im: c.nf().SetFloat64(imag(seed))}
	// Newton: w <- ((n-1)·w + a/w^(n-1)) / n. The float64 seed carries
	// ~50 accurate bits; each step doubles them.
	iters := 2
	for acc := 40.0; acc < float64(c.prec); acc *= 2 {
		iters++
	}
	nf := c.nf().SetInt64(int64(n))
	n1 := c.nf().SetInt64(int64(n - 1))
	for i := 0; i < iters; i++ {
		wp := w
		for j := 1; j < n-1; j++ {
			wp = c.mul(wp, w)
		}
		q := c.div(BigVal{Re: as.Re, Im: as.Im}, wp)
		w = BigVal{
			Re: c.nf().Quo(c.nf().Add(c.nf().Mul(n1, w.Re), q.Re), nf),
			Im: c.nf().Quo(c.nf().Add(c.nf().Mul(n1, w.Im), q.Im), nf),
		}
	}
	// Undo the scaling: multiply by 2^k.
	v := BigVal{Re: scale2(c, w.Re, k), Im: scale2(c, w.Im, k)}
	v.Rad = c.radRoot(a, v, n)
	return v
}

// scale2 returns x * 2^shift at the context precision.
func scale2(c bigCtx, x *big.Float, shift int) *big.Float {
	if x.Sign() == 0 {
		return c.nf()
	}
	m := c.nf()
	e := x.MantExp(m)
	return c.nf().SetMantExp(m, e+shift)
}

// powInt computes a^n (n >= 0) by repeated multiplication.
func (c bigCtx) powInt(a BigVal, n int) BigVal {
	r := BigVal{Re: c.nf().SetInt64(1), Im: c.nf()}
	for i := 0; i < n; i++ {
		r = c.mul(r, a)
	}
	return r
}

func (c bigCtx) pow(a BigVal, num, den int) BigVal {
	if den == 1 {
		if num >= 0 {
			return c.powInt(a, num)
		}
		one := BigVal{Re: c.nf().SetInt64(1), Im: c.nf()}
		return c.div(one, c.powInt(a, -num))
	}
	r := c.rootN(a, den)
	if num == 1 {
		return r
	}
	if num >= 0 {
		return c.powInt(r, num)
	}
	one := BigVal{Re: c.nf().SetInt64(1), Im: c.nf()}
	return c.div(one, c.powInt(r, -num))
}

// exactLeaf wraps an exact rational as a certified BigVal: one rounding.
func (c bigCtx) exactLeaf(r *big.Rat) BigVal {
	v := BigVal{Re: c.nf().SetRat(r), Im: c.nf()}
	v.Rad = c.rel * mag(v)
	return v
}

// CompileBig translates an expression tree into a positional
// arbitrary-precision evaluator with a certified error radius. The
// integer argument values evaluate exactly at the leaves (polynomials go
// through exact big.Rat arithmetic), so the radius reflects only the
// radical arithmetic above them. This is the escalation form used by the
// unranker's precision ladder; Compile remains the complex128 fast path.
func CompileBig(e Expr, vars []string, prec uint) (BigEvalFunc, error) {
	c := newBigCtx(prec)
	switch v := e.(type) {
	case Num:
		val := new(big.Rat).Set(v.Val)
		return func([]int64) BigVal { return c.exactLeaf(val) }, nil
	case PolyExpr:
		comp, err := v.P.Compile(vars)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal {
			return c.exactLeaf(comp.EvalBig(vals))
		}, nil
	case Add:
		a, b, err := compileBig2(v.A, v.B, vars, prec)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal { return c.add(a(vals), b(vals)) }, nil
	case Sub:
		a, b, err := compileBig2(v.A, v.B, vars, prec)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal { return c.sub(a(vals), b(vals)) }, nil
	case Mul:
		a, b, err := compileBig2(v.A, v.B, vars, prec)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal { return c.mul(a(vals), b(vals)) }, nil
	case Div:
		a, b, err := compileBig2(v.A, v.B, vars, prec)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal { return c.div(a(vals), b(vals)) }, nil
	case Neg:
		a, err := CompileBig(v.A, vars, prec)
		if err != nil {
			return nil, err
		}
		return func(vals []int64) BigVal { return c.neg(a(vals)) }, nil
	case Pow:
		base, err := CompileBig(v.Base, vars, prec)
		if err != nil {
			return nil, err
		}
		num, den := v.Num, v.Den
		if den == 2 && num == 1 {
			return func(vals []int64) BigVal { return c.sqrt(base(vals)) }, nil
		}
		return func(vals []int64) BigVal { return c.pow(base(vals), num, den) }, nil
	}
	return nil, fmt.Errorf("roots: cannot compile expression of type %T", e)
}

func compileBig2(ea, eb Expr, vars []string, prec uint) (BigEvalFunc, BigEvalFunc, error) {
	a, err := CompileBig(ea, vars, prec)
	if err != nil {
		return nil, nil, err
	}
	b, err := CompileBig(eb, vars, prec)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// EvalBig evaluates an expression with named rational bindings at the
// given precision — the tool-time/test form of CompileBig (the hot path
// compiles once and evaluates positionally).
func EvalBig(e Expr, env map[string]*big.Rat, prec uint) (BigVal, error) {
	c := newBigCtx(prec)
	return evalBig(c, e, env)
}

func evalBig2(c bigCtx, ea, eb Expr, env map[string]*big.Rat) (BigVal, BigVal, error) {
	a, err := evalBig(c, ea, env)
	if err != nil {
		return BigVal{}, BigVal{}, err
	}
	b, err := evalBig(c, eb, env)
	if err != nil {
		return BigVal{}, BigVal{}, err
	}
	return a, b, nil
}

func evalBig(c bigCtx, e Expr, env map[string]*big.Rat) (BigVal, error) {
	switch v := e.(type) {
	case Num:
		return c.exactLeaf(v.Val), nil
	case PolyExpr:
		r, err := v.P.EvalRat(env)
		if err != nil {
			return BigVal{}, err
		}
		return c.exactLeaf(r), nil
	case Add:
		a, b, err := evalBig2(c, v.A, v.B, env)
		if err != nil {
			return BigVal{}, err
		}
		return c.add(a, b), nil
	case Sub:
		a, b, err := evalBig2(c, v.A, v.B, env)
		if err != nil {
			return BigVal{}, err
		}
		return c.sub(a, b), nil
	case Mul:
		a, b, err := evalBig2(c, v.A, v.B, env)
		if err != nil {
			return BigVal{}, err
		}
		return c.mul(a, b), nil
	case Div:
		a, b, err := evalBig2(c, v.A, v.B, env)
		if err != nil {
			return BigVal{}, err
		}
		return c.div(a, b), nil
	case Neg:
		a, err := evalBig(c, v.A, env)
		if err != nil {
			return BigVal{}, err
		}
		return c.neg(a), nil
	case Pow:
		a, err := evalBig(c, v.Base, env)
		if err != nil {
			return BigVal{}, err
		}
		if v.Den == 2 && v.Num == 1 {
			return c.sqrt(a), nil
		}
		return c.pow(a, v.Num, v.Den), nil
	}
	return BigVal{}, fmt.Errorf("roots: cannot evaluate expression of type %T", e)
}
