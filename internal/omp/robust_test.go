package omp

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/nest"
)

// TestWorkerPanicReturnsPanicError forces a panic inside one worker and
// checks the engine survives: the team drains, the first panic comes
// back as a *faults.PanicError carrying the worker's stack, and no
// goroutine deadlocks.
func TestWorkerPanicReturnsPanicError(t *testing.T) {
	for _, sched := range []Schedule{
		{Kind: Static},
		{Kind: StaticChunk, Chunk: 3},
		{Kind: Dynamic, Chunk: 2},
		{Kind: Guided},
	} {
		err := ParallelForChunksCtx(context.Background(), 4, 0, 1000, sched,
			func(tid int, clo, chi int64) error {
				if clo >= 500 {
					panic("worker boom")
				}
				return nil
			})
		if err == nil {
			t.Fatalf("%s: panic not reported", sched.Kind)
		}
		pe := faults.AsPanic(err)
		if pe == nil {
			t.Fatalf("%s: error %v carries no PanicError", sched.Kind, err)
		}
		if pe.Value != "worker boom" {
			t.Errorf("%s: panic value %v", sched.Kind, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "robust_test") {
			t.Errorf("%s: stack does not reach the panic site:\n%s", sched.Kind, pe.Stack)
		}
	}
}

// TestParallelForChunksRepanicsOnCaller checks the void API: a worker
// panic is re-panicked on the calling goroutine as a recoverable
// *faults.PanicError instead of killing the process from a worker.
func TestParallelForChunksRepanicsOnCaller(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic swallowed")
		}
		pe, ok := r.(*faults.PanicError)
		if !ok {
			t.Fatalf("re-panicked value is %T, want *faults.PanicError", r)
		}
		if pe.Value != "void boom" {
			t.Errorf("panic value %v", pe.Value)
		}
	}()
	ParallelForChunks(4, 0, 100, Schedule{Kind: Dynamic}, func(tid int, clo, chi int64) {
		panic("void boom")
	})
}

// TestCancellationStopsAtChunkBoundary cancels the context mid-run and
// checks the team stops cooperatively with ErrCanceled, without running
// every chunk.
func TestCancellationStopsAtChunkBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	err := ParallelForChunksCtx(ctx, 4, 0, 1_000_000, Schedule{Kind: Dynamic, Chunk: 10},
		func(tid int, clo, chi int64) error {
			if done.Add(chi-clo) > 5000 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := done.Load(); n >= 1_000_000 {
		t.Errorf("cancellation did not stop the run early (ran %d)", n)
	}
}

// TestBodyErrorStopsTeam checks an error return from one chunk stops
// every worker at its next boundary and is the error reported.
func TestBodyErrorStopsTeam(t *testing.T) {
	sentinel := errors.New("chunk failed")
	var after atomic.Int64
	err := ParallelForChunksCtx(nil, 4, 0, 100000, Schedule{Kind: Dynamic, Chunk: 1},
		func(tid int, clo, chi int64) error {
			if clo == 50 {
				return sentinel
			}
			after.Add(1)
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the body's error", err)
	}
	if after.Load() >= 100000 {
		t.Error("team did not stop after the failure")
	}
}

// TestInjectedChunkFault checks the test-only fault-injection plan is
// consulted at chunk boundaries: an injected error stops the run, and an
// injected delay slows it observably.
func TestInjectedChunkFault(t *testing.T) {
	boom := errors.New("injected")
	restore := faults.Activate(&faults.Plan{
		OnChunk: func(tid int, clo, chi int64) error {
			if clo >= 32 {
				return boom
			}
			return nil
		},
		ChunkDelay: time.Microsecond,
	})
	defer restore()
	err := ParallelForChunksCtx(nil, 2, 0, 1000, Schedule{Kind: StaticChunk, Chunk: 8},
		func(tid int, clo, chi int64) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
}

// TestTeamSurvivesRegionPanic checks a persistent team keeps serving
// regions after one panics.
func TestTeamSurvivesRegionPanic(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	err := team.DoErr(func(tid int) {
		if tid == 2 {
			panic("region boom")
		}
	})
	pe := faults.AsPanic(err)
	if pe == nil || pe.Value != "region boom" {
		t.Fatalf("DoErr = %v, want PanicError(region boom)", err)
	}
	// The team must still work.
	var ran atomic.Int64
	if err := team.DoErr(func(tid int) { ran.Add(1) }); err != nil {
		t.Fatalf("team unusable after panic: %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("second region ran on %d workers, want 4", ran.Load())
	}
}

// TestUncollapsedForFallback runs the degradation-ladder bottom rung
// over a triangular nest — including a quadratic (non-affine) bound the
// collapsed path cannot model — and checks the iteration count.
func TestUncollapsedForFallback(t *testing.T) {
	tri := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
	)
	var count atomic.Int64
	err := UncollapsedFor(nil, tri, map[string]int64{"N": 100}, 4, Schedule{Kind: Static},
		func(tid int, idx []int64) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100*101/2 {
		t.Fatalf("triangular count = %d, want %d", count.Load(), 100*101/2)
	}

	// Quadratic upper bound: rejected by nest.New, so build it directly —
	// exactly the shape the fallback exists for.
	quad := &nest.Nest{
		Params: []string{"N"},
		Loops: []nest.Loop{
			nest.L("i", "0", "N"),
			nest.L("j", "0", "i*i+1"),
		},
	}
	count.Store(0)
	err = UncollapsedFor(nil, quad, map[string]int64{"N": 50}, 4, Schedule{Kind: Dynamic, Chunk: 4},
		func(tid int, idx []int64) { count.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := int64(0); i < 50; i++ {
		want += i*i + 1
	}
	if count.Load() != want {
		t.Fatalf("quadratic count = %d, want %d", count.Load(), want)
	}

	// Cancellation applies to the fallback too.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = UncollapsedFor(ctx, tri, map[string]int64{"N": 100}, 4, Schedule{Kind: Dynamic},
		func(tid int, idx []int64) {})
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("canceled fallback err = %v, want ErrCanceled", err)
	}
}
