package core

import (
	"testing"

	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/unrank"
)

// FuzzNestSignature checks the canonical signature's defining property
// on arbitrary bound expressions: α-renaming every parameter and
// iterator never changes the signature (nor cacheability), and signature
// computation never panics — a collision here would make the collapse
// cache serve one nest's artifact for a structurally different nest.
func FuzzNestSignature(f *testing.F) {
	f.Add("0", "N-1", "i+1", "N", uint8(2))
	f.Add("0", "N", "0", "i+1", uint8(2))
	f.Add("i", "2*N", "i-1", "N+i", uint8(1))
	f.Add("0", "N^2", "3*i", "N*i", uint8(2))
	f.Fuzz(func(t *testing.T, lo1, hi1, lo2, hi2 string, cc uint8) {
		bounds := make([]*poly.Poly, 0, 4)
		for _, s := range []string{lo1, hi1, lo2, hi2} {
			p, err := poly.Parse(s)
			if err != nil {
				return
			}
			bounds = append(bounds, p)
		}
		n1 := &nest.Nest{
			Params: []string{"N"},
			Loops: []nest.Loop{
				{Index: "i", Lower: bounds[0], Upper: bounds[1]},
				{Index: "j", Lower: bounds[2], Upper: bounds[3]},
			},
		}
		if err := n1.Validate(); err != nil {
			return
		}
		ren := map[string]string{"N": "Q", "i": "u", "j": "v"}
		n2 := &nest.Nest{
			Params: []string{"Q"},
			Loops: []nest.Loop{
				{Index: "u", Lower: bounds[0].Rename(ren), Upper: bounds[1].Rename(ren)},
				{Index: "v", Lower: bounds[2].Rename(ren), Upper: bounds[3].Rename(ren)},
			},
		}
		c := int(cc)%2 + 1
		s1, ok1 := NestSignature(n1, c, unrank.Options{})
		s2, ok2 := NestSignature(n2, c, unrank.Options{})
		if ok1 != ok2 {
			t.Fatalf("cacheability differs under renaming: %v vs %v", ok1, ok2)
		}
		if s1 != s2 {
			t.Fatalf("signature not α-invariant (c=%d):\n  %s\n  %s", c, s1, s2)
		}
	})
}
