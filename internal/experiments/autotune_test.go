package experiments

import (
	"strings"
	"testing"
)

// TestAutotuneQuick smoke-runs the suite on one uniform and one
// imbalanced kernel at test sizes and pins the report invariants: every
// row carries a concrete decision with measured auto/best/worst times,
// the ratio fields are consistent with the panel, and the end-of-row
// re-plan of the settled shape came from the plan cache.
func TestAutotuneQuick(t *testing.T) {
	rep, err := Autotune(AutotuneOptions{
		Quick:   true,
		Threads: 2,
		Kernels: []string{"syrk", "ltmp"},
	})
	if err != nil {
		t.Fatalf("Autotune: %v", err)
	}
	if rep.Suite != "autotune" || len(rep.Rows) != 2 {
		t.Fatalf("report: suite %q, %d rows", rep.Suite, len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Decision == "" || row.Iterations <= 0 {
			t.Errorf("%s: empty decision or iterations (%+v)", row.Kernel, row)
		}
		if row.AutoSec <= 0 || row.PredictedSec <= 0 {
			t.Errorf("%s: missing tuned timing: auto %v predicted %v",
				row.Kernel, row.AutoSec, row.PredictedSec)
		}
		if row.BestSpec == "" || row.WorstSpec == "" || row.BestSec > row.WorstSec {
			t.Errorf("%s: inconsistent panel extremes %+v", row.Kernel, row)
		}
		if len(row.Choices) != 5 {
			t.Errorf("%s: %d panel choices, want 5", row.Kernel, len(row.Choices))
		}
		wantVsBest := row.AutoSec / row.BestSec
		if diff := row.AutoVsBest - wantVsBest; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: auto_vs_best %v, want %v", row.Kernel, row.AutoVsBest, wantVsBest)
		}
		if !row.CacheHit {
			t.Errorf("%s: settled shape re-plan missed the cache", row.Kernel)
		}
	}
	if rep.Plans < 2 {
		t.Errorf("autotune.plans = %d, want >= 2 (one per kernel)", rep.Plans)
	}
	if rep.CacheHits < 2 {
		t.Errorf("autotune.cache_hits = %d, want >= 2", rep.CacheHits)
	}

	out := RenderAutotune(rep)
	for _, frag := range []string{"auto decision", "syrk", "ltmp", "cache hits"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestParseSchedSpec pins the panel's -sched grammar subset.
func TestParseSchedSpec(t *testing.T) {
	for _, spec := range []string{"static", "static,64", "dynamic,1", "guided,8"} {
		if _, err := parseSchedSpec(spec); err != nil {
			t.Errorf("parseSchedSpec(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"auto", "static,0", "bogus", "dynamic,x"} {
		if _, err := parseSchedSpec(spec); err == nil {
			t.Errorf("parseSchedSpec(%q) accepted", spec)
		}
	}
}
