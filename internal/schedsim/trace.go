package schedsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Arrival-process-driven multi-request traces. A serving deployment of
// the collapsed runtime does not see one loop nest in isolation: it
// sees a stream of requests with bursty inter-arrival times and mixed
// nest shapes. The trace generator produces such streams from the three
// classical arrival processes (Poisson — memoryless; Gamma — smoother
// or burstier than Poisson depending on shape; Weibull — heavy-tailed
// bursts for shape < 1), and SimulateTrace plays a stream through one
// worksharing team so the planner can score a candidate
// (schedule, chunk, workers) triple on latency quantiles under load,
// not just on a single run's makespan.

// ArrivalKind selects the inter-arrival distribution.
type ArrivalKind int

const (
	// Poisson arrivals: exponential inter-arrival times (memoryless).
	Poisson ArrivalKind = iota
	// Gamma arrivals: Gamma(shape, scale) inter-arrival times; shape 1
	// degenerates to Poisson, shape > 1 is smoother, shape < 1 burstier.
	Gamma
	// Weibull arrivals: Weibull(shape, scale) inter-arrival times;
	// shape < 1 yields the heavy-tailed bursts of real traffic.
	Weibull
)

// String names the arrival kind.
func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Gamma:
		return "gamma"
	case Weibull:
		return "weibull"
	}
	return fmt.Sprintf("ArrivalKind(%d)", int(k))
}

// Arrivals is a parameterized arrival process with mean rate Rate
// requests/second. Shape is the Gamma/Weibull shape parameter k
// (ignored for Poisson; values <= 0 default to 1, which makes both
// degenerate to Poisson). The scale is always derived from Rate so the
// configured mean throughput holds for every kind.
type Arrivals struct {
	Kind  ArrivalKind
	Rate  float64
	Shape float64
}

func (a Arrivals) shape() float64 {
	if a.Shape <= 0 {
		return 1
	}
	return a.Shape
}

// InterArrival draws one inter-arrival gap (seconds) from the process.
func (a Arrivals) InterArrival(rng *rand.Rand) float64 {
	rate := a.Rate
	if rate <= 0 {
		rate = 1
	}
	mean := 1 / rate
	switch a.Kind {
	case Gamma:
		k := a.shape()
		// Scale so E = k*theta = mean.
		return gammaSample(rng, k) * (mean / k)
	case Weibull:
		k := a.shape()
		// Scale so E = lambda * Gamma(1+1/k) = mean.
		lambda := mean / math.Gamma(1+1/k)
		return lambda * math.Pow(-math.Log(uniform(rng)), 1/k)
	default: // Poisson
		return rng.ExpFloat64() * mean
	}
}

// uniform draws from (0,1], avoiding the log(0) corner.
func uniform(rng *rand.Rand) float64 {
	for {
		if u := rng.Float64(); u > 0 {
			return u
		}
	}
}

// gammaSample draws Gamma(k, 1) by Marsaglia–Tsang squeeze (k >= 1)
// with the standard boost U^{1/k} for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		return gammaSample(rng, k+1) * math.Pow(uniform(rng), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := uniform(rng)
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Shape is one nest shape in a workload mix: a per-unit work vector and
// its sampling weight.
type Shape struct {
	Name   string
	Work   []float64
	Weight float64
}

// TraceRequest is one generated request: when it arrives and the
// per-unit work vector of its (sampled) nest shape.
type TraceRequest struct {
	Arrival float64 // seconds since trace start
	Shape   string
	Work    []float64
}

// TraceOptions configure trace generation.
type TraceOptions struct {
	Arrivals Arrivals
	Requests int     // number of requests (default 64)
	Shapes   []Shape // workload mix; at least one required
	Seed     int64   // RNG seed (traces are deterministic per seed)
}

// GenTrace generates a request stream: inter-arrival gaps drawn from
// the arrival process, shapes sampled by weight. The work vectors are
// shared (not copied) — SimulateTrace never mutates them.
func GenTrace(o TraceOptions) []TraceRequest {
	n := o.Requests
	if n <= 0 {
		n = 64
	}
	if len(o.Shapes) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var totalW float64
	for _, s := range o.Shapes {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	reqs := make([]TraceRequest, n)
	var t float64
	for i := range reqs {
		t += o.Arrivals.InterArrival(rng)
		pick := rng.Float64() * totalW
		var acc float64
		chosen := o.Shapes[len(o.Shapes)-1]
		for _, s := range o.Shapes {
			w := s.Weight
			if w <= 0 {
				w = 1
			}
			acc += w
			if pick < acc {
				chosen = s
				break
			}
		}
		reqs[i] = TraceRequest{Arrival: t, Shape: chosen.Name, Work: chosen.Work}
	}
	return reqs
}

// TraceResult aggregates one simulated trace: per-request execution
// makespans, end-to-end latencies (queueing + execution, FCFS on one
// team), and per-request thread-load imbalance.
type TraceResult struct {
	Makespans  []float64
	Latencies  []float64
	Imbalances []float64
	End        float64 // completion time of the last request
}

// MeanMakespan returns the mean per-request execution makespan.
func (tr TraceResult) MeanMakespan() float64 { return mean(tr.Makespans) }

// P99Latency returns the 99th-percentile end-to-end latency.
func (tr TraceResult) P99Latency() float64 { return Percentile(tr.Latencies, 0.99) }

// MeanImbalance returns the mean per-request max/mean thread load.
func (tr TraceResult) MeanImbalance() float64 { return mean(tr.Imbalances) }

// SimulateTrace plays the request stream through a single worksharing
// team of the given size under pol: requests are served FCFS, one at a
// time (the daemon executes each admitted nest on the whole team), so a
// request's latency is its queueing delay plus its own makespan. This
// is the planner's view of "how does this schedule behave under the
// traffic we expect", complementing the single-request makespan.
func SimulateTrace(reqs []TraceRequest, threads int, pol Policy, cm CostModel) TraceResult {
	tr := TraceResult{
		Makespans:  make([]float64, len(reqs)),
		Latencies:  make([]float64, len(reqs)),
		Imbalances: make([]float64, len(reqs)),
	}
	var free float64
	for i, r := range reqs {
		ms, loads := Simulate(r.Work, threads, pol, cm)
		start := free
		if r.Arrival > start {
			start = r.Arrival
		}
		done := start + ms
		free = done
		tr.Makespans[i] = ms
		tr.Latencies[i] = done - r.Arrival
		tr.Imbalances[i] = Imbalance(loads)
		if done > tr.End {
			tr.End = done
		}
	}
	return tr
}

// Objective is the fitness-weighted multi-objective score the planner
// minimizes: a weighted sum of mean makespan, p99 latency and an
// imbalance penalty (the excess max/mean load, scaled by the mean
// makespan so the penalty carries time units and the weights stay
// dimensionless).
type Objective struct {
	WMakespan  float64
	WP99       float64
	WImbalance float64
}

// DefaultObjective weights makespan dominantly, with p99 and imbalance
// as tie-breakers — the single-tenant serving default.
func DefaultObjective() Objective {
	return Objective{WMakespan: 1, WP99: 0.25, WImbalance: 0.1}
}

// Normalized returns the objective with the zero value replaced by
// DefaultObjective, so callers can treat an unset objective as default.
func (o Objective) Normalized() Objective {
	if o.WMakespan == 0 && o.WP99 == 0 && o.WImbalance == 0 {
		return DefaultObjective()
	}
	return o
}

// Score collapses a trace result into one fitness value (lower is
// better, seconds).
func (o Objective) Score(tr TraceResult) float64 {
	o = o.Normalized()
	ms := tr.MeanMakespan()
	excess := tr.MeanImbalance() - 1
	if excess < 0 {
		excess = 0
	}
	return o.WMakespan*ms + o.WP99*tr.P99Latency() + o.WImbalance*excess*ms
}

// Percentile returns the q-quantile (0..1) of values by
// nearest-rank on a sorted copy; 0 for an empty slice.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var t float64
	for _, v := range values {
		t += v
	}
	return t / float64(len(values))
}
