package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// rhomb and pped complete the shape taxonomy of the paper's abstract
// (triangular, tetrahedral, trapezoidal, rhomboidal, parallelepiped).
// Both spaces are *balanced* — every outer iteration carries the same
// work — so collapsing cannot improve on outer-static scheduling; they
// are not part of the Fig. 9 bar set (whose kernels are imbalanced by
// construction) but serve as correctness and overhead subjects: the
// collapsed runtime must handle the shifted bounds exactly.
// ---------------------------------------------------------------------

// Rhomb is a rhomboidal (banded) elementwise kernel: j runs in a band of
// width M shifted by i, the access pattern of a skewed stencil sweep.
var Rhomb = register(&Kernel{
	Name: "rhomb",
	Nest: nest.MustNew([]string{"N", "M"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "i+M"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 2000, "M": 512},
	TestParams:  map[string]int64{"N": 24, "M": 7},
	New:         func(p map[string]int64) Instance { return newRhombInst(p["N"], p["M"]) },
})

type rhombInst struct {
	n, m int64
	x    []float64 // length N+M inputs
	out  []float64 // N*M cells, row-major by (i, j-i)
}

func newRhombInst(n, m int64) *rhombInst {
	in := &rhombInst{n: n, m: m, x: make([]float64, n+m), out: make([]float64, n*m)}
	lcg(in.x, 71)
	return in
}

func (in *rhombInst) cell(i, j int64) {
	in.out[i*in.m+(j-i)] = in.x[j] * 1.5
}

func (in *rhombInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *rhombInst) RunOuter(i int64) {
	for j := i; j < i+in.m; j++ {
		in.cell(i, j)
	}
}

func (in *rhombInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1]) }

// RunCollapsedRange fuses body and incrementation; the banded storage is
// rank-ordered so the offset is contiguous.
func (in *rhombInst) RunCollapsedRange(start []int64, count int64) {
	i, j := start[0], start[1]
	o := i*in.m + (j - i)
	for q := int64(0); q < count; q++ {
		in.out[o] = in.x[j] * 1.5
		o++
		j++
		if j >= i+in.m {
			i++
			j = i
		}
	}
}

func (in *rhombInst) WorkPerOuter(int64) float64 { return float64(in.m) }

func (in *rhombInst) WorkPerCollapsed([]int64) float64 { return 1 }

func (in *rhombInst) Checksum() float64 { return checksum(in.out) }

func (in *rhombInst) Reset() {
	for x := range in.out {
		in.out[x] = 0
	}
}

// Pped is a parallelepiped elementwise kernel: a 3D box skewed along two
// axes (the footprint of a doubly skewed stencil after Pluto-style
// transformation).
var Pped = register(&Kernel{
	Name: "pped",
	Nest: nest.MustNew([]string{"N", "M", "K"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "i+M"),
		nest.L("k", "j", "j+K"),
	),
	Collapse:    3,
	BenchParams: map[string]int64{"N": 200, "M": 64, "K": 32},
	TestParams:  map[string]int64{"N": 9, "M": 5, "K": 4},
	New:         func(p map[string]int64) Instance { return newPpedInst(p["N"], p["M"], p["K"]) },
})

type ppedInst struct {
	n, m, k int64
	x       []float64
	out     []float64 // N*M*K cells by (i, j-i, k-j)
}

func newPpedInst(n, m, k int64) *ppedInst {
	in := &ppedInst{n: n, m: m, k: k, x: make([]float64, n+m+k), out: make([]float64, n*m*k)}
	lcg(in.x, 72)
	return in
}

func (in *ppedInst) cell(i, j, k int64) {
	in.out[(i*in.m+(j-i))*in.k+(k-j)] = in.x[k] + 0.5*in.x[i]
}

func (in *ppedInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *ppedInst) RunOuter(i int64) {
	for j := i; j < i+in.m; j++ {
		for k := j; k < j+in.k; k++ {
			in.cell(i, j, k)
		}
	}
}

func (in *ppedInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1], idx[2]) }

// RunCollapsedRange fuses body and 3-level incrementation.
func (in *ppedInst) RunCollapsedRange(start []int64, count int64) {
	i, j, k := start[0], start[1], start[2]
	o := (i*in.m+(j-i))*in.k + (k - j)
	for q := int64(0); q < count; q++ {
		in.out[o] = in.x[k] + 0.5*in.x[i]
		o++
		k++
		if k >= j+in.k {
			j++
			if j >= i+in.m {
				i++
				j = i
			}
			k = j
		}
	}
}

func (in *ppedInst) WorkPerOuter(int64) float64 { return float64(in.m * in.k) }

func (in *ppedInst) WorkPerCollapsed([]int64) float64 { return 1 }

func (in *ppedInst) Checksum() float64 { return checksum(in.out) }

func (in *ppedInst) Reset() {
	for x := range in.out {
		in.out[x] = 0
	}
}

// ShapeKernels returns the balanced-shape correctness kernels (not part
// of the Fig. 9 set).
func ShapeKernels() []*Kernel { return []*Kernel{Rhomb, Pped} }
