package poly

import (
	"strings"
	"testing"
)

// FuzzParse checks that the expression parser never panics and that any
// successfully parsed polynomial survives a print/parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"0", "x", "-x", "x + y", "2*x^3 - y/2", "(x+1)*(x-1)",
		"(2*i*N + 2*j - i^2 - 3*i)/2", "N^3/6 - N/6",
		"x^^", "1//2", "((", "x^64", "9999999999999999999999",
		"a*b*c*d*e", "-(-(-x))", " x\t+\n1 ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		q, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, src, err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip changed value: %q -> %q", src, rendered)
		}
	})
}

// FuzzCompile checks that compiled evaluation agrees with exact
// evaluation on parsed inputs.
func FuzzCompile(f *testing.F) {
	f.Add("x^2 + y", int64(3), int64(-2))
	f.Add("(x - y)^3/4", int64(10), int64(7))
	f.Add("x*y - 7", int64(0), int64(0))
	f.Fuzz(func(t *testing.T, src string, xv, yv int64) {
		// Bound magnitudes to keep big arithmetic fast.
		xv %= 1000
		yv %= 1000
		p, err := Parse(src)
		if err != nil {
			return
		}
		for _, v := range p.Vars() {
			if v != "x" && v != "y" {
				return
			}
		}
		c, err := p.Compile([]string{"x", "y"})
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.EvalInt64(map[string]int64{"x": xv, "y": yv})
		if err != nil {
			t.Fatal(err)
		}
		got := c.EvalBig([]int64{xv, yv})
		if got.Cmp(want) != 0 {
			t.Fatalf("EvalBig(%q at %d,%d) = %s, want %s", src, xv, yv, got, want)
		}
	})
}

func TestParseWhitespaceAndDepth(t *testing.T) {
	// Deeply nested parentheses must not blow the stack unreasonably.
	src := strings.Repeat("(", 200) + "x" + strings.Repeat(")", 200)
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Var("x")) {
		t.Error("nested parens changed value")
	}
}
