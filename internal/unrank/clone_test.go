package unrank

import (
	"fmt"
	"testing"

	"repro/internal/nest"
)

// TestBoundClone checks a cloned Bound recovers exactly like a fresh
// Bind while sharing the immutable compiled core, keeps its statistics
// private, and costs far less than Bind (no bound compilation, no count
// evaluation — guarded here by allocation count, the stable proxy).
func TestBoundClone(t *testing.T) {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1"))
	u, err := New(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 25}
	orig, err := u.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	clone := orig.Clone()
	if clone.Total() != orig.Total() {
		t.Fatalf("clone total %d != original %d", clone.Total(), orig.Total())
	}
	if clone.Instance() != orig.Instance() {
		t.Error("clone must share the immutable bound instance")
	}
	want := make([]int64, orig.Depth())
	got := make([]int64, clone.Depth())
	for pc := int64(1); pc <= orig.Total(); pc++ {
		if err := orig.Unrank(pc, want); err != nil {
			t.Fatal(err)
		}
		if err := clone.Unrank(pc, got); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("pc %d: clone recovered %v, original %v", pc, got, want)
		}
	}
	if orig.Stats().RootEvals == 0 {
		t.Error("original recorded no root evals")
	}
	fresh := orig.Clone()
	if s := fresh.Stats(); s.RootEvals != 0 || s.Corrections != 0 {
		t.Errorf("clone inherited statistics %+v, want zero", s)
	}
	// Interleaved use must not cross-contaminate scratch state.
	a, b := orig.Clone(), orig.Clone()
	ia, ib := a.Scratch(), b.Scratch()
	if err := a.Unrank(1, ia); err != nil {
		t.Fatal(err)
	}
	if err := b.Unrank(orig.Total(), ib); err != nil {
		t.Fatal(err)
	}
	if err := a.Unrank(1, got); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(ia) {
		t.Errorf("interleaved clones disagree: %v vs %v", got, ia)
	}

	bindAllocs := testing.AllocsPerRun(20, func() {
		if _, err := u.Bind(params); err != nil {
			t.Fatal(err)
		}
	})
	cloneAllocs := testing.AllocsPerRun(20, func() { orig.Clone() })
	if cloneAllocs >= bindAllocs {
		t.Errorf("Clone allocates %v, Bind %v — clone must be the cheap path", cloneAllocs, bindAllocs)
	}
}
