package nonrect

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzRankUnrank feeds arbitrary annotated C sources and a parameter
// value through the whole pipeline — parse, collapse, bind, then a
// rank/unrank round trip over the enumerated iteration space — and
// requires the bijection to hold exactly wherever the pipeline accepts
// the input. Nothing may panic: every rejection must be an error (the
// typed taxonomy), every acceptance must recover exact tuples.
//
// Seeds are the five sample nests shipped in testdata/ (triangular,
// tetrahedral, rhomboidal, trapezoid and the quartic §IV.B limit case).
func FuzzRankUnrank(f *testing.F) {
	seeds, err := filepath.Glob("testdata/*.c")
	if err != nil || len(seeds) < 5 {
		f.Fatalf("testdata seeds: %v (err %v)", seeds, err)
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src), int64(6))
	}
	f.Fuzz(func(t *testing.T, src string, n int64) {
		// Small positive parameter values keep enumeration cheap while
		// still exercising every recovery level.
		n = 2 + (n%9+9)%9
		prog, err := ParseC(src)
		if err != nil {
			return
		}
		res, err := Collapse(prog.Nest, prog.CollapseCount, WithVerify())
		if err != nil {
			return
		}
		params := map[string]int64{}
		for _, p := range prog.Nest.Params {
			params[p] = n
		}
		b, err := res.Unranker.Bind(params)
		if err != nil {
			return
		}
		if b.Total() > 20_000 {
			return
		}
		// Nests with empty inner ranges for some prefixes ("irregular"
		// nests, e.g. j in [i+1, 2) once i > 1) are outside the Fig. 5
		// model: the counting polynomial sums negative range lengths and
		// the ranking is not a bijection. The pipeline cannot detect this
		// statically, so detect it here by comparing the polynomial count
		// with true enumeration and require the round trip only when they
		// agree.
		var trueCount int64
		b.Instance().Enumerate(func([]int64) bool {
			trueCount++
			return trueCount <= 20_000
		})
		if trueCount != b.Total() {
			return
		}
		depth := b.Instance().Depth()
		idx := make([]int64, depth)
		var pc int64
		b.Instance().Enumerate(func(truth []int64) bool {
			pc++
			if r := b.Rank(truth); r != pc {
				t.Fatalf("Rank(%v) = %d, want %d\nsource:\n%s", truth, r, pc, src)
			}
			if err := b.Unrank(pc, idx); err != nil {
				t.Fatalf("Unrank(%d): %v\nsource:\n%s", pc, err, src)
			}
			for q := range idx {
				if idx[q] != truth[q] {
					t.Fatalf("Unrank(%d) = %v, want %v\nsource:\n%s", pc, idx, truth, src)
				}
			}
			return true
		})
		if pc != b.Total() {
			t.Fatalf("enumerated %d iterations, Total() = %d\nsource:\n%s", pc, b.Total(), src)
		}
	})
}
