package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nest"
	"repro/internal/nest/nesttest"
	"repro/internal/poly"
	"repro/internal/unrank"
)

// correlation3 is the full 3-deep correlation nest of Fig. 1, of which
// the two outermost loops are collapsed.
func correlation3() *nest.Nest {
	return nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "i+1", "N"),
		nest.L("k", "0", "N"),
	)
}

func TestCollapseCorrelationTwoOfThree(t *testing.T) {
	r, err := Collapse(correlation3(), 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.C != 2 || r.SubNest.Depth() != 2 {
		t.Fatalf("sub-nest depth %d", r.SubNest.Depth())
	}
	if want := poly.MustParse("(2*i*N + 2*j - i^2 - 3*i)/2"); !r.Ranking.Equal(want) {
		t.Errorf("Ranking = %s", r.Ranking)
	}
	if want := poly.MustParse("(N-1)*N/2"); !r.Total.Equal(want) {
		t.Errorf("Total = %s", r.Total)
	}
	if err := r.CheckTotalMatchesRanking(map[string]int64{"N": 9}); err != nil {
		t.Error(err)
	}
}

func TestCollapseArgErrors(t *testing.T) {
	n := correlation3()
	if _, err := Collapse(n, 0, unrank.Options{}); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := Collapse(n, 4, unrank.Options{}); err == nil {
		t.Error("c=4 accepted for depth-3 nest")
	}
	bad := &nest.Nest{}
	if _, err := Collapse(bad, 1, unrank.Options{}); err == nil {
		t.Error("invalid nest accepted")
	}
}

func TestForRangeCoversAllIterationsOnce(t *testing.T) {
	r := MustCollapse(correlation3(), 2, unrank.Options{})
	b := r.Unranker.MustBind(map[string]int64{"N": 12})
	total := b.Total()
	seen := map[[2]int64]int64{}
	// Split into uneven ranges like a static schedule would.
	bounds := []int64{1, 7, 8, 23, total}
	lo := bounds[0]
	for _, hi := range bounds[1:] {
		bb := r.Unranker.MustBind(map[string]int64{"N": 12})
		var lastPC int64
		err := ForRange(bb, lo, hi, func(pc int64, idx []int64) {
			seen[[2]int64{idx[0], idx[1]}]++
			if pc <= lastPC && lastPC != 0 {
				t.Fatalf("pc not increasing: %d after %d", pc, lastPC)
			}
			lastPC = pc
		})
		if err != nil {
			t.Fatal(err)
		}
		lo = hi + 1
	}
	inst := b.Instance()
	var n int64
	inst.Enumerate(func(idx []int64) bool {
		n++
		if seen[[2]int64{idx[0], idx[1]}] != 1 {
			t.Fatalf("iteration %v executed %d times", idx, seen[[2]int64{idx[0], idx[1]}])
		}
		return true
	})
	if int64(len(seen)) != n {
		t.Fatalf("executed %d distinct iterations, want %d", len(seen), n)
	}
}

func TestForRangeEveryMatchesForRange(t *testing.T) {
	r := MustCollapse(correlation3(), 2, unrank.Options{})
	params := map[string]int64{"N": 10}
	b1 := r.Unranker.MustBind(params)
	b2 := r.Unranker.MustBind(params)
	var seq1, seq2 [][]int64
	if err := ForRange(b1, 3, 30, func(pc int64, idx []int64) {
		seq1 = append(seq1, append([]int64(nil), idx...))
	}); err != nil {
		t.Fatal(err)
	}
	if err := ForRangeEvery(b2, 3, 30, func(pc int64, idx []int64) {
		seq2 = append(seq2, append([]int64(nil), idx...))
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq1, seq2) {
		t.Errorf("ForRange and ForRangeEvery disagree:\n%v\n%v", seq1, seq2)
	}
}

func TestForRangeErrors(t *testing.T) {
	r := MustCollapse(correlation3(), 2, unrank.Options{})
	b := r.Unranker.MustBind(map[string]int64{"N": 5})
	if err := ForRange(b, 1, b.Total()+5, func(int64, []int64) {}); err == nil {
		t.Error("range beyond total accepted")
	}
	if err := ForRange(b, 5, 2, func(int64, []int64) {}); err != nil {
		t.Errorf("empty range errored: %v", err)
	}
	if err := ForRangeEvery(b, 0, 2, func(int64, []int64) {}); err == nil {
		t.Error("pc=0 accepted by ForRangeEvery")
	}
}

func TestCollapseFullDepth(t *testing.T) {
	// Collapse all three loops of the tetrahedral nest and check full
	// coverage via ForRange over chunks (the Fig. 10 "all loops
	// collapsed" configuration).
	tetra := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
	)
	r := MustCollapse(tetra, 3, unrank.Options{})
	b := r.Unranker.MustBind(map[string]int64{"N": 11})
	total := b.Total()
	if want := (int64(11*11*11) - 11) / 6; total != want {
		t.Fatalf("Total = %d, want %d", total, want)
	}
	var count int64
	chunk := int64(17)
	for lo := int64(1); lo <= total; lo += chunk {
		hi := lo + chunk - 1
		if hi > total {
			hi = total
		}
		bb := r.Unranker.MustBind(map[string]int64{"N": 11})
		if err := ForRange(bb, lo, hi, func(pc int64, idx []int64) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if count != total {
		t.Errorf("executed %d iterations, want %d", count, total)
	}
}

func TestCollapseRandomNestsProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n, params := nesttest.RandRegularNest(rnd)
		c := 1 + rnd.Intn(n.Depth())
		r, err := Collapse(n, c, unrank.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := r.CheckTotalMatchesRanking(params); err != nil {
			t.Fatalf("trial %d nest\n%s: %v", trial, n, err)
		}
	}
}

func TestTripCounts(t *testing.T) {
	r := MustCollapse(correlation3(), 2, unrank.Options{})
	T := r.TripCounts()
	if len(T) != 4 {
		t.Fatalf("len(TripCounts) = %d", len(T))
	}
	// T[2] is the trip count of the k loop: N.
	if !T[2].Equal(poly.Var("N")) {
		t.Errorf("T[2] = %s", T[2])
	}
	// T[0] is the total work: N * (N-1)N/2.
	want := poly.MustParse("N*(N-1)*N/2")
	if !T[0].Equal(want) {
		t.Errorf("T[0] = %s", T[0])
	}
}
