package nest

import "testing"

// benchNests are the shapes the bound-shape specializer targets: every
// bound of tri/tetra/skew classifies as constant, i+c or a·i+c; the
// two-term nest keeps one generic bound (the i+j lower bound) so the
// fallback path is measured too.
func benchNests() []struct {
	name   string
	n      *Nest
	params map[string]int64
} {
	return []struct {
		name   string
		n      *Nest
		params map[string]int64
	}{
		{"tri-2d", MustNew([]string{"N"},
			L("i", "0", "N-1"), L("j", "i+1", "N")), map[string]int64{"N": 500}},
		{"tetra-3d", MustNew([]string{"N"},
			L("i", "0", "N-1"), L("j", "0", "i+1"), L("k", "j", "i+1")), map[string]int64{"N": 90}},
		{"skew-2d", MustNew([]string{"N"},
			L("i", "0", "N"), L("j", "2*i", "2*i+40")), map[string]int64{"N": 500}},
		{"two-term-3d", MustNew([]string{"N"},
			L("i", "0", "N"), L("j", "0", "N"), L("k", "i+j", "2*N+2")), map[string]int64{"N": 40}},
	}
}

var evalSink int64

// benchBounds walks the full iteration space evaluating the fused
// innermost (lo, hi) pair at every tuple — the evaluation pattern of the
// range-batched engine's hot path.
func benchBounds(b *testing.B, inst *Instance) {
	idx := make([]int64, inst.Depth())
	last := inst.Depth() - 1
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		inst.EnumerateScratch(idx, func(t []int64) bool {
			lo, hi := inst.BoundsAt(last, t)
			sink += hi - lo
			return true
		})
	}
	evalSink = sink
}

// BenchmarkBoundsSpecialized measures the shape-specialized affine
// evaluators (direct struct dispatch, no term loop).
func BenchmarkBoundsSpecialized(b *testing.B) {
	for _, c := range benchNests() {
		inst, err := c.n.Bind(c.params)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) { benchBounds(b, inst) })
	}
}

// BenchmarkBoundsGeneric measures the same walk with specialization
// disabled (every bound forced onto the generic term loop) — the
// baseline the specializer is judged against.
func BenchmarkBoundsGeneric(b *testing.B) {
	for _, c := range benchNests() {
		inst, err := c.n.Bind(c.params)
		if err != nil {
			b.Fatal(err)
		}
		inst.forceGenericBounds()
		b.Run(c.name, func(b *testing.B) { benchBounds(b, inst) })
	}
}
