// Package kernels implements the benchmark programs of the paper's
// evaluation (§VII): Polybench-derived non-rectangular kernels
// (correlation, covariance, symm, syrk, syr2k — plus manually tiled
// variants of correlation and covariance whose tile space is itself
// triangular), the two triangular-matrix programs added by the paper
// (utma: upper-triangular matrix add, ltmp: lower-triangular matrix
// product), and two geometric kernels covering the remaining shape
// classes of the Fig. 5 model (trapez: trapezoidal, tetra: tetrahedral).
//
// Every kernel declares the affine nest of its parallel (collapsible)
// loops, and provides three executable forms used by the experiments:
// a sequential reference, an outer-loop body for the
// schedule(static)/schedule(dynamic) baselines of Fig. 9, and a
// collapsed-iteration body driven by the collapsed runtime. All forms
// compute bit-identical results (each iteration of the parallel loops
// owns its outputs), so correctness is checked by exact checksum
// comparison.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/unrank"
)

// Instance is a kernel bound to problem-size parameters with allocated
// data, ready to run. Implementations are safe for concurrent invocation
// of RunOuter on distinct i and RunCollapsed on distinct tuples.
type Instance interface {
	// OuterRange returns the half-open range of the outermost loop.
	OuterRange() (lo, hi int64)
	// RunOuter executes all work of outer iteration i (the inner loops
	// run inside). Used by the outer-parallel baselines.
	RunOuter(i int64)
	// RunCollapsed executes the body of one collapsed iteration; inner
	// non-collapsed loops run inside.
	RunCollapsed(idx []int64)
	// WorkPerOuter returns the work units (innermost iteration count) of
	// outer iteration i, for the schedule simulator.
	WorkPerOuter(i int64) float64
	// WorkPerCollapsed returns the work units of the collapsed iteration
	// idx.
	WorkPerCollapsed(idx []int64) float64
	// Checksum summarises the output exactly (used to compare variants).
	Checksum() float64
	// Reset restores the initial data so the instance can be re-run.
	Reset()
}

// RangeRunner is an optional fast path an Instance may implement: it
// executes `count` consecutive collapsed iterations starting from the
// tuple `start`, advancing the indices inline — exactly the shape of the
// code the paper's tool generates (§V: body and incrementation fused in
// one loop, with the costly recovery hoisted to the chunk start). The
// elementwise kernels implement it; without it the runtime falls back to
// the generic per-iteration driver.
type RangeRunner interface {
	RunCollapsedRange(start []int64, count int64)
}

// Kernel describes one benchmark program.
type Kernel struct {
	// Name as it appears in the paper's Fig. 9 (or this repo's additions).
	Name string
	// Nest is the affine model of the parallel loops (and, when they are
	// affine, the inner loops too); the Collapse outermost loops are the
	// ones the collapse clause targets.
	Nest *nest.Nest
	// Collapse is the number of outermost loops to collapse.
	Collapse int
	// InnerDependence records that loops below Collapse carry a
	// dependence (ltmp's innermost loop, §VII) — they can never be
	// collapsed, whatever the schedule.
	InnerDependence bool
	// BenchParams are the evaluation problem sizes (scaled from the
	// paper's EXTRALARGE to single-machine Go).
	BenchParams map[string]int64
	// TestParams are small sizes for correctness tests.
	TestParams map[string]int64
	// New allocates data and returns a runnable instance.
	New func(p map[string]int64) Instance
}

// NestParams extracts from p the subset of parameters the nest declares
// (problem-size maps may carry extra keys, e.g. tile sizes used only by
// the body).
func (k *Kernel) NestParams(p map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(k.Nest.Params))
	for _, name := range k.Nest.Params {
		out[name] = p[name]
	}
	return out
}

// Collapsed builds the collapse transformation for the kernel.
func (k *Kernel) Collapsed() (*core.Result, error) {
	return core.Collapse(k.Nest, k.Collapse, unrank.Options{})
}

// register is an identity marker for kernel definitions; the
// presentation order lives in All so that it does not depend on package
// initialization order.
func register(k *Kernel) *Kernel { return k }

// All returns the kernels in the Fig. 9 bar order used throughout the
// experiments.
func All() []*Kernel {
	return []*Kernel{
		Correlation, CorrelationTiled, Covariance, CovarianceTiled,
		Symm, Syrk, Syr2k, Trapez, Tetra, Utma, Ltmp,
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (*Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	var names []string
	for _, k := range All() {
		names = append(names, k.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, names)
}

// RunSeq executes the kernel sequentially (the reference).
func RunSeq(inst Instance) {
	lo, hi := inst.OuterRange()
	for i := lo; i < hi; i++ {
		inst.RunOuter(i)
	}
}

// RunOuterParallel executes the outer loop under the given schedule —
// the paper's baseline parallelizations (Fig. 9 "static" and "dynamic").
func RunOuterParallel(inst Instance, threads int, sched omp.Schedule) {
	lo, hi := inst.OuterRange()
	omp.ParallelFor(threads, lo, hi, sched, func(tid int, i int64) {
		inst.RunOuter(i)
	})
}

// RunCollapsedParallel executes the collapsed loops under the given
// schedule with the §V once-per-chunk recovery scheme. Instances
// implementing RangeRunner get the generated-code-style fused loop
// (recover once per chunk, then inline body+increment); others run
// through the generic driver.
func RunCollapsedParallel(k *Kernel, inst Instance, res *core.Result, p map[string]int64,
	threads int, sched omp.Schedule) error {
	rr, ok := inst.(RangeRunner)
	if !ok {
		return omp.CollapsedFor(res, k.NestParams(p), threads, sched, func(tid int, idx []int64) {
			inst.RunCollapsed(idx)
		})
	}
	if threads < 1 {
		threads = 1
	}
	b0, err := res.Unranker.Bind(k.NestParams(p))
	if err != nil {
		return err
	}
	bounds := make([]*unrank.Bound, threads)
	bounds[0] = b0
	for t := 1; t < threads; t++ {
		bounds[t] = b0.Clone()
	}
	total := b0.Total()
	if total == 0 {
		return nil
	}
	var firstErr error
	var mu sync.Mutex
	omp.ParallelForChunks(threads, 1, total+1, sched, func(tid int, clo, chi int64) {
		b := bounds[tid]
		idx := b.Scratch()
		if err := b.Unrank(clo, idx); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		rr.RunCollapsedRange(idx, chi-clo)
	})
	return firstErr
}

// RunCollapsedSerialChunks executes the collapsed loops serially in
// `chunks` equal ranges, each performing its own costly recovery. This
// reproduces the paper's Fig. 10 protocol: "serial execution of the
// transformed program where root evaluations are performed 12 times, to
// simulate the computations performed with 12 threads".
func RunCollapsedSerialChunks(k *Kernel, inst Instance, res *core.Result, p map[string]int64,
	chunks int) error {
	b, err := res.Unranker.Bind(k.NestParams(p))
	if err != nil {
		return err
	}
	total := b.Total()
	if total == 0 {
		return nil
	}
	if int64(chunks) > total {
		chunks = int(total)
	}
	base := total / int64(chunks)
	rem := total % int64(chunks)
	lo := int64(1)
	rr, fast := inst.(RangeRunner)
	idx := b.Scratch()
	for c := 0; c < chunks; c++ {
		size := base
		if int64(c) < rem {
			size++
		}
		hi := lo + size - 1
		if fast {
			if err := b.Unrank(lo, idx); err != nil {
				return err
			}
			rr.RunCollapsedRange(idx, size)
		} else if err := core.ForRange(b, lo, hi, func(pc int64, idx []int64) {
			inst.RunCollapsed(idx)
		}); err != nil {
			return err
		}
		lo = hi + 1
	}
	return nil
}

// lcg fills a float64 slice with deterministic pseudo-random values in
// (0, 1), so all variants start from identical data.
func lcg(dst []float64, seed uint64) {
	s := seed*6364136223846793005 + 1442695040888963407
	for i := range dst {
		s = s*6364136223846793005 + 1442695040888963407
		dst[i] = float64(s>>11) / float64(1<<53)
	}
}
