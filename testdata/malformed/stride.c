/* Malformed on purpose: the inner loop has a non-unit stride, which the
   Fig. 5 loop model (and the cparse front end) does not accept. */
#pragma omp parallel for collapse(2) schedule(static)
for (i = 0; i < N; i++)
  for (j = 0; j < N; j += 2)
    a[i][j] = 0;
