package poly

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompiledMatchesEvalRat(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vars := []string{"x", "y", "N"}
	for trial := 0; trial < 200; trial++ {
		p := randPoly(r, vars, 5, 3, 9)
		c, err := p.Compile(vars)
		if err != nil {
			t.Fatal(err)
		}
		vals := []int64{int64(r.Intn(41) - 20), int64(r.Intn(41) - 20), int64(r.Intn(41) - 20)}
		env := map[string]*big.Rat{
			"x": big.NewRat(vals[0], 1), "y": big.NewRat(vals[1], 1), "N": big.NewRat(vals[2], 1),
		}
		want, err := p.EvalRat(env)
		if err != nil {
			t.Fatal(err)
		}
		got := c.EvalBig(vals)
		if got.Cmp(want) != 0 {
			t.Fatalf("EvalBig(%s at %v) = %s, want %s", p, vals, got, want)
		}
		if want.IsInt() && want.Num().IsInt64() {
			if v, ok := c.EvalInt64(vals); ok && v != want.Num().Int64() {
				t.Fatalf("EvalInt64 mismatch: %d vs %s", v, want)
			}
			if v := c.EvalExact(vals); v != want.Num().Int64() {
				t.Fatalf("EvalExact mismatch: %d vs %s", v, want)
			}
		}
	}
}

func TestEvalExactFloorsFractions(t *testing.T) {
	p := MustParse("x/2")
	c := p.MustCompile([]string{"x"})
	cases := []struct{ x, want int64 }{{4, 2}, {5, 2}, {-5, -3}, {-4, -2}, {0, 0}, {3, 1}}
	for _, cse := range cases {
		if got := c.EvalExact([]int64{cse.x}); got != cse.want {
			t.Errorf("floor(%d/2) = %d, want %d", cse.x, got, cse.want)
		}
	}
}

func TestEvalInt64OverflowFallsBack(t *testing.T) {
	p := MustParse("x^4")
	c := p.MustCompile([]string{"x"})
	if _, ok := c.EvalInt64([]int64{1 << 20}); !ok {
		// 2^80 overflows; EvalExact must still work via big path... but
		// it would exceed int64. Use a value whose 4th power fits big but
		// not the int64 intermediate check below instead.
		t.Log("int64 path correctly reported overflow")
	}
	big4 := int64(100000) // 1e20 exceeds int64; EvalExact should panic
	defer func() {
		if recover() == nil {
			t.Error("EvalExact beyond int64 range did not panic")
		}
	}()
	c.EvalExact([]int64{big4})
}

func TestCompileErrors(t *testing.T) {
	p := MustParse("x + y")
	if _, err := p.Compile([]string{"x"}); err == nil {
		t.Error("missing variable not detected")
	}
	if _, err := p.Compile([]string{"x", "x", "y"}); err == nil {
		t.Error("duplicate variable not detected")
	}
	if _, err := p.Compile([]string{"x", "y", "unused"}); err != nil {
		t.Errorf("extra variable rejected: %v", err)
	}
}

func TestCompiledEvalFloat(t *testing.T) {
	p := MustParse("x^2/2 - 3*x + 1")
	c := p.MustCompile([]string{"x"})
	for x := -5.0; x <= 5.0; x += 0.5 {
		want := x*x/2 - 3*x + 1
		if got := c.EvalFloat([]float64{x}); math.Abs(got-want) > 1e-12 {
			t.Errorf("EvalFloat(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestCompiledZeroPoly(t *testing.T) {
	c := Zero().MustCompile([]string{"x"})
	if v, ok := c.EvalInt64([]int64{123}); !ok || v != 0 {
		t.Errorf("zero poly eval = %d,%v", v, ok)
	}
	if v := c.EvalExact([]int64{-7}); v != 0 {
		t.Errorf("zero poly EvalExact = %d", v)
	}
}

func TestCompiledIntAgreement(t *testing.T) {
	// Property: when the int64 path reports ok, it agrees with big.
	cfg := &quick.Config{MaxCount: 150}
	vars := []string{"x", "y", "N"}
	r := rand.New(rand.NewSource(7))
	if err := quick.Check(func(a, b, n int8) bool {
		p := randPoly(r, vars, 6, 4, 12)
		c, err := p.Compile(vars)
		if err != nil {
			return false
		}
		vals := []int64{int64(a), int64(b), int64(n)}
		v, ok := c.EvalInt64(vals)
		if !ok {
			return true
		}
		bg := c.EvalBig(vals)
		return bg.IsInt() && bg.Num().IsInt64() && bg.Num().Int64() == v
	}, cfg); err != nil {
		t.Error(err)
	}
}
