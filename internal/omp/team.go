package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// Team is a persistent worker pool mirroring an OpenMP thread team: the
// goroutines are created once and reused across parallel regions, so
// repeated parallel loops (e.g. a time-stepped solver calling the
// collapsed loop every iteration) avoid per-region goroutine spawning —
// the same reason OpenMP keeps its threads alive between regions.
//
// A Team must be Closed when no longer needed. Methods may not be called
// concurrently with each other (one parallel region at a time, as in
// OpenMP's fork/join model).
type Team struct {
	n       int
	regions []chan func(tid int)
	wg      sync.WaitGroup // workers alive
	barrier sync.WaitGroup // region completion
	closed  bool
	// panicked holds the first worker panic of the current region as a
	// *faults.PanicError; Do re-panics it on the caller after the join,
	// so a region panic neither kills the process from a worker
	// goroutine nor deadlocks the barrier.
	panicked atomic.Pointer[faults.PanicError]
}

// NewTeam starts a team of n persistent workers (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	t := &Team{n: n, regions: make([]chan func(tid int), n)}
	for i := 0; i < n; i++ {
		ch := make(chan func(tid int))
		t.regions[i] = ch
		t.wg.Add(1)
		go func(tid int) {
			defer t.wg.Done()
			for region := range ch {
				t.runRegion(region, tid)
				t.barrier.Done()
			}
		}(i)
	}
	return t
}

// runRegion executes one worker's share of a region under a recover
// guard; the worker survives to serve later regions.
func (t *Team) runRegion(region func(tid int), tid int) {
	defer func() {
		if r := recover(); r != nil {
			t.panicked.CompareAndSwap(nil, faults.Recovered(r))
		}
	}()
	region(tid)
}

// Size returns the number of workers.
func (t *Team) Size() int { return t.n }

// Do runs region once on every worker (fork), waiting for all to finish
// (join). If a worker panics, the remaining workers complete their
// shares, the team stays usable, and the first panic is re-panicked on
// the caller as a *faults.PanicError (recoverable, stack attached); use
// DoErr to receive it as an error instead.
func (t *Team) Do(region func(tid int)) {
	if err := t.DoErr(region); err != nil {
		if pe := faults.AsPanic(err); pe != nil {
			panic(pe)
		}
		panic(err)
	}
}

// DoErr is Do returning the first worker panic as an error (nil when the
// region completed cleanly).
func (t *Team) DoErr(region func(tid int)) error {
	if t.closed {
		panic("omp: Do on closed Team")
	}
	t.panicked.Store(nil)
	t.barrier.Add(t.n)
	for _, ch := range t.regions {
		ch <- region
	}
	t.barrier.Wait()
	if pe := t.panicked.Load(); pe != nil {
		return fmt.Errorf("omp: team region: %w", pe)
	}
	return nil
}

// ParallelForChunks is ParallelForChunks on the persistent team.
func (t *Team) ParallelForChunks(lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	if hi-lo <= 0 {
		return
	}
	plan := chunkPlan(t.n, lo, hi, sched)
	t.Do(func(tid int) {
		plan(tid, func(clo, chi int64) bool { body(tid, clo, chi); return true })
	})
}

// ParallelFor is ParallelFor on the persistent team.
func (t *Team) ParallelFor(lo, hi int64, sched Schedule, body func(tid int, i int64)) {
	t.ParallelForChunks(lo, hi, sched, func(tid int, clo, chi int64) {
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
	})
}

// Close shuts the workers down and waits for them to exit. The Team must
// not be used afterwards.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.regions {
		close(ch)
	}
	t.wg.Wait()
}
