package omp

import (
	"testing"
)

// An unresolved ScheduleAuto must still execute (degrading to guided),
// covering every iteration exactly once.
func TestScheduleAutoResolvesToGuided(t *testing.T) {
	if got := (Schedule{Kind: ScheduleAuto, Chunk: 8}).Resolved(); got.Kind != Guided || got.Chunk != 8 {
		t.Fatalf("Resolved() = %+v, want guided chunk 8", got)
	}
	if got := (Schedule{Kind: Dynamic, Chunk: 4}).Resolved(); got.Kind != Dynamic || got.Chunk != 4 {
		t.Fatalf("Resolved() changed a concrete schedule: %+v", got)
	}
	if ScheduleAuto.String() != "auto" {
		t.Fatalf("ScheduleAuto.String() = %q", ScheduleAuto.String())
	}
	var visited [100]int32
	ParallelFor(4, 0, 100, Schedule{Kind: ScheduleAuto}, func(tid int, i int64) {
		visited[i]++
	})
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("iteration %d visited %d times under unresolved auto", i, v)
		}
	}
}
