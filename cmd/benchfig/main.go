// Command benchfig regenerates the figures of the paper's evaluation
// (§VII). Each figure prints as an aligned text table; see EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
//	benchfig -fig 2          Fig. 2  load imbalance of schedule(static)
//	benchfig -fig 8          Fig. 8  root curves r(i,0,0) - pc
//	benchfig -fig 9          Fig. 9  gains of collapsing (simulated 12-thread makespans)
//	benchfig -fig 10         Fig. 10 control overhead of 12 recoveries (measured)
//	benchfig -fig imbalance  measured per-thread load distribution of the
//	                         collapsed kernel under every schedule kind
//	benchfig -fig overhead   per-kernel × schedule engine comparison
//	                         (original vs per-iteration vs range-batched
//	                         vs recover-every); -json writes BENCH_PR4.json
//	benchfig -fig compile    compile-path throughput: cold serial vs
//	                         parallel fan-out vs cached Collapse per
//	                         kernel; -json writes BENCH_PR5.json
//	benchfig -fig invert     recovery throughput at chunk starts: per-pc
//	                         binary search vs breakpoint-table lookup vs
//	                         batched recovery; -json writes BENCH_PR9.json
//	benchfig -fig autotune   schedule autotuning: the measured-cost
//	                         planner's pick vs a hand-picked
//	                         (schedule, chunk) panel per kernel;
//	                         -json writes BENCH_PR10.json
//	benchfig -fig all        everything
//
// Flags: -threads (virtual thread count, default 12), -quick (small
// problem sizes), -real (also run the goroutine runtime for Fig. 9),
// -chunks (recovery count for Fig. 10, default 12), -n / -fig2threads
// (Fig. 2 geometry), -kernel (kernel for -fig imbalance), -src / -srcn
// (run -fig imbalance on the nest of an annotated C file instead of a
// named kernel; parse errors are reported file:line:col), -trace-out
// (write the imbalance runs' chunk timeline as Chrome trace-event
// JSON), -v (calibration details), -cpuprofile / -memprofile (write
// pprof profiles of the run), -serve (start the live observability
// plane — /metrics, /snapshot, /trace, /debug/pprof — on an address
// for the duration of the run; -hold keeps it up after the run ends,
// negative until interrupted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cparse"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

// options bundles the command-line configuration of one run.
type options struct {
	fig        string
	threads    int
	quick      bool
	real       bool
	chunks     int
	fig2N      int64
	fig2T      int
	kernel     string
	src        string
	srcN       int64
	traceOut   string
	jsonOut    string
	reps       int
	verbose    bool
	serve      string
	hold       time.Duration
	cpuProfile string
	memProfile string

	// serveReady, when set (tests), receives the plane's bound address
	// once it is listening.
	serveReady func(net.Addr)
}

// knownFigs are the accepted -fig values; anything else is rejected up
// front instead of silently printing nothing.
var knownFigs = []string{"2", "8", "9", "10", "imbalance", "ablation", "scaling", "overhead", "compile", "invert", "autotune", "all"}

func main() {
	var o options
	flag.StringVar(&o.fig, "fig", "all", "figure to regenerate: 2|8|9|10|imbalance|all")
	flag.IntVar(&o.threads, "threads", 12, "simulated thread count (paper: 12)")
	flag.BoolVar(&o.quick, "quick", false, "use small problem sizes")
	flag.BoolVar(&o.real, "real", false, "also run the goroutine runtime for Fig. 9")
	flag.IntVar(&o.chunks, "chunks", 12, "recovery count for Fig. 10 (paper: 12)")
	flag.Int64Var(&o.fig2N, "n", 1000, "Fig. 2 problem size N")
	flag.IntVar(&o.fig2T, "fig2threads", 5, "Fig. 2 thread count (paper: 5)")
	flag.StringVar(&o.kernel, "kernel", "correlation", "kernel for -fig imbalance")
	flag.StringVar(&o.src, "src", "", "annotated C file: run -fig imbalance on its nest instead of a named kernel")
	flag.Int64Var(&o.srcN, "srcn", 200, "parameter value for every parameter of the -src nest")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the imbalance chunk timeline as Chrome trace-event JSON")
	flag.StringVar(&o.jsonOut, "json", "", "write the suite report (-fig overhead|compile|invert|autotune) as JSON to this file")
	flag.IntVar(&o.reps, "reps", 0, "best-of repetitions for the measured suites (default 3, quick: 1)")
	flag.BoolVar(&o.verbose, "v", false, "print calibration details")
	flag.StringVar(&o.serve, "serve", "", "serve the observability plane on this address (/metrics, /snapshot, /trace, /debug/pprof) during the run")
	flag.DurationVar(&o.hold, "hold", 0, "with -serve, keep the plane up this long after the run (negative: until interrupted)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	stop, err := profiling.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
	err = run(o)
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	known := false
	for _, f := range knownFigs {
		if o.fig == f {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown figure %q (valid: %v)", o.fig, knownFigs)
	}
	// The plane's registry; figures that accept telemetry (imbalance)
	// feed it, and process gauges/pprof are live either way.
	var servTel *telemetry.Registry
	if o.serve != "" {
		servTel = telemetry.New()
		servTel.EnableFlight(4096, o.traceOut != "")
		plane := obs.NewPlane(servTel)
		addr, err := plane.Serve(o.serve)
		if err != nil {
			return fmt.Errorf("-serve %s: %w", o.serve, err)
		}
		fmt.Fprintf(os.Stderr, "benchfig: observability plane on http://%s (/metrics /snapshot /trace /debug/pprof)\n", addr)
		if o.serveReady != nil {
			o.serveReady(addr)
		}
		defer func() {
			if o.hold < 0 {
				fmt.Fprintln(os.Stderr, "benchfig: run finished; holding plane open until interrupted")
				select {}
			}
			if o.hold > 0 {
				fmt.Fprintf(os.Stderr, "benchfig: run finished; holding plane open %s\n", o.hold)
				time.Sleep(o.hold)
			}
			// Graceful drain: a scraper mid-/trace gets its full answer.
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			plane.Shutdown(shCtx)
		}()
	}
	do := func(f string) bool { return o.fig == "all" || o.fig == f }
	if do("2") {
		fmt.Print(experiments.Fig2(o.fig2N, o.fig2T).Render())
		fmt.Println()
	}
	if do("8") {
		fmt.Print(experiments.RenderFig8(experiments.Fig8()))
		fmt.Println()
	}
	if do("9") {
		opts := experiments.Fig9Options{Threads: o.threads, Quick: o.quick, Real: o.real}
		if o.verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rows, err := experiments.Fig9(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig9(rows, o.threads, o.real))
		fmt.Println()
	}
	if do("10") {
		rows, err := experiments.Fig10(experiments.Fig10Options{Chunks: o.chunks, Quick: o.quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig10(rows, o.chunks))
		fmt.Println()
	}
	if do("imbalance") {
		tel := servTel
		if tel == nil && o.traceOut != "" {
			tel = telemetry.New()
		}
		opts := experiments.ImbalanceOptions{
			Kernel:    o.kernel,
			Threads:   o.threads,
			Quick:     o.quick,
			Telemetry: tel,
		}
		label := o.kernel
		if o.src != "" {
			prog, err := parseSrc(o.src)
			if err != nil {
				return err
			}
			opts.Nest = prog.Nest
			opts.Collapse = prog.CollapseCount
			opts.Params = map[string]int64{}
			for _, p := range prog.Nest.Params {
				opts.Params[p] = o.srcN
			}
			label = fmt.Sprintf("%s (collapse %d, params=%d)",
				filepath.Base(o.src), prog.CollapseCount, o.srcN)
		}
		rows, err := experiments.Imbalance(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderImbalance(rows, label, o.threads))
		fmt.Println()
		if o.traceOut != "" {
			f, err := os.Create(o.traceOut)
			if err != nil {
				return err
			}
			if err := tel.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (open in about:tracing or https://ui.perfetto.dev)\n", o.traceOut)
		}
	}
	if o.fig == "ablation" {
		rows, err := experiments.Ablation(experiments.AblationOptions{Quick: o.quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblation(rows))
		fmt.Println()
	}
	if o.fig == "scaling" {
		rows, err := experiments.Scaling(experiments.ScalingOptions{Quick: o.quick})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(rows))
		fmt.Println()
	}
	if o.fig == "compile" {
		opts := experiments.CompileOptions{Quick: o.quick, Reps: o.reps}
		if o.verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rep, err := experiments.Compile(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCompile(rep))
		fmt.Println()
		if o.jsonOut != "" {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "compile report written to %s\n", o.jsonOut)
		}
	}
	if o.fig == "overhead" {
		opts := experiments.OverheadOptions{Quick: o.quick, Reps: o.reps}
		if o.verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rep, err := experiments.Overhead(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderOverhead(rep))
		fmt.Println()
		if o.jsonOut != "" {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "overhead report written to %s\n", o.jsonOut)
		}
	}
	if o.fig == "invert" {
		opts := experiments.InvertOptions{Quick: o.quick, Reps: o.reps}
		if o.verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rep, err := experiments.Invert(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderInvert(rep))
		fmt.Println()
		if o.jsonOut != "" {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "invert report written to %s\n", o.jsonOut)
		}
	}
	if o.fig == "autotune" {
		opts := experiments.AutotuneOptions{Quick: o.quick, Reps: o.reps, Threads: o.threads}
		if o.verbose {
			opts.Verbose = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		rep, err := experiments.Autotune(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAutotune(rep))
		fmt.Println()
		if o.jsonOut != "" {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				return err
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "autotune report written to %s\n", o.jsonOut)
		}
	}
	return nil
}

// parseSrc reads and parses an annotated C file, reporting parse
// failures compiler style (file:line:col).
func parseSrc(path string) (*cparse.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := cparse.Parse(string(data))
	if err != nil {
		var se *cparse.SyntaxError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("%s:%d:%d: %s", path, se.Line, se.Col, se.Msg)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prog, nil
}
