// Package profiling is the tiny pprof harness shared by the command-line
// tools: a CPU profile spanning the run and a heap snapshot at exit,
// both optional, enabled by -cpuprofile / -memprofile flags.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// a heap snapshot into memPath (when non-empty). The returned stop
// function must run exactly once, after the measured work; it is safe to
// call when both paths are empty (no-op).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
