package unrank

import (
	"math/big"

	"repro/internal/numeric"
)

// Breakpoint-table inversion (the "Raw-speed inversion" scheme). For a
// separable level — rk(prefix, x) = B(prefix) + g(x), detected
// symbolically at compile time — inverting the ranking polynomial no
// longer needs the prefix: tabulate g once per binding and every
// recovery becomes
//
//	target = pc − B(prefix)            (two exact evals, cached per prefix)
//	x*     = max x with g(x) ≤ target  (int64 binary search over the table)
//
// Dense tables (stride 1, level range ≤ Options.TableMaxEntries) hold
// g at every index value of the level's probed coverage and are verified
// monotone entry by entry at build time, so the lookup alone is exact —
// zero polynomial evaluations per recovery. Wider levels get
// geometrically ramped breakpoints up to a uniform power-of-two stride;
// the lookup then narrows the answer to one segment, a short exact
// binary search over g pins it, and a bounded exact correction against
// rk confirms it (the confirmation keeps the strided path sound even if
// g were non-monotone between breakpoints — a wrong segment costs a
// fallback to exact binary search, never a wrong tuple).
//
// Every number involved is an exact integer: the build rejects entries
// that are fractional or overflow int64, truncating or disabling the
// table instead. A lookup that cannot answer (prefix bounds outside the
// probed coverage, overflowing target arithmetic, failed confirmation)
// punts to searchLevel. The table path may punt; it can never be wrong.

// levelTable is one level's precomputed inversion table, immutable after
// Bind and shared across Clones.
type levelTable struct {
	lo, hi int64 // probed coverage: x ∈ [lo, hi)
	// gs[j] = g(xj) exactly, non-decreasing. Dense tables have xj = lo+j
	// and xs == nil; strided tables list breakpoints in xs (ascending,
	// xs[0] == lo).
	gs []int64
	xs []int64
}

// dense reports whether the table holds every index value of [lo, hi).
func (t *levelTable) dense() bool { return t.xs == nil }

// buildTables tabulates every separable level. Called once from Bind,
// before any Clone, when the strategy enables tables. Build failures are
// silent by design: a level without a usable table simply keeps the
// exact binary-search fallback.
func (b *Bound) buildTables() {
	d := b.depth
	if d < 2 {
		return
	}
	b.tables = make([]*levelTable, d-1)
	b.tvals = make([][]int64, d-1)
	b.tbase = make([]int64, d-1)
	b.tpref = make([][]int64, d-1)
	b.tvalid = make([]bool, d-1)
	idxA := make([]int64, d)
	if !b.inst.First(idxA) {
		return // empty domain: nothing to recover, nothing to tabulate
	}
	// Coverage probing: affine bounds are monotone in each prefix
	// iterator, so the lexicographically first tuple and a greedy
	// max-at-every-level tuple probe two extreme corners of the prefix
	// box. Their union covers the whole per-level index range for the
	// common shapes (rectangular, triangular either way, simplex);
	// shapes that peak elsewhere merely leave a coverage hole the
	// lookup punts on.
	idxB := make([]int64, d)
	for q := 0; q < d; q++ {
		lo, hi := b.inst.BoundsAt(q, idxB)
		if hi <= lo {
			copy(idxB, idxA) // degenerate corner: fall back to the first tuple
			break
		}
		idxB[q] = hi - 1
	}
	for k := 0; k < d-1; k++ {
		if b.u.levels[k].gComp == nil {
			continue
		}
		tv := make([]int64, b.np+1)
		copy(tv, b.vals[:b.np])
		b.tvals[k] = tv
		b.tpref[k] = make([]int64, k)
		lo := b.inst.LowerAt(k, idxA)
		hi := b.inst.UpperAt(k, idxA)
		if l2 := b.inst.LowerAt(k, idxB); l2 < lo {
			lo = l2
		}
		if h2 := b.inst.UpperAt(k, idxB); h2 > hi {
			hi = h2
		}
		b.tables[k] = b.buildLevelTable(k, lo, hi)
	}
}

// buildLevelTable tabulates g for level k over [lo, hi), returning nil
// when no usable table exists (empty range, fractional or overflowing
// entries at the very first breakpoint, non-monotone samples).
func (b *Bound) buildLevelTable(k int, lo, hi int64) *levelTable {
	rng := hi - lo
	if rng <= 1 {
		return nil // a single candidate value needs no table
	}
	maxE := int64(b.u.tableMax)
	if rng <= maxE {
		// Dense table: g at every index value, verified monotone at
		// every step — the lookup is exact on its own.
		gs := make([]int64, rng)
		for j := int64(0); j < rng; j++ {
			v, ok := b.gTableEval(k, lo+j)
			if !ok || (j > 0 && v < gs[j-1]) {
				if j < 2 {
					return nil
				}
				return &levelTable{lo: lo, hi: lo + j, gs: gs[:j]}
			}
			gs[j] = v
		}
		return &levelTable{lo: lo, hi: hi, gs: gs}
	}
	// Strided table: a geometric ramp (1, 2, 4, …) from lo — recoveries
	// cluster near the level's start under ascending pc workloads — up
	// to the uniform power-of-two stride that fits the entry budget.
	stride := int64(1)
	for rng/stride > maxE {
		stride <<= 1
	}
	xs := make([]int64, 0, maxE+16)
	gs := make([]int64, 0, maxE+16)
	push := func(x int64) bool {
		v, ok := b.gTableEval(k, x)
		if !ok || (len(gs) > 0 && v < gs[len(gs)-1]) {
			return false
		}
		xs = append(xs, x)
		gs = append(gs, v)
		return true
	}
	for off := int64(0); off < rng; {
		if !push(lo + off) {
			break
		}
		if off < stride {
			if off == 0 {
				off = 1
			} else {
				off <<= 1
			}
		} else {
			off += stride
		}
	}
	if len(xs) < 2 {
		return nil
	}
	return &levelTable{lo: lo, hi: min64(hi, xs[len(xs)-1]+stride), gs: gs, xs: xs}
}

// gTableEval exactly evaluates level k's separable part g at x for the
// table build, rejecting fractional or non-int64 values instead of
// flooring them (a floored entry would poison every lookup that lands
// on it; a rejected one merely truncates coverage).
func (b *Bound) gTableEval(k int, x int64) (int64, bool) {
	tv := b.tvals[k]
	tv[b.np] = x
	g := b.u.levels[k].gComp
	if v, ok := g.EvalInt64(tv); ok {
		return v, true
	}
	r := g.EvalBig(tv)
	if !r.IsInt() {
		return 0, false
	}
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if !q.IsInt64() {
		return 0, false
	}
	return q.Int64(), true
}

// gEval exactly evaluates g at x on the recovery path (strided
// in-segment refinement). Values here are known to be integers — the
// confirmation step against rk repairs any floored stray — and big.Int
// escapes are counted like every other exact evaluation.
func (b *Bound) gEval(k int, x int64) int64 {
	tv := b.tvals[k]
	tv[b.np] = x
	v, usedBig := b.u.levels[k].gComp.EvalExactTracked(tv)
	if usedBig {
		b.stats.BigIntPaths++
	}
	return v
}

// tableBase returns B(prefix) = rk(prefix, lo) − g(lo) for the current
// prefix (in b.vals), cached per level until the prefix changes. lo must
// lie inside the table's coverage.
func (b *Bound) tableBase(k int, lo int64) (int64, bool) {
	pref := b.tpref[k]
	if b.tvalid[k] {
		same := true
		for q := 0; q < k; q++ {
			if pref[q] != b.vals[b.np+q] {
				same = false
				break
			}
		}
		if same {
			return b.tbase[k], true
		}
	}
	base, ok := subChecked(b.rkEval(k, lo), b.gEval(k, lo))
	if !ok {
		return 0, false
	}
	for q := 0; q < k; q++ {
		pref[q] = b.vals[b.np+q]
	}
	b.tbase[k] = base
	b.tvalid[k] = true
	return base, true
}

// tryTable attempts level k's recovery through the breakpoint table:
// the largest x in [lo, hi) with rk(prefix, x) ≤ pc, answered as the
// largest x with g(x) ≤ pc − B(prefix). ok is false when the level has
// no table, the level's bounds leave the probed coverage, the target
// arithmetic overflows, or a strided confirmation fails — the caller
// then falls back to exact binary search.
func (b *Bound) tryTable(k int, pc, lo, hi int64) (int64, bool) {
	tb := b.tables[k]
	if tb == nil || lo < tb.lo || hi > tb.hi {
		return 0, false
	}
	base, ok := b.tableBase(k, lo)
	if !ok {
		return 0, false
	}
	target, ok := subChecked(pc, base)
	if !ok {
		return 0, false
	}
	b.stats.TableLookups++
	if tb.dense() {
		// Search window: table positions of [lo, hi). g(lo) ≤ target is
		// an invariant (pc is inside this prefix's subtree), so the
		// rightmost position with gs ≤ target exists and is exact.
		jl, jr := lo-tb.lo, hi-tb.lo-1
		for jl < jr {
			mid := jl + (jr-jl+1)/2
			if tb.gs[mid] <= target {
				jl = mid
			} else {
				jr = mid - 1
			}
		}
		return tb.lo + jl, true
	}
	// Strided: clamp the breakpoint window to [lo, hi), pick the
	// rightmost in-window breakpoint with gs ≤ target, refine inside its
	// segment with exact g evaluations, then confirm against rk.
	jmin := searchRightmostLE(tb.xs, lo)
	jmax := searchRightmostLT(tb.xs, hi)
	jl, jr := jmin, jmax
	for jl < jr {
		mid := jl + (jr-jl+1)/2
		if tb.gs[mid] <= target {
			jl = mid
		} else {
			jr = mid - 1
		}
	}
	segLo := max64(tb.xs[jl], lo)
	segHi := hi
	if jl < jmax {
		segHi = tb.xs[jl+1]
	}
	lo0, hi0 := segLo, segHi-1
	for lo0 < hi0 {
		mid := lo0 + (hi0-lo0+1)/2
		b.stats.TableCorrections++
		if b.gEval(k, mid) <= target {
			lo0 = mid
		} else {
			hi0 = mid - 1
		}
	}
	// Exact confirmation against rk itself: the strided path's only
	// unverified assumption is g's monotonicity between breakpoints,
	// and correct() walks that assumption off if it was wrong (ok=false
	// ⇒ the caller's binary-search fallback decides).
	steps0 := b.stats.Corrections
	ik, ok := b.correct(k, lo0, pc, lo, hi)
	b.stats.TableCorrections += b.stats.Corrections - steps0 + 1
	return ik, ok
}

// searchRightmostLE returns the largest index j with xs[j] <= v
// (0 when even xs[0] exceeds v — callers guarantee xs[0] <= v).
func searchRightmostLE(xs []int64, v int64) int {
	jl, jr := 0, len(xs)-1
	for jl < jr {
		mid := jl + (jr-jl+1)/2
		if xs[mid] <= v {
			jl = mid
		} else {
			jr = mid - 1
		}
	}
	return jl
}

// searchRightmostLT is searchRightmostLE with a strict bound.
func searchRightmostLT(xs []int64, v int64) int {
	jl, jr := 0, len(xs)-1
	for jl < jr {
		mid := jl + (jr-jl+1)/2
		if xs[mid] < v {
			jl = mid
		} else {
			jr = mid - 1
		}
	}
	return jl
}

// subChecked is a−b with overflow detection.
func subChecked(a, b int64) (int64, bool) {
	if b == minInt64 {
		return 0, false
	}
	return numeric.AddInt64(a, -b)
}

const minInt64 = -1 << 63

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
