// Command loadgen is the traffic generator for the collapsed daemon: it
// drives open-loop Poisson arrivals through a ladder of offered-load
// phases, verifies answers against local sequential enumeration, and
// records the QPS/latency/shed-rate trajectory as a BENCH_PR7.json-style
// serving report.
//
// Two targets:
//
//	-target URL   an externally running daemon
//	(default)     an in-process daemon on 127.0.0.1:0, configured by the
//	              -rate/-burst/-max-inflight/-threads flags — required
//	              for the chaos flags, which use the process-wide
//	              internal/faults injection registry
//
// Open loop means arrivals never wait for responses: each Poisson
// arrival fires one request with no retries, so overload shows up as
// 429s and latency, not as a silently slowed generator.
//
// Chaos flags (in-process target only): -chaos-panic-every N makes
// every Nth worker chunk panic inside the daemon's team,
// -chaos-perturb-roots biases every closed-form root evaluation so the
// exact-correction/escalation machinery must repair each recovery, and
// -chaos-kill-shard-every N kills every Nth in-flight shard executor
// attempt (execute requests switch to the sharded engine, -shards,
// where each kill costs one lease instead of the request). Under chaos
// the differential check (-verify, on by default) still requires every
// 2xx answer to be exactly correct; with shard kills the run also
// fails unless executors actually died and sharded answers came back.
//
// -smoke is the CI gate mode: forced overload for ~2 seconds, asserting
// zero 5xx answers and a nonzero 429 shed; exit status reports the
// verdict (also used by `make loadtest`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

type options struct {
	target      string
	nestSpec    string
	collapse    int
	params      paramFlags
	qps         float64
	duration    time.Duration
	phases      string
	mix         string
	deadline    time.Duration
	seed        int64
	jsonOut     string
	smoke       bool
	verify      bool
	quick       bool
	rate        float64
	burst       float64
	maxInflight int
	threads     int
	shards      int
	chaosPanic  int
	chaosRoots  bool
	chaosKill   int
}

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return err
	}
	p[strings.TrimSpace(name)] = v
	return nil
}

func main() {
	o := options{params: paramFlags{}}
	flag.StringVar(&o.target, "target", "", "daemon base URL (empty: start an in-process daemon)")
	flag.StringVar(&o.nestSpec, "nest", "i=0:N-1; j=i+1:N", "nest as 'i=lo:hi; j=lo:hi; ...' (hi exclusive)")
	flag.IntVar(&o.collapse, "collapse", 0, "collapse count (default: nest depth)")
	flag.Var(o.params, "p", "parameter binding name=value (repeatable; default N=300)")
	flag.Float64Var(&o.qps, "qps", 400, "base offered load, arrivals/s (scaled by -phases)")
	flag.DurationVar(&o.duration, "duration", 3*time.Second, "duration of each phase")
	flag.StringVar(&o.phases, "phases", "0.5,1,2", "comma-separated offered-load multipliers")
	flag.StringVar(&o.mix, "mix", "rank=3,unrank=3,count=1,execute=1,codegen=1", "endpoint mix weights")
	flag.DurationVar(&o.deadline, "deadline", 0, "per-request ?deadline_ms= (0: server default)")
	flag.Int64Var(&o.seed, "seed", 1, "PRNG seed (arrivals and query choice)")
	flag.StringVar(&o.jsonOut, "json", "", "write the serving trajectory report to this file")
	flag.BoolVar(&o.smoke, "smoke", false, "CI smoke gate: forced overload, assert zero 5xx and nonzero 429")
	flag.BoolVar(&o.verify, "verify", true, "differential-check every 2xx answer against local enumeration")
	flag.BoolVar(&o.quick, "quick", false, "short phases (1s) for gate runs")
	flag.Float64Var(&o.rate, "rate", 200, "in-process daemon: admission rate, req/s")
	flag.Float64Var(&o.burst, "burst", 0, "in-process daemon: admission burst")
	flag.IntVar(&o.maxInflight, "max-inflight", 64, "in-process daemon: concurrency bound")
	flag.IntVar(&o.threads, "threads", 4, "in-process daemon: execute team size")
	flag.IntVar(&o.shards, "shards", 0, "execute requests use the sharded engine with this many shards (0: unsharded)")
	flag.IntVar(&o.chaosPanic, "chaos-panic-every", 0, "panic inside every Nth worker chunk (in-process only)")
	flag.BoolVar(&o.chaosRoots, "chaos-perturb-roots", false, "perturb every closed-form root evaluation (in-process only)")
	flag.IntVar(&o.chaosKill, "chaos-kill-shard-every", 0, "kill every Nth in-flight shard executor attempt (in-process only; implies -shards 8)")
	flag.Parse()

	if err := run(&o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// oracle is the local ground truth: the sequential enumeration of the
// nest, against which every 2xx response is differential-checked.
type oracle struct {
	spec     string
	n        *nest.Nest
	c        int
	params   map[string]int64
	total    int64
	tuples   [][]int64 // pc-1 → tuple
	checksum uint64    // sum of serve.TupleHash over the enumeration
}

func buildOracle(o *options) (*oracle, error) {
	n, err := parseNestSpec(o.nestSpec)
	if err != nil {
		return nil, err
	}
	c := o.collapse
	if c <= 0 {
		c = n.Depth()
	}
	if len(o.params) == 0 {
		for _, p := range n.Params {
			o.params[p] = 300
		}
	}
	inst, err := n.Bind(o.params)
	if err != nil {
		return nil, err
	}
	orc := &oracle{spec: o.nestSpec, n: n, c: c, params: o.params}
	inst.Enumerate(func(idx []int64) bool {
		t := append([]int64(nil), idx[:c]...)
		orc.tuples = append(orc.tuples, t)
		orc.checksum += serve.TupleHash(t)
		orc.total++
		return true
	})
	if orc.total == 0 {
		return nil, fmt.Errorf("empty iteration domain for %v", o.params)
	}
	return orc, nil
}

// parseNestSpec parses the rankq loop grammar, inferring parameters from
// free identifiers.
func parseNestSpec(spec string) (*nest.Nest, error) {
	var loops []nest.Loop
	indexSet := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, bounds, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loop %q: want index=lo:hi", part)
		}
		loSrc, hiSrc, ok := strings.Cut(bounds, ":")
		if !ok {
			return nil, fmt.Errorf("loop %q: want index=lo:hi", part)
		}
		lo, err := poly.Parse(loSrc)
		if err != nil {
			return nil, fmt.Errorf("loop %q lower: %w", part, err)
		}
		hi, err := poly.Parse(hiSrc)
		if err != nil {
			return nil, fmt.Errorf("loop %q upper: %w", part, err)
		}
		idx := strings.TrimSpace(name)
		loops = append(loops, nest.Loop{Index: idx, Lower: lo, Upper: hi})
		indexSet[idx] = true
	}
	pset := map[string]bool{}
	for _, l := range loops {
		for _, v := range append(l.Lower.Vars(), l.Upper.Vars()...) {
			if !indexSet[v] {
				pset[v] = true
			}
		}
	}
	var ps []string
	for p := range pset {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return nest.New(ps, loops...)
}

// nestSpecJSON renders the oracle's nest as the structured request form.
func (orc *oracle) request() *serve.Request {
	spec := &serve.NestSpec{Params: orc.n.Params}
	for _, l := range orc.n.Loops {
		spec.Loops = append(spec.Loops, serve.LoopSpec{
			Index: l.Index, Lower: l.Lower.String(), Upper: l.Upper.String(),
		})
	}
	return &serve.Request{Nest: spec, Collapse: orc.c, Params: orc.params}
}

// phaseStats aggregates one phase's outcomes.
type phaseStats struct {
	sent, ok, r429, e4xx, e5xx atomic.Int64
	wrong                      atomic.Int64
	degraded                   atomic.Int64
	sharded                    atomic.Int64

	mu   sync.Mutex
	lats []time.Duration // successful answers only
}

func (ps *phaseStats) observe(d time.Duration) {
	ps.mu.Lock()
	ps.lats = append(ps.lats, d)
	ps.mu.Unlock()
}

func (ps *phaseStats) quantile(q float64) float64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.lats) == 0 {
		return 0
	}
	sort.Slice(ps.lats, func(i, j int) bool { return ps.lats[i] < ps.lats[j] })
	i := int(q * float64(len(ps.lats)-1))
	return float64(ps.lats[i]) / float64(time.Millisecond)
}

func run(o *options) error {
	if o.smoke {
		// Forced overload: offer 2x the admission rate on cheap
		// endpoints, long enough for the bucket to run dry.
		o.phases = "2"
		o.qps = 2 * o.rate
		o.mix = "rank=3,unrank=3,count=1"
		if o.duration > 2*time.Second || o.quick {
			o.duration = 2 * time.Second
		}
	}
	if o.quick && !o.smoke {
		o.duration = time.Second
	}
	orc, err := buildOracle(o)
	if err != nil {
		return err
	}

	base := o.target
	var srv *serve.Server
	if base == "" {
		srv = serve.New(serve.Config{
			Threads:     o.threads,
			MaxInflight: o.maxInflight,
			RatePerSec:  o.rate,
			Burst:       o.burst,
			Registry:    telemetry.New(),
			Logf:        func(string, ...any) {}, // chaos panics are expected; keep stderr clean
		})
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		base = "http://" + addr.String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process daemon on %s (rate %.0f/s, inflight %d)\n",
			base, o.rate, o.maxInflight)
	} else if o.chaosPanic > 0 || o.chaosRoots || o.chaosKill > 0 {
		return fmt.Errorf("chaos flags need the in-process daemon (fault injection is process-wide)")
	}
	if o.chaosKill > 0 && o.shards == 0 {
		o.shards = 8 // shard kills need sharded execute requests to land on
	}

	mix, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	client := serve.NewClient(base)
	client.MaxRetries = -1 // open loop: one shot per arrival
	client.Deadline = o.deadline

	var shardKills atomic.Int64
	if o.chaosPanic > 0 || o.chaosRoots || o.chaosKill > 0 {
		// Warm the daemon's compile cache before arming the plan: the
		// perturbation hook also fires during compile-time root
		// selection, where a biased root is a deterministic
		// applicability failure (it would trip the breaker rather than
		// exercise recovery). With the artifact cached, perturbation
		// lands only on the runtime recovery path, which must repair it.
		warm := serve.NewClient(base)
		if _, err := warm.Compile(context.Background(), orc.request()); err != nil {
			return fmt.Errorf("chaos warm-up compile: %w", err)
		}
		var chunkCount atomic.Int64
		plan := &faults.Plan{}
		if o.chaosPanic > 0 {
			every := int64(o.chaosPanic)
			plan.OnChunk = func(tid int, clo, chi int64) error {
				if chunkCount.Add(1)%every == 0 {
					panic("loadgen chaos: injected worker panic")
				}
				return nil
			}
		}
		if o.chaosRoots {
			plan.PerturbRoot = func(level int, x complex128) complex128 {
				return x + 1.5 // within the exact correction's reach
			}
		}
		if o.chaosKill > 0 {
			// Kill in-flight shard executors: every Nth shard attempt dies
			// at its start. The daemon's coordinator must absorb each kill
			// as one failed lease (retried, split, or re-run uncollapsed)
			// while the response stays exactly correct.
			every := int64(o.chaosKill)
			var shardAttempts atomic.Int64
			plan.OnShard = func(worker int, lo, hi int64) error {
				if shardAttempts.Add(1)%every == 0 {
					shardKills.Add(1)
					panic("loadgen chaos: injected shard executor kill")
				}
				return nil
			}
		}
		defer faults.Activate(plan)()
		fmt.Fprintf(os.Stderr, "loadgen: chaos active (panic-every=%d, perturb-roots=%t, kill-shard-every=%d)\n",
			o.chaosPanic, o.chaosRoots, o.chaosKill)
	}

	report := experiments.ServeReport{
		Suite: "serve",
		Meta:  experiments.NewBenchMeta(),
		Nest:  o.nestSpec,
		Mix:   o.mix,
	}
	var totalWrong, total5xx, total429, totalSharded int64
	for _, ph := range strings.Split(o.phases, ",") {
		mult, err := strconv.ParseFloat(strings.TrimSpace(ph), 64)
		if err != nil || mult <= 0 {
			return fmt.Errorf("bad phase multiplier %q", ph)
		}
		target := o.qps * mult
		row := runPhase(o, orc, client, mix, target, strings.TrimSpace(ph)+"x")
		report.Rows = append(report.Rows, row.row)
		totalWrong += row.wrong
		total5xx += row.row.Errors5xx
		total429 += row.row.Rejected429
		totalSharded += row.sharded
		fmt.Fprintf(os.Stderr,
			"loadgen: phase %-5s offered %7.1f/s achieved %7.1f/s shed %5.1f%% p50 %6.2fms p99 %7.2fms 5xx %d wrong %d\n",
			row.row.Phase, row.row.OfferedQPS, row.row.AchievedQPS, 100*row.row.ShedRate,
			row.row.P50Ms, row.row.P99Ms, row.row.Errors5xx, row.wrong)
	}

	if srv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("in-process daemon drain: %w", err)
		}
	}

	if o.jsonOut != "" {
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: trajectory written to %s\n", o.jsonOut)
	}

	if o.verify && totalWrong > 0 {
		return fmt.Errorf("%d wrong answers (differential check failed)", totalWrong)
	}
	if o.chaosKill > 0 {
		// The gate is end-to-end: executors really died, sharded answers
		// really came back, and (above) every one of them was exactly
		// correct.
		if totalSharded == 0 {
			return fmt.Errorf("shard chaos: no sharded execute answers (mix starved of execute?)")
		}
		if shardKills.Load() == 0 {
			return fmt.Errorf("shard chaos: no shard executors were killed (injection inert?)")
		}
		fmt.Fprintf(os.Stderr, "loadgen: shard chaos ok (%d executors killed across %d sharded answers, all verified)\n",
			shardKills.Load(), totalSharded)
	}
	if o.smoke {
		if total5xx > 0 {
			return fmt.Errorf("smoke: %d 5xx answers under overload (want 0)", total5xx)
		}
		if total429 == 0 {
			return fmt.Errorf("smoke: no 429 shed under forced overload (admission control inert?)")
		}
		fmt.Fprintf(os.Stderr, "loadgen: smoke ok (0 5xx, %d shed with 429)\n", total429)
	}
	return nil
}

type phaseResult struct {
	row     experiments.ServeRow
	wrong   int64
	sharded int64
}

// runPhase issues Poisson arrivals at targetQPS for o.duration, one
// goroutine per arrival, and waits for the stragglers.
func runPhase(o *options, orc *oracle, client *serve.Client, mix []mixEntry,
	targetQPS float64, name string) phaseResult {
	rng := rand.New(rand.NewSource(o.seed))
	var ps phaseStats
	var wg sync.WaitGroup
	ctx := context.Background()

	start := time.Now()
	next := start
	for {
		now := time.Now()
		if now.Sub(start) >= o.duration {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(time.Duration(rng.ExpFloat64() / targetQPS * float64(time.Second)))
		ep := pickEndpoint(mix, rng.Float64())
		pc := 1 + rng.Int63n(orc.total)
		ps.sent.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(ctx, o, orc, client, ep, pc, &ps)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	sent := ps.sent.Load()
	row := experiments.ServeRow{
		Phase:       name,
		TargetQPS:   targetQPS,
		OfferedQPS:  float64(sent) / elapsed,
		AchievedQPS: float64(ps.ok.Load()) / elapsed,
		DurationS:   elapsed,
		Sent:        sent,
		OK:          ps.ok.Load(),
		Rejected429: ps.r429.Load(),
		Errors4xx:   ps.e4xx.Load(),
		Errors5xx:   ps.e5xx.Load(),
		P50Ms:       ps.quantile(0.50),
		P95Ms:       ps.quantile(0.95),
		P99Ms:       ps.quantile(0.99),
		Degraded:    ps.degraded.Load(),
	}
	if sent > 0 {
		row.ShedRate = float64(row.Rejected429) / float64(sent)
	}
	return phaseResult{row: row, wrong: ps.wrong.Load(), sharded: ps.sharded.Load()}
}

// fire sends one request and classifies the outcome, differential-
// checking 2xx payloads against the oracle.
func fire(ctx context.Context, o *options, orc *oracle, client *serve.Client,
	ep string, pc int64, ps *phaseStats) {
	req := orc.request()
	start := time.Now()
	var err error
	var wrong bool
	switch ep {
	case "rank":
		req.Index = orc.tuples[pc-1]
		var resp *serve.RankResponse
		if resp, err = client.Rank(ctx, req); err == nil && o.verify {
			wrong = resp.Pc != pc
		}
	case "unrank":
		req.Pc = pc
		var resp *serve.UnrankResponse
		if resp, err = client.Unrank(ctx, req); err == nil && o.verify {
			wrong = !equalTuple(resp.Index, orc.tuples[pc-1])
		}
	case "count":
		var resp *serve.CountResponse
		if resp, err = client.Count(ctx, req); err == nil && o.verify {
			wrong = resp.Total != orc.total
		}
	case "execute":
		req.Schedule = "dynamic,64"
		req.Shards = o.shards
		var resp *serve.ExecuteResponse
		if resp, err = client.Execute(ctx, req); err == nil {
			if o.verify {
				wrong = resp.Iterations != orc.total || resp.Checksum != orc.checksum
			}
			if resp.Degraded {
				ps.degraded.Add(1)
			}
			if resp.Sharded {
				ps.sharded.Add(1)
			}
		}
	case "codegen":
		_, err = client.Codegen(ctx, req)
	case "compile":
		_, err = client.Compile(ctx, req)
	}
	if err == nil {
		ps.ok.Add(1)
		ps.observe(time.Since(start))
		if wrong {
			ps.wrong.Add(1)
		}
		return
	}
	if ae, ok := err.(*serve.APIError); ok {
		switch {
		case ae.Status == 429:
			ps.r429.Add(1)
		case ae.Status >= 500 && ae.Status != 503:
			ps.e5xx.Add(1)
		case ae.Status == 503:
			ps.r429.Add(1) // drain/shed answers count as shed, not failures
		default:
			ps.e4xx.Add(1)
		}
		return
	}
	ps.e5xx.Add(1) // transport error: the daemon failed us
}

func equalTuple(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type mixEntry struct {
	name   string
	weight float64 // cumulative fraction
}

// parseMix turns "rank=3,unrank=3,count=1" into a cumulative
// distribution for cheap endpoint picking.
func parseMix(s string) ([]mixEntry, error) {
	var entries []mixEntry
	totalW := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		weight := 1.0
		if ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(w), 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
			weight = v
		}
		name = strings.TrimSpace(name)
		switch name {
		case "rank", "unrank", "count", "execute", "codegen", "compile":
		default:
			return nil, fmt.Errorf("unknown endpoint %q in mix", name)
		}
		totalW += weight
		entries = append(entries, mixEntry{name: name, weight: totalW})
	}
	if len(entries) == 0 || totalW == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	for i := range entries {
		entries[i].weight /= totalW
	}
	return entries, nil
}

func pickEndpoint(mix []mixEntry, r float64) string {
	for _, e := range mix {
		if r < e.weight {
			return e.name
		}
	}
	return mix[len(mix)-1].name
}
