package core

import (
	"fmt"
	"strings"

	"repro/internal/nest"
	"repro/internal/unrank"
)

// NestSignature returns a canonical structural signature of collapsing
// the c outermost loops of n under opts: two collapse requests have equal
// signatures exactly when they are the same problem modulo the spelling
// of parameter and iterator names. Canonicalization is positional
// α-renaming — parameters become p0, p1, … in declaration order and
// iterators i0, i1, … outermost-first — after which the bound polynomials
// render deterministically (poly.String orders monomials canonically).
// Options that shape the compiled artifact (mode, verification, start
// tier, correction and enumeration budgets) are part of the signature;
// CompileWorkers is not, because it changes only how the artifact is
// built, never what is built.
//
// ok is false when the request is not cacheable: custom SampleParams
// bind semantics to user-chosen names and magnitudes that positional
// renaming cannot canonicalize, and an invalid nest has no signature.
func NestSignature(n *nest.Nest, c int, opts unrank.Options) (sig string, ok bool) {
	if opts.SampleParams != nil {
		return "", false
	}
	if err := n.Validate(); err != nil {
		return "", false
	}
	if c < 1 || c > n.Depth() {
		return "", false
	}
	// Mirror unrank.New's defaulting so the zero value and the explicit
	// default produce the same signature.
	if opts.MaxEnum <= 0 {
		opts.MaxEnum = 4096
	}
	if opts.MaxCorrection <= 0 {
		opts.MaxCorrection = 8
	}
	if opts.TableMaxEntries <= 0 {
		opts.TableMaxEntries = 4096
	}
	if opts.TableMaxEntries < 64 {
		opts.TableMaxEntries = 64
	}
	if opts.TableMaxEntries > 1<<20 {
		opts.TableMaxEntries = 1 << 20
	}
	m := make(map[string]string, len(n.Params)+c)
	for i, p := range n.Params {
		m[p] = fmt.Sprintf("p%d", i)
	}
	for i, l := range n.Loops[:c] {
		m[l.Index] = fmt.Sprintf("i%d", i)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v2|np=%d|c=%d|mode=%d|verify=%t|tier=%d|corr=%d|enum=%d|tbl=%d",
		len(n.Params), c, opts.Mode, opts.Verify, opts.StartTier,
		opts.MaxCorrection, opts.MaxEnum, opts.TableMaxEntries)
	for _, l := range n.Loops[:c] {
		b.WriteString("|[")
		b.WriteString(l.Lower.Rename(m).String())
		b.WriteByte(';')
		b.WriteString(l.Upper.Rename(m).String())
		b.WriteByte(')')
	}
	return b.String(), true
}
