package serve

import (
	"context"
	"math/big"
	"strconv"
	"strings"

	"repro/internal/autotune"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/roots"
	"repro/internal/unrank"
)

// compileFor compiles (or cache-hits) the collapsed form of the c
// outermost loops, with the circuit breaker in front: a shape whose
// circuit is open fast-fails with the recorded error, and every compile
// outcome feeds back into the breaker. Transient (non-applicability)
// failures never trip a circuit — only deterministic Collapsible errors
// do, because those are the ones guaranteed to recur for the same shape.
func (s *Server) compileFor(n *nest.Nest, c int) (*core.Result, bool, error) {
	opts := unrank.Options{Telemetry: s.reg}
	sig, sigOK := core.NestSignature(n, c, opts)
	if sigOK {
		if err := s.breaker.admit(sig); err != nil {
			return nil, false, err
		}
	}
	cached := sigOK && s.cache.Has(sig)
	res, err := core.CollapseCached(s.cache, n, c, opts)
	if sigOK {
		switch {
		case err == nil:
			s.breaker.record(sig, false, nil)
		case faults.Collapsible(err):
			s.breaker.record(sig, true, err)
		default:
			s.breaker.clearProbe(sig)
		}
	}
	return res, cached, err
}

func (s *Server) handleCompile(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, cached, err := s.compileFor(n, c)
	if err != nil {
		return nil, err
	}
	out := &CompileResponse{
		Collapse: c,
		Ranking:  res.Ranking.String(),
		Total:    res.Total.String(),
		Cached:   cached,
	}
	for k := 0; k < res.C-1; k++ {
		out.Roots = append(out.Roots, roots.String(res.Unranker.RootExpr(k)))
	}
	return out, nil
}

func (s *Server) handleCount(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, _, err := s.compileFor(n, c)
	if err != nil {
		return nil, err
	}
	b, err := res.Unranker.Bind(req.Params)
	if err != nil {
		// A domain beyond the int64 pc range still has an exact
		// cardinality: answer from the counting polynomial over big.Rat,
		// like rankq does.
		if faults.Collapsible(err) {
			env := make(map[string]*big.Rat, len(req.Params))
			for name, v := range req.Params {
				env[name] = new(big.Rat).SetInt64(v)
			}
			if r, perr := res.Unranker.Count().EvalRat(env); perr == nil {
				q := new(big.Int).Quo(r.Num(), r.Denom())
				return &CountResponse{TotalBig: q.String()}, nil
			}
		}
		return nil, err
	}
	return &CountResponse{Total: b.Total(), TotalBig: b.TotalBig().String()}, nil
}

func (s *Server) handleRank(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, _, err := s.compileFor(n, c)
	if err != nil {
		return nil, err
	}
	b, err := res.Unranker.Bind(req.Params)
	if err != nil {
		return nil, err
	}
	if len(req.Index) != res.C {
		return nil, badRequest("rank wants %d indices, got %d", res.C, len(req.Index))
	}
	if !b.Instance().Contains(req.Index) {
		return nil, badRequest("%v is not in the iteration domain", req.Index)
	}
	return &RankResponse{Pc: b.Rank(req.Index)}, nil
}

func (s *Server) handleUnrank(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, _, err := s.compileFor(n, c)
	if err != nil {
		return nil, err
	}
	b, err := res.Unranker.Bind(req.Params)
	if err != nil {
		return nil, err
	}
	if req.Pc < 1 || req.Pc > b.Total() {
		return nil, badRequest("pc = %d out of range 1..%d", req.Pc, b.Total())
	}
	idx := make([]int64, res.C)
	if err := b.Unrank(req.Pc, idx); err != nil {
		return nil, err
	}
	return &UnrankResponse{Index: idx}, nil
}

func (s *Server) handleCodegen(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	res, _, err := s.compileFor(n, c)
	if err != nil {
		return nil, err
	}
	var sch codegen.Scheme
	switch req.Scheme {
	case "", "first-iteration":
		sch = codegen.FirstIteration
	case "per-iteration":
		sch = codegen.PerIteration
	case "chunked":
		sch = codegen.Chunked
	case "simd":
		sch = codegen.SIMD
	case "warp":
		sch = codegen.Warp
	default:
		return nil, badRequest("unknown scheme %q", req.Scheme)
	}
	opts := codegen.Options{
		Scheme:   sch,
		Schedule: req.Schedule,
		Chunk:    req.Chunk,
		VLength:  req.VLength,
		Warp:     req.Warp,
	}
	lang := req.Language
	var code string
	switch lang {
	case "", "c":
		lang = "c"
		code, err = codegen.EmitC(res, opts)
	case "go":
		if sch != codegen.PerIteration && sch != codegen.FirstIteration {
			opts.Scheme = codegen.FirstIteration
		}
		code, err = codegen.EmitGo(res, opts)
	default:
		return nil, badRequest("unknown language %q", req.Language)
	}
	if err != nil {
		return nil, err
	}
	return &CodegenResponse{Language: lang, Code: code}, nil
}

// handleExecute runs the nest on the parallel runtime with a
// checksumming body (bind-once/clone-per-worker engine underneath), the
// request deadline propagated to every chunk boundary. Under
// TierForceFallback the compile step is skipped entirely and the nest
// runs uncollapsed — correct, cheaper to start, merely unbalanced.
func (s *Server) handleExecute(ctx context.Context, req *Request) (any, error) {
	n, c, err := buildNest(req)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	threads := req.Threads
	if threads <= 0 || threads > s.cfg.Threads {
		threads = s.cfg.Threads
	}
	sched := parseScheduleSpec(req.Schedule)
	// The autotuner may pick any team size up to the server cap, so the
	// accumulator array is sized for the cap on the tuned path.
	accums := threads
	if sched.Kind == omp.ScheduleAuto && accums < s.cfg.Threads {
		accums = s.cfg.Threads
	}
	sums := make([]executeAccum, accums)
	body := func(tid int, idx []int64) {
		sums[tid].count++
		sums[tid].sum += TupleHash(idx)
	}

	out := &ExecuteResponse{Threads: threads}
	if tierFrom(ctx) >= TierForceFallback {
		out.Degraded = true
		s.reg.Counter("serve.forced_fallback").Inc()
		err = runUncollapsed(ctx, n, c, req.Params, threads, sched, body)
	} else {
		var res *core.Result
		res, _, err = s.compileFor(n, c)
		switch {
		case err == nil && req.Shards > 0:
			// Sharded engine: the collapsed pc-range runs under the
			// fault-tolerant coordinator, so a worker panic costs one shard
			// attempt (retried, then split, then re-run uncollapsed) instead
			// of the whole request.
			return s.executeSharded(ctx, res, req, threads)
		case err == nil && sched.Kind == omp.ScheduleAuto:
			// Tuned path: the planner picks (schedule, chunk, workers) by
			// simulation against the measured work vector, cached per
			// shape × params bucket × cores, refined from the observed
			// makespan.
			out.Collapsed = true
			var run autotune.Run
			run, err = s.tuner.CollapsedFor(ctx, res, req.Params, body)
			if err == nil {
				out.Tuned = true
				out.Schedule = run.Plan.Decision.String()
				out.PredictedMs = run.Plan.Decision.PredictedSec * 1e3
				out.ActualMs = run.Actual.Seconds() * 1e3
				out.Threads = run.Plan.Decision.Workers
			}
		case err == nil:
			out.Collapsed = true
			err = omp.CollapsedForCtx(ctx, res, req.Params, threads, sched, body)
		case faults.Collapsible(err):
			// The nest is outside the technique: downgrade to plain
			// worksharing rather than failing the request.
			s.reg.Counter("serve.downgrades").Inc()
			err = runUncollapsed(ctx, n, c, req.Params, threads, sched, body)
		}
	}
	if err != nil {
		return nil, err
	}
	for i := range sums {
		out.Iterations += sums[i].count
		out.Checksum += sums[i].sum
	}
	return out, nil
}

// executeSharded answers a /v1/execute with Shards > 0: the compiled
// pc-range runs under the internal/dist coordinator with leases,
// retry/split/fallback degradation, and exactly-once commit — a worker
// panic inside one shard is retried there instead of failing the
// request. The checksum is identical to the unsharded engine's
// (order-independent TupleHash sum), so clients verify sharded answers
// against the same oracle.
func (s *Server) executeSharded(ctx context.Context, res *core.Result, req *Request, threads int) (any, error) {
	rep, err := dist.Run(ctx, res, req.Params, dist.Config{
		Workers:       threads,
		Shards:        req.Shards,
		AllowFallback: true,
		Registry:      s.reg,
		Logf:          s.cfg.Logf,
	}, func(worker int, pc int64, idx []int64) uint64 {
		return TupleHash(idx)
	})
	if err != nil {
		return nil, err
	}
	return &ExecuteResponse{
		Iterations:      rep.Executed + rep.Resumed,
		Checksum:        rep.Sum,
		Collapsed:       !rep.FellBack,
		Threads:         threads,
		Sharded:         true,
		Shards:          rep.PlannedShards,
		ShardRetries:    rep.Retries,
		LeaseExpiries:   rep.LeaseExpiries,
		DuplicateShards: rep.Duplicates,
	}, nil
}

// executeAccum is one worker's checksum cell, padded to its own cache
// line so the per-iteration body does not false-share.
type executeAccum struct {
	count int64
	sum   uint64
	_     [6]uint64
}

// runUncollapsed worksharing-runs the c outermost loops of n (the
// self-contained prefix, as in nonrect.CollapsedForAuto).
func runUncollapsed(ctx context.Context, n *nest.Nest, c int, params map[string]int64,
	threads int, sched omp.Schedule, body func(tid int, idx []int64)) error {
	sub := &nest.Nest{Params: n.Params, Loops: n.Loops[:c]}
	return omp.UncollapsedFor(ctx, sub, params, threads, sched, body)
}

// TupleHash is an order-independent-summable tuple fingerprint (FNV-1a
// over the index values): equal multisets of tuples — and only
// plausibly those — sum to equal checksums. ExecuteResponse.Checksum is
// the sum of TupleHash over every visited tuple, so a client holding the
// sequential enumeration can verify an execute run exactly.
func TupleHash(idx []int64) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range idx {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// parseScheduleSpec maps "static" / "static,64" / "dynamic,16" /
// "guided" / "auto" to a runtime schedule (defaulting to static), the
// same grammar as the OpenMP pragma's schedule clause. "auto" delegates
// the (schedule, chunk, workers) choice to the server's autotuner.
func parseScheduleSpec(clause string) omp.Schedule {
	kind, arg, _ := strings.Cut(clause, ",")
	sch := omp.Schedule{Kind: omp.Static}
	switch strings.TrimSpace(kind) {
	case "dynamic":
		sch.Kind = omp.Dynamic
	case "guided":
		sch.Kind = omp.Guided
	case "auto":
		sch.Kind = omp.ScheduleAuto
	case "static", "":
	}
	if n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64); err == nil && n > 0 {
		sch.Chunk = n
		if sch.Kind == omp.Static {
			sch.Kind = omp.StaticChunk
		}
	}
	return sch
}
