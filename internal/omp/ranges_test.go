package omp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// rangeSchedules deliberately uses chunk sizes that do not divide the
// triangular run lengths, so chunk boundaries split innermost runs.
func rangeSchedules() []Schedule {
	return []Schedule{
		{Kind: Static},
		{Kind: StaticChunk, Chunk: 7},
		{Kind: Dynamic, Chunk: 5},
		{Kind: Guided, Chunk: 3},
	}
}

// TestCollapsedForRangesDifferential checks, for triangular and
// tetrahedral nests under every schedule kind, that the range-batched
// executor visits exactly the same (pc, idx) multiset as the
// per-iteration CollapsedFor and as sequential enumeration.
func TestCollapsedForRangesDifferential(t *testing.T) {
	cases := []struct {
		name   string
		n      *nest.Nest
		params map[string]int64
	}{
		{"tri", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N")), map[string]int64{"N": 17}},
		{"tetra", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1")),
			map[string]int64{"N": 9}},
		{"depth1", nest.MustNew([]string{"N"},
			nest.L("i", "3", "N")), map[string]int64{"N": 41}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := core.Collapse(tc.n, tc.n.Depth(), unrank.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := res.Unranker.Bind(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			truth := make(map[string]int)
			pc := int64(1)
			b.Instance().Enumerate(func(idx []int64) bool {
				truth[fmt.Sprintf("%d:%v", pc, idx)]++
				pc++
				return true
			})
			for _, sched := range rangeSchedules() {
				for _, threads := range []int{1, 4} {
					label := fmt.Sprintf("%v/threads=%d", sched.Kind, threads)

					perIter := make(map[string]int)
					var mu sync.Mutex
					// CollapsedFor has no pc in its body; reconstruct via a
					// per-thread Rank — instead use ranges' own pc below and
					// compare the per-iteration path by tuple + rank query.
					err := CollapsedFor(res, tc.params, threads, sched, func(tid int, idx []int64) {
						// b.Rank mutates the shared Bound's scratch: the
						// mutex serializes it along with the map insert.
						mu.Lock()
						perIter[fmt.Sprintf("%d:%v", b.Rank(idx), idx)]++
						mu.Unlock()
					})
					if err != nil {
						t.Fatalf("%s: CollapsedFor: %v", label, err)
					}
					diffMultiset(t, label+" per-iteration", truth, perIter)

					ranged := make(map[string]int)
					st, err := CollapsedForRangesStats(res, tc.params, threads, sched, nil,
						func(tid int, pc int64, prefix []int64, lo, hi int64) {
							mu.Lock()
							for i := lo; i < hi; i++ {
								tuple := append(append([]int64(nil), prefix...), i)
								ranged[fmt.Sprintf("%d:%v", pc+(i-lo), tuple)]++
							}
							mu.Unlock()
						})
					if err != nil {
						t.Fatalf("%s: CollapsedForRanges: %v", label, err)
					}
					diffMultiset(t, label+" range-batched", truth, ranged)
					if st.Iterations != b.Total() {
						t.Fatalf("%s: stats cover %d iterations, want %d", label, st.Iterations, b.Total())
					}
					if st.Batches == 0 || st.Batches < st.Carries {
						t.Fatalf("%s: implausible stats %+v", label, st)
					}
				}
			}
		})
	}
}

func diffMultiset(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d distinct visits, want %d", label, len(got), len(want))
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Fatalf("%s: visit %s seen %d times, want %d", label, k, got[k], want[k])
		}
	}
}

// TestCollapsedForRangesTelemetry checks the engine counters reach the
// registry and are mutually consistent.
func TestCollapsedForRangesTelemetry(t *testing.T) {
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "i+1"))
	res, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 12}
	tel := telemetry.New()
	st, err := CollapsedForRangesStats(res, params, 3, Schedule{Kind: StaticChunk, Chunk: 4}, tel,
		func(int, int64, []int64, int64, int64) {})
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Counter("omp.range_batches").Value(); got != st.Batches {
		t.Errorf("omp.range_batches = %d, want %d", got, st.Batches)
	}
	if got := tel.Counter("omp.range_carries").Value(); got != st.Carries {
		t.Errorf("omp.range_carries = %d, want %d", got, st.Carries)
	}
	if got := tel.Counter("omp.iterations").Value(); got != st.Iterations {
		t.Errorf("omp.iterations = %d, want %d", got, st.Iterations)
	}
}

// TestCollapsedForRangesCancel checks cooperative cancellation stops the
// range engine at a chunk boundary with ErrCanceled.
func TestCollapsedForRangesCancel(t *testing.T) {
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "N"))
	res, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = CollapsedForRangesCtx(ctx, res, map[string]int64{"N": 50}, 2,
		Schedule{Kind: Dynamic, Chunk: 10}, func(int, int64, []int64, int64, int64) {})
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("got %v, want canceled", err)
	}
}
