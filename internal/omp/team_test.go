package omp

import (
	"sync/atomic"
	"testing"
)

func TestTeamParallelForExactlyOnce(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	for _, sched := range allScheds {
		for _, n := range []int64{0, 1, 7, 333} {
			counts := make([]int32, n)
			team.ParallelFor(0, n, sched, func(tid int, i int64) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("sched %v n=%d: index %d ran %d times", sched, n, i, c)
				}
			}
		}
	}
}

func TestTeamReuseAcrossRegions(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	var total atomic.Int64
	for region := 0; region < 50; region++ {
		team.ParallelFor(0, 100, Schedule{Kind: Dynamic, Chunk: 7}, func(tid int, i int64) {
			total.Add(1)
		})
	}
	if got := total.Load(); got != 5000 {
		t.Errorf("total = %d, want 5000", got)
	}
}

func TestTeamDoRunsOnAllWorkers(t *testing.T) {
	team := NewTeam(5)
	defer team.Close()
	seen := make([]int32, 5)
	team.Do(func(tid int) { atomic.AddInt32(&seen[tid], 1) })
	team.Do(func(tid int) { atomic.AddInt32(&seen[tid], 1) })
	for tid, c := range seen {
		if c != 2 {
			t.Errorf("worker %d ran %d regions", tid, c)
		}
	}
}

func TestTeamSizeClamp(t *testing.T) {
	team := NewTeam(0)
	defer team.Close()
	if team.Size() != 1 {
		t.Errorf("Size = %d", team.Size())
	}
}

func TestTeamCloseIdempotentAndDoPanics(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	team.Close() // must not panic or deadlock
	defer func() {
		if recover() == nil {
			t.Error("Do on closed team did not panic")
		}
	}()
	team.Do(func(int) {})
}

func TestTeamMatchesSpawningRuntime(t *testing.T) {
	// Same coverage semantics as the goroutine-per-region runtime.
	team := NewTeam(4)
	defer team.Close()
	var a, c int64
	team.ParallelForChunks(10, 110, Schedule{Kind: Guided, Chunk: 3}, func(tid int, lo, hi int64) {
		atomic.AddInt64(&a, hi-lo)
		atomic.AddInt64(&c, 1)
	})
	if a != 100 {
		t.Errorf("covered %d iterations", a)
	}
	if c == 0 {
		t.Error("no chunks emitted")
	}
}

func BenchmarkTeamVsSpawn(b *testing.B) {
	team := NewTeam(4)
	defer team.Close()
	b.Run("team", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			team.ParallelFor(0, 64, Schedule{Kind: Static}, func(int, int64) {})
		}
	})
	b.Run("spawn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelFor(4, 0, 64, Schedule{Kind: Static}, func(int, int64) {})
		}
	})
}
