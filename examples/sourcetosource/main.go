// Source-to-source demonstration: parse an OpenMP-annotated C loop nest
// (the collapsetool front end), collapse it, and emit every generation
// scheme — per-iteration (Fig. 3), first-iteration (Fig. 4), chunked
// (§V), SIMD (§VI.A) and GPU-warp (§VI.B) — plus a runnable Go
// rendition.
//
//	go run ./examples/sourcetosource
package main

import (
	"fmt"
	"log"

	nonrect "repro"
)

const input = `
/* sum of two upper triangular matrices (utma, §VII) */
#pragma omp parallel for collapse(2) schedule(static)
for (i = 0; i < N; i++)
  for (j = i; j < N; j++)
    C[i][j] = A[i][j] + B[i][j];
`

func main() {
	prog, err := nonrect.ParseC(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: collapse(%d), schedule(%s), params %v\n",
		prog.CollapseCount, prog.Schedule, prog.Nest.Params)
	fmt.Print(prog.Nest)

	res, err := nonrect.Collapse(prog.Nest, prog.CollapseCount)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nranking polynomial:", res.Ranking)
	fmt.Println("total iterations:  ", res.Total)

	schemes := []struct {
		name string
		opts nonrect.CodegenOptions
	}{
		{"per-iteration (Fig. 3)", nonrect.CodegenOptions{Scheme: nonrect.SchemePerIteration, Body: prog.Body}},
		{"first-iteration (Fig. 4)", nonrect.CodegenOptions{Scheme: nonrect.SchemeFirstIteration, Body: prog.Body}},
		{"chunked (§V)", nonrect.CodegenOptions{Scheme: nonrect.SchemeChunked, Chunk: 256, Body: prog.Body}},
		{"SIMD (§VI.A)", nonrect.CodegenOptions{Scheme: nonrect.SchemeSIMD, VLength: 8, Body: prog.Body}},
		{"warp (§VI.B)", nonrect.CodegenOptions{Scheme: nonrect.SchemeWarp, Warp: 32, Body: prog.Body}},
	}
	for _, s := range schemes {
		fmt.Printf("\n=== %s ===\n", s.name)
		src, err := nonrect.EmitC(res, s.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(src)
	}

	fmt.Println("\n=== Go rendition ===")
	fn, err := nonrect.EmitGo(res, nonrect.CodegenOptions{Scheme: nonrect.SchemeFirstIteration, FuncName: "Utma"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nonrect.GoFile("utma", fn))
}
