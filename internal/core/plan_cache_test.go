package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheRoundTrip(t *testing.T) {
	c := NewCollapseCache(32)
	if _, ok := c.GetPlan("k1"); ok {
		t.Fatal("empty cache returned a plan")
	}
	c.PutPlan("k1", 41)
	c.PutPlan("k1", 42) // replace
	if v, ok := c.GetPlan("k1"); !ok || v.(int) != 42 {
		t.Fatalf("GetPlan = %v, %v", v, ok)
	}
	if c.Plans() != 1 {
		t.Fatalf("Plans() = %d", c.Plans())
	}
	c.DeletePlan("k1")
	c.DeletePlan("k1") // idempotent
	if _, ok := c.GetPlan("k1"); ok {
		t.Fatal("deleted plan still resident")
	}
}

func TestPlanCacheBoundedIndependentlyOfArtifacts(t *testing.T) {
	c := NewCollapseCache(16) // 1 artifact per shard, 4 plans per shard
	for i := 0; i < 4096; i++ {
		c.PutPlan(fmt.Sprintf("plan-%d", i), i)
	}
	if n := c.Plans(); n > 16*4 {
		t.Fatalf("plan table unbounded: %d resident", n)
	}
	if c.Stats().Entries != 0 {
		t.Fatal("plan churn touched the artifact table")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewCollapseCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%37)
				c.PutPlan(key, g)
				c.GetPlan(key)
				if i%11 == 0 {
					c.DeletePlan(key)
				}
			}
		}(g)
	}
	wg.Wait()
}
