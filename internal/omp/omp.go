// Package omp is a small OpenMP-style parallel-for runtime over
// goroutines. It substitutes for the OpenMP constructs used in the
// paper's evaluation (§VII): worksharing of an integer iteration range
// across a fixed team of threads under the static, static-chunked,
// dynamic and guided schedules, plus the collapsed-loop execution schemes
// of §V (one costly index recovery per chunk, then lexicographic
// incrementation), §VI.A (SIMD batches) and §VI.B (warp-strided lanes).
//
// Scheduling semantics follow the OpenMP 4.0 description:
//
//   - Static: the range is divided into one contiguous block per thread,
//     of near-equal size (block-cyclic with a single block).
//   - StaticChunk: chunks of the given size are assigned round-robin to
//     threads (thread t runs chunks t, t+P, t+2P, …).
//   - Dynamic: each thread repeatedly grabs the next chunk (default size
//     1) from a shared counter.
//   - Guided: chunk sizes start at remaining/P and decay exponentially,
//     bounded below by the requested chunk size (default 1).
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Kind enumerates the worksharing schedules.
type Kind int

const (
	Static Kind = iota
	StaticChunk
	Dynamic
	Guided
)

// String returns the OpenMP clause spelling of the schedule kind.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case StaticChunk:
		return "static,chunk"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Schedule is a schedule clause: a kind plus an optional chunk size.
type Schedule struct {
	Kind  Kind
	Chunk int64 // chunk size; defaults: StaticChunk/Dynamic/Guided -> 1
}

func (s Schedule) chunk() int64 {
	if s.Chunk > 0 {
		return s.Chunk
	}
	return 1
}

// DefaultThreads returns the default team size (GOMAXPROCS).
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// chunkPlan builds the per-thread chunk iterator for a schedule over
// [lo, hi). The returned function is called once per thread (possibly
// concurrently) and emits that thread's chunks in order; shared state
// (the dynamic/guided queues) lives in the plan's closure.
func chunkPlan(threads int, lo, hi int64, sched Schedule) func(tid int, emit func(clo, chi int64)) {
	n := hi - lo
	switch sched.Kind {
	case Static:
		base := n / int64(threads)
		rem := n % int64(threads)
		return func(tid int, emit func(clo, chi int64)) {
			size := base
			start := lo + int64(tid)*base
			if int64(tid) < rem {
				size++
				start += int64(tid)
			} else {
				start += rem
			}
			if size > 0 {
				emit(start, start+size)
			}
		}
	case StaticChunk:
		ch := sched.chunk()
		return func(tid int, emit func(clo, chi int64)) {
			for clo := lo + int64(tid)*ch; clo < hi; clo += int64(threads) * ch {
				chi := clo + ch
				if chi > hi {
					chi = hi
				}
				emit(clo, chi)
			}
		}
	case Dynamic:
		ch := sched.chunk()
		var next atomic.Int64
		next.Store(lo)
		return func(tid int, emit func(clo, chi int64)) {
			for {
				clo := next.Add(ch) - ch
				if clo >= hi {
					return
				}
				chi := clo + ch
				if chi > hi {
					chi = hi
				}
				emit(clo, chi)
			}
		}
	case Guided:
		minCh := sched.chunk()
		var mu sync.Mutex
		cur := lo
		grab := func() (int64, int64, bool) {
			mu.Lock()
			defer mu.Unlock()
			if cur >= hi {
				return 0, 0, false
			}
			remaining := hi - cur
			size := remaining / int64(threads)
			if size < minCh {
				size = minCh
			}
			if size > remaining {
				size = remaining
			}
			clo := cur
			cur += size
			return clo, clo + size, true
		}
		return func(tid int, emit func(clo, chi int64)) {
			for {
				clo, chi, ok := grab()
				if !ok {
					return
				}
				emit(clo, chi)
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule kind %d", sched.Kind))
	}
}

// ParallelForChunks partitions the half-open range [lo, hi) according to
// the schedule and invokes body(tid, clo, chi) for each contiguous chunk
// [clo, chi). All chunks assigned to a thread run on the same goroutine,
// in increasing order for the static schedules.
func ParallelForChunks(threads int, lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	if threads < 1 {
		threads = 1
	}
	if hi-lo <= 0 {
		return
	}
	if threads == 1 {
		serialChunks(lo, hi, sched, body)
		return
	}
	plan := chunkPlan(threads, lo, hi, sched)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			plan(tid, func(clo, chi int64) { body(tid, clo, chi) })
		}(t)
	}
	wg.Wait()
}

// serialChunks reproduces each schedule's chunking on a single thread,
// so chunk-boundary effects (e.g. per-chunk recovery cost) are preserved
// in serial measurements.
func serialChunks(lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	switch sched.Kind {
	case Static:
		body(0, lo, hi)
	default:
		ch := sched.chunk()
		for clo := lo; clo < hi; clo += ch {
			chi := clo + ch
			if chi > hi {
				chi = hi
			}
			body(0, clo, chi)
		}
	}
}

// ParallelFor runs body(tid, i) for every i in [lo, hi) under the given
// schedule and team size.
func ParallelFor(threads int, lo, hi int64, sched Schedule, body func(tid int, i int64)) {
	ParallelForChunks(threads, lo, hi, sched, func(tid int, clo, chi int64) {
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
	})
}

// ParallelForTelemetry is ParallelFor with a per-thread chunk timeline
// recorded on tel: each chunk becomes a "chunk"-category trace event
// (named after the schedule kind, annotated with its bounds and
// iteration count) and an observation of the "omp.chunk_seconds"
// histogram. A nil tel falls through to the uninstrumented ParallelFor,
// so the hot loop pays nothing when telemetry is off.
func ParallelForTelemetry(threads int, lo, hi int64, sched Schedule, tel *telemetry.Registry,
	body func(tid int, i int64)) {
	if tel == nil {
		ParallelFor(threads, lo, hi, sched, body)
		return
	}
	tr := tel.Trace()
	hist := tel.Histogram("omp.chunk_seconds", nil)
	evName := sched.Kind.String()
	ParallelForChunks(threads, lo, hi, sched, func(tid int, clo, chi int64) {
		startOff := tr.Now()
		t0 := time.Now()
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
		d := time.Since(t0)
		hist.Observe(d.Seconds())
		tr.Add(telemetry.Event{
			Name: evName, Cat: "chunk", TID: tid, Start: startOff, Dur: d,
			Args: []telemetry.Arg{
				{Name: "lo", Value: clo},
				{Name: "hi", Value: chi},
				{Name: "iters", Value: chi - clo},
			},
		})
	})
	tel.Counter("omp.iterations").Add(hi - lo)
}
