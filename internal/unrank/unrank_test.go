package unrank

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nest"
	"repro/internal/nest/nesttest"
)

func correlationNest() *nest.Nest {
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
}

func tetraNest() *nest.Nest {
	return nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1"))
}

// checkBijection verifies Unrank(Rank(t)) = t for every iteration t and
// Rank(Unrank(pc)) = pc for every pc.
func checkBijection(t *testing.T, b *Bound) {
	t.Helper()
	inst := b.Instance()
	depth := inst.Depth()
	idx := make([]int64, depth)
	got := make([]int64, depth)
	var pc int64
	inst.Enumerate(func(truth []int64) bool {
		pc++
		if r := b.Rank(truth); r != pc {
			t.Fatalf("Rank(%v) = %d, want %d", truth, r, pc)
		}
		if err := b.Unrank(pc, got); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if !reflect.DeepEqual(got, truth) {
			t.Fatalf("Unrank(%d) = %v, want %v", pc, got, truth)
		}
		return true
	})
	if pc != b.Total() {
		t.Fatalf("Total = %d, enumerated %d", b.Total(), pc)
	}
	_ = idx
}

func TestClosedFormCorrelation(t *testing.T) {
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm})
	for _, N := range []int64{2, 3, 5, 10, 40} {
		checkBijection(t, u.MustBind(map[string]int64{"N": N}))
	}
}

func TestClosedFormTetra(t *testing.T) {
	u := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	for _, N := range []int64{2, 3, 5, 12, 25} {
		checkBijection(t, u.MustBind(map[string]int64{"N": N}))
	}
}

func TestBinarySearchMode(t *testing.T) {
	u := MustNew(tetraNest(), Options{Mode: ModeBinarySearch})
	b := u.MustBind(map[string]int64{"N": 15})
	checkBijection(t, b)
	if b.Stats().RootEvals != 0 {
		t.Error("binary-search mode performed root evaluations")
	}
	if b.Stats().Searches == 0 {
		t.Error("binary-search mode performed no searches")
	}
}

func TestAgreementClosedVsBinary(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n, params := nesttest.RandRegularNest(r)
		cf, err := New(n, Options{Mode: ModeClosedForm})
		if err != nil {
			t.Fatalf("trial %d nest\n%s: %v", trial, n, err)
		}
		bs := MustNew(n, Options{Mode: ModeBinarySearch})
		bc := cf.MustBind(params)
		bb := bs.MustBind(params)
		if bc.Total() != bb.Total() {
			t.Fatalf("totals differ: %d vs %d", bc.Total(), bb.Total())
		}
		i1 := make([]int64, n.Depth())
		i2 := make([]int64, n.Depth())
		for pc := int64(1); pc <= bc.Total(); pc++ {
			if err := bc.Unrank(pc, i1); err != nil {
				t.Fatal(err)
			}
			if err := bb.Unrank(pc, i2); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(i1, i2) {
				t.Fatalf("trial %d nest\n%spc=%d: closed %v vs binary %v", trial, n, pc, i1, i2)
			}
		}
	}
}

func TestPropertyBijectionRandomNests(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n, params := nesttest.RandRegularNest(r)
		u, err := New(n, Options{Mode: ModeClosedForm})
		if err != nil {
			t.Fatalf("trial %d nest\n%s: %v", trial, n, err)
		}
		checkBijection(t, u.MustBind(params))
	}
}

func TestNonZeroLowerBounds(t *testing.T) {
	n, params := nesttest.NonZeroLowerNest()
	u := MustNew(n, Options{Mode: ModeClosedForm})
	checkBijection(t, u.MustBind(params))
}

func TestUnrankMatchesIncrement(t *testing.T) {
	// Unrank(pc+1) must equal Increment(Unrank(pc)) — the §V chunked
	// recovery scheme depends on this.
	u := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	b := u.MustBind(map[string]int64{"N": 9})
	cur := make([]int64, 3)
	nxt := make([]int64, 3)
	if err := b.Unrank(1, cur); err != nil {
		t.Fatal(err)
	}
	for pc := int64(2); pc <= b.Total(); pc++ {
		if !b.Increment(cur) {
			t.Fatalf("Increment exhausted at pc=%d", pc)
		}
		if err := b.Unrank(pc, nxt); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cur, nxt) {
			t.Fatalf("pc=%d: increment %v vs unrank %v", pc, cur, nxt)
		}
	}
	if b.Increment(cur) {
		t.Error("Increment past the last iteration returned true")
	}
}

func TestLargeParameterPrecision(t *testing.T) {
	// Floating-point radical evaluation degrades for large pc; the exact
	// correction must keep unranking exact. Spot-check boundary ranks for
	// a large N without enumerating the full space.
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm})
	N := int64(100000)
	b := u.MustBind(map[string]int64{"N": N})
	wantTotal := (N - 1) * N / 2
	if b.Total() != wantTotal {
		t.Fatalf("Total = %d, want %d", b.Total(), wantTotal)
	}
	idx := make([]int64, 2)
	// First and last iterations.
	mustUnrank := func(pc int64, wi, wj int64) {
		t.Helper()
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if idx[0] != wi || idx[1] != wj {
			t.Errorf("Unrank(%d) = %v, want [%d %d]", pc, idx, wi, wj)
		}
	}
	mustUnrank(1, 0, 1)
	mustUnrank(wantTotal, N-2, N-1)
	// Random interior ranks: verify via Rank round-trip.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		pc := 1 + r.Int63n(wantTotal)
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if !b.Instance().Contains(idx) {
			t.Fatalf("Unrank(%d) = %v outside domain", pc, idx)
		}
		if got := b.Rank(idx); got != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d", pc, got)
		}
	}
}

func TestTetraLargePrecision(t *testing.T) {
	u := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	N := int64(2000)
	b := u.MustBind(map[string]int64{"N": N})
	wantTotal := (N*N*N - N) / 6
	if b.Total() != wantTotal {
		t.Fatalf("Total = %d, want %d", b.Total(), wantTotal)
	}
	idx := make([]int64, 3)
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 800; trial++ {
		pc := 1 + r.Int63n(wantTotal)
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if !b.Instance().Contains(idx) {
			t.Fatalf("Unrank(%d) = %v outside domain", pc, idx)
		}
		if got := b.Rank(idx); got != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d", pc, got)
		}
	}
}

func TestUnrankErrors(t *testing.T) {
	u := MustNew(correlationNest(), Options{})
	b := u.MustBind(map[string]int64{"N": 5})
	idx := make([]int64, 2)
	if err := b.Unrank(0, idx); err == nil {
		t.Error("pc=0 accepted")
	}
	if err := b.Unrank(b.Total()+1, idx); err == nil {
		t.Error("pc beyond total accepted")
	}
	if err := b.Unrank(1, make([]int64, 3)); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestSingleLoopCollapse(t *testing.T) {
	// Depth-1 nest: unranking is pc-1 plus the lower bound.
	n := nest.MustNew([]string{"N"}, nest.L("i", "3", "N"))
	u := MustNew(n, Options{Mode: ModeClosedForm})
	b := u.MustBind(map[string]int64{"N": 9})
	if b.Total() != 6 {
		t.Fatalf("Total = %d", b.Total())
	}
	idx := make([]int64, 1)
	for pc := int64(1); pc <= 6; pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatal(err)
		}
		if idx[0] != 2+pc {
			t.Errorf("Unrank(%d) = %d, want %d", pc, idx[0], 2+pc)
		}
	}
}

func TestRootMetadata(t *testing.T) {
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm})
	if u.RootExpr(0) == nil {
		t.Error("RootExpr(0) = nil")
	}
	if u.RootExpr(1) != nil {
		t.Error("RootExpr(last level) != nil")
	}
	if got := len(u.RootCandidates(0)); got != 2 {
		t.Errorf("RootCandidates(0) = %d, want 2 (quadratic)", got)
	}
	if i := u.RootIndex(0); i < 0 || i > 1 {
		t.Errorf("RootIndex(0) = %d", i)
	}
	if u.RootIndex(5) != -1 || u.RootCandidates(5) != nil || u.RootExpr(-1) != nil {
		t.Error("out-of-range root metadata accessors")
	}
	if u.Ranking() == nil || u.Count() == nil || u.Nest() == nil {
		t.Error("nil metadata accessors")
	}
}

func TestDegreeTooHighRejected(t *testing.T) {
	deep := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "i+1"),
		nest.L("l", "0", "i+1"),
		nest.L("m", "0", "i+1"),
	)
	if _, err := New(deep, Options{}); err == nil {
		t.Error("degree-5 nest accepted")
	}
}

func TestQuarticNestClosedForm(t *testing.T) {
	// Four nested loops all depending on i produce a quartic recovery
	// equation at the outermost level — the hardest case the paper
	// supports (§IV.B limit).
	n := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "i+1"),
		nest.L("l", "0", "i+1"),
	)
	u, err := New(n, Options{Mode: ModeClosedForm})
	if err != nil {
		t.Fatalf("quartic nest rejected: %v", err)
	}
	for _, N := range []int64{2, 3, 6, 9} {
		checkBijection(t, u.MustBind(map[string]int64{"N": N}))
	}
}

func TestHugeParameterExactness(t *testing.T) {
	// N = 10^7: the total (~5·10^13) pushes the radical evaluation to
	// the edge of double precision, so the exact correction (and, if
	// needed, the binary-search fallback) must repair floor errors.
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm})
	N := int64(10_000_000)
	b := u.MustBind(map[string]int64{"N": N})
	if want := (N - 1) * N / 2; b.Total() != want {
		t.Fatalf("Total = %d, want %d", b.Total(), want)
	}
	idx := make([]int64, 2)
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 500; trial++ {
		pc := 1 + r.Int63n(b.Total())
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if !b.Instance().Contains(idx) {
			t.Fatalf("Unrank(%d) = %v outside domain", pc, idx)
		}
		if got := b.Rank(idx); got != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d", pc, got)
		}
	}
	// Group boundaries are the FP-hardest ranks: the exact value of the
	// root lands on an integer. Exercise first/last ranks of many groups.
	for i := int64(0); i < N-2; i += N / 97 {
		first := b.Rank([]int64{i, i + 1})
		if err := b.Unrank(first, idx); err != nil {
			t.Fatal(err)
		}
		if idx[0] != i || idx[1] != i+1 {
			t.Fatalf("group %d first rank recovered %v", i, idx)
		}
		last := b.Rank([]int64{i, N - 1})
		if err := b.Unrank(last, idx); err != nil {
			t.Fatal(err)
		}
		if idx[0] != i || idx[1] != N-1 {
			t.Fatalf("group %d last rank recovered %v", i, idx)
		}
	}
	s := b.Stats()
	t.Logf("stats at N=1e7: rootEvals=%d corrections=%d fallbacks=%d searches=%d",
		s.RootEvals, s.Corrections, s.Fallbacks, s.Searches)
}

func TestTwoParamNestBijection(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		n, params := nesttest.RandTwoParamNest(r)
		u, err := New(n, Options{Mode: ModeClosedForm})
		if err != nil {
			t.Fatalf("trial %d nest\n%s: %v", trial, n, err)
		}
		checkBijection(t, u.MustBind(params))
	}
}

func TestExtremeScaleTetra(t *testing.T) {
	// N = 10^6: the total (~1.67·10^17) approaches the int64 limit and
	// the cubic radical loses many low-order bits at large pc, so this
	// exercises the exact-correction and binary-search fallback paths in
	// anger. Every recovery must still be exact.
	u := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	N := int64(1_000_000)
	b := u.MustBind(map[string]int64{"N": N})
	if want := (N*N*N - N) / 6; b.Total() != want {
		t.Fatalf("Total = %d, want %d", b.Total(), want)
	}
	idx := make([]int64, 3)
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		pc := 1 + r.Int63n(b.Total())
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if !b.Instance().Contains(idx) {
			t.Fatalf("Unrank(%d) = %v outside domain", pc, idx)
		}
		if got := b.Rank(idx); got != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d", pc, got)
		}
	}
	s := b.Stats()
	t.Logf("stats at N=1e6 (tetra): rootEvals=%d corrections=%d fallbacks=%d searches=%d",
		s.RootEvals, s.Corrections, s.Fallbacks, s.Searches)
	if s.Corrections == 0 && s.Fallbacks == 0 {
		t.Log("note: radicals stayed exact at this scale (no repairs needed)")
	}
}
