// Package nesttest provides generators of random regular loop nests,
// shared by the property-based tests of the ehrhart, unrank and core
// packages. Every generated nest is regular (no negative trip counts) by
// construction for the parameter values returned alongside it.
package nesttest

import (
	"math/rand"

	"repro/internal/nest"
)

// RandRegularNest returns a random 2- or 3-deep regular nest drawn from a
// catalogue of triangular, rhomboidal, tetrahedral, prism and rectangular
// shapes, together with a small random binding for its N parameter.
func RandRegularNest(r *rand.Rand) (*nest.Nest, map[string]int64) {
	depth := 2 + r.Intn(2)
	loops := []nest.Loop{nest.L("i", "0", "N")}
	if depth == 2 {
		forms := []nest.Loop{
			nest.L("j", "i+1", "N"),   // strict upper triangle
			nest.L("j", "i", "N"),     // upper triangle
			nest.L("j", "0", "i+1"),   // lower triangle
			nest.L("j", "i", "i+4"),   // rhomboid band
			nest.L("j", "0", "N"),     // rectangle
			nest.L("j", "0", "2*i+1"), // widening triangle
		}
		loops = append(loops, forms[r.Intn(len(forms))])
	} else {
		forms := [][2]nest.Loop{
			{nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1")}, // tetrahedron (paper Fig. 6)
			{nest.L("j", "i", "N"), nest.L("k", "j", "N")},     // chained triangle
			{nest.L("j", "0", "N"), nest.L("k", "0", "i+j+1")}, // sum-bound wedge
			{nest.L("j", "0", "i+1"), nest.L("k", "0", "N")},   // triangular prism
		}
		f := forms[r.Intn(len(forms))]
		loops = append(loops, f[0], f[1])
	}
	N := int64(2 + r.Intn(7))
	return nest.MustNew([]string{"N"}, loops...), map[string]int64{"N": N}
}

// RandTwoParamNest returns a random regular nest over two parameters
// (N, M), covering banded, trapezoidal and mixed shapes.
func RandTwoParamNest(r *rand.Rand) (*nest.Nest, map[string]int64) {
	forms := [][]nest.Loop{
		{nest.L("i", "0", "N"), nest.L("j", "i", "i+M")},                          // rhomboid band
		{nest.L("i", "0", "N"), nest.L("j", "0", "M+i")},                          // widening trapezoid
		{nest.L("i", "0", "N"), nest.L("j", "0", "N+M-i")},                        // narrowing trapezoid
		{nest.L("i", "0", "N"), nest.L("j", "0", "M")},                            // rectangle
		{nest.L("i", "0", "N"), nest.L("j", "i", "N+M")},                          // truncated triangle
		{nest.L("i", "0", "N"), nest.L("j", "0", "M"), nest.L("k", "j", "i+j+1")}, // 3-deep wedge
	}
	f := forms[r.Intn(len(forms))]
	return nest.MustNew([]string{"M", "N"}, f...), map[string]int64{
		"N": int64(2 + r.Intn(6)),
		"M": int64(1 + r.Intn(5)),
	}
}

// NonZeroLowerNest returns a nest exercising non-zero constant lower
// bounds, which stress the paper's general recovery formula (§IV.A, "when
// lower bounds are non-null integers").
func NonZeroLowerNest() (*nest.Nest, map[string]int64) {
	return nest.MustNew([]string{"N"},
		nest.L("i", "2", "N"),
		nest.L("j", "i-1", "N+1"),
	), map[string]int64{"N": 7}
}
