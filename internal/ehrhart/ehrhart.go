// Package ehrhart computes iteration-count (Ehrhart) polynomials and
// ranking Ehrhart polynomials for loop nests of the Fig. 5 model
// (paper §III).
//
// For nests whose bounds are integer affine combinations of the
// surrounding iterators and parameters, the number of integer points is
// obtained by iterated symbolic summation, with each inner sum evaluated
// in closed form via Faulhaber's formula
//
//	Σ_{x=1}^{n} x^m = (1/(m+1)) Σ_{j=0}^{m} C(m+1, j) B⁺_j n^{m+1-j}
//
// (B⁺ is the Bernoulli sequence with B1 = +1/2). Because the formula is a
// polynomial identity, the bound n may itself be a polynomial in outer
// iterators and parameters, which is exactly what nested affine loops
// produce. This replaces the PolyLib/barvinok machinery used by the paper
// for this model class: no existential divisions occur, so Ehrhart
// quasi-polynomials degenerate to genuine polynomials.
package ehrhart

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/numeric"
	"repro/internal/poly"
)

// faulhaberVar is the canonical upper-limit variable of the memoized
// Faulhaber polynomials F_m. The NUL byte keeps it out of every namespace
// a nest can produce (identifiers are validated to be plain names).
const faulhaberVar = "\x00faulhaber"

var (
	faulhaberMu    sync.Mutex
	faulhaberCache []*poly.Poly // F_m(faulhaberVar), index m
)

// faulhaber returns the memoized closed form F_m of Σ_{x=1}^{X} x^m as a
// polynomial in the canonical variable X = faulhaberVar. The returned
// polynomial is shared and must not be mutated (Poly operations are
// persistent, so ordinary use is safe).
func faulhaber(m int) *poly.Poly {
	faulhaberMu.Lock()
	defer faulhaberMu.Unlock()
	for len(faulhaberCache) <= m {
		k := len(faulhaberCache)
		X := poly.Var(faulhaberVar)
		f := poly.Zero()
		for j := 0; j <= k; j++ {
			c := new(big.Rat).SetInt(numeric.Binomial(k+1, j))
			c.Mul(c, numeric.BernoulliPlus(j))
			c.Mul(c, big.NewRat(1, int64(k+1)))
			f = f.Add(X.PowInt(k + 1 - j).Scale(c))
		}
		faulhaberCache = append(faulhaberCache, f)
	}
	return faulhaberCache[m]
}

// SumPower returns the closed form of Σ_{x=1}^{n} x^m with the polynomial
// n substituted for the upper limit. m must be non-negative. The
// canonical F_m is computed once per process and memoized alongside the
// Bernoulli/binomial caches it draws on; each call pays only the
// substitution of n.
func SumPower(m int, n *poly.Poly) *poly.Poly {
	if m < 0 {
		panic("ehrhart: negative power")
	}
	return faulhaber(m).Subst(faulhaberVar, n)
}

// Sum returns the closed form of Σ_{v=lo}^{hi} p, where v is the
// summation variable of p and lo, hi are polynomial limits (inclusive).
// The result no longer contains v (unless lo or hi do). The identity is
// polynomial, hence exact for every integer assignment with
// hi >= lo-1; for hi < lo-1 it extends to the usual signed convention.
func Sum(p *poly.Poly, v string, lo, hi *poly.Poly) *poly.Poly {
	coeffs := p.UnivariateIn(v)
	loM1 := lo.Sub(poly.One())
	result := poly.Zero()
	for m, c := range coeffs {
		if c.IsZero() {
			continue
		}
		s := SumPower(m, hi).Sub(SumPower(m, loM1))
		result = result.Add(c.Mul(s))
	}
	return result
}

// TripCounts returns the family of trip-count polynomials of the nest:
// T[k] is the number of iterations of the sub-nest formed by loops
// k..depth-1, as a polynomial in iterators i_0..i_{k-1} and the
// parameters; T[depth] = 1 and T[0] is the Ehrhart polynomial of the
// whole nest (a polynomial in the parameters alone).
func TripCounts(n *nest.Nest) []*poly.Poly {
	d := n.Depth()
	T := make([]*poly.Poly, d+1)
	T[d] = poly.One()
	for k := d - 1; k >= 0; k-- {
		l := n.Loops[k]
		hi := l.Upper.Sub(poly.One())
		T[k] = Sum(T[k+1], l.Index, l.Lower, hi)
	}
	return T
}

// Count returns the Ehrhart polynomial of the nest: the exact number of
// iterations as a polynomial in the parameters.
func Count(n *nest.Nest) *poly.Poly { return TripCounts(n)[0] }

// Ranking returns the ranking Ehrhart polynomial r(i_0,…,i_{d-1}) of the
// nest (paper §III): the 1-based rank of iteration (i_0,…,i_{d-1}) in
// lexicographic execution order,
//
//	r(t) = 1 + Σ_{m} Σ_{x=l_m}^{i_m - 1} T_{m+1}(i_0..i_{m-1}, x).
//
// r is a bijection from the iteration domain onto 1..Count and is
// monotonically increasing with respect to the lexicographic order of the
// tuples.
func Ranking(n *nest.Nest) *poly.Poly {
	T := TripCounts(n)
	r := poly.One()
	for m := 0; m < n.Depth(); m++ {
		l := n.Loops[m]
		hi := poly.Var(l.Index).Sub(poly.One())
		r = r.Add(Sum(T[m+1], l.Index, l.Lower, hi))
	}
	return r
}

// CheckDegree verifies the paper's §IV.B applicability condition on a
// ranking polynomial: every variable must appear with degree at most 4 in
// every monomial, so that each recovery equation is symbolically solvable
// by radicals.
func CheckDegree(r *poly.Poly) error {
	if d := r.MaxVarDegree(); d > 4 {
		return fmt.Errorf("ehrhart: ranking polynomial has a variable of degree %d > 4; "+
			"more than 4 nested loops depend on a single index (paper §IV.B): %w",
			d, faults.ErrDegreeTooHigh)
	}
	return nil
}
