package poly

import (
	"fmt"
	"math/big"

	"repro/internal/faults"
	"repro/internal/numeric"
)

// Compiled is a polynomial preprocessed for fast repeated evaluation at
// integer points. The polynomial is stored as num/den with integer
// numerator coefficients; evaluation first tries an overflow-checked
// int64 path and transparently falls back to big.Int arithmetic.
//
// Compiled evaluation sits on the hot path of unranking (the exact
// correction step runs it a handful of times per recovered index), so the
// int64 fast path matters.
type Compiled struct {
	vars  []string // evaluation order; position = value index
	den   *big.Int // common denominator, > 0
	den64 int64    // den as int64 (0 if it does not fit)

	coeffs64 []int64    // numerator coefficients, aligned with pows
	coeffsOK bool       // all numerator coefficients fit in int64
	coeffsBG []*big.Int // always populated
	pows     [][]int    // pows[t][v] = exponent of vars[v] in term t
	maxPow   []int      // per-variable maximum exponent
	fcoeffs  []float64  // coefficient/den as float64, for EvalFloat
}

// Compile prepares p for evaluation with values supplied positionally for
// the given variables. Every variable of p must appear in vars; vars may
// contain extra names.
func (p *Poly) Compile(vars []string) (*Compiled, error) {
	pos := make(map[string]int, len(vars))
	for i, v := range vars {
		if _, dup := pos[v]; dup {
			return nil, fmt.Errorf("poly: duplicate variable %q", v)
		}
		pos[v] = i
	}
	for _, v := range p.Vars() {
		if _, ok := pos[v]; !ok {
			return nil, fmt.Errorf("poly: variable %q of polynomial not in evaluation order", v)
		}
	}
	c := &Compiled{
		vars:   append([]string(nil), vars...),
		den:    p.CommonDenominator(),
		maxPow: make([]int, len(vars)),
	}
	if c.den.IsInt64() {
		c.den64 = c.den.Int64()
	}
	denRat := new(big.Rat).SetInt(c.den)

	c.coeffsOK = true
	for _, k := range p.sortedKeys() {
		t := p.terms[k]
		num := new(big.Rat).Mul(t.coeff, denRat)
		if !num.IsInt() {
			return nil, fmt.Errorf("poly: internal error: non-integer scaled coefficient")
		}
		n := new(big.Int).Set(num.Num())
		c.coeffsBG = append(c.coeffsBG, n)
		if n.IsInt64() {
			c.coeffs64 = append(c.coeffs64, n.Int64())
		} else {
			c.coeffs64 = append(c.coeffs64, 0)
			c.coeffsOK = false
		}
		pw := make([]int, len(vars))
		for _, ve := range t.exps {
			vi := pos[varNameOf(ve.id)]
			pw[vi] = int(ve.exp)
			if int(ve.exp) > c.maxPow[vi] {
				c.maxPow[vi] = int(ve.exp)
			}
		}
		c.pows = append(c.pows, pw)
		f, _ := t.coeff.Float64()
		c.fcoeffs = append(c.fcoeffs, f)
	}
	return c, nil
}

// MustCompile is Compile but panics on error; for statically known-good
// variable orders.
func (p *Poly) MustCompile(vars []string) *Compiled {
	c, err := p.Compile(vars)
	if err != nil {
		panic(err)
	}
	return c
}

// Vars returns the compiled evaluation order.
func (c *Compiled) Vars() []string { return append([]string(nil), c.vars...) }

// EvalInt64 evaluates the polynomial at the integer point vals. The result
// must be an integer (this is always the case for ranking and counting
// polynomials evaluated inside their domain); ok is false if the int64
// fast path overflowed or the result is not integral — callers should then
// use EvalBig.
func (c *Compiled) EvalInt64(vals []int64) (v int64, ok bool) {
	if len(vals) != len(c.vars) {
		panic("poly: wrong number of values")
	}
	if !c.coeffsOK || c.den64 == 0 {
		return 0, false
	}
	sum := int64(0)
	for t, coeff := range c.coeffs64 {
		tp := coeff
		for vi, e := range c.pows[t] {
			for i := 0; i < e; i++ {
				var mok bool
				tp, mok = numeric.MulInt64(tp, vals[vi])
				if !mok {
					return 0, false
				}
			}
		}
		var aok bool
		sum, aok = numeric.AddInt64(sum, tp)
		if !aok {
			return 0, false
		}
	}
	if sum%c.den64 != 0 {
		return 0, false
	}
	return sum / c.den64, true
}

// EvalBig evaluates the polynomial exactly at the integer point vals.
func (c *Compiled) EvalBig(vals []int64) *big.Rat {
	if len(vals) != len(c.vars) {
		panic("poly: wrong number of values")
	}
	// Precompute powers per variable.
	pows := make([][]*big.Int, len(c.vars))
	for vi := range c.vars {
		pows[vi] = make([]*big.Int, c.maxPow[vi]+1)
		pows[vi][0] = big.NewInt(1)
		for e := 1; e <= c.maxPow[vi]; e++ {
			pows[vi][e] = new(big.Int).Mul(pows[vi][e-1], big.NewInt(vals[vi]))
		}
	}
	sum := new(big.Int)
	tp := new(big.Int)
	for t, coeff := range c.coeffsBG {
		tp.Set(coeff)
		for vi, e := range c.pows[t] {
			if e > 0 {
				tp.Mul(tp, pows[vi][e])
			}
		}
		sum.Add(sum, tp)
	}
	return new(big.Rat).SetFrac(sum, new(big.Int).Set(c.den))
}

// EvalExact evaluates at an integer point, using the fast path when
// possible and falling back to exact big arithmetic. The result is
// rounded toward negative infinity if it is not an integer (ranking
// polynomials evaluated outside their domain can be fractional; floor is
// the right semantics for the monotone correction search).
func (c *Compiled) EvalExact(vals []int64) int64 {
	v, _ := c.EvalExactTracked(vals)
	return v
}

// EvalExactTracked is EvalExact additionally reporting whether the exact
// big.Int slow path ran (the int64 fast path overflowed or produced a
// fractional value). The unranker counts these events to surface how
// often a domain strays into big-integer territory.
func (c *Compiled) EvalExactTracked(vals []int64) (v int64, usedBig bool) {
	if v, ok := c.EvalInt64(vals); ok {
		return v, false
	}
	r := c.EvalBig(vals)
	q := new(big.Int).Quo(r.Num(), r.Denom())
	// big.Int.Quo truncates toward zero; adjust to floor.
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	if !q.IsInt64() {
		// The panic value wraps faults.ErrOverflow so boundary recover
		// guards (unrank.Bound.Unrank, core.Collapse) can classify it.
		panic(fmt.Errorf("poly: evaluation %s exceeds int64 range: %w", q, faults.ErrOverflow))
	}
	return q.Int64(), true
}

// EvalFloat evaluates the polynomial at a float64 point.
func (c *Compiled) EvalFloat(vals []float64) float64 {
	if len(vals) != len(c.vars) {
		panic("poly: wrong number of values")
	}
	sum := 0.0
	for t, coeff := range c.fcoeffs {
		tp := coeff
		for vi, e := range c.pows[t] {
			for i := 0; i < e; i++ {
				tp *= vals[vi]
			}
		}
		sum += tp
	}
	return sum
}
