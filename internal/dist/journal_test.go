package dist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

func writeJournal(t *testing.T, records ...journalRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ckpt.journal")
	var b []byte
	for _, rec := range records {
		b = append(b, encodeRecord(rec)...)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func hdr(fp string, total int64) journalRecord {
	return journalRecord{Type: "hdr", Version: journalVersion, Fingerprint: fp, Total: total}
}

func done(lo, hi, iters int64, sum uint64) journalRecord {
	return journalRecord{Type: "done", Lo: lo, Hi: hi, Iters: iters, Sum: sum}
}

func TestJournalRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.journal")
	j, err := CreateJournal(path, "fp-test", 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Interval{Lo: 1, Hi: 40}, 40, 7); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Interval{Lo: 61, Hi: 100}, 40, 11); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != "fp-test" || st.Total != 100 {
		t.Fatalf("header = %q/%d, want fp-test/100", st.Fingerprint, st.Total)
	}
	if st.Done.Covered() != 80 || st.Iters != 80 || st.Sum != 18 {
		t.Fatalf("replayed state covered=%d iters=%d sum=%d, want 80/80/18",
			st.Done.Covered(), st.Iters, st.Sum)
	}
	if st.TornTail || st.Duplicates != 0 {
		t.Fatalf("clean journal replayed with TornTail=%v Duplicates=%d", st.TornTail, st.Duplicates)
	}
	if got := st.Done.Complement(1, 100); len(got) != 1 || got[0] != (Interval{Lo: 41, Hi: 60}) {
		t.Fatalf("uncovered work = %v, want [41,60]", got)
	}
}

// TestJournalEmpty: an empty file has no sound state to resume from and
// must refuse with the typed corruption error.
func TestJournalEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReplayJournal(path)
	if !errors.Is(err, faults.ErrJournalCorrupt) {
		t.Fatalf("replay of empty journal = %v, want ErrJournalCorrupt", err)
	}
}

// TestJournalTornTail: a truncated final record is the expected residue
// of a crash mid-append — replay keeps the clean prefix, Reopen
// truncates the tail, and appends continue from there.
func TestJournalTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(valid []byte) []byte
	}{
		{"no-newline", func(v []byte) []byte {
			return append(v, []byte(`0badc0de {"t":"done","lo":9`)...)
		}},
		{"bad-checksum-final", func(v []byte) []byte {
			line := encodeRecord(done(90, 95, 6, 3))
			line[0] ^= 'f' // corrupt the crc prefix
			return append(v, line...)
		}},
		{"truncated-json", func(v []byte) []byte {
			line := encodeRecord(done(90, 95, 6, 3))
			return append(v, line[:len(line)-4]...)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeJournal(t, hdr("fp", 100), done(1, 50, 50, 5))
			valid, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := ReplayJournal(path)
			if err != nil {
				t.Fatalf("torn tail must be tolerated, got %v", err)
			}
			if !st.TornTail {
				t.Fatal("TornTail not reported")
			}
			if st.Done.Covered() != 50 || st.Sum != 5 {
				t.Fatalf("clean prefix lost: covered=%d sum=%d", st.Done.Covered(), st.Sum)
			}
			j, err := st.Reopen(nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append(Interval{Lo: 51, Hi: 100}, 50, 7); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := ReplayJournal(path)
			if err != nil {
				t.Fatalf("replay after tail truncation and append: %v", err)
			}
			if st2.TornTail || st2.Done.Covered() != 100 || st2.Sum != 12 {
				t.Fatalf("post-recovery state: torn=%v covered=%d sum=%d, want false/100/12",
					st2.TornTail, st2.Done.Covered(), st2.Sum)
			}
		})
	}
}

// TestJournalMidCorruption: a bad record BEFORE the final line is body
// damage, not a crash residue, and must refuse.
func TestJournalMidCorruption(t *testing.T) {
	path := writeJournal(t, hdr("fp", 100), done(1, 50, 50, 5), done(51, 100, 50, 7))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the SECOND line's JSON (line 2 of 3).
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x40
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(path); !errors.Is(err, faults.ErrJournalCorrupt) {
		t.Fatalf("mid-file corruption = %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalMissingHeader(t *testing.T) {
	path := writeJournal(t, done(1, 10, 10, 1))
	if _, err := ReplayJournal(path); !errors.Is(err, faults.ErrJournalCorrupt) {
		t.Fatalf("headerless journal = %v, want ErrJournalCorrupt", err)
	}
}

// TestJournalDuplicateRecords: a crashed coordinator can journal the
// same interval twice (speculative double completion straddling the
// crash). Replay must keep the first record's sums and count the
// duplicate, not double-count.
func TestJournalDuplicateRecords(t *testing.T) {
	path := writeJournal(t, hdr("fp", 100), done(1, 50, 50, 5), done(1, 50, 50, 999), done(51, 100, 50, 7))
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if st.Done.Covered() != 100 || st.Sum != 12 || st.Iters != 100 {
		t.Fatalf("deduped state covered=%d sum=%d iters=%d, want 100/12/100",
			st.Done.Covered(), st.Sum, st.Iters)
	}
}

// TestJournalPartialOverlapRefused: a half-covered record cannot come
// from one coordinator's disjoint plans — it means the file mixes
// incompatible runs, and its sums cannot be attributed.
func TestJournalPartialOverlapRefused(t *testing.T) {
	path := writeJournal(t, hdr("fp", 100), done(1, 50, 50, 5), done(40, 60, 21, 3))
	if _, err := ReplayJournal(path); !errors.Is(err, faults.ErrJournalCorrupt) {
		t.Fatalf("partial-overlap record = %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalOutOfRangeInterval(t *testing.T) {
	path := writeJournal(t, hdr("fp", 100), done(90, 120, 31, 3))
	if _, err := ReplayJournal(path); !errors.Is(err, faults.ErrJournalCorrupt) {
		t.Fatalf("out-of-range record = %v, want ErrJournalCorrupt", err)
	}
}
