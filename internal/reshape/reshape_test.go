package reshape

import (
	"testing"

	"repro/internal/nest"
	"repro/internal/unrank"
)

func bind(t *testing.T, n *nest.Nest, params map[string]int64) *unrank.Bound {
	t.Helper()
	u, err := unrank.New(n, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Triangle of N=9 has 36 points == rectangle 6x6.
func triangleAndRect(t *testing.T) (*unrank.Bound, *unrank.Bound) {
	tri := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	rect := nest.MustNew([]string{"A", "B"}, nest.L("x", "0", "A"), nest.L("y", "0", "B"))
	return bind(t, tri, map[string]int64{"N": 9}), bind(t, rect, map[string]int64{"A": 6, "B": 6})
}

func TestMappingBijection(t *testing.T) {
	src, dst := triangleAndRect(t)
	m, err := NewMapping(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 36 {
		t.Fatalf("Total = %d", m.Total())
	}
	seen := map[[2]int64]bool{}
	sIdx := make([]int64, 2)
	dIdx := make([]int64, 2)
	back := make([]int64, 2)
	src.Instance().Enumerate(func(tri []int64) bool {
		copy(sIdx, tri)
		if err := m.SrcToDst(sIdx, dIdx); err != nil {
			t.Fatal(err)
		}
		key := [2]int64{dIdx[0], dIdx[1]}
		if seen[key] {
			t.Fatalf("destination %v hit twice", key)
		}
		seen[key] = true
		if err := m.DstToSrc(dIdx, back); err != nil {
			t.Fatal(err)
		}
		if back[0] != sIdx[0] || back[1] != sIdx[1] {
			t.Fatalf("round trip %v -> %v -> %v", sIdx, dIdx, back)
		}
		return true
	})
	if len(seen) != 36 {
		t.Fatalf("covered %d destination points", len(seen))
	}
}

func TestMappingCardinalityMismatch(t *testing.T) {
	src, _ := triangleAndRect(t)
	rect := nest.MustNew([]string{"A"}, nest.L("x", "0", "A"))
	dst := bind(t, rect, map[string]int64{"A": 35})
	if _, err := NewMapping(src, dst); err == nil {
		t.Error("mismatched cardinalities accepted")
	}
}

func TestForEachPair(t *testing.T) {
	src, dst := triangleAndRect(t)
	m, err := NewMapping(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	prevDst := int64(-1)
	err = m.ForEachPair(func(s, d []int64) bool {
		n++
		// destination visits in rank order: linearised rank = 6x+y+1.
		lin := d[0]*6 + d[1]
		if lin != prevDst+1 {
			t.Fatalf("destination out of order: %v", d)
		}
		prevDst = lin
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 36 {
		t.Fatalf("pairs = %d", n)
	}
}

func TestFusedCoverage(t *testing.T) {
	tri := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	tetra := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1"))
	rect := nest.MustNew([]string{"A"}, nest.L("x", "0", "A"))
	b1 := bind(t, tri, map[string]int64{"N": 7})   // 21
	b2 := bind(t, tetra, map[string]int64{"N": 5}) // 20
	b3 := bind(t, rect, map[string]int64{"A": 13}) // 13
	f, err := NewFused(b1, b2, b3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Total() != 21+20+13 {
		t.Fatalf("Total = %d", f.Total())
	}
	// Unrank every global rank; count per-part occurrences.
	counts := map[string]int{}
	idx := make([]int64, 3)
	for pc := int64(1); pc <= f.Total(); pc++ {
		part, err := f.Unrank(pc, idx)
		if err != nil {
			t.Fatal(err)
		}
		var key string
		switch part {
		case 0:
			key = "tri:" + fmtTuple(idx[:2])
		case 1:
			key = "tetra:" + fmtTuple(idx[:3])
		case 2:
			key = "rect:" + fmtTuple(idx[:1])
		}
		counts[key]++
	}
	if len(counts) != 54 {
		t.Fatalf("distinct tuples = %d", len(counts))
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("%s executed %d times", k, c)
		}
	}
}

func TestFusedForRangeMatchesUnrank(t *testing.T) {
	tri := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	rect := nest.MustNew([]string{"A"}, nest.L("x", "2", "A"))
	b1 := bind(t, tri, map[string]int64{"N": 6})  // 15
	b2 := bind(t, rect, map[string]int64{"A": 9}) // 7
	f, err := NewFused(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	// Chunked traversal crossing the part boundary.
	var got []string
	for lo := int64(1); lo <= f.Total(); lo += 5 {
		hi := lo + 4
		if hi > f.Total() {
			hi = f.Total()
		}
		if err := f.ForRange(lo, hi, func(part int, idx []int64) bool {
			got = append(got, fmtTuple(append([]int64{int64(part)}, idx...)))
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	var want []string
	idx := make([]int64, 2)
	for pc := int64(1); pc <= f.Total(); pc++ {
		part, err := f.Unrank(pc, idx)
		if err != nil {
			t.Fatal(err)
		}
		d := 2
		if part == 1 {
			d = 1
		}
		want = append(want, fmtTuple(append([]int64{int64(part)}, idx[:d]...)))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %s vs %s", i, got[i], want[i])
		}
	}
}

func TestFusedErrors(t *testing.T) {
	if _, err := NewFused(); err == nil {
		t.Error("empty fuse accepted")
	}
	tri := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"))
	b := bind(t, tri, map[string]int64{"N": 5})
	f, _ := NewFused(b)
	idx := make([]int64, 1)
	if _, err := f.Unrank(0, idx); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := f.Unrank(6, idx); err == nil {
		t.Error("rank beyond total accepted")
	}
	if err := f.ForRange(2, 99, func(int, []int64) bool { return true }); err == nil {
		t.Error("out-of-range ForRange accepted")
	}
	if err := f.ForRange(5, 2, func(int, []int64) bool { return true }); err != nil {
		t.Errorf("empty range errored: %v", err)
	}
}

func fmtTuple(idx []int64) string {
	s := ""
	for _, v := range idx {
		s += string(rune('a' + v%26)) // compact deterministic encoding for map keys
	}
	// Append the numbers to disambiguate beyond 26.
	for _, v := range idx {
		s += ":" + itoa(v)
	}
	return s
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
