// Package core implements the paper's primary contribution: automatic
// collapsing of non-rectangular loop nests (Clauss, Altıntaş, Kuhn,
// "Automatic Collapsing of Non-Rectangular Loops", IPDPS 2017).
//
// Collapse takes a perfect affine loop nest (the Fig. 5 model) and a
// count c of outermost loops to collapse, and produces everything needed
// to run — or generate — the collapsed program:
//
//   - the ranking Ehrhart polynomial r(i_0,…,i_{c-1}) of the collapsed
//     sub-nest and the total iteration count polynomial (the collapsed
//     loop runs pc = 1 .. Total);
//   - the unranking function recovering the original indices from pc,
//     built from symbolic radical roots with exact integer correction;
//   - per-range iteration drivers implementing the §V cost-minimisation
//     scheme (one costly recovery per chunk, then lexicographic
//     incrementation), which the runtime schedules across goroutines.
//
// Parallel execution requires the collapsed loops to carry no dependence,
// as in the paper; the transformation itself preserves lexicographic
// order within each chunk.
package core

import (
	"fmt"
	"math"

	"repro/internal/ehrhart"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// Result is a collapsed loop nest.
type Result struct {
	// Nest is the full input nest (depth d).
	Nest *nest.Nest
	// C is the number of outermost loops collapsed (1 <= C <= d).
	C int
	// SubNest is the collapsed sub-nest (the C outermost loops).
	SubNest *nest.Nest
	// Ranking is the ranking Ehrhart polynomial of SubNest.
	Ranking *poly.Poly
	// Total is the iteration-count polynomial of SubNest in the
	// parameters; the collapsed loop header is
	// for (pc = 1; pc <= Total; pc++).
	Total *poly.Poly
	// Unranker recovers (i_0,…,i_{C-1}) from pc.
	Unranker *unrank.Unranker
}

// guard converts a compile-pipeline panic into a *faults.PanicError so
// the public Collapse API never panics on malformed input; provable
// internal invariants still surface, but as inspectable errors with the
// panicking stack attached.
func guard(res **Result, err *error) {
	if r := recover(); r != nil {
		*res = nil
		*err = fmt.Errorf("core: collapse pipeline: %w", faults.Recovered(r))
	}
}

// Collapse builds the collapsed form of the c outermost loops of n.
// opts configures the unranking construction (recovery mode, root
// selection samples).
//
// Failures are typed (see internal/faults): applicability limits wrap
// ErrNonAffine, ErrDegreeTooHigh or ErrNoConvenientRoot; arithmetic
// limits wrap ErrOverflow; an internal panic is captured and returned
// as a *faults.PanicError instead of crashing the caller.
func Collapse(n *nest.Nest, c int, opts unrank.Options) (res *Result, err error) {
	defer guard(&res, &err)
	sp := opts.Telemetry.StartSpan("compile", "core.Collapse", 0)
	defer sp.End(
		telemetry.Arg{Name: "collapse", Value: int64(c)},
		telemetry.Arg{Name: "depth", Value: int64(n.Depth())},
	)
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if c < 1 || c > n.Depth() {
		return nil, fmt.Errorf("core: collapse count %d out of range 1..%d", c, n.Depth())
	}
	sub := &nest.Nest{
		Params: append([]string(nil), n.Params...),
		Loops:  append([]nest.Loop(nil), n.Loops[:c]...),
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("core: collapsed sub-nest invalid: %w", err)
	}
	u, err := unrank.New(sub, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Nest:     n,
		C:        c,
		SubNest:  sub,
		Ranking:  u.Ranking(),
		Total:    u.Count(),
		Unranker: u,
	}, nil
}

// MustCollapse is Collapse but panics on error.
func MustCollapse(n *nest.Nest, c int, opts unrank.Options) *Result {
	r, err := Collapse(n, c, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// CollapseAt collapses c successive loops starting at level `from`
// (0-based) — the general form of the paper's §IV.A "collapse c
// successive loops of this nest": the iterators of the loops surrounding
// the collapsed band become additional symbolic parameters of the
// ranking polynomial, exactly like the size parameters. The caller runs
// the outer loops itself and binds each outer iteration's index values
// through Unranker.Bind (together with the size parameters).
//
// The loops deeper than the band stay inside the body, as with Collapse.
func CollapseAt(n *nest.Nest, from, c int, opts unrank.Options) (res *Result, err error) {
	defer guard(&res, &err)
	if from != 0 {
		sp := opts.Telemetry.StartSpan("compile", "core.CollapseAt", 0)
		defer sp.End(
			telemetry.Arg{Name: "from", Value: int64(from)},
			telemetry.Arg{Name: "collapse", Value: int64(c)},
		)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if from < 0 || from >= n.Depth() {
		return nil, fmt.Errorf("core: start level %d out of range 0..%d", from, n.Depth()-1)
	}
	if from == 0 {
		return Collapse(n, c, opts)
	}
	if c < 1 || from+c > n.Depth() {
		return nil, fmt.Errorf("core: band [%d,%d) exceeds depth %d", from, from+c, n.Depth())
	}
	params := append([]string(nil), n.Params...)
	for _, l := range n.Loops[:from] {
		params = append(params, l.Index)
	}
	sub := &nest.Nest{
		Params: params,
		Loops:  append([]nest.Loop(nil), n.Loops[from:from+c]...),
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("core: collapsed band invalid: %w", err)
	}
	// Root selection needs sample values for the outer iterators too.
	// The generic defaults would give iterators the same magnitude as
	// size parameters, often sampling an empty band (e.g. j = i..N with
	// i = N); sample outer iterators near their lower bounds instead.
	if opts.SampleParams == nil {
		for _, size := range []int64{6, 9, 13} {
			for _, ov := range []int64{0, 1, 2} {
				m := make(map[string]int64, len(params))
				for _, p := range n.Params {
					m[p] = size
				}
				for _, l := range n.Loops[:from] {
					m[l.Index] = ov
				}
				opts.SampleParams = append(opts.SampleParams, m)
			}
		}
	}
	u, err := unrank.New(sub, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Nest:     n,
		C:        c,
		SubNest:  sub,
		Ranking:  u.Ranking(),
		Total:    u.Count(),
		Unranker: u,
	}, nil
}

// RangeStats counts the range-batched engine's events over one or more
// driver calls: how many flat innermost runs reached the body, how many
// outer-prefix carries (each re-evaluating the changed bounds) were
// needed between them, and the iterations covered. Exposed so the
// overhead experiments and telemetry can show the engine's work instead
// of asserting it.
type RangeStats struct {
	Batches    int64 // flat innermost runs handed to the body
	Carries    int64 // outer-prefix carries between runs (bound re-evals)
	Iterations int64 // collapsed iterations covered
}

// Add accumulates o into s (used to aggregate per-thread stats).
func (s *RangeStats) Add(o RangeStats) {
	s.Batches += o.Batches
	s.Carries += o.Carries
	s.Iterations += o.Iterations
}

// ForRanges executes the collapsed ranks [pcLo, pcHi] with the
// range-batched §V scheme: the costly index recovery runs once, at pcLo,
// and the body receives maximal flat innermost runs instead of single
// iterations. Each call body(pc, prefix, lo, hi) covers collapsed ranks
// pc .. pc+(hi-lo)-1, whose tuples share the outer prefix (levels
// 0..d-2, slice reused across calls) and take every innermost value
// lo <= i < hi. Bounds are re-evaluated only when an outer level
// carries; runs are clipped at pcHi so pc accounting stays exact even
// when a chunk boundary splits a run. st (optional) accumulates engine
// counters.
//
// The bound b must come from r.Unranker.Bind and must not be shared
// across goroutines (clone it per worker instead).
func ForRanges(b *unrank.Bound, pcLo, pcHi int64, st *RangeStats,
	body func(pc int64, prefix []int64, lo, hi int64)) error {
	if pcLo > pcHi {
		return nil
	}
	inst := b.Instance()
	last := inst.Depth() - 1
	idx := b.Scratch()
	if err := b.Unrank(pcLo, idx); err != nil {
		return err
	}
	pc := pcLo
	for {
		// Unrank (and NextRun below) leave idx on a valid tuple, so the
		// current run is never empty: lo < hi and pc always advances.
		lo := idx[last]
		hi := inst.UpperAt(last, idx)
		if rem := pcHi - pc + 1; hi-lo > rem {
			hi = lo + rem
		}
		body(pc, idx[:last], lo, hi)
		pc += hi - lo
		if st != nil {
			st.Batches++
			st.Iterations += hi - lo
		}
		if pc > pcHi {
			return nil
		}
		if !inst.NextRun(idx) {
			return fmt.Errorf("core: iteration space exhausted at pc=%d before reaching %d: %w",
				pc-1, pcHi, faults.ErrRecoveryDiverged)
		}
		if st != nil {
			st.Carries++
		}
	}
}

// ForRange executes body for every pc in [pcLo, pcHi] using the §V
// scheme: the costly index recovery runs once, at pcLo, and subsequent
// tuples are produced by lexicographic incrementation, exactly like the
// "first_iteration / Incrementation(Indices)" code the paper generates.
// It is implemented on the range-batched engine: the innermost level
// advances in a flat counted loop, and the per-level carry logic runs
// only when an innermost run ends. The bound b must come from
// r.Unranker.Bind and must not be shared across goroutines.
//
// body receives the collapsed rank pc and the recovered indices (the
// slice is reused across calls and must not be mutated by body).
func ForRange(b *unrank.Bound, pcLo, pcHi int64, body func(pc int64, idx []int64)) error {
	if pcLo > pcHi {
		return nil
	}
	inst := b.Instance()
	last := inst.Depth() - 1
	idx := b.Scratch()
	if err := b.Unrank(pcLo, idx); err != nil {
		return err
	}
	pc := pcLo
	for {
		hi := inst.UpperAt(last, idx)
		if rem := pcHi - pc + 1; hi-idx[last] > rem {
			hi = idx[last] + rem
		}
		for i := idx[last]; i < hi; i++ {
			idx[last] = i
			body(pc, idx)
			pc++
		}
		if pc > pcHi {
			return nil
		}
		if !inst.NextRun(idx) {
			return fmt.Errorf("core: iteration space exhausted at pc=%d before reaching %d: %w",
				pc-1, pcHi, faults.ErrRecoveryDiverged)
		}
	}
}

// ForRangeFrom is ForRange with the recovery already paid: start must be
// the exact iteration tuple of rank pcLo — typically produced by
// unrank.Bound.RecoverBatch over the chunk/shard starts of a planned
// execution — and the driver goes straight to the §V incrementation.
// start is read, never written.
func ForRangeFrom(b *unrank.Bound, pcLo, pcHi int64, start []int64,
	body func(pc int64, idx []int64)) error {
	if pcLo > pcHi {
		return nil
	}
	inst := b.Instance()
	last := inst.Depth() - 1
	idx := b.Scratch()
	if len(start) != len(idx) {
		return fmt.Errorf("core: start tuple has length %d, want %d", len(start), len(idx))
	}
	copy(idx, start)
	pc := pcLo
	for {
		hi := inst.UpperAt(last, idx)
		if rem := pcHi - pc + 1; hi-idx[last] > rem {
			hi = idx[last] + rem
		}
		for i := idx[last]; i < hi; i++ {
			idx[last] = i
			body(pc, idx)
			pc++
		}
		if pc > pcHi {
			return nil
		}
		if !inst.NextRun(idx) {
			return fmt.Errorf("core: iteration space exhausted at pc=%d before reaching %d: %w",
				pc-1, pcHi, faults.ErrRecoveryDiverged)
		}
	}
}

// ForRangeEvery executes body for every pc in [pcLo, pcHi], performing
// the full closed-form recovery at every iteration (no incrementation).
// This is the maximum-cost variant the paper associates with dynamic
// scheduling (§V: "dynamic scheduling requires indices to be recovered by
// evaluating the roots at each iteration").
func ForRangeEvery(b *unrank.Bound, pcLo, pcHi int64, body func(pc int64, idx []int64)) error {
	if pcHi == math.MaxInt64 {
		// pc <= pcHi can never become false: pc++ would wrap instead.
		return fmt.Errorf("core: pc range upper bound %d would overflow the loop counter: %w",
			pcHi, faults.ErrOverflow)
	}
	idx := b.Scratch()
	for pc := pcLo; pc <= pcHi; pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			return err
		}
		body(pc, idx)
	}
	return nil
}

// CheckTotalMatchesRanking verifies, for a parameter binding, the §III
// consistency identity: the ranking polynomial evaluated at the last
// iteration equals the iteration-count polynomial. Used by tests and the
// CLI tool's self-check.
func (r *Result) CheckTotalMatchesRanking(params map[string]int64) error {
	b, err := r.Unranker.Bind(params)
	if err != nil {
		return err
	}
	inst := b.Instance()
	idx := make([]int64, r.C)
	if !inst.First(idx) {
		if b.Total() != 0 {
			return fmt.Errorf("core: empty space but Total = %d", b.Total())
		}
		return nil
	}
	var last []int64
	inst.Enumerate(func(i []int64) bool {
		last = append(last[:0], i...)
		return true
	})
	if got := b.Rank(last); got != b.Total() {
		return fmt.Errorf("core: rank(last) = %d but Total = %d", got, b.Total())
	}
	return nil
}

// TripCounts exposes the per-level trip-count polynomials of the full
// nest (used by the schedule simulator to compute exact per-iteration
// work without running the kernel).
func (r *Result) TripCounts() []*poly.Poly { return ehrhart.TripCounts(r.Nest) }
