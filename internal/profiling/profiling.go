// Package profiling is the tiny pprof harness shared by the command-line
// tools: a CPU profile spanning the run and a heap snapshot at exit,
// both optional, enabled by -cpuprofile / -memprofile flags; plus the
// HTTP mount of the net/http/pprof handlers used by the observability
// plane's -serve mode.
package profiling

import (
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// AttachPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/ — index, named profiles (heap, goroutine, block,
// mutex, allocs, threadcreate), the 30s CPU profile, symbolization and
// the runtime execution trace. Registering explicitly (instead of the
// package's init side effect on http.DefaultServeMux) keeps the
// handlers off servers that did not ask for them.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// Start begins CPU profiling into cpuPath (when non-empty) and arranges
// a heap snapshot into memPath (when non-empty). The returned stop
// function must run exactly once, after the measured work; it is safe to
// call when both paths are empty (no-op).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
