package stress

import (
	"testing"

	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/unrank"
)

func TestNewCaseDeterministic(t *testing.T) {
	a, err := NewCase(42)
	if err != nil {
		t.Fatalf("NewCase(42): %v", err)
	}
	b, err := NewCase(42)
	if err != nil {
		t.Fatalf("NewCase(42) again: %v", err)
	}
	if a.Name != b.Name || a.Total != b.Total {
		t.Fatalf("seed 42 not deterministic: %q/%d vs %q/%d", a.Name, a.Total, b.Name, b.Total)
	}
	if a.Total < 1 {
		t.Fatalf("case %s has empty domain", a.Name)
	}
}

func TestGeneratorCoversShapes(t *testing.T) {
	shapes := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		c, err := NewCase(seed)
		if err != nil {
			t.Fatalf("NewCase(%d): %v", seed, err)
		}
		switch {
		case containsShape(c.Name, "rect"):
			shapes["rect"] = true
		case containsShape(c.Name, "shifted"):
			shapes["shifted"] = true
		case containsShape(c.Name, "tri"):
			shapes["tri"] = true
		}
	}
	for _, s := range []string{"rect", "tri", "shifted"} {
		if !shapes[s] {
			t.Errorf("40 seeds never produced a %s nest", s)
		}
	}
}

func containsShape(name, shape string) bool {
	return len(name) > 0 && indexOf(name, "-"+shape+"-") >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestDifferentialSweep is the harness's own smoke test: a handful of
// seeds through every schedule and ladder tier. Fault injection is
// exercised separately (the plan is process-global) in
// TestDifferentialWithFaults.
func TestDifferentialSweep(t *testing.T) {
	st, err := RunSeeds([]int64{1, 2, 3}, 4, false)
	if err != nil {
		t.Fatalf("differential sweep: %v (after %d runs)", err, st.Runs)
	}
	// Every schedule × variant cell runs twice — once through the
	// per-iteration driver, once through the range-batched engine —
	// plus one autotuned run per variant (the planner picks its own
	// schedule, so it is swept per variant, not per schedule).
	wantRuns := 3 * len(Variants()) * (len(Schedules())*2 + 1)
	if st.Runs != wantRuns {
		t.Fatalf("ran %d differential runs, want %d", st.Runs, wantRuns)
	}
}

func TestDifferentialWithFaults(t *testing.T) {
	st, err := RunSeeds([]int64{7}, 2, true)
	if err != nil {
		t.Fatalf("faulted sweep: %v", err)
	}
	// The fault plan pushes every float64 root far beyond correction
	// range, so the float64-start runs must have escalated to a big
	// tier (injection bypasses the big evaluators by design).
	if st.Unrank.EscalationsPrec128+st.Unrank.EscalationsPrec256 == 0 {
		t.Fatalf("fault injection never forced a precision escalation: %s", st.Unrank.String())
	}
}

// TestForcedTiersProduceExpectedCounters checks that StartTier really
// moves work onto the requested rung.
func TestForcedTiersProduceExpectedCounters(t *testing.T) {
	c, err := NewCase(11)
	if err != nil {
		t.Fatalf("NewCase: %v", err)
	}
	_ = c
	for _, tier := range []unrank.Tier{unrank.TierPrec128, unrank.TierPrec256} {
		st, err := runTier(c, tier)
		if err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		switch tier {
		case unrank.TierPrec128:
			if st.EscalationsPrec128 == 0 {
				t.Errorf("StartTier=Prec128 recorded no prec128 escalations: %s", st.String())
			}
		case unrank.TierPrec256:
			if st.EscalationsPrec256 == 0 {
				t.Errorf("StartTier=Prec256 recorded no prec256 escalations: %s", st.String())
			}
		}
	}
}

func runTier(c *Case, tier unrank.Tier) (unrank.Stats, error) {
	res, err := core.Collapse(c.Nest, c.C, unrank.Options{StartTier: tier})
	if err != nil {
		return unrank.Stats{}, err
	}
	_, cs, err := runParallel(res, c.Params, 2, omp.Schedule{Kind: omp.Static})
	return cs.Stats, err
}
