package roots

import (
	"math"
	"math/big"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

// bigRef evaluates e at a very high precision (1024 bits) to serve as
// ground truth for the certified-radius checks below.
func bigRef(t *testing.T, e Expr, vars []string, vals []int64) complex128 {
	t.Helper()
	fn, err := CompileBig(e, vars, 1024)
	if err != nil {
		t.Fatalf("CompileBig(ref): %v", err)
	}
	return fn(vals).Complex128()
}

func TestCompileBigMatchesComplex128(t *testing.T) {
	n := poly.Var("N")
	exprs := []struct {
		name string
		e    Expr
	}{
		{"linear", Sub{A: P(n), B: NumInt(3)}},
		{"quadratic root", Mul{
			A: NumRat(1, 2),
			B: Add{A: NumInt(-1), B: Sqrt(Add{A: NumInt(1), B: Mul{A: NumInt(8), B: P(n)}})},
		}},
		{"cbrt", Cbrt(Add{A: P(n), B: NumInt(5)})},
		{"nested", Div{
			A: Sub{A: Sqrt(P(n.Mul(n))), B: NumInt(1)},
			B: NumInt(2),
		}},
	}
	vars := []string{"N"}
	for _, tc := range exprs {
		fn, err := CompileBig(tc.e, vars, 128)
		if err != nil {
			t.Fatalf("%s: CompileBig: %v", tc.name, err)
		}
		for _, nv := range []int64{0, 1, 7, 1000, 1 << 20} {
			got := fn([]int64{nv})
			env := map[string]float64{"N": float64(nv)}
			want := tc.e.Eval(env)
			g := got.Complex128()
			if d := cmplx.Abs(g - want); d > 1e-9*(1+cmplx.Abs(want)) {
				t.Errorf("%s at N=%d: big=%v float64=%v (diff %g)", tc.name, nv, g, want, d)
			}
			if !got.IsCertified() {
				t.Errorf("%s at N=%d: radius not certified", tc.name, nv)
			}
		}
	}
}

func TestCertifiedRadiusBoundsTrueError(t *testing.T) {
	// Expressions with catastrophic cancellation: sqrt(N^2+N) - N loses
	// about half the working precision; the radius must still dominate
	// the true error against a 1024-bit reference.
	n := poly.Var("N")
	e := Sub{A: Sqrt(P(n.Mul(n).Add(n))), B: P(n)}
	vars := []string{"N"}
	for _, prec := range []uint{64, 128, 256} {
		fn, err := CompileBig(e, vars, prec)
		if err != nil {
			t.Fatalf("CompileBig: %v", err)
		}
		for _, nv := range []int64{3, 1 << 26, 1 << 31, 1 << 40} {
			got := fn([]int64{nv})
			ref := bigRef(t, e, vars, []int64{nv})
			err := cmplx.Abs(got.Complex128() - ref)
			if !got.IsCertified() {
				t.Fatalf("prec=%d N=%d: uncertified", prec, nv)
			}
			// Allow the float64 rounding of the comparison itself.
			if err > got.Rad+1e-12*math.Abs(real(ref)) {
				t.Errorf("prec=%d N=%d: true error %g exceeds certified radius %g",
					prec, nv, err, got.Rad)
			}
		}
	}
}

func TestSqrtBranchMatchesCmplx(t *testing.T) {
	c := newBigCtx(128)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		re := (rng.Float64() - 0.5) * 100
		im := (rng.Float64() - 0.5) * 100
		switch i % 4 {
		case 1:
			im = 0
		case 2:
			re = 0
		case 3:
			re = -math.Abs(re)
		}
		a := BigVal{Re: c.nf().SetFloat64(re), Im: c.nf().SetFloat64(im)}
		got := c.sqrt(a).Complex128()
		want := cmplx.Sqrt(complex(re, im))
		if d := cmplx.Abs(got - want); d > 1e-12*(1+cmplx.Abs(want)) {
			t.Fatalf("sqrt(%g%+gi): big=%v cmplx=%v", re, im, got, want)
		}
	}
}

func TestRootNBranchMatchesCmplxPow(t *testing.T) {
	c := newBigCtx(128)
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 4, 5} {
		for i := 0; i < 100; i++ {
			re := (rng.Float64() - 0.5) * 1000
			im := (rng.Float64() - 0.5) * 1000
			if i%3 == 0 {
				im = 0
			}
			a := BigVal{Re: c.nf().SetFloat64(re), Im: c.nf().SetFloat64(im)}
			got := c.rootN(a, n).Complex128()
			want := cmplx.Pow(complex(re, im), complex(1/float64(n), 0))
			if d := cmplx.Abs(got - want); d > 1e-10*(1+cmplx.Abs(want)) {
				t.Fatalf("root%d(%g%+gi): big=%v cmplx=%v", n, re, im, got, want)
			}
		}
	}
}

func TestRootNExtremeExponents(t *testing.T) {
	// Values far outside float64 range: the exponent pre-scaling must keep
	// the Newton seed finite. 2^1200 is representable only in big.Float.
	c := newBigCtx(128)
	huge := BigVal{Re: c.nf().SetMantExp(c.nf().SetInt64(1), 1200), Im: c.nf()}
	w := c.rootN(huge, 3)
	// Cube root of 2^1200 is 2^400.
	want := c.nf().SetMantExp(c.nf().SetInt64(1), 400)
	diff := new(big.Float).Sub(w.Re, want)
	diff.Quo(diff, want)
	rel, _ := diff.Float64()
	if math.Abs(rel) > 1e-30 {
		t.Fatalf("cbrt(2^1200) relative error %g", rel)
	}
}

func TestFloorCertain(t *testing.T) {
	mk := func(x float64, rad float64) BigVal {
		return BigVal{
			Re:  new(big.Float).SetPrec(128).SetFloat64(x),
			Im:  new(big.Float).SetPrec(128),
			Rad: rad,
		}
	}
	cases := []struct {
		v      BigVal
		want   int64
		wantOK bool
	}{
		{mk(5.5, 0.25), 5, true},
		{mk(5.5, 0), 5, true},
		{mk(5.2, 0.1), 5, true},
		{mk(5.0001, 0.001), 0, false}, // 5.0001-0.001 dips below 5
		{mk(5.0001, 0.5), 0, false},   // straddles 5
		{mk(5.999, 0.01), 0, false},   // straddles 6
		{mk(-2.5, 0.25), -3, true},    // floor of negative non-integer
		{mk(-2.01, 0.25), 0, false},   // straddles -2
		{mk(7, math.Inf(1)), 0, false},
		{mk(7, math.NaN()), 0, false},
	}
	for i, tc := range cases {
		got, ok := tc.v.FloorCertain()
		if ok != tc.wantOK || (ok && got != tc.want) {
			re, _ := tc.v.Re.Float64()
			t.Errorf("case %d (re=%g rad=%g): got (%d,%v) want (%d,%v)",
				i, re, tc.v.Rad, got, ok, tc.want, tc.wantOK)
		}
	}
}

func TestImagNegligible(t *testing.T) {
	mk := func(re, im, rad float64) BigVal {
		return BigVal{
			Re:  new(big.Float).SetPrec(128).SetFloat64(re),
			Im:  new(big.Float).SetPrec(128).SetFloat64(im),
			Rad: rad,
		}
	}
	if !mk(3, 0, 0).ImagNegligible() {
		t.Error("exact real value should have negligible imaginary part")
	}
	if !mk(3, 1e-20, 1e-19).ImagNegligible() {
		t.Error("imaginary part within radius should be negligible")
	}
	if mk(3, 0.5, 1e-19).ImagNegligible() {
		t.Error("large imaginary part should not be negligible")
	}
	if mk(3, 0, math.Inf(1)).ImagNegligible() {
		t.Error("uncertified value should not be negligible")
	}
}

func TestDivByNearZeroPoisonsRadius(t *testing.T) {
	c := newBigCtx(128)
	one := BigVal{Re: c.nf().SetInt64(1), Im: c.nf()}
	zero := BigVal{Re: c.nf(), Im: c.nf()}
	if v := c.div(one, zero); v.IsCertified() {
		t.Error("division by zero must not be certified")
	}
	// Divisor whose radius swallows its magnitude.
	fuzzy := BigVal{Re: c.nf().SetFloat64(1e-30), Im: c.nf(), Rad: 1e-30}
	if v := c.div(one, fuzzy); v.IsCertified() {
		t.Error("division by a value indistinguishable from zero must not be certified")
	}
}

func TestEvalBigNamedEnv(t *testing.T) {
	n := poly.Var("N")
	e := Sqrt(P(n))
	env := map[string]*big.Rat{"N": new(big.Rat).SetInt64(49)}
	v, err := EvalBig(e, env, 128)
	if err != nil {
		t.Fatalf("EvalBig: %v", err)
	}
	got, _ := v.Re.Float64()
	if got != 7 || !v.IsCertified() {
		t.Fatalf("sqrt(49) = %g (certified %v), want 7", got, v.IsCertified())
	}
}
