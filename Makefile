# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check cover bench figures ablation scaling fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/telemetry/ ./internal/omp/ ./internal/kernels/ .

# Full pre-merge gate: vet, the whole suite, and the race detector over
# the concurrent packages (telemetry counters, the omp runtime, kernels).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/telemetry/ ./internal/omp/ ./internal/kernels/ .

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's figures (EXPERIMENTS.md documents the recorded runs).
figures:
	$(GO) run ./cmd/benchfig -fig all

ablation:
	$(GO) run ./cmd/benchfig -fig ablation

scaling:
	$(GO) run ./cmd/benchfig -fig scaling

# Short fuzzing sessions for the two parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/poly/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/cparse/

clean:
	$(GO) clean ./...
