// Package unrank inverts ranking Ehrhart polynomials (paper §IV): given
// the rank pc of an iteration in the collapsed 1..Total range, it
// recovers the original loop indices (i_0, …, i_{d-1}).
//
// For each level k < d-1 the index is recovered by evaluating the
// symbolic "convenient root" of
//
//	r(i_0..i_{k-1}, x, lexmin tail) − pc = 0
//
// over complex128 and flooring its real part (§IV.A, §IV.C). Because the
// radical formulas are evaluated in floating point, the floor can be off
// by one near term boundaries; the recovery is therefore followed by an
// exact integer correction step using the monotonicity of the ranking
// polynomial, which makes unranking provably exact. When the closed form
// evaluates to NaN/Inf (degenerate radical branches) or the correction
// does not converge within a few steps, the package falls back to exact
// binary search over the same monotone polynomial — the fallback is also
// available stand-alone as a baseline (ModeBinarySearch).
//
// The last index needs no root: i_{d-1} = lb + (pc − r(prefix, lb)).
package unrank

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ehrhart"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/roots"
	"repro/internal/telemetry"
)

// Mode selects the recovery strategy.
type Mode int

const (
	// ModeClosedForm uses the paper's radical formulas with exact
	// correction (the contribution under evaluation).
	ModeClosedForm Mode = iota
	// ModeBinarySearch uses only exact binary search on the monotone
	// ranking polynomial. It needs no symbolic solving and serves as the
	// correctness oracle and baseline.
	ModeBinarySearch
	// ModeTable uses the precomputed per-level breakpoint tables: each
	// recovery is a pure-integer table lookup plus a short exact
	// correction, with exact binary search as the safety net for levels
	// whose restricted ranking polynomial is not separable (or whose
	// table could not be built). Like ModeBinarySearch it needs no
	// radical solving, so it accepts nests of any degree — it is the
	// fast strategy where closed forms do not exist.
	ModeTable
)

// String names the mode for CLI flags and reports.
func (m Mode) String() string {
	switch m {
	case ModeClosedForm:
		return "closed-form"
	case ModeBinarySearch:
		return "search"
	case ModeTable:
		return "table"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a CLI spelling of a recovery mode. Unknown spellings
// return an error wrapping faults.ErrUnknownMode so callers can reject
// them with a typed check.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "closed-form", "closedform", "closed":
		return ModeClosedForm, nil
	case "search", "binary-search", "binarysearch":
		return ModeBinarySearch, nil
	case "table", "breakpoint-table":
		return ModeTable, nil
	}
	return 0, fmt.Errorf("unrank: mode %q (want closed-form | search | table): %w",
		s, faults.ErrUnknownMode)
}

// Tier identifies a rung of the adaptive-precision recovery ladder:
//
//	float64 → big.Float(128) → big.Float(256) → breakpoint table → exact
//
// The float64 tier is the paper's §IV.C fast path. When its floor cannot
// be repaired within MaxCorrection exact ±1 steps (or evaluates to
// NaN/Inf), recovery escalates tier by tier: each big.Float tier
// re-evaluates the same radical formula at higher precision with a
// certified error radius and only trusts the floor when the radius
// provably clears every integer boundary. Below the float tiers sits the
// breakpoint-table tier — a pure-integer table lookup over the
// precomputed per-level inversion tables (built when the strategy
// requests them: ModeTable, or StartTier == TierTable) — and the final
// rung is the exact binary search over the monotone ranking polynomial,
// which needs no floating point at all.
type Tier int

const (
	// TierFloat64 is the complex128 fast path.
	TierFloat64 Tier = iota
	// TierPrec128 evaluates the radical at 128-bit big.Float precision.
	TierPrec128
	// TierPrec256 evaluates the radical at 256-bit big.Float precision.
	TierPrec256
	// TierTable is the breakpoint-table lookup with exact correction.
	TierTable
	// TierExact is exact binary search (no closed form).
	TierExact
)

// String names the tier for reports and stress-harness output.
func (t Tier) String() string {
	switch t {
	case TierFloat64:
		return "float64"
	case TierPrec128:
		return "prec128"
	case TierPrec256:
		return "prec256"
	case TierTable:
		return "table"
	case TierExact:
		return "exact"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Ladder precisions (bits of big.Float mantissa) of the escalation tiers.
const (
	ladderPrec128 = 128
	ladderPrec256 = 256
)

// Numerical tolerances of the float64 fast path. The float64 tier has no
// computed error certificate, so these constants *assume* a radius: a
// radical formula evaluated over complex128 is trusted to land within
// FloorNudge of the exact root absolutely and within RootImagTolRel of
// the real axis relative to its magnitude. The big.Float tiers replace
// both assumptions with the certified radius computed by
// roots.CompileBig; the exact correction step makes the assumption safe
// on the float64 tier (a violated assumption costs an escalation, never
// a wrong tuple).
const (
	// RootImagTolRel bounds the acceptable imaginary component of a
	// closed-form root relative to its magnitude: |Im x| must be at most
	// RootImagTolRel·(1+|Re x|). Scale-aware: a root near 1e9 may carry
	// a proportionally larger imaginary rounding artifact than one near
	// 1, yet both are "real" for recovery purposes.
	RootImagTolRel = 1e-6
	// FloorNudge is added before flooring the real part so a root
	// computed marginally below an exact integer (x = k − ε from
	// rounding) still floors to k. It must stay well below 1/2 so a
	// genuinely fractional root is never pushed across a boundary.
	FloorNudge = 1e-9
)

// imagNegligible reports whether x is consistent with a real root under
// the float64 tier's assumed radius.
func imagNegligible(x complex128) bool {
	return math.Abs(imag(x)) <= RootImagTolRel*(1+math.Abs(real(x)))
}

// floorReal floors the real part under the float64 tier's assumed
// radius.
func floorReal(x complex128) int64 {
	return int64(math.Floor(real(x) + FloorNudge))
}

// Options configure Unranker construction.
type Options struct {
	// Mode selects closed-form or binary-search recovery.
	Mode Mode
	// SampleParams are parameter bindings used to select the convenient
	// root by validation against ground truth (a stronger version of the
	// paper's ⌊x(1)⌋ = lexmin test). When nil, small defaults are used.
	SampleParams []map[string]int64
	// MaxEnum caps the number of iterations enumerated per sample during
	// root selection. Defaults to 4096.
	MaxEnum int64
	// MaxCorrection bounds the ±1 exact-correction steps before falling
	// back to binary search. Defaults to 8.
	MaxCorrection int
	// Verify enables verified recovery: after each Unrank the recovered
	// tuple is exactly re-ranked with big.Rat arithmetic and compared to
	// pc; on mismatch every level is recomputed by exact binary search,
	// and a second mismatch aborts with faults.ErrRecoveryDiverged. This
	// turns the floating-point radical path into a checked computation at
	// the cost of one exact polynomial evaluation per recovery (per
	// chunk under the §V scheme, not per iteration).
	Verify bool
	// StartTier skips the lower rungs of the precision ladder: recovery
	// begins at this tier instead of TierFloat64. The default (zero
	// value) is the full ladder; the stress harness and fuzz targets use
	// higher start tiers to exercise each rung in isolation. TierExact
	// behaves like ModeBinarySearch at recovery time while still
	// performing the symbolic solve.
	StartTier Tier
	// TableMaxEntries caps the per-level breakpoint-table size. Levels
	// whose index range fits under the cap get a dense (stride-1) table
	// — recovery is then a pure int64 binary search over the table with
	// zero polynomial evaluations; wider levels get geometrically ramped
	// breakpoints up to a uniform stride, with a short exact in-segment
	// search. Defaults to 4096; clamped to [64, 1<<20].
	TableMaxEntries int
	// CompileWorkers bounds the goroutines used for the per-level
	// compile fan-out (ranking restriction, radical solving, root
	// selection and root compilation are independent across levels and
	// samples). 0 means GOMAXPROCS; 1 forces the serial pipeline (used
	// by the compile-throughput benchmarks to measure the fan-out's
	// contribution).
	CompileWorkers int
	// Telemetry, when non-nil, receives "compile"-category spans for the
	// pipeline phases (ranking computation, per-level radical solving,
	// root selection, root compilation). Nil disables instrumentation at
	// no cost.
	Telemetry *telemetry.Registry
}

// level holds the recovery machinery for one non-final loop level.
type level struct {
	varName    string
	root       roots.Expr       // selected convenient root; nil in binary-search mode
	rootFn     roots.EvalFunc   // compiled root over [params..., i_0..i_{k-1}, pc]
	rootIdx    int              // branch index of the selected root
	candidates []roots.Expr     // all symbolic candidates
	candFns    []roots.EvalFunc // candidates compiled positionally (selection-time)
	rk         *poly.Compiled
	// rk evaluates r(i_0..i_{k-1}, x, lexmin tail) exactly over the
	// variable order [params..., i_0..i_{k-1}, x].

	// rootBig holds the escalation evaluators of the precision ladder:
	// the same selected root compiled at 128- and 256-bit big.Float
	// precision with certified error radii (nil in binary-search mode).
	rootBig [2]roots.BigEvalFunc

	// gComp is the separable x-part of the restricted ranking
	// polynomial: rk = B(prefix) + g(x) with B = rk|_{x=0} and
	// g = rk − B. When g mentions no prefix iterator the level is
	// "separable" and its inversion can be tabulated once per binding —
	// gComp then evaluates g over [params..., x]. Nil when the level is
	// not separable (the breakpoint table falls back to exact binary
	// search there).
	gComp *poly.Compiled
}

// Unranker is the symbolic (parameter-independent) part of the inverse
// ranking function for a nest.
type Unranker struct {
	nest      *nest.Nest
	ranking   *poly.Poly
	count     *poly.Poly
	mode      Mode
	maxCorr   int
	verify    bool
	startTier Tier
	tableMax  int

	order    []string // params..., all indices...
	rankComp *poly.Compiled
	levels   []level        // depth-1 entries
	lastRank *poly.Compiled // r(prefix, lb_{d-1}) over [params..., i_0..i_{d-2}]
	countC   *poly.Compiled // over params
}

// New builds an Unranker for the nest, computing the ranking polynomial,
// solving each level's recovery equation symbolically (in closed-form
// mode) and selecting the convenient root of each level by validation on
// sample parameter bindings.
func New(n *nest.Nest, opts Options) (*Unranker, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxEnum <= 0 {
		opts.MaxEnum = 4096
	}
	if opts.MaxCorrection <= 0 {
		opts.MaxCorrection = 8
	}
	if opts.TableMaxEntries <= 0 {
		opts.TableMaxEntries = 4096
	}
	if opts.TableMaxEntries < 64 {
		opts.TableMaxEntries = 64
	}
	if opts.TableMaxEntries > 1<<20 {
		opts.TableMaxEntries = 1 << 20
	}
	tel := opts.Telemetry
	spNew := tel.StartSpan("compile", "unrank.New", 0)
	defer spNew.End()
	ranking, count := ehrhart.RankingInstrumented(n, tel)
	if opts.Mode == ModeClosedForm {
		// Only the radical path is degree-limited (no closed-form roots
		// beyond the quartic). Binary search and the breakpoint tables
		// invert the ranking polynomial without solving it, so they
		// accept nests of any degree.
		if err := ehrhart.CheckDegree(ranking); err != nil {
			return nil, err
		}
	}
	u := &Unranker{
		nest:      n,
		ranking:   ranking,
		count:     count,
		mode:      opts.Mode,
		maxCorr:   opts.MaxCorrection,
		verify:    opts.Verify,
		startTier: opts.StartTier,
		tableMax:  opts.TableMaxEntries,
	}
	u.order = append(append([]string(nil), n.Params...), n.Indices()...)
	spPoly := tel.StartSpan("compile", "poly.Compile", 0)
	var err error
	u.rankComp, err = ranking.Compile(u.order)
	if err != nil {
		return nil, err
	}
	u.countC, err = u.count.Compile(n.Params)
	if err != nil {
		return nil, err
	}
	spPoly.End()

	d := n.Depth()
	workers := opts.CompileWorkers
	u.levels = make([]level, d-1)
	// Per-level fan-out (§IV per-level independence): the level-k ranking
	// restriction, its exact compilation and the radical solve depend only
	// on the shared ranking polynomial, never on other levels, so they run
	// on an errgroup-style worker pool with panics classified through
	// internal/faults.
	spLevels := tel.StartSpan("compile", "unrank.levels", 0)
	err = fanOut(workers, d-1, func(k int) error {
		lv := &u.levels[k]
		lv.varName = n.Loops[k].Index
		rk := ranking.SubstAll(n.LexMinTail(k))
		var err error
		lv.rk, err = rk.Compile(u.order[:len(n.Params)+k+1])
		if err != nil {
			return err
		}
		if u.tablesEnabled() {
			// Separability split for the breakpoint table: rk = B + g
			// with B = rk|_{x=0} (every monomial containing x killed)
			// and g = rk − B carrying the whole x-dependence. The level
			// is tabulable iff g mentions no prefix iterator — then
			// g(x) can be tabulated once per binding, independent of
			// the prefix recovered at run time. The identity rk = B + g
			// holds exactly over ℚ, so table decisions made on g are
			// bit-identical to decisions made on rk.
			g := rk.Sub(rk.Subst(lv.varName, poly.Int(0)))
			separable := true
			for _, v := range g.Vars() {
				if v != lv.varName && !isParam(n, v) {
					separable = false
					break
				}
			}
			if separable {
				gvars := append(append([]string(nil), u.order[:len(n.Params)]...), lv.varName)
				if lv.gComp, err = g.Compile(gvars); err != nil {
					return err
				}
			}
		}
		if opts.Mode == ModeClosedForm {
			eq := rk.Sub(poly.Var("pc"))
			spSolve := tel.StartSpan("compile", "roots.Solve", 0)
			lv.candidates, err = roots.Solve(eq.UnivariateIn(lv.varName))
			spSolve.End(
				telemetry.Arg{Name: "level", Value: int64(k)},
				telemetry.Arg{Name: "candidates", Value: int64(len(lv.candidates))},
			)
			if err != nil {
				return fmt.Errorf("unrank: level %d (%s): %w", k, lv.varName, err)
			}
			tel.Counter("compile.root_candidates").Add(int64(len(lv.candidates)))
			// Compile every candidate positionally up front: root
			// selection evaluates candidates thousands of times per
			// sample, and the compiled closures avoid the symbolic
			// tree walk plus a big.Rat→float64 conversion per constant
			// per evaluation (the dominant cost of the old compile
			// path).
			vars := append(append([]string(nil), u.order[:len(n.Params)+k]...), "pc")
			lv.candFns = make([]roots.EvalFunc, len(lv.candidates))
			for ci, cand := range lv.candidates {
				if lv.candFns[ci], err = roots.Compile(cand, vars); err != nil {
					return err
				}
			}
		}
		return nil
	})
	spLevels.End(telemetry.Arg{Name: "levels", Value: int64(d - 1)})
	if err != nil {
		return nil, err
	}
	// Last level: r(prefix, lexmin of the last index).
	last := ranking
	if d >= 1 {
		tail := n.LexMinTail(d - 2) // substitutes only the last index
		last = ranking.SubstAll(tail)
	}
	u.lastRank, err = last.Compile(u.order[:len(n.Params)+d-1])
	if err != nil {
		return nil, err
	}

	if opts.Mode == ModeClosedForm {
		spSel := tel.StartSpan("compile", "unrank.selectRoots", 0)
		err := u.selectRoots(opts)
		spSel.End(telemetry.Arg{Name: "levels", Value: int64(len(u.levels))})
		if err != nil {
			return nil, err
		}
		// The selected root's float64 evaluator was already compiled for
		// selection; only the big.Float escalation tiers remain. They
		// share the symbolic tree, so the extra compile cost is two more
		// tree walks per level, paid once per nest — and the levels are
		// independent, so they go through the same fan-out.
		spComp := tel.StartSpan("compile", "roots.Compile", 0)
		err = fanOut(workers, len(u.levels), func(k int) error {
			lv := &u.levels[k]
			lv.rootFn = lv.candFns[lv.rootIdx]
			vars := append(append([]string(nil), u.order[:len(n.Params)+k]...), "pc")
			for ti, prec := range []uint{ladderPrec128, ladderPrec256} {
				bfn, err := roots.CompileBig(lv.root, vars, prec)
				if err != nil {
					return err
				}
				lv.rootBig[ti] = bfn
			}
			lv.candFns = nil // selection-time artifacts; keep the compiled set out of the cache footprint
			return nil
		})
		spComp.End()
		if err != nil {
			return nil, err
		}
	}
	return u, nil
}

// tablesEnabled reports whether this unranker's strategy uses the
// breakpoint-table tier: the dedicated ModeTable, or a ladder whose
// StartTier lands exactly on TierTable. Tables are built eagerly at Bind
// time only when enabled, so the default closed-form path (which almost
// never escalates past the big.Float tiers) pays nothing, and the
// binary-search oracle stays pure.
func (u *Unranker) tablesEnabled() bool {
	return u.mode == ModeTable || (u.mode != ModeBinarySearch && u.startTier == TierTable)
}

// isParam reports whether v names a parameter of n.
func isParam(n *nest.Nest, v string) bool {
	for _, p := range n.Params {
		if p == v {
			return true
		}
	}
	return false
}

// fanOut runs fn(0..n-1) on up to `workers` goroutines (0 means
// GOMAXPROCS), waiting for all of them. The first error wins; a panic in
// fn is captured as a *faults.PanicError instead of crashing the
// process, mirroring the omp runtime's worker guard.
func fanOut(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { first = err })
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					setErr(faults.Recovered(r))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					setErr(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Renamed returns a copy of u rewritten to the variable names of n,
// which must be structurally identical to u's nest up to a renaming of
// parameters and iterators (same depth, same bounds modulo the
// positional renaming — exactly what an equal core.NestSignature
// certifies). All compiled artifacts are positional and therefore shared
// with u; only the symbolic faces — nest, ranking and counting
// polynomials, root expressions, variable order — are re-spelled. This
// is how a collapse-cache hit adapts to the caller's spelling for a few
// map operations instead of a full symbolic rebuild.
func (u *Unranker) Renamed(n *nest.Nest) *Unranker {
	m := make(map[string]string, len(u.nest.Params)+len(u.nest.Loops))
	for i, p := range u.nest.Params {
		m[p] = n.Params[i]
	}
	for i, l := range u.nest.Loops {
		m[l.Index] = n.Loops[i].Index
	}
	nu := *u
	nu.nest = n
	nu.ranking = u.ranking.Rename(m)
	nu.count = u.count.Rename(m)
	nu.order = append(append([]string(nil), n.Params...), n.Indices()...)
	nu.levels = append([]level(nil), u.levels...)
	for k := range nu.levels {
		lv := &nu.levels[k]
		lv.varName = n.Loops[k].Index
		if lv.root != nil {
			lv.root = roots.Rename(lv.root, m)
		}
		if len(lv.candidates) > 0 {
			cs := make([]roots.Expr, len(lv.candidates))
			for ci, c := range lv.candidates {
				cs[ci] = roots.Rename(c, m)
			}
			lv.candidates = cs
		}
	}
	return &nu
}

// MustNew is New but panics on error.
func MustNew(n *nest.Nest, opts Options) *Unranker {
	u, err := New(n, opts)
	if err != nil {
		panic(err)
	}
	return u
}

// Nest returns the underlying nest.
func (u *Unranker) Nest() *nest.Nest { return u.nest }

// Ranking returns the ranking Ehrhart polynomial.
func (u *Unranker) Ranking() *poly.Poly { return u.ranking }

// Count returns the Ehrhart counting polynomial (total iterations).
func (u *Unranker) Count() *poly.Poly { return u.count }

// RootExpr returns the selected convenient root of level k (0-based);
// nil for the last level and in binary-search mode.
func (u *Unranker) RootExpr(k int) roots.Expr {
	if k < 0 || k >= len(u.levels) {
		return nil
	}
	return u.levels[k].root
}

// RootCandidates returns all symbolic root candidates of level k.
func (u *Unranker) RootCandidates(k int) []roots.Expr {
	if k < 0 || k >= len(u.levels) {
		return nil
	}
	return append([]roots.Expr(nil), u.levels[k].candidates...)
}

// RootIndex returns the branch index of the convenient root of level k.
func (u *Unranker) RootIndex(k int) int {
	if k < 0 || k >= len(u.levels) {
		return -1
	}
	return u.levels[k].rootIdx
}

// defaultSamples builds small parameter bindings for root selection.
func (u *Unranker) defaultSamples() []map[string]int64 {
	if len(u.nest.Params) == 0 {
		return []map[string]int64{{}}
	}
	var out []map[string]int64
	for _, v := range []int64{4, 7, 11} {
		m := map[string]int64{}
		for _, p := range u.nest.Params {
			m[p] = v
		}
		out = append(out, m)
	}
	return out
}

// selectRoots picks, per level, the unique candidate whose floored real
// part reproduces the ground-truth index for every iteration of every
// sample binding (paper §IV.A selects by ⌊x(1)⌋ = first index; validating
// over the whole range is strictly stronger and robust to FP noise).
func (u *Unranker) selectRoots(opts Options) error {
	samples := opts.SampleParams
	if samples == nil {
		samples = u.defaultSamples()
	}
	np := len(u.nest.Params)
	mismatch := make([][]int64, len(u.levels))
	tested := make([]int64, len(u.levels))
	for k := range u.levels {
		mismatch[k] = make([]int64, len(u.levels[k].candidates))
	}
	// Samples validate independently: each enumerates its own bound
	// instance with private scratch vectors and tallies, merged under a
	// mutex once the sample is exhausted. Candidates are evaluated through
	// the positional closures compiled in New — the per-iteration cost is
	// a handful of float64 slots plus one closure call per candidate,
	// where the symbolic Expr.Eval walk used to dominate the whole compile
	// path.
	var mu sync.Mutex
	err := fanOut(opts.CompileWorkers, len(samples), func(si int) error {
		sp := samples[si]
		inst, err := u.nest.Bind(sp)
		if err != nil {
			return fmt.Errorf("unrank: sample binding: %w", err)
		}
		locMis := make([][]int64, len(u.levels))
		locTested := make([]int64, len(u.levels))
		scratch := make([][]float64, len(u.levels))
		for k := range u.levels {
			locMis[k] = make([]int64, len(u.levels[k].candidates))
			// Level-k candidates evaluate over [params..., i_0..i_{k-1}, pc].
			scratch[k] = make([]float64, np+k+1)
			for pi, p := range u.nest.Params {
				scratch[k][pi] = float64(sp[p])
			}
		}
		var pc int64
		count := int64(0)
		inst.Enumerate(func(idx []int64) bool {
			pc++
			count++
			if count > opts.MaxEnum {
				return false
			}
			for k := range u.levels {
				vals := scratch[k]
				for q := 0; q < k; q++ {
					vals[np+q] = float64(idx[q]) // ground-truth prefix
				}
				vals[np+k] = float64(pc)
				truth := idx[k]
				// Only the first iteration of each (prefix, i_k) group has
				// a distinct recovery obligation, but testing every pc
				// exercises the in-between values too.
				for ci, fn := range u.levels[k].candFns {
					x := faults.PerturbRoot(k, fn(vals))
					if !imagNegligible(x) || floorReal(x) != truth {
						locMis[k][ci]++
					}
				}
				locTested[k]++
			}
			return true
		})
		mu.Lock()
		for k := range u.levels {
			tested[k] += locTested[k]
			for ci, m := range locMis[k] {
				mismatch[k][ci] += m
			}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	for k := range u.levels {
		if tested[k] == 0 {
			return fmt.Errorf("unrank: no sample iterations available to select root of level %d: %w",
				k, faults.ErrNoConvenientRoot)
		}
		best := -1
		for ci := range u.levels[k].candidates {
			if mismatch[k][ci] == 0 {
				best = ci
				break
			}
		}
		if best < 0 {
			// Tolerate a tiny mismatch fraction (floating-point edge
			// cases); the exact correction step repairs those at run time.
			var minMis int64 = 1 << 62
			for ci, m := range mismatch[k] {
				if m < minMis {
					minMis, best = m, ci
				}
			}
			if minMis*20 > tested[k] {
				return fmt.Errorf("unrank: level %d: best candidate wrong on %d/%d samples: %w",
					k, minMis, tested[k], faults.ErrNoConvenientRoot)
			}
		}
		u.levels[k].root = u.levels[k].candidates[best]
		u.levels[k].rootIdx = best
	}
	return nil
}
