# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check cover bench bench-json benchgate benchgate-baseline servegate servegate-baseline distchaos distgate distgate-baseline invertgate invertgate-baseline autotunegate autotunegate-baseline loadtest figures ablation scaling fuzz stress clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector packages: everything concurrent (telemetry counters, the
# omp runtime, kernels, the public API) plus the fault-tolerance layers
# (fault injection registry, verified recovery) whose tests exercise
# panic capture, cancellation and escalation under load, the core
# package whose cache-contention test hammers the sharded CollapseCache
# from concurrent goroutines, the observability plane whose tests
# scrape /metrics and /snapshot while a collapsed run mutates the
# registry, and the shard coordinator whose lease-expiry, speculation
# and crash-chaos tests are races by construction.
RACE_PKGS = ./internal/telemetry/ ./internal/omp/ ./internal/obs/ ./internal/kernels/ ./internal/faults/ ./internal/unrank/ ./internal/stress/ ./internal/core/ ./internal/serve/ ./internal/dist/ ./internal/autotune/ .

race:
	$(GO) test -race $(RACE_PKGS)

# Full pre-merge gate: formatting, vet, the whole suite, the
# differential stress harness, the bench-regression gate (which also
# smoke-runs the overhead suite), a short fuzz pass over every fuzz
# target, and the race detector over the concurrent packages.
check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)
	$(MAKE) stress
	$(MAKE) loadtest
	$(MAKE) distchaos
	$(MAKE) benchgate
	$(MAKE) invertgate
	$(MAKE) autotunegate
	$(MAKE) fuzz FUZZTIME=5s

# Daemon smoke soak: an in-process collapsed instance driven at 2x its
# admission rate for a couple of short phases, with every admitted
# answer differential-checked against sequential enumeration. Fails on
# any 5xx, any wrong answer, or if over-capacity load is not shed 429.
loadtest:
	$(GO) run ./cmd/loadgen -smoke -quick

# Bench-regression gate: one quick overhead run diffed against the
# committed BENCH_GATE.json baseline with cmd/benchdiff, exiting
# non-zero on regression. Only the machine-independent speedup ratios
# are gated (absolute ns/iter depend on the host the baseline was taken
# on) with a generous threshold sized for quick-mode noise; the full
# direction-aware per-metric diff is available manually, e.g.
#   go run ./cmd/benchdiff -old BENCH_PR4.json -new BENCH_NEW.json
# Refresh the baseline with `make benchgate-baseline` after intentional
# engine changes.
GATE_BASELINE = BENCH_GATE.json
GATE_FLAGS = -metrics speedup -threshold 75

benchgate:
	@if [ ! -f $(GATE_BASELINE) ]; then echo "no $(GATE_BASELINE); run 'make benchgate-baseline' first"; exit 1; fi
	$(GO) run ./cmd/benchfig -fig overhead -quick -reps 1 -json .bench_gate_new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old $(GATE_BASELINE) -new .bench_gate_new.json $(GATE_FLAGS)
	@rm -f .bench_gate_new.json

benchgate-baseline:
	$(GO) run ./cmd/benchfig -fig overhead -quick -reps 1 -json $(GATE_BASELINE)

# Serving-trajectory regression gate: one quick loadgen run against an
# in-process daemon, diffed against the committed BENCH_PR7.json
# baseline. Only achieved_qps is gated (latency quantiles and shed rate
# depend on the host and on scheduler noise at 1s phases); the threshold
# is sized accordingly. Baseline and gate runs must share SERVE_FLAGS so
# the per-phase target_qps params line up.
SERVE_BASELINE = BENCH_PR7.json
SERVE_FLAGS = -quick -qps 200 -phases 0.5,1,2 -seed 1
SERVE_GATE_FLAGS = -metrics achieved_qps -threshold 75

servegate:
	@if [ ! -f $(SERVE_BASELINE) ]; then echo "no $(SERVE_BASELINE); run 'make servegate-baseline' first"; exit 1; fi
	$(GO) run ./cmd/loadgen $(SERVE_FLAGS) -json .bench_serve_new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old $(SERVE_BASELINE) -new .bench_serve_new.json $(SERVE_GATE_FLAGS)
	@rm -f .bench_serve_new.json

servegate-baseline:
	$(GO) run ./cmd/loadgen $(SERVE_FLAGS) -json $(SERVE_BASELINE)

# Sharded-execution chaos gate: an execute-heavy loadgen run against an
# in-process daemon in sharded mode, with every Nth in-flight shard
# executor killed. Fails unless executors actually died, sharded answers
# came back, and every 2xx answer was exactly correct (differential
# check against sequential enumeration).
distchaos:
	$(GO) run ./cmd/loadgen -quick -qps 60 -phases 1 -mix execute=1 -p N=120 -chaos-kill-shard-every 5

# Shard-coordination regression gate: one quick distfor bench run diffed
# against the committed BENCH_PR8.json baseline. Only the clean-run
# throughput is gated (chaos/resume rows have injected failures whose
# cost is noise-dominated at quick sizes); the threshold is sized for
# quick-mode noise on a loaded host. Refresh with `make
# distgate-baseline` after intentional coordinator changes.
DIST_BASELINE = BENCH_PR8.json
DIST_GATE_FLAGS = -metrics miter_per_sec -threshold 75

distgate:
	@if [ ! -f $(DIST_BASELINE) ]; then echo "no $(DIST_BASELINE); run 'make distgate-baseline' first"; exit 1; fi
	$(GO) run ./cmd/distfor -bench -quick -json .bench_dist_new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old $(DIST_BASELINE) -new .bench_dist_new.json $(DIST_GATE_FLAGS)
	@rm -f .bench_dist_new.json

distgate-baseline:
	$(GO) run ./cmd/distfor -bench -quick -json $(DIST_BASELINE)

# Inversion-throughput regression gate: one quick invert-suite run
# diffed against the committed BENCH_PR9.json baseline. Only the
# machine-independent speedup ratios (breakpoint-table and batched
# recovery vs per-pc binary search) are gated; absolute ns/recovery
# depend on the host. Refresh with `make invertgate-baseline` after
# intentional recovery-engine changes.
INVERT_BASELINE = BENCH_PR9.json
INVERT_GATE_FLAGS = -metrics speedup -threshold 75

invertgate:
	@if [ ! -f $(INVERT_BASELINE) ]; then echo "no $(INVERT_BASELINE); run 'make invertgate-baseline' first"; exit 1; fi
	$(GO) run ./cmd/benchfig -fig invert -reps 1 -json .bench_invert_new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old $(INVERT_BASELINE) -new .bench_invert_new.json $(INVERT_GATE_FLAGS)
	@rm -f .bench_invert_new.json

invertgate-baseline:
	$(GO) run ./cmd/benchfig -fig invert -json $(INVERT_BASELINE)

# Autotuning regression gate: one quick autotune-suite run diffed
# against the committed BENCH_PR10.json baseline. Only the
# machine-independent ratios are gated — the planner's pick vs the best
# hand-picked schedule (auto_vs_best, lower is better) and the worst
# hand pick vs the planner (worst_vs_auto, higher is better); absolute
# wall times depend on the host. Refresh with `make
# autotunegate-baseline` after intentional planner/cost-model changes.
AUTOTUNE_BASELINE = BENCH_PR10.json
AUTOTUNE_GATE_FLAGS = -metrics vs_best,vs_auto -threshold 75

autotunegate:
	@if [ ! -f $(AUTOTUNE_BASELINE) ]; then echo "no $(AUTOTUNE_BASELINE); run 'make autotunegate-baseline' first"; exit 1; fi
	$(GO) run ./cmd/benchfig -fig autotune -reps 1 -json .bench_autotune_new.json >/dev/null
	$(GO) run ./cmd/benchdiff -old $(AUTOTUNE_BASELINE) -new .bench_autotune_new.json $(AUTOTUNE_GATE_FLAGS)
	@rm -f .bench_autotune_new.json

autotunegate-baseline:
	$(GO) run ./cmd/benchfig -fig autotune -json $(AUTOTUNE_BASELINE)

# Differential stress soak: seedable random nests through every
# schedule and every precision-ladder tier, with fault injection,
# diffing visit sets against sequential enumeration.
STRESS_SEEDS ?= 12

stress:
	$(GO) run ./cmd/stresstool -seeds $(STRESS_SEEDS) -faults

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable engine overhead report (fixed protocol: bench sizes,
# best of 3 reps, 1 thread): original nest vs per-iteration vs
# range-batched vs recover-every, per kernel × schedule. The compile
# suite records the compile-path throughput (cold serial vs parallel
# fan-out vs cached) per kernel.
bench-json:
	$(GO) run ./cmd/benchfig -fig overhead -reps 3 -json BENCH_PR4.json
	$(GO) run ./cmd/benchfig -fig compile -reps 3 -json BENCH_PR5.json

# Regenerate the paper's figures (EXPERIMENTS.md documents the recorded runs).
figures:
	$(GO) run ./cmd/benchfig -fig all

ablation:
	$(GO) run ./cmd/benchfig -fig ablation

scaling:
	$(GO) run ./cmd/benchfig -fig scaling

# Short fuzzing sessions over every fuzz target: the two parsers, the
# poly compiler, the whole-pipeline rank/unrank round trip, the
# generated-nest precision-ladder differential, and the cache signature's
# alpha-renaming invariance.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/poly/
	$(GO) test -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) ./internal/poly/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/cparse/
	$(GO) test -fuzz=FuzzRankUnrank -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzStressNest -fuzztime=$(FUZZTIME) ./internal/stress/
	$(GO) test -fuzz=FuzzNestSignature -fuzztime=$(FUZZTIME) ./internal/core/

clean:
	$(GO) clean ./...
