// Command benchdiff compares two BENCH_*.json benchmark documents
// (written by `benchfig -fig overhead -json` / `-fig compile -json`)
// and exits non-zero when any per-kernel metric regresses beyond a
// threshold. It is the engine of `make benchgate`.
//
//	benchdiff -old BENCH_PR4.json -new BENCH_NEW.json
//	benchdiff -old a.json -new b.json -threshold 10
//	benchdiff -old a.json -new b.json -kernel correlation=35,syrk=10
//	benchdiff -old a.json -new b.json -metrics speedup   # ratio-only gate
//
// Comparisons are direction-aware (ns costs regress up, speedups
// regress down) and kernels whose problem parameters differ between
// the runs are skipped with a note rather than compared. Both the
// schema-v1 document layout (no meta block) and schema v2 (with one)
// are accepted, on either side.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchcmp"
)

type options struct {
	oldPath   string
	newPath   string
	threshold float64
	kernels   string // per-kernel overrides: name=pct,name=pct
	metrics   string // comma-separated metric-name substrings
	quiet     bool
}

func main() {
	var o options
	flag.StringVar(&o.oldPath, "old", "", "baseline BENCH_*.json")
	flag.StringVar(&o.newPath, "new", "", "candidate BENCH_*.json")
	flag.Float64Var(&o.threshold, "threshold", 20, "allowed worsening percent before a metric counts as a regression")
	flag.StringVar(&o.kernels, "kernel", "", "per-kernel threshold overrides, name=pct[,name=pct...]")
	flag.StringVar(&o.metrics, "metrics", "", "only compare metrics whose name contains one of these comma-separated substrings")
	flag.BoolVar(&o.quiet, "q", false, "print only regressions and the verdict")
	flag.Parse()

	code, err := run(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the comparison and returns the process exit code:
// 0 clean, 1 regression found. Usage and I/O errors return err (exit 2).
func run(o options) (int, error) {
	if o.oldPath == "" || o.newPath == "" {
		return 0, fmt.Errorf("both -old and -new are required")
	}
	overrides, err := parseKernelOverrides(o.kernels)
	if err != nil {
		return 0, err
	}
	oldRun, err := benchcmp.Load(o.oldPath)
	if err != nil {
		return 0, err
	}
	newRun, err := benchcmp.Load(o.newPath)
	if err != nil {
		return 0, err
	}
	opts := benchcmp.Options{
		ThresholdPct:       o.threshold,
		KernelThresholdPct: overrides,
	}
	if o.metrics != "" {
		opts.MetricFilter = strings.Split(o.metrics, ",")
	}
	rep, err := benchcmp.Compare(oldRun, newRun, opts)
	if err != nil {
		return 0, err
	}
	if o.quiet {
		for _, d := range rep.Regressions() {
			fmt.Printf("REGRESSION %s/%s: %.4g -> %.4g (%.1f%% worse, threshold %g%%)\n",
				d.Kernel, d.Metric, d.Old, d.New, d.WorsePct, d.ThresholdPct)
		}
	} else {
		benchcmp.Render(os.Stdout, rep)
	}
	if n := len(rep.Regressions()); n > 0 {
		fmt.Printf("benchdiff: FAIL — %d metric(s) regressed beyond threshold\n", n)
		return 1, nil
	}
	fmt.Println("benchdiff: OK")
	return 0, nil
}

// parseKernelOverrides parses "name=pct,name=pct".
func parseKernelOverrides(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, pctStr, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -kernel entry %q (want name=pct)", part)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -kernel threshold %q: %v", part, err)
		}
		out[name] = pct
	}
	return out, nil
}
