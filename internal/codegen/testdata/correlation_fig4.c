first_iteration = 1;
#pragma omp parallel for private(i, j, k) firstprivate(first_iteration) schedule(static)
for (pc = 1 ; pc <= (N*N - N)/2 ; pc++) {
  if (first_iteration) {
    i = floor(creal(-(-N + 1.0/2.0 + csqrt(N*N - N - 2*pc + 9.0/4.0))));
    j = i + 1 + (pc - ((2*N*i - i*i - i + 2)/2));
    first_iteration = 0;
  }
  for (k = 0 ; k < N ; k++)
    a[i][j] += b[k][i]*c[k][j];
    a[j][i] = a[i][j];
  j++;
  if (j >= N) {
    i++;
    j = i + 1;
  }
}
