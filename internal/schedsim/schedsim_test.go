package schedsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// triangularWork models the correlation outer loop: iteration i has
// N-1-i units of inner work.
func triangularWork(N int) []float64 {
	w := make([]float64, N-1)
	for i := range w {
		w[i] = float64(N - 1 - i)
	}
	return w
}

func TestStaticLoadsConservation(t *testing.T) {
	f := func(seed int64, p8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		P := int(p8%12) + 1
		n := r.Intn(200)
		work := make([]float64, n)
		var total float64
		for i := range work {
			work[i] = float64(r.Intn(100))
			total += work[i]
		}
		loads := StaticLoads(work, P)
		var sum float64
		for _, l := range loads {
			sum += l
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakespansAtLeastLowerBound(t *testing.T) {
	f := func(seed int64, p8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		P := int(p8%12) + 1
		n := r.Intn(150) + 1
		work := make([]float64, n)
		for i := range work {
			work[i] = float64(r.Intn(50) + 1)
		}
		lb := LowerBound(work, P)
		eps := 1e-9
		return Static(work, P, 0) >= lb-eps &&
			StaticChunk(work, P, 4, 0) >= lb-eps &&
			Dynamic(work, P, 1, 0) >= lb-eps &&
			Guided(work, P, 1, 0) >= lb-eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformWorkPerfectBalance(t *testing.T) {
	work := make([]float64, 120)
	for i := range work {
		work[i] = 2
	}
	for _, P := range []int{1, 2, 3, 4, 6, 12} {
		want := 2.0 * 120 / float64(P)
		if got := Static(work, P, 0); math.Abs(got-want) > 1e-9 {
			t.Errorf("Static P=%d: %g, want %g", P, got, want)
		}
		if got := Dynamic(work, P, 1, 0); math.Abs(got-want) > 1e-9 {
			t.Errorf("Dynamic P=%d: %g, want %g", P, got, want)
		}
	}
}

// The paper's Fig. 2 phenomenon: static scheduling of a triangular space
// loads thread 0 with nearly 2x the average.
func TestTriangularStaticImbalance(t *testing.T) {
	work := triangularWork(1000)
	P := 5
	loads := StaticLoads(work, P)
	avg := Total(work) / float64(P)
	if loads[0] < 1.7*avg {
		t.Errorf("thread 0 load %g not ~1.8x the average %g", loads[0], avg)
	}
	if loads[P-1] > 0.5*avg {
		t.Errorf("last thread load %g not small vs average %g", loads[P-1], avg)
	}
	// Dynamic with chunk 1 and no overhead is near-optimal here.
	d := Dynamic(work, P, 1, 0)
	if d > 1.05*LowerBound(work, P) {
		t.Errorf("dynamic makespan %g far from lower bound %g", d, LowerBound(work, P))
	}
	// Static must be far worse than dynamic on the triangle.
	s := Static(work, P, 0)
	if s < 1.5*d {
		t.Errorf("static %g not >> dynamic %g on triangular work", s, d)
	}
}

func TestDynamicOverheadHurts(t *testing.T) {
	work := make([]float64, 10000)
	for i := range work {
		work[i] = 1
	}
	base := Dynamic(work, 12, 1, 0)
	withOv := Dynamic(work, 12, 1, 0.5)
	if withOv <= base {
		t.Error("per-dequeue overhead did not increase makespan")
	}
	// Larger chunks amortise the overhead.
	chunked := Dynamic(work, 12, 64, 0.5)
	if chunked >= withOv {
		t.Errorf("chunked dynamic %g not better than chunk-1 %g", chunked, withOv)
	}
}

func TestCollapsedStaticBeatsOuterStatic(t *testing.T) {
	// The headline comparison behind Fig. 9: collapsing a triangular
	// 2-loop space gives near-perfect balance vs outer-loop static.
	N := 800
	outer := triangularWork(N)
	P := 12
	outerStatic := Static(outer, P, 0)
	totalIters := int64(Total(outer)) // one unit per (i,j) pair
	collapsed := UniformStatic(totalIters, 1, P, 50 /* recovery cost */)
	if collapsed >= outerStatic {
		t.Errorf("collapsed %g not better than outer static %g", collapsed, outerStatic)
	}
	gain := Gain(outerStatic, collapsed)
	if gain < 0.3 {
		t.Errorf("gain %g < 0.3 for triangular space with 12 threads", gain)
	}
}

func TestStaticChunkBetterThanStaticOnTriangle(t *testing.T) {
	work := triangularWork(600)
	P := 6
	s := Static(work, P, 0)
	sc := StaticChunk(work, P, 1, 0)
	if sc >= s {
		t.Errorf("cyclic static %g not better than block static %g on triangle", sc, s)
	}
}

func TestGain(t *testing.T) {
	if g := Gain(10, 5); g != 0.5 {
		t.Errorf("Gain(10,5) = %g", g)
	}
	if g := Gain(0, 5); g != 0 {
		t.Errorf("Gain(0,5) = %g", g)
	}
	if g := Gain(10, 12); g != -0.2 {
		t.Errorf("Gain(10,12) = %g", g)
	}
}

func TestUniformStaticEdge(t *testing.T) {
	if got := UniformStatic(0, 1, 4, 10); got != 0 {
		t.Errorf("empty = %g", got)
	}
	// 10 units, 4 threads -> slowest runs 3 units.
	if got := UniformStatic(10, 2, 4, 1); math.Abs(got-7) > 1e-9 {
		t.Errorf("UniformStatic = %g, want 7", got)
	}
}

func TestFormatLoads(t *testing.T) {
	lines := FormatLoads([]float64{10, 5, 0}, 10)
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("max load not full width: %q", lines[0])
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("zero load has bars: %q", lines[2])
	}
}

func TestEmptyWork(t *testing.T) {
	if Static(nil, 4, 5) != 0 {
		t.Error("Static(nil) != 0")
	}
	if Dynamic(nil, 4, 1, 5) != 0 {
		t.Error("Dynamic(nil) != 0")
	}
	if Guided(nil, 4, 1, 5) != 0 {
		t.Error("Guided(nil) != 0")
	}
	if LowerBound(nil, 4) != 0 {
		t.Error("LowerBound(nil) != 0")
	}
}
