package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const correlationC = `
#pragma omp parallel for private(j, k) collapse(2) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++) {
    for (k = 0; k < N; k++)
      a[i][j] += b[k][i] * c[k][j];
    a[j][i] = a[i][j];
  }
`

func writeInput(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.c")
	if err := os.WriteFile(path, []byte(correlationC), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout around f.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestRunFirstIteration(t *testing.T) {
	path := writeInput(t)
	out, err := capture(t, func() error {
		return run("first-iteration", 64, 8, 32, false, true, 10, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"ranking polynomial",
		"first_iteration = 1;",
		"csqrt(",
		"a[j][i] = a[i][j];",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunAllSchemes(t *testing.T) {
	path := writeInput(t)
	for _, scheme := range []string{"per-iteration", "first-iteration", "chunked"} {
		if _, err := capture(t, func() error {
			return run(scheme, 32, 4, 16, false, false, 0, []string{path})
		}); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
	// simd/warp require full collapse; the correlation input collapses
	// 2 of 2 parsed loops (the k loop is body text), so they work too.
	for _, scheme := range []string{"simd", "warp"} {
		if _, err := capture(t, func() error {
			return run(scheme, 32, 4, 16, false, false, 0, []string{path})
		}); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
}

func TestRunGoEmission(t *testing.T) {
	path := writeInput(t)
	out, err := capture(t, func() error {
		return run("first-iteration", 64, 8, 32, true, false, 0, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "package collapsed") || !strings.Contains(out, "cmplx.Sqrt(") {
		t.Errorf("Go emission missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInput(t)
	if err := run("bogus", 1, 1, 1, false, false, 0, []string{path}); err == nil {
		t.Error("bogus scheme accepted")
	}
	if err := run("chunked", 1, 1, 1, false, false, 0, []string{"a", "b"}); err == nil {
		t.Error("two files accepted")
	}
	if err := run("chunked", 1, 1, 1, false, false, 0, []string{"/does/not/exist.c"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.c")
	os.WriteFile(bad, []byte("int main() {}"), 0o644)
	if err := run("chunked", 1, 1, 1, false, false, 0, []string{bad}); err == nil {
		t.Error("non-annotated input accepted")
	}
}

// TestRunRepositoryTestdata self-checks the transformation on every
// sample input shipped in testdata/, including the quartic §IV.B limit
// case.
func TestRunRepositoryTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.c")
	if err != nil || len(files) < 4 {
		t.Fatalf("testdata inputs: %v (err %v)", files, err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			if _, err := capture(t, func() error {
				return run("first-iteration", 64, 8, 32, false, false, 6, []string{f})
			}); err != nil {
				t.Errorf("%s: %v", f, err)
			}
		})
	}
}
