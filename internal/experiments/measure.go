// Package experiments regenerates every figure of the paper's evaluation
// (§VII):
//
//	Fig. 2  — per-thread load distribution of schedule(static) on the
//	          correlation triangle;
//	Fig. 8  — curves of r(i,0,0) − pc for the tetrahedral nest;
//	Fig. 9  — gains of collapsing vs outer-loop static and dynamic
//	          parallelization, for all kernels;
//	Fig. 10 — serial control overhead of 12 index recoveries.
//
// Fig. 10 is measured directly (serial runs). Fig. 9 combines measured
// per-unit costs with the discrete-event schedule simulator: the paper's
// 12 hardware threads are replaced by 12 simulated threads whose per-unit
// work is exact (computed from the kernels' work models) and whose unit
// cost, dynamic-dequeue overhead and recovery cost are calibrated on the
// host. An optional "real" mode also runs the goroutine runtime and
// reports wall-clock times (meaningful only when GOMAXPROCS is at least
// the thread count).
package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/omp"
	"repro/internal/unrank"
)

// Calibration holds host-measured unit costs (seconds).
type Calibration struct {
	// Dequeue is the per-chunk cost of dynamic scheduling (one atomic
	// fetch-add plus dispatch).
	Dequeue float64
	// Recovery is the cost of one full closed-form index recovery
	// (Unrank) for the given collapse result.
	Recovery float64
	// Increment is the cost of one lexicographic incrementation.
	Increment float64
}

// timeIt measures f, repeating until the total elapsed time exceeds
// minDuration, and returns seconds per call.
func timeIt(minDuration time.Duration, f func()) float64 {
	reps := 1
	for {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		el := time.Since(start)
		if el >= minDuration || reps >= 1<<28 {
			return el.Seconds() / float64(reps)
		}
		if el <= 0 {
			reps *= 64
			continue
		}
		grow := int(float64(minDuration)/float64(el)) + 1
		if grow > 64 {
			grow = 64
		}
		reps *= grow
	}
}

// MeasureDequeue calibrates the per-chunk overhead of the dynamic
// schedule by running an empty-body dynamic loop on one thread and
// subtracting a static empty loop.
func MeasureDequeue() float64 {
	const n = 1 << 17
	dyn := timeIt(20*time.Millisecond, func() {
		omp.ParallelFor(1, 0, n, omp.Schedule{Kind: omp.Dynamic}, func(int, int64) {})
	})
	stat := timeIt(20*time.Millisecond, func() {
		omp.ParallelFor(1, 0, n, omp.Schedule{Kind: omp.Static}, func(int, int64) {})
	})
	per := (dyn - stat) / n
	if per < 1e-9 {
		per = 1e-9 // floor: an atomic RMW is never free
	}
	return per
}

// MeasureRecovery calibrates one closed-form recovery (Unrank) averaged
// over random ranks of the collapsed space.
func MeasureRecovery(res *core.Result, params map[string]int64) (float64, error) {
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return 0, err
	}
	total := b.Total()
	if total == 0 {
		return 0, nil
	}
	rnd := rand.New(rand.NewSource(7))
	const nPCs = 256
	pcs := make([]int64, nPCs)
	for i := range pcs {
		pcs[i] = 1 + rnd.Int63n(total)
	}
	idx := make([]int64, res.C)
	sec := timeIt(10*time.Millisecond, func() {
		for _, pc := range pcs {
			_ = b.Unrank(pc, idx)
		}
	})
	return sec / nPCs, nil
}

// MeasureIncrement calibrates one lexicographic incrementation.
func MeasureIncrement(res *core.Result, params map[string]int64) (float64, error) {
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return 0, err
	}
	total := b.Total()
	if total < 2 {
		return 0, nil
	}
	idx := make([]int64, res.C)
	span := total - 1
	if span > 1<<15 {
		span = 1 << 15
	}
	sec := timeIt(10*time.Millisecond, func() {
		if err := b.Unrank(1, idx); err != nil {
			return
		}
		for s := int64(0); s < span; s++ {
			b.Increment(idx)
		}
	})
	return sec / float64(span), nil
}

// Calibrate performs all host measurements for a collapse result.
func Calibrate(res *core.Result, params map[string]int64) (Calibration, error) {
	var c Calibration
	c.Dequeue = MeasureDequeue()
	var err error
	if c.Recovery, err = MeasureRecovery(res, params); err != nil {
		return c, err
	}
	if c.Increment, err = MeasureIncrement(res, params); err != nil {
		return c, err
	}
	return c, nil
}

// MeasureSerial times one full sequential execution of a kernel instance
// (resetting it first).
func MeasureSerial(inst kernels.Instance) float64 {
	inst.Reset()
	start := time.Now()
	kernels.RunSeq(inst)
	return time.Since(start).Seconds()
}

// buildResult is a convenience wrapper caching nothing; collapse
// construction is cheap relative to kernel runs.
func buildResult(k *kernels.Kernel) (*core.Result, error) {
	return core.Collapse(k.Nest, k.Collapse, unrank.Options{})
}
