/* the paper's Fig. 6 tetrahedral nest: collapse all three loops */
#pragma omp parallel for collapse(3) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = 0; j < i + 1; j++)
    for (k = j; k < i + 1; k++)
      S(i, j, k);
