// Command rankq answers ranking/unranking queries about affine loop
// nests: the total iteration count, the rank of a given iteration tuple,
// the tuple at a given rank, the ranking polynomial itself, and the
// symbolic convenient roots.
//
// The nest is given with -nest as semicolon-separated loops
// "index=lower:upper" (upper exclusive), parameters bound with repeated
// -p name=value flags:
//
//	rankq -nest 'i=0:N-1; j=i+1:N' -p N=10 total
//	rankq -nest 'i=0:N-1; j=i+1:N' -p N=10 rank 3 5
//	rankq -nest 'i=0:N-1; j=i+1:N' -p N=10 unrank 29
//	rankq -nest 'i=0:N-1; j=i+1:N' -p N=1000 run
//	rankq -nest 'i=0:N-1; j=i+1:N' poly
//	rankq -nest 'i=0:N-1; j=i+1:N' roots
//
// The `run` command executes the collapsed nest on the parallel runtime
// (-threads workers). -deadline DUR bounds any run with a
// context.WithTimeout — the same deadline path the collapsed daemon
// enforces per request; on expiry the team stops cooperatively at a
// chunk boundary and the typed faults.ErrCanceled class is reported.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/ehrhart"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/poly"
	"repro/internal/roots"
	"repro/internal/unrank"
)

// collapseCache memoizes the symbolic build across the queries of one
// invocation (e.g. a script piping many nests through one process via
// `roots` followed by rank/unrank queries): structurally identical nests
// compile once. The cache key includes the recovery mode, so -mode
// variants of the same nest coexist.
var collapseCache = core.NewCollapseCache(16)

// recoveryMode is the -mode selection (closed-form by default),
// threaded into every collapse this invocation performs.
var recoveryMode unrank.Mode

// build compiles (or cache-hits) the collapse of the whole nest.
func build(n *nest.Nest) (*core.Result, error) {
	return core.CollapseCached(collapseCache, n, n.Depth(), unrank.Options{Mode: recoveryMode})
}

type paramFlags map[string]int64

func (p paramFlags) String() string { return fmt.Sprint(map[string]int64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return err
	}
	p[strings.TrimSpace(name)] = v
	return nil
}

func main() {
	nestSpec := flag.String("nest", "", "loops as 'i=lo:hi; j=lo:hi; ...' (hi exclusive)")
	params := paramFlags{}
	flag.Var(params, "p", "parameter binding name=value (repeatable)")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the query (0: none); an expired run stops at a chunk boundary with ErrCanceled")
	threads := flag.Int("threads", omp.DefaultThreads(), "team size for the run command")
	sched := flag.String("sched", "dynamic,4096", "schedule for the run command: static|static,N|dynamic[,N]|guided[,N]|auto (auto lets the autotuner pick schedule, chunk and team size)")
	mode := flag.String("mode", "closed-form", "index recovery mode: closed-form (radical roots), search (exact binary search), or table (precomputed breakpoint tables; like search, accepts degree > 4)")
	flag.Parse()

	var err error
	if recoveryMode, err = unrank.ParseMode(*mode); err != nil {
		fmt.Fprintln(os.Stderr, "rankq:", err)
		os.Exit(1)
	}
	if err := run(*nestSpec, params, *deadline, *threads, *sched, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "rankq:", err)
		os.Exit(1)
	}
}

func parseNest(spec string, params paramFlags) (*nest.Nest, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("missing -nest")
	}
	var loops []nest.Loop
	indexSet := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, bounds, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loop %q: want index=lo:hi", part)
		}
		loSrc, hiSrc, ok := strings.Cut(bounds, ":")
		if !ok {
			return nil, fmt.Errorf("loop %q: want index=lo:hi", part)
		}
		lo, err := poly.Parse(loSrc)
		if err != nil {
			return nil, fmt.Errorf("loop %q lower: %w", part, err)
		}
		hi, err := poly.Parse(hiSrc)
		if err != nil {
			return nil, fmt.Errorf("loop %q upper: %w", part, err)
		}
		idx := strings.TrimSpace(name)
		loops = append(loops, nest.Loop{Index: idx, Lower: lo, Upper: hi})
		indexSet[idx] = true
	}
	// Free identifiers become parameters.
	pset := map[string]bool{}
	for _, l := range loops {
		for _, v := range append(l.Lower.Vars(), l.Upper.Vars()...) {
			if !indexSet[v] {
				pset[v] = true
			}
		}
	}
	var ps []string
	for p := range pset {
		ps = append(ps, p)
	}
	// Deterministic order.
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if ps[j] < ps[i] {
				ps[i], ps[j] = ps[j], ps[i]
			}
		}
	}
	return nest.New(ps, loops...)
}

func run(nestSpec string, params paramFlags, deadline time.Duration, threads int, sched string, args []string) error {
	n, err := parseNest(nestSpec, params)
	if err != nil {
		return err
	}
	if len(args) == 0 {
		return fmt.Errorf("missing command: total|rank|unrank|run|poly|roots|list")
	}
	cmd, rest := args[0], args[1:]

	switch cmd {
	case "poly":
		fmt.Printf("r(%s) = %s\n", strings.Join(n.Indices(), ", "), ehrhart.Ranking(n))
		fmt.Printf("count = %s\n", ehrhart.Count(n))
		return nil
	case "roots":
		if recoveryMode != unrank.ModeClosedForm {
			return fmt.Errorf("the %s mode selects no symbolic roots; rerun with -mode closed-form", recoveryMode)
		}
		res, err := build(n)
		if err != nil {
			return err
		}
		u := res.Unranker
		for k := 0; k < n.Depth()-1; k++ {
			fmt.Printf("%s = floor(Re( %s ))\n", n.Loops[k].Index, roots.String(u.RootExpr(k)))
		}
		fmt.Printf("%s: direct formula (pc minus rank of prefix lexmin)\n", n.Loops[n.Depth()-1].Index)
		return nil
	case "run":
		return runCollapsed(n, params, deadline, threads, sched)
	}

	res, err := build(n)
	if err != nil {
		return err
	}
	u := res.Unranker
	b, err := u.Bind(params)
	if err != nil {
		// Domains whose iteration count exceeds the int64 pc range
		// cannot be unranked, but their exact cardinality still exists:
		// answer "total" from the counting polynomial over big.Rat.
		if cmd == "total" && errors.Is(err, faults.ErrOverflow) {
			env := make(map[string]*big.Rat, len(params))
			for name, v := range params {
				env[name] = new(big.Rat).SetInt64(v)
			}
			r, perr := u.Count().EvalRat(env)
			if perr != nil {
				return err
			}
			fmt.Println(new(big.Int).Quo(r.Num(), r.Denom()).String())
			return nil
		}
		return err
	}
	switch cmd {
	case "total":
		fmt.Println(b.Total())
	case "rank":
		if len(rest) != n.Depth() {
			return fmt.Errorf("rank wants %d indices", n.Depth())
		}
		idx := make([]int64, n.Depth())
		for q, s := range rest {
			if idx[q], err = strconv.ParseInt(s, 10, 64); err != nil {
				return err
			}
		}
		if !b.Instance().Contains(idx) {
			return fmt.Errorf("%v is not in the iteration domain", idx)
		}
		fmt.Println(b.Rank(idx))
	case "unrank":
		if len(rest) != 1 {
			return fmt.Errorf("unrank wants one pc value")
		}
		pc, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		idx := make([]int64, n.Depth())
		if err := b.Unrank(pc, idx); err != nil {
			return err
		}
		out := make([]string, len(idx))
		for q, v := range idx {
			out[q] = fmt.Sprintf("%s=%d", n.Loops[q].Index, v)
		}
		fmt.Println(strings.Join(out, " "))
	case "list":
		idx := make([]int64, n.Depth())
		var pc int64
		b.Instance().Enumerate(func(truth []int64) bool {
			pc++
			copy(idx, truth)
			fmt.Printf("%6d: %v\n", pc, idx)
			return true
		})
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// runCollapsed executes the collapsed nest on the parallel runtime,
// with -deadline wired through context.WithTimeout into
// omp.CollapsedForCtx. Expiry is reported as the typed ErrCanceled
// class, distinguishing a budget stop from a wrong-answer failure.
func runCollapsed(n *nest.Nest, params paramFlags, deadline time.Duration, threads int, spec string) error {
	res, err := build(n)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	sched := parseSchedule(spec)
	if sched.Kind == omp.ScheduleAuto {
		return runTuned(ctx, res, params, deadline, threads)
	}
	perThread := make([]int64, threads)
	start := time.Now()
	err = omp.CollapsedForCtx(ctx, res, params, threads, sched,
		func(tid int, idx []int64) { perThread[tid]++ })
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, faults.ErrCanceled) {
			return fmt.Errorf("deadline %s expired after %s: team stopped cooperatively at a chunk boundary (typed faults.ErrCanceled): %w",
				deadline, elapsed.Round(time.Millisecond), err)
		}
		return err
	}
	var total int64
	for _, c := range perThread {
		total += c
	}
	fmt.Printf("ran %d iterations on %d threads in %s\n", total, threads, elapsed.Round(time.Microsecond))
	return nil
}

// parseSchedule maps the -sched flag to a runtime schedule: the OpenMP
// clause grammar plus "auto" (autotuned). The default spec keeps the
// historical dynamic,4096 behaviour so deadlines are observed at chunk
// boundaries.
func parseSchedule(spec string) omp.Schedule {
	kind, arg, _ := strings.Cut(spec, ",")
	s := omp.Schedule{Kind: omp.Static}
	switch strings.TrimSpace(kind) {
	case "dynamic":
		s.Kind = omp.Dynamic
	case "guided":
		s.Kind = omp.Guided
	case "auto":
		s.Kind = omp.ScheduleAuto
	case "static", "":
	}
	if n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64); err == nil && n > 0 {
		s.Chunk = n
		if s.Kind == omp.Static {
			s.Kind = omp.StaticChunk
		}
	}
	return s
}

// runTuned is the -sched auto form of the run command: the autotuner
// plans (schedule, chunk, workers) by simulation against the measured
// cost model and the report prints the chosen triple with its
// predicted-vs-actual makespan.
func runTuned(ctx context.Context, res *core.Result, params paramFlags, deadline time.Duration, threads int) error {
	tuner := autotune.New(autotune.Options{MaxWorkers: threads})
	run, err := tuner.CollapsedFor(ctx, res, params, func(tid int, idx []int64) {})
	if err != nil {
		if errors.Is(err, faults.ErrCanceled) {
			return fmt.Errorf("deadline %s expired: team stopped cooperatively at a chunk boundary (typed faults.ErrCanceled): %w",
				deadline, err)
		}
		return err
	}
	d := run.Plan.Decision
	fmt.Printf("ran %d iterations tuned (schedule %s) in %s\n",
		run.Stats.Total, d, run.Actual.Round(time.Microsecond))
	fmt.Printf("autotune: predicted %.3fms, actual %.3fms, plan cached %v\n",
		d.PredictedSec*1e3, run.Actual.Seconds()*1e3, run.Cached)
	return nil
}
