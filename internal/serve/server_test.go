package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// triSpec is the canonical triangular nest used across the server tests.
func triSpec() *NestSpec {
	return &NestSpec{Loops: []LoopSpec{
		{Index: "i", Lower: "0", Upper: "N - 1"},
		{Index: "j", Lower: "i + 1", Upper: "N"},
	}}
}

func triRequest(n int64) *Request {
	return &Request{Nest: triSpec(), Params: map[string]int64{"N": n}}
}

// triEnum enumerates the triangular domain sequentially: the ground
// truth for rank/unrank/execute answers.
func triEnum(t *testing.T, nv int64) (tuples [][]int64, checksum uint64) {
	t.Helper()
	n, err := buildStructured(triSpec())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := n.Bind(map[string]int64{"N": nv})
	if err != nil {
		t.Fatal(err)
	}
	inst.Enumerate(func(idx []int64) bool {
		tup := append([]int64(nil), idx...)
		tuples = append(tuples, tup)
		checksum += TupleHash(tup)
		return true
	})
	return tuples, checksum
}

// startServer boots a test daemon and returns a client on it.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	s := New(cfg)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := NewClient("http://" + addr.String())
	c.MaxRetries = -1
	return s, c
}

func TestEndpointAnswersMatchEnumeration(t *testing.T) {
	_, c := startServer(t, Config{Threads: 2})
	ctx := context.Background()
	const N = 25
	tuples, checksum := triEnum(t, N)

	comp, err := c.Compile(ctx, triRequest(N))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if comp.Collapse != 2 || comp.Ranking == "" || len(comp.Roots) != 1 {
		t.Fatalf("compile response malformed: %+v", comp)
	}
	if comp.Cached {
		t.Fatalf("first compile reported cached")
	}
	comp2, err := c.Compile(ctx, triRequest(N))
	if err != nil {
		t.Fatalf("second compile: %v", err)
	}
	if !comp2.Cached {
		t.Fatalf("second compile not served from cache")
	}

	cnt, err := c.Count(ctx, triRequest(N))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if cnt.Total != int64(len(tuples)) {
		t.Fatalf("count = %d, want %d", cnt.Total, len(tuples))
	}

	// Rank and unrank roundtrip every tuple of the enumeration.
	for pc1, tup := range tuples {
		pc := int64(pc1) + 1
		req := triRequest(N)
		req.Index = tup
		r, err := c.Rank(ctx, req)
		if err != nil {
			t.Fatalf("rank(%v): %v", tup, err)
		}
		if r.Pc != pc {
			t.Fatalf("rank(%v) = %d, want %d", tup, r.Pc, pc)
		}
		req = triRequest(N)
		req.Pc = pc
		u, err := c.Unrank(ctx, req)
		if err != nil {
			t.Fatalf("unrank(%d): %v", pc, err)
		}
		if len(u.Index) != 2 || u.Index[0] != tup[0] || u.Index[1] != tup[1] {
			t.Fatalf("unrank(%d) = %v, want %v", pc, u.Index, tup)
		}
	}

	gen, err := c.Codegen(ctx, triRequest(N))
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	if gen.Language != "c" || gen.Code == "" {
		t.Fatalf("codegen response malformed: %+v", gen)
	}

	req := triRequest(N)
	req.Schedule = "dynamic,16"
	ex, err := c.Execute(ctx, req)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("execute = %d iters checksum %d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
	if !ex.Collapsed || ex.Degraded {
		t.Fatalf("execute ran the wrong engine: %+v", ex)
	}
}

func TestBadRequestsClassify400(t *testing.T) {
	_, c := startServer(t, Config{})
	ctx := context.Background()
	cases := []*Request{
		{},                          // no nest at all
		{Nest: triSpec(), Src: "x"}, // both forms
		{Nest: &NestSpec{}},         // empty nest
	}
	for i, req := range cases {
		_, err := c.Compile(ctx, req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Fatalf("case %d: err = %v, want 400 APIError", i, err)
		}
	}
	// Out-of-domain queries are caller mistakes, not server faults.
	req := triRequest(10)
	req.Index = []int64{5, 2} // j <= i: outside the triangle
	_, err := c.Rank(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("out-of-domain rank: err = %v, want 400", err)
	}
	req = triRequest(10)
	req.Pc = 10_000
	_, err = c.Unrank(context.Background(), req)
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("out-of-range unrank: err = %v, want 400", err)
	}
}

// TestDeadlineClassifies504 checks the deadline path end to end: a slow
// execute (fault-injected chunk delay) against a short client deadline
// answers 504 deadline_exceeded, and the serve.deadline_exceeded counter
// moves.
func TestDeadlineClassifies504(t *testing.T) {
	reg := telemetry.New()
	s, c := startServer(t, Config{Threads: 2, Registry: reg})
	// Warm the compile outside the fault window.
	if _, err := c.Compile(context.Background(), triRequest(400)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	restore := faults.Activate(&faults.Plan{ChunkDelay: 5 * time.Millisecond})
	defer restore()

	c.Deadline = 30 * time.Millisecond // ?deadline_ms=30
	req := triRequest(400)
	req.Schedule = "dynamic,64"
	_, err := c.Execute(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || ae.Class != "deadline_exceeded" {
		t.Fatalf("slow execute err = %v, want 504 deadline_exceeded", err)
	}
	if n := reg.Counter("serve.deadline_exceeded").Value(); n == 0 {
		t.Fatalf("serve.deadline_exceeded did not move")
	}
	_ = s
}

// TestPanicIsolationKeepsTeamUsable is the robustness acceptance for
// worker panics: a panic injected into a served execute answers 500
// (never kills the process), and the very next request — on the same
// daemon, same engine — succeeds.
func TestPanicIsolationKeepsTeamUsable(t *testing.T) {
	reg := telemetry.New()
	_, c := startServer(t, Config{Threads: 2, Registry: reg})
	ctx := context.Background()
	const N = 40
	tuples, checksum := triEnum(t, N)
	if _, err := c.Compile(ctx, triRequest(N)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}

	restore := faults.Activate(&faults.Plan{
		OnChunk: func(tid int, clo, chi int64) error {
			panic("injected worker panic")
		},
	})
	req := triRequest(N)
	req.Schedule = "dynamic,16"
	_, err := c.Execute(ctx, req)
	restore()
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError || ae.Class != "panic" {
		t.Fatalf("panicked execute err = %v, want 500 panic", err)
	}
	if n := reg.Counter("serve.panics").Value(); n == 0 {
		t.Fatalf("serve.panics did not move")
	}

	// The team survived: same daemon answers the same request correctly.
	ex, err := c.Execute(ctx, req)
	if err != nil {
		t.Fatalf("execute after isolated panic: %v", err)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("post-panic execute = %d/%d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
}

// TestBreakerFastRejectsRepeatedCompileFailure drives a deterministically
// failing compile (root perturbation active during candidate selection →
// ErrNoConvenientRoot, a Collapsible error) past the threshold and
// checks the circuit fast-fails with breaker_open — even after the fault
// clears — until cooldown.
func TestBreakerFastRejectsRepeatedCompileFailure(t *testing.T) {
	reg := telemetry.New()
	s, c := startServer(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Hour, Registry: reg})
	ctx := context.Background()

	restore := faults.Activate(&faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 { return x + 1000 },
	})
	var ae *APIError
	for i := 0; i < 2; i++ {
		_, err := c.Compile(ctx, triRequest(30))
		if !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity {
			restore()
			t.Fatalf("poisoned compile %d: err = %v, want 422", i, err)
		}
	}
	restore()

	// The fault is gone, but the circuit for this shape is open: the
	// compile pipeline must not run again before cooldown.
	_, err := c.Compile(ctx, triRequest(30))
	if !errors.As(err, &ae) || ae.Class != "breaker_open" {
		t.Fatalf("err after trip = %v, want breaker_open", err)
	}
	if n := reg.Counter("serve.breaker_open").Value(); n == 0 {
		t.Fatalf("serve.breaker_open did not move")
	}
	if n := s.breaker.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}

	// A different shape is unaffected by this shape's circuit.
	if _, err := c.Compile(ctx, &Request{Nest: &NestSpec{Loops: []LoopSpec{
		{Index: "a", Lower: "0", Upper: "M"},
		{Index: "b", Lower: "0", Upper: "a + 1"},
	}}, Params: map[string]int64{"M": 10}}); err != nil {
		t.Fatalf("unrelated shape rejected: %v", err)
	}

	// Force cooldown expiry: the next request is the half-open probe and,
	// with the fault cleared, closes the circuit.
	s.breaker.mu.Lock()
	for _, e := range s.breaker.entries {
		e.until = time.Now().Add(-time.Second)
	}
	s.breaker.mu.Unlock()
	if _, err := c.Compile(ctx, triRequest(30)); err != nil {
		t.Fatalf("probe compile after cooldown: %v", err)
	}
	if n := s.breaker.openCount(); n != 0 {
		t.Fatalf("openCount after recovery = %d, want 0", n)
	}
}

// TestDegradeLadder checks the load-derived tiers: with the semaphore
// mostly occupied, codegen sheds with 429 and execute degrades to the
// uncollapsed fallback — still answering correctly.
func TestDegradeLadder(t *testing.T) {
	reg := telemetry.New()
	s, c := startServer(t, Config{Threads: 2, MaxInflight: 4, Registry: reg})
	ctx := context.Background()
	const N = 30
	tuples, checksum := triEnum(t, N)
	if _, err := c.Compile(ctx, triRequest(N)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}

	// Occupy 3 of 4 slots: load 0.75 ≥ ForceFallbackLoad.
	for i := 0; i < 3; i++ {
		s.sem <- struct{}{}
		s.inflight.Add(1)
	}
	defer func() {
		for i := 0; i < 3; i++ {
			<-s.sem
			s.inflight.Add(-1)
		}
	}()
	if tier := s.Tier(); tier != TierForceFallback {
		t.Fatalf("tier at 0.75 load = %v, want force-fallback", tier)
	}

	_, err := c.Codegen(ctx, triRequest(N))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("codegen under load: err = %v, want 429", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("shed codegen carries no Retry-After hint")
	}
	if n := reg.Counter("serve.shed_codegen").Value(); n == 0 {
		t.Fatalf("serve.shed_codegen did not move")
	}

	req := triRequest(N)
	ex, err := c.Execute(ctx, req)
	if err != nil {
		t.Fatalf("execute under load: %v", err)
	}
	if !ex.Degraded || ex.Collapsed {
		t.Fatalf("execute at force-fallback tier: %+v, want degraded uncollapsed", ex)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("degraded execute = %d/%d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}

	// /healthz reports unavailable at this tier.
	ready, doc, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if ready {
		t.Fatalf("healthz ready at force-fallback tier: %v", doc)
	}
}

// TestSemaphoreFullSheds429 fills every slot and checks full-capacity
// rejection (with a hint) rather than queueing or failure.
func TestSemaphoreFullSheds429(t *testing.T) {
	s, c := startServer(t, Config{MaxInflight: 2})
	for i := 0; i < 2; i++ {
		s.sem <- struct{}{}
		s.inflight.Add(1)
	}
	defer func() {
		for i := 0; i < 2; i++ {
			<-s.sem
			s.inflight.Add(-1)
		}
	}()
	_, err := c.Count(context.Background(), triRequest(10))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err at full capacity = %v, want 429", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("capacity rejection carries no Retry-After hint")
	}
}

// TestRateLimitSheds429WithRefillHint exhausts the token bucket and
// checks the 429 carries the refill-derived hint.
func TestRateLimitSheds429WithRefillHint(t *testing.T) {
	_, c := startServer(t, Config{RatePerSec: 1, Burst: 1})
	ctx := context.Background()
	if _, err := c.Count(ctx, triRequest(10)); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	_, err := c.Count(ctx, triRequest(10))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("err past burst = %v, want 429", err)
	}
	// Rate 1/s, empty bucket: the hint is ~1s stretched by at most 25%.
	if ae.RetryAfter < 500*time.Millisecond || ae.RetryAfter > 1500*time.Millisecond {
		t.Fatalf("refill hint %v implausible for rate 1/s", ae.RetryAfter)
	}
}

// TestGracefulShutdownDrains starts a slow request, shuts down mid-
// flight, and checks: the in-flight answer completes OK, new requests
// are refused with 503 shutting_down, and Shutdown returns cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	s, c := startServer(t, Config{Threads: 2})
	ctx := context.Background()
	const N = 60
	tuples, _ := triEnum(t, N)
	if _, err := c.Compile(ctx, triRequest(N)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}

	restore := faults.Activate(&faults.Plan{ChunkDelay: 2 * time.Millisecond})
	defer restore()

	var wg sync.WaitGroup
	var slowErr error
	var slowResp *ExecuteResponse
	started := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := triRequest(N)
		req.Schedule = "dynamic,32"
		close(started)
		slowResp, slowErr = c.Execute(ctx, req)
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the request get in flight

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	wg.Wait()
	if slowErr != nil {
		t.Fatalf("in-flight request dropped during drain: %v", slowErr)
	}
	if slowResp.Iterations != int64(len(tuples)) {
		t.Fatalf("drained request answered %d iterations, want %d",
			slowResp.Iterations, len(tuples))
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Post-drain: the daemon is gone (connection refused) or still
	// answering 503 — never a 200.
	if _, err := c.Count(ctx, triRequest(10)); err == nil {
		t.Fatalf("request succeeded after drain")
	}
}

// TestCountBeyondInt64AnswersBig checks the graceful big-total path: a
// domain past the int64 pc range still gets its exact cardinality.
func TestCountBeyondInt64AnswersBig(t *testing.T) {
	_, c := startServer(t, Config{})
	req := &Request{
		Nest: &NestSpec{Loops: []LoopSpec{
			{Index: "i", Lower: "0", Upper: "N"},
			{Index: "j", Lower: "0", Upper: "N"},
			{Index: "k", Lower: "0", Upper: "N"},
		}},
		Params: map[string]int64{"N": 3_000_000},
	}
	cnt, err := c.Count(context.Background(), req)
	if err != nil {
		t.Fatalf("big count: %v", err)
	}
	if cnt.Total != 0 || cnt.TotalBig != "27000000000000000000" {
		t.Fatalf("big count = %+v, want TotalBig 2.7e19", cnt)
	}
}
