/* Malformed on purpose: the inner upper bound is quadratic in i, which
   is outside the affine Fig. 5 model (ErrNonAffine). */
#pragma omp parallel for collapse(2) schedule(static)
for (i = 0; i < N; i++)
  for (j = 0; j < i*i + 1; j++)
    a[i][j] = 0;
