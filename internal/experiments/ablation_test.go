package experiments

import (
	"strings"
	"testing"
)

func TestAblationQuickStructure(t *testing.T) {
	rows, err := Ablation(AblationOptions{Quick: true, Kernels: []string{"correlation", "utma"}, Chunks: []int64{4, 64}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 kernels x (per-iteration, binary-search, 2 chunks, once-per-12).
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKernel := map[string]map[string]AblationRow{}
	for _, r := range rows {
		if r.SerialSec <= 0 || r.VariantSec <= 0 {
			t.Errorf("%s/%s: non-positive times", r.Kernel, r.Strategy)
		}
		if byKernel[r.Kernel] == nil {
			byKernel[r.Kernel] = map[string]AblationRow{}
		}
		byKernel[r.Kernel][r.Strategy] = r
	}
	// The §V claim, robust even at tiny sizes: hoisting recovery to once
	// per 12 chunks is much cheaper than recovering at every iteration.
	for kn, m := range byKernel {
		per := m["per-iteration"]
		hoisted := m["once-per-12"]
		if hoisted.VariantSec >= per.VariantSec {
			t.Errorf("%s: once-per-12 (%g) not cheaper than per-iteration (%g)",
				kn, hoisted.VariantSec, per.VariantSec)
		}
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "once-per-12") || !strings.Contains(out, "chunk=64") {
		t.Errorf("render missing rows:\n%s", out)
	}
}

func TestAblationUnknownKernel(t *testing.T) {
	if _, err := Ablation(AblationOptions{Kernels: []string{"nope"}}); err == nil {
		t.Error("unknown kernel accepted")
	}
}
