first_iteration = 1;
#pragma omp parallel for private(i, j, k, v, T) firstprivate(first_iteration) schedule(static)
for (pc = 1 ; pc <= (N*N*N - N)/6 ; pc += 8) {
  if (first_iteration) {
    i = floor(creal(-((1.0/2.0 + ((-1 + csqrt(-3))*1.0/2.0*cpow((-3.0/4.0*pc + 3.0/4.0 + csqrt(9.0/16.0*pc*pc - 9.0/8.0*pc + 121.0/216.0))*1.0/2.0, 1.0/3.0) + 1.0/12.0/((-1 + csqrt(-3))*1.0/2.0*cpow((-3.0/4.0*pc + 3.0/4.0 + csqrt(9.0/16.0*pc*pc - 9.0/8.0*pc + 121.0/216.0))*1.0/2.0, 1.0/3.0))))*2)));
    j = floor(creal(-(-i - 3.0/2.0 + csqrt(1.0/3.0*i*i*i + 2*i*i + 11.0/3.0*i - 2*pc + 17.0/4.0))));
    k = j + (pc - ((i*i*i + 6*i*j + 3*i*i - 3*j*j + 2*i + 9*j + 6)/6));
    first_iteration = 0;
  }
  for (v = pc ; v <= min(pc+7, (N*N*N - N)/6) ; v++) {
    T[v-pc] = Indices(i, j, k);
    k++;
    if (k >= i + 1) {
      j++;
      if (j >= i + 1) {
        i++;
        j = 0;
      }
      k = j;
    }
  }
  #pragma omp simd
  for (v = pc ; v <= min(pc+7, (N*N*N - N)/6) ; v++) {
    S(i, j, k);
  }
}
