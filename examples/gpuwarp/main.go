// SIMD-batch (§VI.A) and GPU-warp (§VI.B) execution of a collapsed
// rhomboidal nest. The warp scheme assigns consecutive collapsed
// iterations to the W lanes of a warp — the memory-coalescing
// distribution of GPU programming — with each lane performing the
// costly recovery only once and advancing by W incrementations.
//
//	go run ./examples/gpuwarp [-N 300] [-M 64] [-W 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	nonrect "repro"
)

func main() {
	N := flag.Int64("N", 300, "outer size")
	M := flag.Int64("M", 64, "band width (rhomboid)")
	W := flag.Int("W", 32, "warp width")
	flag.Parse()

	// Rhomboidal space: j runs in a band of width M shifted by i.
	n := nonrect.MustNewNest([]string{"N", "M"},
		nonrect.L("i", "0", "N"),
		nonrect.L("j", "i", "i+M"),
	)
	res, err := nonrect.Collapse(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]int64{"N": *N, "M": *M}
	total := *N * *M
	fmt.Printf("rhomboid %dx%d: ranking r(i,j) = %s, total = %s\n", *N, *M, res.Ranking, res.Total)

	// Output vector indexed by rank-1: both schemes must fill it fully.
	out := make([]int64, total)

	// §VI.A: SIMD batches of 8 consecutive tuples per call.
	var batches atomic.Int64
	err = nonrect.CollapsedForSIMD(res, params, 4, 8, func(tid int, batch [][]int64) {
		batches.Add(1)
		for _, idx := range batch {
			i, j := idx[0], idx[1]
			out[i*(*M)+(j-i)] = i + j
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SIMD scheme: %d batches of <= 8 tuples, filled %d cells\n", batches.Load(), countFilled(out))

	// §VI.B: warp of W lanes, stride-W iteration interleaving.
	for x := range out {
		out[x] = 0
	}
	var perLane atomic.Int64
	err = nonrect.CollapsedForWarp(res, params, *W, func(lane int, pc int64, idx []int64) {
		i, j := idx[0], idx[1]
		out[i*(*M)+(j-i)] = i + j
		perLane.Add(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warp scheme: W=%d lanes executed %d iterations, filled %d cells\n",
		*W, perLane.Load(), countFilled(out))
	if countFilled(out) != total {
		log.Fatalf("coverage hole: %d != %d", countFilled(out), total)
	}
	fmt.Println("full coverage verified for both schemes")
}

func countFilled(out []int64) int64 {
	var c int64
	for x, v := range out {
		// i + j = 0 only for the very first cell (i=j=0).
		if v != 0 || x == 0 {
			c++
		}
	}
	return c
}
