package telemetry

// Quantile estimation over the fixed-bucket histograms. The histogram
// stores only per-bucket counts, so quantiles are estimated by linear
// interpolation inside the bucket that crosses the target rank — the
// same scheme Prometheus' histogram_quantile() uses. The estimate is
// exact at bucket boundaries and within one bucket width elsewhere,
// which is plenty for the quarter-decade-spaced latency buckets.

// DefQuantiles are the quantiles reported by default: the median and
// the two tail percentiles operators actually alert on.
var DefQuantiles = []float64{0.5, 0.95, 0.99}

// Quantile estimates the q-quantile (0 <= q <= 1) of the snapshot by
// linear interpolation within the crossing bucket. Conventions:
//
//   - an empty histogram yields 0;
//   - ranks inside the first bucket interpolate from 0 (latencies are
//     nonnegative, so the lower edge of the first bucket is 0);
//   - ranks in the +Inf overflow bucket clamp to the last finite bound
//     (there is no upper edge to interpolate toward).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: clamp to the last finite bound.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Quantiles evaluates several quantiles at once (one pass per q; the
// snapshot is already frozen so there is no consistency concern).
func (h HistogramSnapshot) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
