package schedsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The satellite property: every simulated makespan is at least the
// trivial lower bound max(total/P, max unit), across randomized work
// vectors, thread counts, chunk sizes and cost models, for every
// policy. Overheads can only add time, so the bound holds with or
// without them.
func TestSimulateMakespanAtLeastLowerBound(t *testing.T) {
	pols := []PolicyKind{PolicyStatic, PolicyStaticChunk, PolicyDynamic, PolicyGuided}
	f := func(seed int64, p8, c8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		P := int(p8%16) + 1
		n := r.Intn(200)
		work := make([]float64, n)
		for i := range work {
			work[i] = r.Float64() * 100
		}
		lb := LowerBound(work, P)
		chunk := int(c8%64) + 1
		cm := CostModel{PerChunk: r.Float64() * 5, PerDequeue: r.Float64() * 2}
		for _, k := range pols {
			for _, m := range []CostModel{{}, cm} {
				ms, loads := Simulate(work, P, Policy{Kind: k, Chunk: chunk}, m)
				if ms < lb-1e-9 {
					return false
				}
				// The makespan is the max per-thread load, and loads
				// conserve the total work (plus nonnegative overheads).
				var sum, maxL float64
				for _, l := range loads {
					sum += l
					if l > maxL {
						maxL = l
					}
				}
				if math.Abs(maxL-ms) > 1e-9 || sum < Total(work)-1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The fix the planner relies on: dynamic/guided pay the measured
// per-chunk recovery on every grab, so chunk-1 dynamic on a collapsed
// loop is penalized by recovery x iterations, exactly the §V cost the
// legacy constant-only simulation missed.
func TestDynamicChargesPerChunkRecovery(t *testing.T) {
	work := make([]float64, 1000)
	for i := range work {
		work[i] = 1
	}
	cm := CostModel{PerChunk: 10, PerDequeue: 0.5}
	small := Makespan(work, 4, Policy{Kind: PolicyDynamic, Chunk: 1}, cm)
	big := Makespan(work, 4, Policy{Kind: PolicyDynamic, Chunk: 100}, cm)
	if small <= big {
		t.Fatalf("chunk-1 dynamic %g not worse than chunk-100 %g under recovery cost", small, big)
	}
	// 1000 chunks across 4 threads, 10.5 overhead each: >= 250*10.5.
	if small < 250*10.5 {
		t.Fatalf("chunk-1 dynamic %g does not reflect per-chunk recovery", small)
	}
	// Legacy Dynamic (dequeue only) must still match the engine with
	// PerChunk = 0.
	if got, want := Dynamic(work, 4, 7, 0.5),
		Makespan(work, 4, Policy{Kind: PolicyDynamic, Chunk: 7}, CostModel{PerDequeue: 0.5}); got != want {
		t.Fatalf("legacy Dynamic %g != engine %g", got, want)
	}
}

func TestArrivalProcessMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	for _, tc := range []struct {
		name string
		a    Arrivals
	}{
		{"poisson", Arrivals{Kind: Poisson, Rate: 50}},
		{"gamma-smooth", Arrivals{Kind: Gamma, Rate: 50, Shape: 4}},
		{"gamma-bursty", Arrivals{Kind: Gamma, Rate: 50, Shape: 0.5}},
		{"weibull-heavy", Arrivals{Kind: Weibull, Rate: 50, Shape: 0.7}},
		{"weibull-smooth", Arrivals{Kind: Weibull, Rate: 50, Shape: 2}},
	} {
		var sum float64
		for i := 0; i < n; i++ {
			g := tc.a.InterArrival(rng)
			if g < 0 {
				t.Fatalf("%s: negative gap %g", tc.name, g)
			}
			sum += g
		}
		mean := sum / n
		want := 1.0 / 50
		if math.Abs(mean-want)/want > 0.1 {
			t.Errorf("%s: mean inter-arrival %g, want ~%g", tc.name, mean, want)
		}
	}
}

func TestGammaShapeControlsBurstiness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cv := func(a Arrivals) float64 {
		const n = 20000
		var sum, sq float64
		for i := 0; i < n; i++ {
			g := a.InterArrival(rng)
			sum += g
			sq += g * g
		}
		m := sum / n
		return math.Sqrt(sq/n-m*m) / m
	}
	smooth := cv(Arrivals{Kind: Gamma, Rate: 10, Shape: 8})
	bursty := cv(Arrivals{Kind: Gamma, Rate: 10, Shape: 0.25})
	if smooth >= 1 || bursty <= 1 {
		t.Errorf("gamma cv ordering wrong: shape=8 cv %g (want <1), shape=0.25 cv %g (want >1)",
			smooth, bursty)
	}
}

func TestGenTraceDeterministicAndMixed(t *testing.T) {
	shapes := []Shape{
		{Name: "uniform", Work: []float64{1, 1, 1, 1}, Weight: 1},
		{Name: "triangle", Work: []float64{4, 3, 2, 1}, Weight: 3},
	}
	o := TraceOptions{
		Arrivals: Arrivals{Kind: Poisson, Rate: 100},
		Requests: 400,
		Shapes:   shapes,
		Seed:     9,
	}
	a := GenTrace(o)
	b := GenTrace(o)
	if len(a) != 400 {
		t.Fatalf("len = %d", len(a))
	}
	counts := map[string]int{}
	var prev float64
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Shape != b[i].Shape {
			t.Fatal("trace not deterministic for a fixed seed")
		}
		if a[i].Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = a[i].Arrival
		counts[a[i].Shape]++
	}
	if counts["triangle"] <= counts["uniform"] {
		t.Errorf("weights not respected: %v", counts)
	}
}

func TestSimulateTraceFCFSLatency(t *testing.T) {
	work := []float64{1, 1, 1, 1}
	reqs := []TraceRequest{
		{Arrival: 0, Work: work},
		{Arrival: 0.1, Work: work}, // arrives while the first runs
		{Arrival: 100, Work: work}, // idle gap: no queueing
	}
	tr := SimulateTrace(reqs, 2, Policy{Kind: PolicyStatic}, CostModel{})
	// Each request's makespan: 4 units over 2 threads = 2.
	for i, ms := range tr.Makespans {
		if math.Abs(ms-2) > 1e-9 {
			t.Fatalf("makespan[%d] = %g", i, ms)
		}
	}
	if math.Abs(tr.Latencies[0]-2) > 1e-9 {
		t.Errorf("latency[0] = %g, want 2", tr.Latencies[0])
	}
	// Second waits until t=2, finishes at 4: latency 3.9.
	if math.Abs(tr.Latencies[1]-3.9) > 1e-9 {
		t.Errorf("latency[1] = %g, want 3.9", tr.Latencies[1])
	}
	if math.Abs(tr.Latencies[2]-2) > 1e-9 {
		t.Errorf("latency[2] = %g, want 2 (no queueing after idle gap)", tr.Latencies[2])
	}
	if math.Abs(tr.End-102) > 1e-9 {
		t.Errorf("end = %g, want 102", tr.End)
	}
}

func TestObjectiveOrdersSchedulesOnImbalancedWork(t *testing.T) {
	// Triangular work: static (blocked) should score worse than
	// dynamic under any makespan-dominated objective.
	work := triangularWork(400)
	reqs := []TraceRequest{{Arrival: 0, Work: work}}
	obj := DefaultObjective()
	stat := obj.Score(SimulateTrace(reqs, 6, Policy{Kind: PolicyStatic}, CostModel{}))
	dyn := obj.Score(SimulateTrace(reqs, 6, Policy{Kind: PolicyDynamic, Chunk: 4}, CostModel{}))
	if dyn >= stat {
		t.Errorf("objective: dynamic %g not better than static %g on triangle", dyn, stat)
	}
	// The zero objective normalizes to the default instead of scoring
	// everything 0.
	if (Objective{}).Score(SimulateTrace(reqs, 6, Policy{Kind: PolicyStatic}, CostModel{})) != stat {
		t.Error("zero objective did not normalize to default")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := Percentile(v, 0.5); got != 3 {
		t.Errorf("p50 = %g", got)
	}
	if got := Percentile(v, 0.99); got != 5 {
		t.Errorf("p99 = %g", got)
	}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %g", got)
	}
	// Input must not be reordered.
	if v[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}
