package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// utma: sum of two upper-triangular matrices (the paper uses
// 5000×5000). Purely elementwise — the collapsed pair of loops is the
// whole nest, so recovery cost per iteration matters most here (Fig. 10).
// Matrices are stored packed (row i holds columns i..N-1).
// ---------------------------------------------------------------------

// Utma is the upper-triangular matrix addition kernel.
var Utma = register(&Kernel{
	Name: "utma",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 2000},
	TestParams:  map[string]int64{"N": 48},
	New:         func(p map[string]int64) Instance { return newUtmaInst(p["N"]) },
})

type utmaInst struct {
	n       int64
	a, b, c []float64
}

// upper-triangle packed size and offset: row i starts at
// i*N - i(i-1)/2, column j >= i maps to +(j-i).
func triSize(n int64) int64 { return n * (n + 1) / 2 }

func (in *utmaInst) off(i, j int64) int64 { return i*in.n - i*(i-1)/2 + (j - i) }

func newUtmaInst(n int64) *utmaInst {
	in := &utmaInst{
		n: n,
		a: make([]float64, triSize(n)),
		b: make([]float64, triSize(n)),
		c: make([]float64, triSize(n)),
	}
	lcg(in.a, 31)
	lcg(in.b, 32)
	return in
}

func (in *utmaInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *utmaInst) RunOuter(i int64) {
	base := in.off(i, i)
	row := in.n - i
	a, b, c := in.a[base:base+row], in.b[base:base+row], in.c[base:base+row]
	for d := range c {
		c[d] = a[d] + b[d]
	}
}

func (in *utmaInst) RunCollapsed(idx []int64) {
	o := in.off(idx[0], idx[1])
	in.c[o] = in.a[o] + in.b[o]
}

// RunCollapsedRange is the generated-code-style fused loop (§V): the
// packed upper-triangular storage is laid out in rank order, so the
// output offset simply increments with pc while (i, j) advance inline.
func (in *utmaInst) RunCollapsedRange(start []int64, count int64) {
	i, j := start[0], start[1]
	n := in.n
	o := in.off(i, j)
	a, b, c := in.a, in.b, in.c
	for q := int64(0); q < count; q++ {
		c[o] = a[o] + b[o]
		o++
		j++
		if j >= n {
			i++
			j = i
		}
	}
}

func (in *utmaInst) WorkPerOuter(i int64) float64 { return float64(in.n - i) }

func (in *utmaInst) WorkPerCollapsed([]int64) float64 { return 1 }

func (in *utmaInst) Checksum() float64 { return checksum(in.c) }

func (in *utmaInst) Reset() {
	for x := range in.c {
		in.c[x] = 0
	}
}

// ---------------------------------------------------------------------
// ltmp: product of two lower-triangular matrices (the paper uses
// 4000×4000): C[i][j] = sum_{k=j}^{i} A[i][k]*B[k][j] for j <= i.
// The innermost k loop is a reduction (the dependence the paper reports),
// so only the two outer loops are collapsed — and because the k trip
// count varies with (i, j), the collapsed space itself remains
// load-imbalanced. This is the kernel where schedule(dynamic) beats
// collapsing in Fig. 9.
// ---------------------------------------------------------------------

// Ltmp is the lower-triangular matrix product kernel.
var Ltmp = register(&Kernel{
	Name: "ltmp",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
	),
	Collapse:        2,
	InnerDependence: true,
	BenchParams:     map[string]int64{"N": 500},
	TestParams:      map[string]int64{"N": 28},
	New:             func(p map[string]int64) Instance { return newLtmpInst(p["N"]) },
})

type ltmpInst struct {
	n       int64
	a, b, c []float64
}

func newLtmpInst(n int64) *ltmpInst {
	in := &ltmpInst{
		n: n,
		a: make([]float64, n*n),
		b: make([]float64, n*n),
		c: make([]float64, n*n),
	}
	lcg(in.a, 41)
	lcg(in.b, 42)
	return in
}

func (in *ltmpInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *ltmpInst) cell(i, j int64) {
	n := in.n
	acc := 0.0
	for k := j; k <= i; k++ {
		acc += in.a[i*n+k] * in.b[k*n+j]
	}
	in.c[i*n+j] = acc
}

func (in *ltmpInst) RunOuter(i int64) {
	for j := int64(0); j <= i; j++ {
		in.cell(i, j)
	}
}

func (in *ltmpInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1]) }

func (in *ltmpInst) WorkPerOuter(i int64) float64 {
	// sum_{j=0}^{i} (i-j+1) = (i+1)(i+2)/2
	return float64((i + 1) * (i + 2) / 2)
}

func (in *ltmpInst) WorkPerCollapsed(idx []int64) float64 {
	return float64(idx[0] - idx[1] + 1)
}

func (in *ltmpInst) Checksum() float64 { return checksum(in.c) }

func (in *ltmpInst) Reset() {
	for x := range in.c {
		in.c[x] = 0
	}
}
