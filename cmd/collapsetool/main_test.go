package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const correlationC = `
#pragma omp parallel for private(j, k) collapse(2) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++) {
    for (k = 0; k < N; k++)
      a[i][j] += b[k][i] * c[k][j];
    a[j][i] = a[i][j];
  }
`

func writeInput(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.c")
	if err := os.WriteFile(path, []byte(correlationC), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// base returns the default options for one input file.
func base(path string) options {
	return options{
		scheme:  "first-iteration",
		chunk:   64,
		vlength: 8,
		warp:    32,
		statsN:  40,
		threads: 4,
		args:    []string{path},
	}
}

// capture redirects stdout around f.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestRunFirstIteration(t *testing.T) {
	o := base(writeInput(t))
	o.report = true
	o.check = 10
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"ranking polynomial",
		"first_iteration = 1;",
		"csqrt(",
		"a[j][i] = a[i][j];",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunAllSchemes(t *testing.T) {
	path := writeInput(t)
	// simd/warp require full collapse; the correlation input collapses
	// 2 of 2 parsed loops (the k loop is body text), so they work too.
	for _, scheme := range []string{"per-iteration", "first-iteration", "chunked", "simd", "warp"} {
		o := base(path)
		o.scheme = scheme
		o.chunk = 32
		o.vlength = 4
		o.warp = 16
		if _, err := capture(t, func() error { return run(o) }); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
}

func TestRunGoEmission(t *testing.T) {
	o := base(writeInput(t))
	o.emitGo = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "package collapsed") || !strings.Contains(out, "cmplx.Sqrt(") {
		t.Errorf("Go emission missing:\n%s", out)
	}
}

func TestRunStats(t *testing.T) {
	o := base(writeInput(t))
	o.stats = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"=== telemetry",
		"load imbalance:",
		"thread", "iterations", "recovery",
		"recovery stats (all threads): root evals",
		"compile/ehrhart.Ranking",
		"compile/unrank.selectRoots",
		"unrank.root_evals",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("stats output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunTraceOut(t *testing.T) {
	o := base(writeInput(t))
	o.stats = true
	o.traceOut = filepath.Join(t.TempDir(), "trace.json")
	if _, err := capture(t, func() error { return run(o) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var haveCompile, haveChunk bool
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		switch ev.Name {
		case "core.Collapse":
			haveCompile = true
		case "static":
			haveChunk = true
		}
	}
	if !haveCompile || !haveChunk {
		t.Errorf("trace missing compile (%v) or chunk (%v) events", haveCompile, haveChunk)
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in   string
		kind string
	}{
		{"static", "static"},
		{"", "static"},
		{"static, 8", "static,chunk"},
		{"dynamic", "dynamic"},
		{"dynamic, 4", "dynamic"},
		{"guided", "guided"},
	}
	for _, c := range cases {
		if got := parseSchedule(c.in).Kind.String(); got != c.kind {
			t.Errorf("parseSchedule(%q).Kind = %s, want %s", c.in, got, c.kind)
		}
	}
	if s := parseSchedule("dynamic, 4"); s.Chunk != 4 {
		t.Errorf("chunk = %d, want 4", s.Chunk)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeInput(t)
	o := base(path)
	o.scheme = "bogus"
	if err := run(o); err == nil {
		t.Error("bogus scheme accepted")
	}
	o = base(path)
	o.args = []string{"a", "b"}
	if err := run(o); err == nil {
		t.Error("two files accepted")
	}
	o = base(path)
	o.args = []string{"/does/not/exist.c"}
	if err := run(o); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.c")
	os.WriteFile(bad, []byte("int main() {}"), 0o644)
	o = base(path)
	o.args = []string{bad}
	if err := run(o); err == nil {
		t.Error("non-annotated input accepted")
	}
}

// TestRunMalformedDiagnostics checks that parse failures come back as
// located, compiler-style diagnostics (file:line:col) rather than byte
// offsets or panics.
func TestRunMalformedDiagnostics(t *testing.T) {
	o := base("../../testdata/malformed/stride.c")
	err := run(o)
	if err == nil {
		t.Fatal("malformed input accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "stride.c:5:") || !strings.Contains(msg, "unit stride") {
		t.Errorf("diagnostic not located (want file:5:col + cause): %v", err)
	}

	o = base("../../testdata/malformed/nonaffine.c")
	if err := run(o); err == nil || !strings.Contains(err.Error(), "not affine") {
		t.Errorf("non-affine diagnostic: %v", err)
	}
}

const quinticC = `
#pragma omp parallel for collapse(5) schedule(static)
for (a = 0; a < N; a++)
  for (b = 0; b <= a; b++)
    for (c = 0; c <= b; c++)
      for (d = 0; d <= c; d++)
        for (e = 0; e <= d; e++)
          x += 1;
`

// TestRunStatsDowngrade checks the graceful-degradation path of -stats:
// a collapse(5) simplex nest has a degree-5 ranking polynomial (beyond
// radical solvability), so the tool downgrades to uncollapsed outer-loop
// worksharing and reports the downgrade in the telemetry.
func TestRunStatsDowngrade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quintic.c")
	if err := os.WriteFile(path, []byte(quinticC), 0o644); err != nil {
		t.Fatal(err)
	}
	o := base(path)
	o.stats = true
	o.statsN = 8
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"uncollapsed fallback",
		"per-thread iterations (outer-loop worksharing)",
		"omp.downgrades",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("downgrade output missing %q:\n%s", frag, out)
		}
	}
	// Without -stats the inapplicability is a hard, classified error.
	o.stats = false
	if _, err := capture(t, func() error { return run(o) }); err == nil ||
		!strings.Contains(err.Error(), "degree") {
		t.Errorf("codegen of degree-5 nest not rejected: %v", err)
	}
}

// TestRunStatsVerify runs -stats with exact per-recovery verification
// enabled and checks the verify counter surfaces in the report.
func TestRunStatsVerify(t *testing.T) {
	o := base(writeInput(t))
	o.stats = true
	o.verify = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unrank.verifies") || !strings.Contains(out, "verifies") {
		t.Errorf("verify counters missing from -stats output:\n%s", out)
	}
}

// TestRunRepositoryTestdata self-checks the transformation on every
// sample input shipped in testdata/, including the quartic §IV.B limit
// case.
func TestRunRepositoryTestdata(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.c")
	if err != nil || len(files) < 4 {
		t.Fatalf("testdata inputs: %v (err %v)", files, err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			o := base(f)
			o.check = 6
			if _, err := capture(t, func() error { return run(o) }); err != nil {
				t.Errorf("%s: %v", f, err)
			}
		})
	}
}

func TestRunStatsSchedAuto(t *testing.T) {
	o := base(writeInput(t))
	o.stats = true
	o.sched = "auto"
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"schedule auto ->",
		"autotune decision: schedule",
		"predicted makespan",
		"actual",
		"load imbalance:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("auto stats output missing %q:\n%s", frag, out)
		}
	}
}
