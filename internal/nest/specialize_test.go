package nest

import (
	"fmt"
	"testing"
)

// TestBoundShapeSpecialization checks the compile-time classifier: every
// Fig. 5 kernel shape (constant, i_q + c, a·i_q + c) gets a specialized
// evaluator, multi-term bounds fall back to the generic loop, and both
// paths agree on every evaluation.
func TestBoundShapeSpecialization(t *testing.T) {
	cases := []struct {
		name     string
		n        *Nest
		params   map[string]int64
		wantSpec int // specialized bounds out of 2·depth
	}{
		{"rect", MustNew([]string{"N"}, L("i", "0", "N"), L("j", "0", "N")),
			map[string]int64{"N": 7}, 4},
		{"tri", MustNew([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N")),
			map[string]int64{"N": 7}, 4},
		{"skew", MustNew([]string{"N"}, L("i", "0", "N"), L("j", "2*i", "2*i+3")),
			map[string]int64{"N": 7}, 4},
		{"two-term", MustNew([]string{"N"},
			L("i", "0", "N"), L("j", "0", "N"), L("k", "i+j", "2*N+2")),
			map[string]int64{"N": 5}, 5}, // i+j lower bound stays generic
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := tc.n.Bind(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			spec, total := inst.SpecializedBounds()
			if total != 2*tc.n.Depth() {
				t.Fatalf("total bounds %d, want %d", total, 2*tc.n.Depth())
			}
			if spec != tc.wantSpec {
				t.Errorf("specialized %d/%d bounds, want %d", spec, total, tc.wantSpec)
			}
			// The generic evaluator must agree with the specialized one at
			// every point of the space (and fused BoundsAt with both).
			generic, err := tc.n.Bind(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			generic.forceGenericBounds()
			if s, _ := generic.SpecializedBounds(); s != 0 {
				t.Fatalf("forceGenericBounds left %d specialized bounds", s)
			}
			inst.Enumerate(func(idx []int64) bool {
				for k := 0; k < inst.Depth(); k++ {
					lo, hi := inst.BoundsAt(k, idx)
					if lo != inst.LowerAt(k, idx) || hi != inst.UpperAt(k, idx) {
						t.Fatalf("BoundsAt(%d, %v) = (%d,%d) disagrees with LowerAt/UpperAt",
							k, idx, lo, hi)
					}
					if glo, ghi := generic.BoundsAt(k, idx); glo != lo || ghi != hi {
						t.Fatalf("generic bounds (%d,%d) != specialized (%d,%d) at level %d, %v",
							glo, ghi, lo, hi, k, idx)
					}
				}
				return true
			})
			if gc, sc := generic.Count(), inst.Count(); gc != sc {
				t.Fatalf("generic count %d != specialized count %d", gc, sc)
			}
		})
	}
}

// TestNextRunCoversSpace replays every nest as (prefix, run) batches and
// checks the concatenation equals plain enumeration.
func TestNextRunCoversSpace(t *testing.T) {
	nests := []*Nest{
		MustNew([]string{"N"}, L("i", "0", "N"), L("j", "i", "N")),
		MustNew([]string{"N"}, L("i", "0", "N-1"), L("j", "0", "i+1"), L("k", "j", "i+1")),
		MustNew([]string{"N"}, L("i", "2", "N")),
	}
	for _, n := range nests {
		inst, err := n.Bind(map[string]int64{"N": 8})
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		inst.Enumerate(func(idx []int64) bool {
			want = append(want, fmt.Sprint(idx))
			return true
		})
		var got []string
		idx := make([]int64, inst.Depth())
		last := inst.Depth() - 1
		if inst.First(idx) {
			for {
				hi := inst.UpperAt(last, idx)
				for i := idx[last]; i < hi; i++ {
					idx[last] = i
					got = append(got, fmt.Sprint(idx))
				}
				if !inst.NextRun(idx) {
					break
				}
			}
		}
		if len(want) != len(got) {
			t.Fatalf("%s: runs cover %d tuples, enumeration %d", n, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: tuple %d = %s, want %s", n, i, got[i], want[i])
			}
		}
	}
}

// TestParamAccessors checks the non-allocating parameter accessors
// against the copying Params map.
func TestParamAccessors(t *testing.T) {
	n := MustNew([]string{"N", "M"}, L("i", "0", "N"), L("j", "0", "M"))
	inst, err := n.Bind(map[string]int64{"N": 4, "M": 9})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumParams() != 2 {
		t.Errorf("NumParams = %d, want 2", inst.NumParams())
	}
	for name, want := range inst.Params() {
		got, ok := inst.ParamValue(name)
		if !ok || got != want {
			t.Errorf("ParamValue(%q) = %d,%v; want %d,true", name, got, ok, want)
		}
	}
	if _, ok := inst.ParamValue("nope"); ok {
		t.Error("ParamValue of unknown name reported ok")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if v, _ := inst.ParamValue("N"); v != 4 {
			t.Fatal("wrong value")
		}
	}); allocs != 0 {
		t.Errorf("ParamValue allocates %v per call, want 0", allocs)
	}
}

// TestEnumerateScratchReuse checks the scratch-accepting enumeration
// matches Enumerate and does not allocate.
func TestEnumerateScratchReuse(t *testing.T) {
	n := MustNew([]string{"N"}, L("i", "0", "N"), L("j", "i", "N"))
	inst, err := n.Bind(map[string]int64{"N": 12})
	if err != nil {
		t.Fatal(err)
	}
	want := inst.Count()
	idx := make([]int64, inst.Depth())
	var got int64
	if allocs := testing.AllocsPerRun(10, func() {
		got = 0
		inst.EnumerateScratch(idx, func([]int64) bool { got++; return true })
	}); allocs != 0 {
		t.Errorf("EnumerateScratch allocates %v per run, want 0", allocs)
	}
	if got != want {
		t.Errorf("EnumerateScratch visited %d tuples, want %d", got, want)
	}
}
