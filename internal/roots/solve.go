package roots

import (
	"fmt"
	"math/big"

	"repro/internal/faults"
	"repro/internal/poly"
)

// Solve returns the symbolic roots of the univariate polynomial equation
//
//	coeffs[0] + coeffs[1]·x + … + coeffs[d]·x^d = 0
//
// whose coefficients are multivariate polynomials in parameters and other
// (already recovered) indices. The degree d = len(coeffs)-1 must be
// between 1 and 4 after trimming zero leading coefficients (paper §IV.B:
// only equations of degree at most 4 are solvable by radicals).
//
// The returned expressions use the principal branches of complex sqrt and
// cbrt; evaluating a root may pass through complex intermediates even
// when the value is real (paper §IV.C). The k-th returned root
// corresponds to a fixed branch choice, so the "convenient" root selected
// at tool time keeps its index at run time (paper §IV.D).
func Solve(coeffs []*poly.Poly) ([]Expr, error) {
	// Trim zero high-order coefficients.
	d := len(coeffs) - 1
	for d > 0 && coeffs[d].IsZero() {
		d--
	}
	switch d {
	case 1:
		return solveLinear(coeffs[0], coeffs[1]), nil
	case 2:
		return solveQuadratic(coeffs[0], coeffs[1], coeffs[2]), nil
	case 3:
		return solveCubic(coeffs[0], coeffs[1], coeffs[2], coeffs[3]), nil
	case 4:
		return solveQuartic(coeffs[0], coeffs[1], coeffs[2], coeffs[3], coeffs[4]), nil
	case 0:
		return nil, fmt.Errorf("roots: equation of degree 0 has no roots")
	default:
		return nil, fmt.Errorf("roots: degree %d not solvable by radicals: %w", d, faults.ErrDegreeTooHigh)
	}
}

func half() *big.Rat { return big.NewRat(1, 2) }

// mulConst multiplies an expression by a rational constant, folding the
// ±1 cases for readable output.
func mulConst(e Expr, c *big.Rat) Expr {
	one := big.NewRat(1, 1)
	switch {
	case c.Cmp(one) == 0:
		return e
	case new(big.Rat).Neg(c).Cmp(one) == 0:
		return Neg{A: e}
	case c.Sign() < 0:
		return Neg{A: Mul{A: e, B: Num{Val: new(big.Rat).Abs(c)}}}
	default:
		return Mul{A: e, B: Num{Val: new(big.Rat).Set(c)}}
	}
}

// solveLinear: a1·x + a0 = 0  →  x = -a0/a1.
func solveLinear(a0, a1 *poly.Poly) []Expr {
	if a1.IsConst() {
		// Fold the division into the polynomial for a cleaner formula.
		inv := new(big.Rat).Inv(a1.ConstValue())
		return []Expr{P(a0.Neg().Scale(inv))}
	}
	return []Expr{Div{A: P(a0.Neg()), B: P(a1)}}
}

// solveQuadratic: a·x² + b·x + c = 0 →  x = (-b ± sqrt(b²-4ac)) / (2a).
// Roots are ordered [-, +] on the sign of the radical.
func solveQuadratic(c, b, a *poly.Poly) []Expr {
	disc := b.Mul(b).Sub(a.Mul(c).ScaleInt(4)) // b² - 4ac, a polynomial
	twoA := a.ScaleInt(2)
	mk := func(plus bool) Expr {
		var num Expr
		if plus {
			num = Add{A: P(b.Neg()), B: Sqrt(P(disc))}
		} else {
			num = Sub{A: P(b.Neg()), B: Sqrt(P(disc))}
		}
		if twoA.IsConst() {
			return mulConst(num, new(big.Rat).Inv(twoA.ConstValue()))
		}
		return Div{A: num, B: P(twoA)}
	}
	return []Expr{mk(false), mk(true)}
}

// xi returns the primitive cube root of unity ξ = (-1 + sqrt(-3))/2 as an
// expression, and its square for k=2. k must be 0, 1 or 2.
func xi(k int) Expr {
	switch k {
	case 0:
		return NumInt(1)
	case 1:
		return Mul{A: Add{A: NumInt(-1), B: Sqrt(P(poly.Int(-3)))}, B: Num{Val: half()}}
	case 2:
		return Mul{A: Sub{A: NumInt(-1), B: Sqrt(P(poly.Int(-3)))}, B: Num{Val: half()}}
	}
	panic("roots: bad cube-root-of-unity index")
}

// mulUnity multiplies e by ξ^k, folding the k = 0 case.
func mulUnity(k int, e Expr) Expr {
	if k == 0 {
		return e
	}
	return Mul{A: xi(k), B: e}
}

// solveCubic implements Cardano's method in its general complex form:
// for a·x³ + b·x² + c·x + d = 0,
//
//	Δ0 = b² - 3ac
//	Δ1 = 2b³ - 9abc + 27a²d
//	C  = cbrt((Δ1 + sqrt(Δ1² - 4Δ0³)) / 2)
//	x_k = -(b + ξ^k·C + Δ0/(ξ^k·C)) / (3a),  k = 0,1,2
//
// The k-th root uses a fixed branch, so root identity is stable in pc
// (paper §IV.D). When C evaluates to 0 (triple root), the division yields
// NaN; callers fall back to exact search.
func solveCubic(d, c, b, a *poly.Poly) []Expr {
	delta0 := b.Mul(b).Sub(a.Mul(c).ScaleInt(3))
	delta1 := b.Mul(b).Mul(b).ScaleInt(2).
		Sub(a.Mul(b).Mul(c).ScaleInt(9)).
		Add(a.Mul(a).Mul(d).ScaleInt(27))
	threeA := a.ScaleInt(3)
	finish := func(num Expr) Expr {
		if threeA.IsConst() {
			return Neg{A: mulConst(num, new(big.Rat).Inv(threeA.ConstValue()))}
		}
		return Neg{A: Div{A: num, B: P(threeA)}}
	}
	if delta0.IsZero() {
		// Degenerate case Δ0 ≡ 0 (e.g. depressed cubics x³ = t): the
		// general formula would divide by C, which vanishes on one
		// branch; here C = cbrt(Δ1) and x_k = -(b + ξ^k·C)/(3a).
		C := Cbrt(P(delta1))
		out := make([]Expr, 3)
		for k := 0; k < 3; k++ {
			out[k] = finish(Add{A: P(b), B: mulUnity(k, C)})
		}
		return out
	}
	inner := delta1.Mul(delta1).Sub(delta0.PowInt(3).ScaleInt(4)) // Δ1² - 4Δ0³
	C := Cbrt(Mul{
		A: Add{A: P(delta1), B: Sqrt(P(inner))},
		B: Num{Val: half()},
	})
	out := make([]Expr, 3)
	for k := 0; k < 3; k++ {
		xkC := mulUnity(k, C)
		out[k] = finish(Add{A: P(b), B: Add{A: xkC, B: Div{A: P(delta0), B: xkC}}})
	}
	return out
}

// solveQuartic implements Ferrari's method via the resolvent cubic:
// for a·x⁴ + b·x³ + c·x² + d·x + e = 0,
//
//	p  = (8ac - 3b²) / (8a²)
//	q  = (b³ - 4abc + 8a²d) / (8a³)
//	Δ0 = c² - 3bd + 12ae
//	Δ1 = 2c³ - 9bcd + 27b²e + 27ad² - 72ace
//	Q  = cbrt((Δ1 + sqrt(Δ1² - 4Δ0³)) / 2)
//	S  = (1/2)·sqrt(-2p/3 + (Q + Δ0/Q) / (3a))
//	x  = -b/(4a) + s1·S + s2·(1/2)·sqrt(-4S² - 2p - s1·q/S)
//
// with the four sign patterns (s1, s2) ∈ {(-,-), (-,+), (+,-), (+,+)}.
func solveQuartic(e, d, c, b, a *poly.Poly) []Expr {
	a2 := a.Mul(a)
	a3 := a2.Mul(a)
	pNum := a.Mul(c).ScaleInt(8).Sub(b.Mul(b).ScaleInt(3))
	qNum := b.Mul(b).Mul(b).
		Sub(a.Mul(b).Mul(c).ScaleInt(4)).
		Add(a2.Mul(d).ScaleInt(8))
	var pE, qE Expr
	if a.IsConst() {
		pE = P(pNum.Scale(new(big.Rat).Inv(a2.ScaleInt(8).ConstValue())))
		qE = P(qNum.Scale(new(big.Rat).Inv(a3.ScaleInt(8).ConstValue())))
	} else {
		pE = Div{A: P(pNum), B: P(a2.ScaleInt(8))}
		qE = Div{A: P(qNum), B: P(a3.ScaleInt(8))}
	}
	if qNum.IsZero() {
		// Biquadratic case: the depressed quartic t⁴ + p·t² + r = 0 (with
		// x = t - b/(4a)) is quadratic in t². Ferrari's S would be the
		// zero resolvent root here, making q/S ill-defined, so solve
		// directly: t = s1·sqrt((-p + s2·sqrt(p² - 4r)) / 2).
		rNum := b.PowInt(4).ScaleInt(-3).
			Add(a3.Mul(e).ScaleInt(256)).
			Sub(a2.Mul(b).Mul(d).ScaleInt(64)).
			Add(a.Mul(b).Mul(b).Mul(c).ScaleInt(16))
		var rE Expr
		if a.IsConst() {
			rE = P(rNum.Scale(new(big.Rat).Inv(a2.Mul(a2).ScaleInt(256).ConstValue())))
		} else {
			rE = Div{A: P(rNum), B: P(a2.Mul(a2).ScaleInt(256))}
		}
		var shift Expr
		if a.IsConst() {
			shift = P(b.Neg().Scale(new(big.Rat).Inv(a.ScaleInt(4).ConstValue())))
		} else {
			shift = Div{A: P(b.Neg()), B: P(a.ScaleInt(4))}
		}
		discE := Sub{A: Mul{A: pE, B: pE}, B: Mul{A: NumInt(4), B: rE}}
		out := make([]Expr, 0, 4)
		for _, s2 := range []int{-1, +1} {
			var inner Expr
			if s2 > 0 {
				inner = Add{A: Neg{A: pE}, B: Sqrt(discE)}
			} else {
				inner = Sub{A: Neg{A: pE}, B: Sqrt(discE)}
			}
			tAbs := Sqrt(Mul{A: Num{Val: half()}, B: inner})
			for _, s1 := range []int{-1, +1} {
				var tTerm Expr = tAbs
				if s1 < 0 {
					tTerm = Neg{A: tAbs}
				}
				out = append(out, Add{A: shift, B: tTerm})
			}
		}
		return out
	}
	delta0 := c.Mul(c).Sub(b.Mul(d).ScaleInt(3)).Add(a.Mul(e).ScaleInt(12))
	delta1 := c.PowInt(3).ScaleInt(2).
		Sub(b.Mul(c).Mul(d).ScaleInt(9)).
		Add(b.Mul(b).Mul(e).ScaleInt(27)).
		Add(a.Mul(d).Mul(d).ScaleInt(27)).
		Sub(a.Mul(c).Mul(e).ScaleInt(72))
	inner := delta1.Mul(delta1).Sub(delta0.PowInt(3).ScaleInt(4))
	Q := Cbrt(Mul{A: Add{A: P(delta1), B: Sqrt(P(inner))}, B: Num{Val: half()}})
	var qPlus Expr = Div{A: Add{A: Q, B: Div{A: P(delta0), B: Q}}, B: P(a.ScaleInt(3))}
	S := Mul{
		A: Num{Val: half()},
		B: Sqrt(Add{
			A: Mul{A: NumRat(-2, 3), B: pE},
			B: qPlus,
		}),
	}
	var minusB4a Expr
	if a.IsConst() {
		minusB4a = P(b.Neg().Scale(new(big.Rat).Inv(a.ScaleInt(4).ConstValue())))
	} else {
		minusB4a = Div{A: P(b.Neg()), B: P(a.ScaleInt(4))}
	}
	root := func(s1, s2 int) Expr {
		// inner radical: -4S² - 2p - s1·q/S
		fourS2 := Mul{A: NumInt(4), B: Mul{A: S, B: S}}
		qOverS := Div{A: qE, B: S}
		var tail Expr
		if s1 > 0 {
			tail = Sub{A: Neg{A: Add{A: fourS2, B: Mul{A: NumInt(2), B: pE}}}, B: qOverS}
		} else {
			tail = Add{A: Neg{A: Add{A: fourS2, B: Mul{A: NumInt(2), B: pE}}}, B: qOverS}
		}
		rad := Mul{A: Num{Val: half()}, B: Sqrt(tail)}
		var sTerm Expr = S
		if s1 < 0 {
			sTerm = Neg{A: S}
		}
		var last Expr = rad
		if s2 < 0 {
			last = Neg{A: rad}
		}
		return Add{A: Add{A: minusB4a, B: sTerm}, B: last}
	}
	return []Expr{root(-1, -1), root(-1, +1), root(+1, -1), root(+1, +1)}
}
