// Package cparse is the front end of the source-to-source tool (§VII):
// it parses C fragments in which a non-rectangular loop nest is
// annotated with an OpenMP pragma carrying a collapse clause,
//
//	#pragma omp parallel for collapse(2) schedule(static)
//	for (i = 0; i < N - 1; i++)
//	  for (j = i + 1; j < N; j++) {
//	    ... body ...
//	  }
//
// and produces the nest model (the collapse-count outermost loops, with
// affine bounds over the free parameters) plus the raw body text. The
// supported loop-header grammar matches the Fig. 5 model:
//
//	for ( ident = affine ; ident < affine ; ident++ )
//
// with <= accepted as bound comparator (normalised to < by adding 1) and
// `ident += 1`/`++ident` accepted as increment.
package cparse

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/nest"
	"repro/internal/poly"
)

// Program is a parsed annotated loop nest.
type Program struct {
	// CollapseCount is the collapse(...) clause argument.
	CollapseCount int
	// Schedule is the schedule clause body ("static", "dynamic", ...);
	// empty when absent.
	Schedule string
	// Nest contains the CollapseCount outermost loops; free identifiers
	// of the bounds are its parameters (sorted).
	Nest *nest.Nest
	// Body is the raw C text nested inside the collapsed loops (which may
	// itself contain further loops and statements).
	Body string
}

var (
	pragmaRe   = regexp.MustCompile(`#pragma\s+omp\s+[^\n]*`)
	collapseRe = regexp.MustCompile(`collapse\s*\(\s*(\d+)\s*\)`)
	scheduleRe = regexp.MustCompile(`schedule\s*\(\s*([^)]*?)\s*\)`)
)

// SyntaxError is a parse failure located in the source text (1-based
// line and column), so tools can point at the offending construct
// instead of reporting a byte offset.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// lineCol converts a byte offset into 1-based line and column.
func lineCol(src string, pos int) (line, col int) {
	if pos > len(src) {
		pos = len(src)
	}
	line = 1 + strings.Count(src[:pos], "\n")
	nl := strings.LastIndexByte(src[:pos], '\n')
	return line, pos - nl
}

// errAt builds a *SyntaxError at the given byte offset.
func (s *scanner) errAt(pos int, format string, args ...any) error {
	line, col := lineCol(s.src, pos)
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses the first OpenMP-annotated loop nest in src.
func Parse(src string) (*Program, error) {
	loc := pragmaRe.FindStringIndex(src)
	if loc == nil {
		return nil, fmt.Errorf("cparse: no '#pragma omp' directive found")
	}
	pragma := src[loc[0]:loc[1]]
	m := collapseRe.FindStringSubmatch(pragma)
	if m == nil {
		return nil, fmt.Errorf("cparse: pragma has no collapse clause: %s", strings.TrimSpace(pragma))
	}
	c, err := strconv.Atoi(m[1])
	if err != nil || c < 1 {
		return nil, fmt.Errorf("cparse: bad collapse count %q", m[1])
	}
	prog := &Program{CollapseCount: c}
	if sm := scheduleRe.FindStringSubmatch(pragma); sm != nil {
		prog.Schedule = strings.TrimSpace(sm[1])
	}

	s := &scanner{src: src, pos: loc[1]}
	var loops []nest.Loop
	openBraces := 0
	for k := 0; k < c; k++ {
		s.skipSpace()
		for s.peekByte() == '{' {
			s.pos++
			openBraces++
			s.skipSpace()
		}
		loop, err := s.parseForHeader()
		if err != nil {
			return nil, fmt.Errorf("cparse: loop %d: %w", k+1, err)
		}
		loops = append(loops, loop)
	}

	body, err := s.captureBody()
	if err != nil {
		return nil, err
	}
	// Consume the closers of braces opened between headers.
	for b := 0; b < openBraces; b++ {
		s.skipSpace()
		if s.peekByte() != '}' {
			return nil, fmt.Errorf("cparse: unbalanced braces around the loop nest")
		}
		s.pos++
	}
	prog.Body = strings.TrimSpace(body)

	// Free identifiers of the bounds (minus loop indices) are parameters.
	indexSet := map[string]bool{}
	for _, l := range loops {
		indexSet[l.Index] = true
	}
	paramSet := map[string]bool{}
	for _, l := range loops {
		for _, v := range append(l.Lower.Vars(), l.Upper.Vars()...) {
			if !indexSet[v] {
				paramSet[v] = true
			}
		}
	}
	params := make([]string, 0, len(paramSet))
	for p := range paramSet {
		params = append(params, p)
	}
	sort.Strings(params)
	n, err := nest.New(params, loops...)
	if err != nil {
		return nil, fmt.Errorf("cparse: %w", err)
	}
	prog.Nest = n
	return prog, nil
}

type scanner struct {
	src string
	pos int
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) {
		ch := s.src[s.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			s.pos++
			continue
		}
		// Skip // and /* */ comments.
		if ch == '/' && s.pos+1 < len(s.src) {
			if s.src[s.pos+1] == '/' {
				for s.pos < len(s.src) && s.src[s.pos] != '\n' {
					s.pos++
				}
				continue
			}
			if s.src[s.pos+1] == '*' {
				end := strings.Index(s.src[s.pos+2:], "*/")
				if end < 0 {
					s.pos = len(s.src)
					return
				}
				s.pos += 2 + end + 2
				continue
			}
		}
		return
	}
}

func (s *scanner) peekByte() byte {
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) expect(word string) error {
	s.skipSpace()
	if !strings.HasPrefix(s.src[s.pos:], word) {
		return s.errAt(s.pos, "expected %q (found %q)", word, snippet(s.src, s.pos))
	}
	s.pos += len(word)
	return nil
}

func snippet(src string, pos int) string {
	end := pos + 20
	if end > len(src) {
		end = len(src)
	}
	return src[pos:end]
}

func (s *scanner) ident() (string, error) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) && isIdentByte(s.src[s.pos], s.pos == start) {
		s.pos++
	}
	if s.pos == start {
		return "", s.errAt(start, "expected identifier (found %q)", snippet(s.src, start))
	}
	return s.src[start:s.pos], nil
}

func isIdentByte(ch byte, first bool) bool {
	if ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') {
		return true
	}
	return !first && ch >= '0' && ch <= '9'
}

// until scans forward to the next top-level occurrence of stop (one of
// ";<)") at paren depth 0 and returns the intervening text.
func (s *scanner) until(stops string) (string, byte, error) {
	start := s.pos
	depth := 0
	for s.pos < len(s.src) {
		ch := s.src[s.pos]
		switch {
		case ch == '(':
			depth++
		case ch == ')' && depth > 0:
			depth--
		case depth == 0 && strings.IndexByte(stops, ch) >= 0:
			return s.src[start:s.pos], ch, nil
		}
		s.pos++
	}
	return "", 0, s.errAt(start, "unterminated expression")
}

// parseForHeader parses: for ( i = lo ; i < hi ; i++ ).
func (s *scanner) parseForHeader() (nest.Loop, error) {
	var loop nest.Loop
	if err := s.expect("for"); err != nil {
		return loop, err
	}
	if err := s.expect("("); err != nil {
		return loop, err
	}
	idx, err := s.ident()
	if err != nil {
		return loop, err
	}
	if err := s.expect("="); err != nil {
		return loop, err
	}
	loSrc, _, err := s.until(";")
	if err != nil {
		return loop, err
	}
	s.pos++ // ';'
	idx2, err := s.ident()
	if err != nil {
		return loop, err
	}
	if idx2 != idx {
		return loop, fmt.Errorf("condition tests %q, loop variable is %q", idx2, idx)
	}
	s.skipSpace()
	if s.peekByte() != '<' {
		return loop, s.errAt(s.pos, "only '<' and '<=' conditions are supported (found %q)", snippet(s.src, s.pos))
	}
	s.pos++
	le := false
	if s.peekByte() == '=' {
		le = true
		s.pos++
	}
	hiSrc, _, err := s.until(";")
	if err != nil {
		return loop, err
	}
	s.pos++ // ';'
	if err := s.parseIncrement(idx); err != nil {
		return loop, err
	}
	if err := s.expect(")"); err != nil {
		return loop, err
	}
	lo, err := poly.Parse(loSrc)
	if err != nil {
		return loop, fmt.Errorf("lower bound %q: %w", strings.TrimSpace(loSrc), err)
	}
	hi, err := poly.Parse(hiSrc)
	if err != nil {
		return loop, fmt.Errorf("upper bound %q: %w", strings.TrimSpace(hiSrc), err)
	}
	if le {
		hi = hi.Add(poly.One())
	}
	return nest.Loop{Index: idx, Lower: lo, Upper: hi}, nil
}

// parseIncrement accepts i++, ++i, i += 1 and i = i + 1.
func (s *scanner) parseIncrement(idx string) error {
	s.skipSpace()
	rest := s.src[s.pos:]
	forms := []string{
		idx + "++", "++" + idx, idx + " ++",
		idx + "+=1", idx + " += 1", idx + " +=1", idx + "+= 1",
		idx + "=" + idx + "+1", idx + " = " + idx + " + 1",
	}
	for _, f := range forms {
		if strings.HasPrefix(rest, f) {
			s.pos += len(f)
			return nil
		}
	}
	return s.errAt(s.pos, "unsupported increment (found %q); unit stride required", snippet(s.src, s.pos))
}

// captureBody grabs the loop body: a braced block (returning its inner
// text) or a single statement terminated by ';'.
func (s *scanner) captureBody() (string, error) {
	s.skipSpace()
	if s.peekByte() == '{' {
		depth := 0
		start := s.pos + 1
		for s.pos < len(s.src) {
			switch s.src[s.pos] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					body := s.src[start:s.pos]
					s.pos++
					return body, nil
				}
			}
			s.pos++
		}
		return "", fmt.Errorf("cparse: unbalanced '{' in loop body")
	}
	// Single statement — possibly an entire (non-collapsed) inner loop.
	if strings.HasPrefix(s.src[s.pos:], "for") {
		return s.captureInnerFor()
	}
	stmt, _, err := s.until(";")
	if err != nil {
		return "", fmt.Errorf("cparse: %w", err)
	}
	s.pos++
	return stmt + ";", nil
}

// captureInnerFor captures a complete inner for statement (header plus
// its own body) as raw text.
func (s *scanner) captureInnerFor() (string, error) {
	start := s.pos
	if err := s.expect("for"); err != nil {
		return "", err
	}
	s.skipSpace()
	if s.peekByte() != '(' {
		return "", s.errAt(s.pos, "malformed inner for statement")
	}
	depth := 0
	for s.pos < len(s.src) {
		ch := s.src[s.pos]
		if ch == '(' {
			depth++
		} else if ch == ')' {
			depth--
			s.pos++
			if depth == 0 {
				break
			}
			continue
		}
		s.pos++
	}
	inner, err := s.captureBody()
	if err != nil {
		return "", err
	}
	_ = inner
	return s.src[start:s.pos], nil
}
