// Command collapsetool is the source-to-source transformer of the paper
// (§VII): it reads a C fragment in which a non-rectangular loop nest is
// annotated with "#pragma omp ... collapse(c)", computes the ranking
// Ehrhart polynomial of the c outermost loops, inverts it symbolically,
// and prints the collapsed program with the original indices recovered
// from the single loop counter pc.
//
// Usage:
//
//	collapsetool [flags] [file.c]        (stdin when no file is given)
//
// Flags:
//
//	-scheme per-iteration|first-iteration|chunked|simd|warp
//	        recovery scheme of the generated code (default first-iteration,
//	        the paper's §V cost-minimised form)
//	-chunk N   chunk size for the chunked scheme (default 64)
//	-vlength N vector length for the simd scheme (default 8)
//	-warp N    warp width for the warp scheme (default 32)
//	-go        also emit a runnable serial Go rendition
//	-report    print the analysis (ranking polynomial, total count,
//	           root candidates and the selected convenient root)
//	-check N   self-check the transformation for parameter value N
//	           (verifies rank/unrank bijection by enumeration)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/roots"
	"repro/internal/unrank"
)

func main() {
	scheme := flag.String("scheme", "first-iteration", "code scheme: per-iteration|first-iteration|chunked|simd|warp")
	chunk := flag.Int("chunk", 64, "chunk size for -scheme chunked")
	vlength := flag.Int("vlength", 8, "vector length for -scheme simd")
	warp := flag.Int("warp", 32, "warp width for -scheme warp")
	emitGo := flag.Bool("go", false, "also emit a serial Go rendition")
	report := flag.Bool("report", false, "print ranking polynomial, count and root analysis")
	check := flag.Int64("check", 0, "self-check the bijection for this parameter value")
	flag.Parse()

	if err := run(*scheme, *chunk, *vlength, *warp, *emitGo, *report, *check, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "collapsetool:", err)
		os.Exit(1)
	}
}

func run(schemeName string, chunk, vlength, warp int, emitGo, report bool, check int64, args []string) error {
	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one input file")
	}
	if err != nil {
		return err
	}

	prog, err := cparse.Parse(string(src))
	if err != nil {
		return err
	}
	res, err := core.Collapse(prog.Nest, prog.CollapseCount, unrank.Options{})
	if err != nil {
		return err
	}

	if report {
		fmt.Printf("parsed nest (collapse %d, schedule %q):\n%s\n",
			prog.CollapseCount, prog.Schedule, indent(prog.Nest.String(), "  "))
		fmt.Printf("ranking polynomial:\n  r(%s) = %s\n",
			strings.Join(prog.Nest.Indices(), ", "), res.Ranking)
		fmt.Printf("total iterations:\n  %s\n", res.Total)
		for k := 0; k < res.C-1; k++ {
			fmt.Printf("level %d (%s): %d symbolic root candidate(s); convenient root #%d:\n",
				k, prog.Nest.Loops[k].Index, len(res.Unranker.RootCandidates(k)), res.Unranker.RootIndex(k))
			fmt.Printf("  %s = floor(Re( %s ))\n",
				prog.Nest.Loops[k].Index, roots.String(res.Unranker.RootExpr(k)))
		}
		fmt.Println()
	}

	var sch codegen.Scheme
	switch schemeName {
	case "per-iteration":
		sch = codegen.PerIteration
	case "first-iteration":
		sch = codegen.FirstIteration
	case "chunked":
		sch = codegen.Chunked
	case "simd":
		sch = codegen.SIMD
	case "warp":
		sch = codegen.Warp
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	opts := codegen.Options{
		Scheme:   sch,
		Schedule: prog.Schedule,
		Chunk:    chunk,
		VLength:  vlength,
		Warp:     warp,
		Body:     prog.Body,
	}
	out, err := codegen.EmitC(res, opts)
	if err != nil {
		return err
	}
	fmt.Print(out)

	if emitGo {
		goOpts := opts
		if sch != codegen.PerIteration && sch != codegen.FirstIteration {
			goOpts.Scheme = codegen.FirstIteration
		}
		goOpts.Body = "" // Go emission calls body(idx...)
		fn, err := codegen.EmitGo(res, goOpts)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(codegen.GoFile("collapsed", fn))
	}

	if check > 0 {
		params := map[string]int64{}
		for _, p := range prog.Nest.Params {
			params[p] = check
		}
		b, err := res.Unranker.Bind(params)
		if err != nil {
			return err
		}
		idx := make([]int64, res.C)
		var pc int64
		okCount := int64(0)
		failed := false
		b.Instance().Enumerate(func(truth []int64) bool {
			pc++
			if err := b.Unrank(pc, idx); err != nil {
				fmt.Fprintf(os.Stderr, "check: Unrank(%d): %v\n", pc, err)
				failed = true
				return false
			}
			for q := range idx {
				if idx[q] != truth[q] {
					fmt.Fprintf(os.Stderr, "check: Unrank(%d) = %v, want %v\n", pc, idx, truth)
					failed = true
					return false
				}
			}
			okCount++
			return true
		})
		if failed {
			return fmt.Errorf("self-check failed")
		}
		fmt.Fprintf(os.Stderr, "self-check: %d/%d iterations recovered exactly (params=%d)\n",
			okCount, b.Total(), check)
	}
	return nil
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
