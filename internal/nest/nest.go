// Package nest models the class of loop nests handled by the collapsing
// technique (paper Fig. 5): perfectly nested loops
//
//	for (i1 = l1        ; i1 < u1        ; i1++)
//	  for (i2 = l2(i1)  ; i2 < u2(i1)    ; i2++)
//	    ...
//	      for (ic = lc(i1..ic-1) ; ic < uc(i1..ic-1) ; ic++)
//
// where every bound is an affine combination, with integer coefficients,
// of the surrounding iterators and of integer size parameters. Such
// bounds describe rectangular, triangular, tetrahedral, trapezoidal,
// rhomboidal and parallelepiped iteration spaces.
//
// The package provides validation of the model, binding of parameter
// values, lexicographic enumeration and incrementation of iteration
// tuples (the successor function used by the generated collapsed code),
// and the parametric lexicographic-minimum substitution chain that the
// paper obtains from ISL.
package nest

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/poly"
)

// Loop is one level of a nest. Bounds follow Fig. 5's half-open
// convention: Lower <= index < Upper.
type Loop struct {
	Index string
	Lower *poly.Poly
	Upper *poly.Poly
}

// L builds a Loop from bound expressions, panicking on parse errors.
// It is a convenience for table literals and tests:
//
//	nest.L("j", "i+1", "N")
func L(index, lower, upper string) Loop {
	return Loop{Index: index, Lower: poly.MustParse(lower), Upper: poly.MustParse(upper)}
}

// Nest is a perfect loop nest over integer parameters.
type Nest struct {
	Params []string
	Loops  []Loop
}

// New builds and validates a nest.
func New(params []string, loops ...Loop) (*Nest, error) {
	n := &Nest{Params: append([]string(nil), params...), Loops: append([]Loop(nil), loops...)}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustNew is New but panics on error.
func MustNew(params []string, loops ...Loop) *Nest {
	n, err := New(params, loops...)
	if err != nil {
		panic(err)
	}
	return n
}

// Depth returns the number of loops.
func (n *Nest) Depth() int { return len(n.Loops) }

// Indices returns the iterator names, outermost first.
func (n *Nest) Indices() []string {
	out := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		out[i] = l.Index
	}
	return out
}

// Validate checks the nest against the Fig. 5 model: non-empty, unique
// iterator and parameter names, and bounds that are affine in the
// enclosing iterators and parameters with integer coefficients, referring
// only to names in scope.
func (n *Nest) Validate() error {
	if len(n.Loops) == 0 {
		return fmt.Errorf("nest: empty nest")
	}
	seen := map[string]bool{}
	for _, p := range n.Params {
		if p == "" {
			return fmt.Errorf("nest: empty parameter name")
		}
		if seen[p] {
			return fmt.Errorf("nest: duplicate name %q", p)
		}
		seen[p] = true
	}
	inScope := map[string]bool{}
	for _, p := range n.Params {
		inScope[p] = true
	}
	for k, l := range n.Loops {
		if l.Index == "" {
			return fmt.Errorf("nest: loop %d has empty index name", k)
		}
		if seen[l.Index] {
			return fmt.Errorf("nest: duplicate name %q", l.Index)
		}
		seen[l.Index] = true
		for _, which := range []struct {
			name string
			p    *poly.Poly
		}{{"lower", l.Lower}, {"upper", l.Upper}} {
			if which.p == nil {
				return fmt.Errorf("nest: loop %q has nil %s bound", l.Index, which.name)
			}
			if err := checkAffine(which.p, inScope); err != nil {
				return fmt.Errorf("nest: loop %q %s bound %s: %w", l.Index, which.name, which.p, err)
			}
		}
		inScope[l.Index] = true
	}
	return nil
}

// checkAffine verifies p is an affine combination with integer
// coefficients of the variables in scope. Violations wrap
// faults.ErrNonAffine so callers can classify the applicability failure.
func checkAffine(p *poly.Poly, inScope map[string]bool) error {
	for _, v := range p.Vars() {
		if !inScope[v] {
			return fmt.Errorf("uses %q which is not a parameter or enclosing iterator: %w",
				v, faults.ErrNonAffine)
		}
	}
	if p.TotalDegree() > 1 {
		return fmt.Errorf("not affine (total degree %d): %w", p.TotalDegree(), faults.ErrNonAffine)
	}
	if d := p.CommonDenominator(); d.Int64() != 1 || !d.IsInt64() {
		return fmt.Errorf("has non-integer coefficients (denominator %s): %w",
			p.CommonDenominator(), faults.ErrNonAffine)
	}
	return nil
}

// LexMinTail returns, for each loop deeper than level k (0-based), a
// polynomial expressing that loop's lexicographic-minimum value as a
// function of iterators i_0..i_k and the parameters, obtained by
// transitively substituting lower bounds (the parametric lexmin of the
// paper, computed there with ISL; for the Fig. 5 model the substitution
// chain is exact). The map is keyed by iterator name.
func (n *Nest) LexMinTail(k int) map[string]*poly.Poly {
	subs := map[string]*poly.Poly{}
	for q := k + 1; q < len(n.Loops); q++ {
		lb := n.Loops[q].Lower.SubstAll(subs)
		subs[n.Loops[q].Index] = lb
	}
	return subs
}

// String renders the nest in Fig. 5 style.
func (n *Nest) String() string {
	var b strings.Builder
	if len(n.Params) > 0 {
		fmt.Fprintf(&b, "params %s\n", strings.Join(n.Params, ", "))
	}
	for k, l := range n.Loops {
		b.WriteString(strings.Repeat("  ", k))
		fmt.Fprintf(&b, "for (%s = %s ; %s < %s ; %s++)\n", l.Index, l.Lower, l.Index, l.Upper, l.Index)
	}
	return b.String()
}

// affineFn is a loop bound with the parameter contribution folded into
// the constant at Bind time, leaving only iterator terms. Evaluating a
// bound during lexicographic incrementation is then a handful of integer
// operations — the same cost class as the inline increments of the
// paper's generated C code (§V), which matters because incrementation
// runs once per collapsed iteration.
//
// Bounds are shape-classified at compile time: the Fig. 5 shapes used by
// every kernel in internal/kernels (and the triangular/shifted stress
// generator) only ever produce bounds of the forms c, i_q + c and
// a·i_q + c, which evaluate without the generic term loop. Anything else
// falls back to the loop.
type affineFn struct {
	kind  affKind
	c0    int64
	coeff int64 // affSingle: the coefficient a of a·i_q + c
	level int   // affUnit/affSingle: the tuple slot q of i_q
	terms []affTerm
}

// affKind classifies a compiled bound by shape.
type affKind uint8

const (
	affConst   affKind = iota // c
	affUnit                   // i_q + c (coefficient 1, by far the common case)
	affSingle                 // a·i_q + c
	affGeneric                // anything else: generic term loop
)

type affTerm struct {
	level int // index into the iteration tuple
	coeff int64
}

func (f *affineFn) eval(idx []int64) int64 {
	switch f.kind {
	case affConst:
		return f.c0
	case affUnit:
		return idx[f.level] + f.c0
	case affSingle:
		return f.coeff*idx[f.level] + f.c0
	}
	v := f.c0
	for _, t := range f.terms {
		v += t.coeff * idx[t.level]
	}
	return v
}

// specialize assigns the shape class after the terms are collected.
func (f *affineFn) specialize() {
	switch {
	case len(f.terms) == 0:
		f.kind = affConst
	case len(f.terms) == 1 && f.terms[0].coeff == 1:
		f.kind = affUnit
		f.level = f.terms[0].level
	case len(f.terms) == 1:
		f.kind = affSingle
		f.level = f.terms[0].level
		f.coeff = f.terms[0].coeff
	default:
		f.kind = affGeneric
	}
}

// compileAffine folds params into the constant term of an affine bound
// and shape-specializes the evaluator.
func compileAffine(p *poly.Poly, params map[string]int64, levelOf map[string]int) (*affineFn, error) {
	f := &affineFn{}
	for _, t := range p.Terms() {
		c, ok := t.Coeff.Num(), t.Coeff.IsInt()
		if !ok || !c.IsInt64() {
			return nil, fmt.Errorf("nest: non-integer coefficient %s in bound %s", t.Coeff, p)
		}
		coeff := c.Int64()
		switch len(t.Vars) {
		case 0:
			f.c0 += coeff
		case 1:
			v := t.Vars[0]
			if v.Pow != 1 {
				return nil, fmt.Errorf("nest: non-affine bound %s", p)
			}
			if pv, isParam := params[v.Name]; isParam {
				f.c0 += coeff * pv
			} else if lvl, isIter := levelOf[v.Name]; isIter {
				f.terms = append(f.terms, affTerm{level: lvl, coeff: coeff})
			} else {
				return nil, fmt.Errorf("nest: unknown variable %q in bound %s", v.Name, p)
			}
		default:
			return nil, fmt.Errorf("nest: non-affine bound %s", p)
		}
	}
	f.specialize()
	return f, nil
}

// Instance is a nest bound to concrete parameter values, ready for
// enumeration and incrementation. Bounds are compiled to affine
// evaluators with parameters folded in.
type Instance struct {
	nest   *Nest
	np     int // number of parameters
	lower  []*affineFn
	upper  []*affineFn
	params map[string]int64
}

// Bind fixes the parameter values of the nest. All declared parameters
// must be given; extraneous names are rejected.
func (n *Nest) Bind(params map[string]int64) (*Instance, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(params) != len(n.Params) {
		return nil, fmt.Errorf("nest: got %d parameter values, want %d", len(params), len(n.Params))
	}
	inst := &Instance{
		nest:   n,
		np:     len(n.Params),
		params: make(map[string]int64, len(params)),
	}
	for _, p := range n.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("nest: missing value for parameter %q", p)
		}
		inst.params[p] = v
	}
	levelOf := make(map[string]int, n.Depth())
	for q, name := range n.Indices() {
		levelOf[name] = q
	}
	for _, l := range n.Loops {
		lo, err := compileAffine(l.Lower, inst.params, levelOf)
		if err != nil {
			return nil, err
		}
		hi, err := compileAffine(l.Upper, inst.params, levelOf)
		if err != nil {
			return nil, err
		}
		inst.lower = append(inst.lower, lo)
		inst.upper = append(inst.upper, hi)
	}
	return inst, nil
}

// MustBind is Bind but panics on error.
func (n *Nest) MustBind(params map[string]int64) *Instance {
	inst, err := n.Bind(params)
	if err != nil {
		panic(err)
	}
	return inst
}

// Nest returns the underlying nest.
func (inst *Instance) Nest() *Nest { return inst.nest }

// Params returns a copy of the bound parameter values. Hot callers that
// only need a lookup should use ParamValue, which does not allocate.
func (inst *Instance) Params() map[string]int64 {
	out := make(map[string]int64, len(inst.params))
	for k, v := range inst.params {
		out[k] = v
	}
	return out
}

// ParamValue returns the bound value of one parameter without copying
// the whole map (the read-only accessor for hot callers).
func (inst *Instance) ParamValue(name string) (int64, bool) {
	v, ok := inst.params[name]
	return v, ok
}

// NumParams returns the number of bound parameters.
func (inst *Instance) NumParams() int { return inst.np }

// Depth returns the nest depth.
func (inst *Instance) Depth() int { return len(inst.lower) }

// LowerAt evaluates the lower bound of level k (0-based) given the outer
// indices idx[0..k); only those slots of idx are read.
func (inst *Instance) LowerAt(k int, idx []int64) int64 {
	return inst.lower[k].eval(idx)
}

// UpperAt evaluates the (exclusive) upper bound of level k given the
// outer indices idx[0..k).
func (inst *Instance) UpperAt(k int, idx []int64) int64 {
	return inst.upper[k].eval(idx)
}

// BoundsAt evaluates the fused (lower, upper) bound pair of level k
// given the outer indices idx[0..k) — one call instead of two on the
// range-batched hot path, where both bounds are always needed together.
func (inst *Instance) BoundsAt(k int, idx []int64) (lo, hi int64) {
	return inst.lower[k].eval(idx), inst.upper[k].eval(idx)
}

// SpecializedBounds reports how many of the instance's 2·depth compiled
// bounds evaluate through a shape-specialized fast path (constant,
// i_q + c, or a·i_q + c) rather than the generic term loop. Exposed for
// tests and the overhead benchmarks.
func (inst *Instance) SpecializedBounds() (specialized, total int) {
	for _, fns := range [2][]*affineFn{inst.lower, inst.upper} {
		for _, f := range fns {
			total++
			if f.kind != affGeneric {
				specialized++
			}
		}
	}
	return specialized, total
}

// forceGenericBounds downgrades every compiled bound to the generic
// term-loop evaluator. Benchmark-only: it quantifies what the shape
// specializer buys.
func (inst *Instance) forceGenericBounds() {
	// specialize() classifies without discarding the term list, so the
	// generic evaluator remains exact for every shape.
	for _, fns := range [2][]*affineFn{inst.lower, inst.upper} {
		for _, f := range fns {
			f.kind = affGeneric
		}
	}
}

// First writes the lexicographically first iteration tuple into idx and
// reports whether the iteration space is non-empty. idx must have length
// Depth().
func (inst *Instance) First(idx []int64) bool {
	return inst.fill(idx, 0)
}

// fill sets levels q.. to their first valid values given idx[0..q).
func (inst *Instance) fill(idx []int64, q int) bool {
	if q == inst.Depth() {
		return true
	}
	idx[q] = inst.LowerAt(q, idx) - 1
	return inst.advance(idx, q)
}

// advance increments idx[k] until a complete valid suffix exists, or the
// level is exhausted.
func (inst *Instance) advance(idx []int64, k int) bool {
	for {
		idx[k]++
		if idx[k] >= inst.UpperAt(k, idx) {
			return false
		}
		if inst.fill(idx, k+1) {
			return true
		}
	}
}

// Increment advances idx to the lexicographic successor iteration,
// reporting false when the space is exhausted. This mirrors the
// "Incrementation(Indices)" step of the generated collapsed code (§V).
func (inst *Instance) Increment(idx []int64) bool {
	for k := inst.Depth() - 1; k >= 0; k-- {
		if inst.advance(idx, k) {
			return true
		}
	}
	return false
}

// NextRun carries idx past the current innermost run: it advances the
// outer prefix idx[0..d-2] to the lexicographically next prefix whose
// innermost loop is non-empty and sets idx[d-1] to that run's lower
// bound, reporting false when no such prefix remains. This is the only
// incrementation the range-batched §V engine performs — everything
// between carries is a flat counted loop over the innermost level, whose
// bounds cannot change while the prefix is fixed. Depth-1 nests are a
// single run, so NextRun is always false for them.
func (inst *Instance) NextRun(idx []int64) bool {
	for k := inst.Depth() - 2; k >= 0; k-- {
		if inst.advance(idx, k) {
			return true
		}
	}
	return false
}

// Enumerate calls f for every iteration tuple in lexicographic order.
// Enumeration stops early if f returns false. The slice passed to f is
// reused across calls.
func (inst *Instance) Enumerate(f func(idx []int64) bool) {
	inst.EnumerateScratch(make([]int64, inst.Depth()), f)
}

// EnumerateScratch is Enumerate with a caller-provided tuple buffer
// (length Depth), so repeated enumerations — per chunk, per measurement
// rep — reuse one allocation. The same slice is passed to f each call.
func (inst *Instance) EnumerateScratch(idx []int64, f func(idx []int64) bool) {
	if !inst.First(idx) {
		return
	}
	for {
		if !f(idx) {
			return
		}
		if !inst.Increment(idx) {
			return
		}
	}
}

// Count returns the number of iterations by brute-force enumeration.
// It is the test oracle for the Ehrhart counting polynomial.
func (inst *Instance) Count() int64 {
	var c int64
	inst.Enumerate(func([]int64) bool { c++; return true })
	return c
}

// Contains reports whether idx is a point of the iteration space.
func (inst *Instance) Contains(idx []int64) bool {
	if len(idx) != inst.Depth() {
		return false
	}
	for k := range idx {
		if idx[k] < inst.LowerAt(k, idx) || idx[k] >= inst.UpperAt(k, idx) {
			return false
		}
	}
	return true
}

// CheckRegular verifies that no reachable loop has a negative trip count
// (upper < lower), the regularity condition under which trip-count and
// ranking polynomials are exact. Zero-trip loops are permitted. The check
// enumerates prefixes, so it is intended for tests and tool-time
// validation, not hot paths.
func (inst *Instance) CheckRegular() error {
	var walk func(idx []int64, k int) error
	idx := make([]int64, inst.Depth())
	walk = func(idx []int64, k int) error {
		if k == inst.Depth() {
			return nil
		}
		lo, hi := inst.LowerAt(k, idx), inst.UpperAt(k, idx)
		if hi < lo {
			return fmt.Errorf("nest: loop %q has negative trip count (%d..%d) at prefix %v",
				inst.nest.Loops[k].Index, lo, hi, idx[:k])
		}
		for v := lo; v < hi; v++ {
			idx[k] = v
			if err := walk(idx, k+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(idx, 0)
}
