package codegen

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden locks the exact emitted source for every scheme against
// golden files, guarding formatting and formula regressions. Run with
// -update to regenerate after intentional changes.
func TestGolden(t *testing.T) {
	corr := correlationResult(t)
	tetra := tetraResult(t)
	body := "a[i][j] += b[k][i]*c[k][j];\na[j][i] = a[i][j];"
	cases := []struct {
		file string
		gen  func() (string, error)
	}{
		{"correlation_fig3.c", func() (string, error) {
			return EmitC(corr, Options{Scheme: PerIteration, Body: body})
		}},
		{"correlation_fig4.c", func() (string, error) {
			return EmitC(corr, Options{Scheme: FirstIteration, Body: body})
		}},
		{"correlation_chunked.c", func() (string, error) {
			return EmitC(corr, Options{Scheme: Chunked, Chunk: 128, Body: body})
		}},
		{"tetra_fig7.c", func() (string, error) {
			return EmitC(tetra, Options{Scheme: PerIteration})
		}},
		{"tetra_simd.c", func() (string, error) {
			return EmitC(tetra, Options{Scheme: SIMD, VLength: 8})
		}},
		{"tetra_warp.c", func() (string, error) {
			return EmitC(tetra, Options{Scheme: Warp, Warp: 32})
		}},
		{"correlation_fig4.go.txt", func() (string, error) {
			fn, err := EmitGo(corr, Options{Scheme: FirstIteration, FuncName: "Correlation"})
			if err != nil {
				return "", err
			}
			return GoFile("collapsed", fn), nil
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			got, err := c.gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", c.file)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("emitted source differs from %s; run `go test ./internal/codegen -update` if intentional.\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
