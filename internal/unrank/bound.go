package unrank

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"repro/internal/faults"
	"repro/internal/nest"
)

// Stats counts recovery events, exposed for the overhead experiments
// (paper Fig. 10) and for diagnosing floating-point behaviour.
type Stats struct {
	RootEvals   int64 // closed-form radical evaluations (float64 tier)
	Corrections int64 // exact ±1 correction steps taken
	Fallbacks   int64 // float64-tier failures (NaN/Inf or non-convergence)
	Searches    int64 // binary-search recoveries (ladder exhausted + binary mode)
	Verifies    int64 // exact big.Rat re-rank checks (verify mode)
	Escalations int64 // verify mismatches escalated to binary search

	// Precision-ladder counters: recoveries completed by the big.Float
	// escalation tiers (certified floor plus exact correction), and
	// exact polynomial evaluations that left int64 territory.
	EscalationsPrec128 int64 // recoveries completed at big.Float(128)
	EscalationsPrec256 int64 // recoveries completed at big.Float(256)
	BigIntPaths        int64 // exact evaluations taking the big.Int slow path

	// Breakpoint-table counters: levels recovered through the table
	// tier, exact in-segment/confirmation evaluations spent there, and
	// pc values resolved through RecoverBatch.
	TableLookups     int64 // level recoveries completed by table lookup
	TableCorrections int64 // exact evals spent refining/confirming a lookup
	BatchRecoveries  int64 // pc values resolved via RecoverBatch
}

// Add accumulates o into s (used to aggregate per-thread stats).
func (s *Stats) Add(o Stats) {
	s.RootEvals += o.RootEvals
	s.Corrections += o.Corrections
	s.Fallbacks += o.Fallbacks
	s.Searches += o.Searches
	s.Verifies += o.Verifies
	s.Escalations += o.Escalations
	s.EscalationsPrec128 += o.EscalationsPrec128
	s.EscalationsPrec256 += o.EscalationsPrec256
	s.BigIntPaths += o.BigIntPaths
	s.TableLookups += o.TableLookups
	s.TableCorrections += o.TableCorrections
	s.BatchRecoveries += o.BatchRecoveries
}

// Sub returns s - o field by field. With o a previously published
// snapshot of the same monotonically growing counters, the result is
// the delta accumulated since — the quantity a live telemetry scrape
// wants added to its counters at each chunk boundary.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		RootEvals:          s.RootEvals - o.RootEvals,
		Corrections:        s.Corrections - o.Corrections,
		Fallbacks:          s.Fallbacks - o.Fallbacks,
		Searches:           s.Searches - o.Searches,
		Verifies:           s.Verifies - o.Verifies,
		Escalations:        s.Escalations - o.Escalations,
		EscalationsPrec128: s.EscalationsPrec128 - o.EscalationsPrec128,
		EscalationsPrec256: s.EscalationsPrec256 - o.EscalationsPrec256,
		BigIntPaths:        s.BigIntPaths - o.BigIntPaths,
		TableLookups:       s.TableLookups - o.TableLookups,
		TableCorrections:   s.TableCorrections - o.TableCorrections,
		BatchRecoveries:    s.BatchRecoveries - o.BatchRecoveries,
	}
}

// String renders the counters in a compact fixed-order form.
func (s Stats) String() string {
	out := fmt.Sprintf("root evals %d, corrections %d, fallbacks %d, searches %d",
		s.RootEvals, s.Corrections, s.Fallbacks, s.Searches)
	if s.Verifies > 0 || s.Escalations > 0 {
		out += fmt.Sprintf(", verifies %d, escalations %d", s.Verifies, s.Escalations)
	}
	if s.EscalationsPrec128 > 0 || s.EscalationsPrec256 > 0 {
		out += fmt.Sprintf(", prec128 %d, prec256 %d", s.EscalationsPrec128, s.EscalationsPrec256)
	}
	if s.BigIntPaths > 0 {
		out += fmt.Sprintf(", bigint paths %d", s.BigIntPaths)
	}
	if s.TableLookups > 0 || s.TableCorrections > 0 {
		out += fmt.Sprintf(", table lookups %d, table corrections %d", s.TableLookups, s.TableCorrections)
	}
	if s.BatchRecoveries > 0 {
		out += fmt.Sprintf(", batch recoveries %d", s.BatchRecoveries)
	}
	return out
}

// Bound is an Unranker bound to concrete parameter values, ready for
// repeated Unrank/Rank/Increment calls. A Bound is not safe for
// concurrent use — give each goroutine its own via Unranker.Bind (the
// generated OpenMP code likewise privatizes the recovery state).
type Bound struct {
	u        *Unranker
	inst     *nest.Instance
	np       int
	depth    int
	total    int64
	totalBig *big.Int
	vals     []int64 // params followed by indices, reused (exact path)
	// fvals[k] is the positional float argument vector of level k's
	// compiled root: [params..., i_0..i_{k-1}, pc].
	fvals [][]float64
	// ivals[k] is the positional integer argument vector of level k's
	// big.Float escalation evaluators (same layout as fvals[k], exact).
	ivals [][]int64
	// scratch is the reusable iteration-tuple buffer handed out by
	// Scratch — per-Bound, so the §V drivers allocate nothing per chunk.
	scratch []int64
	stats   Stats

	// Breakpoint-table state (nil unless the unranker's strategy enables
	// tables; see Unranker.tablesEnabled). tables is immutable after Bind
	// and shared by Clone; the rest is per-Bound scratch.
	tables []*levelTable
	// tvals[k] is the positional argument vector of level k's separable
	// evaluator gComp: [params..., x].
	tvals [][]int64
	// tbase[k] caches B(prefix) = rk(prefix, lb) − g(lb) for the prefix
	// in tpref[k] (valid when tvalid[k]); consecutive recoveries under an
	// unchanged prefix — the common case at small chunk sizes — then skip
	// both exact evaluations.
	tbase  []int64
	tpref  [][]int64
	tvalid []bool
}

// Bind fixes parameter values, precomputing the total iteration count.
// The count is evaluated with checked arithmetic: when it leaves the
// int64 fast path it is computed exactly over big.Int (available via
// TotalBig), and a count that cannot serve as a collapsed pc range
// (Total+1 must fit in int64) returns an error wrapping
// faults.ErrOverflow instead of wrapping around.
func (u *Unranker) Bind(params map[string]int64) (b *Bound, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, faults.ErrOverflow) {
				b, err = nil, fmt.Errorf("unrank: bind %v: %w", params, e)
				return
			}
			panic(r)
		}
	}()
	inst, err := u.nest.Bind(params)
	if err != nil {
		return nil, err
	}
	b = &Bound{
		u:     u,
		inst:  inst,
		np:    len(u.nest.Params),
		depth: u.nest.Depth(),
		vals:  make([]int64, len(u.order)),
	}
	cvals := make([]int64, b.np)
	for i, p := range u.nest.Params {
		v := params[p]
		b.vals[i] = v
		cvals[i] = v
	}
	b.fvals = make([][]float64, len(u.levels))
	b.ivals = make([][]int64, len(u.levels))
	for k := range u.levels {
		fv := make([]float64, b.np+k+1)
		iv := make([]int64, b.np+k+1)
		for i := range cvals {
			fv[i] = float64(cvals[i])
			iv[i] = cvals[i]
		}
		b.fvals[k] = fv
		b.ivals[k] = iv
	}
	// The total count goes through the explicitly checked big path: no
	// silent wraparound, and domains beyond int64 report ErrOverflow
	// with the exact count attached rather than panicking.
	if v, ok := u.countC.EvalInt64(cvals); ok {
		b.total = v
		b.totalBig = big.NewInt(v)
	} else {
		b.stats.BigIntPaths++
		r := u.countC.EvalBig(cvals)
		q := new(big.Int).Quo(r.Num(), r.Denom())
		if r.Sign() < 0 && !r.IsInt() {
			q.Sub(q, big.NewInt(1))
		}
		b.totalBig = q
		if !q.IsInt64() || q.Int64() > math.MaxInt64-1 {
			return nil, fmt.Errorf("unrank: bind %v: iteration count %s exceeds the int64 pc range: %w",
				params, q, faults.ErrOverflow)
		}
		b.total = q.Int64()
	}
	if b.total < 0 {
		return nil, fmt.Errorf("unrank: negative iteration count %d (irregular nest for %v)", b.total, params)
	}
	if u.tablesEnabled() {
		// Tables are built eagerly here — before any Clone — so worker
		// clones share the immutable tables and only duplicate the small
		// per-recovery scratch (zero steady-state allocations preserved).
		b.buildTables()
	}
	return b, nil
}

// Clone returns an independent Bound over the same binding, sharing the
// immutable compiled core — the bound nest instance (read-only after
// Bind), the ranking/root evaluators and the precomputed totals — and
// duplicating only the small per-recovery scratch vectors. This is how
// the parallel runtime privatizes recovery state per worker without
// paying Bind's bound compilation and count evaluation once per thread:
// one Bind, then one Clone per team member. Statistics start at zero on
// the clone.
func (b *Bound) Clone() *Bound {
	nb := &Bound{
		u:        b.u,
		inst:     b.inst,
		np:       b.np,
		depth:    b.depth,
		total:    b.total,
		totalBig: b.totalBig,
		vals:     append([]int64(nil), b.vals...),
		fvals:    make([][]float64, len(b.fvals)),
		ivals:    make([][]int64, len(b.ivals)),
	}
	for k := range b.fvals {
		nb.fvals[k] = append([]float64(nil), b.fvals[k]...)
		nb.ivals[k] = append([]int64(nil), b.ivals[k]...)
	}
	if b.tables != nil {
		nb.tables = b.tables // immutable after Bind, shared
		nb.tvals = make([][]int64, len(b.tvals))
		nb.tpref = make([][]int64, len(b.tpref))
		for k := range b.tvals {
			if b.tvals[k] != nil {
				nb.tvals[k] = append([]int64(nil), b.tvals[k]...)
			}
			if b.tpref[k] != nil {
				nb.tpref[k] = make([]int64, len(b.tpref[k]))
			}
		}
		nb.tbase = make([]int64, len(b.tbase))
		nb.tvalid = make([]bool, len(b.tvalid))
	}
	return nb
}

// MustBind is Bind but panics on error.
func (u *Unranker) MustBind(params map[string]int64) *Bound {
	b, err := u.Bind(params)
	if err != nil {
		panic(err)
	}
	return b
}

// Total returns the number of iterations: the collapsed loop runs
// pc = 1 .. Total.
func (b *Bound) Total() int64 { return b.total }

// TotalBig returns the exact iteration count as a big.Int — equal to
// Total() whenever the count fits int64, and the only faithful value for
// domains beyond it (Bind refuses those with ErrOverflow, but tools can
// still report the exact cardinality via the Unranker's counting
// polynomial).
func (b *Bound) TotalBig() *big.Int { return new(big.Int).Set(b.totalBig) }

// Instance returns the bound nest instance (for bound evaluation and
// lexicographic incrementation).
func (b *Bound) Instance() *nest.Instance { return b.inst }

// Depth returns the bound nest's depth.
func (b *Bound) Depth() int { return b.depth }

// Scratch returns the Bound's reusable iteration-tuple buffer (length
// Depth), allocating it on first use. Like every Bound operation it is
// single-goroutine: the §V range drivers use it so steady-state chunk
// execution performs zero allocations.
func (b *Bound) Scratch() []int64 {
	if b.scratch == nil {
		b.scratch = make([]int64, b.depth)
	}
	return b.scratch
}

// Stats returns accumulated recovery statistics.
func (b *Bound) Stats() Stats { return b.stats }

// ResetStats clears the recovery statistics.
func (b *Bound) ResetStats() { b.stats = Stats{} }

// rkEval exactly evaluates level k's substituted ranking polynomial at
// candidate index value x, given the already-recovered prefix in b.vals.
// Evaluations that overflow the int64 fast path transparently run over
// big.Int and are counted in Stats.BigIntPaths.
func (b *Bound) rkEval(k int, x int64) int64 {
	b.vals[b.np+k] = x
	v, usedBig := b.u.levels[k].rk.EvalExactTracked(b.vals[:b.np+k+1])
	if usedBig {
		b.stats.BigIntPaths++
	}
	return v
}

// searchLevel exactly recovers level k by binary search: the largest
// x in [lo, hi) with r_k(x) <= pc. The ranking polynomial is monotone in
// x, so this is O(log range) exact evaluations.
func (b *Bound) searchLevel(k int, pc, lo, hi int64) int64 {
	b.stats.Searches++
	lo0, hi0 := lo, hi-1
	for lo0 < hi0 {
		mid := lo0 + (hi0-lo0+1)/2
		if b.rkEval(k, mid) <= pc {
			lo0 = mid
		} else {
			hi0 = mid - 1
		}
	}
	return lo0
}

// Unrank recovers the iteration tuple of rank pc (1-based) into idx,
// which must have length equal to the nest depth.
//
// In verify mode (Options.Verify) the recovered tuple is exactly
// re-ranked with big.Rat arithmetic; a mismatch escalates every level to
// exact binary search, and a second mismatch returns an error wrapping
// faults.ErrRecoveryDiverged. An exact evaluation overflowing int64 is
// returned as an error wrapping faults.ErrOverflow rather than a panic.
func (b *Bound) Unrank(pc int64, idx []int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, faults.ErrOverflow) {
				err = fmt.Errorf("unrank: pc = %d: %w", pc, e)
				return
			}
			panic(r)
		}
	}()
	if len(idx) != b.depth {
		return fmt.Errorf("unrank: index slice has length %d, want %d", len(idx), b.depth)
	}
	if pc < 1 || pc > b.total {
		return fmt.Errorf("unrank: pc = %d out of range 1..%d", pc, b.total)
	}
	return b.recoverInto(pc, idx)
}

// recoverInto performs the full per-level recovery of pc into idx
// (already validated), including the verify-mode escalation. Shared by
// Unrank and RecoverBatch.
func (b *Bound) recoverInto(pc int64, idx []int64) error {
	for k := 0; k < b.depth-1; k++ {
		b.setLevel(k, b.recoverLevel(k, pc, idx), idx)
	}
	b.lastLevel(pc, idx)
	return b.maybeVerify(pc, idx)
}

// recoverLevel recovers level k of pc through the precision ladder:
// float64 radical → certified big.Float tiers → breakpoint-table lookup
// → exact binary search. The radical tiers exist only in closed-form
// mode; the table tier only when the strategy built tables at Bind; the
// binary search is always available and always exact.
func (b *Bound) recoverLevel(k int, pc int64, idx []int64) int64 {
	lv := &b.u.levels[k]
	lo := b.inst.LowerAt(k, idx)
	hi := b.inst.UpperAt(k, idx)
	if lv.rootFn != nil {
		// Precision ladder (§IV.C hardened): the float64 radical is
		// tried first; a failure escalates to the certified big.Float
		// tiers before conceding to the exact rungs.
		if b.u.startTier == TierFloat64 {
			if ik, ok := b.tryFloat64(lv, k, pc, lo, hi); ok {
				return ik
			}
			b.stats.Fallbacks++
		}
		for ti := 0; ti < len(lv.rootBig); ti++ {
			tier := TierPrec128 + Tier(ti)
			if b.u.startTier > tier || lv.rootBig[ti] == nil {
				continue
			}
			if ik, ok := b.tryBig(lv, k, ti, pc, lo, hi); ok {
				if tier == TierPrec128 {
					b.stats.EscalationsPrec128++
				} else {
					b.stats.EscalationsPrec256++
				}
				return ik
			}
		}
	}
	if b.tables != nil && b.u.startTier <= TierTable {
		if ik, ok := b.tryTable(k, pc, lo, hi); ok {
			return ik
		}
	}
	return b.searchLevel(k, pc, lo, hi)
}

// maybeVerify applies verify-mode checking to a freshly recovered tuple:
// exact big.Rat re-rank, binary-search escalation on mismatch, and a
// typed error when even the escalation disagrees.
func (b *Bound) maybeVerify(pc int64, idx []int64) error {
	if !b.u.verify || b.verifyRank(pc, idx) {
		return nil
	}
	// Escalation rung of the degradation ladder: redo every level
	// with exact binary search over the monotone ranking polynomial.
	b.stats.Escalations++
	for k := 0; k < b.depth-1; k++ {
		ik := b.searchLevel(k, pc, b.inst.LowerAt(k, idx), b.inst.UpperAt(k, idx))
		b.setLevel(k, ik, idx)
	}
	b.lastLevel(pc, idx)
	if !b.verifyRank(pc, idx) {
		return fmt.Errorf("unrank: pc = %d: exact re-rank of %v mismatches after binary-search escalation: %w",
			pc, idx, faults.ErrRecoveryDiverged)
	}
	return nil
}

// tryFloat64 attempts level k's recovery on the float64 tier: evaluate
// the compiled radical over complex128, floor the real part under the
// assumed tolerances, then repair with the bounded exact correction.
// ok is false when the evaluation is non-finite, materially complex, or
// the correction budget is exhausted — the caller escalates.
func (b *Bound) tryFloat64(lv *level, k int, pc, lo, hi int64) (int64, bool) {
	fv := b.fvals[k]
	fv[len(fv)-1] = float64(pc)
	x := faults.PerturbRoot(k, lv.rootFn(fv))
	b.stats.RootEvals++
	if cmplx.IsNaN(x) || cmplx.IsInf(x) || !imagNegligible(x) {
		return 0, false
	}
	ik, ok := b.correct(k, floorReal(x), pc, lo, hi)
	if !ok {
		return 0, false
	}
	return faults.PerturbLevel(k, ik), true
}

// tryBig attempts level k's recovery on big.Float escalation tier ti
// (0 = 128-bit, 1 = 256-bit). The floor is taken only when the certified
// error radius provably clears every integer boundary and the imaginary
// component is consistent with a real root; the exact correction then
// confirms it. Fault-injected root perturbations model float64 rounding
// pathology and deliberately do not apply here — the certified tiers are
// the trusted escape hatch the injection exists to exercise.
func (b *Bound) tryBig(lv *level, k, ti int, pc, lo, hi int64) (int64, bool) {
	iv := b.ivals[k]
	iv[len(iv)-1] = pc
	v := lv.rootBig[ti](iv)
	if !v.ImagNegligible() {
		return 0, false
	}
	fl, ok := v.FloorCertain()
	if !ok {
		// A root sitting exactly on an integer boundary can never
		// certify (the interval straddles it at every precision); a
		// near-certain floor is still within ±1, which the exact
		// correction below repairs soundly.
		fl, ok = v.FloorNear()
	}
	if !ok {
		return 0, false
	}
	return b.correct(k, fl, pc, lo, hi)
}

// correct clamps a candidate index into [lo, hi) and applies the exact
// monotone correction: walk ik by ±1 (at most maxCorr exact polynomial
// evaluations) until r_k(ik) <= pc < r_k(ik+1). ok is false when the
// budget is exhausted, in which case no correction steps are charged.
func (b *Bound) correct(k int, ik, pc, lo, hi int64) (int64, bool) {
	if ik < lo {
		ik = lo
	}
	if ik > hi-1 {
		ik = hi - 1
	}
	steps := 0
	for b.rkEval(k, ik) > pc {
		ik--
		steps++
		if ik < lo || steps > b.u.maxCorr {
			return 0, false
		}
	}
	for ik+1 <= hi-1 && b.rkEval(k, ik+1) <= pc {
		ik++
		steps++
		if steps > b.u.maxCorr {
			return 0, false
		}
	}
	b.stats.Corrections += int64(steps)
	return ik, true
}

// setLevel records the recovered value of level k in idx, the exact
// evaluation vector, and the deeper levels' compiled float arguments.
func (b *Bound) setLevel(k int, ik int64, idx []int64) {
	idx[k] = ik
	b.vals[b.np+k] = ik
	for q := k + 1; q < len(b.fvals); q++ {
		b.fvals[q][b.np+k] = float64(ik)
		b.ivals[q][b.np+k] = ik
	}
}

// lastLevel computes the final index directly from the prefix rank:
// i = lb + (pc - rank of first iteration at this prefix).
func (b *Bound) lastLevel(pc int64, idx []int64) {
	base := b.u.lastRank.EvalExact(b.vals[:b.np+b.depth-1])
	lb := b.inst.LowerAt(b.depth-1, idx)
	idx[b.depth-1] = lb + (pc - base)
}

// verifyRank checks idx is the iteration of rank pc: every index within
// its (prefix-dependent) bounds, and the exact big.Rat re-rank equal to
// pc. Both checks are needed — the last level is constructed so its rank
// is pc for any prefix, so re-ranking alone cannot catch a corrupted
// prefix; domain membership plus the rank bijection can.
func (b *Bound) verifyRank(pc int64, idx []int64) bool {
	b.stats.Verifies++
	for k := 0; k < b.depth; k++ {
		if idx[k] < b.inst.LowerAt(k, idx) || idx[k] >= b.inst.UpperAt(k, idx) {
			return false
		}
	}
	copy(b.vals[b.np:], idx)
	r := b.u.rankComp.EvalBig(b.vals)
	return r.Cmp(new(big.Rat).SetInt64(pc)) == 0
}

// Rank exactly evaluates the ranking polynomial at idx. The result is
// the 1-based rank when idx lies inside the iteration domain.
func (b *Bound) Rank(idx []int64) int64 {
	if len(idx) != b.depth {
		panic("unrank: wrong index arity")
	}
	copy(b.vals[b.np:], idx)
	return b.u.rankComp.EvalExact(b.vals)
}

// First fills idx with the first iteration tuple; see nest.Instance.
func (b *Bound) First(idx []int64) bool { return b.inst.First(idx) }

// Increment advances idx lexicographically; see nest.Instance.
func (b *Bound) Increment(idx []int64) bool { return b.inst.Increment(idx) }
