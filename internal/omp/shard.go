package omp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/unrank"
)

// DefaultShardChunk is the internal chunking of a shard attempt: the
// interval between cancellation checks and progress callbacks. Small
// enough that a lease heartbeat lands every few hundred microseconds on
// trivial bodies, large enough that the §V recovery amortizes.
const DefaultShardChunk = 4096

// ShardForCtx executes the collapsed ranks [pcLo, pcHi] (inclusive) on
// the worker-private bound b — the shard-level execution hook the dist
// coordinator's executors run on. The shard is processed in internal
// chunks of `chunk` iterations (DefaultShardChunk when <= 0), each chunk
// driven by the §V engine (one costly recovery per chunk, lexicographic
// advance within), with three guarantees:
//
//   - ctx is checked at every chunk boundary, so a canceled context —
//     including a lease the coordinator revoked with
//     faults.ErrLeaseExpired as the cause — stops the attempt
//     cooperatively with an error wrapping faults.ErrCanceled;
//   - progress(done), when non-nil, is invoked after every chunk with
//     the cumulative iteration count: the heartbeat edge lease renewal
//     rides on;
//   - a panic in body (or in an injected fault hook) is recovered and
//     returned as a *faults.PanicError: an executor crash mid-shard
//     costs the attempt, never the process.
//
// An active fault-injection plan is consulted once per shard
// (faults.InjectShard) and once per chunk (faults.InjectChunk), so chaos
// harnesses can kill, stall or fail attempts at exact coordinates.
//
// done reports the iterations completed in full before the error (0 on
// a clean run's completion means an empty shard). Effects of a failed
// attempt are the caller's to discard: the §V engine has already invoked
// body for the completed prefix.
func ShardForCtx(ctx context.Context, worker int, b *unrank.Bound, pcLo, pcHi, chunk int64,
	progress func(done int64), body func(pc int64, idx []int64)) (done int64, err error) {
	return ShardForCtxFrom(ctx, worker, b, nil, pcLo, pcHi, chunk, progress, body)
}

// ShardForCtxFrom is ShardForCtx with a pre-recovered start tuple: when
// start is non-nil it must be the exact iteration tuple of rank pcLo
// (typically produced by a coordinator batch-recovering all planned
// shard starts with unrank.Bound.RecoverBatch), and the first internal
// chunk skips its §V recovery entirely — the shard begins at pure
// incrementation cost. A nil start is ShardForCtx. start is read-only.
func ShardForCtxFrom(ctx context.Context, worker int, b *unrank.Bound, start []int64,
	pcLo, pcHi, chunk int64,
	progress func(done int64), body func(pc int64, idx []int64)) (done int64, err error) {
	if pcLo > pcHi {
		return 0, nil
	}
	if chunk <= 0 {
		chunk = DefaultShardChunk
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("omp: shard executor %d: %w", worker, faults.Recovered(r))
		}
	}()
	if err := faults.InjectShard(worker, pcLo, pcHi); err != nil {
		return 0, fmt.Errorf("omp: injected fault at shard [%d,%d]: %w", pcLo, pcHi, err)
	}
	for clo := pcLo; ; {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return done, canceled(ctx)
			default:
			}
		}
		chi := clo + chunk - 1
		if chi > pcHi || chi < clo { // clo+chunk overflow saturates at pcHi
			chi = pcHi
		}
		if err := faults.InjectChunk(worker, clo, chi+1); err != nil {
			return done, fmt.Errorf("omp: injected fault at chunk [%d,%d]: %w", clo, chi, err)
		}
		if clo == pcLo && start != nil {
			err = core.ForRangeFrom(b, clo, chi, start, body)
		} else {
			err = core.ForRange(b, clo, chi, body)
		}
		if err != nil {
			return done, err
		}
		done += chi - clo + 1
		if progress != nil {
			progress(done)
		}
		if chi == pcHi {
			return done, nil
		}
		clo = chi + 1
	}
}
