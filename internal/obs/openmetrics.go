// Package obs is the live observability plane over the telemetry
// substrate: an OpenMetrics/Prometheus text exposition of every
// registered counter, gauge and histogram (with p50/p95/p99 quantiles
// derived from the fixed bucket layout), a JSON snapshot endpoint with
// interval deltas (rates, not just totals), the flight recorder's
// last-K-events Chrome trace on demand, and the net/http/pprof
// handlers — everything a scraper or an operator needs while a long
// collapse run (or, later, the collapsed daemon) is in flight.
//
// The exposition side deals in the registry's flat metric names.
// Names may embed a Prometheus label set directly ("omp.worker_chunks
// {tid=\"3\"}"); the exporter splits the family from the labels so
// per-worker series group into one family, and sanitises the family
// name into the OpenMetrics alphabet (dots become underscores).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// DefQuantiles are the quantiles exported per histogram family.
var DefQuantiles = telemetry.DefQuantiles

// splitName separates a registry metric name into its OpenMetrics
// family (sanitised) and the embedded label set (without braces, empty
// when none): "omp.worker_chunks{tid=\"3\"}" → ("omp_worker_chunks",
// `tid="3"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	} else {
		family = name
	}
	return sanitizeFamily(family), labels
}

// sanitizeFamily maps a registry name into the OpenMetrics name
// alphabet [a-zA-Z0-9_:], collapsing every other rune to '_'. A
// leading digit gets a '_' prefix.
func sanitizeFamily(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sample is one exposition line: value plus its rendered label set.
type sample struct {
	labels string // rendered label pairs, no braces; "" for none
	value  float64
}

// family accumulates the samples of one metric family.
type family struct {
	name    string
	typ     string // counter | gauge | histogram | summary
	samples []sample
	// hist holds the snapshot for histogram families (one unlabeled
	// histogram per family today).
	hist *telemetry.HistogramSnapshot
}

// fmtFloat renders a value the way Prometheus does: shortest
// round-trip representation, +Inf spelled literally.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics writes the registry's current state as an
// OpenMetrics text exposition: counters (sample name <family>_total),
// gauges, histograms (cumulative le buckets, _sum, _count, plus a
// derived <family>_quantile gauge family carrying p50/p95/p99), and
// per-(cat,name) span aggregates as the trace_spans /
// trace_span_seconds gauge families. The exposition ends with the
// mandatory # EOF terminator. A nil registry writes an empty (but
// valid) exposition.
func WriteOpenMetrics(w io.Writer, reg *telemetry.Registry) error {
	fams := map[string]*family{}
	get := func(name, typ string) *family {
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}

	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		fam, labels := splitName(name)
		f := get(fam, "counter")
		f.samples = append(f.samples, sample{labels: labels, value: float64(v)})
	}
	for name, v := range snap.Gauges {
		fam, labels := splitName(name)
		f := get(fam, "gauge")
		f.samples = append(f.samples, sample{labels: labels, value: float64(v)})
	}
	for name := range snap.Histograms {
		h := snap.Histograms[name]
		fam, _ := splitName(name)
		get(fam, "histogram").hist = &h
	}

	// Span aggregates: count and total seconds per (cat, name), from
	// the unbounded trace when it retains events, else from the flight
	// ring (the last-K window a long-running server keeps).
	events := reg.Trace().Events()
	if len(events) == 0 {
		events = reg.Flight().Events()
	}
	if len(events) > 0 {
		type agg struct {
			count int64
			sum   time.Duration
		}
		aggs := map[[2]string]*agg{}
		for _, ev := range events {
			k := [2]string{ev.Cat, ev.Name}
			a, ok := aggs[k]
			if !ok {
				a = &agg{}
				aggs[k] = a
			}
			a.count++
			a.sum += ev.Dur
		}
		// Gauges, not counters: with flight-only retention the window
		// slides, so the aggregates are not monotone.
		fc := get("trace_spans", "gauge")
		fs := get("trace_span_seconds", "gauge")
		for k, a := range aggs {
			labels := fmt.Sprintf("cat=%q,name=%q", k[0], k[1])
			fc.samples = append(fc.samples, sample{labels: labels, value: float64(a.count)})
			fs.samples = append(fs.samples, sample{labels: labels, value: a.sum.Seconds()})
		}
	}

	// Scrape-side reference clock: the monotonic trace offset at
	// exposition time, for deriving in-flight chunk ages from the
	// *_inflight_since_ns gauges.
	if reg != nil {
		f := get("telemetry_scrape_monotonic_ns", "gauge")
		f.samples = append(f.samples, sample{value: float64(reg.Trace().Now().Nanoseconds())})
		if fl := reg.Flight(); fl != nil {
			ff := get("flight_recorded_events", "counter")
			ff.samples = append(ff.samples, sample{value: float64(fl.Total())})
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		switch f.typ {
		case "counter":
			for _, s := range f.samples {
				writeSample(&b, f.name+"_total", s.labels, s.value)
			}
		case "histogram":
			h := f.hist
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				writeSample(&b, f.name+"_bucket", fmt.Sprintf("le=%q", fmtFloat(bound)), float64(cum))
			}
			if len(h.Counts) > len(h.Bounds) {
				cum += h.Counts[len(h.Bounds)]
			}
			writeSample(&b, f.name+"_bucket", `le="+Inf"`, float64(cum))
			writeSample(&b, f.name+"_sum", "", h.Sum)
			writeSample(&b, f.name+"_count", "", float64(cum))
			fmt.Fprintf(&b, "# TYPE %s_quantile gauge\n", f.name)
			for _, q := range DefQuantiles {
				writeSample(&b, f.name+"_quantile", fmt.Sprintf("quantile=%q", fmtFloat(q)), h.Quantile(q))
			}
		default: // gauge, summary
			for _, s := range f.samples {
				writeSample(&b, f.name, s.labels, s.value)
			}
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(b, "%s{%s} %s\n", name, labels, fmtFloat(v))
	} else {
		fmt.Fprintf(b, "%s %s\n", name, fmtFloat(v))
	}
}
