package kernels

import (
	"testing"

	"repro/internal/omp"
)

// TestAllVariantsMatchSequential is the central correctness test of the
// kernel suite: for every kernel, the outer-parallel (static, dynamic)
// and collapsed (static, static-chunked, dynamic) variants must produce
// bit-identical results to the sequential reference.
func TestAllVariantsMatchSequential(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p := k.TestParams
			inst := k.New(p)
			RunSeq(inst)
			want := inst.Checksum()
			if want == 0 {
				t.Fatalf("reference checksum is zero — kernel likely did nothing")
			}

			res, err := k.Collapsed()
			if err != nil {
				t.Fatalf("Collapsed: %v", err)
			}

			runs := []struct {
				name string
				run  func() error
			}{
				{"outer-static", func() error {
					RunOuterParallel(inst, 4, omp.Schedule{Kind: omp.Static})
					return nil
				}},
				{"outer-dynamic", func() error {
					RunOuterParallel(inst, 4, omp.Schedule{Kind: omp.Dynamic})
					return nil
				}},
				{"collapsed-static", func() error {
					return RunCollapsedParallel(k, inst, res, p, 4, omp.Schedule{Kind: omp.Static})
				}},
				{"collapsed-static-chunk", func() error {
					return RunCollapsedParallel(k, inst, res, p, 3, omp.Schedule{Kind: omp.StaticChunk, Chunk: 7})
				}},
				{"collapsed-dynamic", func() error {
					return RunCollapsedParallel(k, inst, res, p, 4, omp.Schedule{Kind: omp.Dynamic, Chunk: 5})
				}},
				{"collapsed-serial-12chunks", func() error {
					return RunCollapsedSerialChunks(k, inst, res, p, 12)
				}},
			}
			for _, r := range runs {
				inst.Reset()
				if err := r.run(); err != nil {
					t.Fatalf("%s: %v", r.name, err)
				}
				if got := inst.Checksum(); got != want {
					t.Errorf("%s: checksum %v, want %v", r.name, got, want)
				}
			}
		})
	}
}

// TestWorkModelsMatchExecution verifies that WorkPerOuter equals the sum
// of WorkPerCollapsed over the outer iteration's collapsed tuples, and
// that total work is consistent — the schedule simulator depends on
// these.
func TestWorkModelsMatchExecution(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p := k.TestParams
			inst := k.New(p)
			res, err := k.Collapsed()
			if err != nil {
				t.Fatal(err)
			}
			b, err := res.Unranker.Bind(k.NestParams(p))
			if err != nil {
				t.Fatal(err)
			}
			perOuterFromCollapsed := map[int64]float64{}
			b.Instance().Enumerate(func(idx []int64) bool {
				perOuterFromCollapsed[idx[0]] += inst.WorkPerCollapsed(idx)
				return true
			})
			lo, hi := inst.OuterRange()
			for i := lo; i < hi; i++ {
				got := perOuterFromCollapsed[i]
				want := inst.WorkPerOuter(i)
				if got != want {
					t.Fatalf("outer %d: collapsed work sum %v != WorkPerOuter %v", i, got, want)
				}
			}
		})
	}
}

// TestCollapsedTotalMatchesEnumeration ensures each kernel's collapsed
// space size equals the brute-force count of its parallel loops.
func TestCollapsedTotalMatchesEnumeration(t *testing.T) {
	for _, k := range All() {
		res, err := k.Collapsed()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b, err := res.Unranker.Bind(k.NestParams(k.TestParams))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got, want := b.Total(), b.Instance().Count(); got != want {
			t.Errorf("%s: Total %d != enumerated %d", k.Name, got, want)
		}
		if b.Total() == 0 {
			t.Errorf("%s: empty collapsed space at test size", k.Name)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("ltmp")
	if err != nil || k.Name != "ltmp" {
		t.Fatalf("ByName(ltmp) = %v, %v", k, err)
	}
	if !k.InnerDependence {
		t.Error("ltmp must be marked InnerDependence")
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if len(All()) != 11 {
		t.Errorf("kernel count = %d, want 11", len(All()))
	}
}

func TestTetraRankMatchesLibrary(t *testing.T) {
	// The hand-inlined integer ranking of the tetra kernel must agree
	// with the library's ranking polynomial.
	k := Tetra
	res, err := k.Collapsed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Unranker.Bind(map[string]int64{"N": 10})
	if err != nil {
		t.Fatal(err)
	}
	b.Instance().Enumerate(func(idx []int64) bool {
		if got, want := tetraRank(idx[0], idx[1], idx[2]), b.Rank(idx); got != want {
			t.Fatalf("tetraRank(%v) = %d, library = %d", idx, got, want)
		}
		return true
	})
}

func TestTiledCoversOriginalSpace(t *testing.T) {
	// The tiled kernels must compute exactly what their untiled
	// counterparts compute (same N = NT*T).
	pairs := []struct{ tiled, plain *Kernel }{
		{CorrelationTiled, Correlation},
		{CovarianceTiled, Covariance},
	}
	for _, pr := range pairs {
		nt, tt := pr.tiled.TestParams["NT"], pr.tiled.TestParams["T"]
		n := nt * tt
		ti := pr.tiled.New(pr.tiled.TestParams)
		pi := pr.plain.New(map[string]int64{"N": n})
		RunSeq(ti)
		RunSeq(pi)
		if ti.Checksum() != pi.Checksum() {
			t.Errorf("%s checksum %v != %s checksum %v",
				pr.tiled.Name, ti.Checksum(), pr.plain.Name, pi.Checksum())
		}
	}
}

func TestBenchParamsAreRegular(t *testing.T) {
	// All declared problem sizes must produce regular nests (the ranking
	// machinery's precondition). Use the nest-declared parameters only.
	for _, k := range All() {
		inst := k.Nest.MustBind(k.NestParams(k.TestParams))
		if err := inst.CheckRegular(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}
