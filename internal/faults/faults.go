// Package faults is the error taxonomy and fault-tolerance substrate of
// the collapsing pipeline. Every way the technique can refuse or fail at
// run time is a typed, inspectable error here, so callers can implement
// the degradation ladder documented in DESIGN.md:
//
//	closed-form recovery  →  exact binary-search recovery  →
//	uncollapsed parallel fallback
//
// The sentinels classify the failure; the dynamic errors wrap them with
// context (errors.Is matches the class, the message carries the detail).
// PanicError carries a recovered panic value and its stack across
// goroutine boundaries, so a worker panic in the parallel runtime
// surfaces as an ordinary error on the caller instead of killing the
// process.
//
// The package depends on nothing else in the repository: every layer
// (poly, nest, ehrhart, roots, unrank, core, omp, the CLIs) can import
// it without cycles.
package faults

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors classifying pipeline and runtime failures. Dynamic
// errors wrap these with %w; test with errors.Is.
var (
	// ErrNonAffine reports a loop bound that is not an integer affine
	// combination of the surrounding iterators and parameters (outside
	// the paper's Fig. 5 model).
	ErrNonAffine = errors.New("non-affine bound")

	// ErrDegreeTooHigh reports a ranking polynomial with a variable of
	// degree above 4: the recovery equation is not solvable by radicals
	// (paper §IV.B applicability limit).
	ErrDegreeTooHigh = errors.New("degree exceeds radical solvability (max 4)")

	// ErrOverflow reports an exact evaluation that exceeds the int64
	// range (iteration counts or rank values too large for the runtime).
	ErrOverflow = errors.New("int64 overflow")

	// ErrNoConvenientRoot reports that no symbolic root candidate
	// reproduces the ground-truth index on the validation samples
	// (paper §IV.A root selection failed).
	ErrNoConvenientRoot = errors.New("no convenient root")

	// ErrRecoveryDiverged reports that index recovery produced a tuple
	// whose exact re-rank does not match pc even after escalating to
	// binary search — the collapsed run cannot be trusted and must stop.
	ErrRecoveryDiverged = errors.New("index recovery diverged")

	// ErrCanceled reports a parallel run stopped cooperatively at a
	// chunk boundary because its context was canceled.
	ErrCanceled = errors.New("run canceled")

	// ErrLeaseExpired reports that a shard executor's time-bounded lease
	// lapsed (no heartbeat within the TTL): the coordinator has returned
	// the shard to the queue and canceled the straggling attempt. It
	// appears as the cancellation cause of the abandoned attempt, never
	// as a run-level failure — reassignment is the recovery.
	ErrLeaseExpired = errors.New("shard lease expired")

	// ErrJournalCorrupt reports a checkpoint journal whose body (not
	// merely its tail) fails validation: a mid-file record with a bad
	// checksum, a missing header, or an empty file. A torn *final*
	// record is not corruption — the journal is truncated to the last
	// valid record and the run resumes.
	ErrJournalCorrupt = errors.New("checkpoint journal corrupt")

	// ErrFingerprintMismatch reports a resume attempt against a journal
	// written by a different run (different nest shape, parameters or
	// total): replaying it would mix incompatible pc-ranges, so the
	// coordinator refuses.
	ErrFingerprintMismatch = errors.New("journal fingerprint mismatch")

	// ErrShardFailed reports that a shard exhausted the recovery ladder
	// (retries with backoff, then splitting down to the minimum shard
	// size) and the run could not degrade further.
	ErrShardFailed = errors.New("shard execution failed")

	// ErrUnknownMode reports a recovery-mode spelling that names no
	// strategy (CLI flags parse user input into unrank.Mode through
	// unrank.ParseMode; this is its typed rejection).
	ErrUnknownMode = errors.New("unknown recovery mode")
)

// Collapsible reports whether err is an applicability failure of the
// collapsing technique itself — the nest is outside the model
// (ErrNonAffine), beyond radical solvability (ErrDegreeTooHigh), lacks a
// convenient root (ErrNoConvenientRoot), or overflows int64 arithmetic
// (ErrOverflow). These are the failures the graceful-degradation path
// downgrades to an uncollapsed parallel loop; panics, cancellations and
// divergence are not downgradable.
func Collapsible(err error) bool {
	return errors.Is(err, ErrNonAffine) ||
		errors.Is(err, ErrDegreeTooHigh) ||
		errors.Is(err, ErrNoConvenientRoot) ||
		errors.Is(err, ErrOverflow)
}

// PanicError is a panic recovered at a package boundary: the original
// panic value plus the stack of the panicking goroutine, captured at
// recovery. The parallel runtime returns one when a worker panics; the
// compile pipeline returns one when an internal invariant trips.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack (debug.Stack format).
	Stack []byte
}

// Recovered wraps a recover() result into a PanicError, capturing the
// current goroutine's stack. Call it directly inside the deferred
// function so the stack still contains the panic site.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error renders the panic value; the stack is available via the Stack
// field (and shown by %+v).
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Format renders the stack too under %+v.
func (e *PanicError) Format(f fmt.State, verb rune) {
	if verb == 'v' && f.Flag('+') {
		fmt.Fprintf(f, "panic: %v\n%s", e.Value, e.Stack)
		return
	}
	fmt.Fprint(f, e.Error())
}

// Unwrap exposes a wrapped error panic value (e.g. the overflow error
// the exact evaluator panics with), so errors.Is(err, ErrOverflow)
// works through a PanicError.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsPanic returns the *PanicError in err's chain, or nil.
func AsPanic(err error) *PanicError {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe
	}
	return nil
}
