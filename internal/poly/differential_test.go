package poly

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"
)

// pairGen produces the same random polynomial in both representations —
// the packed interned engine under test and the preserved string-keyed
// legacy engine — by replaying one stream of addTerm operations.
type pairGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *pairGen) poly(maxTerms, maxDeg int) (*Poly, *legacyPoly) {
	p, lp := Zero(), legacyZero()
	nt := 1 + g.rng.Intn(maxTerms)
	for t := 0; t < nt; t++ {
		num := int64(g.rng.Intn(41) - 20)
		den := int64(1 + g.rng.Intn(6))
		c := big.NewRat(num, den)
		exps := map[string]int{}
		var ves []varExp
		for _, v := range g.vars {
			if e := g.rng.Intn(maxDeg + 1); e > 0 {
				exps[v] = e
				ves = append(ves, varExp{id: varID(v), exp: int32(e)})
			}
		}
		sort.Slice(ves, func(a, b int) bool { return ves[a].id < ves[b].id })
		np := Zero()
		np.addTerm(c, ves)
		p = p.Add(np)
		lp.addTerm(c, exps)
	}
	return p, lp
}

// requireEqual demands the two engines agree both symbolically (the
// deterministic rendering is character-identical by construction) and
// numerically at random rational points.
func requireEqual(t *testing.T, g *pairGen, p *Poly, lp *legacyPoly, what string) {
	t.Helper()
	if ps, ls := p.String(), lp.str(); ps != ls {
		t.Fatalf("%s: representations diverge:\n  packed: %s\n  legacy: %s", what, ps, ls)
	}
	env := map[string]*big.Rat{}
	for _, v := range g.vars {
		env[v] = big.NewRat(int64(g.rng.Intn(21)-10), int64(1+g.rng.Intn(4)))
	}
	// "pc" shows up via substitution targets below.
	env["pc"] = big.NewRat(int64(g.rng.Intn(50)), 1)
	pv, perr := p.EvalRat(env)
	lv, lerr := lp.evalRat(env)
	if (perr == nil) != (lerr == nil) {
		t.Fatalf("%s: eval error divergence: packed %v, legacy %v", what, perr, lerr)
	}
	if perr == nil && pv.Cmp(lv) != 0 {
		t.Fatalf("%s: eval divergence at %v: packed %s, legacy %s", what, env, pv, lv)
	}
}

// TestDifferentialAgainstLegacy drives the packed interned representation
// and the preserved string-keyed implementation through the same
// randomized sequences of ring operations — add, sub, mul, substitution —
// and requires exact agreement after every step. This is the oracle
// guarding the PR-5 representation swap.
func TestDifferentialAgainstLegacy(t *testing.T) {
	g := &pairGen{rng: rand.New(rand.NewSource(5)), vars: []string{"N", "M", "i", "j"}}
	for round := 0; round < 200; round++ {
		a, la := g.poly(5, 3)
		b, lb := g.poly(5, 3)
		requireEqual(t, g, a, la, "gen a")
		requireEqual(t, g, b, lb, "gen b")
		requireEqual(t, g, a.Add(b), la.add(lb), "add")
		requireEqual(t, g, a.Sub(b), la.sub(lb), "sub")
		requireEqual(t, g, a.Mul(b), la.mul(lb), "mul")
		// Substitute a random variable of a by b (degree kept small so the
		// closed form stays cheap), in both engines.
		v := g.vars[g.rng.Intn(len(g.vars))]
		requireEqual(t, g, a.Subst(v, b), la.subst(v, lb), "subst "+v)
		// And by a constant, the common lexmin-tail case.
		c, lc := Int(int64(g.rng.Intn(9))), legacyConst(big.NewRat(int64(g.rng.Intn(9)), 1))
		_ = lc
		k := int64(g.rng.Intn(9))
		requireEqual(t, g, a.Subst(v, Int(k)),
			la.subst(v, legacyConst(big.NewRat(k, 1))), "subst const")
		_ = c
	}
}

// TestDifferentialChained mimics the ehrhart summation shape: repeated
// multiply-accumulate with substitutions, the path the interned
// representation optimizes hardest.
func TestDifferentialChained(t *testing.T) {
	g := &pairGen{rng: rand.New(rand.NewSource(11)), vars: []string{"N", "i", "j"}}
	p, lp := One(), legacyConst(big.NewRat(1, 1))
	for step := 0; step < 30; step++ {
		q, lq := g.poly(3, 2)
		p = p.Mul(q).Add(p)
		lp = lp.mul(lq).add(lp)
		if step%5 == 4 {
			v := g.vars[g.rng.Intn(len(g.vars))]
			s, ls := g.poly(2, 1)
			p = p.Subst(v, s)
			lp = lp.subst(v, ls)
		}
		requireEqual(t, g, p, lp, "chain")
		if p.TotalDegree() > 24 {
			p, lp = One(), legacyConst(big.NewRat(1, 1))
		}
	}
}

// BenchmarkPolyMul compares the packed interned multiply against the
// preserved legacy string-keyed multiply on an ehrhart-sized workload.
func BenchmarkPolyMul(b *testing.B) {
	g := &pairGen{rng: rand.New(rand.NewSource(7)), vars: []string{"N", "M", "i", "j"}}
	p, lp := g.poly(8, 3)
	q, lq := g.poly(8, 3)
	b.Run("packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = p.Mul(q)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lp.mul(lq)
		}
	})
}
