// Package stress is a seedable differential stress harness for the
// collapsed-loop pipeline. It generates random affine nests —
// rectangular, triangular and shifted-triangular shapes like the
// paper's §VII kernels — and checks that every parallel execution
// (all four schedules plus the autotuned "auto" path, every rung of
// the unranker's precision ladder, with and without injected root
// faults) visits exactly the iteration set of plain sequential
// enumeration.
//
// The harness is the repository's strongest end-to-end oracle: it does
// not trust the ranking polynomial, the radical roots, the precision
// ladder or the scheduler individually, only the final visit sets,
// compared exactly.
package stress

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/unrank"
)

// Case is one generated nest together with the parameter binding the
// differential runs use.
type Case struct {
	Seed   int64
	Name   string
	Nest   *nest.Nest
	C      int // collapse depth (the full nest depth)
	Params map[string]int64
	Total  int64 // sequential iteration count at Params
}

// maxGenAttempts bounds the retries when a random shape turns out not
// to be collapsible (no convenient root, empty domain, …).
const maxGenAttempts = 64

// maxCaseTotal keeps generated domains small enough that a full
// schedule × tier sweep stays fast.
const maxCaseTotal = 4000

var indexNames = []string{"i", "j", "k"}

// NewCase deterministically generates a collapsible random nest from
// the seed: same seed, same case. It retries internally until the
// generated shape collapses cleanly and has a usable iteration count.
func NewCase(seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < maxGenAttempts; attempt++ {
		c, err := genCase(rng, seed)
		if err == nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("stress: seed %d produced no collapsible nest in %d attempts", seed, maxGenAttempts)
}

// genCase builds one random nest and validates it end to end:
// Collapse must succeed, the binding must be non-empty and modest, and
// the collapsed Total must equal the sequential enumeration count.
func genCase(rng *rand.Rand, seed int64) (*Case, error) {
	depth := 2 + rng.Intn(2) // 2 or 3
	shape := "rect"
	loops := make([]nest.Loop, depth)
	loops[0] = nest.L(indexNames[0], fmt.Sprint(rng.Intn(2)), upperExpr(rng, ""))
	for k := 1; k < depth; k++ {
		prev := indexNames[rng.Intn(k)] // any enclosing index
		switch rng.Intn(4) {
		case 0: // rectangular
			loops[k] = nest.L(indexNames[k], fmt.Sprint(rng.Intn(3)), upperExpr(rng, ""))
		case 1: // lower-triangular: i <= j <= N(+c)
			shape = "tri"
			loops[k] = nest.L(indexNames[k], prev, upperExpr(rng, ""))
		case 2: // upper-triangular: c <= j <= i(+c)
			shape = "tri"
			loops[k] = nest.L(indexNames[k], fmt.Sprint(rng.Intn(2)), upperExpr(rng, prev))
		default: // shifted triangular: i+c <= j <= N+c'
			shape = "shifted"
			loops[k] = nest.L(indexNames[k], fmt.Sprintf("%s+%d", prev, 1+rng.Intn(2)), upperExpr(rng, ""))
		}
	}
	n, err := nest.New([]string{"N"}, loops...)
	if err != nil {
		return nil, err
	}
	res, err := core.Collapse(n, depth, unrank.Options{})
	if err != nil {
		return nil, err
	}
	params := map[string]int64{"N": int64(6 + rng.Intn(8))}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return nil, err
	}
	total := b.Total()
	if total < 1 || total > maxCaseTotal {
		return nil, fmt.Errorf("stress: total %d out of band", total)
	}
	inst, err := n.Bind(params)
	if err != nil {
		return nil, err
	}
	if cnt := inst.Count(); cnt != total {
		return nil, fmt.Errorf("stress: collapsed total %d != enumerated count %d", total, cnt)
	}
	return &Case{
		Seed:   seed,
		Name:   fmt.Sprintf("seed%d-%s-d%d-N%d", seed, shape, depth, params["N"]),
		Nest:   n,
		C:      depth,
		Params: params,
		Total:  total,
	}, nil
}

// upperExpr returns an upper-bound expression: base+c, where base is
// "N" when empty.
func upperExpr(rng *rand.Rand, base string) string {
	if base == "" {
		base = "N"
	}
	if c := rng.Intn(3); c > 0 {
		return fmt.Sprintf("%s+%d", base, c)
	}
	return base
}

// Schedules is the worksharing sweep every case runs under: one of
// each OpenMP schedule kind, with deliberately awkward chunk sizes.
func Schedules() []omp.Schedule {
	return []omp.Schedule{
		{Kind: omp.Static},
		{Kind: omp.StaticChunk, Chunk: 7},
		{Kind: omp.Dynamic, Chunk: 5},
		{Kind: omp.Guided, Chunk: 3},
	}
}

// Tiers is the precision-ladder sweep: each run forces recovery to
// begin at one rung (TierTable recovers from precomputed breakpoint
// tables; TierExact degenerates to pure binary search).
func Tiers() []unrank.Tier {
	return []unrank.Tier{unrank.TierFloat64, unrank.TierPrec128, unrank.TierPrec256,
		unrank.TierTable, unrank.TierExact}
}

// Variant is one recovery configuration of the differential sweep.
type Variant struct {
	Name string
	Opts unrank.Options
}

// Variants is the recovery-configuration sweep: recovery forced to
// begin at each ladder rung, plus the pure breakpoint-table mode
// (ModeTable — no symbolic root selection at all, the same compile
// path CollapsedForAuto retries degree>4 nests on).
func Variants() []Variant {
	var vs []Variant
	for _, t := range Tiers() {
		vs = append(vs, Variant{Name: fmt.Sprintf("tier=%v", t), Opts: unrank.Options{StartTier: t}})
	}
	return append(vs, Variant{Name: "mode=table", Opts: unrank.Options{Mode: unrank.ModeTable}})
}

// RunStats aggregates a differential sweep.
type RunStats struct {
	Cases  int
	Runs   int // schedule × tier × fault-setting executions compared
	Unrank unrank.Stats
}

func (s RunStats) String() string {
	return fmt.Sprintf("%d cases, %d differential runs; %s", s.Cases, s.Runs, s.Unrank.String())
}

// faultPlan perturbs every closed-form root far beyond the exact ±1
// correction ladder, so the float64 tier provably mis-recovers and the
// big.Float rungs (which injection deliberately bypasses) must rescue
// every recovery.
func faultPlan() *faults.Plan {
	return &faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 {
			return x + complex(64.5, 0)
		},
	}
}

// RunCase runs the full differential sweep for one case: sequential
// enumeration is the truth; every schedule × ladder tier must visit
// exactly that set. When withFaults is set, an additional sweep runs
// with every float64 root evaluation perturbed beyond correction
// range, proving the ladder (not the fast path) carries the result.
// The fault plan is process-global: RunCase must not run concurrently
// with other fault-injecting code.
func RunCase(c *Case, threads int, withFaults bool) (RunStats, error) {
	var st RunStats
	truth, err := enumerate(c)
	if err != nil {
		return st, err
	}
	st.Cases = 1
	// Compile every recovery variant before any fault plan is active:
	// injection targets run-time recovery, not compile-time root
	// selection (whose sampling also evaluates the roots).
	variants := Variants()
	results := make([]*core.Result, len(variants))
	for i, v := range variants {
		res, err := core.Collapse(c.Nest, c.C, v.Opts)
		if err != nil {
			return st, fmt.Errorf("%s: collapse at %s: %w", c.Name, v.Name, err)
		}
		results[i] = res
	}
	// One tuner for the whole case: both sweeps share its plan cache, so
	// the fault-injected sweep exercises the cached-decision path.
	tuner := autotune.New(autotune.Options{MaxWorkers: threads})
	sweep := func() error {
		for i, v := range variants {
			res := results[i]
			for _, sched := range Schedules() {
				got, cs, err := runParallel(res, c.Params, threads, sched)
				if err != nil {
					return fmt.Errorf("%s: %v/%s: %w", c.Name, sched.Kind, v.Name, err)
				}
				if err := diffVisitSets(truth, got); err != nil {
					return fmt.Errorf("%s: %v/%s: %w", c.Name, sched.Kind, v.Name, err)
				}
				st.Runs++
				st.Unrank.Add(cs.Stats)

				got, rs, err := runParallelRanges(res, c.Params, threads, sched)
				if err != nil {
					return fmt.Errorf("%s: %v/%s (ranges): %w", c.Name, sched.Kind, v.Name, err)
				}
				if err := diffVisitSets(truth, got); err != nil {
					return fmt.Errorf("%s: %v/%s (ranges): %w", c.Name, sched.Kind, v.Name, err)
				}
				if rs.Iterations != c.Total {
					return fmt.Errorf("%s: %v/%s (ranges): engine covered %d iterations, want %d",
						c.Name, sched.Kind, v.Name, rs.Iterations, c.Total)
				}
				st.Runs++
			}

			// The tuned path (schedule "auto"): the planner picks its own
			// (schedule, chunk, workers) triple, so it runs once per
			// variant rather than once per schedule. The second sweep
			// (fault injection) recalls the plan from the first through
			// the tuner's cache — the cached-decision path is part of the
			// differential surface.
			got, cs, err := runTuned(tuner, res, c.Params)
			if err != nil {
				return fmt.Errorf("%s: auto/%s: %w", c.Name, v.Name, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				return fmt.Errorf("%s: auto/%s: %w", c.Name, v.Name, err)
			}
			st.Runs++
			st.Unrank.Add(cs.Stats)
		}
		return nil
	}
	if err := sweep(); err != nil {
		return st, err
	}
	if withFaults {
		restore := faults.Activate(faultPlan())
		err := sweep()
		restore()
		if err != nil {
			return st, fmt.Errorf("with injected root faults: %w", err)
		}
	}
	return st, nil
}

// RunSeeds generates and differentially tests one case per seed.
func RunSeeds(seeds []int64, threads int, withFaults bool) (RunStats, error) {
	var st RunStats
	for _, seed := range seeds {
		c, err := NewCase(seed)
		if err != nil {
			return st, err
		}
		cst, err := RunCase(c, threads, withFaults)
		st.Cases += cst.Cases
		st.Runs += cst.Runs
		st.Unrank.Add(cst.Unrank)
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// enumerate returns the sequential visit set in lexicographic order.
func enumerate(c *Case) ([][]int64, error) {
	inst, err := c.Nest.Bind(c.Params)
	if err != nil {
		return nil, err
	}
	var out [][]int64
	inst.Enumerate(func(idx []int64) bool {
		out = append(out, append([]int64(nil), idx...))
		return true
	})
	return out, nil
}

// runParallel executes the collapsed nest and collects the visit set
// (sorted lexicographically) plus the team's recovery statistics.
func runParallel(res *core.Result, params map[string]int64, threads int,
	sched omp.Schedule) ([][]int64, omp.CollapsedStats, error) {
	var mu sync.Mutex
	var got [][]int64
	cs, err := omp.RunCollapsedWithStats(res, params, threads, sched, func(tid int, idx []int64) {
		cp := append([]int64(nil), idx...)
		mu.Lock()
		got = append(got, cp)
		mu.Unlock()
	})
	if err != nil {
		return nil, cs, err
	}
	sort.Slice(got, func(a, b int) bool { return lexLess(got[a], got[b]) })
	return got, cs, nil
}

// runTuned executes the collapsed nest through the autotuned path
// (schedule "auto"): the tuner plans or recalls a (schedule, chunk,
// workers) triple, runs under it, and feeds the measurement back. Only
// the visit set is checked — whatever triple the planner picks must
// cover exactly the sequential iteration set.
func runTuned(tuner *autotune.Tuner, res *core.Result,
	params map[string]int64) ([][]int64, omp.CollapsedStats, error) {
	var mu sync.Mutex
	var got [][]int64
	run, err := tuner.CollapsedFor(context.Background(), res, params, func(tid int, idx []int64) {
		cp := append([]int64(nil), idx...)
		mu.Lock()
		got = append(got, cp)
		mu.Unlock()
	})
	if err != nil {
		return nil, run.Stats, err
	}
	sort.Slice(got, func(a, b int) bool { return lexLess(got[a], got[b]) })
	return got, run.Stats, nil
}

// runParallelRanges executes the collapsed nest through the
// range-batched engine (omp.CollapsedForRanges), expanding each flat
// innermost run back into tuples, and returns the sorted visit set plus
// the engine counters.
func runParallelRanges(res *core.Result, params map[string]int64, threads int,
	sched omp.Schedule) ([][]int64, core.RangeStats, error) {
	var mu sync.Mutex
	var got [][]int64
	rs, err := omp.CollapsedForRangesStats(res, params, threads, sched, nil,
		func(tid int, pc int64, prefix []int64, lo, hi int64) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				got = append(got, append(append([]int64(nil), prefix...), i))
			}
			mu.Unlock()
		})
	if err != nil {
		return nil, rs, err
	}
	sort.Slice(got, func(a, b int) bool { return lexLess(got[a], got[b]) })
	return got, rs, nil
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// diffVisitSets compares two lexicographically sorted visit sets
// exactly, reporting the first divergence.
func diffVisitSets(want, got [][]int64) error {
	if len(want) != len(got) {
		return fmt.Errorf("visited %d iterations, want %d", len(got), len(want))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("iteration %d: tuple width %d, want %d", i, len(got[i]), len(want[i]))
		}
		for k := range want[i] {
			if want[i][k] != got[i][k] {
				return fmt.Errorf("iteration %d: visited %v, want %v", i, got[i], want[i])
			}
		}
	}
	return nil
}
