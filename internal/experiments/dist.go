package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/unrank"
)

// DistReport is the BENCH_PR8.json document: shard-scaling throughput
// and recovery overhead of the fault-tolerant coordinator
// (internal/dist) over the collapsed pc-range. Like the other suites it
// carries the schema-v2 meta block and loads through internal/benchcmp,
// so `make distgate` can diff a fresh run against the committed
// baseline.
type DistReport struct {
	Suite string    `json:"suite"` // "dist"
	Meta  BenchMeta `json:"meta"`
	// Nest is the driven workload (a triangular 2-nest, the paper's
	// canonical non-rectangular shape).
	Nest string    `json:"nest"`
	Rows []DistRow `json:"rows"`
}

// DistRow is one scenario of the study.
type DistRow struct {
	// Scenario names the configuration: "clean/w=K" rows sweep the
	// executor count (shard-scaling throughput), "journal" adds the
	// fsynced checkpoint journal, "chaos-kill" crashes every 5th shard
	// attempt, and "resume" replays a half-complete journal and executes
	// only the uncovered intervals.
	Scenario string `json:"scenario"`
	Workers  int    `json:"workers"`
	Shards   int    `json:"shards"`
	Total    int64  `json:"total"`

	Seconds     float64 `json:"seconds"`
	MIterPerSec float64 `json:"miter_per_sec"`
	// OverheadPct is the slowdown versus the clean run at the same
	// worker count (journal fsyncs, crash recovery); 0 for the clean
	// rows themselves.
	OverheadPct float64 `json:"overhead_pct,omitempty"`

	// Recovery ledger of the run.
	LeaseExpiries   int64 `json:"lease_expiries,omitempty"`
	Retries         int64 `json:"retries,omitempty"`
	Splits          int64 `json:"splits,omitempty"`
	Duplicates      int64 `json:"duplicates,omitempty"`
	SpeculativeWins int64 `json:"speculative_wins,omitempty"`
	// Resumed is the iteration count inherited from the journal instead
	// of re-executed ("resume" scenario).
	Resumed int64 `json:"resumed,omitempty"`
	// BusyImbalance is max/mean of per-executor busy time (1 = perfect).
	BusyImbalance float64 `json:"busy_imbalance,omitempty"`
}

// DistOptions configure the study.
type DistOptions struct {
	// Quick shrinks the problem for CI smoke runs.
	Quick bool
	// N is the triangle parameter (total ≈ N²/2 iterations); 0 selects
	// 3000 (400 with Quick).
	N int64
	// Workers is the executor-count ladder; empty selects 1,2,4,...,
	// doubling up to GOMAXPROCS.
	Workers []int
}

func (o *DistOptions) fill() {
	if o.N <= 0 {
		o.N = 3000
		if o.Quick {
			o.N = 400
		}
	}
	if len(o.Workers) == 0 {
		// Doubling ladder up to GOMAXPROCS, but never shorter than
		// 1,2,4: executors are goroutines, so oversubscription still
		// measures coordination overhead on small hosts.
		max := runtime.GOMAXPROCS(0)
		if max < 4 {
			max = 4
		}
		for w := 1; w < max; w *= 2 {
			o.Workers = append(o.Workers, w)
		}
		o.Workers = append(o.Workers, max)
	}
}

// distBody is the measured per-iteration work: cheap enough that the
// run cost is dominated by the engine (recovery, leasing, commits) —
// the overheads the study is after.
func distBody(worker int, pc int64, idx []int64) uint64 {
	return uint64(pc) ^ uint64(idx[0])*1099511628211
}

// Dist runs the shard-scaling and recovery study and returns the
// BENCH_PR8 document.
func Dist(opts DistOptions) (*DistReport, error) {
	opts.fill()
	tri, err := nest.New([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	if err != nil {
		return nil, err
	}
	res, err := core.Collapse(tri, 2, unrank.Options{})
	if err != nil {
		return nil, err
	}
	params := map[string]int64{"N": opts.N}
	rep := &DistReport{
		Suite: "dist",
		Meta:  NewBenchMeta(),
		Nest:  strings.ReplaceAll(strings.TrimRight(tri.String(), "\n"), "\n", "; "),
	}

	maxW := opts.Workers[len(opts.Workers)-1]
	baseCfg := func(workers int) dist.Config {
		return dist.Config{Workers: workers, Shards: 8 * workers}
	}

	run := func(scenario string, cfg dist.Config, baseline float64) (*dist.Report, float64, error) {
		start := time.Now()
		r, err := dist.Run(context.Background(), res, params, cfg, distBody)
		sec := time.Since(start).Seconds()
		if err != nil {
			return nil, 0, fmt.Errorf("dist experiment %s: %w", scenario, err)
		}
		row := DistRow{
			Scenario: scenario, Workers: cfg.Workers, Shards: r.PlannedShards,
			Total: r.Total, Seconds: sec,
			MIterPerSec:   float64(r.Executed) / sec / 1e6,
			LeaseExpiries: r.LeaseExpiries, Retries: r.Retries, Splits: r.Splits,
			Duplicates: r.Duplicates, SpeculativeWins: r.SpeculativeWins,
			Resumed:       r.Resumed,
			BusyImbalance: r.Imbalance().BusyImbalance,
		}
		if baseline > 0 {
			row.OverheadPct = (sec - baseline) / baseline * 100
		}
		rep.Rows = append(rep.Rows, row)
		return r, sec, nil
	}

	// Shard-scaling ladder: clean runs across the worker counts.
	var cleanMax float64
	for _, w := range opts.Workers {
		_, sec, err := run(fmt.Sprintf("clean/w=%d", w), baseCfg(w), 0)
		if err != nil {
			return nil, err
		}
		if w == maxW {
			cleanMax = sec
		}
	}

	dir, err := os.MkdirTemp("", "distbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Journal overhead: same run, every commit fsynced.
	jcfg := baseCfg(maxW)
	jcfg.Journal = filepath.Join(dir, "journal.ckpt")
	if _, _, err := run("journal", jcfg, cleanMax); err != nil {
		return nil, err
	}

	// Crash chaos: every 5th shard attempt panics mid-shard; the ladder
	// retries. Overhead = price of re-executing crashed attempts.
	var attempts atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnShard: func(worker int, lo, hi int64) error {
			if attempts.Add(1)%5 == 0 {
				panic("bench: injected executor crash")
			}
			return nil
		},
	})
	ccfg := baseCfg(maxW)
	ccfg.MaxRetries = 8
	ccfg.Backoff = 100 * time.Microsecond
	_, _, cerr := run("chaos-kill", ccfg, cleanMax)
	restore()
	if cerr != nil {
		return nil, cerr
	}

	// Resume: crash the coordinator at ~50% coverage, then resume from
	// the journal and execute only the uncovered intervals.
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return nil, err
	}
	half := b.Total() / 2
	rcfg := baseCfg(maxW)
	rcfg.Journal = filepath.Join(dir, "resume.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	_, err = dist.Run(ctx, res, params, rcfg, func(worker int, pc int64, idx []int64) uint64 {
		if executed.Add(1) == half {
			cancel()
		}
		return distBody(worker, pc, idx)
	})
	cancel()
	if err == nil {
		return nil, fmt.Errorf("dist experiment resume: phase 1 finished despite mid-run cancel")
	} else if !errors.Is(err, faults.ErrCanceled) {
		return nil, fmt.Errorf("dist experiment resume phase 1: %w", err)
	}
	rcfg.Resume = true
	if _, _, err := run("resume", rcfg, 0); err != nil {
		return nil, err
	}
	return rep, nil
}

// RenderDist prints the study as an aligned table.
func RenderDist(rep *DistReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dist — sharded execution: scaling and recovery (%s)\n", rep.Nest)
	fmt.Fprintf(&b, "%-14s %7s %7s %10s %9s %11s %9s %7s %7s %8s %9s\n",
		"scenario", "workers", "shards", "total", "sec", "Miter/s", "over%", "retry", "lease", "dup", "resumed")
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-14s %7d %7d %10d %9.3f %11.2f %8.1f%% %7d %7d %8d %9d\n",
			r.Scenario, r.Workers, r.Shards, r.Total, r.Seconds, r.MIterPerSec,
			r.OverheadPct, r.Retries, r.LeaseExpiries, r.Duplicates, r.Resumed)
	}
	return b.String()
}
