package stress

import (
	"testing"

	"repro/internal/core"
	"repro/internal/omp"
	"repro/internal/unrank"
)

// FuzzStressNest drives the generator from arbitrary seeds and pushes
// each generated nest through the full precision ladder: recovery
// forced to start at every tier (float64, 128-bit, 256-bit, exact
// binary search) must visit exactly the sequential iteration set.
// Unlike FuzzRankUnrank (which fuzzes the C front end), this target
// fuzzes the numeric recovery engine over the space of collapsible
// shapes directly.
func FuzzStressNest(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := NewCase(seed)
		if err != nil {
			// Pathological seeds that never generate a collapsible
			// nest are uninteresting, not failures.
			t.Skip(err)
		}
		truth, err := enumerate(c)
		if err != nil {
			t.Fatalf("%s: enumerate: %v", c.Name, err)
		}
		for _, tier := range Tiers() {
			res, err := core.Collapse(c.Nest, c.C, unrank.Options{StartTier: tier})
			if err != nil {
				t.Fatalf("%s: collapse at %v: %v", c.Name, tier, err)
			}
			sched := omp.Schedule{Kind: omp.Dynamic, Chunk: 3}
			got, cs, err := runParallel(res, c.Params, 2, sched)
			if err != nil {
				t.Fatalf("%s at %v: %v", c.Name, tier, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				t.Fatalf("%s at %v: %v (stats: %s)", c.Name, tier, err, cs.Stats.String())
			}
			// The range-batched engine must visit the identical set; the
			// chunk size deliberately splits innermost runs.
			got, rs, err := runParallelRanges(res, c.Params, 2, sched)
			if err != nil {
				t.Fatalf("%s at %v (ranges): %v", c.Name, tier, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				t.Fatalf("%s at %v (ranges): %v (engine: %+v)", c.Name, tier, err, rs)
			}
		}
	})
}
