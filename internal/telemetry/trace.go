package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to an Event. Args are a
// slice (not a map) so event annotations keep a deterministic order in
// exports.
type Arg struct {
	Name  string
	Value int64
}

// Event is one completed span on the trace timeline: a named,
// categorised interval with a thread id and monotonic start/duration
// relative to the trace epoch.
type Event struct {
	Name  string
	Cat   string
	TID   int
	Start time.Duration
	Dur   time.Duration
	Args  []Arg
}

// Trace records events against a monotonic epoch (the wall time of its
// creation; Go's time package carries the monotonic clock through
// Since, so intervals are immune to wall-clock adjustments).
type Trace struct {
	epoch  time.Time
	mu     sync.Mutex
	events []Event
	// flight, when non-nil, receives a copy of every added event; with
	// ringOnly set the unbounded events slice stays empty and the ring
	// is the sole retention (see AttachFlight).
	flight   *FlightRecorder
	ringOnly bool
}

func newTrace() *Trace { return &Trace{epoch: time.Now()} }

// Now returns the monotonic offset since the trace epoch (0 on nil).
func (t *Trace) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Add appends a completed event, also teeing it into the attached
// flight recorder when one is present. No-op on a nil receiver.
func (t *Trace) Add(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	flight, ringOnly := t.flight, t.ringOnly
	if !ringOnly {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
	flight.Record(ev)
}

// Events returns a copy of the recorded events in append order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Span is an in-flight interval started by Trace.Start. It is a plain
// value (no allocation); an inert Span (zero value) records nothing.
type Span struct {
	t     *Trace
	name  string
	cat   string
	tid   int
	start time.Duration
}

// Start begins a span at the current monotonic offset.
func (t *Trace) Start(cat, name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: t.Now()}
}

// End completes the span, recording it with optional annotations.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	s.t.Add(Event{
		Name:  s.name,
		Cat:   s.cat,
		TID:   s.tid,
		Start: s.start,
		Dur:   s.t.Now() - s.start,
		Args:  args,
	})
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// complete events ("ph":"X") with microsecond timestamps.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serialises the recorded events as a Chrome
// trace-event JSON object, loadable in chrome://tracing and
// https://ui.perfetto.dev. Spans become complete ("X") events; the
// event category maps to the trace category, the span's thread id to
// the trace tid.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			PID:  1,
			TID:  ev.TID,
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]int64, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Name] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeTrace is the Registry-level convenience for
// Trace.WriteChromeTrace; on a nil registry it writes an empty trace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	return r.trace.WriteChromeTrace(w)
}
