package unrank

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

// TestVerifyCleanRun checks that with Verify on and no faults, every
// recovery is re-ranked exactly, nothing escalates, and the bijection
// still holds.
func TestVerifyCleanRun(t *testing.T) {
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm, Verify: true})
	b := u.MustBind(map[string]int64{"N": 30})
	checkBijection(t, b)
	s := b.Stats()
	if s.Verifies == 0 {
		t.Fatal("Verify enabled but no verifications recorded")
	}
	if s.Escalations != 0 {
		t.Fatalf("clean run escalated %d times", s.Escalations)
	}
}

// TestVerifyEscalatesOnCorruptedRecovery injects a fault that corrupts
// every closed-form-recovered index value after the exact correction
// (the correction would repair any mere root perturbation) and checks
// verified recovery detects each wrong tuple, escalates to exact binary
// search, and still produces the exact tuple for every pc.
func TestVerifyEscalatesOnCorruptedRecovery(t *testing.T) {
	u := MustNew(correlationNest(), Options{Mode: ModeClosedForm, Verify: true})
	restore := faults.Activate(&faults.Plan{
		PerturbLevel: func(level int, ik int64) int64 { return ik + 1 },
	})
	defer restore()
	b := u.MustBind(map[string]int64{"N": 25})
	inst := b.Instance()
	idx := make([]int64, inst.Depth())
	var pc int64
	inst.Enumerate(func(truth []int64) bool {
		pc++
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d) under corrupted recovery: %v", pc, err)
		}
		for q := range idx {
			if idx[q] != truth[q] {
				t.Fatalf("Unrank(%d) = %v, want %v (escalation failed)", pc, idx, truth)
			}
		}
		return true
	})
	s := b.Stats()
	if s.Escalations == 0 {
		t.Fatal("corrupted recovery never triggered an escalation")
	}
	t.Logf("recovered %d tuples exactly, %d verified, %d escalations", pc, s.Verifies, s.Escalations)
}

// TestPerturbedRootsStayExact shifts every float root evaluation by a
// full unit and checks recovery remains exact — with and without verify
// mode — because the exact integer correction (or the binary-search
// fallback when the correction budget is exceeded) repairs the noise.
func TestPerturbedRootsStayExact(t *testing.T) {
	for _, verify := range []bool{false, true} {
		// Build before activating: the perturbation would otherwise defeat
		// root selection itself (see TestNoConvenientRootClassified).
		u := MustNew(correlationNest(), Options{Mode: ModeClosedForm, Verify: verify})
		restore := faults.Activate(&faults.Plan{
			PerturbRoot: func(level int, x complex128) complex128 { return x + 1.25 },
		})
		b := u.MustBind(map[string]int64{"N": 20})
		checkBijection(t, b)
		if s := b.Stats(); s.Corrections == 0 && s.Fallbacks == 0 {
			t.Errorf("verify=%v: perturbation repaired without corrections or fallbacks?", verify)
		}
		restore()
	}
}

// TestNoConvenientRootClassified checks root-selection failure carries
// the typed applicability sentinel: a perturbation large enough that no
// candidate reproduces the ground truth on any validation sample.
func TestNoConvenientRootClassified(t *testing.T) {
	restore := faults.Activate(&faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 { return x + 100 },
	})
	defer restore()
	_, err := New(correlationNest(), Options{Mode: ModeClosedForm})
	if err == nil {
		t.Fatal("root selection succeeded under a +100 perturbation")
	}
	if !errors.Is(err, faults.ErrNoConvenientRoot) {
		t.Fatalf("err = %v, want ErrNoConvenientRoot in the chain", err)
	}
}
