package dist

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestIntervalSetModel drives IntervalSet against a naive bitmap model
// with randomized adds and checks Covered, Overlap, Contains and
// Complement agree after every step.
func TestIntervalSetModel(t *testing.T) {
	const domain = 200
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var s IntervalSet
		model := make([]bool, domain+2) // 1-based
		for step := 0; step < 40; step++ {
			lo := int64(1 + rng.Intn(domain))
			hi := lo + int64(rng.Intn(12))
			if hi > domain {
				hi = domain
			}
			iv := Interval{Lo: lo, Hi: hi}

			wantOv := int64(0)
			for pc := lo; pc <= hi; pc++ {
				if model[pc] {
					wantOv++
				}
			}
			if got := s.Overlap(iv); got != wantOv {
				t.Fatalf("trial %d step %d: Overlap(%+v) = %d, want %d", trial, step, iv, got, wantOv)
			}
			if got, want := s.Contains(iv), wantOv == iv.Len(); got != want {
				t.Fatalf("trial %d step %d: Contains(%+v) = %v, want %v", trial, step, iv, got, want)
			}

			added := s.Add(iv)
			if want := iv.Len() - wantOv; added != want {
				t.Fatalf("trial %d step %d: Add(%+v) = %d, want %d", trial, step, iv, added, want)
			}
			for pc := lo; pc <= hi; pc++ {
				model[pc] = true
			}

			var covered int64
			for pc := int64(1); pc <= domain; pc++ {
				if model[pc] {
					covered++
				}
			}
			if s.Covered() != covered {
				t.Fatalf("trial %d step %d: Covered = %d, want %d", trial, step, s.Covered(), covered)
			}

			// Complement over the full domain must be exactly the unset
			// ranks, as maximal intervals.
			var want []Interval
			for pc := int64(1); pc <= domain; pc++ {
				if model[pc] {
					continue
				}
				if n := len(want); n > 0 && want[n-1].Hi == pc-1 {
					want[n-1].Hi = pc
				} else {
					want = append(want, Interval{Lo: pc, Hi: pc})
				}
			}
			if got := s.Complement(1, domain); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d step %d: Complement = %v, want %v", trial, step, got, want)
			}

			// The representation must stay sorted, disjoint and
			// non-adjacent (fully coalesced).
			ivs := s.Intervals()
			for i := 1; i < len(ivs); i++ {
				if ivs[i].Lo <= ivs[i-1].Hi+1 {
					t.Fatalf("trial %d step %d: intervals not coalesced: %v", trial, step, ivs)
				}
			}
		}
	}
}

func TestIntervalSetCoalesce(t *testing.T) {
	var s IntervalSet
	s.Add(Interval{Lo: 1, Hi: 3})
	s.Add(Interval{Lo: 7, Hi: 9})
	if got := s.Add(Interval{Lo: 4, Hi: 6}); got != 3 {
		t.Fatalf("bridging add = %d, want 3", got)
	}
	if ivs := s.Intervals(); len(ivs) != 1 || ivs[0] != (Interval{Lo: 1, Hi: 9}) {
		t.Fatalf("adjacent intervals did not coalesce: %v", ivs)
	}
	if got := s.Add(Interval{Lo: 2, Hi: 8}); got != 0 {
		t.Fatalf("duplicate add = %d, want 0", got)
	}
	if s.Covered() != 9 {
		t.Fatalf("Covered = %d, want 9", s.Covered())
	}
}

func TestComplementEdges(t *testing.T) {
	var s IntervalSet
	if got := s.Complement(1, 10); len(got) != 1 || got[0] != (Interval{Lo: 1, Hi: 10}) {
		t.Fatalf("empty-set complement = %v", got)
	}
	s.Add(Interval{Lo: 1, Hi: 10})
	if got := s.Complement(1, 10); got != nil {
		t.Fatalf("full-set complement = %v, want nil", got)
	}
	s = IntervalSet{}
	s.Add(Interval{Lo: 5, Hi: 5})
	want := []Interval{{Lo: 1, Hi: 4}, {Lo: 6, Hi: 10}}
	if got := s.Complement(1, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("punctured complement = %v, want %v", got, want)
	}
}
