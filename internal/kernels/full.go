package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// Fully collapsed variants of covariance and symm, used by the Fig. 10
// overhead experiment: the paper reports the largest control overheads
// "when all the loops of the target loop nest have been collapsed (for
// covariance and symm)". Collapsing the k reduction is only meaningful
// for the *serial* overhead protocol (pc runs in order, so the
// accumulation order is preserved); parallel execution would need an
// OpenMP-style reduction clause, which these variants do not provide.
// ---------------------------------------------------------------------

// CovarianceFull collapses all three covariance loops (Fig. 10 only).
var CovarianceFull = register(&Kernel{
	Name: "covariance_full",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "N"),
		nest.L("k", "0", "N"),
	),
	Collapse:    3,
	BenchParams: map[string]int64{"N": 500},
	TestParams:  map[string]int64{"N": 40},
	New:         func(p map[string]int64) Instance { return &covFullInst{corrInst: *newCorrInst(p["N"], true)} },
})

type covFullInst struct{ corrInst }

func (in *covFullInst) RunCollapsed(idx []int64) {
	i, j, k := idx[0], idx[1], idx[2]
	n := in.n
	in.a[i*n+j] += in.b[k*n+i] * in.c[k*n+j]
	if k == n-1 && i != j {
		in.a[j*n+i] = in.a[i*n+j]
	}
}

func (in *covFullInst) WorkPerCollapsed([]int64) float64 { return 1 }

// RunCollapsedRange fuses body and 3-level incrementation (§V).
func (in *covFullInst) RunCollapsedRange(start []int64, count int64) {
	i, j, k := start[0], start[1], start[2]
	n := in.n
	a, b, c := in.a, in.b, in.c
	for q := int64(0); q < count; q++ {
		a[i*n+j] += b[k*n+i] * c[k*n+j]
		if k == n-1 && i != j {
			a[j*n+i] = a[i*n+j]
		}
		k++
		if k >= n {
			j++
			if j >= n {
				i++
				j = i
			}
			k = 0
		}
	}
}

// SymmFull collapses all three symm loops (Fig. 10 only).
var SymmFull = register(&Kernel{
	Name: "symm_full",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "N"),
	),
	Collapse:    3,
	BenchParams: map[string]int64{"N": 400},
	TestParams:  map[string]int64{"N": 32},
	New:         func(p map[string]int64) Instance { return &symmFullInst{symmInst: *newSymmInst(p["N"])} },
})

type symmFullInst struct{ symmInst }

func (in *symmFullInst) RunCollapsed(idx []int64) {
	i, j, k := idx[0], idx[1], idx[2]
	n := in.n
	if k == 0 {
		// Fold the beta term in once, at the first reduction step.
		in.c[i*n+j] = 0.5 * in.c[i*n+j]
	}
	var av float64
	if k <= i {
		av = in.a[i*n+k]
	} else {
		av = in.a[k*n+i]
	}
	in.c[i*n+j] += 1.5 * av * in.b[k*n+j]
}

func (in *symmFullInst) WorkPerCollapsed([]int64) float64 { return 1 }

// RunCollapsedRange fuses body and 3-level incrementation (§V).
func (in *symmFullInst) RunCollapsedRange(start []int64, count int64) {
	i, j, k := start[0], start[1], start[2]
	n := in.n
	a, b, c := in.a, in.b, in.c
	for q := int64(0); q < count; q++ {
		if k == 0 {
			c[i*n+j] = 0.5 * c[i*n+j]
		}
		var av float64
		if k <= i {
			av = a[i*n+k]
		} else {
			av = a[k*n+i]
		}
		c[i*n+j] += 1.5 * av * b[k*n+j]
		k++
		if k >= n {
			j++
			if j > i {
				i++
				j = 0
			}
			k = 0
		}
	}
}
