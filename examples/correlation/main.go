// The paper's motivating example end-to-end (§II): the correlation
// kernel is parallelized three ways — outer loop with schedule(static),
// outer loop with schedule(dynamic), and collapsed with schedule(static)
// — results are compared for exactness, and the generated C code of
// Figs. 3 and 4 is printed.
//
//	go run ./examples/correlation [-N 500] [-threads 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	nonrect "repro"
	"repro/internal/kernels"
	"repro/internal/omp"
)

func main() {
	N := flag.Int64("N", 500, "matrix dimension")
	threads := flag.Int("threads", 8, "goroutine team size")
	flag.Parse()

	k := kernels.Correlation
	params := map[string]int64{"N": *N}
	inst := k.New(params)

	res, err := nonrect.Collapse(k.Nest, k.Collapse)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== generated collapsed code, per-iteration recovery (paper Fig. 3) ===")
	src, err := nonrect.EmitC(res, nonrect.CodegenOptions{
		Scheme: nonrect.SchemePerIteration,
		Body:   "a[i][j] += b[k][i]*c[k][j];\na[j][i] = a[i][j];",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(src)

	fmt.Println("=== generated collapsed code, first-iteration recovery (paper Fig. 4) ===")
	src, err = nonrect.EmitC(res, nonrect.CodegenOptions{
		Scheme: nonrect.SchemeFirstIteration,
		Body:   "a[i][j] += b[k][i]*c[k][j];\na[j][i] = a[i][j];",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(src)

	run := func(name string, f func() error) float64 {
		inst.Reset()
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		sec := time.Since(start).Seconds()
		fmt.Printf("%-28s %8.4fs  checksum %.6e\n", name, sec, inst.Checksum())
		return sec
	}

	fmt.Printf("=== execution, N=%d, %d goroutines ===\n", *N, *threads)
	run("sequential", func() error { kernels.RunSeq(inst); return nil })
	run("outer schedule(static)", func() error {
		kernels.RunOuterParallel(inst, *threads, omp.Schedule{Kind: omp.Static})
		return nil
	})
	run("outer schedule(dynamic)", func() error {
		kernels.RunOuterParallel(inst, *threads, omp.Schedule{Kind: omp.Dynamic})
		return nil
	})
	run("collapsed schedule(static)", func() error {
		return kernels.RunCollapsedParallel(k, inst, res, params, *threads, omp.Schedule{Kind: omp.Static})
	})
	fmt.Println("\n(wall-clock speedups require as many cores as goroutines;")
	fmt.Println(" the checksums prove all variants compute identical results)")
}
