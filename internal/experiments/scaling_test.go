package experiments

import (
	"strings"
	"testing"
)

func TestScalingQuickStructure(t *testing.T) {
	rows, err := Scaling(ScalingOptions{Quick: true, Kernels: []string{"correlation"}, Threads: []int{2, 8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Makespans must be non-increasing in P for every strategy.
	for i := 1; i < len(rows); i++ {
		if rows[i].CollapsedSec > rows[i-1].CollapsedSec*1.0001 {
			t.Errorf("collapsed makespan increased with threads: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].StaticSec > rows[i-1].StaticSec*1.0001 {
			t.Errorf("static makespan increased with threads: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	out := RenderScaling(rows)
	if !strings.Contains(out, "threads") || !strings.Contains(out, "speedup") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

// TestScalingBenchSaturation asserts the §II scalability claim at bench
// size: for the triangular correlation kernel, outer-static saturates
// (bounded below by the heaviest outer row) while collapsed-static keeps
// scaling, so the gain grows with the thread count.
func TestScalingBenchSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-size experiment skipped in -short mode")
	}
	rows, err := Scaling(ScalingOptions{Kernels: []string{"correlation"}, Threads: []int{4, 48}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	p4, p48 := rows[0], rows[1]
	if p48.GainVsStatic <= p4.GainVsStatic {
		t.Errorf("gain did not grow with threads: P=4 %.3f vs P=48 %.3f",
			p4.GainVsStatic, p48.GainVsStatic)
	}
	// At P=48 static is limited by the heaviest row: speedup(static)
	// stays far below 48 while collapsed exceeds it substantially.
	if p48.SpeedupCollapsed < 24 {
		t.Errorf("collapsed speedup at P=48 only %.1fx", p48.SpeedupCollapsed)
	}
}

func TestScalingUnknownKernel(t *testing.T) {
	if _, err := Scaling(ScalingOptions{Kernels: []string{"nope"}}); err == nil {
		t.Error("unknown kernel accepted")
	}
}
