package kernels

import (
	"math"
	"testing"
)

// The fully collapsed Fig. 10 variants accumulate the k reduction one
// step per collapsed iteration, which reorders floating-point additions
// relative to the reference cell computation; results agree to rounding.
func TestFullCollapseVariantsMatchWithinTolerance(t *testing.T) {
	cases := []struct {
		full *Kernel
		base *Kernel
	}{
		{CovarianceFull, Covariance},
		{SymmFull, Symm},
	}
	for _, c := range cases {
		p := c.full.TestParams
		fi := c.full.New(p)
		bi := c.base.New(p)
		RunSeq(bi)
		want := bi.Checksum()

		res, err := c.full.Collapsed()
		if err != nil {
			t.Fatalf("%s: %v", c.full.Name, err)
		}
		if res.C != 3 {
			t.Fatalf("%s: collapse = %d, want 3", c.full.Name, res.C)
		}
		if err := RunCollapsedSerialChunks(c.full, fi, res, p, 12); err != nil {
			t.Fatalf("%s: %v", c.full.Name, err)
		}
		got := fi.Checksum()
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-9 {
			t.Errorf("%s: checksum %v vs base %v (rel err %g)", c.full.Name, got, want, rel)
		}
	}
}

// The full variants' collapsed spaces must match brute-force counts of
// their 3-deep nests.
func TestFullCollapseTotals(t *testing.T) {
	for _, k := range []*Kernel{CovarianceFull, SymmFull} {
		res, err := k.Collapsed()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b, err := res.Unranker.Bind(k.NestParams(k.TestParams))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got, want := b.Total(), b.Instance().Count(); got != want {
			t.Errorf("%s: Total %d != %d", k.Name, got, want)
		}
	}
}
