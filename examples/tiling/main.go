// Collapsing a triangular *tile space* — the paper's §VII motivation:
// after loop tiling (Pluto --tile), incomplete tiles make even the tile
// loops non-rectangular, so OpenMP cannot collapse them and static
// scheduling of the outer tile loop is badly imbalanced. This example
// tiles the correlation triangle, collapses the two tile loops, shows
// the per-thread tile counts with and without collapsing, and verifies
// the computation.
//
//	go run ./examples/tiling [-NT 24] [-T 16] [-threads 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	nonrect "repro"
	"repro/internal/schedsim"
)

func main() {
	NT := flag.Int64("NT", 24, "tiles per dimension")
	T := flag.Int64("T", 16, "tile size")
	threads := flag.Int("threads", 12, "thread count")
	flag.Parse()

	// Tile space of a lower-triangular computation: jt = it..NT-1.
	tiles := nonrect.MustNewNest([]string{"NT"},
		nonrect.L("it", "0", "NT"),
		nonrect.L("jt", "it", "NT"),
	)
	res, err := nonrect.Collapse(tiles, 2)
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]int64{"NT": *NT}
	fmt.Printf("tile space: %d x %d triangular, %s = %d tiles\n",
		*NT, *NT, res.Total, (*NT)*(*NT+1)/2)

	// Tile weights: off-diagonal tiles hold T^2 points, diagonal tiles
	// T(T+1)/2 (incomplete). Compare per-thread loads.
	weight := func(it, jt int64) float64 {
		if jt > it {
			return float64(*T * *T)
		}
		return float64(*T * (*T + 1) / 2)
	}
	outer := make([]float64, *NT)
	for it := int64(0); it < *NT; it++ {
		for jt := it; jt < *NT; jt++ {
			outer[it] += weight(it, jt)
		}
	}
	var collapsed []float64
	b, err := res.Unranker.Bind(params)
	if err != nil {
		log.Fatal(err)
	}
	idx := make([]int64, 2)
	for pc := int64(1); pc <= b.Total(); pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			log.Fatal(err)
		}
		collapsed = append(collapsed, weight(idx[0], idx[1]))
	}

	fmt.Printf("\nper-thread load (points), %d threads:\n", *threads)
	outerLoads := schedsim.StaticLoads(outer, *threads)
	collLoads := schedsim.StaticLoads(collapsed, *threads)
	fmt.Printf("%8s %18s %18s\n", "thread", "outer static", "collapsed static")
	for t := 0; t < *threads; t++ {
		fmt.Printf("%8d %18.0f %18.0f\n", t, outerLoads[t], collLoads[t])
	}
	fmt.Printf("%8s %18.0f %18.0f   (max = makespan)\n", "max",
		maxOf(outerLoads), maxOf(collLoads))
	fmt.Printf("imbalance (max/mean): outer %.2fx, collapsed %.2fx\n",
		maxOf(outerLoads)/mean(outerLoads), maxOf(collLoads)/mean(collLoads))

	// Run the collapsed tile loop for real: each tile sums its points.
	var points atomic.Int64
	err = nonrect.CollapsedFor(res, params, *threads, nonrect.Schedule{Kind: nonrect.Static},
		func(tid int, idx []int64) {
			it, jt := idx[0], idx[1]
			// Count the (i, j) points of this tile with j >= i.
			var n int64
			for i := it * *T; i < (it+1)**T; i++ {
				jlo := jt * *T
				if i > jlo {
					jlo = i
				}
				n += (jt+1)**T - jlo
			}
			points.Add(n)
		})
	if err != nil {
		log.Fatal(err)
	}
	N := *NT * *T
	want := N * (N + 1) / 2
	fmt.Printf("\ncollapsed tile execution covered %d points; triangle has %d; match = %v\n",
		points.Load(), want, points.Load() == want)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
