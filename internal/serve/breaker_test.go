package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testBreaker(threshold int, cooldown time.Duration, clk *fakeClock) *compileBreaker {
	b := newCompileBreaker(threshold, cooldown, 0, nil, nil)
	b.now = clk.now
	return b
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(3, time.Minute, clk)
	boom := errors.New("degree too high")
	for i := 0; i < 2; i++ {
		if err := b.admit("sig"); err != nil {
			t.Fatalf("admit %d below threshold: %v", i, err)
		}
		b.record("sig", true, boom)
	}
	// Third consecutive failure trips.
	if err := b.admit("sig"); err != nil {
		t.Fatalf("admit at threshold-1 failures: %v", err)
	}
	b.record("sig", true, boom)
	err := b.admit("sig")
	var bo *errBreakerOpen
	if !errors.As(err, &bo) {
		t.Fatalf("admit after trip = %v, want errBreakerOpen", err)
	}
	// The fast rejection reports the original failure.
	if !errors.Is(err, boom) {
		t.Fatalf("open-circuit error does not wrap the tripping failure: %v", err)
	}
	if n := b.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(3, time.Minute, clk)
	boom := errors.New("boom")
	b.record("sig", true, boom)
	b.record("sig", true, boom)
	b.record("sig", false, nil) // success wipes the streak
	b.record("sig", true, boom)
	b.record("sig", true, boom)
	if err := b.admit("sig"); err != nil {
		t.Fatalf("non-consecutive failures tripped the circuit: %v", err)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(1, time.Minute, clk)
	boom := errors.New("boom")
	b.record("sig", true, boom) // threshold 1: open immediately
	if err := b.admit("sig"); err == nil {
		t.Fatalf("open circuit admitted")
	}

	clk.advance(61 * time.Second)
	// First caller after cooldown is the probe; the second keeps failing
	// fast while the probe is in flight.
	if err := b.admit("sig"); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.admit("sig"); err == nil {
		t.Fatalf("second caller admitted while probe in flight")
	}

	// Probe success closes the circuit for everyone.
	b.record("sig", false, nil)
	if err := b.admit("sig"); err != nil {
		t.Fatalf("closed circuit rejected: %v", err)
	}
	if n := b.openCount(); n != 0 {
		t.Fatalf("openCount after close = %d, want 0", n)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(1, time.Minute, clk)
	boom := errors.New("boom")
	b.record("sig", true, boom)
	clk.advance(61 * time.Second)
	if err := b.admit("sig"); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.record("sig", true, boom)
	// Re-opened: fast-fail resumes for a fresh cooldown.
	if err := b.admit("sig"); err == nil {
		t.Fatalf("re-opened circuit admitted")
	}
	clk.advance(61 * time.Second)
	if err := b.admit("sig"); err != nil {
		t.Fatalf("second probe after re-open rejected: %v", err)
	}
}

// TestBreakerClearProbeReleasesWithoutResolving pins the transient-error
// path: a probe hitting a transient (non-applicability) failure must
// release the probe slot so the next caller can probe, without either
// closing or re-opening the circuit.
func TestBreakerClearProbeReleasesWithoutResolving(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(1, time.Minute, clk)
	b.record("sig", true, errors.New("boom"))
	clk.advance(61 * time.Second)
	if err := b.admit("sig"); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.clearProbe("sig")
	// The slot is free again; the circuit is still not closed (a fresh
	// success is required for that), so this admit is the next probe.
	if err := b.admit("sig"); err != nil {
		t.Fatalf("probe after clearProbe rejected: %v", err)
	}
	if n := b.openCount(); n == 0 {
		t.Fatalf("clearProbe resolved the circuit (openCount 0)")
	}
}

func TestBreakerDisabled(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(-1, time.Minute, clk)
	for i := 0; i < 10; i++ {
		b.record("sig", true, errors.New("boom"))
	}
	if err := b.admit("sig"); err != nil {
		t.Fatalf("disabled breaker rejected: %v", err)
	}
}

// TestBreakerBoundedKeys checks the map bound: adversary-controlled
// signatures cannot grow the breaker without limit — and that hitting
// the bound is observable: every eviction increments
// serve.breaker_evictions, and the first one logs a warning exactly
// once (the cap used to cycle silently).
func TestBreakerBoundedKeys(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.New()
	logged := 0
	logf := func(format string, args ...any) { logged++ }
	b := newCompileBreaker(1, time.Minute, 8, reg, logf)
	b.now = clk.now
	for i := 0; i < 100; i++ {
		b.record(string(rune('a'+i%26))+string(rune('0'+i/26)), true, errors.New("boom"))
	}
	b.mu.Lock()
	n := len(b.entries)
	b.mu.Unlock()
	if n > 8 {
		t.Fatalf("breaker holds %d keys, bound is 8", n)
	}
	// 100 distinct signatures into 8 slots: the 9th and later insertions
	// each evicted one resident entry.
	if got := reg.Snapshot().Counters["serve.breaker_evictions"]; got != 100-8 {
		t.Fatalf("serve.breaker_evictions = %d, want %d", got, 100-8)
	}
	if logged != 1 {
		t.Fatalf("eviction warning logged %d times, want exactly once", logged)
	}
}
