// Package telemetry is a zero-dependency metrics-and-tracing substrate
// for the collapsing pipeline and the parallel runtime. It provides
// atomic counters and gauges, fixed-bucket latency histograms, and a
// span/event recorder with monotonic timestamps, all gathered in a
// Registry that snapshots to deterministic JSON, renders human-readable
// reports, and exports Chrome trace-event files viewable in
// about:tracing / Perfetto.
//
// Everything is nil-safe: every method on a nil *Registry, *Counter,
// *Gauge, *Histogram or *Trace is a no-op, so instrumented code paths
// can be written unconditionally and cost nothing (no allocation, one
// predictable branch) when telemetry is disabled. Each goroutine may
// use the shared handles concurrently; counters, gauges and histograms
// are lock-free, the trace appends under a mutex (chunk granularity, so
// contention is negligible compared to the work being traced).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative-style histogram. An
// observation v falls in bucket i when v <= Bounds[i] (the first such
// i); observations above the last bound fall in the implicit +Inf
// overflow bucket. Observe is lock-free (atomic adds plus a CAS loop
// for the floating-point sum).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// DefLatencyBuckets are default bucket upper bounds for durations in
// seconds: 100 ns … 10 s, roughly quarter-decade spaced.
var DefLatencyBuckets = []float64{
	1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// bucketIndex returns the bucket index for v: the first i with
// v <= bounds[i], or len(bounds) for the overflow bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket counts; the last entry is the
// +Inf overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// snapshot freezes an internally consistent view under concurrent
// Observes. The count, sum and per-bucket counters are independent
// atomics (Observe is lock-free), so reading them separately can
// produce a view where Count != Σ Counts — which breaks the OpenMetrics
// invariant x_count == x_bucket{le="+Inf"} when a scrape races a
// writer. The snapshot therefore derives Count from a single read of
// the bucket counts; Sum may lag by the in-flight observations, which
// is harmless (monotone within one scrape).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.Bounds(),
		Sum:    h.Sum(),
		Counts: h.BucketCounts(),
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// Registry names and owns a set of metrics plus one Trace. A nil
// *Registry is the disabled state: every accessor returns a nil handle
// whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    *Trace
}

// New creates an enabled Registry with a fresh trace epoch.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		trace:    newTrace(),
	}
}

// Counter returns (creating if needed) the named counter; nil when the
// registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil when the
// registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket bounds; nil when the registry is nil. Bounds are only
// consulted on first creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Trace returns the registry's span/event recorder; nil when the
// registry is nil.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// StartSpan begins a named span on the registry's trace. The returned
// Span is a value; call End (optionally with args) to record it. On a
// nil registry the span is inert.
func (r *Registry) StartSpan(cat, name string, tid int) Span {
	if r == nil {
		return Span{}
	}
	return r.trace.Start(cat, name, tid)
}
