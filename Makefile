# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check cover bench bench-json figures ablation scaling fuzz stress clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector packages: everything concurrent (telemetry counters, the
# omp runtime, kernels, the public API) plus the fault-tolerance layers
# (fault injection registry, verified recovery) whose tests exercise
# panic capture, cancellation and escalation under load, and the core
# package whose cache-contention test hammers the sharded CollapseCache
# from concurrent goroutines.
RACE_PKGS = ./internal/telemetry/ ./internal/omp/ ./internal/kernels/ ./internal/faults/ ./internal/unrank/ ./internal/stress/ ./internal/core/ .

race:
	$(GO) test -race $(RACE_PKGS)

# Full pre-merge gate: formatting, vet, the whole suite, the
# differential stress harness, a smoke pass of the overhead benchmark
# (small sizes, one rep — catches suite bitrot, not for numbers), a
# short fuzz pass over every fuzz target, and the race detector over the
# concurrent packages.
check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race $(RACE_PKGS)
	$(MAKE) stress
	$(GO) run ./cmd/benchfig -fig overhead -quick -reps 1 -json .bench_smoke.json && rm -f .bench_smoke.json
	$(MAKE) fuzz FUZZTIME=5s

# Differential stress soak: seedable random nests through every
# schedule and every precision-ladder tier, with fault injection,
# diffing visit sets against sequential enumeration.
STRESS_SEEDS ?= 12

stress:
	$(GO) run ./cmd/stresstool -seeds $(STRESS_SEEDS) -faults

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable engine overhead report (fixed protocol: bench sizes,
# best of 3 reps, 1 thread): original nest vs per-iteration vs
# range-batched vs recover-every, per kernel × schedule. The compile
# suite records the compile-path throughput (cold serial vs parallel
# fan-out vs cached) per kernel.
bench-json:
	$(GO) run ./cmd/benchfig -fig overhead -reps 3 -json BENCH_PR4.json
	$(GO) run ./cmd/benchfig -fig compile -reps 3 -json BENCH_PR5.json

# Regenerate the paper's figures (EXPERIMENTS.md documents the recorded runs).
figures:
	$(GO) run ./cmd/benchfig -fig all

ablation:
	$(GO) run ./cmd/benchfig -fig ablation

scaling:
	$(GO) run ./cmd/benchfig -fig scaling

# Short fuzzing sessions over every fuzz target: the two parsers, the
# poly compiler, the whole-pipeline rank/unrank round trip, the
# generated-nest precision-ladder differential, and the cache signature's
# alpha-renaming invariance.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/poly/
	$(GO) test -fuzz=FuzzCompile -fuzztime=$(FUZZTIME) ./internal/poly/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/cparse/
	$(GO) test -fuzz=FuzzRankUnrank -fuzztime=$(FUZZTIME) .
	$(GO) test -fuzz=FuzzStressNest -fuzztime=$(FUZZTIME) ./internal/stress/
	$(GO) test -fuzz=FuzzNestSignature -fuzztime=$(FUZZTIME) ./internal/core/

clean:
	$(GO) clean ./...
