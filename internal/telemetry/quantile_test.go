package telemetry

import (
	"math"
	"strings"
	"testing"
)

// quantHist builds a snapshot directly so tests control bucket
// contents exactly.
func quantHist(bounds []float64, counts []int64) HistogramSnapshot {
	var total int64
	for _, c := range counts {
		total += c
	}
	return HistogramSnapshot{Bounds: bounds, Counts: counts, Count: total}
}

func TestQuantileInterpolation(t *testing.T) {
	// 100 observations uniform in one bucket (1,2]: the q-quantile
	// interpolates linearly across the bucket.
	h := quantHist([]float64{1, 2, 4}, []int64{0, 100, 0, 0})
	cases := []struct{ q, want float64 }{
		{0.0, 1.0},
		{0.5, 1.5},
		{0.95, 1.95},
		{1.0, 2.0},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 in (0,1], 30 in (1,2], 20 in (2,4].
	h := quantHist([]float64{1, 2, 4}, []int64{50, 30, 20, 0})
	cases := []struct{ q, want float64 }{
		{0.5, 1.0},  // rank 50: exactly the first boundary
		{0.65, 1.5}, // rank 65 → 15/30 into (1,2]
		{0.8, 2.0},  // rank 80: exactly the second boundary
		{0.9, 3.0},  // rank 90 → 10/20 into (2,4]
		{0.95, 3.5}, // rank 95 → 15/20 into (2,4]
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	h := quantHist([]float64{8}, []int64{4, 0})
	if got := h.Quantile(0.5); math.Abs(got-4) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 4 (midpoint of [0,8])", got)
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	h := quantHist([]float64{1, 2}, []int64{1, 1, 8})
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %g, want clamp to last bound 2", got)
	}
}

func TestQuantileEmptyAndClamping(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	h := quantHist([]float64{1}, []int64{10, 0})
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("q<0 not clamped: %g vs %g", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("q>1 not clamped: %g vs %g", got, h.Quantile(1))
	}
}

func TestQuantilesBatch(t *testing.T) {
	h := quantHist([]float64{1, 2, 4}, []int64{50, 30, 20, 0})
	qs := h.Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("got %d results", len(qs))
	}
	for i, q := range []float64{0.5, 0.95, 0.99} {
		if qs[i] != h.Quantile(q) {
			t.Errorf("Quantiles[%d] = %g, want %g", i, qs[i], h.Quantile(q))
		}
	}
}

// TestReportShowsQuantiles checks the -stats surface: the histogram
// section of Report now carries p50/p95/p99.
func TestReportShowsQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("lat", nil)
	for i := 0; i < 100; i++ {
		h.Observe(1e-4)
	}
	rep := r.Report()
	if !strings.Contains(rep, "p50") || !strings.Contains(rep, "p95") || !strings.Contains(rep, "p99") {
		t.Errorf("report missing quantile columns:\n%s", rep)
	}
}
