package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// captureF redirects stdout around an arbitrary function (captureRun
// only wraps a plain run(o) call).
func captureF(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

// TestServeFlag runs a quick figure with -serve and checks the plane
// answers with a valid exposition while the run is up.
func TestServeFlag(t *testing.T) {
	o := options{fig: "2", fig2N: 60, fig2T: 3, threads: 3}
	o.serve = "127.0.0.1:0"
	o.hold = 300 * time.Millisecond
	addrCh := make(chan net.Addr, 1)
	o.serveReady = func(a net.Addr) { addrCh <- a }

	var healthz, exposition string
	_, err := captureF(t, func() error {
		runErr := make(chan error, 1)
		go func() { runErr <- run(o) }()
		var addr net.Addr
		select {
		case addr = <-addrCh:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("plane never came up")
		}
		healthz = get(addr, "/healthz")
		exposition = get(addr, "/metrics")
		return <-runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(healthz, "ok") {
		t.Errorf("/healthz = %q", healthz)
	}
	fams, perr := obs.ParseExposition(strings.NewReader(exposition))
	if perr != nil {
		t.Fatalf("served exposition invalid: %v", perr)
	}
	// Even with no instrumented figure the process gauges are live.
	if _, ok := fams["process_goroutines"]; !ok {
		t.Errorf("process gauges missing; families: %v", obs.FamilyNames(fams))
	}
}

// get fetches one path from the plane ("" on any error).
func get(addr net.Addr, path string) string {
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ""
	}
	return string(body)
}
