package obs

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// scrapeNsLine normalises the one nondeterministic exposition line (the
// monotonic scrape clock) so the golden comparison stays exact.
var scrapeNsLine = regexp.MustCompile(`(?m)^telemetry_scrape_monotonic_ns .*$`)

// TestOpenMetricsGolden pins the exact exposition for a known registry:
// counter/gauge/histogram encoding, label grouping, cumulative buckets,
// quantile gauges, family ordering, and the # EOF terminator.
func TestOpenMetricsGolden(t *testing.T) {
	r := telemetry.New()
	r.Counter("demo.requests").Add(3)
	r.Counter(`omp.worker_chunks{tid="1"}`).Add(5)
	r.Counter(`omp.worker_chunks{tid="0"}`).Add(2)
	r.Gauge("demo.temp").Set(-7)
	r.Counter("unrank.table_lookups").Add(17)
	r.Counter("unrank.table_corrections").Add(4)
	r.Counter("unrank.batch_recoveries").Add(6)
	h := r.Histogram("demo.lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r); err != nil {
		t.Fatal(err)
	}
	got := scrapeNsLine.ReplaceAllString(b.String(), "telemetry_scrape_monotonic_ns X")

	want := `# TYPE demo_lat histogram
demo_lat_bucket{le="1"} 1
demo_lat_bucket{le="2"} 2
demo_lat_bucket{le="4"} 3
demo_lat_bucket{le="+Inf"} 4
demo_lat_sum 14
demo_lat_count 4
# TYPE demo_lat_quantile gauge
demo_lat_quantile{quantile="0.5"} 2
demo_lat_quantile{quantile="0.95"} 4
demo_lat_quantile{quantile="0.99"} 4
# TYPE demo_requests counter
demo_requests_total 3
# TYPE demo_temp gauge
demo_temp -7
# TYPE omp_worker_chunks counter
omp_worker_chunks_total{tid="0"} 2
omp_worker_chunks_total{tid="1"} 5
# TYPE telemetry_scrape_monotonic_ns gauge
telemetry_scrape_monotonic_ns X
# TYPE unrank_batch_recoveries counter
unrank_batch_recoveries_total 6
# TYPE unrank_table_corrections counter
unrank_table_corrections_total 4
# TYPE unrank_table_lookups counter
unrank_table_lookups_total 17
# EOF
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestParserRoundTrip writes a richer registry (labels, histogram,
// spans, flight recorder) through the exporter, parses it back with the
// package's own strict parser, and checks every registered metric
// appears with the right type, labels and value.
func TestParserRoundTrip(t *testing.T) {
	r := telemetry.New()
	f := r.EnableFlight(16, true)
	r.Counter("cache.hits").Add(11)
	r.Counter("cache.misses").Add(4)
	r.Counter(`unrank.root_evals`).Add(123)
	r.Counter(`unrank.table_lookups`).Add(9)
	r.Counter(`unrank.batch_recoveries`).Add(2)
	r.Gauge("omp.team_size").Set(8)
	r.Gauge(`omp.worker_inflight_since_ns{tid="2"}`).Set(42)
	h := r.Histogram("omp.chunk_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	sp := r.StartSpan("compile", "core.Collapse", 0)
	sp.End()

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exporter output does not parse: %v\n%s", err, b.String())
	}

	wantType := map[string]string{
		"cache_hits":                    "counter",
		"cache_misses":                  "counter",
		"unrank_root_evals":             "counter",
		"unrank_table_lookups":          "counter",
		"unrank_batch_recoveries":       "counter",
		"omp_team_size":                 "gauge",
		"omp_worker_inflight_since_ns":  "gauge",
		"omp_chunk_seconds":             "histogram",
		"omp_chunk_seconds_quantile":    "gauge",
		"trace_spans":                   "gauge",
		"trace_span_seconds":            "gauge",
		"telemetry_scrape_monotonic_ns": "gauge",
		"flight_recorded_events":        "counter",
	}
	for name, typ := range wantType {
		fam, ok := fams[name]
		if !ok {
			t.Errorf("family %s missing from exposition", name)
			continue
		}
		if fam.Type != typ {
			t.Errorf("family %s has type %s, want %s", name, fam.Type, typ)
		}
		if len(fam.Samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}

	// Counter values survive the round trip.
	if v := findSample(t, fams, "cache_hits", "cache_hits_total", nil); v != 11 {
		t.Errorf("cache_hits_total = %v, want 11", v)
	}
	// Embedded labels split into real label sets.
	if v := findSample(t, fams, "omp_worker_inflight_since_ns",
		"omp_worker_inflight_since_ns", map[string]string{"tid": "2"}); v != 42 {
		t.Errorf("inflight{tid=2} = %v, want 42", v)
	}
	// Histogram invariant: _count equals the +Inf bucket.
	cnt := findSample(t, fams, "omp_chunk_seconds", "omp_chunk_seconds_count", nil)
	inf := findSample(t, fams, "omp_chunk_seconds", "omp_chunk_seconds_bucket",
		map[string]string{"le": "+Inf"})
	if cnt != 2 || inf != cnt {
		t.Errorf("histogram count=%v infBucket=%v, want both 2", cnt, inf)
	}
	// Quantile family carries the three default quantiles.
	if got := len(fams["omp_chunk_seconds_quantile"].Samples); got != len(DefQuantiles) {
		t.Errorf("quantile samples = %d, want %d", got, len(DefQuantiles))
	}
	// The span aggregate is labelled with the recorded (cat, name).
	if v := findSample(t, fams, "trace_spans", "trace_spans",
		map[string]string{"cat": "compile", "name": "core.Collapse"}); v != 1 {
		t.Errorf("trace_spans{compile,core.Collapse} = %v, want 1", v)
	}
	if v := findSample(t, fams, "flight_recorded_events", "flight_recorded_events_total", nil); v != float64(f.Total()) {
		t.Errorf("flight_recorded_events_total = %v, want %d", v, f.Total())
	}
}

// findSample locates a sample by name and exact label subset match.
func findSample(t *testing.T, fams map[string]*Family, famName, sampleName string, labels map[string]string) float64 {
	t.Helper()
	fam, ok := fams[famName]
	if !ok {
		t.Fatalf("family %s missing", famName)
	}
	for _, s := range fam.Samples {
		if s.Name != sampleName {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("sample %s%v not found in family %s", sampleName, labels, famName)
	return 0
}

// TestParserRejectsMalformed exercises the strict-mode failure paths.
func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":        "# TYPE a counter\na_total 1\n",
		"bad value":          "# TYPE a counter\na_total nope\n# EOF\n",
		"unterminated label": "a{x=\"1 2\n# EOF\n",
		"content after EOF":  "# EOF\na 1\n",
		"interleaved":        "# TYPE a counter\na_total 1\n# TYPE b counter\nb_total 1\na_total 2\n# EOF\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a gauge\n# EOF\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parser accepted malformed input:\n%s", name, in)
		}
	}
}

// TestParserLabelEscapes checks escaped quotes and backslashes in label
// values survive parsing.
func TestParserLabelEscapes(t *testing.T) {
	in := "# TYPE a gauge\na{k=\"v\\\"q\\\\w\"} 5\n# EOF\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := fams["a"].Samples[0]
	if s.Labels["k"] != `v"q\w` {
		t.Errorf("escaped label = %q, want %q", s.Labels["k"], `v"q\w`)
	}
}

// TestSanitizeFamily pins the name-mangling rules.
func TestSanitizeFamily(t *testing.T) {
	cases := map[string]string{
		"omp.chunk_seconds": "omp_chunk_seconds",
		"a-b c":             "a_b_c",
		"9lives":            "_9lives",
		"ok:name_2":         "ok:name_2",
	}
	for in, want := range cases {
		if got := sanitizeFamily(in); got != want {
			t.Errorf("sanitizeFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestNilRegistryExposition: a nil registry still yields a valid,
// parseable exposition.
func TestNilRegistryExposition(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("nil-registry exposition does not parse: %v\n%s", err, b.String())
	}
}
