package unrank

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/nest"
)

// Stats counts recovery events, exposed for the overhead experiments
// (paper Fig. 10) and for diagnosing floating-point behaviour.
type Stats struct {
	RootEvals   int64 // closed-form radical evaluations
	Corrections int64 // exact ±1 correction steps taken
	Fallbacks   int64 // binary-search fallbacks (NaN/Inf or non-convergence)
	Searches    int64 // binary-search recoveries (fallbacks + binary mode)
}

// Add accumulates o into s (used to aggregate per-thread stats).
func (s *Stats) Add(o Stats) {
	s.RootEvals += o.RootEvals
	s.Corrections += o.Corrections
	s.Fallbacks += o.Fallbacks
	s.Searches += o.Searches
}

// String renders the counters in a compact fixed-order form.
func (s Stats) String() string {
	return fmt.Sprintf("root evals %d, corrections %d, fallbacks %d, searches %d",
		s.RootEvals, s.Corrections, s.Fallbacks, s.Searches)
}

// Bound is an Unranker bound to concrete parameter values, ready for
// repeated Unrank/Rank/Increment calls. A Bound is not safe for
// concurrent use — give each goroutine its own via Unranker.Bind (the
// generated OpenMP code likewise privatizes the recovery state).
type Bound struct {
	u     *Unranker
	inst  *nest.Instance
	np    int
	depth int
	total int64
	vals  []int64 // params followed by indices, reused (exact path)
	// fvals[k] is the positional float argument vector of level k's
	// compiled root: [params..., i_0..i_{k-1}, pc].
	fvals [][]float64
	stats Stats
}

// Bind fixes parameter values, precomputing the total iteration count.
func (u *Unranker) Bind(params map[string]int64) (*Bound, error) {
	inst, err := u.nest.Bind(params)
	if err != nil {
		return nil, err
	}
	b := &Bound{
		u:     u,
		inst:  inst,
		np:    len(u.nest.Params),
		depth: u.nest.Depth(),
		vals:  make([]int64, len(u.order)),
	}
	cvals := make([]int64, b.np)
	for i, p := range u.nest.Params {
		v := params[p]
		b.vals[i] = v
		cvals[i] = v
	}
	b.fvals = make([][]float64, len(u.levels))
	for k := range u.levels {
		fv := make([]float64, b.np+k+1)
		for i := range cvals {
			fv[i] = float64(cvals[i])
		}
		b.fvals[k] = fv
	}
	b.total = u.countC.EvalExact(cvals)
	if b.total < 0 {
		return nil, fmt.Errorf("unrank: negative iteration count %d (irregular nest for %v)", b.total, params)
	}
	return b, nil
}

// MustBind is Bind but panics on error.
func (u *Unranker) MustBind(params map[string]int64) *Bound {
	b, err := u.Bind(params)
	if err != nil {
		panic(err)
	}
	return b
}

// Total returns the number of iterations: the collapsed loop runs
// pc = 1 .. Total.
func (b *Bound) Total() int64 { return b.total }

// Instance returns the bound nest instance (for bound evaluation and
// lexicographic incrementation).
func (b *Bound) Instance() *nest.Instance { return b.inst }

// Stats returns accumulated recovery statistics.
func (b *Bound) Stats() Stats { return b.stats }

// ResetStats clears the recovery statistics.
func (b *Bound) ResetStats() { b.stats = Stats{} }

// rkEval exactly evaluates level k's substituted ranking polynomial at
// candidate index value x, given the already-recovered prefix in b.vals.
func (b *Bound) rkEval(k int, x int64) int64 {
	b.vals[b.np+k] = x
	return b.u.levels[k].rk.EvalExact(b.vals[:b.np+k+1])
}

// searchLevel exactly recovers level k by binary search: the largest
// x in [lo, hi) with r_k(x) <= pc. The ranking polynomial is monotone in
// x, so this is O(log range) exact evaluations.
func (b *Bound) searchLevel(k int, pc, lo, hi int64) int64 {
	b.stats.Searches++
	lo0, hi0 := lo, hi-1
	for lo0 < hi0 {
		mid := lo0 + (hi0-lo0+1)/2
		if b.rkEval(k, mid) <= pc {
			lo0 = mid
		} else {
			hi0 = mid - 1
		}
	}
	return lo0
}

// Unrank recovers the iteration tuple of rank pc (1-based) into idx,
// which must have length equal to the nest depth.
func (b *Bound) Unrank(pc int64, idx []int64) error {
	if len(idx) != b.depth {
		return fmt.Errorf("unrank: index slice has length %d, want %d", len(idx), b.depth)
	}
	if pc < 1 || pc > b.total {
		return fmt.Errorf("unrank: pc = %d out of range 1..%d", pc, b.total)
	}
	pcf := float64(pc)
	for k := 0; k < b.depth-1; k++ {
		lv := &b.u.levels[k]
		lo := b.inst.LowerAt(k, idx)
		hi := b.inst.UpperAt(k, idx)
		var ik int64
		recovered := false
		if lv.rootFn != nil {
			fv := b.fvals[k]
			fv[len(fv)-1] = pcf
			x := lv.rootFn(fv)
			b.stats.RootEvals++
			if !cmplx.IsNaN(x) && !cmplx.IsInf(x) &&
				math.Abs(imag(x)) <= 1e-6*(1+math.Abs(real(x))) {
				ik = int64(math.Floor(real(x) + 1e-9))
				if ik < lo {
					ik = lo
				}
				if ik > hi-1 {
					ik = hi - 1
				}
				// Exact monotone correction (bounded): ensure
				// r_k(ik) <= pc < r_k(ik+1).
				steps := 0
				ok := true
				for b.rkEval(k, ik) > pc {
					ik--
					steps++
					if ik < lo || steps > b.u.maxCorr {
						ok = false
						break
					}
				}
				if ok {
					for ik+1 <= hi-1 && b.rkEval(k, ik+1) <= pc {
						ik++
						steps++
						if steps > b.u.maxCorr {
							ok = false
							break
						}
					}
				}
				if ok {
					b.stats.Corrections += int64(steps)
					recovered = true
				}
			}
			if !recovered {
				b.stats.Fallbacks++
			}
		}
		if !recovered {
			ik = b.searchLevel(k, pc, lo, hi)
		}
		idx[k] = ik
		b.vals[b.np+k] = ik
		// Propagate the recovered prefix into the deeper levels' compiled
		// argument vectors.
		for q := k + 1; q < len(b.fvals); q++ {
			b.fvals[q][b.np+k] = float64(ik)
		}
	}
	// Last level: i = lb + (pc - rank of first iteration at this prefix).
	base := b.u.lastRank.EvalExact(b.vals[:b.np+b.depth-1])
	lb := b.inst.LowerAt(b.depth-1, idx)
	idx[b.depth-1] = lb + (pc - base)
	return nil
}

// Rank exactly evaluates the ranking polynomial at idx. The result is
// the 1-based rank when idx lies inside the iteration domain.
func (b *Bound) Rank(idx []int64) int64 {
	if len(idx) != b.depth {
		panic("unrank: wrong index arity")
	}
	copy(b.vals[b.np:], idx)
	return b.u.rankComp.EvalExact(b.vals)
}

// First fills idx with the first iteration tuple; see nest.Instance.
func (b *Bound) First(idx []int64) bool { return b.inst.First(idx) }

// Increment advances idx lexicographically; see nest.Instance.
func (b *Bound) Increment(idx []int64) bool { return b.inst.Increment(idx) }
