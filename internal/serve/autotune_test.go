package serve

import (
	"context"
	"testing"

	"repro/internal/omp"
	"repro/internal/telemetry"
)

// TestExecuteAutoSchedule pins the tuned execute path: schedule "auto"
// routes through the server's autotuner, answers the exact checksum,
// reports the chosen triple with predicted-vs-actual timing, and the
// second request of the same shape serves the plan from the cache.
func TestExecuteAutoSchedule(t *testing.T) {
	reg := telemetry.New()
	_, c := startServer(t, Config{Threads: 2, Registry: reg})
	const N = 60
	tuples, checksum := triEnum(t, N)

	req := triRequest(N)
	req.Schedule = "auto"
	ex, err := c.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("auto execute: %v", err)
	}
	if ex.Iterations != int64(len(tuples)) || ex.Checksum != checksum {
		t.Fatalf("auto execute = %d iters checksum %d, want %d/%d",
			ex.Iterations, ex.Checksum, len(tuples), checksum)
	}
	if !ex.Tuned || !ex.Collapsed {
		t.Fatalf("auto run not marked tuned+collapsed: %+v", ex)
	}
	if ex.Schedule == "" || ex.Schedule == "auto" {
		t.Fatalf("response schedule %q, want the resolved concrete triple", ex.Schedule)
	}
	if ex.Threads < 1 || ex.Threads > 2 {
		t.Fatalf("tuned team size %d, want within server cap 2", ex.Threads)
	}
	if ex.PredictedMs <= 0 || ex.ActualMs <= 0 {
		t.Fatalf("missing predicted/actual timing: %+v", ex)
	}

	// Second identical request: the plan is recalled, not recomputed.
	ex2, err := c.Execute(context.Background(), req)
	if err != nil {
		t.Fatalf("second auto execute: %v", err)
	}
	if ex2.Checksum != checksum {
		t.Fatalf("second run checksum %d, want %d", ex2.Checksum, checksum)
	}
	snap := reg.Snapshot()
	if snap.Counters["autotune.plans"] < 1 {
		t.Error("autotune.plans counter never incremented")
	}
	if snap.Counters["autotune.cache_hits"] < 1 {
		t.Error("second auto request did not hit the plan cache")
	}
}

// TestParseScheduleSpecAuto pins the -sched grammar extension.
func TestParseScheduleSpecAuto(t *testing.T) {
	if got := parseScheduleSpec("auto"); got.Kind != omp.ScheduleAuto {
		t.Fatalf("parseScheduleSpec(auto) = %+v", got)
	}
	if got := parseScheduleSpec("guided,8"); got.Kind != omp.Guided || got.Chunk != 8 {
		t.Fatalf("parseScheduleSpec(guided,8) = %+v", got)
	}
}
