package transform

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/unrank"
)

// TestSkewThenCollapse reproduces the paper's pipeline end to end:
// a transformation (here skewing, the Pluto role) turns a rectangular
// nest into a non-rectangular one, which is then collapsed; executing
// the collapsed loop and mapping tuples back must cover every original
// iteration exactly once.
func TestSkewThenCollapse(t *testing.T) {
	rect := nest.MustNew([]string{"N", "M"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "M"),
	)
	tr, err := Skew(rect, 1, 0, 2) // j' = j + 2i: parallelogram
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Collapse(tr.Nest, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"N": 7, "M": 5}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.BindMap(params)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]int{}
	idx := make([]int64, 2)
	orig := make([]int64, 2)
	if err := core.ForRange(b, 1, b.Total(), func(pc int64, skewed []int64) {
		copy(idx, skewed)
		m(idx, orig)
		seen[[2]int64{orig[0], orig[1]}]++
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(seen)) != 7*5 {
		t.Fatalf("covered %d original points, want 35", len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("original point %v executed %d times", p, c)
		}
		if p[0] < 0 || p[0] >= 7 || p[1] < 0 || p[1] >= 5 {
			t.Fatalf("mapped point %v outside the rectangle", p)
		}
	}
}

// TestNormalizeThenCollapse checks that collapsing a normalized nest
// gives the same totals as collapsing the original.
func TestNormalizeThenCollapse(t *testing.T) {
	n := nest.MustNew([]string{"N"},
		nest.L("i", "2", "N"),
		nest.L("j", "i-1", "N+1"),
	)
	tr, err := Normalize(n)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Collapse(tr.Nest, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, N := range []int64{3, 6, 11} {
		p := map[string]int64{"N": N}
		b1, err := r1.Unranker.Bind(p)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := r2.Unranker.Bind(p)
		if err != nil {
			t.Fatal(err)
		}
		if b1.Total() != b2.Total() {
			t.Errorf("N=%d: totals %d vs %d", N, b1.Total(), b2.Total())
		}
	}
}
