package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/unrank"
)

// rangeNests covers every bound-shape class the specializer handles:
// rectangular (constant bounds), triangular both ways, shifted
// triangular, a depth-1 nest (a single flat run), and a skewed nest
// with a non-unit coefficient bound.
func rangeNests(t *testing.T) []struct {
	name   string
	n      *nest.Nest
	params map[string]int64
} {
	t.Helper()
	return []struct {
		name   string
		n      *nest.Nest
		params map[string]int64
	}{
		{"rect", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N"), nest.L("j", "0", "N")), map[string]int64{"N": 9}},
		{"tri-lower", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N")), map[string]int64{"N": 11}},
		{"tri-upper", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N"), nest.L("j", "0", "i+1")), map[string]int64{"N": 10}},
		{"shifted", nest.MustNew([]string{"N"},
			nest.L("i", "1", "N"), nest.L("j", "i+2", "N+2")), map[string]int64{"N": 8}},
		{"tetra", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N-1"), nest.L("j", "0", "i+1"), nest.L("k", "j", "i+1")),
			map[string]int64{"N": 7}},
		{"depth1", nest.MustNew([]string{"N"},
			nest.L("i", "2", "N")), map[string]int64{"N": 23}},
		{"skewed", nest.MustNew([]string{"N"},
			nest.L("i", "0", "N"), nest.L("j", "2*i", "2*i+3")), map[string]int64{"N": 6}},
	}
}

type visit struct {
	pc  int64
	idx string
}

// TestForRangesMatchesForRange walks every nest over every pc range
// split, comparing the (pc, idx) sequences of the range-batched driver,
// the per-iteration driver and direct sequential enumeration — chunk
// sizes 1..run-length+1 force boundaries that split innermost runs.
func TestForRangesMatchesForRange(t *testing.T) {
	for _, tc := range rangeNests(t) {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Collapse(tc.n, tc.n.Depth(), unrank.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := res.Unranker.Bind(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			total := b.Total()
			if total < 3 {
				t.Fatalf("degenerate total %d", total)
			}
			// Sequential truth: rank pc visits the pc-th tuple.
			var truth []visit
			pc := int64(1)
			b.Instance().Enumerate(func(idx []int64) bool {
				truth = append(truth, visit{pc, fmt.Sprint(idx)})
				pc++
				return true
			})
			if int64(len(truth)) != total {
				t.Fatalf("enumerated %d tuples, total says %d", len(truth), total)
			}
			for _, chunk := range []int64{1, 2, 3, 5, total, total + 7} {
				gotRange := collect(t, b, total, chunk, false)
				gotRanges := collect(t, b, total, chunk, true)
				assertVisits(t, fmt.Sprintf("chunk %d per-iteration", chunk), truth, gotRange)
				assertVisits(t, fmt.Sprintf("chunk %d range-batched", chunk), truth, gotRanges)
			}
		})
	}
}

// collect runs the collapsed space serially in chunks of the given size
// through ForRange or ForRanges and returns the visit sequence.
func collect(t *testing.T, b *unrank.Bound, total, chunk int64, ranges bool) []visit {
	t.Helper()
	var out []visit
	for lo := int64(1); lo <= total; lo += chunk {
		hi := lo + chunk - 1
		if hi > total {
			hi = total
		}
		var err error
		if ranges {
			var st RangeStats
			err = ForRanges(b, lo, hi, &st, func(pc int64, prefix []int64, rlo, rhi int64) {
				for i := rlo; i < rhi; i++ {
					tuple := append(append([]int64(nil), prefix...), i)
					out = append(out, visit{pc + (i - rlo), fmt.Sprint(tuple)})
				}
			})
			if err == nil {
				if st.Iterations != hi-lo+1 {
					t.Fatalf("chunk [%d,%d]: stats cover %d iterations, want %d",
						lo, hi, st.Iterations, hi-lo+1)
				}
				if st.Batches != st.Carries+1 {
					t.Fatalf("chunk [%d,%d]: %d batches but %d carries (want carries+1)",
						lo, hi, st.Batches, st.Carries)
				}
			}
		} else {
			err = ForRange(b, lo, hi, func(pc int64, idx []int64) {
				out = append(out, visit{pc, fmt.Sprint(idx)})
			})
		}
		if err != nil {
			t.Fatalf("chunk [%d,%d]: %v", lo, hi, err)
		}
	}
	return out
}

func assertVisits(t *testing.T, label string, want, got []visit) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: visited %d iterations, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: visit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestForRangesExhaustion asks for more ranks than the space holds: the
// engine must fail with ErrRecoveryDiverged at the boundary instead of
// repeating or inventing tuples.
func TestForRangesExhaustion(t *testing.T) {
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "0", "i+1"))
	res, err := Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Unranker.MustBind(map[string]int64{"N": 5})
	total := b.Total()
	err = ForRanges(b, total, total+3, nil, func(int64, []int64, int64, int64) {})
	if !errors.Is(err, faults.ErrRecoveryDiverged) {
		t.Fatalf("got %v, want ErrRecoveryDiverged", err)
	}
	if err := ForRange(b, total+1, total, func(int64, []int64) {}); err != nil {
		t.Fatalf("empty range must be a no-op, got %v", err)
	}
}

// TestForRangeDriversZeroAlloc is the steady-state allocation guard for
// the §V drivers: after the Bound's scratch exists, neither the
// per-iteration nor the range-batched driver may allocate.
func TestForRangeDriversZeroAlloc(t *testing.T) {
	n := nest.MustNew([]string{"N"}, nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N"))
	res, err := Collapse(n, 2, unrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Unranker.MustBind(map[string]int64{"N": 64})
	total := b.Total()
	sink := int64(0)
	perIter := func() {
		if err := ForRange(b, 1, total, func(pc int64, idx []int64) { sink += idx[0] }); err != nil {
			t.Fatal(err)
		}
	}
	batched := func() {
		err := ForRanges(b, 1, total, nil, func(pc int64, prefix []int64, lo, hi int64) {
			sink += prefix[0] + hi - lo
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	perIter() // warm the scratch buffer
	if allocs := testing.AllocsPerRun(10, perIter); allocs != 0 {
		t.Errorf("ForRange allocates %v per run in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, batched); allocs != 0 {
		t.Errorf("ForRanges allocates %v per run in steady state, want 0", allocs)
	}

	// The breakpoint-table tier must hold the same guarantee: tables are
	// built once at Bind, so steady-state table recovery (and the seeded
	// driver entry) may not allocate either.
	rest, err := Collapse(n, 2, unrank.Options{Mode: unrank.ModeTable})
	if err != nil {
		t.Fatal(err)
	}
	bt := rest.Unranker.MustBind(map[string]int64{"N": 64})
	ttotal := bt.Total()
	tblIter := func() {
		if err := ForRange(bt, 1, ttotal, func(pc int64, idx []int64) { sink += idx[0] }); err != nil {
			t.Fatal(err)
		}
	}
	start := make([]int64, bt.Depth())
	if err := bt.Unrank(1, start); err != nil {
		t.Fatal(err)
	}
	tblFrom := func() {
		if err := ForRangeFrom(bt, 1, ttotal, start, func(pc int64, idx []int64) { sink += idx[0] }); err != nil {
			t.Fatal(err)
		}
	}
	// Batched multi-pc recovery over preallocated buffers: every chunk
	// start of the space resolved in one pass, zero allocations.
	pcs := make([]int64, 0, 64)
	for pc := int64(1); pc <= ttotal; pc += 37 {
		pcs = append(pcs, pc)
	}
	backing := make([]int64, len(pcs)*bt.Depth())
	out := make([][]int64, len(pcs))
	for i := range out {
		out[i] = backing[i*bt.Depth() : (i+1)*bt.Depth()]
	}
	tblBatch := func() {
		if err := bt.RecoverBatch(pcs, out); err != nil {
			t.Fatal(err)
		}
		sink += out[0][0]
	}
	tblIter() // warm table scratch (per-prefix base cache)
	if allocs := testing.AllocsPerRun(10, tblIter); allocs != 0 {
		t.Errorf("ForRange (table tier) allocates %v per run in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, tblFrom); allocs != 0 {
		t.Errorf("ForRangeFrom (table tier) allocates %v per run in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, tblBatch); allocs != 0 {
		t.Errorf("RecoverBatch allocates %v per run in steady state, want 0", allocs)
	}
	_ = sink
}
