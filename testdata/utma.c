/* sum of two upper triangular matrices (utma, paper SVII) */
#pragma omp parallel for collapse(2) schedule(static)
for (i = 0; i < N; i++)
  for (j = i; j < N; j++)
    C[i][j] = A[i][j] + B[i][j];
