package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelWrapping(t *testing.T) {
	err := fmt.Errorf("ehrhart: degree 5 at level 2: %w", ErrDegreeTooHigh)
	if !errors.Is(err, ErrDegreeTooHigh) {
		t.Fatal("wrapped sentinel not matched by errors.Is")
	}
	if errors.Is(err, ErrNonAffine) {
		t.Fatal("unrelated sentinel matched")
	}
}

func TestCollapsible(t *testing.T) {
	for _, err := range []error{ErrNonAffine, ErrDegreeTooHigh, ErrNoConvenientRoot, ErrOverflow} {
		if !Collapsible(fmt.Errorf("ctx: %w", err)) {
			t.Errorf("Collapsible(%v) = false, want true", err)
		}
	}
	for _, err := range []error{ErrRecoveryDiverged, ErrCanceled, errors.New("other")} {
		if Collapsible(err) {
			t.Errorf("Collapsible(%v) = true, want false", err)
		}
	}
}

func TestPanicError(t *testing.T) {
	pe := func() (pe *PanicError) {
		defer func() { pe = Recovered(recover()) }()
		panic("boom")
	}()
	if pe.Value != "boom" {
		t.Fatalf("Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "faults") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	wrapped := fmt.Errorf("omp: worker 3: %w", pe)
	if AsPanic(wrapped) != pe {
		t.Fatal("AsPanic did not find the PanicError")
	}
	if !strings.Contains(fmt.Sprintf("%+v", pe), "goroutine") {
		t.Fatal("verbose format does not include the stack")
	}
}

func TestPanicErrorUnwrapsErrorValue(t *testing.T) {
	pe := &PanicError{Value: fmt.Errorf("poly: too big: %w", ErrOverflow)}
	if !errors.Is(pe, ErrOverflow) {
		t.Fatal("error panic value not unwrapped")
	}
	if (&PanicError{Value: "text"}).Unwrap() != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
}

func TestInjectionPlan(t *testing.T) {
	if Active() != nil {
		t.Fatal("plan active at test start")
	}
	if err := InjectChunk(0, 1, 10); err != nil {
		t.Fatalf("InjectChunk with no plan: %v", err)
	}
	if got := PerturbRoot(0, 3+4i); got != 3+4i {
		t.Fatalf("PerturbRoot with no plan altered value: %v", got)
	}

	calls := 0
	restore := Activate(&Plan{
		PerturbRoot: func(level int, x complex128) complex128 { return x + 1 },
		OnChunk: func(tid int, clo, chi int64) error {
			calls++
			if clo == 5 {
				return ErrCanceled
			}
			return nil
		},
	})
	if got := PerturbRoot(1, 2); got != 3 {
		t.Fatalf("PerturbRoot = %v, want 3", got)
	}
	if err := InjectChunk(0, 1, 5); err != nil {
		t.Fatalf("InjectChunk(1): %v", err)
	}
	if err := InjectChunk(0, 5, 9); !errors.Is(err, ErrCanceled) {
		t.Fatalf("InjectChunk(5) = %v, want ErrCanceled", err)
	}
	if calls != 2 {
		t.Fatalf("OnChunk calls = %d", calls)
	}
	restore()
	if Active() != nil {
		t.Fatal("restore did not clear the plan")
	}
}
