package stress

import (
	"testing"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/omp"
)

// FuzzStressNest drives the generator from arbitrary seeds and pushes
// each generated nest through every recovery variant: the full
// precision ladder (float64, 128-bit, 256-bit, breakpoint tables,
// exact binary search) plus the pure table mode must each visit
// exactly the sequential iteration set. Unlike FuzzRankUnrank (which
// fuzzes the C front end), this target fuzzes the numeric recovery
// engine over the space of collapsible shapes directly.
func FuzzStressNest(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := NewCase(seed)
		if err != nil {
			// Pathological seeds that never generate a collapsible
			// nest are uninteresting, not failures.
			t.Skip(err)
		}
		truth, err := enumerate(c)
		if err != nil {
			t.Fatalf("%s: enumerate: %v", c.Name, err)
		}
		tuner := autotune.New(autotune.Options{MaxWorkers: 2})
		for _, v := range Variants() {
			res, err := core.Collapse(c.Nest, c.C, v.Opts)
			if err != nil {
				t.Fatalf("%s: collapse at %s: %v", c.Name, v.Name, err)
			}
			sched := omp.Schedule{Kind: omp.Dynamic, Chunk: 3}
			got, cs, err := runParallel(res, c.Params, 2, sched)
			if err != nil {
				t.Fatalf("%s at %s: %v", c.Name, v.Name, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				t.Fatalf("%s at %s: %v (stats: %s)", c.Name, v.Name, err, cs.Stats.String())
			}
			// The range-batched engine must visit the identical set; the
			// chunk size deliberately splits innermost runs.
			got, rs, err := runParallelRanges(res, c.Params, 2, sched)
			if err != nil {
				t.Fatalf("%s at %s (ranges): %v", c.Name, v.Name, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				t.Fatalf("%s at %s (ranges): %v (engine: %+v)", c.Name, v.Name, err, rs)
			}
			// The tuned path: whatever triple the planner picks (later
			// variants recall it from the shared tuner's cache), the
			// visit set must still be the sequential truth.
			got, cs, err = runTuned(tuner, res, c.Params)
			if err != nil {
				t.Fatalf("%s at %s (auto): %v", c.Name, v.Name, err)
			}
			if err := diffVisitSets(truth, got); err != nil {
				t.Fatalf("%s at %s (auto): %v (stats: %s)", c.Name, v.Name, err, cs.Stats.String())
			}
		}
	})
}
