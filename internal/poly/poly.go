// Package poly implements exact multivariate polynomials over the
// rationals. It is the symbolic substrate underneath the Ehrhart ranking
// machinery of the loop collapser: polynomials support ring arithmetic,
// substitution of polynomials for variables, exact rational and
// floating-point evaluation, univariate views (needed by the radical root
// solvers), and a small expression parser used by tests and the CLI
// tools.
//
// Variables are identified by name at the API surface; internally every
// name is interned to a dense int32 ID and monomials are sorted
// exponent vectors with packed byte-string keys (see intern.go), so the
// ring operations on the compile path never format strings or allocate
// per-monomial maps. Coefficient arithmetic takes an overflow-checked
// int64 fast path when both operands are small integers, which they are
// for almost every intermediate of Faulhaber summation. The previous
// string-keyed map representation is preserved verbatim in legacy.go as
// the differential-testing oracle.
//
// A Poly is immutable from the caller's point of view: all operations
// return fresh values.
package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"

	"repro/internal/numeric"
)

// term is a single monomial: coeff * prod(var^exp). The exps slice is
// sorted by variable ID and never mutated once the term is stored in a
// Poly (clones share it).
type term struct {
	coeff *big.Rat
	exps  []varExp
}

func (t *term) totalDegree() int {
	d := 0
	for _, ve := range t.exps {
		d += int(ve.exp)
	}
	return d
}

// nameKey renders the monomial in the legacy "x^1*y^2" format (factors
// sorted by variable name). It is used only for deterministic ordering
// in String/Terms/Compile, where the historical name-lexicographic order
// is part of the observable output.
func (t *term) nameKey() string {
	if len(t.exps) == 0 {
		return ""
	}
	names := make([]string, len(t.exps))
	for i, ve := range t.exps {
		names[i] = varNameOf(ve.id)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		id, _ := varIDIfKnown(v)
		fmt.Fprintf(&b, "%s^%d", v, t.expOf(id))
	}
	return b.String()
}

// expOf returns the exponent of variable id in t (0 if absent).
func (t *term) expOf(id int32) int32 {
	for _, ve := range t.exps {
		if ve.id == id {
			return ve.exp
		}
	}
	return 0
}

// ratPool recycles big.Rat temporaries of the ring operations: the
// multiply/accumulate inner loops need one scratch rational per call, not
// per monomial pair.
var ratPool = sync.Pool{New: func() interface{} { return new(big.Rat) }}

func getRat() *big.Rat  { return ratPool.Get().(*big.Rat) }
func putRat(r *big.Rat) { ratPool.Put(r) }

// mulRatInto sets dst = a*b, taking an overflow-checked int64 fast path
// when both operands are small integers (the overwhelmingly common case
// for Faulhaber/binomial intermediates).
func mulRatInto(dst, a, b *big.Rat) {
	if a.IsInt() && b.IsInt() {
		an, bn := a.Num(), b.Num()
		if an.IsInt64() && bn.IsInt64() {
			if p, ok := numeric.MulInt64(an.Int64(), bn.Int64()); ok {
				dst.SetInt64(p)
				return
			}
		}
	}
	dst.Mul(a, b)
}

// addRatInto sets dst = a+b with the same integer fast path.
func addRatInto(dst, a, b *big.Rat) {
	if a.IsInt() && b.IsInt() {
		an, bn := a.Num(), b.Num()
		if an.IsInt64() && bn.IsInt64() {
			if s, ok := numeric.AddInt64(an.Int64(), bn.Int64()); ok {
				dst.SetInt64(s)
				return
			}
		}
	}
	dst.Add(a, b)
}

// Poly is a multivariate polynomial with exact rational coefficients.
// The zero value is not usable; construct values with Zero, One, Const,
// Int, Var, VarPow or Parse.
type Poly struct {
	terms map[string]*term // packed monomial key -> term
}

// Zero returns the zero polynomial.
func Zero() *Poly { return &Poly{terms: map[string]*term{}} }

// One returns the constant polynomial 1.
func One() *Poly { return Int(1) }

// Int returns the constant polynomial n.
func Int(n int64) *Poly { return Const(new(big.Rat).SetInt64(n)) }

// Rat returns the constant polynomial num/den.
func Rat(num, den int64) *Poly { return Const(big.NewRat(num, den)) }

// Const returns the constant polynomial with value r.
func Const(r *big.Rat) *Poly {
	p := Zero()
	if r.Sign() != 0 {
		p.terms[""] = &term{coeff: new(big.Rat).Set(r)}
	}
	return p
}

// Var returns the polynomial consisting of the single variable name.
func Var(name string) *Poly { return VarPow(name, 1) }

// VarPow returns the polynomial name^k (k >= 0).
func VarPow(name string, k int) *Poly {
	if name == "" {
		panic("poly: empty variable name")
	}
	if k < 0 {
		panic("poly: negative exponent")
	}
	if k == 0 {
		return One()
	}
	exps := []varExp{{id: varID(name), exp: int32(k)}}
	t := &term{coeff: big.NewRat(1, 1), exps: exps}
	return &Poly{terms: map[string]*term{packKey(exps): t}}
}

// clone copies p. Exponent vectors are immutable once stored, so they
// are shared; only the coefficients are duplicated.
func (p *Poly) clone() *Poly {
	q := Zero()
	for k, t := range p.terms {
		q.terms[k] = &term{coeff: new(big.Rat).Set(t.coeff), exps: t.exps}
	}
	return q
}

// addTerm adds coeff*mono into p in place, dropping the monomial if the
// resulting coefficient is zero. The exps slice is copied.
func (p *Poly) addTerm(coeff *big.Rat, exps []varExp) {
	p.addTermKeyed(coeff, exps, packKey(exps), false)
}

// addTermOwned is addTerm for callers handing over ownership of exps
// (freshly built, never reused), skipping the defensive copy.
func (p *Poly) addTermOwned(coeff *big.Rat, exps []varExp) {
	p.addTermKeyed(coeff, exps, packKey(exps), true)
}

func (p *Poly) addTermKeyed(coeff *big.Rat, exps []varExp, key string, owned bool) {
	if coeff.Sign() == 0 {
		return
	}
	if ex, ok := p.terms[key]; ok {
		addRatInto(ex.coeff, ex.coeff, coeff)
		if ex.coeff.Sign() == 0 {
			delete(p.terms, key)
		}
		return
	}
	if !owned {
		exps = append([]varExp(nil), exps...)
	}
	p.terms[key] = &term{coeff: new(big.Rat).Set(coeff), exps: exps}
}

// Add returns p + q.
func (p *Poly) Add(q *Poly) *Poly {
	r := p.clone()
	for k, t := range q.terms {
		r.addTermKeyed(t.coeff, t.exps, k, false)
	}
	return r
}

// Sub returns p - q.
func (p *Poly) Sub(q *Poly) *Poly {
	r := p.clone()
	neg := getRat()
	for k, t := range q.terms {
		neg.Neg(t.coeff)
		r.addTermKeyed(neg, t.exps, k, false)
	}
	putRat(neg)
	return r
}

// Neg returns -p.
func (p *Poly) Neg() *Poly { return Zero().Sub(p) }

// Scale returns r * p.
func (p *Poly) Scale(r *big.Rat) *Poly {
	q := Zero()
	if r.Sign() == 0 {
		return q
	}
	c := getRat()
	for k, t := range p.terms {
		mulRatInto(c, t.coeff, r)
		q.addTermKeyed(c, t.exps, k, false)
	}
	putRat(c)
	return q
}

// ScaleInt returns n * p.
func (p *Poly) ScaleInt(n int64) *Poly { return p.Scale(new(big.Rat).SetInt64(n)) }

// mulExps merges two sorted exponent vectors (a sorted-merge, no maps).
func mulExps(a, b []varExp) []varExp {
	out := make([]varExp, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].id < b[j].id:
			out = append(out, a[i])
			i++
		case a[i].id > b[j].id:
			out = append(out, b[j])
			j++
		default:
			out = append(out, varExp{id: a[i].id, exp: a[i].exp + b[j].exp})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Mul returns p * q.
func (p *Poly) Mul(q *Poly) *Poly {
	r := Zero()
	c := getRat()
	for _, tp := range p.terms {
		for _, tq := range q.terms {
			mulRatInto(c, tp.coeff, tq.coeff)
			r.addTermOwned(c, mulExps(tp.exps, tq.exps))
		}
	}
	putRat(c)
	return r
}

// PowInt returns p raised to the non-negative integer power k.
func (p *Poly) PowInt(k int) *Poly {
	if k < 0 {
		panic("poly: negative exponent")
	}
	result := One()
	base := p
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// Subst returns the polynomial obtained by substituting polynomial sub
// for every occurrence of variable v in p.
func (p *Poly) Subst(v string, sub *Poly) *Poly {
	vid, known := varIDIfKnown(v)
	if !known {
		return p.clone()
	}
	r := Zero()
	// Cache powers of sub, since several terms often share exponents.
	pows := map[int32]*Poly{0: One(), 1: sub}
	var powOf func(int32) *Poly
	powOf = func(k int32) *Poly {
		if q, ok := pows[k]; ok {
			return q
		}
		q := powOf(k - 1).Mul(sub)
		pows[k] = q
		return q
	}
	for _, t := range p.terms {
		var deg int32
		rest := make([]varExp, 0, len(t.exps))
		for _, ve := range t.exps {
			if ve.id == vid {
				deg = ve.exp
			} else {
				rest = append(rest, ve)
			}
		}
		partial := Zero()
		partial.addTermOwned(t.coeff, rest)
		if deg > 0 {
			partial = partial.Mul(powOf(deg))
		}
		for k, pt := range partial.terms {
			r.addTermKeyed(pt.coeff, pt.exps, k, true)
		}
	}
	return r
}

// SubstAll substitutes several variables simultaneously: all
// substitutions see the original p, so {"x": y, "y": x} swaps x and y.
func (p *Poly) SubstAll(subs map[string]*Poly) *Poly {
	if len(subs) == 0 {
		return p.clone()
	}
	// Rename each substituted variable to a fresh temporary first so that
	// sequential substitution becomes simultaneous.
	tmp := p.clone()
	names := make([]string, 0, len(subs))
	for v := range subs {
		names = append(names, v)
	}
	sort.Strings(names)
	for i, v := range names {
		tmp = tmp.Subst(v, Var(fmt.Sprintf("\x00tmp%d", i)))
	}
	for i, v := range names {
		tmp = tmp.Subst(fmt.Sprintf("\x00tmp%d", i), subs[v])
	}
	return tmp
}

// Rename returns p with variables renamed according to m (names absent
// from m are kept). The renaming is applied simultaneously; renaming two
// distinct variables to the same name merges their monomials.
func (p *Poly) Rename(m map[string]string) *Poly {
	if len(m) == 0 {
		return p.clone()
	}
	idMap := make(map[int32]int32, len(m))
	for from, to := range m {
		if from == to {
			continue
		}
		if fid, ok := varIDIfKnown(from); ok {
			idMap[fid] = varID(to)
		}
	}
	r := Zero()
	for k, t := range p.terms {
		changed := false
		for _, ve := range t.exps {
			if _, ok := idMap[ve.id]; ok {
				changed = true
				break
			}
		}
		if !changed {
			r.addTermKeyed(t.coeff, t.exps, k, false)
			continue
		}
		exps := make([]varExp, len(t.exps))
		for i, ve := range t.exps {
			if nid, ok := idMap[ve.id]; ok {
				ve.id = nid
			}
			exps[i] = ve
		}
		sort.Slice(exps, func(a, b int) bool { return exps[a].id < exps[b].id })
		// Merge duplicates produced by a non-injective rename.
		out := exps[:0]
		for _, ve := range exps {
			if n := len(out); n > 0 && out[n-1].id == ve.id {
				out[n-1].exp += ve.exp
			} else {
				out = append(out, ve)
			}
		}
		r.addTermOwned(t.coeff, out)
	}
	return r
}

// EvalRat evaluates p at the given rational assignment. Every variable of
// p must be present in env.
func (p *Poly) EvalRat(env map[string]*big.Rat) (*big.Rat, error) {
	sum := new(big.Rat)
	tp := new(big.Rat)
	for _, t := range p.terms {
		tp.Set(t.coeff)
		for _, ve := range t.exps {
			val, ok := env[varNameOf(ve.id)]
			if !ok {
				return nil, fmt.Errorf("poly: variable %q not bound", varNameOf(ve.id))
			}
			for i := int32(0); i < ve.exp; i++ {
				tp.Mul(tp, val)
			}
		}
		sum.Add(sum, tp)
	}
	return sum, nil
}

// EvalInt64 evaluates p at an integer assignment, returning the exact
// rational value.
func (p *Poly) EvalInt64(env map[string]int64) (*big.Rat, error) {
	renv := make(map[string]*big.Rat, len(env))
	for k, v := range env {
		renv[k] = new(big.Rat).SetInt64(v)
	}
	return p.EvalRat(renv)
}

// EvalFloat evaluates p at a float64 assignment. Missing variables are an
// error.
func (p *Poly) EvalFloat(env map[string]float64) (float64, error) {
	sum := 0.0
	for _, t := range p.terms {
		tp, _ := t.coeff.Float64()
		for _, ve := range t.exps {
			val, ok := env[varNameOf(ve.id)]
			if !ok {
				return 0, fmt.Errorf("poly: variable %q not bound", varNameOf(ve.id))
			}
			for i := int32(0); i < ve.exp; i++ {
				tp *= val
			}
		}
		sum += tp
	}
	return sum, nil
}

// IsZero reports whether p is the zero polynomial.
func (p *Poly) IsZero() bool { return len(p.terms) == 0 }

// IsConst reports whether p is a constant (possibly zero).
func (p *Poly) IsConst() bool {
	if len(p.terms) == 0 {
		return true
	}
	_, ok := p.terms[""]
	return ok && len(p.terms) == 1
}

// ConstValue returns the value of a constant polynomial.
// It panics if p is not constant.
func (p *Poly) ConstValue() *big.Rat {
	if !p.IsConst() {
		panic("poly: ConstValue of non-constant polynomial")
	}
	if t, ok := p.terms[""]; ok {
		return new(big.Rat).Set(t.coeff)
	}
	return new(big.Rat)
}

// Equal reports whether p and q are identical polynomials.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		u, ok := q.terms[k]
		if !ok || t.coeff.Cmp(u.coeff) != 0 {
			return false
		}
	}
	return true
}

// Vars returns the sorted list of variables occurring in p.
func (p *Poly) Vars() []string {
	set := map[int32]bool{}
	for _, t := range p.terms {
		for _, ve := range t.exps {
			set[ve.id] = true
		}
	}
	names := make([]string, 0, len(set))
	for id := range set {
		names = append(names, varNameOf(id))
	}
	sort.Strings(names)
	return names
}

// HasVar reports whether variable v occurs in p.
func (p *Poly) HasVar(v string) bool { return p.DegreeIn(v) > 0 }

// DegreeIn returns the degree of p in variable v (0 if absent; 0 for the
// zero polynomial).
func (p *Poly) DegreeIn(v string) int {
	vid, known := varIDIfKnown(v)
	if !known {
		return 0
	}
	d := int32(0)
	for _, t := range p.terms {
		if e := t.expOf(vid); e > d {
			d = e
		}
	}
	return int(d)
}

// MaxVarDegree returns the largest exponent any single variable reaches
// in any monomial of p. This implements the paper's §IV.B degree check.
func (p *Poly) MaxVarDegree() int {
	d := int32(0)
	for _, t := range p.terms {
		for _, ve := range t.exps {
			if ve.exp > d {
				d = ve.exp
			}
		}
	}
	return int(d)
}

// TotalDegree returns the total degree of p (0 for constants and zero).
func (p *Poly) TotalDegree() int {
	d := 0
	for _, t := range p.terms {
		if td := t.totalDegree(); td > d {
			d = td
		}
	}
	return d
}

// UnivariateIn views p as a univariate polynomial in v and returns its
// coefficients, lowest power first. The returned polynomials do not
// contain v. The slice has length DegreeIn(v)+1 (length 1 for the zero
// polynomial).
func (p *Poly) UnivariateIn(v string) []*Poly {
	deg := p.DegreeIn(v)
	coeffs := make([]*Poly, deg+1)
	for i := range coeffs {
		coeffs[i] = Zero()
	}
	vid, known := varIDIfKnown(v)
	for _, t := range p.terms {
		var pw int32
		rest := make([]varExp, 0, len(t.exps))
		for _, ve := range t.exps {
			if known && ve.id == vid {
				pw = ve.exp
			} else {
				rest = append(rest, ve)
			}
		}
		coeffs[pw].addTermOwned(t.coeff, rest)
	}
	return coeffs
}

// Derivative returns dp/dv.
func (p *Poly) Derivative(v string) *Poly {
	r := Zero()
	vid, known := varIDIfKnown(v)
	if !known {
		return r
	}
	c := getRat()
	mul := getRat()
	for _, t := range p.terms {
		pw := t.expOf(vid)
		if pw == 0 {
			continue
		}
		mul.SetInt64(int64(pw))
		mulRatInto(c, t.coeff, mul)
		exps := make([]varExp, 0, len(t.exps))
		for _, ve := range t.exps {
			if ve.id == vid {
				if ve.exp > 1 {
					exps = append(exps, varExp{id: ve.id, exp: ve.exp - 1})
				}
			} else {
				exps = append(exps, ve)
			}
		}
		r.addTermOwned(c, exps)
	}
	putRat(c)
	putRat(mul)
	return r
}

// CommonDenominator returns the least common multiple of the coefficient
// denominators (1 for the zero polynomial). p scaled by this value has
// integer coefficients.
func (p *Poly) CommonDenominator() *big.Int {
	l := big.NewInt(1)
	for _, t := range p.terms {
		d := t.coeff.Denom()
		g := new(big.Int).GCD(nil, nil, l, d)
		l = new(big.Int).Mul(l, new(big.Int).Div(d, g))
	}
	return l
}

// CoeffOf returns the coefficient of the monomial described by exps
// (variable -> exponent; exponents of 0 may be omitted).
func (p *Poly) CoeffOf(exps map[string]int) *big.Rat {
	norm := make([]varExp, 0, len(exps))
	for v, e := range exps {
		if e > 0 {
			norm = append(norm, varExp{id: varID(v), exp: int32(e)})
		}
	}
	sort.Slice(norm, func(a, b int) bool { return norm[a].id < norm[b].id })
	if t, ok := p.terms[packKey(norm)]; ok {
		return new(big.Rat).Set(t.coeff)
	}
	return new(big.Rat)
}

// TermVar is one variable factor of an exported monomial view.
type TermVar struct {
	Name string
	Pow  int
}

// Term is an exported view of one monomial of a polynomial.
type Term struct {
	Coeff *big.Rat  // never zero
	Vars  []TermVar // sorted by variable name; empty for the constant term
}

// Terms returns the monomials of p in the same deterministic order used
// by String: descending total degree, then lexicographic monomial key.
func (p *Poly) Terms() []Term {
	keys := p.sortedKeys()
	out := make([]Term, 0, len(keys))
	for _, k := range keys {
		t := p.terms[k]
		term := Term{Coeff: new(big.Rat).Set(t.coeff)}
		for _, ve := range t.exps {
			term.Vars = append(term.Vars, TermVar{Name: varNameOf(ve.id), Pow: int(ve.exp)})
		}
		sort.Slice(term.Vars, func(a, b int) bool { return term.Vars[a].Name < term.Vars[b].Name })
		out = append(out, term)
	}
	return out
}

// sortedKeys orders the packed term keys by descending total degree,
// then by the legacy name-lexicographic monomial rendering — the
// historical deterministic order of String and Terms.
func (p *Poly) sortedKeys() []string {
	keys := make([]string, 0, len(p.terms))
	nameKeys := make(map[string]string, len(p.terms))
	for k, t := range p.terms {
		keys = append(keys, k)
		nameKeys[k] = t.nameKey()
	}
	sort.Slice(keys, func(a, b int) bool {
		da, db := p.terms[keys[a]].totalDegree(), p.terms[keys[b]].totalDegree()
		if da != db {
			return da > db
		}
		return nameKeys[keys[a]] < nameKeys[keys[b]]
	})
	return keys
}

// String renders p deterministically: monomials sorted by descending
// total degree, then lexicographically by monomial key.
func (p *Poly) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	keys := p.sortedKeys()
	var b strings.Builder
	for i, k := range keys {
		t := p.terms[k]
		c := t.coeff
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		if i == 0 {
			if neg {
				b.WriteByte('-')
			}
		} else {
			if neg {
				b.WriteString(" - ")
			} else {
				b.WriteString(" + ")
			}
		}
		mono := monoString(t)
		one := abs.Cmp(big.NewRat(1, 1)) == 0
		switch {
		case mono == "":
			b.WriteString(ratString(abs))
		case one:
			b.WriteString(mono)
		default:
			b.WriteString(ratString(abs))
			b.WriteByte('*')
			b.WriteString(mono)
		}
	}
	return b.String()
}

func monoString(t *term) string {
	if len(t.exps) == 0 {
		return ""
	}
	names := make([]string, len(t.exps))
	for i, ve := range t.exps {
		names[i] = varNameOf(ve.id)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(v)
		id, _ := varIDIfKnown(v)
		if e := t.expOf(id); e > 1 {
			fmt.Fprintf(&b, "^%d", e)
		}
	}
	return b.String()
}

func ratString(r *big.Rat) string {
	if r.IsInt() {
		return r.Num().String()
	}
	return "(" + r.String() + ")"
}
