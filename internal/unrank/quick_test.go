package unrank

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property (testing/quick): for random N and random pc,
// Rank(Unrank(pc)) == pc and the recovered tuple lies in the domain —
// the core bijection invariant, on the paper's two reference nests.
func TestQuickBijectionInvariant(t *testing.T) {
	uCorr := MustNew(correlationNest(), Options{Mode: ModeClosedForm})
	uTetra := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	cfg := &quick.Config{MaxCount: 300}

	check := func(u *Unranker, depth int) func(n16 uint16, pcSeed uint32) bool {
		bounds := map[int64]*Bound{}
		return func(n16 uint16, pcSeed uint32) bool {
			N := int64(n16%2000) + 2
			b, ok := bounds[N]
			if !ok {
				var err error
				b, err = u.Bind(map[string]int64{"N": N})
				if err != nil {
					return false
				}
				bounds[N] = b
			}
			total := b.Total()
			if total == 0 {
				return true
			}
			pc := int64(pcSeed)%total + 1
			idx := make([]int64, depth)
			if err := b.Unrank(pc, idx); err != nil {
				return false
			}
			return b.Instance().Contains(idx) && b.Rank(idx) == pc
		}
	}
	if err := quick.Check(check(uCorr, 2), cfg); err != nil {
		t.Error("correlation:", err)
	}
	if err := quick.Check(check(uTetra, 3), cfg); err != nil {
		t.Error("tetra:", err)
	}
}

// Property: Unrank(pc+1) equals Increment(Unrank(pc)) for random points.
func TestQuickIncrementConsistency(t *testing.T) {
	u := MustNew(tetraNest(), Options{Mode: ModeClosedForm})
	b := u.MustBind(map[string]int64{"N": 60})
	total := b.Total()
	f := func(pcSeed uint32) bool {
		pc := int64(pcSeed)%(total-1) + 1
		a := make([]int64, 3)
		c := make([]int64, 3)
		if err := b.Unrank(pc, a); err != nil {
			return false
		}
		if !b.Increment(a) {
			return false
		}
		if err := b.Unrank(pc+1, c); err != nil {
			return false
		}
		return reflect.DeepEqual(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
