package nonrect

// Flight-recorder cost on the BenchmarkEngines hot path: the
// instrumented executor records one chunk span per chunk, and with a
// flight recorder attached each span is additionally copied into the
// preallocated ring. The benchmark exposes all three operating points
// (uninstrumented, telemetry, telemetry+flight); the test pins the
// acceptance bound — attaching the flight recorder costs < 5% on top
// of plain telemetry.

import (
	"testing"
	"time"

	"repro/internal/omp"
	"repro/internal/telemetry"
)

func flightBenchSetup(tb testing.TB) (*Result, map[string]int64, omp.Schedule) {
	tb.Helper()
	n := MustNewNest([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
	res, err := Collapse(n, 2)
	if err != nil {
		tb.Fatal(err)
	}
	return res, map[string]int64{"N": 700}, omp.Schedule{Kind: omp.StaticChunk, Chunk: 4096}
}

var flightSink int64

func flightTraversal(tb testing.TB, res *Result, params map[string]int64,
	sched omp.Schedule, tel *telemetry.Registry) {
	tb.Helper()
	if _, err := omp.CollapsedForTelemetry(res, params, 1, sched, tel,
		func(tid int, idx []int64) { flightSink += idx[0] }); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkEnginesFlight measures the telemetry engine's traversal at
// the three instrumentation levels.
func BenchmarkEnginesFlight(b *testing.B) {
	res, params, sched := flightBenchSetup(b)
	b.Run("telemetry-off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flightTraversal(b, res, params, sched, nil)
		}
	})
	b.Run("telemetry", func(b *testing.B) {
		tel := telemetry.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flightTraversal(b, res, params, sched, tel)
		}
	})
	b.Run("telemetry+flight", func(b *testing.B) {
		tel := telemetry.New()
		tel.EnableFlight(4096, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flightTraversal(b, res, params, sched, tel)
		}
	})
}

// TestFlightRecorderOverheadOnEngines pins the flight recorder's cost
// on the hot path: a traversal with the ring attached (teeing every
// chunk span) must stay within 5% of the identical traversal with
// plain telemetry. Both sides are measured best-of to shed scheduler
// noise, and the comparison retries to tolerate one-off load spikes.
func TestFlightRecorderOverheadOnEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	res, params, sched := flightBenchSetup(t)
	bestOf := func(reps int, tel *telemetry.Registry) time.Duration {
		best := time.Duration(-1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			flightTraversal(t, res, params, sched, tel)
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
		}
		return best
	}
	// Warm both configurations once.
	plainTel := telemetry.New()
	flightTel := telemetry.New()
	flightTel.EnableFlight(4096, true)
	bestOf(1, plainTel)
	bestOf(1, flightTel)

	const attempts = 3
	var plain, flight time.Duration
	for a := 0; a < attempts; a++ {
		plain = bestOf(7, plainTel)
		flight = bestOf(7, flightTel)
		if float64(flight) <= float64(plain)*1.05 {
			return
		}
	}
	t.Errorf("flight recorder overhead: plain %v, flight %v (%.1f%% > 5%%)",
		plain, flight, (float64(flight)/float64(plain)-1)*100)
}
