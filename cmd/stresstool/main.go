// Command stresstool runs the differential stress harness of
// internal/stress: it generates seedable random affine nests
// (rectangular, triangular, shifted) and checks that every parallel
// execution — all four OpenMP-style schedules, every rung of the
// unranker's precision ladder, optionally with injected root faults —
// visits exactly the sequential iteration set.
//
//	stresstool -seeds 16 -threads 4 -faults
//
// The tool exits non-zero on the first divergence, printing the seed,
// schedule and tier that produced it; reproduce a failure by rerunning
// with -start set to the reported seed and -seeds 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/omp"
	"repro/internal/stress"
)

func run(out io.Writer, seeds int, start int64, threads int, withFaults, verbose bool) error {
	if seeds < 1 {
		return fmt.Errorf("stresstool: -seeds must be >= 1")
	}
	var total stress.RunStats
	for s := start; s < start+int64(seeds); s++ {
		c, err := stress.NewCase(s)
		if err != nil {
			return err
		}
		st, err := stress.RunCase(c, threads, withFaults)
		total.Cases += st.Cases
		total.Runs += st.Runs
		total.Unrank.Add(st.Unrank)
		if err != nil {
			return fmt.Errorf("FAIL %s: %w", c.Name, err)
		}
		if verbose {
			fmt.Fprintf(out, "ok  %-28s total %-5d %s\n", c.Name, c.Total, st.Unrank.String())
		}
	}
	fmt.Fprintf(out, "stress ok: %s (threads=%d, faults=%v)\n", total.String(), threads, withFaults)
	return nil
}

func main() {
	var (
		seeds   = flag.Int("seeds", 8, "number of generated nests to test")
		start   = flag.Int64("start", 1, "first seed (seeds start..start+seeds-1)")
		threads = flag.Int("threads", omp.DefaultThreads(), "worker team size")
		faults  = flag.Bool("faults", false, "additionally sweep with injected root faults (float64 roots perturbed beyond correction range)")
		verbose = flag.Bool("v", false, "print one line per case")
	)
	flag.Parse()
	if err := run(os.Stdout, *seeds, *start, *threads, *faults, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "stresstool: %v\n", err)
		os.Exit(1)
	}
}
