package faults

import (
	"sync/atomic"
	"time"
)

// Plan is a test-only fault-injection plan. While a plan is active
// (Activate), the runtime consults it at well-defined points:
//
//   - the unranker passes every closed-form root evaluation through
//     PerturbRoot, so tests can force the exact-correction and
//     binary-search fallback paths deterministically;
//   - the parallel runtime calls OnChunk before executing each schedule
//     chunk, so tests can inject delays (sleep inside the hook), errors
//     (return non-nil) or worker panics (panic inside the hook) at exact
//     chunk coordinates.
//
// All hooks may run concurrently from multiple workers and must be
// safe for concurrent use. Production builds pay one atomic load per
// consultation point (per chunk, not per iteration) when no plan is
// active.
type Plan struct {
	// PerturbRoot maps the float evaluation of a level's convenient
	// root to the value the unranker will see. level is the 0-based
	// nest level being recovered.
	PerturbRoot func(level int, x complex128) complex128
	// PerturbLevel maps a closed-form-recovered index value (after the
	// exact correction, which would otherwise fix any root
	// perturbation) to the value the unranker records, so tests can
	// force a wrong first-pass tuple and exercise the verify-mode
	// escalation deterministically. The exact binary-search paths do
	// not consult it.
	PerturbLevel func(level int, ik int64) int64
	// OnChunk runs before each schedule chunk [clo, chi) on worker tid.
	// A non-nil return aborts the run with that error; a panic inside
	// exercises the worker-panic path; sleeping injects delay.
	OnChunk func(tid int, clo, chi int64) error
	// ChunkDelay, when positive, sleeps this long before every chunk
	// (a shorthand for slowing runs enough to observe cancellation).
	ChunkDelay time.Duration
	// OnShard runs at the start of every shard attempt [lo, hi]
	// (inclusive pc bounds) on executor worker. A panic inside emulates
	// an executor crash mid-shard (the attempt's buffered effects are
	// discarded and the shard is retried); a non-nil return fails the
	// attempt through the same retry ladder; sleeping past the lease TTL
	// turns the attempt into a straggler and exercises lease expiry plus
	// speculative reassignment.
	OnShard func(worker int, lo, hi int64) error
	// ShardDelay, when positive, sleeps this long before every shard
	// attempt (a shorthand for making every executor a straggler).
	ShardDelay time.Duration
}

// active is the process-wide injection plan; nil means no injection.
var active atomic.Pointer[Plan]

// Activate installs p as the process-wide fault plan and returns a
// function restoring the previous plan. Tests must call the restore
// function (defer Activate(p)()); overlapping activations from parallel
// tests are not supported.
func Activate(p *Plan) (restore func()) {
	prev := active.Swap(p)
	return func() { active.Store(prev) }
}

// Active returns the current fault plan, or nil when none is installed
// (the production state).
func Active() *Plan {
	return active.Load()
}

// InjectChunk runs the active plan's chunk hooks for chunk [clo, chi)
// on worker tid; it returns nil when no plan is active.
func InjectChunk(tid int, clo, chi int64) error {
	p := Active()
	if p == nil {
		return nil
	}
	if p.ChunkDelay > 0 {
		time.Sleep(p.ChunkDelay)
	}
	if p.OnChunk != nil {
		return p.OnChunk(tid, clo, chi)
	}
	return nil
}

// InjectShard runs the active plan's shard hooks for shard attempt
// [lo, hi] on executor worker; it returns nil when no plan is active.
func InjectShard(worker int, lo, hi int64) error {
	p := Active()
	if p == nil {
		return nil
	}
	if p.ShardDelay > 0 {
		time.Sleep(p.ShardDelay)
	}
	if p.OnShard != nil {
		return p.OnShard(worker, lo, hi)
	}
	return nil
}

// PerturbRoot applies the active plan's root perturbation, if any.
func PerturbRoot(level int, x complex128) complex128 {
	p := Active()
	if p == nil || p.PerturbRoot == nil {
		return x
	}
	return p.PerturbRoot(level, x)
}

// PerturbLevel applies the active plan's recovered-index perturbation,
// if any.
func PerturbLevel(level int, ik int64) int64 {
	p := Active()
	if p == nil || p.PerturbLevel == nil {
		return ik
	}
	return p.PerturbLevel(level, ik)
}
