package omp

import (
	"context"
	"fmt"

	"repro/internal/nest"
)

// UncollapsedFor executes a nest the pre-collapse way: the outermost
// loop is workshared across the team under the schedule, and each worker
// runs the inner loops serially for its outer iterations. body receives
// the worker id and the full iteration tuple (slice reused per worker),
// the same contract as CollapsedFor over the same nest.
//
// This is the bottom rung of the degradation ladder: when the collapsing
// technique is inapplicable (ranking degree above 4, non-affine bounds,
// no convenient root, int64 overflow), the program still runs in
// parallel — with the load imbalance of outer-loop worksharing the paper
// sets out to eliminate, but without a hard failure. Bounds are
// evaluated as exact polynomials per prefix rather than through the
// affine fast path, so nests outside the Fig. 5 model (e.g. quadratic
// bounds) execute too. Cancellation and worker-panic capture follow
// ParallelForChunksCtx (chunks here are ranges of the outermost
// iterator).
func UncollapsedFor(ctx context.Context, n *nest.Nest, params map[string]int64,
	threads int, sched Schedule, body func(tid int, idx []int64)) error {
	depth := len(n.Loops)
	if depth == 0 {
		return fmt.Errorf("omp: empty nest")
	}
	np := len(n.Params)
	order := make([]string, 0, np+depth)
	order = append(order, n.Params...)
	order = append(order, n.Indices()...)
	// Compile each level's bounds over [params..., i_0..i_{k-1}]: exact
	// integer evaluation, no affinity requirement.
	los := make([]*nestBound, depth)
	his := make([]*nestBound, depth)
	for k, l := range n.Loops {
		lo, err := l.Lower.Compile(order[:np+k])
		if err != nil {
			return fmt.Errorf("omp: fallback lower bound of %q: %w", l.Index, err)
		}
		hi, err := l.Upper.Compile(order[:np+k])
		if err != nil {
			return fmt.Errorf("omp: fallback upper bound of %q: %w", l.Index, err)
		}
		los[k], his[k] = &nestBound{lo}, &nestBound{hi}
	}
	pvals := make([]int64, np)
	for i, p := range n.Params {
		v, ok := params[p]
		if !ok {
			return fmt.Errorf("omp: missing value for parameter %q", p)
		}
		pvals[i] = v
	}
	lo0 := los[0].c.EvalExact(pvals)
	hi0 := his[0].c.EvalExact(pvals)
	return ParallelForChunksCtx(ctx, threads, lo0, hi0, sched, func(tid int, clo, chi int64) error {
		vals := make([]int64, np+depth)
		copy(vals, pvals)
		idx := vals[np:]
		var walk func(k int)
		walk = func(k int) {
			if k == depth {
				body(tid, idx)
				return
			}
			vhi := his[k].c.EvalExact(vals[:np+k])
			for v := los[k].c.EvalExact(vals[:np+k]); v < vhi; v++ {
				idx[k] = v
				walk(k + 1)
			}
		}
		for i0 := clo; i0 < chi; i0++ {
			idx[0] = i0
			walk(1)
		}
		return nil
	})
}

// nestBound wraps a compiled polynomial bound (indirection keeps the
// poly dependency local to this file).
type nestBound struct {
	c interface{ EvalExact([]int64) int64 }
}
