package nest

import (
	"reflect"
	"testing"

	"repro/internal/poly"
)

// Correlation nest of the paper's Fig. 1 (outer two loops).
func correlationNest() *Nest {
	return MustNew([]string{"N"}, L("i", "0", "N-1"), L("j", "i+1", "N"))
}

// Tetrahedral nest of the paper's Fig. 6.
func tetraNest() *Nest {
	return MustNew([]string{"N"}, L("i", "0", "N-1"), L("j", "0", "i+1"), L("k", "j", "i+1"))
}

func TestValidateAcceptsModels(t *testing.T) {
	good := []*Nest{
		correlationNest(),
		tetraNest(),
		MustNew(nil, L("i", "0", "10")),
		MustNew([]string{"N", "M"}, L("i", "0", "N"), L("j", "i", "i+M")), // rhomboid
	}
	for _, n := range good {
		if err := n.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", n.Indices(), err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		n    *Nest
	}{
		{"empty", &Nest{}},
		{"dup index", &Nest{Loops: []Loop{L("i", "0", "5"), L("i", "0", "5")}}},
		{"dup param/index", &Nest{Params: []string{"i"}, Loops: []Loop{L("i", "0", "5")}}},
		{"unknown var", &Nest{Loops: []Loop{L("i", "0", "N")}}},
		{"inner var in outer bound", &Nest{Loops: []Loop{L("i", "0", "j"), L("j", "0", "5")}}},
		{"non-affine", &Nest{Params: []string{"N"}, Loops: []Loop{L("i", "0", "N"), L("j", "0", "i^2")}}},
		{"bilinear", &Nest{Params: []string{"N"}, Loops: []Loop{L("i", "0", "N"), L("j", "0", "i*N")}}},
		{"fractional", &Nest{Params: []string{"N"}, Loops: []Loop{L("i", "0", "N/2")}}},
		{"nil bound", &Nest{Loops: []Loop{{Index: "i", Lower: poly.Int(0)}}}},
		{"empty index", &Nest{Loops: []Loop{{Index: "", Lower: poly.Int(0), Upper: poly.Int(4)}}}},
	}
	for _, c := range cases {
		if err := c.n.Validate(); err == nil {
			t.Errorf("%s: Validate unexpectedly succeeded", c.name)
		}
	}
}

func TestEnumerateCorrelation(t *testing.T) {
	inst := correlationNest().MustBind(map[string]int64{"N": 5})
	var got [][2]int64
	inst.Enumerate(func(idx []int64) bool {
		got = append(got, [2]int64{idx[0], idx[1]})
		return true
	})
	want := [][2]int64{
		{0, 1}, {0, 2}, {0, 3}, {0, 4},
		{1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4},
		{3, 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Enumerate = %v, want %v", got, want)
	}
	if c := inst.Count(); c != 10 {
		t.Errorf("Count = %d, want 10", c)
	}
}

func TestCountTetra(t *testing.T) {
	// Paper: total iterations of Fig. 6 nest is (N^3 - N)/6.
	for _, N := range []int64{2, 3, 5, 8, 13} {
		inst := tetraNest().MustBind(map[string]int64{"N": N})
		want := (N*N*N - N) / 6
		if c := inst.Count(); c != want {
			t.Errorf("N=%d: Count = %d, want %d", N, c, want)
		}
	}
}

func TestFirstAndIncrementAgainstEnumerate(t *testing.T) {
	nests := []*Nest{correlationNest(), tetraNest(),
		MustNew([]string{"N", "M"}, L("i", "0", "N"), L("j", "i", "i+M"))}
	params := []map[string]int64{{"N": 6}, {"N": 6}, {"N": 4, "M": 3}}
	for ni, n := range nests {
		inst := n.MustBind(params[ni])
		var all [][]int64
		inst.Enumerate(func(idx []int64) bool {
			all = append(all, append([]int64(nil), idx...))
			return true
		})
		idx := make([]int64, n.Depth())
		if !inst.First(idx) {
			t.Fatalf("nest %d: First reported empty", ni)
		}
		for i, want := range all {
			if !reflect.DeepEqual(idx, want) {
				t.Fatalf("nest %d step %d: idx = %v, want %v", ni, i, idx, want)
			}
			more := inst.Increment(idx)
			if more != (i < len(all)-1) {
				t.Fatalf("nest %d step %d: Increment = %v", ni, i, more)
			}
		}
	}
}

func TestEmptyAndZeroTripSpaces(t *testing.T) {
	inst := correlationNest().MustBind(map[string]int64{"N": 1})
	idx := make([]int64, 2)
	if inst.First(idx) {
		t.Error("First on empty space returned true")
	}
	if c := inst.Count(); c != 0 {
		t.Errorf("Count = %d on empty space", c)
	}
	// Zero-trip inner prefixes must be skipped: j runs i..min(i+2, 4) with
	// an empty range for some i when bounds cross.
	n := MustNew(nil, L("i", "0", "5"), L("j", "i", "3"))
	// For i >= 3 the j loop is empty (trip <= 0 is irregular; use CheckRegular)
	bi := n.MustBind(nil)
	if err := bi.CheckRegular(); err == nil {
		t.Error("CheckRegular missed negative trip count")
	}
	// A regular zero-trip case: j in [i, 3) for i in [0,4); at i=3 the j
	// range [3,3) is empty but not negative, which is permitted.
	n2 := MustNew(nil, L("i", "0", "4"), L("j", "i", "3"))
	bi2 := n2.MustBind(nil)
	if err := bi2.CheckRegular(); err != nil {
		t.Errorf("CheckRegular flagged a zero-trip (non-negative) loop: %v", err)
	}
	if c := bi2.Count(); c != 6 {
		t.Errorf("Count = %d, want 6", c)
	}
}

func TestCheckRegular(t *testing.T) {
	ok := MustNew(nil, L("i", "0", "4"), L("j", "i", "4")) // triangular incl. zero-trip? j in [i,4): i=3 -> 1 iter; regular
	if err := ok.MustBind(nil).CheckRegular(); err != nil {
		t.Errorf("CheckRegular(ok): %v", err)
	}
	bad := MustNew(nil, L("i", "0", "6"), L("j", "i", "4"))
	if err := bad.MustBind(nil).CheckRegular(); err == nil {
		t.Error("CheckRegular(bad) passed")
	}
}

func TestContains(t *testing.T) {
	inst := correlationNest().MustBind(map[string]int64{"N": 5})
	if !inst.Contains([]int64{2, 3}) {
		t.Error("Contains(2,3) = false")
	}
	if inst.Contains([]int64{2, 2}) {
		t.Error("Contains(2,2) = true (j must be > i)")
	}
	if inst.Contains([]int64{4, 5}) {
		t.Error("Contains(4,5) = true (out of range)")
	}
	if inst.Contains([]int64{1}) {
		t.Error("Contains wrong arity = true")
	}
}

func TestLexMinTail(t *testing.T) {
	n := tetraNest()
	// Tail after level 0 (i): j's lexmin is 0, k's lexmin is j's lexmin = 0.
	tail0 := n.LexMinTail(0)
	if !tail0["j"].Equal(poly.Int(0)) {
		t.Errorf("lexmin j = %s", tail0["j"])
	}
	if !tail0["k"].Equal(poly.Int(0)) {
		t.Errorf("lexmin k = %s", tail0["k"])
	}
	// Correlation: tail after level 0 is j = i+1.
	c := correlationNest()
	tail := c.LexMinTail(0)
	if !tail["j"].Equal(poly.MustParse("i+1")) {
		t.Errorf("lexmin j = %s", tail["j"])
	}
	// Chain: for nest i; j=i..; k=j.. the lexmin of k after level 0 is i.
	ch := MustNew([]string{"N"}, L("i", "0", "N"), L("j", "i", "N"), L("k", "j", "N"))
	tc := ch.LexMinTail(0)
	if !tc["k"].Equal(poly.Var("i")) {
		t.Errorf("chained lexmin k = %s", tc["k"])
	}
	if got := ch.LexMinTail(2); len(got) != 0 {
		t.Errorf("LexMinTail(last) = %v", got)
	}
}

func TestBindErrors(t *testing.T) {
	n := correlationNest()
	if _, err := n.Bind(nil); err == nil {
		t.Error("Bind without params succeeded")
	}
	if _, err := n.Bind(map[string]int64{"M": 5}); err == nil {
		t.Error("Bind with wrong param succeeded")
	}
	if _, err := n.Bind(map[string]int64{"N": 5, "M": 1}); err == nil {
		t.Error("Bind with extra param succeeded")
	}
}

func TestStringRendering(t *testing.T) {
	s := correlationNest().String()
	want := "params N\nfor (i = 0 ; i < N - 1 ; i++)\n  for (j = i + 1 ; j < N ; j++)\n"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}
