package faults

import (
	"sync"
	"testing"
)

// TestRegistryConcurrentActivateAndFire hammers the injection registry
// from two sides at once — goroutines swapping plans in and out
// (Activate + restore) and goroutines firing every consultation point —
// and checks, under the race detector, that the registry itself is
// data-race free and that a firing goroutine always observes either a
// fully-installed plan or none (never a torn one).
func TestRegistryConcurrentActivateAndFire(t *testing.T) {
	const (
		swappers = 4
		firers   = 4
		rounds   = 500
	)
	// Two alternating plans; both tag their outputs so firers can check
	// they saw a coherent plan, whichever one it was.
	planA := &Plan{
		PerturbRoot:  func(level int, x complex128) complex128 { return x + 1 },
		PerturbLevel: func(level int, ik int64) int64 { return ik + 1 },
		OnChunk:      func(tid int, clo, chi int64) error { return nil },
	}
	planB := &Plan{
		PerturbRoot:  func(level int, x complex128) complex128 { return x + 2 },
		PerturbLevel: func(level int, ik int64) int64 { return ik + 2 },
		OnChunk:      func(tid int, clo, chi int64) error { return nil },
	}

	var wg sync.WaitGroup
	for s := 0; s < swappers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p := planA
			if s%2 == 1 {
				p = planB
			}
			for i := 0; i < rounds; i++ {
				restore := Activate(p)
				restore()
			}
		}(s)
	}
	for f := 0; f < firers; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := InjectChunk(0, int64(i), int64(i)+8); err != nil {
					t.Errorf("InjectChunk: unexpected error %v", err)
					return
				}
				x := PerturbRoot(0, 5)
				if x != 5 && x != 6 && x != 7 {
					t.Errorf("PerturbRoot saw torn plan: %v", x)
					return
				}
				ik := PerturbLevel(0, 10)
				if ik != 10 && ik != 11 && ik != 12 {
					t.Errorf("PerturbLevel saw torn plan: %v", ik)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Concurrent Activate/restore pairs may interleave so that a stale
	// plan stays installed (documented: overlapping activations are not
	// coordinated) — what matters above is the absence of races and torn
	// reads. Force the registry idle and check the production no-op path.
	Activate(nil)
	if Active() != nil {
		t.Fatalf("plan still active after explicit deactivation")
	}
	if got := PerturbRoot(0, 3+4i); got != 3+4i {
		t.Fatalf("idle registry perturbs roots: %v", got)
	}
}
