package poly

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randPoly generates a small random polynomial over the given variables.
func randPoly(r *rand.Rand, vars []string, maxTerms, maxDeg, maxCoeff int) *Poly {
	p := Zero()
	n := r.Intn(maxTerms + 1)
	for t := 0; t < n; t++ {
		c := big.NewRat(int64(r.Intn(2*maxCoeff+1)-maxCoeff), int64(r.Intn(3)+1))
		m := Const(c)
		for _, v := range vars {
			if r.Intn(2) == 1 {
				m = m.Mul(VarPow(v, r.Intn(maxDeg)+1))
			}
		}
		p = p.Add(m)
	}
	return p
}

type triple struct{ A, B, C *Poly }

// Generate implements quick.Generator for random polynomial triples.
func (triple) Generate(r *rand.Rand, _ int) reflect.Value {
	vars := []string{"x", "y", "N"}
	return reflect.ValueOf(triple{
		A: randPoly(r, vars, 4, 3, 6),
		B: randPoly(r, vars, 4, 3, 6),
		C: randPoly(r, vars, 4, 3, 6),
	})
}

func TestRingLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Add(tr.B).Equal(tr.B.Add(tr.A))
	}, cfg); err != nil {
		t.Error("add commutativity:", err)
	}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Mul(tr.B).Equal(tr.B.Mul(tr.A))
	}, cfg); err != nil {
		t.Error("mul commutativity:", err)
	}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Add(tr.B).Add(tr.C).Equal(tr.A.Add(tr.B.Add(tr.C)))
	}, cfg); err != nil {
		t.Error("add associativity:", err)
	}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Mul(tr.B).Mul(tr.C).Equal(tr.A.Mul(tr.B.Mul(tr.C)))
	}, cfg); err != nil {
		t.Error("mul associativity:", err)
	}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Mul(tr.B.Add(tr.C)).Equal(tr.A.Mul(tr.B).Add(tr.A.Mul(tr.C)))
	}, cfg); err != nil {
		t.Error("distributivity:", err)
	}
	if err := quick.Check(func(tr triple) bool {
		return tr.A.Sub(tr.A).IsZero() && tr.A.Add(tr.A.Neg()).IsZero()
	}, cfg); err != nil {
		t.Error("additive inverse:", err)
	}
}

func TestEvalHomomorphism(t *testing.T) {
	// (p+q)(x) == p(x)+q(x), (p*q)(x) == p(x)*q(x)
	cfg := &quick.Config{MaxCount: 100}
	env := map[string]*big.Rat{
		"x": big.NewRat(3, 2), "y": big.NewRat(-5, 1), "N": big.NewRat(7, 3),
	}
	if err := quick.Check(func(tr triple) bool {
		s, err1 := tr.A.Add(tr.B).EvalRat(env)
		pa, err2 := tr.A.EvalRat(env)
		pb, err3 := tr.B.EvalRat(env)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if s.Cmp(new(big.Rat).Add(pa, pb)) != 0 {
			return false
		}
		m, err4 := tr.A.Mul(tr.B).EvalRat(env)
		if err4 != nil {
			return false
		}
		return m.Cmp(new(big.Rat).Mul(pa, pb)) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSubstHomomorphism(t *testing.T) {
	// subst(p+q) == subst(p)+subst(q), subst(p*q) == subst(p)*subst(q)
	cfg := &quick.Config{MaxCount: 60}
	sub := MustParse("2*y - 3")
	if err := quick.Check(func(tr triple) bool {
		lhs := tr.A.Mul(tr.B).Subst("x", sub)
		rhs := tr.A.Subst("x", sub).Mul(tr.B.Subst("x", sub))
		if !lhs.Equal(rhs) {
			return false
		}
		return tr.A.Add(tr.B).Subst("x", sub).Equal(tr.A.Subst("x", sub).Add(tr.B.Subst("x", sub)))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSubstAllSimultaneous(t *testing.T) {
	p := MustParse("x + 2*y")
	q := p.SubstAll(map[string]*Poly{"x": Var("y"), "y": Var("x")})
	want := MustParse("y + 2*x")
	if !q.Equal(want) {
		t.Errorf("swap substitution: got %s, want %s", q, want)
	}
}

func TestParseKnownPolynomials(t *testing.T) {
	// Ranking polynomial of the paper's correlation example (§III).
	r := MustParse("(2*i*N + 2*j - i^2 - 3*i)/2")
	cases := []struct {
		i, j, N int64
		want    int64
	}{
		{0, 1, 10, 1}, {0, 2, 10, 2}, {0, 9, 10, 9}, {1, 2, 10, 10}, {8, 9, 10, 45},
	}
	for _, c := range cases {
		v, err := r.EvalInt64(map[string]int64{"i": c.i, "j": c.j, "N": c.N})
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsInt() || v.Num().Int64() != c.want {
			t.Errorf("r(%d,%d;N=%d) = %s, want %d", c.i, c.j, c.N, v, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "x +", "2 ** 3", "x^y", "x^-1", "(x+1", "x/ (y)", "1/0", "x$y", "x^99"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(tr triple) bool {
		s := tr.A.String()
		q, err := Parse(s)
		if err != nil {
			t.Logf("Parse(%q): %v", s, err)
			return false
		}
		return q.Equal(tr.A)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct{ src, want string }{
		{"0", "0"},
		{"x - x", "0"},
		{"-x", "-x"},
		{"1 - x", "-x + 1"},
		{"x*x*x - 2*x + 1", "x^3 - 2*x + 1"},
		{"(x)/2", "(1/2)*x"},
		{"y*x", "x*y"},
	}
	for _, c := range cases {
		if got := MustParse(c.src).String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestDegreesAndVars(t *testing.T) {
	p := MustParse("2*i^2*j + N*j^3 - 4")
	if d := p.DegreeIn("i"); d != 2 {
		t.Errorf("DegreeIn(i) = %d", d)
	}
	if d := p.DegreeIn("j"); d != 3 {
		t.Errorf("DegreeIn(j) = %d", d)
	}
	if d := p.DegreeIn("k"); d != 0 {
		t.Errorf("DegreeIn(k) = %d", d)
	}
	if d := p.TotalDegree(); d != 4 {
		t.Errorf("TotalDegree = %d", d)
	}
	if d := p.MaxVarDegree(); d != 3 {
		t.Errorf("MaxVarDegree = %d", d)
	}
	if vs := p.Vars(); !reflect.DeepEqual(vs, []string{"N", "i", "j"}) {
		t.Errorf("Vars = %v", vs)
	}
	if !p.HasVar("N") || p.HasVar("z") {
		t.Error("HasVar wrong")
	}
}

func TestUnivariateIn(t *testing.T) {
	p := MustParse("2*x^2*y + 3*x - y + 7")
	cs := p.UnivariateIn("x")
	if len(cs) != 3 {
		t.Fatalf("len = %d", len(cs))
	}
	if !cs[0].Equal(MustParse("7 - y")) {
		t.Errorf("c0 = %s", cs[0])
	}
	if !cs[1].Equal(Int(3)) {
		t.Errorf("c1 = %s", cs[1])
	}
	if !cs[2].Equal(MustParse("2*y")) {
		t.Errorf("c2 = %s", cs[2])
	}
	// Recombining must reproduce p.
	sum := Zero()
	for k, c := range cs {
		sum = sum.Add(c.Mul(VarPow("x", k)))
	}
	if !sum.Equal(p) {
		t.Error("univariate recombination failed")
	}
}

func TestDerivative(t *testing.T) {
	p := MustParse("x^3 - 2*x*y + y^2 + 5")
	if got, want := p.Derivative("x"), MustParse("3*x^2 - 2*y"); !got.Equal(want) {
		t.Errorf("d/dx = %s, want %s", got, want)
	}
	if got, want := p.Derivative("y"), MustParse("2*y - 2*x"); !got.Equal(want) {
		t.Errorf("d/dy = %s, want %s", got, want)
	}
	if got := Int(7).Derivative("x"); !got.IsZero() {
		t.Errorf("d/dx 7 = %s", got)
	}
}

func TestConstValueAndCoeffOf(t *testing.T) {
	p := MustParse("x^2/4 - 3*x + 9")
	if c := p.CoeffOf(map[string]int{"x": 2}); c.Cmp(big.NewRat(1, 4)) != 0 {
		t.Errorf("coeff x^2 = %s", c)
	}
	if c := p.CoeffOf(map[string]int{}); c.Cmp(big.NewRat(9, 1)) != 0 {
		t.Errorf("constant coeff = %s", c)
	}
	if c := p.CoeffOf(map[string]int{"x": 5}); c.Sign() != 0 {
		t.Errorf("coeff x^5 = %s", c)
	}
	if !Int(0).IsConst() || !Int(3).IsConst() || MustParse("x").IsConst() {
		t.Error("IsConst wrong")
	}
	if v := Int(3).ConstValue(); v.Cmp(big.NewRat(3, 1)) != 0 {
		t.Error("ConstValue wrong")
	}
}

func TestPowInt(t *testing.T) {
	p := MustParse("x + 1")
	if got, want := p.PowInt(3), MustParse("x^3 + 3*x^2 + 3*x + 1"); !got.Equal(want) {
		t.Errorf("(x+1)^3 = %s", got)
	}
	if got := p.PowInt(0); !got.Equal(One()) {
		t.Errorf("(x+1)^0 = %s", got)
	}
}

func TestCommonDenominator(t *testing.T) {
	p := MustParse("x/2 + y/3 - 1/4")
	if d := p.CommonDenominator(); d.Int64() != 12 {
		t.Errorf("CommonDenominator = %s", d)
	}
	if d := Zero().CommonDenominator(); d.Int64() != 1 {
		t.Errorf("CommonDenominator(0) = %s", d)
	}
}
