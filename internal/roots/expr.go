// Package roots provides symbolic closed-form roots of univariate
// polynomial equations of degree 1 to 4 whose coefficients are
// multivariate polynomials (in the loop parameters, the outer loop
// indices and the collapsed index pc). This is the role Maxima's solve
// plays in the paper (§IV.A): the returned expressions are radical
// formulas — compositions of polynomial coefficients, arithmetic, and
// rational powers — that can be evaluated numerically over complex128
// (§IV.C requires complex intermediates: a convenient root may pass
// through ℂ even when its final value is real) and pretty-printed as C99
// or Go source.
package roots

import (
	"fmt"
	"math/big"
	"math/cmplx"
	"strings"

	"repro/internal/poly"
)

// Expr is a symbolic expression tree over complex values.
type Expr interface {
	// Eval evaluates the expression with real-valued variable bindings.
	Eval(env map[string]float64) complex128
	// emit renders the expression in the given dialect.
	emit(b *strings.Builder, d dialect)
	// prec returns the operator precedence for parenthesisation.
	prec() int
}

type dialect int

const (
	dialectMath dialect = iota // human-readable: sqrt(x), cbrt(x), x^(1/2)
	dialectC                   // C99 complex: csqrt, cpow, parenthesised
	dialectGo                  // Go: cmplx.Sqrt, cmplx.Pow
)

const (
	precAdd = iota + 1
	precMul
	precUnary
	precPow
	precAtom
)

// Num is a rational constant.
type Num struct{ Val *big.Rat }

// NumInt returns the integer constant n as an expression.
func NumInt(n int64) Expr { return Num{Val: new(big.Rat).SetInt64(n)} }

// NumRat returns the rational constant num/den as an expression.
func NumRat(num, den int64) Expr { return Num{Val: big.NewRat(num, den)} }

func (n Num) Eval(map[string]float64) complex128 {
	f, _ := n.Val.Float64()
	return complex(f, 0)
}
func (n Num) prec() int {
	if n.Val.Sign() < 0 || !n.Val.IsInt() {
		return precMul
	}
	return precAtom
}

// PolyExpr wraps a multivariate polynomial as a leaf.
type PolyExpr struct{ P *poly.Poly }

// P wraps a polynomial as an expression leaf.
func P(p *poly.Poly) Expr { return PolyExpr{P: p} }

func (p PolyExpr) Eval(env map[string]float64) complex128 {
	v, err := p.P.EvalFloat(env)
	if err != nil {
		return cmplx.NaN()
	}
	return complex(v, 0)
}
func (p PolyExpr) prec() int {
	if p.P.IsConst() {
		return Num{Val: p.P.ConstValue()}.prec()
	}
	if len(p.P.Vars()) == 1 && p.P.TotalDegree() == 1 &&
		p.P.CoeffOf(map[string]int{}).Sign() == 0 &&
		p.P.CoeffOf(map[string]int{p.P.Vars()[0]: 1}).Cmp(big.NewRat(1, 1)) == 0 {
		return precAtom // bare variable
	}
	return precAdd
}

// Add is a + b.
type Add struct{ A, B Expr }

func (e Add) Eval(env map[string]float64) complex128 { return e.A.Eval(env) + e.B.Eval(env) }
func (e Add) prec() int                              { return precAdd }

// Sub is a - b.
type Sub struct{ A, B Expr }

func (e Sub) Eval(env map[string]float64) complex128 { return e.A.Eval(env) - e.B.Eval(env) }
func (e Sub) prec() int                              { return precAdd }

// Mul is a * b.
type Mul struct{ A, B Expr }

func (e Mul) Eval(env map[string]float64) complex128 { return e.A.Eval(env) * e.B.Eval(env) }
func (e Mul) prec() int                              { return precMul }

// Div is a / b. Division by zero yields Inf/NaN, which callers detect.
type Div struct{ A, B Expr }

func (e Div) Eval(env map[string]float64) complex128 { return e.A.Eval(env) / e.B.Eval(env) }
func (e Div) prec() int                              { return precMul }

// Neg is -a.
type Neg struct{ A Expr }

func (e Neg) Eval(env map[string]float64) complex128 { return -e.A.Eval(env) }
func (e Neg) prec() int                              { return precUnary }

// Pow is base^(Num/Den) using the principal branch (matching C99 cpow and
// Go cmplx.Pow). Den must be positive.
type Pow struct {
	Base     Expr
	Num, Den int
}

func (e Pow) Eval(env map[string]float64) complex128 {
	b := e.Base.Eval(env)
	if e.Den == 1 {
		// Integer powers evaluated by repeated multiplication for accuracy.
		n := e.Num
		inv := false
		if n < 0 {
			n, inv = -n, true
		}
		r := complex(1, 0)
		for i := 0; i < n; i++ {
			r *= b
		}
		if inv {
			r = 1 / r
		}
		return r
	}
	return cmplx.Pow(b, complex(float64(e.Num)/float64(e.Den), 0))
}
func (e Pow) prec() int { return precPow }

// Sqrt returns the principal square root of a.
func Sqrt(a Expr) Expr { return Pow{Base: a, Num: 1, Den: 2} }

// Cbrt returns the principal complex cube root of a (cpow(a, 1./3)); for
// negative real a this is a complex value, not the real cube root.
func Cbrt(a Expr) Expr { return Pow{Base: a, Num: 1, Den: 3} }

// String renders the expression in human-readable mathematical notation.
func String(e Expr) string {
	var b strings.Builder
	e.emit(&b, dialectMath)
	return b.String()
}

// CString renders the expression as a C99 expression over double complex,
// using csqrt/cpow; variables appear as (double)name casts like the
// paper's generated code (Fig. 7).
func CString(e Expr) string {
	var b strings.Builder
	e.emit(&b, dialectC)
	return b.String()
}

// GoString renders the expression as a Go expression over complex128
// using the math/cmplx package; variables must be in scope as float64.
func GoString(e Expr) string {
	var b strings.Builder
	e.emit(&b, dialectGo)
	return b.String()
}

func emitChild(b *strings.Builder, d dialect, child Expr, parentPrec int) {
	if child.prec() < parentPrec {
		b.WriteByte('(')
		child.emit(b, d)
		b.WriteByte(')')
	} else {
		child.emit(b, d)
	}
}

func (n Num) emit(b *strings.Builder, d dialect) {
	if n.Val.IsInt() {
		b.WriteString(n.Val.Num().String())
		return
	}
	switch d {
	case dialectMath:
		fmt.Fprintf(b, "%s/%s", n.Val.Num(), n.Val.Denom())
	default:
		fmt.Fprintf(b, "%s.0/%s.0", n.Val.Num(), n.Val.Denom())
	}
}

func (p PolyExpr) emit(b *strings.Builder, d dialect) {
	switch d {
	case dialectMath:
		b.WriteString(p.P.String())
	case dialectGo:
		// Go has no implicit float64->complex128 conversion, so leaves
		// mixing with cmplx results must be converted explicitly.
		b.WriteString("complex(")
		b.WriteString(polyToCode(p.P, d))
		b.WriteString(", 0)")
	default:
		// C promotes double to double complex implicitly.
		b.WriteString(polyToCode(p.P, d))
	}
}

// PolyC renders a polynomial as a C expression (float rational
// coefficients, pow-free integer powers).
func PolyC(p *poly.Poly) string { return polyToCode(p, dialectC) }

// PolyInt renders a polynomial as an integer C/Go expression. Rational
// coefficients are handled by rendering (D·p)/D with the common
// denominator D — exact whenever D divides the evaluated numerator, which
// holds for counting and ranking polynomials evaluated on their domain
// (e.g. (N-1)*N/2 in the paper's Fig. 3 header).
func PolyInt(p *poly.Poly) string {
	den := p.CommonDenominator()
	if den.IsInt64() && den.Int64() == 1 {
		return polyToCode(p, dialectC)
	}
	scaled := p.Scale(new(big.Rat).SetFrac(den, big.NewInt(1)))
	return "(" + polyToCode(scaled, dialectC) + ")/" + den.String()
}

// PolyGo renders a polynomial as a Go expression over float64 variables.
func PolyGo(p *poly.Poly) string { return polyToCode(p, dialectGo) }

// polyToCode renders a polynomial as C/Go source with explicit float
// rational coefficients and pow-free integer powers (x*x), matching the
// flavour of the paper's generated code.
func polyToCode(p *poly.Poly, d dialect) string {
	_ = d
	terms := polyTerms(p)
	if len(terms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range terms {
		c := t.coeff
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		if i == 0 {
			if neg {
				b.WriteByte('-')
			}
		} else if neg {
			b.WriteString(" - ")
		} else {
			b.WriteString(" + ")
		}
		var factors []string
		one := abs.Cmp(big.NewRat(1, 1)) == 0
		if !one || len(t.vars) == 0 {
			if abs.IsInt() {
				factors = append(factors, abs.Num().String())
			} else {
				factors = append(factors, fmt.Sprintf("%s.0/%s.0", abs.Num(), abs.Denom()))
			}
		}
		for _, v := range t.vars {
			for k := 0; k < v.pow; k++ {
				factors = append(factors, v.name)
			}
		}
		b.WriteString(strings.Join(factors, "*"))
	}
	return b.String()
}

type codeVar struct {
	name string
	pow  int
}
type codeTerm struct {
	coeff *big.Rat
	vars  []codeVar
}

// polyTerms extracts the deterministic term list of a polynomial (same
// order as Poly.String: descending total degree, then monomial key).
func polyTerms(p *poly.Poly) []codeTerm {
	var out []codeTerm
	for _, t := range p.Terms() {
		ct := codeTerm{coeff: t.Coeff}
		for _, v := range t.Vars {
			ct.vars = append(ct.vars, codeVar{name: v.Name, pow: v.Pow})
		}
		out = append(out, ct)
	}
	return out
}

func (e Add) emit(b *strings.Builder, d dialect) {
	emitChild(b, d, e.A, precAdd)
	b.WriteString(" + ")
	emitChild(b, d, e.B, precAdd+1)
}

func (e Sub) emit(b *strings.Builder, d dialect) {
	emitChild(b, d, e.A, precAdd)
	b.WriteString(" - ")
	emitChild(b, d, e.B, precAdd+1)
}

func (e Mul) emit(b *strings.Builder, d dialect) {
	emitChild(b, d, e.A, precMul)
	b.WriteString("*")
	emitChild(b, d, e.B, precMul)
}

func (e Div) emit(b *strings.Builder, d dialect) {
	emitChild(b, d, e.A, precMul)
	b.WriteString("/")
	emitChild(b, d, e.B, precMul+1)
}

func (e Neg) emit(b *strings.Builder, d dialect) {
	b.WriteString("-")
	emitChild(b, d, e.A, precUnary)
}

func (e Pow) emit(b *strings.Builder, d dialect) {
	switch d {
	case dialectMath:
		switch {
		case e.Num == 1 && e.Den == 2:
			b.WriteString("sqrt(")
			e.Base.emit(b, d)
			b.WriteString(")")
		case e.Num == 1 && e.Den == 3:
			b.WriteString("cbrt(")
			e.Base.emit(b, d)
			b.WriteString(")")
		default:
			emitChild(b, d, e.Base, precPow+1)
			fmt.Fprintf(b, "^(%d/%d)", e.Num, e.Den)
		}
	case dialectC:
		if e.Num == 1 && e.Den == 2 {
			b.WriteString("csqrt(")
			e.Base.emit(b, d)
			b.WriteString(")")
			return
		}
		fmt.Fprintf(b, "cpow(")
		e.Base.emit(b, d)
		fmt.Fprintf(b, ", %d.0/%d.0)", e.Num, e.Den)
	case dialectGo:
		if e.Num == 1 && e.Den == 2 {
			b.WriteString("cmplx.Sqrt(")
			e.Base.emit(b, d)
			b.WriteString(")")
			return
		}
		b.WriteString("cmplx.Pow(")
		e.Base.emit(b, d)
		fmt.Fprintf(b, ", %d.0/%d.0)", e.Num, e.Den)
	}
}

// Rename returns e with every polynomial leaf's variables renamed through
// m (names absent from m are kept). Compiled evaluators are positional,
// so renaming is purely a symbolic-face concern: the collapse cache uses
// it to re-spell a structurally cached root expression in the caller's
// variable names without touching the shared compiled closures.
func Rename(e Expr, m map[string]string) Expr {
	switch v := e.(type) {
	case Num:
		return v
	case PolyExpr:
		return PolyExpr{P: v.P.Rename(m)}
	case Add:
		return Add{A: Rename(v.A, m), B: Rename(v.B, m)}
	case Sub:
		return Sub{A: Rename(v.A, m), B: Rename(v.B, m)}
	case Mul:
		return Mul{A: Rename(v.A, m), B: Rename(v.B, m)}
	case Div:
		return Div{A: Rename(v.A, m), B: Rename(v.B, m)}
	case Neg:
		return Neg{A: Rename(v.A, m)}
	case Pow:
		return Pow{Base: Rename(v.Base, m), Num: v.Num, Den: v.Den}
	}
	return e
}
