package cparse

import (
	"strings"
	"testing"

	"repro/internal/poly"
)

const correlationSrc = `
#pragma omp parallel for private(j, k) collapse(2) schedule(static)
for (i = 0; i < N - 1; i++)
  for (j = i + 1; j < N; j++) {
    for (k = 0; k < N; k++)
      a[i][j] += b[k][i] * c[k][j];
    a[j][i] = a[i][j];
  }
`

func TestParseCorrelation(t *testing.T) {
	prog, err := Parse(correlationSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.CollapseCount != 2 {
		t.Errorf("CollapseCount = %d", prog.CollapseCount)
	}
	if prog.Schedule != "static" {
		t.Errorf("Schedule = %q", prog.Schedule)
	}
	if got := prog.Nest.Depth(); got != 2 {
		t.Fatalf("Depth = %d", got)
	}
	if prog.Nest.Loops[0].Index != "i" || prog.Nest.Loops[1].Index != "j" {
		t.Errorf("indices = %v", prog.Nest.Indices())
	}
	if !prog.Nest.Loops[0].Upper.Equal(poly.MustParse("N-1")) {
		t.Errorf("upper(i) = %s", prog.Nest.Loops[0].Upper)
	}
	if !prog.Nest.Loops[1].Lower.Equal(poly.MustParse("i+1")) {
		t.Errorf("lower(j) = %s", prog.Nest.Loops[1].Lower)
	}
	if len(prog.Nest.Params) != 1 || prog.Nest.Params[0] != "N" {
		t.Errorf("params = %v", prog.Nest.Params)
	}
	if !strings.Contains(prog.Body, "a[i][j] += b[k][i] * c[k][j];") ||
		!strings.Contains(prog.Body, "a[j][i] = a[i][j];") {
		t.Errorf("body = %q", prog.Body)
	}
}

func TestParseTetraNoBraces(t *testing.T) {
	src := `
#pragma omp parallel for collapse(3)
for (i = 0; i < N-1; i++)
  for (j = 0; j < i+1; j++)
    for (k = j; k < i+1; k++)
      S(i, j, k);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Nest.Depth() != 3 {
		t.Fatalf("Depth = %d", prog.Nest.Depth())
	}
	if prog.Body != "S(i, j, k);" {
		t.Errorf("body = %q", prog.Body)
	}
	if prog.Schedule != "" {
		t.Errorf("Schedule = %q", prog.Schedule)
	}
}

func TestParseBracedNesting(t *testing.T) {
	src := `
#pragma omp parallel for collapse(2) schedule(dynamic, 16)
for (i = 0; i <= M; i++) {
  for (j = i; j <= i + 4; j++) {
    work(i, j);
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Schedule != "dynamic, 16" {
		t.Errorf("Schedule = %q", prog.Schedule)
	}
	// <= normalised to < with +1.
	if !prog.Nest.Loops[0].Upper.Equal(poly.MustParse("M+1")) {
		t.Errorf("upper(i) = %s", prog.Nest.Loops[0].Upper)
	}
	if !prog.Nest.Loops[1].Upper.Equal(poly.MustParse("i+5")) {
		t.Errorf("upper(j) = %s", prog.Nest.Loops[1].Upper)
	}
	if prog.Body != "work(i, j);" {
		t.Errorf("body = %q", prog.Body)
	}
}

func TestParseIncrementForms(t *testing.T) {
	for _, inc := range []string{"i++", "++i", "i += 1", "i = i + 1"} {
		src := "#pragma omp parallel for collapse(1)\nfor (i = 0; i < N; " + inc + ")\n  f(i);\n"
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("increment %q rejected: %v", inc, err)
			continue
		}
		if prog.Nest.Depth() != 1 {
			t.Errorf("increment %q: depth %d", inc, prog.Nest.Depth())
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
#pragma omp parallel for collapse(2)
// triangular nest
for (i = 0; i < N; i++) /* outer */
  for (j = i; j < N; j++)
    f(i, j);
`
	if _, err := Parse(src); err != nil {
		t.Errorf("comments broke parsing: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no pragma", "for (i = 0; i < N; i++) f(i);"},
		{"no collapse", "#pragma omp parallel for\nfor (i = 0; i < N; i++) f(i);"},
		{"zero collapse", "#pragma omp parallel for collapse(0)\nfor (i = 0; i < N; i++) f(i);"},
		{"too few loops", "#pragma omp parallel for collapse(2)\nfor (i = 0; i < N; i++) f(i);"},
		{"downward loop", "#pragma omp parallel for collapse(1)\nfor (i = N; i > 0; i--) f(i);"},
		{"non-unit stride", "#pragma omp parallel for collapse(1)\nfor (i = 0; i < N; i += 2) f(i);"},
		{"mismatched var", "#pragma omp parallel for collapse(1)\nfor (i = 0; j < N; i++) f(i);"},
		{"non-affine", "#pragma omp parallel for collapse(2)\nfor (i = 0; i < N; i++)\nfor (j = 0; j < i*i; j++) f(i,j);"},
		{"unbalanced brace", "#pragma omp parallel for collapse(1)\nfor (i = 0; i < N; i++) { f(i);"},
		{"unterminated", "#pragma omp parallel for collapse(1)\nfor (i = 0; i < N"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: Parse unexpectedly succeeded", c.name)
		}
	}
}

func TestParseMultipleParams(t *testing.T) {
	src := `
#pragma omp parallel for collapse(2)
for (i = 0; i < N; i++)
  for (j = i; j < i + M; j++)
    f(i, j);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Nest.Params) != 2 || prog.Nest.Params[0] != "M" || prog.Nest.Params[1] != "N" {
		t.Errorf("params = %v", prog.Nest.Params)
	}
}

func TestParsedNestRoundTrip(t *testing.T) {
	// The parsed correlation nest must produce the paper's ranking
	// polynomial when fed to the pipeline.
	prog, err := Parse(correlationSrc)
	if err != nil {
		t.Fatal(err)
	}
	inst := prog.Nest.MustBind(map[string]int64{"N": 6})
	if got := inst.Count(); got != 15 {
		t.Errorf("Count = %d, want 15", got)
	}
}
