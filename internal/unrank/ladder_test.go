package unrank

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/nest"
)

// triNest is the upper-triangular nest i=0..N-1, j=i..N-1 whose level-0
// recovery root is N+1/2 - sqrt((N+1/2)^2 - 2pc + ...): near pc = Total
// the discriminant cancels catastrophically, so for huge N the float64
// floor error exceeds any reasonable correction budget while the
// 128-bit tier still certifies the floor exactly.
func triNest(t *testing.T) *nest.Nest {
	t.Helper()
	n, err := nest.New([]string{"N"}, nest.L("i", "0", "N"), nest.L("j", "i", "N"))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestLadderRecoversHugeTriangular is the headline regression for the
// precision ladder: at N = 2^28 the float64 tier provably mis-recovers
// ranks near the end of the domain (floor error beyond MaxCorrection),
// and big.Float(128) must recover every tuple exactly — without ever
// conceding to binary search. Table-driven over parameter sizes; also
// run under -race by the concurrency gate (RACE_PKGS includes this
// package).
func TestLadderRecoversHugeTriangular(t *testing.T) {
	cases := []struct {
		name string
		n    int64
		// window is how many ranks below Total to sweep.
		window int64
		// wantFloat64Fail requires the float64 tier to have failed at
		// least once (proving the ladder, not the fast path, carried
		// the recovery).
		wantFloat64Fail bool
	}{
		{"N=2^10 float64 suffices", 1 << 10, 200, false},
		{"N=2^28 correction-heavy float64", 1 << 28, 200, false},
		{"N=2^30 ladder required", 1 << 30, 200, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, err := New(triNest(t), Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := u.Bind(map[string]int64{"N": tc.n})
			if err != nil {
				t.Fatal(err)
			}
			total := b.Total()
			if want := tc.n * (tc.n + 1) / 2; total != want {
				t.Fatalf("Total = %d, want %d", total, want)
			}
			idx := make([]int64, 2)
			for pc := total - tc.window; pc <= total; pc++ {
				if err := b.Unrank(pc, idx); err != nil {
					t.Fatalf("Unrank(%d): %v", pc, err)
				}
				// Exact round trip and domain membership.
				if got := b.Rank(idx); got != pc {
					t.Fatalf("Rank(Unrank(%d)) = %d (idx %v)", pc, got, idx)
				}
				if idx[0] < 0 || idx[0] >= tc.n || idx[1] < idx[0] || idx[1] >= tc.n {
					t.Fatalf("Unrank(%d) = %v outside domain", pc, idx)
				}
			}
			st := b.Stats()
			t.Logf("stats: %s", st.String())
			if st.Searches != 0 {
				t.Errorf("ladder conceded to binary search %d times", st.Searches)
			}
			if tc.wantFloat64Fail {
				if st.Fallbacks == 0 {
					t.Errorf("float64 tier never failed; case does not exercise the ladder")
				}
				if st.EscalationsPrec128 == 0 {
					t.Errorf("no prec128 escalations recorded: %s", st.String())
				}
			} else if st.Fallbacks != 0 {
				t.Errorf("float64 tier failed %d times on a small domain", st.Fallbacks)
			}
		})
	}
}

// TestLadderRescuesInjectedFaults forces the float64 tier wrong by
// fault injection (every root perturbed far beyond the correction
// budget) and requires the certified tiers to recover every rank of a
// small domain exactly, with the counters proving which rung fired.
func TestLadderRescuesInjectedFaults(t *testing.T) {
	u, err := New(triNest(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(&faults.Plan{
		PerturbRoot: func(level int, x complex128) complex128 {
			return x + complex(100.5, 0)
		},
	})
	defer restore()
	b, err := u.Bind(map[string]int64{"N": 40})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int64, 2)
	for pc := int64(1); pc <= b.Total(); pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatalf("Unrank(%d): %v", pc, err)
		}
		if got := b.Rank(idx); got != pc {
			t.Fatalf("Rank(Unrank(%d)) = %d (idx %v)", pc, got, idx)
		}
	}
	st := b.Stats()
	if st.Fallbacks == 0 || st.EscalationsPrec128 == 0 {
		t.Errorf("injected faults did not exercise the ladder: %s", st.String())
	}
	if st.Searches != 0 {
		t.Errorf("ladder conceded to binary search %d times under injection", st.Searches)
	}
}

// TestStartTierForcesRung pins Options.StartTier semantics: each forced
// rung completes recovery on that rung alone.
func TestStartTierForcesRung(t *testing.T) {
	for _, tc := range []struct {
		tier Tier
		chk  func(Stats) bool
	}{
		{TierFloat64, func(s Stats) bool { return s.RootEvals > 0 && s.Searches == 0 }},
		{TierPrec128, func(s Stats) bool { return s.RootEvals == 0 && s.EscalationsPrec128 > 0 && s.Searches == 0 }},
		{TierPrec256, func(s Stats) bool { return s.EscalationsPrec128 == 0 && s.EscalationsPrec256 > 0 && s.Searches == 0 }},
		{TierTable, func(s Stats) bool {
			return s.RootEvals == 0 && s.EscalationsPrec256 == 0 && s.TableLookups > 0 && s.Searches == 0
		}},
		{TierExact, func(s Stats) bool {
			return s.RootEvals == 0 && s.EscalationsPrec128 == 0 && s.EscalationsPrec256 == 0 && s.Searches > 0
		}},
	} {
		t.Run(tc.tier.String(), func(t *testing.T) {
			u, err := New(triNest(t), Options{StartTier: tc.tier})
			if err != nil {
				t.Fatal(err)
			}
			b, err := u.Bind(map[string]int64{"N": 25})
			if err != nil {
				t.Fatal(err)
			}
			idx := make([]int64, 2)
			for pc := int64(1); pc <= b.Total(); pc++ {
				if err := b.Unrank(pc, idx); err != nil {
					t.Fatalf("Unrank(%d): %v", pc, err)
				}
				if got := b.Rank(idx); got != pc {
					t.Fatalf("Rank(Unrank(%d)) = %d", pc, got)
				}
			}
			if st := b.Stats(); !tc.chk(st) {
				t.Errorf("tier %v counters off: %s", tc.tier, st.String())
			}
		})
	}
}

// TestNearBoundaryRootSelectionStable pins the satellite fix for the
// magic tolerances: the scale-aware constants must accept a root whose
// float64 evaluation sits a hair below an integer (within FloorNudge)
// or carries rounding-level imaginary dust scaled by the root's
// magnitude — previously hard-coded 1e-6/1e-9 thresholds evaluated
// against these exact situations.
func TestNearBoundaryRootSelectionStable(t *testing.T) {
	if !imagNegligible(complex(1e9, 1e-4)) {
		t.Error("rounding-scale imaginary part at magnitude 1e9 must be negligible")
	}
	if imagNegligible(complex(1.0, 1e-4)) {
		t.Error("1e-4 imaginary part at magnitude 1 must not be negligible")
	}
	if got := floorReal(complex(4.9999999996, 0)); got != 5 {
		t.Errorf("floorReal(5-4e-10) = %d, want 5 (within FloorNudge)", got)
	}
	if got := floorReal(complex(4.9999, 0)); got != 4 {
		t.Errorf("floorReal(4.9999) = %d, want 4", got)
	}
	// End-to-end: selection over a nest whose roots land exactly on
	// integers at every sample must keep closed-form recovery (no
	// fallback to binary search on any pc).
	u, err := New(triNest(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Bind(map[string]int64{"N": 30})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int64, 2)
	for pc := int64(1); pc <= b.Total(); pc++ {
		if err := b.Unrank(pc, idx); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Searches > 0 || st.Fallbacks > 0 {
		t.Errorf("near-boundary roots flipped recovery off the fast path: %s", st.String())
	}
}
