package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func flightEvent(i int) Event {
	return Event{
		Name:  "chunk",
		Cat:   "test",
		TID:   i % 4,
		Start: time.Duration(i) * time.Millisecond,
		Dur:   time.Millisecond,
		Args:  []Arg{{Name: "i", Value: int64(i)}},
	}
}

func TestFlightRecorderRetainsLastK(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Record(flightEvent(i))
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for j, ev := range evs {
		want := int64(12 + j) // oldest retained is 20-8
		if len(ev.Args) != 1 || ev.Args[0].Value != want {
			t.Errorf("event %d: args %v, want i=%d", j, ev.Args, want)
		}
	}
	if f.Total() != 20 {
		t.Errorf("Total = %d, want 20", f.Total())
	}
	if f.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", f.Cap())
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		f.Record(flightEvent(i))
	}
	evs := f.Events()
	if len(evs) != 5 {
		t.Fatalf("retained %d events, want 5", len(evs))
	}
	if evs[0].Args[0].Value != 0 || evs[4].Args[0].Value != 4 {
		t.Errorf("wrong order: first %v last %v", evs[0].Args, evs[4].Args)
	}
}

// TestFlightRecorderZeroAllocRecord is the steady-state guard of the
// acceptance criteria: once the ring exists, recording an event
// allocates nothing.
func TestFlightRecorderZeroAllocRecord(t *testing.T) {
	f := NewFlightRecorder(64)
	ev := flightEvent(1)
	allocs := testing.AllocsPerRun(1000, func() { f.Record(ev) })
	if allocs != 0 {
		t.Errorf("Record allocates %v per call, want 0", allocs)
	}
}

// TestFlightRecorderEventsSurviveOverwrite checks the deep copy: a
// snapshot taken before the ring wraps must keep its args.
func TestFlightRecorderEventsSurviveOverwrite(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Record(flightEvent(1))
	f.Record(flightEvent(2))
	evs := f.Events()
	for i := 10; i < 20; i++ {
		f.Record(flightEvent(i))
	}
	if evs[0].Args[0].Value != 1 || evs[1].Args[0].Value != 2 {
		t.Errorf("snapshot mutated by later records: %v %v", evs[0].Args, evs[1].Args)
	}
}

func TestFlightRecorderChromeTrace(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Record(flightEvent(i))
	}
	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(trace.TraceEvents))
	}
}

// TestTraceFlightTee checks the registry integration: with retention
// on, events land in both the trace and the ring; in flight-only mode
// the unbounded slice stays empty while the ring keeps recording.
func TestTraceFlightTee(t *testing.T) {
	r := New()
	f := r.EnableFlight(4, true)
	r.StartSpan("cat", "a", 0).End()
	if r.Trace().Len() != 1 || len(f.Events()) != 1 {
		t.Fatalf("tee: trace %d ring %d, want 1/1", r.Trace().Len(), len(f.Events()))
	}
	if r.Flight() != f {
		t.Fatal("Registry.Flight does not return the attached recorder")
	}

	r2 := New()
	f2 := r2.EnableFlight(4, false)
	for i := 0; i < 10; i++ {
		r2.StartSpan("cat", "b", 0).End()
	}
	if got := r2.Trace().Len(); got != 0 {
		t.Errorf("flight-only trace retained %d events, want 0", got)
	}
	if got := len(f2.Events()); got != 4 {
		t.Errorf("flight-only ring retained %d events, want 4", got)
	}
	if f2.Total() != 10 {
		t.Errorf("Total = %d, want 10", f2.Total())
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(Event{})
	if f.Events() != nil || f.Cap() != 0 || f.Total() != 0 {
		t.Error("nil recorder not inert")
	}
	var tr *Trace
	tr.AttachFlight(nil, false)
	if tr.Flight() != nil {
		t.Error("nil trace Flight != nil")
	}
	var r *Registry
	if r.EnableFlight(4, true) != nil || r.Flight() != nil {
		t.Error("nil registry flight not nil")
	}
}

// TestSnapshotDuringConcurrentWriters is the snapshot-vs-writer race
// test of the satellite list: scrape the registry (snapshot, report,
// JSON, quantiles, flight export) from several goroutines while other
// goroutines hammer every metric kind. Run under -race this validates
// lock discipline; in any mode it validates the snapshot consistency
// invariant Count == Σ Counts.
func TestSnapshotDuringConcurrentWriters(t *testing.T) {
	r := New()
	f := r.EnableFlight(32, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c").Inc()
				r.Counter(fmt.Sprintf("c%d", i%8)).Add(2)
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", nil).Observe(float64(i%100) * 1e-6)
				sp := r.StartSpan("cat", "span", w)
				sp.End(Arg{Name: "i", Value: int64(i)})
			}
		}(w)
	}
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				for name, h := range snap.Histograms {
					var sum int64
					for _, c := range h.Counts {
						sum += c
					}
					if sum != h.Count {
						t.Errorf("%s: Count %d != Σ Counts %d", name, h.Count, sum)
					}
					h.Quantile(0.95)
				}
				_ = r.Report()
				if _, err := json.Marshal(r); err != nil {
					t.Errorf("marshal: %v", err)
				}
				var buf bytes.Buffer
				if err := f.WriteChromeTrace(&buf); err != nil {
					t.Errorf("flight export: %v", err)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
