// Package omp is a small OpenMP-style parallel-for runtime over
// goroutines. It substitutes for the OpenMP constructs used in the
// paper's evaluation (§VII): worksharing of an integer iteration range
// across a fixed team of threads under the static, static-chunked,
// dynamic and guided schedules, plus the collapsed-loop execution schemes
// of §V (one costly index recovery per chunk, then lexicographic
// incrementation), §VI.A (SIMD batches) and §VI.B (warp-strided lanes).
//
// Scheduling semantics follow the OpenMP 4.0 description:
//
//   - Static: the range is divided into one contiguous block per thread,
//     of near-equal size (block-cyclic with a single block).
//   - StaticChunk: chunks of the given size are assigned round-robin to
//     threads (thread t runs chunks t, t+P, t+2P, …).
//   - Dynamic: each thread repeatedly grabs the next chunk (default size
//     1) from a shared counter.
//   - Guided: chunk sizes start at remaining/P and decay exponentially,
//     bounded below by the requested chunk size (default 1).
package omp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// Kind enumerates the worksharing schedules.
type Kind int

const (
	Static Kind = iota
	StaticChunk
	Dynamic
	Guided
	// ScheduleAuto asks the runtime to choose: the autotuning planner
	// (internal/autotune, surfaced as nonrect.CollapsedForTuned and the
	// daemon's "auto" schedule clause) resolves it to a concrete
	// (kind, chunk, workers) decision by simulating candidates against
	// the nest's measured work vector. An unresolved ScheduleAuto that
	// reaches the worksharing engine directly degrades to guided via
	// Resolved() — the safest static fallback under unknown imbalance.
	ScheduleAuto
)

// String returns the OpenMP clause spelling of the schedule kind.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case StaticChunk:
		return "static,chunk"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case ScheduleAuto:
		return "auto"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Schedule is a schedule clause: a kind plus an optional chunk size.
type Schedule struct {
	Kind  Kind
	Chunk int64 // chunk size; defaults: StaticChunk/Dynamic/Guided -> 1
}

func (s Schedule) chunk() int64 {
	if s.Chunk > 0 {
		return s.Chunk
	}
	return 1
}

// Resolved maps ScheduleAuto to its unplanned fallback (guided, which
// self-balances without a measured work vector); concrete schedules
// pass through unchanged. The chunk planners resolve implicitly, so an
// auto schedule is always executable even without the planner.
func (s Schedule) Resolved() Schedule {
	if s.Kind == ScheduleAuto {
		return Schedule{Kind: Guided, Chunk: s.Chunk}
	}
	return s
}

// DefaultThreads returns the default team size (GOMAXPROCS).
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// chunkPlan builds the per-thread chunk iterator for a schedule over
// [lo, hi). The returned function is called once per thread (possibly
// concurrently) and emits that thread's chunks in order; shared state
// (the dynamic/guided queues) lives in the plan's closure. emit returns
// false to stop the thread's chunk stream early (cancellation or a
// failure elsewhere in the team).
func chunkPlan(threads int, lo, hi int64, sched Schedule) func(tid int, emit func(clo, chi int64) bool) {
	sched = sched.Resolved()
	n := hi - lo
	switch sched.Kind {
	case Static:
		base := n / int64(threads)
		rem := n % int64(threads)
		return func(tid int, emit func(clo, chi int64) bool) {
			size := base
			start := lo + int64(tid)*base
			if int64(tid) < rem {
				size++
				start += int64(tid)
			} else {
				start += rem
			}
			if size > 0 {
				emit(start, start+size)
			}
		}
	case StaticChunk:
		ch := sched.chunk()
		return func(tid int, emit func(clo, chi int64) bool) {
			clo := lo + int64(tid)*ch
			if clo < lo { // tid*ch overflowed past MaxInt64
				return
			}
			for clo < hi {
				chi := clo + ch
				if chi > hi || chi < clo { // clo+ch overflow saturates at hi
					chi = hi
				}
				if !emit(clo, chi) {
					return
				}
				next := clo + int64(threads)*ch
				if next <= clo { // stride overflowed: no further chunks exist
					return
				}
				clo = next
			}
		}
	case Dynamic:
		ch := sched.chunk()
		var next atomic.Int64
		next.Store(lo)
		return func(tid int, emit func(clo, chi int64) bool) {
			for {
				clo := next.Add(ch) - ch
				// clo < lo means the shared counter wrapped past MaxInt64
				// (possible when hi is near the top of the int64 range and
				// several threads race past exhaustion); treat as done.
				if clo >= hi || clo < lo {
					return
				}
				chi := clo + ch
				if chi > hi || chi < clo {
					chi = hi
				}
				if !emit(clo, chi) {
					return
				}
			}
		}
	case Guided:
		minCh := sched.chunk()
		var mu sync.Mutex
		cur := lo
		grab := func() (int64, int64, bool) {
			mu.Lock()
			defer mu.Unlock()
			if cur >= hi {
				return 0, 0, false
			}
			remaining := hi - cur
			size := remaining / int64(threads)
			if size < minCh {
				size = minCh
			}
			if size > remaining {
				size = remaining
			}
			clo := cur
			cur += size
			return clo, clo + size, true
		}
		return func(tid int, emit func(clo, chi int64) bool) {
			for {
				clo, chi, ok := grab()
				if !ok {
					return
				}
				if !emit(clo, chi) {
					return
				}
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule kind %d", sched.Kind))
	}
}

// canceled wraps the context's cause in faults.ErrCanceled so callers
// can classify the stop with a single errors.Is test.
func canceled(ctx context.Context) error {
	return fmt.Errorf("omp: %v: %w", context.Cause(ctx), faults.ErrCanceled)
}

// ParallelForChunksCtx is the fault-tolerant worksharing engine every
// parallel entry point is built on. It partitions [lo, hi) according to
// the schedule and runs body(tid, clo, chi) for each contiguous chunk,
// with three guarantees the plain OpenMP-style loops lack:
//
//   - a panic in body is recovered on the worker, captured with its
//     stack as a *faults.PanicError, and returned as an error — the
//     team drains cleanly at the next chunk boundaries and the process
//     survives;
//   - ctx is checked at every chunk boundary (never mid-chunk), so a
//     canceled context stops the run cooperatively with an error
//     wrapping faults.ErrCanceled;
//   - a non-nil error from body stops the whole team at the next chunk
//     boundaries; the first error (in team observation order) wins.
//
// A nil ctx disables cancellation. An active fault-injection plan
// (faults.Activate, test-only) is consulted before each chunk.
func ParallelForChunksCtx(ctx context.Context, threads int, lo, hi int64, sched Schedule,
	body func(tid int, clo, chi int64) error) error {
	if threads < 1 {
		threads = 1
	}
	if lo < 0 && hi > math.MaxInt64+lo {
		// The extent hi-lo does not fit in int64: the chunk planners'
		// size arithmetic would wrap. Refuse rather than mis-iterate.
		return fmt.Errorf("omp: range [%d,%d) extent exceeds int64: %w", lo, hi, faults.ErrOverflow)
	}
	if hi-lo <= 0 {
		return nil
	}
	var stop atomic.Bool
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		stop.Store(true)
		errOnce.Do(func() { firstErr = err })
	}
	plan := chunkPlan(threads, lo, hi, sched)
	worker := func(tid int) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("omp: worker %d: %w", tid, faults.Recovered(r)))
			}
		}()
		plan(tid, func(clo, chi int64) bool {
			if stop.Load() {
				return false
			}
			if ctx != nil {
				select {
				case <-ctx.Done():
					fail(canceled(ctx))
					return false
				default:
				}
			}
			if err := faults.InjectChunk(tid, clo, chi); err != nil {
				fail(fmt.Errorf("omp: injected fault at chunk [%d,%d): %w", clo, chi, err))
				return false
			}
			if err := body(tid, clo, chi); err != nil {
				fail(err)
				return false
			}
			return true
		})
	}
	if threads == 1 {
		worker(0)
		return firstErr
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			worker(tid)
		}(t)
	}
	wg.Wait()
	return firstErr
}

// ParallelForChunks partitions the half-open range [lo, hi) according to
// the schedule and invokes body(tid, clo, chi) for each contiguous chunk
// [clo, chi). All chunks assigned to a thread run on the same goroutine,
// in increasing order for the static schedules.
//
// A panic in body no longer kills the process from a worker goroutine:
// it is captured with its stack and re-panicked on the caller as a
// *faults.PanicError, which the caller may recover. Use
// ParallelForChunksCtx to receive it as an error instead.
func ParallelForChunks(threads int, lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	if threads < 1 {
		threads = 1
	}
	if hi-lo <= 0 {
		return
	}
	if threads == 1 {
		serialChunks(lo, hi, sched, body)
		return
	}
	err := ParallelForChunksCtx(nil, threads, lo, hi, sched,
		func(tid int, clo, chi int64) error {
			body(tid, clo, chi)
			return nil
		})
	if err != nil {
		if pe := faults.AsPanic(err); pe != nil {
			panic(pe)
		}
		panic(err) // injected faults or range overflow: the void body returns no errors
	}
}

// serialChunks reproduces each schedule's chunking on a single thread,
// so chunk-boundary effects (e.g. per-chunk recovery cost) are preserved
// in serial measurements.
func serialChunks(lo, hi int64, sched Schedule, body func(tid int, clo, chi int64)) {
	sched = sched.Resolved()
	switch sched.Kind {
	case Static:
		body(0, lo, hi)
	default:
		ch := sched.chunk()
		for clo := lo; clo < hi; {
			chi := clo + ch
			if chi > hi || chi < clo { // clo+ch overflow saturates at hi
				chi = hi
			}
			body(0, clo, chi)
			clo = chi
		}
	}
}

// ParallelFor runs body(tid, i) for every i in [lo, hi) under the given
// schedule and team size.
func ParallelFor(threads int, lo, hi int64, sched Schedule, body func(tid int, i int64)) {
	ParallelForChunks(threads, lo, hi, sched, func(tid int, clo, chi int64) {
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
	})
}

// ParallelForCtx is ParallelFor with cooperative cancellation checked at
// chunk boundaries and worker panics returned as *faults.PanicError: the
// context-aware, fault-tolerant form of the plain worksharing loop. A
// canceled ctx stops the run at the next chunk boundary with an error
// wrapping faults.ErrCanceled.
func ParallelForCtx(ctx context.Context, threads int, lo, hi int64, sched Schedule,
	body func(tid int, i int64)) error {
	return ParallelForChunksCtx(ctx, threads, lo, hi, sched,
		func(tid int, clo, chi int64) error {
			for i := clo; i < chi; i++ {
				body(tid, i)
			}
			return nil
		})
}

// ParallelForTelemetry is ParallelFor with a per-thread chunk timeline
// recorded on tel: each chunk becomes a "chunk"-category trace event
// (named after the schedule kind, annotated with its bounds and
// iteration count) and an observation of the "omp.chunk_seconds"
// histogram. A nil tel falls through to the uninstrumented ParallelFor,
// so the hot loop pays nothing when telemetry is off.
func ParallelForTelemetry(threads int, lo, hi int64, sched Schedule, tel *telemetry.Registry,
	body func(tid int, i int64)) {
	if tel == nil {
		ParallelFor(threads, lo, hi, sched, body)
		return
	}
	tr := tel.Trace()
	hist := tel.Histogram("omp.chunk_seconds", nil)
	evName := sched.Kind.String()
	ParallelForChunks(threads, lo, hi, sched, func(tid int, clo, chi int64) {
		startOff := tr.Now()
		t0 := time.Now()
		for i := clo; i < chi; i++ {
			body(tid, i)
		}
		d := time.Since(t0)
		hist.Observe(d.Seconds())
		tr.Add(telemetry.Event{
			Name: evName, Cat: "chunk", TID: tid, Start: startOff, Dur: d,
			Args: []telemetry.Arg{
				{Name: "lo", Value: clo},
				{Name: "hi", Value: chi},
				{Name: "iters", Value: chi - clo},
			},
		})
	})
	tel.Counter("omp.iterations").Add(hi - lo)
}
