// Package codegen emits source code for collapsed loop nests: the C
// programs of the paper's Figs. 3, 4 and 7, the §V chunked scheme, the
// §VI.A SIMD scheme and the §VI.B GPU-warp scheme, plus a runnable Go
// rendition of the collapsed loop. Together with the cparse front end it
// forms the source-to-source tool described in §VII.
package codegen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/roots"
)

// Scheme selects the index-recovery strategy of the generated code.
type Scheme int

const (
	// PerIteration recovers all indices from pc at every iteration
	// (paper Fig. 3 and Fig. 7).
	PerIteration Scheme = iota
	// FirstIteration performs the costly recovery once per thread and
	// increments afterwards (paper Fig. 4, §V static scheme).
	FirstIteration
	// Chunked recovers once per CHUNK iterations
	// (§V schedule(static, CHUNK) scheme).
	Chunked
	// SIMD pre-computes vlength index tuples per batch and vectorises the
	// statement loop (§VI.A).
	SIMD
	// Warp distributes consecutive iterations across W lanes, each
	// recovering once and incrementing W times between iterations (§VI.B).
	Warp
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case PerIteration:
		return "per-iteration"
	case FirstIteration:
		return "first-iteration"
	case Chunked:
		return "chunked"
	case SIMD:
		return "simd"
	case Warp:
		return "warp"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Options configure emission.
type Options struct {
	Scheme   Scheme
	Schedule string // schedule clause body, default "static"
	Chunk    int    // Chunked scheme chunk size, default 64
	VLength  int    // SIMD vector length, default 8
	Warp     int    // Warp width, default 32
	// Body is the statement text; occurrences of the original index names
	// remain valid because recovery assigns those very variables. When
	// empty, a call S(i1, ..., ic) is emitted. For nests deeper than the
	// collapse count, the remaining inner loops are emitted around Body.
	Body string
	// FuncName names the emitted Go function (Go emission only);
	// default "CollapsedLoop".
	FuncName string
}

func (o *Options) fill() {
	if o.Schedule == "" {
		o.Schedule = "static"
	}
	if o.Chunk <= 0 {
		o.Chunk = 64
	}
	if o.VLength <= 0 {
		o.VLength = 8
	}
	if o.Warp <= 0 {
		o.Warp = 32
	}
	if o.FuncName == "" {
		o.FuncName = "CollapsedLoop"
	}
}

// defaultBody builds the S(i1,...,id) placeholder call.
func defaultBody(r *core.Result) string {
	return "S(" + strings.Join(r.Nest.Indices(), ", ") + ");"
}

// recoveryC returns the C statements recovering the collapsed indices
// from variable pcVar, one per line.
func recoveryC(r *core.Result, pcVar string) []string {
	var lines []string
	for k := 0; k < r.C-1; k++ {
		e := r.Unranker.RootExpr(k)
		expr := roots.CString(e)
		if pcVar != "pc" {
			expr = strings.ReplaceAll(expr, "pc", pcVar)
		}
		lines = append(lines, fmt.Sprintf("%s = floor(creal(%s));",
			r.SubNest.Loops[k].Index, expr))
	}
	// Last collapsed index: i = lb + (pc - r(prefix, lb)).
	last := r.SubNest.Loops[r.C-1]
	tail := r.SubNest.LexMinTail(r.C - 2)
	base := r.Ranking.SubstAll(tail)
	lines = append(lines, fmt.Sprintf("%s = %s + (%s - (%s));",
		last.Index, roots.PolyInt(last.Lower), pcVar, roots.PolyInt(base)))
	return lines
}

// incrementC returns the C statements advancing the collapsed indices to
// the lexicographic successor (valid for regular nests, as in Fig. 4).
func incrementC(r *core.Result) []string {
	var lines []string
	var rec func(k int) []string
	rec = func(k int) []string {
		l := r.SubNest.Loops[k]
		inc := []string{fmt.Sprintf("%s++;", l.Index)}
		if k == 0 {
			return inc
		}
		guard := fmt.Sprintf("if (%s >= %s) {", l.Index, roots.PolyInt(l.Upper))
		inner := rec(k - 1)
		var out []string
		out = append(out, inc...)
		out = append(out, guard)
		for _, s := range inner {
			out = append(out, "  "+s)
		}
		out = append(out, fmt.Sprintf("  %s = %s;", l.Index, roots.PolyInt(l.Lower)))
		out = append(out, "}")
		return out
	}
	lines = rec(r.C - 1)
	return lines
}

// innerLoopsC wraps body with the non-collapsed inner loops (levels
// C..depth-1) and returns the indented lines.
func innerLoopsC(r *core.Result, body string, indent string) []string {
	var lines []string
	depth := r.Nest.Depth()
	pad := indent
	for k := r.C; k < depth; k++ {
		l := r.Nest.Loops[k]
		lines = append(lines, fmt.Sprintf("%sfor (%s = %s ; %s < %s ; %s++)",
			pad, l.Index, roots.PolyInt(l.Lower), l.Index, roots.PolyInt(l.Upper), l.Index))
		pad += "  "
	}
	for _, bl := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		lines = append(lines, pad+bl)
	}
	return lines
}

// privateList returns the comma-separated private variable list.
func privateList(r *core.Result) string {
	return strings.Join(r.Nest.Indices(), ", ")
}

// EmitC renders the collapsed nest as C code in the requested scheme.
func EmitC(r *core.Result, opts Options) (string, error) {
	opts.fill()
	body := opts.Body
	if body == "" {
		body = defaultBody(r)
	}
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }
	total := roots.PolyInt(r.Total)

	switch opts.Scheme {
	case PerIteration:
		w("#pragma omp parallel for private(%s) schedule(%s)", privateList(r), opts.Schedule)
		w("for (pc = 1 ; pc <= %s ; pc++) {", total)
		for _, l := range recoveryC(r, "pc") {
			w("  %s", l)
		}
		for _, l := range innerLoopsC(r, body, "  ") {
			w("%s", l)
		}
		w("}")

	case FirstIteration:
		w("first_iteration = 1;")
		w("#pragma omp parallel for private(%s) firstprivate(first_iteration) schedule(%s)",
			privateList(r), opts.Schedule)
		w("for (pc = 1 ; pc <= %s ; pc++) {", total)
		w("  if (first_iteration) {")
		for _, l := range recoveryC(r, "pc") {
			w("    %s", l)
		}
		w("    first_iteration = 0;")
		w("  }")
		for _, l := range innerLoopsC(r, body, "  ") {
			w("%s", l)
		}
		for _, l := range incrementC(r) {
			w("  %s", l)
		}
		w("}")

	case Chunked:
		w("#pragma omp parallel for private(%s) schedule(static, %d)", privateList(r), opts.Chunk)
		w("for (pc = 1 ; pc <= %s ; pc++) {", total)
		w("  if ((pc-1) %% %d == 0) {", opts.Chunk)
		for _, l := range recoveryC(r, "pc") {
			w("    %s", l)
		}
		w("  }")
		for _, l := range innerLoopsC(r, body, "  ") {
			w("%s", l)
		}
		for _, l := range incrementC(r) {
			w("  %s", l)
		}
		w("}")

	case SIMD:
		if r.C != r.Nest.Depth() {
			return "", fmt.Errorf("codegen: SIMD scheme requires all loops collapsed (c = depth)")
		}
		v := opts.VLength
		w("first_iteration = 1;")
		w("#pragma omp parallel for private(%s, v, T) firstprivate(first_iteration) schedule(%s)",
			privateList(r), opts.Schedule)
		w("for (pc = 1 ; pc <= %s ; pc += %d) {", total, v)
		w("  if (first_iteration) {")
		for _, l := range recoveryC(r, "pc") {
			w("    %s", l)
		}
		w("    first_iteration = 0;")
		w("  }")
		w("  for (v = pc ; v <= min(pc+%d, %s) ; v++) {", v-1, total)
		w("    T[v-pc] = Indices(%s);", privateList(r))
		for _, l := range incrementC(r) {
			w("    %s", l)
		}
		w("  }")
		w("  #pragma omp simd")
		w("  for (v = pc ; v <= min(pc+%d, %s) ; v++) {", v-1, total)
		w("    %s", strings.ReplaceAll(body, "\n", "\n    "))
		w("  }")
		w("}")

	case Warp:
		if r.C != r.Nest.Depth() {
			return "", fmt.Errorf("codegen: warp scheme requires all loops collapsed (c = depth)")
		}
		W := opts.Warp
		w("/* parallel threads in a warp */")
		w("for (thread = 0 ; thread < %d ; thread++) {", W)
		w("  for (pc = thread+1 ; pc <= %s ; pc += %d) {", total, W)
		w("    if (pc == thread+1) {")
		for _, l := range recoveryC(r, "pc") {
			w("      %s", l)
		}
		w("    }")
		for _, l := range innerLoopsC(r, body, "    ") {
			w("%s", l)
		}
		w("    for (inc = 0 ; inc < %d ; inc++) {", W)
		for _, l := range incrementC(r) {
			w("      %s", l)
		}
		w("    }")
		w("  }")
		w("}")

	default:
		return "", fmt.Errorf("codegen: unknown scheme %v", opts.Scheme)
	}
	return b.String(), nil
}
