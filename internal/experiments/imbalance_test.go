package experiments

import (
	"strings"
	"testing"
)

// TestImbalanceStaticAtMostDynamic is the integration test of the
// telemetry stack: run the correlation kernel collapsed under every
// schedule and assert the static schedule's iteration-count imbalance
// is no worse than dynamic's. This is deterministic: static partitions
// the pc range into floor/ceil blocks, which minimises the maximum
// per-thread iteration count over all integer partitions, so
// MaxIter(static) <= MaxIter(any schedule) and both runs see the same
// TotalIter and thread count.
func TestImbalanceStaticAtMostDynamic(t *testing.T) {
	rows, err := Imbalance(ImbalanceOptions{Quick: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ImbalanceRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	static, ok := byLabel["static"]
	if !ok {
		t.Fatalf("no static row in %v", labels(rows))
	}
	dynamic, ok := byLabel["dynamic(1)"]
	if !ok {
		t.Fatalf("no dynamic(1) row in %v", labels(rows))
	}
	if static.Report.IterImbalance > dynamic.Report.IterImbalance+1e-9 {
		t.Errorf("static iteration imbalance %.6f > dynamic %.6f",
			static.Report.IterImbalance, dynamic.Report.IterImbalance)
	}

	// Every schedule covers the identical iteration space.
	total := rows[0].Report.TotalIter
	if total <= 0 {
		t.Fatalf("no iterations recorded: %+v", rows[0].Report)
	}
	for _, r := range rows {
		if r.Report.TotalIter != total {
			t.Errorf("%s ran %d iterations, want %d", r.Label, r.Report.TotalIter, total)
		}
		if r.Stats.Total != total {
			t.Errorf("%s Stats.Total = %d, want %d", r.Label, r.Stats.Total, total)
		}
		var sum int64
		for _, th := range r.Stats.PerThread {
			sum += th.Iterations
		}
		if sum != total {
			t.Errorf("%s per-thread iterations sum to %d, want %d", r.Label, sum, total)
		}
	}

	// Static's floor/ceil split: max and min per-thread counts differ by
	// at most one.
	var minIter, maxIter int64 = 1 << 62, 0
	for _, th := range static.Stats.PerThread {
		if th.Iterations < minIter {
			minIter = th.Iterations
		}
		if th.Iterations > maxIter {
			maxIter = th.Iterations
		}
	}
	if maxIter-minIter > 1 {
		t.Errorf("static per-thread spread %d..%d, want <= 1 apart", minIter, maxIter)
	}
}

func labels(rows []ImbalanceRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Label
	}
	return out
}

// TestRenderImbalance smoke-tests the table rendering.
func TestRenderImbalance(t *testing.T) {
	rows, err := Imbalance(ImbalanceOptions{Quick: true, Threads: 2, Kernel: "symm"})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderImbalance(rows, "symm", 2)
	for _, frag := range []string{
		"Load imbalance of the collapsed symm kernel (2 threads)",
		"schedule", "iter max/mu", "static,chunk(64)", "dynamic(64)", "guided",
		"per-thread breakdown, static:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

// TestImbalanceUnknownKernel checks error propagation.
func TestImbalanceUnknownKernel(t *testing.T) {
	if _, err := Imbalance(ImbalanceOptions{Kernel: "nope"}); err == nil {
		t.Error("unknown kernel accepted")
	}
}
