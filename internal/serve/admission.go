package serve

import (
	"math/rand"
	"sync"
	"time"
)

// jitterFrac is the maximum fraction of the base refill wait added as
// jitter to Retry-After hints: spreading retries over [wait, wait*1.25)
// decorrelates a thundering herd of clients that were all rejected in
// the same refill window.
const jitterFrac = 0.25

// tokenBucket is the admission controller: a classic token bucket with
// ratePerSec refill and burst capacity, plus a Retry-After estimator
// derived from the live refill state. now and rnd are injectable for the
// header-math unit tests; production uses time.Now and a seeded PRNG.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
	rnd    func() float64 // uniform [0,1)
}

// newTokenBucket returns a full bucket. rate <= 0 disables admission
// control (take always succeeds).
func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	src := rand.New(rand.NewSource(time.Now().UnixNano()))
	b := &tokenBucket{
		rate:   rate,
		burst:  burst,
		tokens: burst,
		now:    time.Now,
		rnd:    src.Float64,
	}
	b.last = b.now()
	return b
}

// refillLocked advances the bucket to t.
func (b *tokenBucket) refillLocked(t time.Time) {
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// take admits one request, or reports the jittered Retry-After hint
// derived from the current refill state: the exact time until one token
// accrues at the configured rate, stretched by up to jitterFrac so
// concurrently rejected clients do not return in lockstep.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(b.now())
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, retryAfterHint(b.tokens, b.rate, b.rnd())
}

// retryAfterHint is the header math, factored out for unit testing:
// given the current token count (< 1) and refill rate, the base wait is
// the time for the deficit to refill, (1-tokens)/rate seconds; the hint
// is base*(1 + jitterFrac*r) for r in [0,1). The result is never
// negative and never zero (a zero hint would tell clients to hammer).
func retryAfterHint(tokens, rate, r float64) time.Duration {
	deficit := 1 - tokens
	if deficit < 0 {
		deficit = 0
	}
	base := deficit / rate
	d := time.Duration(base * (1 + jitterFrac*r) * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
