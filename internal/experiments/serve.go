package experiments

// ServeReport is the BENCH_PR7.json document: the daemon's QPS/latency/
// shed-rate trajectory recorded by cmd/loadgen across a ladder of
// offered-load phases (open-loop Poisson arrivals). Like the overhead
// and compile suites it carries the schema-v2 meta block and loads
// through internal/benchcmp, so `make servegate` can diff a fresh run
// against the committed baseline.
type ServeReport struct {
	Suite string    `json:"suite"` // "serve"
	Meta  BenchMeta `json:"meta"`
	// Nest and Mix describe the workload: the nest spec driven at the
	// daemon and the endpoint mix (e.g. "rank=4,unrank=4,count=1").
	Nest string     `json:"nest"`
	Mix  string     `json:"mix"`
	Rows []ServeRow `json:"rows"`
}

// ServeRow is one offered-load phase of the trajectory.
type ServeRow struct {
	// Phase names the ladder step (e.g. "0.5x", "1x", "2x").
	Phase string `json:"phase"`
	// TargetQPS is the Poisson arrival rate the generator aimed for;
	// OfferedQPS what it actually issued; AchievedQPS the rate of
	// successful (2xx) answers.
	TargetQPS   float64 `json:"target_qps"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationS   float64 `json:"duration_s"`

	Sent        int64 `json:"sent"`
	OK          int64 `json:"ok"`
	Rejected429 int64 `json:"rejected_429"`
	Errors4xx   int64 `json:"errors_4xx"` // non-429 client errors
	Errors5xx   int64 `json:"errors_5xx"`

	// Latency quantiles of successful answers, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ShedRate is Rejected429/Sent — the fraction the admission ladder
	// turned away.
	ShedRate float64 `json:"shed_rate"`
	// Degraded counts 2xx execute answers served by the forced
	// uncollapsed fallback tier.
	Degraded int64 `json:"degraded,omitempty"`
}
