package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// breakerState is one signature's circuit state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// errBreakerOpen wraps the failure that tripped a breaker, so fast
// rejections report the original applicability error (and its HTTP
// status) without re-running the compile pipeline.
type errBreakerOpen struct {
	sig  string
	last error
}

func (e *errBreakerOpen) Error() string {
	return fmt.Sprintf("circuit breaker open for this nest shape (repeated compile failure: %v)", e.last)
}

func (e *errBreakerOpen) Unwrap() error { return e.last }

// compileBreaker is the compile-failure circuit breaker, keyed by
// core.NestSignature. Nests that repeatedly fail compilation with a
// deterministic applicability error (ErrDegreeTooHigh, ErrNonAffine, …)
// trip their signature's circuit: further requests for the same shape
// are fast-rejected with the recorded error instead of re-burning
// compile workers. After cooldown the circuit goes half-open and admits
// a single probe; a probe success closes it, a failure re-opens it.
//
// The map is bounded: when full, recording a new signature evicts an
// arbitrary resident entry (signatures are adversary-controlled input,
// so an unbounded map would be a memory leak an attacker can drive).
type compileBreaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip the circuit
	cooldown  time.Duration // open duration before half-open
	maxKeys   int
	now       func() time.Time
	entries   map[string]*breakerEntry
	// evictions counts entries dropped at the maxKeys cap
	// (serve.breaker_evictions); the first eviction is logged once via
	// logf — sustained eviction pressure means an adversarial or overly
	// diverse signature stream is cycling the map, silently forgetting
	// circuit state.
	evictions      *telemetry.Counter
	logf           func(format string, args ...any)
	loggedEviction bool
}

type breakerEntry struct {
	state    breakerState
	failures int       // consecutive collapsible compile failures
	until    time.Time // when an open circuit turns half-open
	probing  bool      // a half-open probe is in flight
	last     error     // the failure that tripped (or is accumulating)
}

// newCompileBreaker builds a breaker; threshold <= 0 disables it. reg
// (may be nil) receives the eviction counter, logf (may be nil) the
// one-time eviction warning.
func newCompileBreaker(threshold int, cooldown time.Duration, maxKeys int,
	reg *telemetry.Registry, logf func(format string, args ...any)) *compileBreaker {
	if maxKeys <= 0 {
		maxKeys = 1024
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &compileBreaker{
		threshold: threshold,
		cooldown:  cooldown,
		maxKeys:   maxKeys,
		now:       time.Now,
		entries:   make(map[string]*breakerEntry),
		evictions: reg.Counter("serve.breaker_evictions"),
		logf:      logf,
	}
}

// admit decides whether a compile for sig may proceed. A non-nil error
// is the fast rejection (*errBreakerOpen). When the circuit is half-open
// the first caller is admitted as the probe; the caller must follow up
// with record(sig, err) so the probe outcome resolves the state.
func (b *compileBreaker) admit(sig string) error {
	if b == nil || b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[sig]
	if !ok || e.state == breakerClosed {
		return nil
	}
	if e.state == breakerOpen {
		if b.now().Before(e.until) {
			return &errBreakerOpen{sig: sig, last: e.last}
		}
		e.state = breakerHalfOpen
		e.probing = false
	}
	// Half-open: one probe at a time; everyone else keeps fast-failing.
	if e.probing {
		return &errBreakerOpen{sig: sig, last: e.last}
	}
	e.probing = true
	return nil
}

// record reports a compile outcome for sig. Only deterministic
// applicability failures should be recorded as failures (the caller
// filters with faults.Collapsible); transient errors must not trip the
// circuit.
func (b *compileBreaker) record(sig string, failed bool, err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[sig]
	if !ok {
		if !failed {
			return // nothing to track for a healthy signature
		}
		if len(b.entries) >= b.maxKeys {
			for k := range b.entries {
				delete(b.entries, k)
				break
			}
			b.evictions.Inc()
			if !b.loggedEviction {
				b.loggedEviction = true
				b.logf("serve: breaker signature map full (%d entries): evicting; "+
					"circuit state is being forgotten under signature churn "+
					"(further evictions counted in serve.breaker_evictions, not logged)",
					b.maxKeys)
			}
		}
		e = &breakerEntry{}
		b.entries[sig] = e
	}
	e.probing = false
	if !failed {
		e.state = breakerClosed
		e.failures = 0
		e.last = nil
		return
	}
	e.last = err
	e.failures++
	if e.state == breakerHalfOpen || e.failures >= b.threshold {
		e.state = breakerOpen
		e.until = b.now().Add(b.cooldown)
	}
}

// clearProbe releases a half-open probe slot without resolving the
// circuit either way — the outcome for a transient (non-applicability)
// compile error, which predicts nothing about the shape itself.
func (b *compileBreaker) clearProbe(sig string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[sig]; ok {
		e.probing = false
	}
}

// openCount reports how many signatures currently hold an open (or
// half-open) circuit — the /healthz readiness signal.
func (b *compileBreaker) openCount() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.entries {
		if e.state != breakerClosed {
			n++
		}
	}
	return n
}
