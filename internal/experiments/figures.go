package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ehrhart"
	"repro/internal/kernels"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/poly"
	"repro/internal/schedsim"
)

// ---------------------------------------------------------------------
// Figure 2 — unbalanced distribution of the correlation iterations among
// threads under schedule(static).
// ---------------------------------------------------------------------

// Fig2Result reports per-thread iteration loads.
type Fig2Result struct {
	N       int64
	Threads int
	Loads   []float64 // inner (i,j) iterations per thread
	Total   float64
}

// Fig2 computes the static per-thread loads for the correlation outer
// loop: thread t gets a contiguous slice of i values, each carrying
// N-1-i inner iterations.
func Fig2(N int64, threads int) Fig2Result {
	work := make([]float64, N-1)
	for i := range work {
		work[i] = float64(N - 1 - int64(i))
	}
	loads := schedsim.StaticLoads(work, threads)
	return Fig2Result{N: N, Threads: threads, Loads: loads, Total: schedsim.Total(work)}
}

// Render formats the result like the paper's figure: one bar per thread.
func (r Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2 — static distribution of the correlation triangle (N=%d, %d threads)\n",
		r.N, r.Threads)
	for _, line := range schedsim.FormatLoads(r.Loads, 40) {
		fmt.Fprintln(&b, line)
	}
	avg := r.Total / float64(r.Threads)
	fmt.Fprintf(&b, "average %.0f iterations/thread; thread 0 carries %.2fx the average\n",
		avg, r.Loads[0]/avg)
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8 — curves of r(i,0,0) − pc for the tetrahedral nest, showing
// that the symbolic-root structure is identical for every pc (§IV.D).
// ---------------------------------------------------------------------

// Fig8Point is one sample of one curve.
type Fig8Point struct {
	I float64
	Y float64
}

// Fig8Curve is the curve for one pc value.
type Fig8Curve struct {
	PC     int
	Points []Fig8Point
}

// Fig8 samples r(i,0,0) − pc for i in [-2.5, 3] and pc = 1..10, exactly
// like the paper's figure.
func Fig8() []Fig8Curve {
	tetra := nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "j", "i+1"),
	)
	r := ehrhart.Ranking(tetra)
	// r(i, 0, 0): substitute j = 0, k = 0; N is absent from r for this
	// nest (bounds of the inner loops depend only on i and j).
	ri := r.Subst("j", poly.Int(0)).Subst("k", poly.Int(0))
	var curves []Fig8Curve
	for pc := 1; pc <= 10; pc++ {
		c := Fig8Curve{PC: pc}
		for i := -2.5; i <= 3.0001; i += 0.25 {
			v, err := ri.EvalFloat(map[string]float64{"i": i})
			if err != nil {
				continue
			}
			c.Points = append(c.Points, Fig8Point{I: i, Y: v - float64(pc)})
		}
		curves = append(curves, c)
	}
	return curves
}

// RenderFig8 prints the curves as aligned columns (i, then one column
// per pc).
func RenderFig8(curves []Fig8Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — r(i,0,0) - pc for the tetrahedral nest\n")
	fmt.Fprintf(&b, "%8s", "i")
	for _, c := range curves {
		fmt.Fprintf(&b, " pc=%-5d", c.PC)
	}
	fmt.Fprintln(&b)
	if len(curves) == 0 {
		return b.String()
	}
	for pi := range curves[0].Points {
		fmt.Fprintf(&b, "%8.2f", curves[0].Points[pi].I)
		for _, c := range curves {
			fmt.Fprintf(&b, " %8.3f", c.Points[pi].Y)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9 — gains of collapsing vs outer-static and outer-dynamic.
// ---------------------------------------------------------------------

// Fig9Row is one kernel's entry.
type Fig9Row struct {
	Kernel string
	// Simulated makespans for Threads virtual threads (seconds).
	SerialSec, StaticSec, DynamicSec, CollapsedSec float64
	// Gains as defined in §VII: (without - with) / without.
	GainVsStatic, GainVsDynamic float64
	// Real wall-clock seconds of the goroutine runtime (only populated
	// in Real mode).
	RealStaticSec, RealDynamicSec, RealCollapsedSec float64
}

// Fig9Options configure the experiment.
type Fig9Options struct {
	Threads int  // simulated thread count; paper uses 12
	Quick   bool // use small test sizes (CI) instead of bench sizes
	Real    bool // additionally run the goroutine runtime and record wall times
	Verbose func(format string, args ...interface{})
}

func (o *Fig9Options) fill() {
	if o.Threads <= 0 {
		o.Threads = 12
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
}

// Fig9 runs the gain experiment for every kernel.
func Fig9(opts Fig9Options) ([]Fig9Row, error) {
	opts.fill()
	var rows []Fig9Row
	for _, k := range kernels.All() {
		row, err := fig9Kernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig9Kernel(k *kernels.Kernel, opts Fig9Options) (Fig9Row, error) {
	row := Fig9Row{Kernel: k.Name}
	p := k.BenchParams
	if opts.Quick {
		p = k.TestParams
	}
	inst := k.New(p)
	res, err := buildResult(k)
	if err != nil {
		return row, err
	}
	nestParams := k.NestParams(p)

	// 1. Serial reference and per-work-unit cost. Short-running kernels
	// are repeated until ~25 ms accumulate (the per-run value is the
	// average), and everything is best-of-3, to tame shared-machine
	// noise. Repetition runs without Reset — every kernel's body is
	// timing-idempotent (same operation count on every run).
	serial := measureRepeated(func() { kernels.RunSeq(inst) }, inst)
	row.SerialSec = serial
	lo, hi := inst.OuterRange()
	outerWork := make([]float64, hi-lo)
	var totalUnits float64
	for i := lo; i < hi; i++ {
		outerWork[i-lo] = inst.WorkPerOuter(i)
		totalUnits += outerWork[i-lo]
	}
	perUnit := serial / totalUnits
	for i := range outerWork {
		outerWork[i] *= perUnit
	}

	// 2. Calibrated overheads.
	cal, err := Calibrate(res, nestParams)
	if err != nil {
		return row, err
	}
	opts.Verbose("%s: serial %.3fs, unit %.2fns, dequeue %.1fns, recovery %.0fns, increment %.1fns",
		k.Name, serial, perUnit*1e9, cal.Dequeue*1e9, cal.Recovery*1e9, cal.Increment*1e9)

	// 3. Simulated makespans for the three Fig. 9 configurations.
	P := opts.Threads
	row.StaticSec = schedsim.Static(outerWork, P, 0)
	row.DynamicSec = schedsim.Dynamic(outerWork, P, 1, cal.Dequeue)

	// Collapsed static: ground the per-iteration cost of the transformed
	// program in a measured serial execution of the §V scheme itself
	// (recover once per chunk, fused body+increment) — the same run the
	// paper uses for its Fig. 10 overhead protocol. The simulated
	// makespan then distributes that measured work over P threads, with
	// one recovery per thread chunk.
	b, err := res.Unranker.Bind(nestParams)
	if err != nil {
		return row, err
	}
	total := b.Total()
	var collErr error
	collapsedSerial := measureRepeated(func() {
		if err := kernels.RunCollapsedSerialChunks(k, inst, res, p, P); err != nil && collErr == nil {
			collErr = err
		}
	}, inst)
	if collErr != nil {
		return row, collErr
	}
	bodyTime := collapsedSerial - float64(P)*cal.Recovery
	if bodyTime < 0 {
		bodyTime = collapsedSerial
	}
	if kernelHasUniformCollapsedWork(k) {
		w := bodyTime / float64(total)
		row.CollapsedSec = schedsim.UniformStatic(total, w, P, cal.Recovery)
	} else {
		// Distribute the measured time over tuples proportionally to the
		// exact work model, then simulate the static split.
		var collUnits float64
		collWork := make([]float64, 0, total)
		b.Instance().Enumerate(func(idx []int64) bool {
			wu := inst.WorkPerCollapsed(idx)
			collUnits += wu
			collWork = append(collWork, wu)
			return true
		})
		scale := bodyTime / collUnits
		for i := range collWork {
			collWork[i] *= scale
		}
		row.CollapsedSec = schedsim.Static(collWork, P, cal.Recovery)
	}
	row.GainVsStatic = schedsim.Gain(row.StaticSec, row.CollapsedSec)
	row.GainVsDynamic = schedsim.Gain(row.DynamicSec, row.CollapsedSec)

	// 4. Optional real goroutine runs.
	if opts.Real {
		inst.Reset()
		start := time.Now()
		kernels.RunOuterParallel(inst, P, omp.Schedule{Kind: omp.Static})
		row.RealStaticSec = time.Since(start).Seconds()
		inst.Reset()
		start = time.Now()
		kernels.RunOuterParallel(inst, P, omp.Schedule{Kind: omp.Dynamic})
		row.RealDynamicSec = time.Since(start).Seconds()
		inst.Reset()
		start = time.Now()
		if err := kernels.RunCollapsedParallel(k, inst, res, p, P, omp.Schedule{Kind: omp.Static}); err != nil {
			return row, err
		}
		row.RealCollapsedSec = time.Since(start).Seconds()
	}
	return row, nil
}

// measureRepeated times f (after one Reset), repeating short runs until
// about 25 ms accumulate, and returns the best-of-3 per-run seconds.
func measureRepeated(f func(), inst kernels.Instance) float64 {
	inst.Reset()
	best := -1.0
	reps := 1
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		sec := time.Since(start).Seconds() / float64(reps)
		if best < 0 || sec < best {
			best = sec
		}
		if tot := sec * float64(reps); tot < 0.025 {
			grow := int(0.025/tot) + 1
			if grow > 32 {
				grow = 32
			}
			reps *= grow
		}
	}
	return best
}

// kernelHasUniformCollapsedWork reports whether every collapsed
// iteration performs identical work (so the simulator can use the closed
// form instead of enumerating millions of tuples).
func kernelHasUniformCollapsedWork(k *kernels.Kernel) bool {
	switch k.Name {
	case "ltmp", "correlation_tiled", "covariance_tiled":
		return false
	}
	return true
}

// RenderFig9 prints the rows as the paper's two bar groups.
func RenderFig9(rows []Fig9Row, threads int, real bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — gains from collapsing non-rectangular loops (%d threads, simulated makespans)\n", threads)
	fmt.Fprintf(&b, "%-18s %10s %10s %10s %10s %13s %14s\n",
		"kernel", "serial(s)", "static(s)", "dynamic(s)", "collapsed(s)", "gain vs stat", "gain vs dyn")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.4f %10.4f %10.4f %10.4f %13.3f %14.3f\n",
			r.Kernel, r.SerialSec, r.StaticSec, r.DynamicSec, r.CollapsedSec,
			r.GainVsStatic, r.GainVsDynamic)
	}
	if real {
		fmt.Fprintf(&b, "\nreal goroutine wall times (GOMAXPROCS-bound; equals makespans only with >= %d cores)\n", threads)
		fmt.Fprintf(&b, "%-18s %12s %12s %12s\n", "kernel", "static(s)", "dynamic(s)", "collapsed(s)")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-18s %12.4f %12.4f %12.4f\n",
				r.Kernel, r.RealStaticSec, r.RealDynamicSec, r.RealCollapsedSec)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 10 — control overhead of 12 root evaluations, measured on
// serial runs (the paper's exact protocol).
// ---------------------------------------------------------------------

// Fig10Row is one kernel's overhead entry.
type Fig10Row struct {
	Kernel       string
	AllCollapsed bool
	SerialSec    float64
	CollapsedSec float64
	OverheadPct  float64
}

// Fig10Options configure the overhead experiment.
type Fig10Options struct {
	Chunks int  // number of serial chunks, each with one recovery; paper uses 12
	Quick  bool // use small test sizes
	Reps   int  // timing repetitions; best-of is reported (default 3)
}

func (o *Fig10Options) fill() {
	if o.Chunks <= 0 {
		o.Chunks = 12
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
}

// Fig10 measures serial original vs serial collapsed (with Chunks
// recoveries) for every kernel, plus the fully collapsed covariance and
// symm variants the paper calls out.
func Fig10(opts Fig10Options) ([]Fig10Row, error) {
	opts.fill()
	list := kernels.All()
	list = append(list, kernels.CovarianceFull, kernels.SymmFull)
	var rows []Fig10Row
	for _, k := range list {
		row, err := fig10Kernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func fig10Kernel(k *kernels.Kernel, opts Fig10Options) (Fig10Row, error) {
	p := k.BenchParams
	if opts.Quick {
		p = k.TestParams
	}
	inst := k.New(p)
	// "All loops collapsed" in the paper's sense: the recovery control
	// runs at the innermost statement rate (one work unit per collapsed
	// iteration), which is where Fig. 10 shows the largest overheads.
	row := Fig10Row{
		Kernel: k.Name,
		AllCollapsed: k.Collapse == k.Nest.Depth() &&
			inst.WorkPerCollapsed(make([]int64, k.Collapse)) == 1,
	}
	res, err := buildResult(k)
	if err != nil {
		return row, err
	}
	best := func(f func() error) (float64, error) {
		bestSec := -1.0
		for r := 0; r < opts.Reps; r++ {
			inst.Reset()
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if s := time.Since(start).Seconds(); bestSec < 0 || s < bestSec {
				bestSec = s
			}
		}
		return bestSec, nil
	}
	if row.SerialSec, err = best(func() error { kernels.RunSeq(inst); return nil }); err != nil {
		return row, err
	}
	if row.CollapsedSec, err = best(func() error {
		return kernels.RunCollapsedSerialChunks(k, inst, res, p, opts.Chunks)
	}); err != nil {
		return row, err
	}
	row.OverheadPct = (row.CollapsedSec - row.SerialSec) / row.SerialSec * 100
	return row, nil
}

// RenderFig10 prints the overhead table.
func RenderFig10(rows []Fig10Row, chunks int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — control overhead of %d root evaluations (serial runs)\n", chunks)
	fmt.Fprintf(&b, "%-18s %12s %14s %12s %s\n", "kernel", "serial(s)", "collapsed(s)", "overhead(%)", "")
	for _, r := range rows {
		note := ""
		if r.AllCollapsed {
			note = "(all loops collapsed)"
		}
		fmt.Fprintf(&b, "%-18s %12.4f %14.4f %12.2f %s\n",
			r.Kernel, r.SerialSec, r.CollapsedSec, r.OverheadPct, note)
	}
	return b.String()
}
