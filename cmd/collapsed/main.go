// Command collapsed is the collapse-as-a-service daemon: a long-running
// HTTP/JSON server answering compile/count/rank/unrank/codegen/execute
// queries about non-rectangular loop nests, hardened for sustained
// traffic (see internal/serve and the DESIGN.md request-lifecycle
// section).
//
// Endpoints (all POST, JSON bodies; see internal/serve.Request):
//
//	/v1/compile  symbolic collapse: ranking polynomial, total, roots
//	/v1/count    iteration count of a bound nest (exact past int64)
//	/v1/rank     collapsed rank of an iteration tuple
//	/v1/unrank   iteration tuple at a collapsed rank
//	/v1/codegen  collapsed C or Go source
//	/v1/execute  run the nest on the worker team (checksummed)
//	/healthz     readiness (degradation tier, load, open breakers)
//	/metrics     OpenMetrics exposition (serve_* + runtime families)
//	/snapshot /trace /debug/pprof   the observability plane
//
// Robustness behavior: requests are admitted through a token bucket
// (-rate/-burst; rejections carry Retry-After hints derived from the
// refill state), bounded by a concurrency semaphore (-max-inflight),
// deadlined (-deadline default, client ?deadline_ms= capped by
// -max-deadline), and panic-isolated. Nest shapes that repeatedly fail
// compilation trip a per-shape circuit breaker. Under load the daemon
// degrades gracefully: codegen is shed first, then execute requests are
// forced down the uncollapsed fallback, then everything sheds with 429.
// SIGINT/SIGTERM drains in-flight requests within -shutdown-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address (use :0 for an ephemeral port)")
		threads     = flag.Int("threads", 0, "worker-team size for /v1/execute (default GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 64, "bounded concurrent-request semaphore")
		rate        = flag.Float64("rate", 0, "token-bucket admission rate, requests/s (0 = unlimited)")
		burst       = flag.Float64("burst", 0, "token-bucket burst capacity (default 2*rate)")
		deadline    = flag.Duration("deadline", 5*time.Second, "server-enforced default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "cap on client ?deadline_ms= requests")
		shutdownT   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
		cacheCap    = flag.Int("cache", 256, "collapse-cache capacity (compiled artifacts)")
		breakerN    = flag.Int("breaker-threshold", 3, "consecutive compile failures tripping a nest shape's circuit (-1 disables)")
		breakerCool = flag.Duration("breaker-cooldown", 30*time.Second, "open-circuit duration before a probe is admitted")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Threads:          *threads,
		MaxInflight:      *maxInflight,
		RatePerSec:       *rate,
		Burst:            *burst,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		ShutdownTimeout:  *shutdownT,
		CacheCapacity:    *cacheCap,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Registry:         telemetry.New(),
	})
	bound, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collapsed:", err)
		os.Exit(1)
	}
	// The bound address goes to stdout so scripts driving ":0" can scrape
	// the real port; everything else logs to stderr.
	fmt.Printf("listening on http://%s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "collapsed: signal received; draining")
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownT)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		fmt.Fprintln(os.Stderr, "collapsed: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "collapsed: drained cleanly")
}
