// Command distfor runs an annotated non-rectangular nest on the
// fault-tolerant shard coordinator (internal/dist): the collapsed
// pc-range is split into shards executed under time-bounded leases with
// heartbeats, expired leases are reassigned, stragglers get speculative
// backups, failed shards retry/split/degrade, and committed progress
// lands in an fsynced checkpoint journal so an interrupted run resumes
// exactly where it stopped.
//
// Usage:
//
//	distfor [flags] [file.c]             (stdin when no file is given)
//
// The input is the same "#pragma omp ... collapse(c)" C fragment
// collapsetool accepts. Every nest parameter is bound to -n. The run
// folds an order-independent checksum over the recovered tuples (the
// same tuple hash the collapsed daemon uses), so two runs of the same
// nest — sharded, resumed, or sequential — must agree exactly.
//
// Flags:
//
//	-n N           parameter value (default 300)
//	-workers P     executor goroutines (default GOMAXPROCS)
//	-shards S      target shard count (default 8×workers)
//	-min-shard M   floor of the shard-splitting ladder (default 64)
//	-lease DUR     lease TTL; a silent executor is presumed dead after
//	               this and its shard reassigned (default 1s)
//	-speculate DUR straggler threshold for speculative backups
//	               (default lease/2; negative disables)
//	-retries R     per-shard retry budget before splitting (default 3)
//	-fallback      degrade to uncollapsed worksharing instead of failing
//	               when a shard exhausts retries and splits
//	-journal FILE  append-only checkpoint journal (fsync per commit)
//	-resume        replay FILE (fingerprint-validated, torn tail
//	               truncated) and execute only the uncovered intervals
//	-stats         print the recovery ledger and per-executor imbalance
//	-chaos-kill-every K
//	               crash every Kth shard attempt (injected panic) — a
//	               live demonstration of the recovery path
//	-bench         run the shard-scaling + recovery study instead
//	-quick         shrink the -bench problem size
//	-json FILE     write the -bench document (BENCH_PR8.json schema)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/omp"
	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

type options struct {
	n         int64
	workers   int
	shards    int
	minShard  int64
	lease     time.Duration
	speculate time.Duration
	retries   int
	fallback  bool
	journal   string
	resume    bool
	stats     bool
	killEvery int64
	bench     bool
	quick     bool
	jsonOut   string
	args      []string
}

func main() {
	var o options
	flag.Int64Var(&o.n, "n", 300, "parameter value bound to every nest parameter")
	flag.IntVar(&o.workers, "workers", omp.DefaultThreads(), "executor goroutines")
	flag.IntVar(&o.shards, "shards", 0, "target shard count (0: 8×workers)")
	flag.Int64Var(&o.minShard, "min-shard", 0, "floor of the shard-splitting ladder (0: 64)")
	flag.DurationVar(&o.lease, "lease", 0, "lease TTL before a silent executor's shard is reassigned (0: 1s)")
	flag.DurationVar(&o.speculate, "speculate", 0, "straggler age before a speculative backup launches (0: lease/2, negative: off)")
	flag.IntVar(&o.retries, "retries", 0, "per-shard retry budget before splitting (0: 3)")
	flag.BoolVar(&o.fallback, "fallback", false, "degrade to uncollapsed worksharing when the recovery ladder is exhausted")
	flag.StringVar(&o.journal, "journal", "", "append-only checkpoint journal path")
	flag.BoolVar(&o.resume, "resume", false, "replay -journal and execute only the uncovered intervals")
	flag.BoolVar(&o.stats, "stats", false, "print the recovery ledger and per-executor imbalance")
	flag.Int64Var(&o.killEvery, "chaos-kill-every", 0, "crash every Kth shard attempt (0: no chaos)")
	flag.BoolVar(&o.bench, "bench", false, "run the shard-scaling + recovery study instead of an input nest")
	flag.BoolVar(&o.quick, "quick", false, "shrink the -bench problem size")
	flag.StringVar(&o.jsonOut, "json", "", "write the -bench document to this file (BENCH_PR8.json schema)")
	flag.Parse()
	o.args = flag.Args()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "distfor:", err)
		if pe := faults.AsPanic(err); pe != nil {
			fmt.Fprintf(os.Stderr, "%s", pe.Stack)
		}
		os.Exit(1)
	}
}

func run(o options) error {
	if o.bench {
		return runBench(o)
	}
	if o.resume && o.journal == "" {
		return fmt.Errorf("-resume needs -journal")
	}

	var src []byte
	var err error
	switch len(o.args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(o.args[0])
	default:
		return fmt.Errorf("at most one input file")
	}
	if err != nil {
		return err
	}
	prog, err := cparse.Parse(string(src))
	if err != nil {
		return err
	}
	res, err := core.Collapse(prog.Nest, prog.CollapseCount, unrank.Options{})
	if err != nil {
		return err
	}
	params := map[string]int64{}
	for _, p := range prog.Nest.Params {
		params[p] = o.n
	}

	if o.killEvery > 0 {
		var attempts atomic.Int64
		restore := faults.Activate(&faults.Plan{
			OnShard: func(worker int, lo, hi int64) error {
				if attempts.Add(1)%o.killEvery == 0 {
					panic(fmt.Sprintf("chaos: injected executor crash at shard [%d,%d]", lo, hi))
				}
				return nil
			},
		})
		defer restore()
	}

	// Ctrl-C cancels the run cooperatively; with -journal, committed
	// progress survives for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	tel := telemetry.New()
	cfg := dist.Config{
		Workers: o.workers, Shards: o.shards, MinShard: o.minShard,
		LeaseTTL: o.lease, SpeculateAfter: o.speculate, MaxRetries: o.retries,
		AllowFallback: o.fallback, Journal: o.journal, Resume: o.resume,
		Registry: tel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "distfor: "+format+"\n", args...)
		},
	}
	start := time.Now()
	rep, err := dist.Run(ctx, res, params, cfg, func(worker int, pc int64, idx []int64) uint64 {
		return serve.TupleHash(idx)
	})
	elapsed := time.Since(start)
	if err != nil {
		if rep != nil && o.journal != "" && errors.Is(err, faults.ErrCanceled) {
			fmt.Fprintf(os.Stderr,
				"distfor: interrupted with %d/%d iterations committed; rerun with -resume -journal %s\n",
				rep.Executed+rep.Resumed, rep.Total, o.journal)
		}
		return err
	}

	fmt.Printf("distfor: %d iterations (%d executed, %d resumed) in %s across %d shards, checksum %#x\n",
		rep.Total, rep.Executed, rep.Resumed, elapsed.Round(time.Millisecond),
		rep.PlannedShards, rep.Sum)
	if rep.FellBack {
		fmt.Printf("distfor: recovery ladder exhausted — run degraded to uncollapsed worksharing\n")
	}
	if o.stats {
		printStats(rep, tel)
	}
	return nil
}

// printStats renders the recovery ledger and the per-executor
// imbalance summary of a finished run.
func printStats(rep *dist.Report, tel *telemetry.Registry) {
	fmt.Printf("\nrecovery ledger:\n")
	fmt.Printf("  completions        %d\n", rep.Completions)
	fmt.Printf("  duplicates dropped %d\n", rep.Duplicates)
	fmt.Printf("  lease expiries     %d\n", rep.LeaseExpiries)
	fmt.Printf("  speculative runs   %d (wins %d)\n", rep.SpeculativeRuns, rep.SpeculativeWins)
	fmt.Printf("  retries            %d\n", rep.Retries)
	fmt.Printf("  shard splits       %d\n", rep.Splits)
	imb := rep.Imbalance()
	fmt.Printf("\nper-executor imbalance (busy max/mean %.3f, cv %.3f):\n",
		imb.BusyImbalance, imb.BusyCV)
	for _, w := range rep.PerWorker {
		fmt.Printf("  worker %2d: %5d shards %10d iterations %12s busy\n",
			w.Worker, w.Shards, w.Iterations, w.Busy.Round(time.Microsecond))
	}
	snap := tel.Snapshot()
	if h, ok := snap.Histograms["dist.journal_fsync_seconds"]; ok && h.Count > 0 {
		fmt.Printf("\njournal: %d fsyncs, p50 %.3fms p99 %.3fms\n",
			h.Count, h.Quantile(0.5)*1e3, h.Quantile(0.99)*1e3)
	}
}

// runBench runs the shard-scaling + recovery study and renders or
// writes the BENCH_PR8 document.
func runBench(o options) error {
	rep, err := experiments.Dist(experiments.DistOptions{Quick: o.quick})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderDist(rep))
	if o.jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "distfor: wrote %s\n", o.jsonOut)
	}
	return nil
}
