package roots

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/poly"
)

// residual evaluates |p(x)| for the univariate polynomial with constant
// coefficients cs (low power first) at the complex point x.
func residual(cs []float64, x complex128) float64 {
	sum := complex(0, 0)
	xp := complex(1, 0)
	for _, c := range cs {
		sum += complex(c, 0) * xp
		xp *= x
	}
	return cmplx.Abs(sum)
}

// scale returns a magnitude reference for relative error.
func scale(cs []float64, x complex128) float64 {
	s := 1.0
	xp := 1.0
	ax := cmplx.Abs(x)
	for _, c := range cs {
		if v := math.Abs(c) * xp; v > s {
			s = v
		}
		xp *= ax
	}
	return s
}

func checkAllRoots(t *testing.T, cs []float64) {
	t.Helper()
	polys := make([]*poly.Poly, len(cs))
	for i, c := range cs {
		// Coefficients in tests are small rationals scaled by 8.
		polys[i] = poly.Rat(int64(math.Round(c*8)), 8)
	}
	exprs, err := Solve(polys)
	if err != nil {
		t.Fatalf("Solve(%v): %v", cs, err)
	}
	deg := len(cs) - 1
	for deg > 0 && cs[deg] == 0 {
		deg--
	}
	if len(exprs) != deg {
		t.Fatalf("Solve(%v) returned %d roots, want %d", cs, len(exprs), deg)
	}
	env := map[string]float64{}
	for k, e := range exprs {
		x := e.Eval(env)
		if cmplx.IsNaN(x) || cmplx.IsInf(x) {
			// Degenerate branch (e.g. Cardano C = 0); acceptable, the
			// library falls back to exact search in that case.
			continue
		}
		if r := residual(cs, x) / scale(cs, x); r > 1e-7 {
			t.Errorf("coeffs %v root %d = %v: relative residual %g", cs, k, x, r)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	checkAllRoots(t, []float64{-6, 2}) // x = 3
	exprs, err := Solve([]*poly.Poly{poly.MustParse("-2*N"), poly.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got := exprs[0].Eval(map[string]float64{"N": 10}); cmplx.Abs(got-5) > 1e-12 {
		t.Errorf("linear root = %v, want 5", got)
	}
}

func TestSolveQuadraticKnown(t *testing.T) {
	// x² - 5x + 6 = 0 → roots 2, 3; branch order [-, +].
	exprs, err := Solve([]*poly.Poly{poly.Int(6), poly.Int(-5), poly.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	r0 := exprs[0].Eval(nil)
	r1 := exprs[1].Eval(nil)
	if cmplx.Abs(r0-2) > 1e-12 || cmplx.Abs(r1-3) > 1e-12 {
		t.Errorf("roots = %v, %v; want 2, 3", r0, r1)
	}
}

func TestSolveQuadraticComplex(t *testing.T) {
	// x² + 1 = 0 → ±i.
	exprs, err := Solve([]*poly.Poly{poly.Int(1), poly.Int(0), poly.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := exprs[1].Eval(nil); cmplx.Abs(got-complex(0, 1)) > 1e-12 {
		t.Errorf("root = %v, want i", got)
	}
}

func TestSolveCubicKnown(t *testing.T) {
	// (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6.
	cs := []float64{-6, 11, -6, 1}
	checkAllRoots(t, cs)
	// All three real roots must be produced (in some branch order).
	exprs, _ := Solve([]*poly.Poly{poly.Int(-6), poly.Int(11), poly.Int(-6), poly.Int(1)})
	found := map[int]bool{}
	for _, e := range exprs {
		x := e.Eval(nil)
		if math.Abs(imag(x)) > 1e-9 {
			t.Errorf("unexpected complex root %v", x)
		}
		found[int(math.Round(real(x)))] = true
	}
	for _, want := range []int{1, 2, 3} {
		if !found[want] {
			t.Errorf("root %d not found (got %v)", want, found)
		}
	}
}

func TestSolveQuarticKnown(t *testing.T) {
	// (x-1)(x-2)(x-3)(x-4) = x⁴ -10x³ +35x² -50x +24.
	cs := []float64{24, -50, 35, -10, 1}
	checkAllRoots(t, cs)
	exprs, _ := Solve([]*poly.Poly{
		poly.Int(24), poly.Int(-50), poly.Int(35), poly.Int(-10), poly.Int(1)})
	found := map[int]bool{}
	for _, e := range exprs {
		x := e.Eval(nil)
		if math.Abs(imag(x)) > 1e-7 {
			t.Errorf("unexpected complex root %v", x)
			continue
		}
		found[int(math.Round(real(x)))] = true
	}
	for _, want := range []int{1, 2, 3, 4} {
		if !found[want] {
			t.Errorf("root %d not found (got %v)", want, found)
		}
	}
}

func TestSolveRandomResiduals(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		deg := 1 + r.Intn(4)
		cs := make([]float64, deg+1)
		for i := range cs {
			cs[i] = float64(r.Intn(17)-8) / 2
		}
		if cs[deg] == 0 {
			cs[deg] = 1
		}
		checkAllRoots(t, cs)
	}
}

func TestSolveDegreeErrors(t *testing.T) {
	if _, err := Solve([]*poly.Poly{poly.Int(1)}); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := Solve([]*poly.Poly{poly.Int(1), poly.Int(0), poly.Int(0)}); err == nil {
		t.Error("degenerate degree 0 accepted")
	}
	five := []*poly.Poly{poly.Int(1), poly.Int(1), poly.Int(1), poly.Int(1), poly.Int(1), poly.Int(1)}
	if _, err := Solve(five); err == nil {
		t.Error("degree 5 accepted")
	}
	// Leading zeros trimmed: cubic written with zero quartic coefficient.
	exprs, err := Solve([]*poly.Poly{poly.Int(-6), poly.Int(11), poly.Int(-6), poly.Int(1), poly.Int(0)})
	if err != nil || len(exprs) != 3 {
		t.Errorf("trimmed solve: %d roots, err %v", len(exprs), err)
	}
}

// The paper's correlation recovery (§II, §IV.A): solving
// r(i, i+1) - pc = 0 with r(i,j) = (2iN+2j-i²-3i)/2 gives
// i = (-(sqrt(4N²-4N-8pc+9) - 2N + 1))/2 as the convenient root.
func TestPaperCorrelationQuadratic(t *testing.T) {
	rp := poly.MustParse("(2*i*N + 2*j - i^2 - 3*i)/2")
	eq := rp.Subst("j", poly.MustParse("i+1")).Sub(poly.Var("pc"))
	coeffs := eq.UnivariateIn("i")
	exprs, err := Solve(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 {
		t.Fatalf("want 2 roots, got %d", len(exprs))
	}
	N := 10.0
	// Paper: the convenient root satisfies floor(x(1)) = 0 and the other
	// evaluates to 2N-1 at pc=1.
	vals := make([]float64, 2)
	for k, e := range exprs {
		x := e.Eval(map[string]float64{"N": N, "pc": 1})
		if math.Abs(imag(x)) > 1e-9 {
			t.Fatalf("root %d complex at pc=1: %v", k, x)
		}
		vals[k] = real(x)
	}
	// One root is 0, the other 2N-1 = 19.
	if !((math.Abs(vals[0]) < 1e-9 && math.Abs(vals[1]-19) < 1e-9) ||
		(math.Abs(vals[1]) < 1e-9 && math.Abs(vals[0]-19) < 1e-9)) {
		t.Errorf("roots at pc=1: %v, want {0, 19}", vals)
	}
	// Mid-domain check: pc = rank of (i=3, j=5) with N=10 is r(3,5)=29;
	// solving r(i, i+1)=29 then flooring must give i=3.
	for _, e := range exprs {
		x := e.Eval(map[string]float64{"N": N, "pc": 29})
		if math.Abs(imag(x)) < 1e-9 && math.Floor(real(x)) == 3 {
			return
		}
	}
	t.Error("no root recovered i=3 for pc=29")
}

// The paper's tetrahedral cubic (§IV.C): solving r(i,0,0) - pc = 0 with
// r = (6k-3j²+6ij+3j+i³+3i²+2i+6)/6. At pc=1 the convenient root passes
// through complex intermediates (sqrt of a negative number) but evaluates
// to 0+0i.
func TestPaperTetraCubicComplexIntermediate(t *testing.T) {
	rp := poly.MustParse("(6*k - 3*j^2 + 6*i*j + 3*j + i^3 + 3*i^2 + 2*i + 6)/6")
	eq := rp.Subst("j", poly.Int(0)).Subst("k", poly.Int(0)).Sub(poly.Var("pc"))
	coeffs := eq.UnivariateIn("i")
	exprs, err := Solve(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 3 {
		t.Fatalf("want 3 roots, got %d", len(exprs))
	}
	// Paper: at pc=1 the discriminant inner value 243·1-486+242 = -1 < 0,
	// yet the convenient root evaluates to 0 + 0i.
	okAt1 := false
	for _, e := range exprs {
		x := e.Eval(map[string]float64{"pc": 1})
		if cmplx.Abs(x) < 1e-9 {
			okAt1 = true
		}
	}
	if !okAt1 {
		t.Error("no root evaluates to 0 at pc=1")
	}
	// For larger pc the convenient root must floor to the correct i:
	// with N large, rank of first iteration of i=I is r(I,0,0) =
	// (I³+3I²+2I+6)/6.
	for _, I := range []float64{1, 2, 5, 9} {
		pc := (I*I*I + 3*I*I + 2*I + 6) / 6
		hit := false
		for _, e := range exprs {
			x := e.Eval(map[string]float64{"pc": pc})
			if math.Abs(imag(x)) < 1e-6 && math.Abs(real(x)-I) < 1e-6 {
				hit = true
			}
		}
		if !hit {
			t.Errorf("no root equals %g at pc=%g", I, pc)
		}
	}
}

func TestExprPrinting(t *testing.T) {
	rp := poly.MustParse("(2*i*N + 2*j - i^2 - 3*i)/2")
	eq := rp.Subst("j", poly.MustParse("i+1")).Sub(poly.Var("pc"))
	exprs, err := Solve(eq.UnivariateIn("i"))
	if err != nil {
		t.Fatal(err)
	}
	s := String(exprs[0])
	if !strings.Contains(s, "sqrt(") {
		t.Errorf("math rendering lacks sqrt: %s", s)
	}
	c := CString(exprs[0])
	if !strings.Contains(c, "csqrt(") {
		t.Errorf("C rendering lacks csqrt: %s", c)
	}
	g := GoString(exprs[0])
	if !strings.Contains(g, "cmplx.Sqrt(") {
		t.Errorf("Go rendering lacks cmplx.Sqrt: %s", g)
	}
	// Cube roots must render via cpow in C (paper Fig. 7 uses cpow).
	rp3 := poly.MustParse("(6*k - 3*j^2 + 6*i*j + 3*j + i^3 + 3*i^2 + 2*i + 6)/6")
	eq3 := rp3.Subst("j", poly.Int(0)).Subst("k", poly.Int(0)).Sub(poly.Var("pc"))
	exprs3, err := Solve(eq3.UnivariateIn("i"))
	if err != nil {
		t.Fatal(err)
	}
	c3 := CString(exprs3[0])
	if !strings.Contains(c3, "cpow(") {
		t.Errorf("C rendering of cubic lacks cpow: %s", c3)
	}
	if !strings.Contains(GoString(exprs3[0]), "cmplx.Pow(") {
		t.Errorf("Go rendering of cubic lacks cmplx.Pow")
	}
}

func TestPolyToCodeRendering(t *testing.T) {
	p := poly.MustParse("i^2/2 - 3*i + N - 1/4")
	got := polyToCode(p, dialectC)
	want := "1.0/2.0*i*i + N - 3*i - 1.0/4.0"
	if got != want {
		t.Errorf("polyToCode = %q, want %q", got, want)
	}
	if polyToCode(poly.Zero(), dialectC) != "0" {
		t.Error("zero polynomial rendering")
	}
	if polyToCode(poly.Int(-7), dialectGo) != "-7" {
		t.Errorf("constant rendering: %q", polyToCode(poly.Int(-7), dialectGo))
	}
}

func TestPowIntegerEval(t *testing.T) {
	e := Pow{Base: NumInt(3), Num: 4, Den: 1}
	if got := e.Eval(nil); got != 81 {
		t.Errorf("3^4 = %v", got)
	}
	inv := Pow{Base: NumInt(2), Num: -2, Den: 1}
	if got := inv.Eval(nil); cmplx.Abs(got-0.25) > 1e-15 {
		t.Errorf("2^-2 = %v", got)
	}
}

func TestEvalUnboundVarIsNaN(t *testing.T) {
	e := P(poly.Var("z"))
	if x := e.Eval(map[string]float64{}); !cmplx.IsNaN(x) {
		t.Errorf("unbound variable evaluated to %v", x)
	}
}
