package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/omp"
	"repro/internal/telemetry"
)

// DegradeTier is the graceful-degradation ladder position, derived from
// the in-flight load fraction. Under rising load the daemon sheds the
// cheapest-to-refuse work first: codegen (pure luxury under pressure),
// then the collapsed engine itself (execute requests run the uncollapsed
// fallback, skipping compile work), and finally — when the semaphore is
// exhausted — everything, with 429 + Retry-After.
type DegradeTier int

const (
	// TierNormal serves everything.
	TierNormal DegradeTier = iota
	// TierShedCodegen rejects codegen requests with 429.
	TierShedCodegen
	// TierForceFallback additionally forces /v1/execute down the
	// uncollapsed worksharing path (no compile cost, no balance
	// guarantee — the request still completes correctly).
	TierForceFallback
)

// String names the tier for /healthz and logs.
func (t DegradeTier) String() string {
	switch t {
	case TierNormal:
		return "normal"
	case TierShedCodegen:
		return "shed-codegen"
	case TierForceFallback:
		return "force-fallback"
	}
	return fmt.Sprintf("DegradeTier(%d)", int(t))
}

// Config shapes a Server. The zero value of every field selects a
// sensible default (see the field comments).
type Config struct {
	// Threads is the worker-team size for /v1/execute (default
	// GOMAXPROCS).
	Threads int
	// MaxInflight bounds concurrently executing requests (default 64).
	MaxInflight int
	// RatePerSec and Burst parameterize token-bucket admission.
	// RatePerSec <= 0 disables admission control. Burst defaults to
	// 2*RatePerSec (min 1).
	RatePerSec float64
	Burst      float64
	// DefaultDeadline is the server-enforced per-request deadline
	// (default 5s); MaxDeadline caps client ?deadline_ms= requests
	// (default 30s). A non-positive MaxDeadline disables the cap.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// ShutdownTimeout bounds the graceful drain (default 10s).
	ShutdownTimeout time.Duration
	// CacheCapacity sizes the process-wide CollapseCache (default 256).
	CacheCapacity int
	// BreakerThreshold consecutive compile failures of one nest shape
	// trip its circuit for BreakerCooldown (defaults 3 and 30s;
	// threshold < 0 disables the breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ShedCodegenLoad and ForceFallbackLoad are the in-flight load
	// fractions at which the degradation ladder advances (defaults 0.5
	// and 0.75).
	ShedCodegenLoad   float64
	ForceFallbackLoad float64
	// Registry receives the serve_* metric families; a fresh registry is
	// created when nil.
	Registry *telemetry.Registry
	// Logf sinks request-failure logs (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Threads <= 0 {
		c.Threads = omp.DefaultThreads()
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.ShutdownTimeout <= 0 {
		c.ShutdownTimeout = 10 * time.Second
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.ShedCodegenLoad <= 0 {
		c.ShedCodegenLoad = 0.5
	}
	if c.ForceFallbackLoad <= 0 {
		c.ForceFallbackLoad = 0.75
	}
	if c.Registry == nil {
		c.Registry = telemetry.New()
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is the collapse daemon: the /v1 API endpoints wrapped in the
// request lifecycle manager, with the observability plane mounted beside
// them. Construct with New, serve with Serve (or mount Handler), stop
// with Shutdown.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	cache   *core.CollapseCache
	bucket  *tokenBucket
	sem     chan struct{}
	breaker *compileBreaker
	plane   *obs.Plane
	tuner   *autotune.Tuner

	mux      *http.ServeMux
	httpSrv  *http.Server
	ln       net.Listener
	draining atomic.Bool
	inflight atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.fill()
	// A daemon lives indefinitely: keep the span trace bounded by routing
	// it through a flight-recorder ring (unless the caller attached one).
	if cfg.Registry.Flight() == nil {
		cfg.Registry.EnableFlight(4096, false)
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		cache:   core.NewCollapseCache(cfg.CacheCapacity),
		bucket:  newTokenBucket(cfg.RatePerSec, cfg.Burst),
		sem:     make(chan struct{}, cfg.MaxInflight),
		breaker: newCompileBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, 0, cfg.Registry, cfg.Logf),
		plane:   obs.NewPlane(cfg.Registry),
	}
	// The autotuner shares the server's collapse cache (plans live in its
	// side-table) and telemetry, and never exceeds the serving thread cap.
	s.tuner = autotune.New(autotune.Options{
		Registry:   cfg.Registry,
		Cache:      s.cache,
		MaxWorkers: cfg.Threads,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.lifecycle("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/count", s.lifecycle("count", s.handleCount))
	mux.HandleFunc("POST /v1/rank", s.lifecycle("rank", s.handleRank))
	mux.HandleFunc("POST /v1/unrank", s.lifecycle("unrank", s.handleUnrank))
	mux.HandleFunc("POST /v1/codegen", s.lifecycle("codegen", s.handleCodegen))
	mux.HandleFunc("POST /v1/execute", s.lifecycle("execute", s.handleExecute))
	mux.HandleFunc("/healthz", s.handleHealthz)
	// Everything else — /metrics, /snapshot, /trace, /debug/pprof, the
	// index — is the observability plane.
	mux.Handle("/", s.plane.Handler())
	s.mux = mux
	return s
}

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Cache returns the process-wide collapse cache.
func (s *Server) Cache() *core.CollapseCache { return s.cache }

// Handler returns the daemon's full mux (API + observability plane),
// usable with httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// loadFraction is the in-flight occupancy of the request semaphore.
func (s *Server) loadFraction() float64 {
	return float64(s.inflight.Load()) / float64(s.cfg.MaxInflight)
}

// Tier reports the current degradation-ladder position.
func (s *Server) Tier() DegradeTier {
	f := s.loadFraction()
	switch {
	case f >= s.cfg.ForceFallbackLoad:
		return TierForceFallback
	case f >= s.cfg.ShedCodegenLoad:
		return TierShedCodegen
	}
	return TierNormal
}

// handlerFunc is an endpoint body: it returns the response document or
// an error the lifecycle maps onto an HTTP status.
type handlerFunc func(ctx context.Context, req *Request) (any, error)

// lifecycle wraps an endpoint with the full request lifecycle:
// drain guard → token-bucket admission → semaphore → degradation shed →
// deadline → panic isolation → execute → classify/respond. Every
// decision increments a serve.* counter so the ladder is observable.
func (s *Server) lifecycle(endpoint string, h handlerFunc) http.HandlerFunc {
	lat := s.reg.Histogram("serve.latency_seconds{endpoint="+endpoint+"}", nil)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.reg.Counter("serve.rejected").Inc()
			writeError(w, http.StatusServiceUnavailable, "shutting_down",
				errors.New("server is draining"), time.Second)
			return
		}
		if ok, retry := s.bucket.take(); !ok {
			s.reg.Counter("serve.rejected").Inc()
			s.reg.Counter("serve.rejected_ratelimit").Inc()
			writeError(w, http.StatusTooManyRequests, "overloaded",
				errors.New("admission control: rate limit exceeded"), retry)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.reg.Counter("serve.rejected").Inc()
			s.reg.Counter("serve.rejected_capacity").Inc()
			// The bucket is not the bottleneck here; hint one full
			// average service time via the refill estimator's floor.
			writeError(w, http.StatusTooManyRequests, "overloaded",
				errors.New("admission control: all request slots busy"),
				retryAfterHint(0, maxf(s.cfg.RatePerSec, 1), s.bucket.rnd()))
			return
		}
		s.reg.Gauge("serve.inflight").Set(s.inflight.Add(1))
		defer func() {
			s.reg.Gauge("serve.inflight").Set(s.inflight.Add(-1))
			<-s.sem
		}()

		tier := s.Tier()
		if endpoint == "codegen" && tier >= TierShedCodegen {
			s.reg.Counter("serve.shed").Inc()
			s.reg.Counter("serve.shed_codegen").Inc()
			writeError(w, http.StatusTooManyRequests, "overloaded",
				errors.New("shedding codegen under load"),
				retryAfterHint(0, maxf(s.cfg.RatePerSec, 1), s.bucket.rnd()))
			return
		}

		ctx, cancel := s.requestContext(r)
		defer cancel()

		var req Request
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			s.reg.Counter("serve.bad_requests").Inc()
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("decoding request body: %w", err), 0)
			return
		}

		s.reg.Counter("serve.admitted").Inc()
		start := time.Now()
		resp, err := s.callIsolated(ctx, h, &req, tier)
		lat.Observe(time.Since(start).Seconds())
		if err != nil {
			status, class := s.classify(ctx, err)
			switch {
			case status == http.StatusGatewayTimeout:
				s.reg.Counter("serve.deadline_exceeded").Inc()
			case class == "breaker_open":
				s.reg.Counter("serve.breaker_open").Inc()
			case status >= 500:
				s.reg.Counter("serve.errors_5xx").Inc()
			}
			if pe := faults.AsPanic(err); pe != nil {
				s.reg.Counter("serve.panics").Inc()
				s.cfg.Logf("serve: %s: worker panic isolated: %v\n%s", endpoint, pe.Value, pe.Stack)
			} else if status >= 500 {
				s.cfg.Logf("serve: %s: %v", endpoint, err)
			}
			writeError(w, status, class, err, 0)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// callIsolated runs the endpoint body with per-request panic isolation:
// a panic anywhere below (handler bug, pipeline invariant) becomes a
// *faults.PanicError on this request's error path, never process death.
func (s *Server) callIsolated(ctx context.Context, h handlerFunc, req *Request,
	tier DegradeTier) (resp any, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, faults.Recovered(r)
		}
	}()
	ctx = context.WithValue(ctx, tierKey{}, tier)
	return h(ctx, req)
}

// tierKey carries the admission-time degradation tier to the handler, so
// one request observes one consistent tier.
type tierKey struct{}

func tierFrom(ctx context.Context) DegradeTier {
	if t, ok := ctx.Value(tierKey{}).(DegradeTier); ok {
		return t
	}
	return TierNormal
}

// requestContext applies the deadline policy: the server default, unless
// the client asked for less via ?deadline_ms= (capped at MaxDeadline).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if q := r.URL.Query().Get("deadline_ms"); q != "" {
		if ms, err := strconv.ParseInt(q, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
			if s.cfg.MaxDeadline > 0 && d > s.cfg.MaxDeadline {
				d = s.cfg.MaxDeadline
			}
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// classify maps an error onto its HTTP status and machine class, the
// faults taxonomy made wire-visible.
func (s *Server) classify(ctx context.Context, err error) (int, string) {
	var bo *errBreakerOpen
	if errors.As(err, &bo) {
		return http.StatusUnprocessableEntity, "breaker_open"
	}
	var badReq *requestError
	if errors.As(err, &badReq) {
		return http.StatusBadRequest, "bad_request"
	}
	switch {
	case errors.Is(err, faults.ErrCanceled) || errors.Is(err, context.DeadlineExceeded):
		if ctx.Err() == context.DeadlineExceeded {
			return http.StatusGatewayTimeout, "deadline_exceeded"
		}
		return 499, "canceled" // client went away (nginx convention)
	case errors.Is(err, faults.ErrNonAffine):
		return http.StatusUnprocessableEntity, "non_affine"
	case errors.Is(err, faults.ErrDegreeTooHigh):
		return http.StatusUnprocessableEntity, "degree_too_high"
	case errors.Is(err, faults.ErrNoConvenientRoot):
		return http.StatusUnprocessableEntity, "no_convenient_root"
	case errors.Is(err, faults.ErrOverflow):
		return http.StatusUnprocessableEntity, "overflow"
	case errors.Is(err, faults.ErrRecoveryDiverged):
		return http.StatusInternalServerError, "recovery_diverged"
	case faults.AsPanic(err) != nil:
		return http.StatusInternalServerError, "panic"
	}
	return http.StatusInternalServerError, "internal"
}

// requestError marks a caller mistake (missing fields, malformed nest,
// out-of-domain query) for 400 classification.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &requestError{err: fmt.Errorf(format, args...)}
}

// handleHealthz is the readiness probe: 200 while the daemon can take
// meaningful work, 503 when draining or saturated (load at or past the
// force-fallback tier). The JSON body reports the degradation tier,
// in-flight load and open-breaker count either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tier := s.Tier()
	doc := map[string]any{
		"status":        "ok",
		"draining":      s.draining.Load(),
		"degrade_tier":  tier.String(),
		"inflight":      s.inflight.Load(),
		"max_inflight":  s.cfg.MaxInflight,
		"load":          s.loadFraction(),
		"open_breakers": s.breaker.openCount(),
	}
	status := http.StatusOK
	if s.draining.Load() || tier >= TierForceFallback {
		doc["status"] = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, doc)
}

// Serve starts the daemon on addr ("127.0.0.1:0", ":8080") in a
// background goroutine and returns the bound address.
func (s *Server) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Addr returns the bound address (nil before Serve).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains gracefully: new requests are refused with 503, the
// listener closes, and in-flight requests get until ctx (or the
// configured ShutdownTimeout when ctx has no deadline) to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv == nil {
		return nil
	}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ShutdownTimeout)
		defer cancel()
	}
	return s.httpSrv.Shutdown(ctx)
}

// Close abandons in-flight requests (tests); prefer Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Close()
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// writeError renders the uniform error document. retry > 0 adds a
// Retry-After header with fractional seconds (the daemon's own client
// parses the fraction; integer-only clients round up).
func writeError(w http.ResponseWriter, status int, class string, err error, retry time.Duration) {
	doc := ErrorResponse{Error: err.Error(), Class: class}
	if retry > 0 {
		doc.RetryAfterS = retry.Seconds()
		w.Header().Set("Retry-After", formatRetryAfter(retry))
	}
	writeJSON(w, status, doc)
}

// formatRetryAfter renders a duration as decimal seconds with
// millisecond resolution, e.g. "0.042".
func formatRetryAfter(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
