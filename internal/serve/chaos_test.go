package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestChaosAcceptance is the PR's acceptance scenario: the daemon under
// simultaneous worker panics (every Nth chunk), perturbed closed-form
// roots (the recovery machinery must repair each one), and 2x
// over-capacity offered load. The bar:
//
//   - every admitted (2xx) rank/unrank/count/execute answer is exactly
//     correct, differential-checked against the sequential enumeration;
//   - the excess load is shed with 429, not queued and not crashed;
//   - injected panics surface as isolated 500s on their own requests,
//     never as process death or wrong answers elsewhere;
//   - at the end the daemon drains cleanly.
func TestChaosAcceptance(t *testing.T) {
	const (
		N        = 40
		inflight = 4
		clients  = 8 // 2x the request capacity
		rounds   = 30
	)
	reg := telemetry.New()
	s, c := startServer(t, Config{
		Threads:     2,
		MaxInflight: inflight,
		// Admission by capacity only: the token bucket stays open so the
		// semaphore bound is what sheds.
		RatePerSec: 0,
		Registry:   reg,
		Logf:       func(string, ...any) {}, // injected panics are expected noise
	})
	tuples, checksum := triEnum(t, N)
	total := int64(len(tuples))

	// Warm the compile cache first: the perturbation hook also fires
	// during compile-time root selection, where it is a deterministic
	// applicability failure rather than a recoverable fault.
	if _, err := c.Compile(context.Background(), triRequest(N)); err != nil {
		t.Fatalf("warm compile: %v", err)
	}

	var chunkCount atomic.Int64
	restore := faults.Activate(&faults.Plan{
		OnChunk: func(tid int, clo, chi int64) error {
			if chunkCount.Add(1)%3 == 0 {
				panic("chaos: injected worker panic")
			}
			return nil
		},
		PerturbRoot: func(level int, x complex128) complex128 { return x + 1.5 },
	})
	defer restore()

	var (
		ok429, ok2xx, panics500 atomic.Int64
		wrong                   atomic.Int64
	)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			ctx := context.Background()
			cli := NewClient(c.BaseURL)
			cli.MaxRetries = -1
			for r := 0; r < rounds; r++ {
				pc := int64((cl*rounds+r)%len(tuples)) + 1
				var err error
				switch r % 4 {
				case 0: // rank
					req := triRequest(N)
					req.Index = tuples[pc-1]
					var resp *RankResponse
					if resp, err = cli.Rank(ctx, req); err == nil {
						ok2xx.Add(1)
						if resp.Pc != pc {
							wrong.Add(1)
						}
					}
				case 1: // unrank — exercises the perturbed-root recovery
					req := triRequest(N)
					req.Pc = pc
					var resp *UnrankResponse
					if resp, err = cli.Unrank(ctx, req); err == nil {
						ok2xx.Add(1)
						want := tuples[pc-1]
						if len(resp.Index) != len(want) || resp.Index[0] != want[0] || resp.Index[1] != want[1] {
							wrong.Add(1)
						}
					}
				case 2: // count
					var resp *CountResponse
					if resp, err = cli.Count(ctx, triRequest(N)); err == nil {
						ok2xx.Add(1)
						if resp.Total != total {
							wrong.Add(1)
						}
					}
				case 3: // execute — exposed to the injected panics
					req := triRequest(N)
					req.Schedule = "dynamic,8"
					var resp *ExecuteResponse
					if resp, err = cli.Execute(ctx, req); err == nil {
						ok2xx.Add(1)
						if resp.Iterations != total || resp.Checksum != checksum {
							wrong.Add(1)
						}
					}
				}
				if err != nil {
					var ae *APIError
					if !errors.As(err, &ae) {
						t.Errorf("client %d: transport error (daemon died?): %v", cl, err)
						return
					}
					switch {
					case ae.Status == http.StatusTooManyRequests:
						ok429.Add(1)
					case ae.Status == http.StatusInternalServerError && ae.Class == "panic":
						panics500.Add(1) // isolated injected panic: allowed
					default:
						t.Errorf("client %d: unexpected failure %v", cl, err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d wrong answers under chaos (admitted requests must be exact)", w)
	}
	if ok2xx.Load() == 0 {
		t.Fatalf("no request succeeded under chaos")
	}
	if panics500.Load() == 0 {
		t.Fatalf("no injected panic surfaced — chaos did not engage")
	}
	t.Logf("chaos: %d ok, %d shed(429), %d isolated panics",
		ok2xx.Load(), ok429.Load(), panics500.Load())

	// Excess load is shed with 429, deterministically: with every
	// request slot occupied, the next arrival must be turned away with a
	// Retry-After hint — never queued, never failed.
	for i := 0; i < inflight; i++ {
		s.sem <- struct{}{}
		s.inflight.Add(1)
	}
	_, err := c.Count(context.Background(), triRequest(N))
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: err = %v, want 429", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("over-capacity 429 carries no Retry-After hint")
	}
	for i := 0; i < inflight; i++ {
		<-s.sem
		s.inflight.Add(-1)
	}

	// Clean drain, chaos still active.
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
}
