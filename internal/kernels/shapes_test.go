package kernels

import (
	"testing"

	"repro/internal/omp"
)

// The balanced-shape kernels (rhomboid, parallelepiped) complete the
// abstract's shape taxonomy; all execution variants must match the
// sequential reference exactly, including the fused range runners with
// shifted bounds.
func TestShapeKernelsVariantsMatch(t *testing.T) {
	for _, k := range ShapeKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			p := k.TestParams
			inst := k.New(p)
			RunSeq(inst)
			want := inst.Checksum()
			if want == 0 {
				t.Fatal("zero reference checksum")
			}
			res, err := k.Collapsed()
			if err != nil {
				t.Fatal(err)
			}
			runs := []struct {
				name string
				run  func() error
			}{
				{"outer-static", func() error {
					RunOuterParallel(inst, 4, omp.Schedule{Kind: omp.Static})
					return nil
				}},
				{"collapsed-static", func() error {
					return RunCollapsedParallel(k, inst, res, p, 4, omp.Schedule{Kind: omp.Static})
				}},
				{"collapsed-dynamic", func() error {
					return RunCollapsedParallel(k, inst, res, p, 3, omp.Schedule{Kind: omp.Dynamic, Chunk: 5})
				}},
				{"collapsed-serial-12", func() error {
					return RunCollapsedSerialChunks(k, inst, res, p, 12)
				}},
			}
			for _, r := range runs {
				inst.Reset()
				if err := r.run(); err != nil {
					t.Fatalf("%s: %v", r.name, err)
				}
				if got := inst.Checksum(); got != want {
					t.Errorf("%s: checksum %v, want %v", r.name, got, want)
				}
			}
		})
	}
}

// Balanced shapes: per-outer work is constant, so the ranking must be
// the product linearisation and all outer loads equal.
func TestShapeKernelsAreBalanced(t *testing.T) {
	for _, k := range ShapeKernels() {
		res, err := k.Collapsed()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		b, err := res.Unranker.Bind(k.NestParams(k.TestParams))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got, want := b.Total(), b.Instance().Count(); got != want {
			t.Errorf("%s: Total %d != %d", k.Name, got, want)
		}
		inst := k.New(k.TestParams)
		lo, hi := inst.OuterRange()
		w0 := inst.WorkPerOuter(lo)
		for i := lo; i < hi; i++ {
			if inst.WorkPerOuter(i) != w0 {
				t.Errorf("%s: outer work varies (%v vs %v)", k.Name, inst.WorkPerOuter(i), w0)
			}
		}
	}
}
