package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestFig2ShowsImbalance(t *testing.T) {
	r := Fig2(1000, 5)
	if len(r.Loads) != 5 {
		t.Fatalf("loads = %d", len(r.Loads))
	}
	avg := r.Total / 5
	if r.Loads[0] < 1.5*avg {
		t.Errorf("thread 0 load %g not >> average %g", r.Loads[0], avg)
	}
	for i := 1; i < 5; i++ {
		if r.Loads[i] > r.Loads[i-1] {
			t.Errorf("loads not decreasing: %v", r.Loads)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "thread  0") || !strings.Contains(out, "Fig. 2") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFig8CurvesAreParallel(t *testing.T) {
	curves := Fig8()
	if len(curves) != 10 {
		t.Fatalf("curves = %d", len(curves))
	}
	// §IV.D: all curves are vertical translates of each other; the
	// difference between consecutive curves is exactly 1 at every i.
	for c := 1; c < len(curves); c++ {
		for p := range curves[c].Points {
			d := curves[c-1].Points[p].Y - curves[c].Points[p].Y
			if math.Abs(d-1) > 1e-9 {
				t.Fatalf("curves %d,%d differ by %g at i=%g", c-1, c, d, curves[c].Points[p].I)
			}
		}
	}
	// r(i,0,0) - 1 must be 0 at i = 0 (the first iteration has rank 1).
	for _, pt := range curves[0].Points {
		if pt.I == 0 && math.Abs(pt.Y) > 1e-9 {
			t.Errorf("r(0,0,0)-1 = %g, want 0", pt.Y)
		}
	}
	out := RenderFig8(curves)
	if !strings.Contains(out, "pc=10") {
		t.Errorf("render truncated:\n%s", out)
	}
}

// TestFig9QuickShape runs the full Fig. 9 pipeline at test sizes and
// checks the paper's qualitative results:
//   - collapsing beats outer-static on every kernel except possibly the
//     inner-dependence one (ltmp);
//   - dynamic beats collapsing on ltmp (the paper's anomaly).
func TestFig9QuickShape(t *testing.T) {
	rows, err := Fig9(Fig9Options{Threads: 12, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Quick mode runs sub-millisecond kernels, where shared-machine
	// timing noise dwarfs scheduling effects, so this test only checks
	// the mechanics; the paper-shape assertions (positive gains, ltmp
	// anomaly) run at bench sizes in TestFig9BenchShape.
	for _, r := range rows {
		if r.SerialSec <= 0 || r.StaticSec <= 0 || r.CollapsedSec <= 0 || r.DynamicSec <= 0 {
			t.Errorf("%s: non-positive times %+v", r.Kernel, r)
		}
		// Parallel makespans must not exceed serial time.
		if r.StaticSec > r.SerialSec*1.01 {
			t.Errorf("%s: static %g > serial %g", r.Kernel, r.StaticSec, r.SerialSec)
		}
		if r.DynamicSec > r.SerialSec*1.01 {
			t.Errorf("%s: dynamic %g > serial %g", r.Kernel, r.DynamicSec, r.SerialSec)
		}
	}
	out := RenderFig9(rows, 12, false)
	if !strings.Contains(out, "correlation_tiled") || !strings.Contains(out, "gain vs dyn") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

// TestFig9BenchShape reproduces the paper's headline qualitative claims
// at the evaluation problem sizes:
//   - collapsing beats outer-static on every kernel;
//   - collapsing beats or ties outer-dynamic on most kernels;
//   - dynamic beats collapsing on ltmp (inner-dependence anomaly, §VII).
//
// This runs each kernel serially once (a few seconds total), so it is
// skipped under -short.
func TestFig9BenchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-size experiment skipped in -short mode")
	}
	rows, err := Fig9(Fig9Options{Threads: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Notes on the dynamic comparison: our goroutine dynamic baseline has
	// a measured dequeue cost of a few nanoseconds — far cheaper than
	// libgomp's contended dispatch on the paper's 12-core machine — so
	// "gain vs dynamic" here is conservative relative to the paper.
	// The robust shape claims: collapsing beats static everywhere; it
	// clearly beats dynamic on the tiled kernels (incomplete tiles); it
	// is within noise of dynamic on most others; and it clearly loses to
	// dynamic on ltmp (the paper's own anomaly).
	closeOrWin := 0
	strictWins := 0
	byName := map[string]Fig9Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
		if r.Kernel == "ltmp" {
			if r.GainVsDynamic >= 0 {
				t.Errorf("ltmp: collapsing should lose to dynamic (gain %.3f)", r.GainVsDynamic)
			}
			continue
		}
		// Allow one near-zero kernel to wobble under shared-VM timing
		// noise (gain > -0.1), but require a strict majority of clear
		// wins below.
		if r.GainVsStatic <= -0.1 {
			t.Errorf("%s: gain vs static %.3f not positive", r.Kernel, r.GainVsStatic)
		}
		if r.GainVsStatic > 0.1 {
			strictWins++
		}
		if r.GainVsDynamic > -0.15 {
			closeOrWin++
		}
	}
	if strictWins < 8 {
		t.Errorf("collapsing clearly beats static on only %d/10 kernels", strictWins)
	}
	for _, tiled := range []string{"correlation_tiled", "covariance_tiled"} {
		if r := byName[tiled]; r.GainVsDynamic <= 0 {
			t.Errorf("%s: collapsing should beat dynamic on incomplete tiles (gain %.3f)",
				tiled, r.GainVsDynamic)
		}
	}
	if closeOrWin < 5 {
		t.Errorf("collapsing close-to-or-better than dynamic on only %d/10 kernels", closeOrWin)
	}
}

func TestFig10QuickShape(t *testing.T) {
	rows, err := Fig10(Fig10Options{Chunks: 12, Quick: true, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 11 kernels + covariance_full + symm_full
		t.Fatalf("rows = %d", len(rows))
	}
	full := 0
	for _, r := range rows {
		if r.SerialSec <= 0 || r.CollapsedSec <= 0 {
			t.Errorf("%s: non-positive times", r.Kernel)
		}
		if r.AllCollapsed {
			full++
		}
	}
	// utma, trapez, tetra, covariance_full, symm_full are full collapses.
	if full != 5 {
		t.Errorf("all-collapsed rows = %d, want 5", full)
	}
	out := RenderFig10(rows, 12)
	if !strings.Contains(out, "overhead(%)") || !strings.Contains(out, "symm_full") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestCalibrationSane(t *testing.T) {
	k := kernelByNameT(t, "correlation")
	res, err := buildResult(k)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(res, k.NestParams(k.TestParams))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Dequeue <= 0 || cal.Dequeue > 1e-4 {
		t.Errorf("dequeue = %g s", cal.Dequeue)
	}
	if cal.Recovery <= 0 || cal.Recovery > 1e-3 {
		t.Errorf("recovery = %g s", cal.Recovery)
	}
	if cal.Increment <= 0 || cal.Increment > 1e-4 {
		t.Errorf("increment = %g s", cal.Increment)
	}
	// The whole point of §V: recovery is much costlier than increment.
	if cal.Recovery < 3*cal.Increment {
		t.Errorf("recovery %g not >> increment %g", cal.Recovery, cal.Increment)
	}
}

func kernelByNameT(t *testing.T, name string) *kernels.Kernel {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
