package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/kernels"
	"repro/internal/omp"
	"repro/internal/telemetry"
)

// ---------------------------------------------------------------------
// Autotune suite — the measured end-to-end comparison behind the
// workload-driven schedule planner: for each Fig. 5 kernel, the tuned
// path (schedule "auto": measured-cost model + simulator-backed search,
// with online refinement) races a panel of hand-picked (schedule, chunk)
// choices at the same team size, all through the same §V per-iteration
// collapsed driver so the only variable is the scheduling decision.
//
// The headline numbers per kernel are the two machine-independent
// ratios: auto over the best hand choice (how close the planner gets to
// the per-kernel optimum it has never been told) and the worst hand
// choice over auto (what a user who guesses wrong pays). The suite also
// replans through a warmup run so the refinement loop has settled, and
// re-plans the same shape once more at the end to prove the decision is
// served from the plan cache. This is the source of BENCH_PR10.json
// (`make autotunegate-baseline`).
// ---------------------------------------------------------------------

// AutotuneChoice is one hand-picked schedule's measurement for a kernel.
type AutotuneChoice struct {
	// Spec in the -sched grammar ("static", "dynamic,64", ...), run at
	// the suite's fixed team size.
	Spec string  `json:"spec"`
	Sec  float64 `json:"seconds"`
	// VsAuto is this choice's time over the tuned time (>1: auto wins).
	VsAuto float64 `json:"vs_auto"`
}

// AutotuneRow is one kernel's full comparison.
type AutotuneRow struct {
	Kernel     string           `json:"kernel"`
	Params     map[string]int64 `json:"params"`
	Iterations int64            `json:"iterations"`
	// Decision is the planner's chosen triple ("dynamic,64 x8").
	Decision string `json:"decision"`
	// PredictedSec is the simulated makespan the final plan promised;
	// AutoSec the best measured tuned run after warmup.
	PredictedSec float64 `json:"predicted_seconds"`
	AutoSec      float64 `json:"auto_seconds"`
	// Best/Worst hand-picked choices from the panel.
	BestSpec  string  `json:"best_spec"`
	BestSec   float64 `json:"best_seconds"`
	WorstSpec string  `json:"worst_spec"`
	WorstSec  float64 `json:"worst_seconds"`
	// AutoVsBest is auto over best (1.0 = matched the optimum; the
	// acceptance bar is ≤ 1.10). WorstVsAuto is worst over auto (the
	// acceptance bar is ≥ 1.3).
	AutoVsBest  float64 `json:"auto_vs_best"`
	WorstVsAuto float64 `json:"worst_vs_auto"`
	// Replans counts online refinements absorbed across warmup and
	// measurement; CacheHit reports the end-of-row re-plan of the same
	// shape was served from the plan cache.
	Replans  int              `json:"replans"`
	CacheHit bool             `json:"cache_hit"`
	Choices  []AutotuneChoice `json:"choices"`
}

// AutotuneReport is the machine-readable document written to
// BENCH_PR10.json.
type AutotuneReport struct {
	Suite   string        `json:"suite"` // "autotune"
	Meta    BenchMeta     `json:"meta"`
	Threads int           `json:"threads"`
	Quick   bool          `json:"quick"`
	Reps    int           `json:"reps"`
	Warmups int           `json:"warmups"`
	Rows    []AutotuneRow `json:"kernels"`
	// Telemetry totals across the whole suite: plans computed, online
	// replans, and plan-cache hits (the acceptance bar is > 0).
	Plans     int64 `json:"autotune_plans"`
	Replans   int64 `json:"autotune_replans"`
	CacheHits int64 `json:"autotune_cache_hits"`
}

// AutotuneOptions configure the suite.
type AutotuneOptions struct {
	Quick bool // small test sizes (CI smoke) instead of bench sizes
	// Threads is the team size of the hand-picked panel and the
	// tuner's worker cap (default 12, the paper's P).
	Threads int
	// Reps is the best-of repetition count per timing (default 3; 1 in
	// Quick mode).
	Reps int
	// Warmups is how many tuned runs feed the refinement loop before
	// timing starts (default 2; 1 in Quick mode).
	Warmups int
	// Kernels to run (default: correlation, covariance, syrk, trapez,
	// ltmp — uniform and imbalanced shapes from the Fig. 5 set).
	Kernels []string
	// Schedules is the hand-picked panel in -sched grammar (default:
	// static; static,64; dynamic,1; dynamic,64; guided,1).
	Schedules []string
	Verbose   func(format string, args ...interface{})
}

func (o *AutotuneOptions) fill() {
	if o.Threads <= 0 {
		o.Threads = 12
	}
	if o.Reps <= 0 {
		o.Reps = 3
		if o.Quick {
			o.Reps = 1
		}
	}
	if o.Warmups <= 0 {
		o.Warmups = 2
		if o.Quick {
			o.Warmups = 1
		}
	}
	if len(o.Kernels) == 0 {
		o.Kernels = []string{"correlation", "covariance", "syrk", "trapez", "ltmp"}
	}
	if len(o.Schedules) == 0 {
		o.Schedules = []string{"static", "static,64", "dynamic,1", "dynamic,64", "guided,1"}
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
}

// parseSchedSpec parses the -sched grammar subset the panel uses.
func parseSchedSpec(spec string) (omp.Schedule, error) {
	name, chunkStr, hasChunk := strings.Cut(spec, ",")
	var s omp.Schedule
	switch strings.TrimSpace(name) {
	case "static":
		s.Kind = omp.Static
	case "dynamic":
		s.Kind = omp.Dynamic
	case "guided":
		s.Kind = omp.Guided
	default:
		return s, fmt.Errorf("unknown schedule %q", spec)
	}
	if hasChunk {
		c, err := strconv.ParseInt(strings.TrimSpace(chunkStr), 10, 64)
		if err != nil || c < 1 {
			return s, fmt.Errorf("bad chunk in %q", spec)
		}
		s.Chunk = c
		if s.Kind == omp.Static {
			s.Kind = omp.StaticChunk
		}
	}
	return s, nil
}

// Autotune runs the suite: every kernel through the tuned path and the
// hand-picked panel, best-of-Reps wall time each, on one shared tuner
// whose telemetry registry supplies the report's counter totals.
func Autotune(opts AutotuneOptions) (*AutotuneReport, error) {
	opts.fill()
	rep := &AutotuneReport{
		Suite:   "autotune",
		Meta:    NewBenchMeta(),
		Threads: opts.Threads,
		Quick:   opts.Quick,
		Reps:    opts.Reps,
		Warmups: opts.Warmups,
	}
	reg := telemetry.New()
	tuner := autotune.New(autotune.Options{Registry: reg, MaxWorkers: opts.Threads})
	ctx := context.Background()

	for _, name := range opts.Kernels {
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		p := k.BenchParams
		if opts.Quick {
			p = k.TestParams
		}
		inst := k.New(p)
		res, err := buildResult(k)
		if err != nil {
			return nil, err
		}
		nestParams := k.NestParams(p)
		b, err := res.Unranker.Bind(nestParams)
		if err != nil {
			return nil, err
		}
		row := AutotuneRow{Kernel: name, Params: p, Iterations: b.Total()}
		body := func(tid int, idx []int64) { inst.RunCollapsed(idx) }

		// Hand-picked panel, through the same chunk-instrumented driver
		// the tuned path uses (nil registry: no publication), so the only
		// variable between panel and auto is the scheduling decision.
		for _, spec := range opts.Schedules {
			sched, err := parseSchedSpec(spec)
			if err != nil {
				return nil, err
			}
			best := -1.0
			for r := 0; r < opts.Reps; r++ {
				inst.Reset()
				start := time.Now()
				if _, err := omp.CollapsedForChunkTelemetryCtx(ctx, res, nestParams, opts.Threads, sched, nil, body); err != nil {
					return nil, fmt.Errorf("%s %s: %w", name, spec, err)
				}
				if s := time.Since(start).Seconds(); best < 0 || s < best {
					best = s
				}
			}
			opts.Verbose("%s: %-12s %.3fms", name, spec, best*1e3)
			row.Choices = append(row.Choices, AutotuneChoice{Spec: spec, Sec: best})
		}

		// Tuned path: warmup runs feed Observe so the refinement loop
		// settles, then best-of-Reps timed runs.
		var lastRun autotune.Run
		for w := 0; w < opts.Warmups; w++ {
			inst.Reset()
			if lastRun, err = tuner.CollapsedFor(ctx, res, nestParams, body); err != nil {
				return nil, fmt.Errorf("%s auto warmup: %w", name, err)
			}
		}
		autoBest := -1.0
		for r := 0; r < opts.Reps; r++ {
			inst.Reset()
			run, err := tuner.CollapsedFor(ctx, res, nestParams, body)
			if err != nil {
				return nil, fmt.Errorf("%s auto: %w", name, err)
			}
			if s := run.Actual.Seconds(); autoBest < 0 || s < autoBest {
				autoBest = s
			}
			lastRun = run
		}
		row.AutoSec = autoBest
		row.Decision = lastRun.Plan.Decision.String()
		row.PredictedSec = lastRun.Plan.Decision.PredictedSec
		row.Replans = lastRun.Plan.Replans()
		opts.Verbose("%s: auto -> %s, %.3fms (predicted %.3fms)",
			name, row.Decision, autoBest*1e3, row.PredictedSec*1e3)

		// Re-plan the settled shape: must come straight from the cache.
		if _, cached, err := tuner.Plan(res, nestParams); err == nil {
			row.CacheHit = cached
		}

		for i := range row.Choices {
			c := &row.Choices[i]
			c.VsAuto = c.Sec / row.AutoSec
			if row.BestSec == 0 || c.Sec < row.BestSec {
				row.BestSec, row.BestSpec = c.Sec, c.Spec
			}
			if c.Sec > row.WorstSec {
				row.WorstSec, row.WorstSpec = c.Sec, c.Spec
			}
		}
		row.AutoVsBest = row.AutoSec / row.BestSec
		row.WorstVsAuto = row.WorstSec / row.AutoSec
		rep.Rows = append(rep.Rows, row)
	}

	snap := reg.Snapshot()
	rep.Plans = snap.Counters["autotune.plans"]
	rep.Replans = snap.Counters["autotune.replans"]
	rep.CacheHits = snap.Counters["autotune.cache_hits"]
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *AutotuneReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderAutotune renders the report as a text table.
func RenderAutotune(r *AutotuneReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Schedule autotuning vs hand-picked panel (%d threads, best of %d, %d warmups%s)\n",
		r.Threads, r.Reps, r.Warmups, map[bool]string{true: ", quick", false: ""}[r.Quick])
	fmt.Fprintf(&sb, "%-14s %-16s %10s %10s %-14s %10s %-14s %9s %9s\n",
		"kernel", "auto decision", "auto ms", "best ms", "best", "worst ms", "worst", "auto/best", "worst/auto")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-14s %-16s %10.3f %10.3f %-14s %10.3f %-14s %9.3f %9.2f\n",
			row.Kernel, row.Decision, row.AutoSec*1e3, row.BestSec*1e3, row.BestSpec,
			row.WorstSec*1e3, row.WorstSpec, row.AutoVsBest, row.WorstVsAuto)
	}
	fmt.Fprintf(&sb, "planner totals: %d plans, %d replans, %d cache hits\n",
		r.Plans, r.Replans, r.CacheHits)
	return sb.String()
}
