package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// correlation (paper Fig. 1): upper-triangle product accumulation with a
// symmetric write-back; the two outer triangular loops are collapsed,
// the k reduction stays inside the body.
//
//	for (i = 0; i < N-1; i++)
//	  for (j = i+1; j < N; j++) {
//	    for (k = 0; k < N; k++)
//	      a[i][j] += b[k][i]*c[k][j];
//	    a[j][i] = a[i][j];
//	  }
// ---------------------------------------------------------------------

// Correlation is the motivating kernel of the paper.
var Correlation = register(&Kernel{
	Name: "correlation",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N-1"),
		nest.L("j", "i+1", "N"),
		nest.L("k", "0", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 500},
	TestParams:  map[string]int64{"N": 40},
	New:         func(p map[string]int64) Instance { return newCorrInst(p["N"], false) },
})

// Covariance is the same shape including the diagonal (j >= i).
var Covariance = register(&Kernel{
	Name: "covariance",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "i", "N"),
		nest.L("k", "0", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 500},
	TestParams:  map[string]int64{"N": 40},
	New:         func(p map[string]int64) Instance { return newCorrInst(p["N"], true) },
})

type corrInst struct {
	n       int64
	incDiag bool // covariance includes j == i
	a, b, c []float64
	a0      []float64
}

func newCorrInst(n int64, incDiag bool) *corrInst {
	inst := &corrInst{
		n:       n,
		incDiag: incDiag,
		a:       make([]float64, n*n),
		b:       make([]float64, n*n),
		c:       make([]float64, n*n),
		a0:      make([]float64, n*n),
	}
	lcg(inst.a0, 1)
	lcg(inst.b, 2)
	lcg(inst.c, 3)
	copy(inst.a, inst.a0)
	return inst
}

func (in *corrInst) OuterRange() (int64, int64) {
	if in.incDiag {
		return 0, in.n
	}
	return 0, in.n - 1
}

func (in *corrInst) jLo(i int64) int64 {
	if in.incDiag {
		return i
	}
	return i + 1
}

func (in *corrInst) pair(i, j int64) {
	n := in.n
	acc := 0.0
	bi := in.b[0:] // keep bounds checks cheap via local slices
	for k := int64(0); k < n; k++ {
		acc += bi[k*n+i] * in.c[k*n+j]
	}
	in.a[i*n+j] += acc
	if i != j {
		in.a[j*n+i] = in.a[i*n+j]
	}
}

func (in *corrInst) RunOuter(i int64) {
	for j := in.jLo(i); j < in.n; j++ {
		in.pair(i, j)
	}
}

func (in *corrInst) RunCollapsed(idx []int64) { in.pair(idx[0], idx[1]) }

func (in *corrInst) WorkPerOuter(i int64) float64 {
	return float64(in.n-in.jLo(i)) * float64(in.n)
}

func (in *corrInst) WorkPerCollapsed([]int64) float64 { return float64(in.n) }

func (in *corrInst) Checksum() float64 { return checksum(in.a) }

func (in *corrInst) Reset() { copy(in.a, in.a0) }

// ---------------------------------------------------------------------
// correlation_tiled / covariance_tiled: the same computation after
// manual rectangular tiling of the (i, j) space. The tile space itself is
// triangular (jt >= it) with half-filled diagonal tiles — the trapezoidal
// incomplete-tile situation the paper targets with --tile (§VII). The two
// tile loops are collapsed; intra-tile loops run in the body.
// ---------------------------------------------------------------------

// CorrelationTiled collapses the triangular tile space of the tiled
// correlation kernel.
var CorrelationTiled = register(&Kernel{
	Name: "correlation_tiled",
	Nest: nest.MustNew([]string{"NT"},
		nest.L("it", "0", "NT"),
		nest.L("jt", "it", "NT"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"NT": 15, "T": 32}, // N = 480
	TestParams:  map[string]int64{"NT": 5, "T": 4},   // N = 20
	New:         func(p map[string]int64) Instance { return newTiledInst(p["NT"], p["T"], false) },
})

// CovarianceTiled is the diagonal-inclusive variant.
var CovarianceTiled = register(&Kernel{
	Name: "covariance_tiled",
	Nest: nest.MustNew([]string{"NT"},
		nest.L("it", "0", "NT"),
		nest.L("jt", "it", "NT"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"NT": 15, "T": 32},
	TestParams:  map[string]int64{"NT": 5, "T": 4},
	New:         func(p map[string]int64) Instance { return newTiledInst(p["NT"], p["T"], true) },
})

type tiledInst struct {
	corrInst
	nt, t int64
}

func newTiledInst(nt, t int64, incDiag bool) *tiledInst {
	return &tiledInst{corrInst: *newCorrInst(nt*t, incDiag), nt: nt, t: t}
}

func (in *tiledInst) OuterRange() (int64, int64) { return 0, in.nt }

// tile executes tile (it, jt): all (i, j) pairs of the original space
// falling inside it.
func (in *tiledInst) tile(it, jt int64) {
	t := in.t
	for i := it * t; i < (it+1)*t; i++ {
		jlo := jt * t
		if m := in.jLo(i); m > jlo {
			jlo = m
		}
		for j := jlo; j < (jt+1)*t; j++ {
			in.pair(i, j)
		}
	}
}

func (in *tiledInst) RunOuter(it int64) {
	for jt := it; jt < in.nt; jt++ {
		in.tile(it, jt)
	}
}

func (in *tiledInst) RunCollapsed(idx []int64) { in.tile(idx[0], idx[1]) }

// tilePairs counts the (i, j) pairs inside tile (it, jt).
func (in *tiledInst) tilePairs(it, jt int64) float64 {
	t := in.t
	if jt > it {
		return float64(t * t)
	}
	// Diagonal tile: strict triangle t(t-1)/2, inclusive t(t+1)/2.
	if in.incDiag {
		return float64(t*(t+1)) / 2
	}
	return float64(t*(t-1)) / 2
}

func (in *tiledInst) WorkPerOuter(it int64) float64 {
	var w float64
	for jt := it; jt < in.nt; jt++ {
		w += in.tilePairs(it, jt)
	}
	return w * float64(in.n)
}

func (in *tiledInst) WorkPerCollapsed(idx []int64) float64 {
	return in.tilePairs(idx[0], idx[1]) * float64(in.n)
}

// checksum reduces an array exactly and order-independently of variant
// (always serial), with position-dependent weights so transposed or
// misplaced writes change the value.
func checksum(a []float64) float64 {
	var s float64
	for x, v := range a {
		s += v * float64((x%13)+1)
	}
	return s
}
