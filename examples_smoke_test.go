package nonrect

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program (with small problem
// sizes) and checks its self-verification output, so the examples cannot
// rot silently. Skipped with -short (each `go run` pays a link step).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	cases := []struct {
		dir  string
		args []string
		want []string
	}{
		{"quickstart", nil, []string{"match = true", "rank back"}},
		{"correlation", []string{"-N", "120", "-threads", "4"},
			[]string{"first_iteration = 1;", "collapsed schedule(static)"}},
		{"tetrahedral", []string{"-N", "40"},
			[]string{"complex intermediates", "match = true"}},
		{"sourcetosource", nil, []string{"=== Go rendition ===", "#pragma omp simd"}},
		{"gpuwarp", []string{"-N", "80", "-M", "8", "-W", "8"},
			[]string{"full coverage verified"}},
		{"reshape", nil, []string{"match true", "fused space"}},
		{"tiling", []string{"-NT", "8", "-T", "4", "-threads", "4"},
			[]string{"match = true", "imbalance"}},
		{"timestep", []string{"-N", "60", "-steps", "5", "-threads", "3"},
			[]string{"bitwise match with sequential reference: true"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			args := append([]string{"run", "./examples/" + c.dir}, c.args...)
			cmd := exec.Command("go", args...)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed: %v\n%s", err, out)
			}
			for _, frag := range c.want {
				if !strings.Contains(string(out), frag) {
					t.Errorf("output missing %q:\n%s", frag, out)
				}
			}
		})
	}
}
