package omp

import (
	"sync"

	"repro/internal/core"
	"repro/internal/unrank"
)

// CollapsedFor executes the collapsed iteration space of r (pc =
// 1..Total) in parallel. Within each schedule chunk the §V scheme is
// used: the costly closed-form recovery runs once at the first iteration
// of the chunk, and subsequent index tuples come from lexicographic
// incrementation, mirroring the code of paper Figs. 4 and §V.
//
// Each worker owns a private unrank.Bound (the OpenMP codes privatize the
// recovery state the same way). body must be safe for concurrent
// invocation on distinct iterations; the idx slice is reused per worker.
func CollapsedFor(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) error {
	return collapsedRun(r, params, threads, sched, body, false)
}

// CollapsedForEvery is CollapsedFor with the recovery performed at every
// iteration (no incrementation) — the maximum-cost mode the paper
// associates with dynamic scheduling of collapsed loops (§V).
func CollapsedForEvery(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) error {
	return collapsedRun(r, params, threads, sched, body, true)
}

func collapsedRun(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64), every bool) error {
	if threads < 1 {
		threads = 1
	}
	bounds := make([]*unrank.Bound, threads)
	for t := range bounds {
		b, err := r.Unranker.Bind(params)
		if err != nil {
			return err
		}
		bounds[t] = b
	}
	total := bounds[0].Total()
	if total == 0 {
		return nil
	}
	var firstErr error
	var errOnce sync.Once
	ParallelForChunks(threads, 1, total+1, sched, func(tid int, clo, chi int64) {
		b := bounds[tid]
		run := core.ForRange
		if every {
			run = core.ForRangeEvery
		}
		if err := run(b, clo, chi-1, func(pc int64, idx []int64) {
			body(tid, idx)
		}); err != nil {
			errOnce.Do(func() { firstErr = err })
		}
	})
	return firstErr
}

// CollapsedStats aggregates the recovery statistics of the workers of the
// most recent CollapsedFor-style call made through RunCollapsedWithStats.
type CollapsedStats struct {
	Threads int
	Total   int64
	Stats   unrank.Stats
}

// RunCollapsedWithStats is CollapsedFor returning aggregate recovery
// statistics (root evaluations, corrections, fallbacks) across the team —
// the quantities behind the paper's Fig. 10 overhead discussion.
func RunCollapsedWithStats(r *core.Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64)) (CollapsedStats, error) {
	if threads < 1 {
		threads = 1
	}
	bounds := make([]*unrank.Bound, threads)
	for t := range bounds {
		b, err := r.Unranker.Bind(params)
		if err != nil {
			return CollapsedStats{}, err
		}
		bounds[t] = b
	}
	total := bounds[0].Total()
	cs := CollapsedStats{Threads: threads, Total: total}
	if total == 0 {
		return cs, nil
	}
	var firstErr error
	var errOnce sync.Once
	ParallelForChunks(threads, 1, total+1, sched, func(tid int, clo, chi int64) {
		if err := core.ForRange(bounds[tid], clo, chi-1, func(pc int64, idx []int64) {
			body(tid, idx)
		}); err != nil {
			errOnce.Do(func() { firstErr = err })
		}
	})
	for _, b := range bounds {
		s := b.Stats()
		cs.Stats.RootEvals += s.RootEvals
		cs.Stats.Corrections += s.Corrections
		cs.Stats.Fallbacks += s.Fallbacks
		cs.Stats.Searches += s.Searches
	}
	return cs, firstErr
}

// CollapsedForSIMD executes the collapsed space with the §VI.A
// vectorization scheme: each thread recovers its first tuple once, then
// repeatedly materialises batches of up to vlength consecutive tuples by
// incrementation and hands the whole batch to body, which plays the role
// of the "#pragma omp simd" loop over the thread-private array T.
func CollapsedForSIMD(r *core.Result, params map[string]int64, threads, vlength int,
	body func(tid int, batch [][]int64)) error {
	if vlength < 1 {
		vlength = 1
	}
	if threads < 1 {
		threads = 1
	}
	bounds := make([]*unrank.Bound, threads)
	for t := range bounds {
		b, err := r.Unranker.Bind(params)
		if err != nil {
			return err
		}
		bounds[t] = b
	}
	total := bounds[0].Total()
	if total == 0 {
		return nil
	}
	depth := r.C
	var firstErr error
	var errOnce sync.Once
	ParallelForChunks(threads, 1, total+1, Schedule{Kind: Static}, func(tid int, clo, chi int64) {
		b := bounds[tid]
		// Pre-allocate the thread-private tuple array T[vlength].
		backing := make([]int64, vlength*depth)
		batch := make([][]int64, vlength)
		for v := range batch {
			batch[v] = backing[v*depth : (v+1)*depth]
		}
		cur := make([]int64, depth)
		if err := b.Unrank(clo, cur); err != nil {
			errOnce.Do(func() { firstErr = err })
			return
		}
		for pc := clo; pc < chi; {
			nb := 0
			for v := 0; v < vlength && pc+int64(v) < chi; v++ {
				copy(batch[v], cur)
				nb++
				if pc+int64(v)+1 < chi {
					if !b.Increment(cur) {
						break
					}
				}
			}
			body(tid, batch[:nb])
			pc += int64(nb)
		}
	})
	return firstErr
}

// CollapsedForWarp executes the collapsed space with the §VI.B GPU-warp
// scheme: W lanes run concurrently; lane w executes iterations pc = w+1,
// w+1+W, w+1+2W, … Each lane performs the costly recovery only once (at
// its first pc) and advances by W lexicographic incrementations between
// iterations, achieving the coalesced-access distribution of the paper.
func CollapsedForWarp(r *core.Result, params map[string]int64, W int,
	body func(lane int, pc int64, idx []int64)) error {
	if W < 1 {
		W = 1
	}
	bounds := make([]*unrank.Bound, W)
	for t := range bounds {
		b, err := r.Unranker.Bind(params)
		if err != nil {
			return err
		}
		bounds[t] = b
	}
	total := bounds[0].Total()
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for lane := 0; lane < W; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			b := bounds[lane]
			start := int64(lane) + 1
			if start > total {
				return
			}
			idx := make([]int64, r.C)
			if err := b.Unrank(start, idx); err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			for pc := start; pc <= total; pc += int64(W) {
				body(lane, pc, idx)
				for inc := 0; inc < W && pc+int64(inc) < total; inc++ {
					if !b.Increment(idx) {
						break
					}
				}
			}
		}(lane)
	}
	wg.Wait()
	return firstErr
}
