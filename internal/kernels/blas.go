package kernels

import "repro/internal/nest"

// ---------------------------------------------------------------------
// symm: symmetric matrix–matrix product restricted to the lower triangle
// of the output. A is stored as its lower triangle and accessed
// symmetrically; each (i, j) with j <= i is independent, so the two
// triangular outer loops are collapsed while the rectangular k reduction
// stays in the body.
//
//	for (i = 0; i < N; i++)
//	  for (j = 0; j <= i; j++) {
//	    acc = 0;
//	    for (k = 0; k < N; k++)
//	      acc += SYM(A,i,k) * B[k][j];
//	    C[i][j] = beta*C[i][j] + alpha*acc;
//	  }
// ---------------------------------------------------------------------

// Symm is the symmetric-product kernel.
var Symm = register(&Kernel{
	Name: "symm",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 400},
	TestParams:  map[string]int64{"N": 32},
	New:         func(p map[string]int64) Instance { return newSymmInst(p["N"]) },
})

type symmInst struct {
	n     int64
	a, b  []float64
	c, c0 []float64
}

func newSymmInst(n int64) *symmInst {
	in := &symmInst{
		n:  n,
		a:  make([]float64, n*n),
		b:  make([]float64, n*n),
		c:  make([]float64, n*n),
		c0: make([]float64, n*n),
	}
	lcg(in.a, 11)
	lcg(in.b, 12)
	lcg(in.c0, 13)
	copy(in.c, in.c0)
	return in
}

func (in *symmInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *symmInst) cell(i, j int64) {
	n := in.n
	acc := 0.0
	for k := int64(0); k < n; k++ {
		var av float64
		if k <= i {
			av = in.a[i*n+k]
		} else {
			av = in.a[k*n+i]
		}
		acc += av * in.b[k*n+j]
	}
	in.c[i*n+j] = 0.5*in.c[i*n+j] + 1.5*acc
}

func (in *symmInst) RunOuter(i int64) {
	for j := int64(0); j <= i; j++ {
		in.cell(i, j)
	}
}

func (in *symmInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1]) }

func (in *symmInst) WorkPerOuter(i int64) float64 { return float64(i+1) * float64(in.n) }

func (in *symmInst) WorkPerCollapsed([]int64) float64 { return float64(in.n) }

func (in *symmInst) Checksum() float64 { return checksum(in.c) }

func (in *symmInst) Reset() { copy(in.c, in.c0) }

// ---------------------------------------------------------------------
// syrk: symmetric rank-k update computing only the lower triangle:
// C[i][j] = beta*C[i][j] + alpha * sum_k A[i][k]*A[j][k], j <= i.
// ---------------------------------------------------------------------

// Syrk is the rank-k update kernel.
var Syrk = register(&Kernel{
	Name: "syrk",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 450},
	TestParams:  map[string]int64{"N": 32},
	New:         func(p map[string]int64) Instance { return newSyrkInst(p["N"], false) },
})

// Syr2k is the rank-2k update kernel (two symmetric products).
var Syr2k = register(&Kernel{
	Name: "syr2k",
	Nest: nest.MustNew([]string{"N"},
		nest.L("i", "0", "N"),
		nest.L("j", "0", "i+1"),
		nest.L("k", "0", "N"),
	),
	Collapse:    2,
	BenchParams: map[string]int64{"N": 400},
	TestParams:  map[string]int64{"N": 32},
	New:         func(p map[string]int64) Instance { return newSyrkInst(p["N"], true) },
})

type syrkInst struct {
	n     int64
	rank2 bool
	a, b  []float64
	c, c0 []float64
}

func newSyrkInst(n int64, rank2 bool) *syrkInst {
	in := &syrkInst{
		n:     n,
		rank2: rank2,
		a:     make([]float64, n*n),
		b:     make([]float64, n*n),
		c:     make([]float64, n*n),
		c0:    make([]float64, n*n),
	}
	lcg(in.a, 21)
	lcg(in.b, 22)
	lcg(in.c0, 23)
	copy(in.c, in.c0)
	return in
}

func (in *syrkInst) OuterRange() (int64, int64) { return 0, in.n }

func (in *syrkInst) cell(i, j int64) {
	n := in.n
	acc := 0.0
	if in.rank2 {
		for k := int64(0); k < n; k++ {
			acc += in.a[i*n+k]*in.b[j*n+k] + in.b[i*n+k]*in.a[j*n+k]
		}
	} else {
		for k := int64(0); k < n; k++ {
			acc += in.a[i*n+k] * in.a[j*n+k]
		}
	}
	in.c[i*n+j] = 0.75*in.c[i*n+j] + 1.25*acc
}

func (in *syrkInst) RunOuter(i int64) {
	for j := int64(0); j <= i; j++ {
		in.cell(i, j)
	}
}

func (in *syrkInst) RunCollapsed(idx []int64) { in.cell(idx[0], idx[1]) }

func (in *syrkInst) WorkPerOuter(i int64) float64 {
	w := float64(i+1) * float64(in.n)
	if in.rank2 {
		w *= 2
	}
	return w
}

func (in *syrkInst) WorkPerCollapsed([]int64) float64 {
	w := float64(in.n)
	if in.rank2 {
		w *= 2
	}
	return w
}

func (in *syrkInst) Checksum() float64 { return checksum(in.c) }

func (in *syrkInst) Reset() { copy(in.c, in.c0) }
