package ehrhart

import (
	"repro/internal/nest"
	"repro/internal/poly"
	"repro/internal/telemetry"
)

// RankingInstrumented computes the ranking and counting polynomials of
// the nest, emitting "compile"-category spans on tel so users can see
// where symbolic-summation time goes (degree-2 vs degree-4 nests differ
// sharply here). tel may be nil, in which case this is exactly
// Ranking + Count.
func RankingInstrumented(n *nest.Nest, tel *telemetry.Registry) (ranking, count *poly.Poly) {
	sp := tel.StartSpan("compile", "ehrhart.Ranking", 0)
	ranking = Ranking(n)
	sp.End(
		telemetry.Arg{Name: "depth", Value: int64(n.Depth())},
		telemetry.Arg{Name: "degree", Value: int64(ranking.MaxVarDegree())},
	)
	sp = tel.StartSpan("compile", "ehrhart.Count", 0)
	count = Count(n)
	sp.End()
	return ranking, count
}
