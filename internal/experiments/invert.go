package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/nest"
	"repro/internal/unrank"
)

// ---------------------------------------------------------------------
// Invert suite — the recovery-throughput comparison behind the
// breakpoint-table tier: for a set of representative nest shapes and a
// sweep of chunk sizes, how fast can the runtime resolve the chunk-start
// ranks a schedule hands out?
//
//   - per-pc exact binary search (unrank.ModeBinarySearch, the oracle
//     and the only pre-table option for ranking degree > 4);
//   - per-pc breakpoint-table recovery (unrank.ModeTable: O(log depth)
//     monotone table lookup + exact short correction, bit-identical to
//     the oracle);
//   - batched table recovery (unrank.Bound.RecoverBatch: all chunk
//     starts of the space resolved in one ascending pass, sharing
//     recovery prefixes between neighbours).
//
// The headline case is the degree-5 simplex at chunk 1 — a shape the
// closed-form inverter cannot touch (beyond radical solvability), where
// the table tier must beat per-pc binary search by a wide margin. This
// suite is the source of BENCH_PR9.json (`make invertgate-baseline`).
// ---------------------------------------------------------------------

// InvertChunk is one chunk-size cell of a nest's comparison.
type InvertChunk struct {
	ChunkPC int64 `json:"chunk_pc"`
	// Recoveries is how many chunk-start ranks were resolved per
	// traversal (capped at MaxStarts; Capped reports a hit cap).
	Recoveries int64 `json:"recoveries"`
	Capped     bool  `json:"capped,omitempty"`
	// Per-recovery cost of each engine, nanoseconds.
	SearchNs float64 `json:"search_ns_per_recovery"`
	TableNs  float64 `json:"table_ns_per_recovery"`
	BatchNs  float64 `json:"batch_ns_per_recovery"`
	// Recoveries per second of each engine (the higher-is-better view).
	SearchRecPerSec float64 `json:"search_recoveries_per_sec"`
	TableRecPerSec  float64 `json:"table_recoveries_per_sec"`
	BatchRecPerSec  float64 `json:"batch_recoveries_per_sec"`
	// Speedups over per-pc binary search (>1: the table tier wins).
	SpeedupTable float64 `json:"speedup_table_vs_search"`
	SpeedupBatch float64 `json:"speedup_batch_vs_search"`
	// Table-tier counters per traversal: lookups that hit a table and
	// exact corrections spent confirming strided segments.
	TableLookups     int64 `json:"table_lookups"`
	TableCorrections int64 `json:"table_corrections"`
}

// InvertRow is one nest's full comparison.
type InvertRow struct {
	Nest   string           `json:"nest"`
	Params map[string]int64 `json:"params"`
	Depth  int              `json:"depth"`
	Degree int              `json:"ranking_degree"`
	// SearchOnly marks shapes beyond radical solvability (degree > 4):
	// before the table tier, binary search was their only inverter.
	SearchOnly bool          `json:"search_only"`
	Total      int64         `json:"iterations"`
	Chunks     []InvertChunk `json:"chunks"`
}

// InvertReport is the machine-readable document written to
// BENCH_PR9.json.
type InvertReport struct {
	Suite string      `json:"suite"` // "invert"
	Meta  BenchMeta   `json:"meta"`
	Quick bool        `json:"quick"`
	Reps  int         `json:"reps"`
	Rows  []InvertRow `json:"nests"`
}

// InvertOptions configure the suite.
type InvertOptions struct {
	Quick bool // small problem sizes (CI smoke) instead of bench sizes
	// Reps is the best-of repetition count per timing (default 3; 1 in
	// Quick mode).
	Reps int
	// MinTime is the minimum accumulated duration per timing sample
	// (default 25ms; 2ms in Quick mode).
	MinTime time.Duration
	// ChunkSizes to sweep (default 1, 64, 4096 — the §VI.A per-iteration
	// extreme, a SIMD-width batch, and the shard engine's default).
	ChunkSizes []int64
	// MaxStarts caps the chunk-start count measured per cell (default
	// 16384; 2048 in Quick mode) so chunk-1 cells stay bounded.
	MaxStarts int64
	Verbose   func(format string, args ...interface{})
}

func (o *InvertOptions) fill() {
	if o.Reps <= 0 {
		o.Reps = 3
		if o.Quick {
			o.Reps = 1
		}
	}
	if o.MinTime <= 0 {
		o.MinTime = 25 * time.Millisecond
		if o.Quick {
			o.MinTime = 2 * time.Millisecond
		}
	}
	if len(o.ChunkSizes) == 0 {
		o.ChunkSizes = []int64{1, 64, 4096}
	}
	if o.MaxStarts <= 0 {
		o.MaxStarts = 16384
		if o.Quick {
			o.MaxStarts = 2048
		}
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
}

// invertCase is one nest shape of the sweep. Sizes are chosen so the
// bench run exercises strided tables (ranges near or above the default
// table budget) while totals stay well inside the int64 pc range.
type invertCase struct {
	name       string
	loops      []nest.Loop
	quickN     int64
	benchN     int64
	searchOnly bool
}

func invertCases() []invertCase {
	return []invertCase{
		{
			name:   "triangular2",
			loops:  []nest.Loop{nest.L("i", "0", "N-1"), nest.L("j", "i+1", "N")},
			quickN: 300, benchN: 4096,
		},
		{
			name:   "tetrahedral3",
			loops:  []nest.Loop{nest.L("i", "0", "N"), nest.L("j", "0", "i+1"), nest.L("k", "0", "j+1")},
			quickN: 64, benchN: 1024,
		},
		{
			name: "simplex5-deg5",
			loops: []nest.Loop{
				nest.L("a", "0", "N"), nest.L("b", "0", "a+1"), nest.L("c", "0", "b+1"),
				nest.L("d", "0", "c+1"), nest.L("e", "0", "d+1"),
			},
			quickN: 40, benchN: 4096,
			searchOnly: true,
		},
	}
}

// Invert runs the suite over every case.
func Invert(opts InvertOptions) (*InvertReport, error) {
	opts.fill()
	rep := &InvertReport{
		Suite: "invert",
		Meta:  NewBenchMeta(),
		Quick: opts.Quick,
		Reps:  opts.Reps,
	}
	for _, c := range invertCases() {
		row, err := invertNest(c, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

func invertNest(c invertCase, opts InvertOptions) (InvertRow, error) {
	nv := c.benchN
	if opts.Quick {
		nv = c.quickN
	}
	params := map[string]int64{"N": nv}
	row := InvertRow{
		Nest: c.name, Params: params,
		Depth: len(c.loops), SearchOnly: c.searchOnly,
	}
	n, err := nest.New([]string{"N"}, c.loops...)
	if err != nil {
		return row, err
	}
	// The oracle: exact per-pc binary search (no symbolic machinery).
	resS, err := core.Collapse(n, len(c.loops), unrank.Options{Mode: unrank.ModeBinarySearch})
	if err != nil {
		return row, err
	}
	// The table tier under test. The budget is raised one notch above
	// the default so bench-size outer levels (range N+1) stay dense;
	// deeper configurations still exercise the strided path.
	resT, err := core.Collapse(n, len(c.loops), unrank.Options{
		Mode: unrank.ModeTable, TableMaxEntries: 1 << 13,
	})
	if err != nil {
		return row, err
	}
	row.Degree = resS.Ranking.TotalDegree()
	bS, err := resS.Unranker.Bind(params)
	if err != nil {
		return row, err
	}
	bT, err := resT.Unranker.Bind(params)
	if err != nil {
		return row, err
	}
	total := bS.Total()
	row.Total = total

	for _, chunk := range opts.ChunkSizes {
		cell, err := invertChunk(bS, bT, total, chunk, opts)
		if err != nil {
			return row, fmt.Errorf("chunk %d: %w", chunk, err)
		}
		opts.Verbose("%s chunk %d: search %.0f ns, table %.0f ns (x%.2f), batch %.0f ns (x%.2f) per recovery",
			c.name, chunk, cell.SearchNs, cell.TableNs, cell.SpeedupTable,
			cell.BatchNs, cell.SpeedupBatch)
		row.Chunks = append(row.Chunks, cell)
	}
	return row, nil
}

func invertChunk(bS, bT *unrank.Bound, total, chunk int64, opts InvertOptions) (InvertChunk, error) {
	cell := InvertChunk{ChunkPC: chunk}
	// The chunk starts a schedule would hand out, ascending, capped.
	pcs := make([]int64, 0, min64(opts.MaxStarts, (total+chunk-1)/chunk))
	for pc := int64(1); pc <= total; pc += chunk {
		if int64(len(pcs)) == opts.MaxStarts {
			cell.Capped = true
			break
		}
		pcs = append(pcs, pc)
		if pc > total-chunk {
			break
		}
	}
	cell.Recoveries = int64(len(pcs))
	depth := bS.Depth()
	idx := make([]int64, depth)
	backing := make([]int64, len(pcs)*depth)
	out := make([][]int64, len(pcs))
	for i := range out {
		out[i] = backing[i*depth : (i+1)*depth]
	}

	bestOf := func(f func() error) (float64, error) {
		best := -1.0
		for r := 0; r < opts.Reps; r++ {
			var ferr error
			s := timeIt(opts.MinTime, func() {
				if err := f(); err != nil && ferr == nil {
					ferr = err
				}
			})
			if ferr != nil {
				return 0, ferr
			}
			if best < 0 || s < best {
				best = s
			}
		}
		return best, nil
	}
	perRec := func(sec float64) float64 { return sec / float64(len(pcs)) * 1e9 }

	searchSec, err := bestOf(func() error {
		for _, pc := range pcs {
			if err := bS.Unrank(pc, idx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	tableSec, err := bestOf(func() error {
		for _, pc := range pcs {
			if err := bT.Unrank(pc, idx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return cell, err
	}
	pre := bT.Stats()
	batchSec, err := bestOf(func() error { return bT.RecoverBatch(pcs, out) })
	if err != nil {
		return cell, err
	}

	// Bit-identical answers are the whole point: cross-check the batch
	// output of the last traversal against the oracle.
	for i, pc := range pcs {
		if err := bS.Unrank(pc, idx); err != nil {
			return cell, err
		}
		for q, v := range idx {
			if out[i][q] != v {
				return cell, fmt.Errorf("pc %d: table/batch tuple %v differs from oracle %v", pc, out[i], idx)
			}
		}
	}

	delta := bT.Stats().Sub(pre)
	cell.TableLookups = delta.TableLookups
	cell.TableCorrections = delta.TableCorrections
	cell.SearchNs, cell.TableNs, cell.BatchNs = perRec(searchSec), perRec(tableSec), perRec(batchSec)
	if searchSec > 0 {
		cell.SearchRecPerSec = float64(len(pcs)) / searchSec
	}
	if tableSec > 0 {
		cell.TableRecPerSec = float64(len(pcs)) / tableSec
		cell.SpeedupTable = cell.SearchNs / cell.TableNs
	}
	if batchSec > 0 {
		cell.BatchRecPerSec = float64(len(pcs)) / batchSec
		cell.SpeedupBatch = cell.SearchNs / cell.BatchNs
	}
	return cell, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// WriteJSON writes the report as indented JSON.
func (r *InvertReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderInvert prints the report as an aligned table.
func RenderInvert(r *InvertReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Invert suite — ns per chunk-start recovery (best of %d)\n", r.Reps)
	fmt.Fprintf(&b, "%-16s %7s %8s %10s %10s %10s %8s %8s\n",
		"nest", "chunk", "starts", "search", "table", "batch", "tbl-x", "batch-x")
	for _, row := range r.Rows {
		for _, s := range row.Chunks {
			fmt.Fprintf(&b, "%-16s %7d %8d %10.0f %10.0f %10.0f %7.2fx %7.2fx\n",
				row.Nest, s.ChunkPC, s.Recoveries, s.SearchNs, s.TableNs, s.BatchNs,
				s.SpeedupTable, s.SpeedupBatch)
		}
		note := ""
		if row.SearchOnly {
			note = "; degree > 4: search was the only pre-table inverter"
		}
		fmt.Fprintf(&b, "%-16s depth %d, degree %d, %d iterations%s\n",
			row.Nest, row.Depth, row.Degree, row.Total, note)
	}
	return b.String()
}
