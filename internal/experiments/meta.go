package experiments

import (
	"os"
	"runtime"
	"strings"
	"time"
)

// BenchSchemaVersion is the current version of the BENCH_*.json
// document schema. Version 1 (implicit — documents with no meta block)
// carried go_version/gomaxprocs at the top level of each report;
// version 2 adds the Meta block below. Readers (internal/benchcmp)
// accept both.
const BenchSchemaVersion = 2

// BenchMeta records the provenance of a benchmark document: enough to
// tell whether two BENCH_*.json files are comparable (same machine
// class, same toolchain) and when each was taken.
type BenchMeta struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	// CPUModel is the model name from /proc/cpuinfo (empty when the
	// platform does not expose one).
	CPUModel string `json:"cpu_model,omitempty"`
	// TimestampUTC is the document creation time, RFC 3339, UTC.
	TimestampUTC string `json:"timestamp_utc"`
}

// NewBenchMeta snapshots the current process and host.
func NewBenchMeta() BenchMeta {
	return BenchMeta{
		SchemaVersion: BenchSchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		CPUModel:      cpuModel(),
		TimestampUTC:  time.Now().UTC().Format(time.RFC3339),
	}
}

// cpuModel extracts the first "model name" line from /proc/cpuinfo.
// Best-effort: any failure yields "".
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(k) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
