// Command collapsetool is the source-to-source transformer of the paper
// (§VII): it reads a C fragment in which a non-rectangular loop nest is
// annotated with "#pragma omp ... collapse(c)", computes the ranking
// Ehrhart polynomial of the c outermost loops, inverts it symbolically,
// and prints the collapsed program with the original indices recovered
// from the single loop counter pc.
//
// Usage:
//
//	collapsetool [flags] [file.c]        (stdin when no file is given)
//
// Flags:
//
//	-scheme per-iteration|first-iteration|chunked|simd|warp
//	        recovery scheme of the generated code (default first-iteration,
//	        the paper's §V cost-minimised form)
//	-chunk N   chunk size for the chunked scheme (default 64)
//	-vlength N vector length for the simd scheme (default 8)
//	-warp N    warp width for the warp scheme (default 32)
//	-go        also emit a runnable serial Go rendition
//	-report    print the analysis (ranking polynomial, total count,
//	           root candidates and the selected convenient root)
//	-check N   self-check the transformation for parameter value N
//	           (verifies rank/unrank bijection by enumeration) and print
//	           the recovery statistics of the run
//	-stats     execute the collapsed nest on the goroutine runtime and
//	           print compile-pipeline phase times, per-thread iteration
//	           counts, recovery/correction counters (including the
//	           precision-ladder escalations prec128/prec256 and exact
//	           big-integer evaluation paths), a load-imbalance summary,
//	           and the collapse-cache record (cold compile vs warm hit
//	           times, hits/misses counters)
//	-n N       parameter value for the -stats run (default 300)
//	-threads P team size for the -stats run (default GOMAXPROCS)
//	-sched S   schedule for the -stats run, overriding the pragma
//	           clause: static|static,N|dynamic[,N]|guided[,N]|auto.
//	           "auto" hands the choice of (schedule, chunk, workers) to
//	           the autotuner — a simulator-backed planner over the
//	           nest's measured work vector — and the report prints the
//	           chosen triple with predicted-vs-actual makespan
//	-shards S  with -stats: run the collapsed pc-range under the
//	           fault-tolerant shard coordinator (internal/dist) with S
//	           shards — leases, retries, shard splitting, uncollapsed
//	           fallback — and print the recovery ledger and per-executor
//	           imbalance instead of per-thread chunk loads
//	-journal FILE
//	           with -shards: append-only checkpoint journal of completed
//	           pc-intervals (checksummed records + run fingerprint)
//	-resume    with -shards -journal: replay the journal, validate its
//	           fingerprint, and execute only the uncovered intervals
//	-deadline DUR
//	           wall-clock budget for the -stats run, wired as a
//	           context.WithTimeout into the parallel runtime (the same
//	           deadline path the collapsed daemon enforces per request);
//	           on expiry the team stops cooperatively at a chunk
//	           boundary and the typed faults.ErrCanceled class is reported
//	-trace-out FILE
//	           write the chunk timeline and compile spans as Chrome
//	           trace-event JSON (open in about:tracing or
//	           https://ui.perfetto.dev)
//	-serve ADDR
//	           start the live observability plane on ADDR (e.g. :9090 or
//	           127.0.0.1:0) for the duration of the run: GET /metrics
//	           (OpenMetrics), /snapshot (JSON rates), /trace (flight
//	           recorder), /debug/pprof. Forces telemetry on and enables
//	           the flight recorder
//	-hold DUR  with -serve, keep the plane up DUR after the run ends
//	           (negative: until interrupted), so the final counters can
//	           be scraped
//	-cpuprofile FILE / -memprofile FILE
//	           write pprof CPU/heap profiles of the run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/autotune"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/omp"
	"repro/internal/profiling"
	"repro/internal/roots"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// options bundles the command-line configuration of one run.
type options struct {
	scheme     string
	chunk      int
	vlength    int
	warp       int
	emitGo     bool
	report     bool
	check      int64
	stats      bool
	verify     bool
	sched      string
	statsN     int64
	threads    int
	shards     int
	journal    string
	resume     bool
	deadline   time.Duration
	traceOut   string
	serve      string
	hold       time.Duration
	cpuProfile string
	memProfile string
	args       []string

	// serveReady, when set (tests), receives the plane's bound address
	// once it is listening.
	serveReady func(net.Addr)
}

func main() {
	var o options
	flag.StringVar(&o.scheme, "scheme", "first-iteration", "code scheme: per-iteration|first-iteration|chunked|simd|warp")
	flag.IntVar(&o.chunk, "chunk", 64, "chunk size for -scheme chunked")
	flag.IntVar(&o.vlength, "vlength", 8, "vector length for -scheme simd")
	flag.IntVar(&o.warp, "warp", 32, "warp width for -scheme warp")
	flag.BoolVar(&o.emitGo, "go", false, "also emit a serial Go rendition")
	flag.BoolVar(&o.report, "report", false, "print ranking polynomial, count and root analysis")
	flag.Int64Var(&o.check, "check", 0, "self-check the bijection for this parameter value")
	flag.BoolVar(&o.stats, "stats", false, "run the collapsed nest and print telemetry (per-thread loads, recovery counters, imbalance)")
	flag.BoolVar(&o.verify, "verify", false, "re-rank every recovered tuple exactly during -check/-stats runs (escalates to binary search on mismatch)")
	flag.StringVar(&o.sched, "sched", "", "schedule for the -stats run, overriding the pragma clause: static|static,N|dynamic[,N]|guided[,N]|auto (auto lets the autotuner pick schedule, chunk and team size)")
	flag.Int64Var(&o.statsN, "n", 300, "parameter value for the -stats run")
	flag.IntVar(&o.threads, "threads", omp.DefaultThreads(), "team size for the -stats run")
	flag.IntVar(&o.shards, "shards", 0, "with -stats: run under the fault-tolerant shard coordinator with this many shards (0: plain team run)")
	flag.StringVar(&o.journal, "journal", "", "with -shards: append-only checkpoint journal for the run (enables -resume)")
	flag.BoolVar(&o.resume, "resume", false, "with -shards -journal: replay the journal and execute only uncovered pc-intervals")
	flag.DurationVar(&o.deadline, "deadline", 0, "wall-clock budget for the -stats run (0: none); expiry stops the team at a chunk boundary with ErrCanceled")
	flag.StringVar(&o.traceOut, "trace-out", "", "write Chrome trace-event JSON to this file")
	flag.StringVar(&o.serve, "serve", "", "serve the observability plane on this address (/metrics, /snapshot, /trace, /debug/pprof) during the run")
	flag.DurationVar(&o.hold, "hold", 0, "with -serve, keep the plane up this long after the run (negative: until interrupted)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()
	o.args = flag.Args()

	stop, perr := profiling.Start(o.cpuProfile, o.memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "collapsetool:", perr)
		os.Exit(1)
	}
	err := run(o)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "collapsetool:", err)
		if pe := faults.AsPanic(err); pe != nil {
			// An internal invariant tripped; the captured stack is the
			// only clue worth filing, so print it after the message.
			fmt.Fprintf(os.Stderr, "%s", pe.Stack)
		}
		os.Exit(1)
	}
}

func run(o options) error {
	if o.resume && o.journal == "" {
		return fmt.Errorf("-resume needs -journal FILE (the checkpoint to replay)")
	}
	if (o.shards > 0 || o.journal != "" || o.resume) && !o.stats {
		return fmt.Errorf("-shards/-journal/-resume apply to the -stats run; add -stats")
	}
	var src []byte
	var err error
	name := "<stdin>"
	switch len(o.args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		name = o.args[0]
		src, err = os.ReadFile(name)
	default:
		return fmt.Errorf("at most one input file")
	}
	if err != nil {
		return err
	}

	prog, err := cparse.Parse(string(src))
	if err != nil {
		var se *cparse.SyntaxError
		if errors.As(err, &se) {
			// Point at the offending construct, compiler style.
			return fmt.Errorf("%s:%d:%d: %s", name, se.Line, se.Col, se.Msg)
		}
		return err
	}
	var tel *telemetry.Registry
	if o.stats || o.traceOut != "" || o.serve != "" {
		tel = telemetry.New()
	}
	if o.serve != "" {
		// Server mode keeps the trace bounded: the flight recorder ring
		// retains the last 4096 spans, and the unbounded trace stays on
		// only when something downstream (-trace-out, -stats report)
		// consumes it.
		retain := o.traceOut != "" || o.stats
		tel.EnableFlight(4096, retain)
		plane := obs.NewPlane(tel)
		addr, err := plane.Serve(o.serve)
		if err != nil {
			return fmt.Errorf("-serve %s: %w", o.serve, err)
		}
		fmt.Fprintf(os.Stderr, "collapsetool: observability plane on http://%s (/metrics /snapshot /trace /debug/pprof)\n", addr)
		if o.serveReady != nil {
			o.serveReady(addr)
		}
		defer func() {
			if o.hold < 0 {
				fmt.Fprintln(os.Stderr, "collapsetool: run finished; holding plane open until interrupted")
				select {}
			}
			if o.hold > 0 {
				fmt.Fprintf(os.Stderr, "collapsetool: run finished; holding plane open %s\n", o.hold)
				time.Sleep(o.hold)
			}
			// Graceful drain: a scraper mid-/trace gets its full answer.
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			plane.Shutdown(shCtx)
		}()
	}
	// The -stats run demonstrates the collapse cache: the first Collapse
	// is a cold compile that populates it, a second structurally
	// identical request hits, and both timings plus the hit/miss counters
	// land in the telemetry report.
	var cache *core.CollapseCache
	var coldCompile, warmCompile time.Duration
	if o.stats {
		cache = core.NewCollapseCache(8)
	}
	uopts := unrank.Options{Telemetry: tel, Verify: o.verify}
	start := time.Now()
	res, err := core.CollapseCached(cache, prog.Nest, prog.CollapseCount, uopts)
	coldCompile = time.Since(start)
	if err == nil && cache != nil {
		start = time.Now()
		_, err = core.CollapseCached(cache, prog.Nest, prog.CollapseCount, uopts)
		warmCompile = time.Since(start)
	}
	if err != nil {
		if o.stats && faults.Collapsible(err) {
			// The technique is inapplicable to this nest; run it anyway
			// with plain outer-loop worksharing and report the downgrade.
			fmt.Fprintf(os.Stderr, "collapsetool: %s: collapse inapplicable: %v\n", name, err)
			fmt.Fprintf(os.Stderr, "collapsetool: downgrading to uncollapsed outer-loop worksharing\n")
			return runFallbackStats(prog, o, tel)
		}
		return err
	}

	if o.report {
		fmt.Printf("parsed nest (collapse %d, schedule %q):\n%s\n",
			prog.CollapseCount, prog.Schedule, indent(prog.Nest.String(), "  "))
		fmt.Printf("ranking polynomial:\n  r(%s) = %s\n",
			strings.Join(prog.Nest.Indices(), ", "), res.Ranking)
		fmt.Printf("total iterations:\n  %s\n", res.Total)
		for k := 0; k < res.C-1; k++ {
			fmt.Printf("level %d (%s): %d symbolic root candidate(s); convenient root #%d:\n",
				k, prog.Nest.Loops[k].Index, len(res.Unranker.RootCandidates(k)), res.Unranker.RootIndex(k))
			fmt.Printf("  %s = floor(Re( %s ))\n",
				prog.Nest.Loops[k].Index, roots.String(res.Unranker.RootExpr(k)))
		}
		fmt.Println()
	}

	var sch codegen.Scheme
	switch o.scheme {
	case "per-iteration":
		sch = codegen.PerIteration
	case "first-iteration":
		sch = codegen.FirstIteration
	case "chunked":
		sch = codegen.Chunked
	case "simd":
		sch = codegen.SIMD
	case "warp":
		sch = codegen.Warp
	default:
		return fmt.Errorf("unknown scheme %q", o.scheme)
	}
	opts := codegen.Options{
		Scheme:   sch,
		Schedule: prog.Schedule,
		Chunk:    o.chunk,
		VLength:  o.vlength,
		Warp:     o.warp,
		Body:     prog.Body,
	}
	out, err := codegen.EmitC(res, opts)
	if err != nil {
		return err
	}
	fmt.Print(out)

	if o.emitGo {
		goOpts := opts
		if sch != codegen.PerIteration && sch != codegen.FirstIteration {
			goOpts.Scheme = codegen.FirstIteration
		}
		goOpts.Body = "" // Go emission calls body(idx...)
		fn, err := codegen.EmitGo(res, goOpts)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(codegen.GoFile("collapsed", fn))
	}

	if o.check > 0 {
		if err := selfCheck(res, prog, o.check); err != nil {
			return err
		}
	}
	if o.stats {
		if o.shards > 0 {
			if err := runShardedStats(res, prog, o, tel); err != nil {
				return err
			}
		} else if err := runStats(res, prog, o, tel); err != nil {
			return err
		}
		speedup := 0.0
		if warmCompile > 0 {
			speedup = float64(coldCompile) / float64(warmCompile)
		}
		fmt.Printf("\ncollapse cache: cold compile %s, warm hit %s (%.1fx); %s\n",
			coldCompile.Round(time.Microsecond), warmCompile.Round(time.Microsecond),
			speedup, cache.Stats())
	}
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := tel.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in about:tracing or https://ui.perfetto.dev)\n", o.traceOut)
	}
	return nil
}

// selfCheck verifies the rank/unrank bijection by enumeration for the
// given parameter value and reports the recovery statistics of the run.
func selfCheck(res *core.Result, prog *cparse.Program, check int64) error {
	params := map[string]int64{}
	for _, p := range prog.Nest.Params {
		params[p] = check
	}
	b, err := res.Unranker.Bind(params)
	if err != nil {
		return err
	}
	idx := make([]int64, res.C)
	var pc int64
	okCount := int64(0)
	failed := false
	b.Instance().Enumerate(func(truth []int64) bool {
		pc++
		if err := b.Unrank(pc, idx); err != nil {
			fmt.Fprintf(os.Stderr, "check: Unrank(%d): %v\n", pc, err)
			failed = true
			return false
		}
		for q := range idx {
			if idx[q] != truth[q] {
				fmt.Fprintf(os.Stderr, "check: Unrank(%d) = %v, want %v\n", pc, idx, truth)
				failed = true
				return false
			}
		}
		okCount++
		return true
	})
	if failed {
		return fmt.Errorf("self-check failed")
	}
	fmt.Fprintf(os.Stderr, "self-check: %d/%d iterations recovered exactly (params=%d)\n",
		okCount, b.Total(), check)
	fmt.Fprintf(os.Stderr, "recovery stats: %s\n", b.Stats())
	return nil
}

// parseSchedule maps the pragma's schedule clause text (or the -sched
// flag, same grammar plus "auto") to a runtime schedule (defaulting to
// static).
func parseSchedule(clause string) omp.Schedule {
	kind, arg, _ := strings.Cut(clause, ",")
	s := omp.Schedule{Kind: omp.Static}
	switch strings.TrimSpace(kind) {
	case "dynamic":
		s.Kind = omp.Dynamic
	case "guided":
		s.Kind = omp.Guided
	case "auto":
		s.Kind = omp.ScheduleAuto
	case "static", "":
	}
	if n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64); err == nil && n > 0 {
		s.Chunk = n
		if s.Kind == omp.Static {
			s.Kind = omp.StaticChunk
		}
	}
	return s
}

// statsContext builds the -stats run context: background, or a
// context.WithTimeout when -deadline is set — the same deadline shape
// the collapsed daemon enforces per request.
func statsContext(deadline time.Duration) (context.Context, context.CancelFunc) {
	if deadline > 0 {
		return context.WithTimeout(context.Background(), deadline)
	}
	return context.Background(), func() {}
}

// classifyDeadline translates a run error into the typed taxonomy for
// the CLI: an ErrCanceled expiry is reported as such (the team stopped
// cooperatively at a chunk boundary), anything else passes through.
func classifyDeadline(err error, deadline time.Duration) error {
	if errors.Is(err, faults.ErrCanceled) {
		return fmt.Errorf("deadline %s expired: team stopped cooperatively at a chunk boundary (typed faults.ErrCanceled): %w",
			deadline, err)
	}
	return err
}

// runStats executes the collapsed nest with every parameter bound to
// -n and prints the telemetry: compile-phase spans, per-thread
// loads, recovery counters and the load-imbalance summary.
func runStats(res *core.Result, prog *cparse.Program, o options,
	tel *telemetry.Registry) error {
	params := map[string]int64{}
	for _, p := range prog.Nest.Params {
		params[p] = o.statsN
	}
	clause := prog.Schedule
	if o.sched != "" {
		clause = o.sched
	}
	sched := parseSchedule(clause)
	ctx, cancel := statsContext(o.deadline)
	defer cancel()
	if sched.Kind == omp.ScheduleAuto {
		return runTunedStats(ctx, res, params, o, tel)
	}
	cs, err := omp.CollapsedForTelemetryCtx(ctx, res, params, o.threads, sched,
		tel, func(tid int, idx []int64) {})
	if err != nil {
		return classifyDeadline(err, o.deadline)
	}
	fmt.Printf("\n=== telemetry (params=%d, threads=%d, schedule %s, %d iterations) ===\n",
		o.statsN, o.threads, sched.Kind, cs.Total)
	fmt.Printf("\nload imbalance:\n%s", cs.ImbalanceReport())
	fmt.Printf("\nrecovery stats (all threads): %s\n", cs.Stats)
	fmt.Printf("\n%s", tel.Report())
	return nil
}

// runTunedStats is the -sched auto form of runStats: the autotuner
// plans (schedule, chunk, workers) by simulation against the measured
// cost model, the run executes under the chosen triple, and the report
// leads with the decision and its predicted-vs-actual makespan.
func runTunedStats(ctx context.Context, res *core.Result, params map[string]int64,
	o options, tel *telemetry.Registry) error {
	tuner := autotune.New(autotune.Options{Registry: tel, MaxWorkers: o.threads})
	run, err := tuner.CollapsedFor(ctx, res, params, func(tid int, idx []int64) {})
	if err != nil {
		return classifyDeadline(err, o.deadline)
	}
	d := run.Plan.Decision
	fmt.Printf("\n=== telemetry (params=%d, schedule auto -> %s, %d iterations) ===\n",
		o.statsN, d, run.Stats.Total)
	fmt.Printf("\nautotune decision: schedule %s, chunk %d, workers %d\n",
		d.Schedule.Kind, d.Schedule.Chunk, d.Workers)
	fmt.Printf("  predicted makespan %.3fms, actual %.3fms\n",
		d.PredictedSec*1e3, run.Actual.Seconds()*1e3)
	fmt.Printf("  plan cached: %v, replanned after run: %v\n", run.Cached, run.Replanned)
	fmt.Printf("\nload imbalance:\n%s", run.Stats.ImbalanceReport())
	fmt.Printf("\nrecovery stats (all threads): %s\n", run.Stats.Stats)
	fmt.Printf("\n%s", tel.Report())
	return nil
}

// runShardedStats is the -shards form of runStats: the collapsed
// pc-range runs under the internal/dist fault-tolerant coordinator —
// leases, retry/split/fallback degradation, optional checkpoint journal
// and -resume — and the report is the recovery ledger plus the
// per-executor imbalance summary instead of per-thread chunk loads.
func runShardedStats(res *core.Result, prog *cparse.Program, o options,
	tel *telemetry.Registry) error {
	params := map[string]int64{}
	for _, p := range prog.Nest.Params {
		params[p] = o.statsN
	}
	ctx, cancel := statsContext(o.deadline)
	defer cancel()
	start := time.Now()
	rep, err := dist.Run(ctx, res, params, dist.Config{
		Workers:       o.threads,
		Shards:        o.shards,
		Journal:       o.journal,
		Resume:        o.resume,
		AllowFallback: true,
		Registry:      tel,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "collapsetool: "+format+"\n", args...)
		},
	}, func(worker int, pc int64, idx []int64) uint64 { return 1 })
	if err != nil {
		if o.journal != "" && errors.Is(err, faults.ErrCanceled) {
			fmt.Fprintf(os.Stderr,
				"collapsetool: run interrupted; progress is checkpointed — re-run with -resume -journal %s to finish the rest\n",
				o.journal)
		}
		return classifyDeadline(err, o.deadline)
	}
	elapsed := time.Since(start)
	fmt.Printf("\n=== sharded telemetry (params=%d, workers=%d, %d shards planned, %d iterations in %s) ===\n",
		o.statsN, o.threads, rep.PlannedShards, rep.Executed+rep.Resumed,
		elapsed.Round(time.Millisecond))
	if rep.Resumed > 0 {
		fmt.Printf("\nresume: %d iterations replayed from %s, %d executed this run\n",
			rep.Resumed, o.journal, rep.Executed)
	}
	if rep.FellBack {
		fmt.Printf("\nrecovery ladder exhausted: run degraded to uncollapsed worksharing\n")
	}
	fmt.Printf("\nrecovery ledger:\n")
	fmt.Printf("  completions        %d\n", rep.Completions)
	fmt.Printf("  duplicates dropped %d\n", rep.Duplicates)
	fmt.Printf("  lease expiries     %d\n", rep.LeaseExpiries)
	fmt.Printf("  speculative runs   %d (wins %d)\n", rep.SpeculativeRuns, rep.SpeculativeWins)
	fmt.Printf("  retries            %d\n", rep.Retries)
	fmt.Printf("  shard splits       %d\n", rep.Splits)
	imb := rep.Imbalance()
	fmt.Printf("\nper-executor imbalance (busy max/mean %.3f, cv %.3f):\n",
		imb.BusyImbalance, imb.BusyCV)
	for _, w := range rep.PerWorker {
		fmt.Printf("  worker %2d: %5d shards %10d iterations %12s busy\n",
			w.Worker, w.Shards, w.Iterations, w.Busy.Round(time.Microsecond))
	}
	fmt.Printf("\n%s", tel.Report())
	return nil
}

// runFallbackStats is the degraded form of runStats: the nest runs
// uncollapsed (outermost loop workshared) because collapsing was
// inapplicable, and the telemetry report records the downgrade.
func runFallbackStats(prog *cparse.Program, o options,
	tel *telemetry.Registry) error {
	params := map[string]int64{}
	for _, p := range prog.Nest.Params {
		params[p] = o.statsN
	}
	sched := parseSchedule(prog.Schedule)
	tel.Counter("omp.downgrades").Inc()
	var iters int64
	perThread := make([]int64, o.threads)
	ctx, cancel := statsContext(o.deadline)
	defer cancel()
	err := omp.UncollapsedFor(ctx, prog.Nest, params, o.threads, sched,
		func(tid int, idx []int64) { perThread[tid]++ })
	if err != nil {
		return classifyDeadline(err, o.deadline)
	}
	for _, c := range perThread {
		iters += c
	}
	tel.Counter("omp.iterations").Add(iters)
	fmt.Printf("\n=== telemetry (uncollapsed fallback, params=%d, threads=%d, schedule %s, %d iterations) ===\n",
		o.statsN, o.threads, sched.Kind, iters)
	fmt.Printf("\nper-thread iterations (outer-loop worksharing):\n")
	for t, c := range perThread {
		fmt.Printf("  thread %d: %d\n", t, c)
	}
	fmt.Printf("\n%s", tel.Report())
	return nil
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
