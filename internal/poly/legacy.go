package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// This file preserves, verbatim in behaviour, the original string-keyed
// map representation of the polynomial ring (fmt.Sprintf monomial keys,
// map[string]int exponent maps, no coefficient fast paths). It is the
// differential-testing oracle for the packed interned representation in
// poly.go: the randomized oracle tests drive both engines through the
// same operation sequences and demand identical results. It is
// deliberately not reachable from the exported API.

// legacyTerm is a single monomial: coeff * prod(var^exp).
type legacyTerm struct {
	coeff *big.Rat
	exps  map[string]int // var name -> exponent (> 0)
}

func legacyMonoKey(exps map[string]int) string {
	if len(exps) == 0 {
		return ""
	}
	names := make([]string, 0, len(exps))
	for v := range exps {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		fmt.Fprintf(&b, "%s^%d", v, exps[v])
	}
	return b.String()
}

func (t *legacyTerm) totalDegree() int {
	d := 0
	for _, p := range t.exps {
		d += p
	}
	return d
}

// legacyPoly is the old Poly: terms keyed by the formatted monomial
// string.
type legacyPoly struct {
	terms map[string]*legacyTerm
}

func legacyZero() *legacyPoly { return &legacyPoly{terms: map[string]*legacyTerm{}} }

func legacyConst(r *big.Rat) *legacyPoly {
	p := legacyZero()
	if r.Sign() != 0 {
		p.terms[""] = &legacyTerm{coeff: new(big.Rat).Set(r), exps: map[string]int{}}
	}
	return p
}

func legacyVarPow(name string, k int) *legacyPoly {
	if k == 0 {
		return legacyConst(big.NewRat(1, 1))
	}
	t := &legacyTerm{coeff: big.NewRat(1, 1), exps: map[string]int{name: k}}
	return &legacyPoly{terms: map[string]*legacyTerm{legacyMonoKey(t.exps): t}}
}

func (p *legacyPoly) clone() *legacyPoly {
	q := legacyZero()
	for k, t := range p.terms {
		e := make(map[string]int, len(t.exps))
		for v, pw := range t.exps {
			e[v] = pw
		}
		q.terms[k] = &legacyTerm{coeff: new(big.Rat).Set(t.coeff), exps: e}
	}
	return q
}

func (p *legacyPoly) addTerm(coeff *big.Rat, exps map[string]int) {
	if coeff.Sign() == 0 {
		return
	}
	k := legacyMonoKey(exps)
	if ex, ok := p.terms[k]; ok {
		ex.coeff.Add(ex.coeff, coeff)
		if ex.coeff.Sign() == 0 {
			delete(p.terms, k)
		}
		return
	}
	e := make(map[string]int, len(exps))
	for v, pw := range exps {
		e[v] = pw
	}
	p.terms[k] = &legacyTerm{coeff: new(big.Rat).Set(coeff), exps: e}
}

func (p *legacyPoly) add(q *legacyPoly) *legacyPoly {
	r := p.clone()
	for _, t := range q.terms {
		r.addTerm(t.coeff, t.exps)
	}
	return r
}

func (p *legacyPoly) sub(q *legacyPoly) *legacyPoly {
	r := p.clone()
	neg := new(big.Rat)
	for _, t := range q.terms {
		neg.Neg(t.coeff)
		r.addTerm(neg, t.exps)
	}
	return r
}

func (p *legacyPoly) mul(q *legacyPoly) *legacyPoly {
	r := legacyZero()
	c := new(big.Rat)
	for _, tp := range p.terms {
		for _, tq := range q.terms {
			c.Mul(tp.coeff, tq.coeff)
			exps := make(map[string]int, len(tp.exps)+len(tq.exps))
			for v, pw := range tp.exps {
				exps[v] = pw
			}
			for v, pw := range tq.exps {
				exps[v] += pw
			}
			r.addTerm(c, exps)
		}
	}
	return r
}

func (p *legacyPoly) subst(v string, sub *legacyPoly) *legacyPoly {
	r := legacyZero()
	pows := map[int]*legacyPoly{0: legacyConst(big.NewRat(1, 1)), 1: sub}
	var powOf func(int) *legacyPoly
	powOf = func(k int) *legacyPoly {
		if q, ok := pows[k]; ok {
			return q
		}
		q := powOf(k - 1).mul(sub)
		pows[k] = q
		return q
	}
	for _, t := range p.terms {
		rest := make(map[string]int, len(t.exps))
		deg := 0
		for name, pw := range t.exps {
			if name == v {
				deg = pw
			} else {
				rest[name] = pw
			}
		}
		partial := legacyZero()
		partial.addTerm(t.coeff, rest)
		if deg > 0 {
			partial = partial.mul(powOf(deg))
		}
		r = r.add(partial)
	}
	return r
}

func (p *legacyPoly) evalRat(env map[string]*big.Rat) (*big.Rat, error) {
	sum := new(big.Rat)
	tp := new(big.Rat)
	for _, t := range p.terms {
		tp.Set(t.coeff)
		for v, pw := range t.exps {
			val, ok := env[v]
			if !ok {
				return nil, fmt.Errorf("poly: variable %q not bound", v)
			}
			for i := 0; i < pw; i++ {
				tp.Mul(tp, val)
			}
		}
		sum.Add(sum, tp)
	}
	return sum, nil
}

// str renders the legacy polynomial with the historical deterministic
// order (descending total degree, then lexicographic monomial key) —
// character-identical to Poly.String for equal polynomials.
func (p *legacyPoly) str() string {
	if len(p.terms) == 0 {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		da, db := p.terms[keys[a]].totalDegree(), p.terms[keys[b]].totalDegree()
		if da != db {
			return da > db
		}
		return keys[a] < keys[b]
	})
	var b strings.Builder
	for i, k := range keys {
		t := p.terms[k]
		c := t.coeff
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		if i == 0 {
			if neg {
				b.WriteByte('-')
			}
		} else {
			if neg {
				b.WriteString(" - ")
			} else {
				b.WriteString(" + ")
			}
		}
		mono := legacyMonoString(t.exps)
		one := abs.Cmp(big.NewRat(1, 1)) == 0
		switch {
		case mono == "":
			b.WriteString(ratString(abs))
		case one:
			b.WriteString(mono)
		default:
			b.WriteString(ratString(abs))
			b.WriteByte('*')
			b.WriteString(mono)
		}
	}
	return b.String()
}

func legacyMonoString(exps map[string]int) string {
	if len(exps) == 0 {
		return ""
	}
	names := make([]string, 0, len(exps))
	for v := range exps {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(v)
		if e := exps[v]; e > 1 {
			fmt.Fprintf(&b, "^%d", e)
		}
	}
	return b.String()
}
