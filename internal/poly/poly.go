// Package poly implements exact multivariate polynomials over the
// rationals. It is the symbolic substrate underneath the Ehrhart ranking
// machinery of the loop collapser: polynomials support ring arithmetic,
// substitution of polynomials for variables, exact rational and
// floating-point evaluation, univariate views (needed by the radical root
// solvers), and a small expression parser used by tests and the CLI
// tools.
//
// Variables are identified by name. A Poly is immutable from the caller's
// point of view: all operations return fresh values.
package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// term is a single monomial: coeff * prod(var^exp).
type term struct {
	coeff *big.Rat
	exps  map[string]int // var name -> exponent (> 0)
}

func (t *term) key() string { return monoKey(t.exps) }

func monoKey(exps map[string]int) string {
	if len(exps) == 0 {
		return ""
	}
	names := make([]string, 0, len(exps))
	for v := range exps {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		fmt.Fprintf(&b, "%s^%d", v, exps[v])
	}
	return b.String()
}

func (t *term) clone() *term {
	e := make(map[string]int, len(t.exps))
	for v, p := range t.exps {
		e[v] = p
	}
	return &term{coeff: new(big.Rat).Set(t.coeff), exps: e}
}

func (t *term) totalDegree() int {
	d := 0
	for _, p := range t.exps {
		d += p
	}
	return d
}

// Poly is a multivariate polynomial with exact rational coefficients.
// The zero value is not usable; construct values with Zero, One, Const,
// Int, Var, VarPow or Parse.
type Poly struct {
	terms map[string]*term
}

// Zero returns the zero polynomial.
func Zero() *Poly { return &Poly{terms: map[string]*term{}} }

// One returns the constant polynomial 1.
func One() *Poly { return Int(1) }

// Int returns the constant polynomial n.
func Int(n int64) *Poly { return Const(new(big.Rat).SetInt64(n)) }

// Rat returns the constant polynomial num/den.
func Rat(num, den int64) *Poly { return Const(big.NewRat(num, den)) }

// Const returns the constant polynomial with value r.
func Const(r *big.Rat) *Poly {
	p := Zero()
	if r.Sign() != 0 {
		p.terms[""] = &term{coeff: new(big.Rat).Set(r), exps: map[string]int{}}
	}
	return p
}

// Var returns the polynomial consisting of the single variable name.
func Var(name string) *Poly { return VarPow(name, 1) }

// VarPow returns the polynomial name^k (k >= 0).
func VarPow(name string, k int) *Poly {
	if name == "" {
		panic("poly: empty variable name")
	}
	if k < 0 {
		panic("poly: negative exponent")
	}
	if k == 0 {
		return One()
	}
	t := &term{coeff: big.NewRat(1, 1), exps: map[string]int{name: k}}
	return &Poly{terms: map[string]*term{t.key(): t}}
}

func (p *Poly) clone() *Poly {
	q := Zero()
	for k, t := range p.terms {
		q.terms[k] = t.clone()
	}
	return q
}

// addTerm adds coeff*mono into p in place, dropping the monomial if the
// resulting coefficient is zero.
func (p *Poly) addTerm(coeff *big.Rat, exps map[string]int) {
	if coeff.Sign() == 0 {
		return
	}
	k := monoKey(exps)
	if ex, ok := p.terms[k]; ok {
		ex.coeff.Add(ex.coeff, coeff)
		if ex.coeff.Sign() == 0 {
			delete(p.terms, k)
		}
		return
	}
	e := make(map[string]int, len(exps))
	for v, pw := range exps {
		e[v] = pw
	}
	p.terms[k] = &term{coeff: new(big.Rat).Set(coeff), exps: e}
}

// Add returns p + q.
func (p *Poly) Add(q *Poly) *Poly {
	r := p.clone()
	for _, t := range q.terms {
		r.addTerm(t.coeff, t.exps)
	}
	return r
}

// Sub returns p - q.
func (p *Poly) Sub(q *Poly) *Poly {
	r := p.clone()
	neg := new(big.Rat)
	for _, t := range q.terms {
		neg.Neg(t.coeff)
		r.addTerm(neg, t.exps)
	}
	return r
}

// Neg returns -p.
func (p *Poly) Neg() *Poly { return Zero().Sub(p) }

// Scale returns r * p.
func (p *Poly) Scale(r *big.Rat) *Poly {
	q := Zero()
	if r.Sign() == 0 {
		return q
	}
	c := new(big.Rat)
	for _, t := range p.terms {
		c.Mul(t.coeff, r)
		q.addTerm(c, t.exps)
	}
	return q
}

// ScaleInt returns n * p.
func (p *Poly) ScaleInt(n int64) *Poly { return p.Scale(new(big.Rat).SetInt64(n)) }

// Mul returns p * q.
func (p *Poly) Mul(q *Poly) *Poly {
	r := Zero()
	c := new(big.Rat)
	for _, tp := range p.terms {
		for _, tq := range q.terms {
			c.Mul(tp.coeff, tq.coeff)
			exps := make(map[string]int, len(tp.exps)+len(tq.exps))
			for v, pw := range tp.exps {
				exps[v] = pw
			}
			for v, pw := range tq.exps {
				exps[v] += pw
			}
			r.addTerm(c, exps)
		}
	}
	return r
}

// PowInt returns p raised to the non-negative integer power k.
func (p *Poly) PowInt(k int) *Poly {
	if k < 0 {
		panic("poly: negative exponent")
	}
	result := One()
	base := p
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// Subst returns the polynomial obtained by substituting polynomial sub
// for every occurrence of variable v in p.
func (p *Poly) Subst(v string, sub *Poly) *Poly {
	r := Zero()
	// Cache powers of sub, since several terms often share exponents.
	pows := map[int]*Poly{0: One(), 1: sub}
	var powOf func(int) *Poly
	powOf = func(k int) *Poly {
		if q, ok := pows[k]; ok {
			return q
		}
		q := powOf(k - 1).Mul(sub)
		pows[k] = q
		return q
	}
	for _, t := range p.terms {
		rest := make(map[string]int, len(t.exps))
		deg := 0
		for name, pw := range t.exps {
			if name == v {
				deg = pw
			} else {
				rest[name] = pw
			}
		}
		partial := &Poly{terms: map[string]*term{}}
		partial.addTerm(t.coeff, rest)
		if deg > 0 {
			partial = partial.Mul(powOf(deg))
		}
		r = r.Add(partial)
	}
	return r
}

// SubstAll substitutes several variables simultaneously: all
// substitutions see the original p, so {"x": y, "y": x} swaps x and y.
func (p *Poly) SubstAll(subs map[string]*Poly) *Poly {
	if len(subs) == 0 {
		return p.clone()
	}
	// Rename each substituted variable to a fresh temporary first so that
	// sequential substitution becomes simultaneous.
	tmp := p.clone()
	names := make([]string, 0, len(subs))
	for v := range subs {
		names = append(names, v)
	}
	sort.Strings(names)
	for i, v := range names {
		tmp = tmp.Subst(v, Var(fmt.Sprintf("\x00tmp%d", i)))
	}
	for i, v := range names {
		tmp = tmp.Subst(fmt.Sprintf("\x00tmp%d", i), subs[v])
	}
	return tmp
}

// EvalRat evaluates p at the given rational assignment. Every variable of
// p must be present in env.
func (p *Poly) EvalRat(env map[string]*big.Rat) (*big.Rat, error) {
	sum := new(big.Rat)
	tp := new(big.Rat)
	for _, t := range p.terms {
		tp.Set(t.coeff)
		for v, pw := range t.exps {
			val, ok := env[v]
			if !ok {
				return nil, fmt.Errorf("poly: variable %q not bound", v)
			}
			for i := 0; i < pw; i++ {
				tp.Mul(tp, val)
			}
		}
		sum.Add(sum, tp)
	}
	return sum, nil
}

// EvalInt64 evaluates p at an integer assignment, returning the exact
// rational value.
func (p *Poly) EvalInt64(env map[string]int64) (*big.Rat, error) {
	renv := make(map[string]*big.Rat, len(env))
	for k, v := range env {
		renv[k] = new(big.Rat).SetInt64(v)
	}
	return p.EvalRat(renv)
}

// EvalFloat evaluates p at a float64 assignment. Missing variables are an
// error.
func (p *Poly) EvalFloat(env map[string]float64) (float64, error) {
	sum := 0.0
	for _, t := range p.terms {
		tp, _ := t.coeff.Float64()
		for v, pw := range t.exps {
			val, ok := env[v]
			if !ok {
				return 0, fmt.Errorf("poly: variable %q not bound", v)
			}
			for i := 0; i < pw; i++ {
				tp *= val
			}
		}
		sum += tp
	}
	return sum, nil
}

// IsZero reports whether p is the zero polynomial.
func (p *Poly) IsZero() bool { return len(p.terms) == 0 }

// IsConst reports whether p is a constant (possibly zero).
func (p *Poly) IsConst() bool {
	if len(p.terms) == 0 {
		return true
	}
	_, ok := p.terms[""]
	return ok && len(p.terms) == 1
}

// ConstValue returns the value of a constant polynomial.
// It panics if p is not constant.
func (p *Poly) ConstValue() *big.Rat {
	if !p.IsConst() {
		panic("poly: ConstValue of non-constant polynomial")
	}
	if t, ok := p.terms[""]; ok {
		return new(big.Rat).Set(t.coeff)
	}
	return new(big.Rat)
}

// Equal reports whether p and q are identical polynomials.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		u, ok := q.terms[k]
		if !ok || t.coeff.Cmp(u.coeff) != 0 {
			return false
		}
	}
	return true
}

// Vars returns the sorted list of variables occurring in p.
func (p *Poly) Vars() []string {
	set := map[string]bool{}
	for _, t := range p.terms {
		for v := range t.exps {
			set[v] = true
		}
	}
	names := make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

// HasVar reports whether variable v occurs in p.
func (p *Poly) HasVar(v string) bool { return p.DegreeIn(v) > 0 }

// DegreeIn returns the degree of p in variable v (0 if absent; 0 for the
// zero polynomial).
func (p *Poly) DegreeIn(v string) int {
	d := 0
	for _, t := range p.terms {
		if pw := t.exps[v]; pw > d {
			d = pw
		}
	}
	return d
}

// MaxVarDegree returns the largest exponent any single variable reaches
// in any monomial of p. This implements the paper's §IV.B degree check.
func (p *Poly) MaxVarDegree() int {
	d := 0
	for _, t := range p.terms {
		for _, pw := range t.exps {
			if pw > d {
				d = pw
			}
		}
	}
	return d
}

// TotalDegree returns the total degree of p (0 for constants and zero).
func (p *Poly) TotalDegree() int {
	d := 0
	for _, t := range p.terms {
		if td := t.totalDegree(); td > d {
			d = td
		}
	}
	return d
}

// UnivariateIn views p as a univariate polynomial in v and returns its
// coefficients, lowest power first. The returned polynomials do not
// contain v. The slice has length DegreeIn(v)+1 (length 1 for the zero
// polynomial).
func (p *Poly) UnivariateIn(v string) []*Poly {
	deg := p.DegreeIn(v)
	coeffs := make([]*Poly, deg+1)
	for i := range coeffs {
		coeffs[i] = Zero()
	}
	for _, t := range p.terms {
		pw := t.exps[v]
		rest := make(map[string]int, len(t.exps))
		for name, e := range t.exps {
			if name != v {
				rest[name] = e
			}
		}
		coeffs[pw].addTerm(t.coeff, rest)
	}
	return coeffs
}

// Derivative returns dp/dv.
func (p *Poly) Derivative(v string) *Poly {
	r := Zero()
	c := new(big.Rat)
	for _, t := range p.terms {
		pw := t.exps[v]
		if pw == 0 {
			continue
		}
		c.Mul(t.coeff, new(big.Rat).SetInt64(int64(pw)))
		exps := make(map[string]int, len(t.exps))
		for name, e := range t.exps {
			exps[name] = e
		}
		if pw == 1 {
			delete(exps, v)
		} else {
			exps[v] = pw - 1
		}
		r.addTerm(c, exps)
	}
	return r
}

// CommonDenominator returns the least common multiple of the coefficient
// denominators (1 for the zero polynomial). p scaled by this value has
// integer coefficients.
func (p *Poly) CommonDenominator() *big.Int {
	l := big.NewInt(1)
	for _, t := range p.terms {
		d := t.coeff.Denom()
		g := new(big.Int).GCD(nil, nil, l, d)
		l = new(big.Int).Mul(l, new(big.Int).Div(d, g))
	}
	return l
}

// CoeffOf returns the coefficient of the monomial described by exps
// (variable -> exponent; exponents of 0 may be omitted).
func (p *Poly) CoeffOf(exps map[string]int) *big.Rat {
	norm := make(map[string]int, len(exps))
	for v, e := range exps {
		if e > 0 {
			norm[v] = e
		}
	}
	if t, ok := p.terms[monoKey(norm)]; ok {
		return new(big.Rat).Set(t.coeff)
	}
	return new(big.Rat)
}

// TermVar is one variable factor of an exported monomial view.
type TermVar struct {
	Name string
	Pow  int
}

// Term is an exported view of one monomial of a polynomial.
type Term struct {
	Coeff *big.Rat  // never zero
	Vars  []TermVar // sorted by variable name; empty for the constant term
}

// Terms returns the monomials of p in the same deterministic order used
// by String: descending total degree, then lexicographic monomial key.
func (p *Poly) Terms() []Term {
	keys := p.sortedKeys()
	out := make([]Term, 0, len(keys))
	for _, k := range keys {
		t := p.terms[k]
		term := Term{Coeff: new(big.Rat).Set(t.coeff)}
		names := make([]string, 0, len(t.exps))
		for v := range t.exps {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			term.Vars = append(term.Vars, TermVar{Name: v, Pow: t.exps[v]})
		}
		out = append(out, term)
	}
	return out
}

func (p *Poly) sortedKeys() []string {
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		da, db := p.terms[keys[a]].totalDegree(), p.terms[keys[b]].totalDegree()
		if da != db {
			return da > db
		}
		return keys[a] < keys[b]
	})
	return keys
}

// String renders p deterministically: monomials sorted by descending
// total degree, then lexicographically by monomial key.
func (p *Poly) String() string {
	if len(p.terms) == 0 {
		return "0"
	}
	keys := p.sortedKeys()
	var b strings.Builder
	for i, k := range keys {
		t := p.terms[k]
		c := t.coeff
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		if i == 0 {
			if neg {
				b.WriteByte('-')
			}
		} else {
			if neg {
				b.WriteString(" - ")
			} else {
				b.WriteString(" + ")
			}
		}
		mono := monoString(t.exps)
		one := abs.Cmp(big.NewRat(1, 1)) == 0
		switch {
		case mono == "":
			b.WriteString(ratString(abs))
		case one:
			b.WriteString(mono)
		default:
			b.WriteString(ratString(abs))
			b.WriteByte('*')
			b.WriteString(mono)
		}
	}
	return b.String()
}

func monoString(exps map[string]int) string {
	if len(exps) == 0 {
		return ""
	}
	names := make([]string, 0, len(exps))
	for v := range exps {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(v)
		if e := exps[v]; e > 1 {
			fmt.Fprintf(&b, "^%d", e)
		}
	}
	return b.String()
}

func ratString(r *big.Rat) string {
	if r.IsInt() {
		return r.Num().String()
	}
	return "(" + r.String() + ")"
}
