package roots

import (
	"fmt"
	"math/cmplx"
)

// EvalFunc evaluates a compiled expression at a positional point.
type EvalFunc func(vals []float64) complex128

// Compile translates an expression tree into a closure evaluating it
// with variable values supplied positionally in the given order. This is
// the hot-path form used by the unranker: it avoids the per-call map
// lookups of Expr.Eval (which remains available for tool-time root
// selection and tests).
func Compile(e Expr, vars []string) (EvalFunc, error) {
	switch v := e.(type) {
	case Num:
		f, _ := v.Val.Float64()
		c := complex(f, 0)
		return func([]float64) complex128 { return c }, nil
	case PolyExpr:
		comp, err := v.P.Compile(vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 {
			return complex(comp.EvalFloat(vals), 0)
		}, nil
	case Add:
		a, err := Compile(v.A, vars)
		if err != nil {
			return nil, err
		}
		b, err := Compile(v.B, vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 { return a(vals) + b(vals) }, nil
	case Sub:
		a, err := Compile(v.A, vars)
		if err != nil {
			return nil, err
		}
		b, err := Compile(v.B, vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 { return a(vals) - b(vals) }, nil
	case Mul:
		a, err := Compile(v.A, vars)
		if err != nil {
			return nil, err
		}
		b, err := Compile(v.B, vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 { return a(vals) * b(vals) }, nil
	case Div:
		a, err := Compile(v.A, vars)
		if err != nil {
			return nil, err
		}
		b, err := Compile(v.B, vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 { return a(vals) / b(vals) }, nil
	case Neg:
		a, err := Compile(v.A, vars)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) complex128 { return -a(vals) }, nil
	case Pow:
		base, err := Compile(v.Base, vars)
		if err != nil {
			return nil, err
		}
		switch {
		case v.Den == 1 && v.Num >= 0:
			n := v.Num
			return func(vals []float64) complex128 {
				b := base(vals)
				r := complex(1, 0)
				for i := 0; i < n; i++ {
					r *= b
				}
				return r
			}, nil
		case v.Den == 1:
			n := -v.Num
			return func(vals []float64) complex128 {
				b := base(vals)
				r := complex(1, 0)
				for i := 0; i < n; i++ {
					r *= b
				}
				return 1 / r
			}, nil
		case v.Num == 1 && v.Den == 2:
			return func(vals []float64) complex128 { return cmplx.Sqrt(base(vals)) }, nil
		default:
			exp := complex(float64(v.Num)/float64(v.Den), 0)
			return func(vals []float64) complex128 { return cmplx.Pow(base(vals), exp) }, nil
		}
	}
	return nil, fmt.Errorf("roots: cannot compile expression of type %T", e)
}

// MustCompile is Compile but panics on error.
func MustCompile(e Expr, vars []string) EvalFunc {
	f, err := Compile(e, vars)
	if err != nil {
		panic(err)
	}
	return f
}
