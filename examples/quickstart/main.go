// Quickstart: collapse a triangular loop nest and run it on a goroutine
// team with a perfectly balanced static schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	nonrect "repro"
)

func main() {
	// The triangular nest of the paper's motivating example (Fig. 1):
	//
	//	for (i = 0; i < N-1; i++)
	//	  for (j = i+1; j < N; j++)
	//	    ... independent work on (i, j) ...
	n := nonrect.MustNewNest([]string{"N"},
		nonrect.L("i", "0", "N-1"),
		nonrect.L("j", "i+1", "N"),
	)

	// Collapse both loops: compute the ranking polynomial and its
	// symbolic inverse.
	res, err := nonrect.Collapse(n, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ranking polynomial:  r(i,j) =", res.Ranking)
	fmt.Println("total iterations:    ", res.Total)

	// Run the collapsed loop: every goroutine receives one contiguous,
	// equally sized chunk of ranks; original indices are recovered once
	// per chunk and then advanced by cheap incrementation (§V).
	params := map[string]int64{"N": 2000}
	var sum atomic.Int64
	err = nonrect.CollapsedFor(res, params, 8,
		nonrect.Schedule{Kind: nonrect.Static},
		func(tid int, idx []int64) {
			i, j := idx[0], idx[1]
			sum.Add(i*3 + j)
		})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential nest.
	var want int64
	N := params["N"]
	for i := int64(0); i < N-1; i++ {
		for j := i + 1; j < N; j++ {
			want += i*3 + j
		}
	}
	fmt.Printf("parallel sum = %d, sequential sum = %d, match = %v\n",
		sum.Load(), want, sum.Load() == want)

	// Exact rank/unrank queries are available on the bound unranker.
	b, err := res.Unranker.Bind(params)
	if err != nil {
		log.Fatal(err)
	}
	idx := make([]int64, 2)
	if err := b.Unrank(b.Total()/2, idx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration at the midpoint rank %d: (i=%d, j=%d), rank back = %d\n",
		b.Total()/2, idx[0], idx[1], b.Rank(idx))
}
