package serve

import (
	"testing"
	"time"
)

// fakeClock is an injectable now() for bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func fixedRnd(r float64) func() float64      { return func() float64 { return r } }
func testBucket(rate, burst float64, clk *fakeClock, r float64) *tokenBucket {
	b := newTokenBucket(rate, burst)
	b.now = clk.now
	b.last = clk.now()
	b.rnd = fixedRnd(r)
	return b
}

func TestBucketAdmitsBurstThenRejects(t *testing.T) {
	clk := newFakeClock()
	b := testBucket(10, 3, clk, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("take %d rejected within burst", i)
		}
	}
	ok, retry := b.take()
	if ok {
		t.Fatalf("take beyond burst admitted")
	}
	// Empty bucket at rate 10/s: one token accrues in 100ms; with zero
	// jitter the hint is exactly the base wait.
	if want := 100 * time.Millisecond; retry != want {
		t.Fatalf("retry hint = %v, want %v", retry, want)
	}
}

func TestBucketRefillReadmits(t *testing.T) {
	clk := newFakeClock()
	b := testBucket(10, 1, clk, 0)
	if ok, _ := b.take(); !ok {
		t.Fatalf("initial take rejected")
	}
	if ok, _ := b.take(); ok {
		t.Fatalf("empty bucket admitted")
	}
	clk.advance(100 * time.Millisecond) // exactly one token at 10/s
	if ok, _ := b.take(); !ok {
		t.Fatalf("refilled bucket rejected")
	}
}

func TestBucketDisabledRateAdmitsEverything(t *testing.T) {
	b := newTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.take(); !ok {
			t.Fatalf("disabled bucket rejected take %d", i)
		}
	}
}

// TestRetryAfterHintMath pins the header math: base wait is the deficit
// refill time (1-tokens)/rate, stretched by the jitter factor
// (1 + jitterFrac*r), floored at 1ms.
func TestRetryAfterHintMath(t *testing.T) {
	cases := []struct {
		tokens, rate, r float64
		want            time.Duration
	}{
		// Empty bucket, 10/s, no jitter: 100ms flat.
		{0, 10, 0, 100 * time.Millisecond},
		// Max jitter draw stretches by 1+jitterFrac = 1.25.
		{0, 10, 1, 125 * time.Millisecond},
		// Half a token already accrued: half the base wait.
		{0.5, 10, 0, 50 * time.Millisecond},
		// Mid jitter: 50ms * 1.125.
		{0.5, 10, 0.5, time.Duration(56.25 * float64(time.Millisecond))},
		// Very fast refill floors at 1ms — never tell clients "now".
		{0.999, 100000, 0, time.Millisecond},
		// Defensive: a (numerically) overfull bucket still floors at 1ms
		// rather than going negative.
		{1.5, 10, 1, time.Millisecond},
	}
	for _, c := range cases {
		got := retryAfterHint(c.tokens, c.rate, c.r)
		if got != c.want {
			t.Errorf("retryAfterHint(%v, %v, %v) = %v, want %v",
				c.tokens, c.rate, c.r, got, c.want)
		}
	}
}

// TestRetryAfterHintJitterDecorrelates checks the jitter range property
// the thundering-herd defence relies on: across the full r range hints
// spread over [base, base*1.25) instead of landing on one instant.
func TestRetryAfterHintJitterDecorrelates(t *testing.T) {
	base := 100 * time.Millisecond
	lo := retryAfterHint(0, 10, 0)
	hi := retryAfterHint(0, 10, 0.999999)
	if lo != base {
		t.Fatalf("zero-jitter hint = %v, want %v", lo, base)
	}
	if hi <= lo || hi >= time.Duration(1.25*float64(base))+time.Millisecond {
		t.Fatalf("max-jitter hint %v outside (%v, %v)", hi, lo, time.Duration(1.25*float64(base)))
	}
}

// TestRetryAfterHeaderFormat pins the wire format end to end: the header
// renders fractional seconds at millisecond resolution and the client
// parser inverts it.
func TestRetryAfterHeaderFormat(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{42 * time.Millisecond, "0.042"},
		{100 * time.Millisecond, "0.100"},
		{1500 * time.Millisecond, "1.500"},
		{time.Millisecond, "0.001"},
	}
	for _, c := range cases {
		got := formatRetryAfter(c.d)
		if got != c.want {
			t.Errorf("formatRetryAfter(%v) = %q, want %q", c.d, got, c.want)
		}
		if back := ParseRetryAfter(got); back != c.d {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", got, back, c.d)
		}
	}
	// The RFC's integer form parses too; garbage yields zero.
	if d := ParseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("ParseRetryAfter(\"3\") = %v, want 3s", d)
	}
	for _, bad := range []string{"", "soon", "-1"} {
		if d := ParseRetryAfter(bad); d != 0 {
			t.Errorf("ParseRetryAfter(%q) = %v, want 0", bad, d)
		}
	}
}
