package omp

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// Live progress instrumentation: per-worker gauges updated at chunk
// boundaries so a mid-run scrape of the registry (the obs plane's
// /metrics endpoint) shows imbalance as it happens rather than in a
// post-hoc report. Metric names embed the worker id and the executing
// schedule as Prometheus labels
// ("omp.worker_chunks{tid=\"3\",sched=\"guided\"}"); the OpenMetrics
// exporter splits name and label set apart, so the per-worker series
// group into one family, and the schedule label makes an autotuned
// run's chosen schedule visible on /metrics and /snapshot.
//
// All updates are atomic stores/adds on pre-fetched handles — no map
// lookups, no allocations on the chunk path — and the whole layer is
// skipped when telemetry is disabled (newLiveTeam returns nil, every
// method is a nil-safe no-op).
type liveTeam struct {
	teamSize *telemetry.Gauge
	chunks   []*telemetry.Counter // chunks completed, per worker
	iters    []*telemetry.Counter // iterations completed, per worker
	// inflight holds the monotonic trace offset (ns) at which the
	// worker's current chunk started, 0 when idle: a scraper derives the
	// in-flight chunk age as scrape_now_ns - inflight_since_ns.
	inflight []*telemetry.Gauge
	unrank   *unrankCounters
}

// newLiveTeam pre-fetches the per-worker metric handles (nil when
// telemetry is off). sched is the executing schedule's clause spelling,
// attached as a label so scrapes can attribute the series — and, for
// autotuned runs, see which schedule the planner chose.
func newLiveTeam(tel *telemetry.Registry, threads int, sched Kind) *liveTeam {
	if tel == nil {
		return nil
	}
	l := &liveTeam{
		teamSize: tel.Gauge("omp.team_size"),
		chunks:   make([]*telemetry.Counter, threads),
		iters:    make([]*telemetry.Counter, threads),
		inflight: make([]*telemetry.Gauge, threads),
		unrank:   newUnrankCounters(tel),
	}
	for t := 0; t < threads; t++ {
		tid := fmt.Sprint(t)
		l.chunks[t] = tel.Counter(fmt.Sprintf("omp.worker_chunks{tid=%q,sched=%q}", tid, sched))
		l.iters[t] = tel.Counter(fmt.Sprintf("omp.worker_iterations{tid=%q,sched=%q}", tid, sched))
		l.inflight[t] = tel.Gauge(fmt.Sprintf("omp.worker_inflight_since_ns{tid=%q,sched=%q}", tid, sched))
	}
	l.teamSize.Set(int64(threads))
	return l
}

// chunkStart marks the worker as in-flight since the given monotonic
// trace offset.
func (l *liveTeam) chunkStart(tid int, since time.Duration) {
	if l == nil {
		return
	}
	l.inflight[tid].Set(since.Nanoseconds())
}

// chunkEnd publishes the completed chunk: progress counters advance,
// the in-flight marker clears, and the worker's unranker counter deltas
// accumulated during the chunk land on the registry.
func (l *liveTeam) chunkEnd(tid int, iters int64, delta unrank.Stats) {
	if l == nil {
		return
	}
	l.chunks[tid].Inc()
	l.iters[tid].Add(iters)
	l.inflight[tid].Set(0)
	l.unrank.publish(delta)
}

// publishRemainder adds the end-of-run remainder delta (stats accrued
// outside chunk boundaries, e.g. during Bind) to the counters.
func (l *liveTeam) publishRemainder(d unrank.Stats) {
	if l == nil {
		return
	}
	l.unrank.publish(d)
}

// unrankCounters holds pre-fetched handles for the recovery counters so
// per-chunk publication costs only atomic adds.
type unrankCounters struct {
	rootEvals, corrections, fallbacks, searches *telemetry.Counter
	verifies, escalations                       *telemetry.Counter
	prec128, prec256, bigint                    *telemetry.Counter
	tableLookups, tableCorrections, batches     *telemetry.Counter
}

func newUnrankCounters(tel *telemetry.Registry) *unrankCounters {
	if tel == nil {
		return nil
	}
	return &unrankCounters{
		rootEvals:   tel.Counter("unrank.root_evals"),
		corrections: tel.Counter("unrank.corrections"),
		fallbacks:   tel.Counter("unrank.fallbacks"),
		searches:    tel.Counter("unrank.searches"),
		verifies:    tel.Counter("unrank.verifies"),
		escalations: tel.Counter("unrank.verify_escalations"),
		prec128:     tel.Counter("unrank.escalations_prec128"),
		prec256:     tel.Counter("unrank.escalations_prec256"),
		bigint:      tel.Counter("unrank.bigint_paths"),

		tableLookups:     tel.Counter("unrank.table_lookups"),
		tableCorrections: tel.Counter("unrank.table_corrections"),
		batches:          tel.Counter("unrank.batch_recoveries"),
	}
}

// publish adds a stats delta to the counters (no-op on nil receiver or
// an all-zero delta).
func (u *unrankCounters) publish(d unrank.Stats) {
	if u == nil {
		return
	}
	u.rootEvals.Add(d.RootEvals)
	u.corrections.Add(d.Corrections)
	u.fallbacks.Add(d.Fallbacks)
	u.searches.Add(d.Searches)
	u.verifies.Add(d.Verifies)
	u.escalations.Add(d.Escalations)
	u.prec128.Add(d.EscalationsPrec128)
	u.prec256.Add(d.EscalationsPrec256)
	u.bigint.Add(d.BigIntPaths)
	u.tableLookups.Add(d.TableLookups)
	u.tableCorrections.Add(d.TableCorrections)
	u.batches.Add(d.BatchRecoveries)
}
