package telemetry

import (
	"io"
	"sync"
)

// maxFlightArgs is the per-slot annotation capacity of the flight
// recorder. Slots hold their args in a fixed backing array so the
// record path never allocates; events carrying more args than this are
// recorded with the first maxFlightArgs (chunk events today carry 5).
const maxFlightArgs = 8

// flightSlot is one preallocated ring entry. The Event's Args slice
// aliases the slot's backing array, so overwriting a slot recycles its
// storage instead of allocating.
type flightSlot struct {
	ev   Event
	args [maxFlightArgs]Arg
}

// FlightRecorder is a bounded ring buffer continuously retaining the
// last K completed spans/chunk events — the "black box" of a
// long-running process. Unlike the Trace's unbounded event slice, its
// memory is fixed at creation and the record path performs zero
// allocations, so it can stay enabled for the whole lifetime of a
// server at negligible steady-state cost. Events land in the ring at
// chunk/span granularity (never per iteration), and the retained
// window — "the last few seconds" of activity — exports as a Chrome
// trace on demand.
type FlightRecorder struct {
	mu    sync.Mutex
	slots []flightSlot
	next  int    // next slot to overwrite
	total uint64 // events ever recorded (for drop accounting)
}

// NewFlightRecorder creates a recorder retaining the last k events
// (k < 1 is clamped to 1). All memory is allocated up front.
func NewFlightRecorder(k int) *FlightRecorder {
	if k < 1 {
		k = 1
	}
	return &FlightRecorder{slots: make([]flightSlot, k)}
}

// Record stores ev in the ring, overwriting the oldest entry when
// full. The event's args are copied into the slot's fixed backing
// array; the path allocates nothing. No-op on a nil receiver.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	s := &f.slots[f.next]
	n := copy(s.args[:], ev.Args)
	s.ev = ev
	s.ev.Args = s.args[:n]
	f.next++
	if f.next == len(f.slots) {
		f.next = 0
	}
	f.total++
	f.mu.Unlock()
}

// Cap returns the ring capacity (0 on nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Total returns the number of events ever recorded, including those
// already overwritten (0 on nil).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Events returns a copy of the retained events in record order (oldest
// first). Args slices are deep-copied so the caller's view survives
// later overwrites.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.slots)
	if f.total < uint64(n) {
		n = int(f.total)
	}
	out := make([]Event, 0, n)
	start := f.next - n
	if start < 0 {
		start += len(f.slots)
	}
	for i := 0; i < n; i++ {
		s := &f.slots[(start+i)%len(f.slots)]
		ev := s.ev
		ev.Args = append([]Arg(nil), ev.Args...)
		out = append(out, ev)
	}
	return out
}

// WriteChromeTrace exports the retained window in the Chrome
// trace-event format (same shape as Trace.WriteChromeTrace), viewable
// in about:tracing / Perfetto.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	t := &Trace{events: f.Events()}
	return t.WriteChromeTrace(w)
}

// AttachFlight tees every event added to the trace into f (pass nil to
// detach). When retain is false the trace additionally stops appending
// to its unbounded event slice — flight-only mode, the right retention
// policy for a long-running server where the ring is the only consumer
// of the timeline. No-op on a nil trace.
func (t *Trace) AttachFlight(f *FlightRecorder, retain bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flight = f
	t.ringOnly = f != nil && !retain
	t.mu.Unlock()
}

// Flight returns the trace's attached flight recorder (nil when none).
func (t *Trace) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flight
}

// EnableFlight attaches a fresh k-event flight recorder to the
// registry's trace and returns it. When retain is false the trace
// keeps only the ring (no unbounded span slice) — the configuration a
// long-running -serve process wants. Nil-safe (returns nil).
func (r *Registry) EnableFlight(k int, retain bool) *FlightRecorder {
	if r == nil {
		return nil
	}
	f := NewFlightRecorder(k)
	r.trace.AttachFlight(f, retain)
	return f
}

// Flight returns the registry's flight recorder (nil when none or when
// the registry is nil).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.trace.Flight()
}
