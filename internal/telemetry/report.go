package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(bounds)+1; last is +Inf
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, JSON-serialisable view of a registry's metric
// values. Map keys are metric names; encoding/json sorts map keys, so
// the serialised form is deterministic for deterministic values (trace
// events, whose timestamps are inherently nondeterministic, are
// exported separately via WriteChromeTrace).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      int                          `json:"spans"`
}

// Snapshot freezes the current metric values. A nil registry yields the
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	s.Spans = r.trace.Len()
	return s
}

// MarshalJSON serialises the snapshot of the registry (deterministic
// key order).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// spanAgg aggregates all events sharing a cat/name pair.
type spanAgg struct {
	cat, name string
	count     int64
	total     time.Duration
	min, max  time.Duration
}

// Report renders a human-readable summary: spans aggregated by
// category/name (count, total, min, max), then counters, gauges and
// histograms, each sorted by name. Empty sections are omitted; a nil
// registry reports "telemetry disabled".
func (r *Registry) Report() string {
	if r == nil {
		return "telemetry disabled\n"
	}
	var b strings.Builder
	events := r.trace.Events()
	if len(events) > 0 {
		aggs := map[string]*spanAgg{}
		for _, ev := range events {
			key := ev.Cat + "\x00" + ev.Name
			a, ok := aggs[key]
			if !ok {
				a = &spanAgg{cat: ev.Cat, name: ev.Name, min: ev.Dur, max: ev.Dur}
				aggs[key] = a
			}
			a.count++
			a.total += ev.Dur
			if ev.Dur < a.min {
				a.min = ev.Dur
			}
			if ev.Dur > a.max {
				a.max = ev.Dur
			}
		}
		keys := make([]string, 0, len(aggs))
		for k := range aggs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "spans (%d events):\n", len(events))
		fmt.Fprintf(&b, "  %-34s %8s %12s %12s %12s\n", "cat/name", "count", "total", "min", "max")
		for _, k := range keys {
			a := aggs[k]
			fmt.Fprintf(&b, "  %-34s %8d %12s %12s %12s\n",
				a.cat+"/"+a.name, a.count, fmtDur(a.total), fmtDur(a.min), fmtDur(a.max))
		}
	}
	snap := r.Snapshot()
	writeKV := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:\n", title)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-34s %12d\n", k, m[k])
		}
	}
	writeKV("counters", snap.Counters)
	writeKV("gauges", snap.Gauges)
	if len(snap.Histograms) > 0 {
		keys := make([]string, 0, len(snap.Histograms))
		for k := range snap.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "histograms:\n")
		for _, k := range keys {
			h := snap.Histograms[k]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			qs := h.Quantiles(DefQuantiles...)
			fmt.Fprintf(&b, "  %-34s count %-10d sum %-12.6g mean %.6g p50 %.3g p95 %.3g p99 %.3g\n",
				k, h.Count, h.Sum, mean, qs[0], qs[1], qs[2])
		}
	}
	if b.Len() == 0 {
		return "no telemetry recorded\n"
	}
	return b.String()
}

func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// ThreadLoad is the per-thread row of an imbalance report.
type ThreadLoad struct {
	TID        int
	Chunks     int64
	Iterations int64
	Busy       time.Duration // total time inside chunk bodies
	Recovery   time.Duration // time spent in closed-form/binary-search recovery
	Increment  time.Duration // time spent in lexicographic incrementation
}

// ImbalanceReport summarises how evenly work was spread over a thread
// team — the quantity behind the paper's Figs. 10–13 argument that
// collapsing yields perfectly balanced static schedules.
type ImbalanceReport struct {
	Threads []ThreadLoad

	MaxBusy  time.Duration
	MeanBusy time.Duration
	// BusyCV is the coefficient of variation (stddev/mean) of the
	// per-thread busy times; 0 means perfect time balance.
	BusyCV float64
	// BusyImbalance is max/mean of the busy times (λ of load-balance
	// literature); 1 means perfect balance.
	BusyImbalance float64

	MaxIter  int64
	MeanIter float64
	// IterCV and IterImbalance are the same statistics over per-thread
	// iteration counts — deterministic for static schedules, which is
	// what the integration tests assert on.
	IterCV         float64
	IterImbalance  float64
	TotalIter      int64
	TotalRecovery  time.Duration
	TotalIncrement time.Duration
}

// NewImbalance computes the report statistics from per-thread loads.
func NewImbalance(loads []ThreadLoad) ImbalanceReport {
	rep := ImbalanceReport{Threads: append([]ThreadLoad(nil), loads...)}
	n := len(loads)
	if n == 0 {
		return rep
	}
	var busySum, iterSum float64
	for _, l := range loads {
		if l.Busy > rep.MaxBusy {
			rep.MaxBusy = l.Busy
		}
		if l.Iterations > rep.MaxIter {
			rep.MaxIter = l.Iterations
		}
		busySum += float64(l.Busy)
		iterSum += float64(l.Iterations)
		rep.TotalIter += l.Iterations
		rep.TotalRecovery += l.Recovery
		rep.TotalIncrement += l.Increment
	}
	busyMean := busySum / float64(n)
	iterMean := iterSum / float64(n)
	rep.MeanBusy = time.Duration(busyMean)
	rep.MeanIter = iterMean
	var busyVar, iterVar float64
	for _, l := range loads {
		busyVar += (float64(l.Busy) - busyMean) * (float64(l.Busy) - busyMean)
		iterVar += (float64(l.Iterations) - iterMean) * (float64(l.Iterations) - iterMean)
	}
	if busyMean > 0 {
		rep.BusyCV = math.Sqrt(busyVar/float64(n)) / busyMean
		rep.BusyImbalance = float64(rep.MaxBusy) / busyMean
	}
	if iterMean > 0 {
		rep.IterCV = math.Sqrt(iterVar/float64(n)) / iterMean
		rep.IterImbalance = float64(rep.MaxIter) / iterMean
	}
	return rep
}

// Imbalance computes an ImbalanceReport from the trace's events of the
// given category (normally "chunk"), assuming `threads` team members
// (threads that recorded no event count as idle rows). Event args named
// "iters", "recovery_ns" and "increment_ns" feed the respective
// columns.
func (t *Trace) Imbalance(cat string, threads int) ImbalanceReport {
	loads := map[int]*ThreadLoad{}
	for tid := 0; tid < threads; tid++ {
		loads[tid] = &ThreadLoad{TID: tid}
	}
	for _, ev := range t.Events() {
		if ev.Cat != cat {
			continue
		}
		l, ok := loads[ev.TID]
		if !ok {
			l = &ThreadLoad{TID: ev.TID}
			loads[ev.TID] = l
		}
		l.Chunks++
		l.Busy += ev.Dur
		for _, a := range ev.Args {
			switch a.Name {
			case "iters":
				l.Iterations += a.Value
			case "recovery_ns":
				l.Recovery += time.Duration(a.Value)
			case "increment_ns":
				l.Increment += time.Duration(a.Value)
			}
		}
	}
	tids := make([]int, 0, len(loads))
	for tid := range loads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	rows := make([]ThreadLoad, 0, len(tids))
	for _, tid := range tids {
		rows = append(rows, *loads[tid])
	}
	return NewImbalance(rows)
}

// String renders the report as an aligned table plus the summary
// statistics line, in the spirit of the paper's Fig. 2 and Figs. 10–13
// discussion.
func (r ImbalanceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %8s %12s %12s %12s %12s\n",
		"thread", "chunks", "iterations", "busy", "recovery", "increment")
	for _, l := range r.Threads {
		fmt.Fprintf(&b, "%6d %8d %12d %12s %12s %12s\n",
			l.TID, l.Chunks, l.Iterations, fmtDur(l.Busy), fmtDur(l.Recovery), fmtDur(l.Increment))
	}
	fmt.Fprintf(&b, "iterations: total %d, max/mean %.4f, cv %.4f\n",
		r.TotalIter, r.IterImbalance, r.IterCV)
	fmt.Fprintf(&b, "busy time:  max %s, mean %s, max/mean %.4f, cv %.4f\n",
		fmtDur(r.MaxBusy), fmtDur(r.MeanBusy), r.BusyImbalance, r.BusyCV)
	return b.String()
}
