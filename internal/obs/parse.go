package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The scrape side of the plane: a small, strict parser for the
// OpenMetrics text exposition the exporter produces. It exists so the
// repo can verify its own exposition in tests (parser round-trip), and
// so the future collapsed daemon's client tooling can scrape a plane
// without pulling in a Prometheus dependency.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name (family plus any suffix such as
	// _total, _bucket, _sum, _count, _quantile).
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its declared type and the
// samples attributed to it.
type Family struct {
	Name    string
	Type    string
	Samples []Sample
}

// suffixes a sample name may carry relative to its family name,
// per metric type.
var sampleSuffixes = []string{"", "_total", "_bucket", "_sum", "_count", "_quantile"}

// ParseExposition parses an OpenMetrics text exposition. It enforces
// the invariants the exporter relies on: every sample value parses as
// a float, label sets are well-formed, each sample belongs to a
// declared family (by longest-suffix match) or forms an untyped one,
// families are not interleaved, and the exposition terminates with
// "# EOF". The returned map is keyed by family name.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := map[string]*Family{}
	sawEOF := false
	cur := "" // current family, for the no-interleave check
	closed := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if _, dup := fams[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				fams[name] = &Family{Name: name, Type: typ}
				if cur != "" {
					closed[cur] = true
				}
				cur = name
			}
			continue // HELP/UNIT/comments
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := attribute(fams, s.Name)
		if fam == nil {
			// Untyped sample: its own implicit family.
			fam = &Family{Name: s.Name, Type: "untyped"}
			fams[s.Name] = fam
			if cur != "" {
				closed[cur] = true
			}
			cur = s.Name
		} else {
			if fam.Name != cur {
				if closed[fam.Name] {
					return nil, fmt.Errorf("line %d: family %s interleaved (sample %s after other families)",
						lineNo, fam.Name, s.Name)
				}
				if cur != "" {
					closed[cur] = true
				}
				cur = fam.Name
			}
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("exposition does not end with # EOF")
	}
	return fams, nil
}

// attribute finds the declared family a sample belongs to by the
// longest matching family-plus-suffix spelling (e.g. "x_bucket" and
// "x_quantile" both resolve to declared families when present —
// "x_quantile" is its own gauge family in this exporter, so exact
// matches win over suffix matches).
func attribute(fams map[string]*Family, sampleName string) *Family {
	best := ""
	for _, suf := range sampleSuffixes {
		fam := strings.TrimSuffix(sampleName, suf)
		if suf != "" && fam == sampleName {
			continue
		}
		if _, ok := fams[fam]; ok && len(fam) > len(best) {
			best = fam
		}
	}
	if best == "" {
		return nil
	}
	return fams[best]
}

// parseSampleLine parses `name{labels} value` or `name value`.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		j := strings.IndexByte(line[i:], '}')
		if j < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parseLabels(line[i+1 : i+j])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[i+j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample: %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty sample name: %q", line)
	}
	// Value is the first field of the remainder (a timestamp may follow).
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k1="v1",k2="v2"` (escaped quotes/backslashes in
// values per the exposition format).
func parseLabels(in string) (map[string]string, error) {
	out := map[string]string{}
	rest := in
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", in)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", in)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", in)
		}
		out[key] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return out, nil
}

// FamilyNames returns the parsed family names sorted, a convenience
// for assertions.
func FamilyNames(fams map[string]*Family) []string {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
