package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureRun(t *testing.T, o options) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := run(o)
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func quickOptions(fig string) options {
	return options{
		fig:     fig,
		threads: 12,
		quick:   true,
		chunks:  12,
		fig2N:   200,
		fig2T:   5,
		kernel:  "correlation",
	}
}

func TestBenchfigFig2(t *testing.T) {
	out, err := captureRun(t, quickOptions("2"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 2") || !strings.Contains(out, "thread  0") {
		t.Errorf("fig 2 output:\n%s", out)
	}
}

func TestBenchfigFig8(t *testing.T) {
	out, err := captureRun(t, quickOptions("8"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pc=10") {
		t.Errorf("fig 8 output:\n%s", out)
	}
}

func TestBenchfigFig9Quick(t *testing.T) {
	out, err := captureRun(t, quickOptions("9"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig. 9", "correlation_tiled", "ltmp", "gain vs dyn"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig 9 output missing %q", frag)
		}
	}
}

func TestBenchfigFig10Quick(t *testing.T) {
	out, err := captureRun(t, quickOptions("10"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig. 10", "symm_full", "overhead(%)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig 10 output missing %q", frag)
		}
	}
}

func TestBenchfigImbalanceQuick(t *testing.T) {
	o := quickOptions("imbalance")
	o.threads = 4
	o.traceOut = filepath.Join(t.TempDir(), "trace.json")
	out, err := captureRun(t, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"Load imbalance of the collapsed correlation kernel",
		"static", "dynamic", "guided",
		"iter max/mu", "per-thread breakdown",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("imbalance output missing %q:\n%s", frag, out)
		}
	}
	data, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestBenchfigUnknownFig(t *testing.T) {
	_, err := captureRun(t, quickOptions("7"))
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("unknown -fig not rejected: %v", err)
	}
}

// TestBenchfigSrcImbalance runs the imbalance experiment on a parsed
// source file instead of a named kernel.
func TestBenchfigSrcImbalance(t *testing.T) {
	o := quickOptions("imbalance")
	o.threads = 4
	o.src = "../../testdata/correlation.c"
	o.srcN = 40
	out, err := captureRun(t, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"correlation.c (collapse 2, params=40)", "static", "guided"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-src imbalance output missing %q:\n%s", frag, out)
		}
	}
}

// TestBenchfigSrcMalformed checks that malformed inputs are rejected
// with a located, compiler-style diagnostic rather than a panic.
func TestBenchfigSrcMalformed(t *testing.T) {
	o := quickOptions("imbalance")
	o.src = "../../testdata/malformed/stride.c"
	_, err := captureRun(t, o)
	if err == nil {
		t.Fatal("malformed -src accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "stride.c:5:") || !strings.Contains(msg, "unit stride") {
		t.Errorf("diagnostic not located (want file:5:col + cause): %v", err)
	}

	o.src = "../../testdata/malformed/nonaffine.c"
	_, err = captureRun(t, o)
	if err == nil || !strings.Contains(err.Error(), "not affine") {
		t.Errorf("non-affine -src diagnostic: %v", err)
	}
}
