package schedsim

import "fmt"

// PolicyKind enumerates the simulated worksharing schedules. It mirrors
// the runtime's schedule kinds but is deliberately independent of
// internal/omp so the simulator stays usable from pure planning code
// (and from tests) without dragging in the goroutine runtime.
type PolicyKind int

const (
	PolicyStatic PolicyKind = iota
	PolicyStaticChunk
	PolicyDynamic
	PolicyGuided
)

// String returns the OpenMP clause spelling of the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case PolicyStatic:
		return "static"
	case PolicyStaticChunk:
		return "static,chunk"
	case PolicyDynamic:
		return "dynamic"
	case PolicyGuided:
		return "guided"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// Policy is one candidate schedule under simulation: a kind plus the
// chunk size (minimum chunk for guided; ignored for plain static).
type Policy struct {
	Kind  PolicyKind
	Chunk int
}

// String renders the policy the way a schedule clause would.
func (p Policy) String() string {
	switch p.Kind {
	case PolicyStatic:
		return "static"
	case PolicyStaticChunk:
		return fmt.Sprintf("static,%d", p.chunk())
	case PolicyDynamic:
		return fmt.Sprintf("dynamic,%d", p.chunk())
	case PolicyGuided:
		return fmt.Sprintf("guided,%d", p.chunk())
	}
	return p.Kind.String()
}

func (p Policy) chunk() int {
	if p.Chunk > 0 {
		return p.Chunk
	}
	return 1
}

// CostModel carries the per-event overheads the simulator charges, in
// seconds. The legacy entry points (Static, Dynamic, …) folded the
// collapsed loop's once-per-chunk index recovery into a single
// calibrated constant or omitted it from the dynamic/guided paths
// entirely; the cost-model engine charges them separately so the
// planner can feed PerChunk from the *measured* per-chunk recovery
// histogram (its p50) and PerDequeue from the calibrated shared-counter
// grab.
type CostModel struct {
	// PerChunk is charged once at the start of every chunk on every
	// schedule: for collapsed loops this is the §V closed-form index
	// recovery (measured p50, not a guess).
	PerChunk float64
	// PerDequeue is charged per chunk grab on the dynamic and guided
	// schedules only (the shared-counter RMW and dispatch).
	PerDequeue float64
}

// Makespan simulates pol over the per-unit work vector and returns the
// finishing time of the slowest thread.
func Makespan(work []float64, threads int, pol Policy, cm CostModel) float64 {
	ms, _ := Simulate(work, threads, pol, cm)
	return ms
}

// Simulate is the cost-model simulation engine behind every schedule:
// it returns the makespan and the per-thread busy loads (work plus
// charged overheads). The greedy earliest-available-thread rule models
// the dynamic and guided queues; the static schedules are deterministic
// round-robin/blocked assignments.
func Simulate(work []float64, threads int, pol Policy, cm CostModel) (float64, []float64) {
	if threads < 1 {
		threads = 1
	}
	loads := make([]float64, threads)
	switch pol.Kind {
	case PolicyStatic:
		n := int64(len(work))
		base := n / int64(threads)
		rem := n % int64(threads)
		var start int64
		for t := 0; t < threads; t++ {
			size := base
			if int64(t) < rem {
				size++
			}
			if size > 0 {
				loads[t] += cm.PerChunk
			}
			for i := start; i < start+size; i++ {
				loads[t] += work[i]
			}
			start += size
		}
	case PolicyStaticChunk:
		chunk := pol.chunk()
		for c, t := 0, 0; c < len(work); c, t = c+chunk, (t+1)%threads {
			end := c + chunk
			if end > len(work) {
				end = len(work)
			}
			loads[t] += cm.PerChunk
			for i := c; i < end; i++ {
				loads[t] += work[i]
			}
		}
	case PolicyDynamic:
		chunk := pol.chunk()
		for c := 0; c < len(work); c += chunk {
			end := c + chunk
			if end > len(work) {
				end = len(work)
			}
			var cw float64
			for i := c; i < end; i++ {
				cw += work[i]
			}
			t := earliest(loads)
			loads[t] += cm.PerDequeue + cm.PerChunk + cw
		}
	case PolicyGuided:
		minChunk := pol.chunk()
		for c := 0; c < len(work); {
			remaining := len(work) - c
			size := remaining / threads
			if size < minChunk {
				size = minChunk
			}
			if size > remaining {
				size = remaining
			}
			var cw float64
			for i := c; i < c+size; i++ {
				cw += work[i]
			}
			t := earliest(loads)
			loads[t] += cm.PerDequeue + cm.PerChunk + cw
			c += size
		}
	default:
		panic(fmt.Sprintf("schedsim: unknown policy kind %d", pol.Kind))
	}
	var ms float64
	for _, l := range loads {
		if l > ms {
			ms = l
		}
	}
	return ms, loads
}

// earliest returns the index of the earliest-available thread (lowest
// accumulated load, lowest tid on ties).
func earliest(loads []float64) int {
	t := 0
	for q := 1; q < len(loads); q++ {
		if loads[q] < loads[t] {
			t = q
		}
	}
	return t
}

// Imbalance returns max/mean of the per-thread loads (1 = perfectly
// balanced; 0 when there is no load at all).
func Imbalance(loads []float64) float64 {
	var total, maxL float64
	for _, l := range loads {
		total += l
		if l > maxL {
			maxL = l
		}
	}
	if total <= 0 {
		return 0
	}
	return maxL * float64(len(loads)) / total
}
