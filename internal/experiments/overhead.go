package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/omp"
)

// ---------------------------------------------------------------------
// Overhead suite — the repository's Fig. 7-style engine comparison: for
// every kernel and every schedule, the per-collapsed-iteration cost of
//
//   - the original nest (plain sequential loops, the zero-overhead
//     reference);
//   - the per-iteration §V driver (omp.CollapsedFor: one recovery per
//     chunk, then per-iteration lexicographic incrementation);
//   - the range-batched §V engine (omp.CollapsedForRanges: one recovery
//     per chunk, bounds re-evaluated only on outer carries, innermost
//     level a flat counted loop);
//   - full recovery at every iteration (core.ForRangeEvery, the
//     maximum-cost variant §V associates with dynamic scheduling),
//     measured over a capped window since its per-iteration cost is
//     constant.
//
// Unlike Fig. 9/10 (which reproduce the paper's numbers), this suite
// exists to make the runtime's own engine economics reproducible: it is
// the source of BENCH_PR4.json (`make bench-json`).
// ---------------------------------------------------------------------

// OverheadEngine is one engine's measurement for one kernel × schedule.
type OverheadEngine struct {
	NsPerIter     float64 `json:"ns_per_iter"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
}

// OverheadSched compares the two chunk-scheduled engines under one
// schedule.
type OverheadSched struct {
	Schedule string         `json:"schedule"`
	PerIter  OverheadEngine `json:"per_iteration"`
	Ranges   OverheadEngine `json:"range_batched"`
	// Engine counters of the range-batched run: flat runs delivered,
	// outer carries (bound re-evaluations) between them, and the mean
	// flat-run length the body enjoyed.
	Batches    int64   `json:"batches"`
	Carries    int64   `json:"carries"`
	MeanRunLen float64 `json:"mean_run_len"`
	// SpeedupRanges is per-iteration ns over range-batched ns (>1 means
	// the range engine wins).
	SpeedupRanges float64 `json:"speedup_ranges_vs_per_iter"`
}

// OverheadRow is one kernel's full comparison.
type OverheadRow struct {
	Kernel     string           `json:"kernel"`
	Params     map[string]int64 `json:"params"`
	Iterations int64            `json:"iterations"` // collapsed total
	// Bound-shape specializer coverage of the bound instance
	// (constant / i+c / a·i+c evaluators vs the generic term loop).
	SpecializedBounds int `json:"specialized_bounds"`
	TotalBounds       int `json:"total_bounds"`
	// OriginalNsPerIter is the sequential original nest, normalized by
	// collapsed iterations (the common denominator of every engine).
	OriginalNsPerIter float64 `json:"original_ns_per_iter"`
	// RecoverEveryNsPerIter is the full-recovery-per-iteration engine,
	// measured over min(Iterations, EveryCap) ranks.
	RecoverEveryNsPerIter float64 `json:"recover_every_ns_per_iter"`
	// SteadyAllocs is testing.AllocsPerRun of a full warmed
	// core.ForRanges traversal — the steady-state inner loop; 0 means the
	// engine allocates nothing per iteration.
	SteadyAllocs float64 `json:"steady_state_allocs_per_traversal"`
	// RangesOverheadPct is the best range-batched schedule vs the
	// original nest: (ranges − original) / original · 100.
	RangesOverheadPct float64         `json:"ranges_overhead_vs_original_pct"`
	Schedules         []OverheadSched `json:"schedules"`
}

// OverheadReport is the machine-readable document written to
// BENCH_PR4.json. GoVersion/GOMAXPROCS predate the Meta block and stay
// for schema-v1 readers; Meta is authoritative from schema v2 on.
type OverheadReport struct {
	Suite      string        `json:"suite"` // "overhead"
	Meta       BenchMeta     `json:"meta"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Threads    int           `json:"threads"`
	Quick      bool          `json:"quick"`
	Reps       int           `json:"reps"`
	Rows       []OverheadRow `json:"kernels"`
}

// OverheadOptions configure the suite.
type OverheadOptions struct {
	Quick bool // use small test sizes (CI smoke) instead of bench sizes
	// Threads is the team size driving the chunk-scheduled engines.
	// The default 1 follows the paper's serial overhead protocol
	// (Fig. 10): with one thread, ns/iter is pure control cost, not
	// parallel speedup.
	Threads int
	// Reps is the best-of repetition count per timing (default 3; 1 in
	// Quick mode).
	Reps int
	// MinTime is the minimum accumulated duration per timing sample
	// (default 25ms; 2ms in Quick mode).
	MinTime time.Duration
	// Schedules to sweep (default: static, static chunk 64, dynamic
	// chunk 64 — one recovery per thread, many static chunks, and the
	// dynamic dequeue pattern).
	Schedules []omp.Schedule
	// EveryCap bounds the recover-every window (default 1<<17).
	EveryCap int64
	Verbose  func(format string, args ...interface{})
}

func (o *OverheadOptions) fill() {
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Reps <= 0 {
		o.Reps = 3
		if o.Quick {
			o.Reps = 1
		}
	}
	if o.MinTime <= 0 {
		o.MinTime = 25 * time.Millisecond
		if o.Quick {
			o.MinTime = 2 * time.Millisecond
		}
	}
	if len(o.Schedules) == 0 {
		o.Schedules = []omp.Schedule{
			{Kind: omp.Static},
			{Kind: omp.StaticChunk, Chunk: 64},
			{Kind: omp.Dynamic, Chunk: 64},
		}
	}
	if o.EveryCap <= 0 {
		o.EveryCap = 1 << 17
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
}

// Overhead runs the suite over every kernel.
func Overhead(opts OverheadOptions) (*OverheadReport, error) {
	opts.fill()
	rep := &OverheadReport{
		Suite:      "overhead",
		Meta:       NewBenchMeta(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Threads:    opts.Threads,
		Quick:      opts.Quick,
		Reps:       opts.Reps,
	}
	for _, k := range kernels.All() {
		row, err := overheadKernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// bestOfReps times f Reps times with timeIt and keeps the minimum
// seconds per call.
func bestOfReps(opts OverheadOptions, f func()) float64 {
	best := -1.0
	for r := 0; r < opts.Reps; r++ {
		if s := timeIt(opts.MinTime, f); best < 0 || s < best {
			best = s
		}
	}
	return best
}

func overheadKernel(k *kernels.Kernel, opts OverheadOptions) (OverheadRow, error) {
	p := k.BenchParams
	if opts.Quick {
		p = k.TestParams
	}
	row := OverheadRow{Kernel: k.Name, Params: p}
	inst := k.New(p)
	res, err := buildResult(k)
	if err != nil {
		return row, err
	}
	nestParams := k.NestParams(p)
	b, err := res.Unranker.Bind(nestParams)
	if err != nil {
		return row, err
	}
	total := b.Total()
	if total == 0 {
		return row, fmt.Errorf("empty collapsed space")
	}
	row.Iterations = total
	row.SpecializedBounds, row.TotalBounds = b.Instance().SpecializedBounds()

	// Every engine runs the identical per-iteration body
	// (Instance.RunCollapsed), so differences are pure control overhead.
	// Bodies are timing-idempotent (same operation count every run), so
	// one Reset before timing suffices — the measureRepeated convention.
	inst.Reset()
	perIterNs := func(sec float64) float64 { return sec / float64(total) * 1e9 }

	// 1. Original nest.
	row.OriginalNsPerIter = perIterNs(bestOfReps(opts, func() { kernels.RunSeq(inst) }))

	// 2. Recover-every over a capped window (constant per-iteration cost).
	window := total
	if window > opts.EveryCap {
		window = opts.EveryCap
	}
	var everyErr error
	everySec := bestOfReps(opts, func() {
		if err := core.ForRangeEvery(b, 1, window, func(pc int64, idx []int64) {
			inst.RunCollapsed(idx)
		}); err != nil && everyErr == nil {
			everyErr = err
		}
	})
	if everyErr != nil {
		return row, everyErr
	}
	row.RecoverEveryNsPerIter = everySec / float64(window) * 1e9

	// 3. Steady-state allocations of a full warmed range traversal.
	noop := func(pc int64, prefix []int64, lo, hi int64) {}
	if err := core.ForRanges(b, 1, total, nil, noop); err != nil {
		return row, err
	}
	row.SteadyAllocs = testing.AllocsPerRun(1, func() {
		_ = core.ForRanges(b, 1, total, nil, noop)
	})

	// 4. The two chunk-scheduled engines, per schedule.
	prefixScratch := make([][]int64, opts.Threads)
	for t := range prefixScratch {
		prefixScratch[t] = make([]int64, res.C)
	}
	bestRanges := -1.0
	for _, sched := range opts.Schedules {
		os := OverheadSched{Schedule: schedName(sched)}
		var runErr error
		perIterBody := func(tid int, idx []int64) { inst.RunCollapsed(idx) }
		rangeBody := func(tid int, pc int64, prefix []int64, lo, hi int64) {
			idx := prefixScratch[tid]
			copy(idx, prefix)
			for i := lo; i < hi; i++ {
				idx[res.C-1] = i
				inst.RunCollapsed(idx)
			}
		}

		sec := bestOfReps(opts, func() {
			if err := omp.CollapsedFor(res, nestParams, opts.Threads, sched, perIterBody); err != nil && runErr == nil {
				runErr = err
			}
		})
		os.PerIter.NsPerIter = perIterNs(sec)
		os.PerIter.AllocsPerIter = testing.AllocsPerRun(1, func() {
			_ = omp.CollapsedFor(res, nestParams, opts.Threads, sched, perIterBody)
		}) / float64(total)

		var rs core.RangeStats
		sec = bestOfReps(opts, func() {
			st, err := omp.CollapsedForRangesStats(res, nestParams, opts.Threads, sched, nil, rangeBody)
			if err != nil && runErr == nil {
				runErr = err
			}
			rs = st
		})
		if runErr != nil {
			return row, runErr
		}
		os.Ranges.NsPerIter = perIterNs(sec)
		os.Ranges.AllocsPerIter = testing.AllocsPerRun(1, func() {
			_, _ = omp.CollapsedForRangesStats(res, nestParams, opts.Threads, sched, nil, rangeBody)
		}) / float64(total)
		os.Batches, os.Carries = rs.Batches, rs.Carries
		if rs.Batches > 0 {
			os.MeanRunLen = float64(rs.Iterations) / float64(rs.Batches)
		}
		if os.Ranges.NsPerIter > 0 {
			os.SpeedupRanges = os.PerIter.NsPerIter / os.Ranges.NsPerIter
		}
		if bestRanges < 0 || os.Ranges.NsPerIter < bestRanges {
			bestRanges = os.Ranges.NsPerIter
		}
		opts.Verbose("%s/%s: original %.2f, per-iter %.2f, ranges %.2f ns/iter (x%.2f, runs avg %.1f)",
			k.Name, os.Schedule, row.OriginalNsPerIter, os.PerIter.NsPerIter,
			os.Ranges.NsPerIter, os.SpeedupRanges, os.MeanRunLen)
		row.Schedules = append(row.Schedules, os)
	}
	if row.OriginalNsPerIter > 0 {
		row.RangesOverheadPct = (bestRanges - row.OriginalNsPerIter) / row.OriginalNsPerIter * 100
	}
	return row, nil
}

// schedName renders a schedule compactly ("static", "static,64",
// "dynamic,64", "guided,8").
func schedName(s omp.Schedule) string {
	name := s.Kind.String()
	name = strings.TrimSuffix(name, ",chunk")
	if s.Chunk > 0 {
		return fmt.Sprintf("%s,%d", name, s.Chunk)
	}
	return name
}

// WriteJSON writes the report as indented JSON.
func (r *OverheadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderOverhead prints the report as an aligned table.
func RenderOverhead(r *OverheadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overhead suite — ns per collapsed iteration (threads=%d, best of %d)\n",
		r.Threads, r.Reps)
	fmt.Fprintf(&b, "%-18s %-12s %10s %10s %10s %10s %8s %10s\n",
		"kernel", "schedule", "original", "per-iter", "ranges", "rec-every", "speedup", "runlen")
	for _, row := range r.Rows {
		for i, s := range row.Schedules {
			orig, every := "", ""
			if i == 0 {
				orig = fmt.Sprintf("%10.2f", row.OriginalNsPerIter)
				every = fmt.Sprintf("%10.2f", row.RecoverEveryNsPerIter)
			}
			fmt.Fprintf(&b, "%-18s %-12s %10s %10.2f %10.2f %10s %7.2fx %10.1f\n",
				row.Kernel, s.Schedule, orig, s.PerIter.NsPerIter, s.Ranges.NsPerIter,
				every, s.SpeedupRanges, s.MeanRunLen)
		}
		fmt.Fprintf(&b, "%-18s %-12s bounds %d/%d specialized; steady-state allocs %.0f; ranges overhead vs original %+.1f%%\n",
			row.Kernel, "", row.SpecializedBounds, row.TotalBounds, row.SteadyAllocs, row.RangesOverheadPct)
	}
	return b.String()
}
