/* rhomboidal band: a skewed stencil footprint */
#pragma omp parallel for collapse(2) schedule(static, 64)
for (i = 0; i < N; i++)
  for (j = i; j < i + M; j++)
    out[i][j - i] = f(in[j]);
