package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/profiling"
	"repro/internal/telemetry"
)

// Plane is the HTTP observability plane over one telemetry registry.
// It serves:
//
//	/metrics     OpenMetrics text exposition (counters, gauges,
//	             histograms with p50/p95/p99, span aggregates)
//	/snapshot    JSON snapshot with interval deltas: per-counter rates
//	             since the previous /snapshot scrape, histogram
//	             quantiles, derived in-flight chunk ages
//	/trace       Chrome trace JSON of the flight recorder's retained
//	             window (falls back to the full trace when no flight
//	             recorder is attached)
//	/healthz     liveness probe
//	/debug/pprof the net/http/pprof handlers (via internal/profiling)
//	/            endpoint index
//
// A Plane is safe for concurrent scraping while the instrumented run
// mutates the registry; the exposition is built from consistent
// snapshots.
type Plane struct {
	reg   *telemetry.Registry
	start time.Time

	mu       sync.Mutex
	lastTime time.Time
	lastSnap telemetry.Snapshot

	srv *http.Server
	ln  net.Listener
}

// NewPlane builds a plane over reg (which may already be in use by a
// running workload).
func NewPlane(reg *telemetry.Registry) *Plane {
	return &Plane{reg: reg, start: time.Now()}
}

// Registry returns the plane's registry.
func (p *Plane) Registry() *telemetry.Registry { return p.reg }

// Handler returns the plane's mux, usable directly with httptest or
// mounted into a larger server (the future collapsed daemon mounts
// exactly this).
func (p *Plane) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/snapshot", p.handleSnapshot)
	mux.HandleFunc("/trace", p.handleTrace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", p.handleIndex)
	profiling.AttachPprof(mux)
	return mux
}

func (p *Plane) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "collapse observability plane (up %s)\n\n", time.Since(p.start).Round(time.Second))
	fmt.Fprintln(w, "  /metrics      OpenMetrics exposition")
	fmt.Fprintln(w, "  /snapshot     JSON snapshot with interval rates")
	fmt.Fprintln(w, "  /trace        flight-recorder Chrome trace (last K events)")
	fmt.Fprintln(w, "  /healthz      liveness")
	fmt.Fprintln(w, "  /debug/pprof  pprof handlers")
}

func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.refreshRuntime()
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	if err := WriteOpenMetrics(w, p.reg); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (p *Plane) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if f := p.reg.Flight(); f != nil {
		f.WriteChromeTrace(w)
		return
	}
	p.reg.WriteChromeTrace(w)
}

// SnapshotDoc is the JSON document served by /snapshot. Rates are
// computed over the interval since the previous /snapshot request
// (absent on the first scrape).
type SnapshotDoc struct {
	NowUTC    string  `json:"now_utc"`
	UptimeS   float64 `json:"uptime_s"`
	IntervalS float64 `json:"interval_s,omitempty"`

	Counters map[string]int64 `json:"counters,omitempty"`
	// Rates are per-second first derivatives of the counters over the
	// scrape interval — the live view (throughput, escalation rate)
	// that a totals-only dump cannot give.
	Rates  map[string]float64 `json:"counter_rates_per_s,omitempty"`
	Gauges map[string]int64   `json:"gauges,omitempty"`
	// Derived carries values computed at scrape time, e.g. the
	// in-flight chunk age of every busy worker
	// ("omp.worker_inflight_age_ns{tid=...}").
	Derived    map[string]int64        `json:"derived,omitempty"`
	Histograms map[string]HistogramDoc `json:"histograms,omitempty"`
	Spans      int                     `json:"spans"`
	Flight     *FlightDoc              `json:"flight,omitempty"`
}

// HistogramDoc summarises one histogram for the JSON snapshot.
type HistogramDoc struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// RatePerS is the observation rate over the scrape interval.
	RatePerS float64 `json:"rate_per_s,omitempty"`
}

// FlightDoc describes the flight recorder's state.
type FlightDoc struct {
	Cap      int    `json:"cap"`
	Recorded uint64 `json:"recorded"`
}

func (p *Plane) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	p.refreshRuntime()
	doc := p.snapshotDoc()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// snapshotDoc builds the delta document and rolls the plane's
// previous-scrape state forward.
func (p *Plane) snapshotDoc() SnapshotDoc {
	now := time.Now()
	snap := p.reg.Snapshot()

	p.mu.Lock()
	var interval float64
	var prev telemetry.Snapshot
	if !p.lastTime.IsZero() {
		interval = now.Sub(p.lastTime).Seconds()
		prev = p.lastSnap
	}
	p.lastTime = now
	p.lastSnap = snap
	p.mu.Unlock()

	doc := SnapshotDoc{
		NowUTC:    now.UTC().Format(time.RFC3339Nano),
		UptimeS:   now.Sub(p.start).Seconds(),
		IntervalS: interval,
		Counters:  snap.Counters,
		Gauges:    snap.Gauges,
		Spans:     snap.Spans,
	}
	if interval > 0 && len(snap.Counters) > 0 {
		doc.Rates = make(map[string]float64, len(snap.Counters))
		for name, v := range snap.Counters {
			doc.Rates[name] = float64(v-prev.Counters[name]) / interval
		}
	}
	if len(snap.Histograms) > 0 {
		doc.Histograms = make(map[string]HistogramDoc, len(snap.Histograms))
		for name, h := range snap.Histograms {
			hd := HistogramDoc{Count: h.Count, Sum: h.Sum}
			if h.Count > 0 {
				hd.Mean = h.Sum / float64(h.Count)
			}
			qs := h.Quantiles(0.5, 0.95, 0.99)
			hd.P50, hd.P95, hd.P99 = qs[0], qs[1], qs[2]
			if interval > 0 {
				hd.RatePerS = float64(h.Count-prev.Histograms[name].Count) / interval
			}
			doc.Histograms[name] = hd
		}
	}
	// Derived in-flight ages: any *_inflight_since_ns{...} gauge with a
	// nonzero value is a worker inside a chunk; its age is the distance
	// to the current monotonic trace offset.
	nowNs := p.reg.Trace().Now().Nanoseconds()
	for name, v := range snap.Gauges {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if v > 0 && strings.HasSuffix(fam, "_inflight_since_ns") {
			if doc.Derived == nil {
				doc.Derived = map[string]int64{}
			}
			derived := strings.Replace(name, "_inflight_since_ns", "_inflight_age_ns", 1)
			doc.Derived[derived] = nowNs - v
		}
	}
	if f := p.reg.Flight(); f != nil {
		doc.Flight = &FlightDoc{Cap: f.Cap(), Recorded: f.Total()}
	}
	return doc
}

// Serve starts the plane on addr (e.g. ":9090" or "127.0.0.1:0") in a
// background goroutine and returns the bound address. Close stops it.
func (p *Plane) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.ln = ln
	p.srv = &http.Server{Handler: p.Handler()}
	go p.srv.Serve(ln)
	return ln.Addr(), nil
}

// Addr returns the bound address (nil before Serve).
func (p *Plane) Addr() net.Addr {
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops the listener immediately, dropping in-flight scrapes
// (no-op when Serve was never called). Prefer Shutdown on orderly exit.
func (p *Plane) Close() error {
	if p.srv == nil {
		return nil
	}
	return p.srv.Close()
}

// Shutdown gracefully stops the plane: the listener closes at once (no
// new scrapes), in-flight requests drain until done or ctx expires,
// then the server closes. A scraper mid-/trace or mid-/snapshot gets
// its full answer instead of a reset connection. No-op when Serve was
// never called.
func (p *Plane) Shutdown(ctx context.Context) error {
	if p.srv == nil {
		return nil
	}
	err := p.srv.Shutdown(ctx)
	if err != nil {
		// Drain budget exhausted: cut the stragglers loose.
		p.srv.Close()
	}
	return err
}

// refreshRuntime updates process-level gauges on the registry —
// goroutine count, heap-alloc bytes, GC cycles, GOMAXPROCS — on every
// /metrics and /snapshot scrape. They ride the normal exporter, so
// scrapes see process health next to workload metrics.
func (p *Plane) refreshRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.reg.Gauge("process.goroutines").Set(int64(runtime.NumGoroutine()))
	p.reg.Gauge("process.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	p.reg.Gauge("process.gc_cycles").Set(int64(ms.NumGC))
	p.reg.Gauge("process.gomaxprocs").Set(int64(runtime.GOMAXPROCS(0)))
}
