package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/unrank"
)

// AblationRow records one (kernel, recovery strategy) measurement of the
// design-space study behind §V: how often the costly closed-form
// recovery runs, and what it costs relative to the plain sequential
// program.
type AblationRow struct {
	Kernel      string
	Strategy    string // "per-iteration", "chunk=N", "once-per-12", "binary-search/chunk=N"
	SerialSec   float64
	VariantSec  float64
	OverheadPct float64
}

// AblationOptions configure the study.
type AblationOptions struct {
	Quick   bool
	Kernels []string // defaults to correlation, tetra, utma
	Chunks  []int64  // chunk sizes to sweep; defaults to 1, 16, 256, 4096
}

func (o *AblationOptions) fill() {
	if len(o.Kernels) == 0 {
		o.Kernels = []string{"correlation", "tetra", "utma"}
	}
	if len(o.Chunks) == 0 {
		o.Chunks = []int64{1, 16, 256, 4096}
	}
}

// Ablation measures, for each kernel, the serial cost of the collapsed
// program under different recovery strategies:
//
//   - per-iteration: full radical recovery at every iteration (the naive
//     Fig. 3 scheme, and what dynamic scheduling would force — §V);
//   - chunk=c: one recovery per c iterations (§V chunked scheme);
//   - once-per-12: one recovery per simulated thread (§V static scheme,
//     the Fig. 10 configuration);
//   - binary-search: the oracle recovery (no radicals) at every
//     iteration, quantifying what the closed form buys.
func Ablation(opts AblationOptions) ([]AblationRow, error) {
	opts.fill()
	var rows []AblationRow
	for _, name := range opts.Kernels {
		k, err := kernels.ByName(name)
		if err != nil {
			return nil, err
		}
		p := k.BenchParams
		if opts.Quick {
			p = k.TestParams
		}
		inst := k.New(p)
		res, err := k.Collapsed()
		if err != nil {
			return nil, err
		}
		resBS, err := core.Collapse(k.Nest, k.Collapse, unrank.Options{Mode: unrank.ModeBinarySearch})
		if err != nil {
			return nil, err
		}
		serial := bestOf(3, func() error { inst.Reset(); kernels.RunSeq(inst); return nil })

		add := func(strategy string, f func() error) error {
			sec := bestOf(3, func() error { inst.Reset(); return f() })
			if sec < 0 {
				return fmt.Errorf("ablation: %s/%s failed", name, strategy)
			}
			rows = append(rows, AblationRow{
				Kernel:      name,
				Strategy:    strategy,
				SerialSec:   serial,
				VariantSec:  sec,
				OverheadPct: (sec - serial) / serial * 100,
			})
			return nil
		}

		nestParams := k.NestParams(p)
		if err := add("per-iteration", func() error {
			b, err := res.Unranker.Bind(nestParams)
			if err != nil {
				return err
			}
			return core.ForRangeEvery(b, 1, b.Total(), func(pc int64, idx []int64) {
				inst.RunCollapsed(idx)
			})
		}); err != nil {
			return nil, err
		}
		if err := add("binary-search/per-iteration", func() error {
			b, err := resBS.Unranker.Bind(nestParams)
			if err != nil {
				return err
			}
			return core.ForRangeEvery(b, 1, b.Total(), func(pc int64, idx []int64) {
				inst.RunCollapsed(idx)
			})
		}); err != nil {
			return nil, err
		}
		for _, c := range opts.Chunks {
			c := c
			if err := add(fmt.Sprintf("chunk=%d", c), func() error {
				b, err := res.Unranker.Bind(nestParams)
				if err != nil {
					return err
				}
				total := b.Total()
				nChunks := int((total + c - 1) / c)
				return kernels.RunCollapsedSerialChunks(k, inst, res, p, nChunks)
			}); err != nil {
				return nil, err
			}
		}
		if err := add("once-per-12", func() error {
			return kernels.RunCollapsedSerialChunks(k, inst, res, p, 12)
		}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func bestOf(reps int, f func() error) float64 {
	best := -1.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := f(); err != nil {
			return -1
		}
		if s := time.Since(start).Seconds(); best < 0 || s < best {
			best = s
		}
	}
	return best
}

// RenderAblation prints the study as a table.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — cost of the index-recovery strategies (§V design space, serial runs)\n")
	fmt.Fprintf(&b, "%-14s %-28s %12s %12s %12s\n", "kernel", "strategy", "serial(s)", "variant(s)", "overhead(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-28s %12.4f %12.4f %12.1f\n",
			r.Kernel, r.Strategy, r.SerialSec, r.VariantSec, r.OverheadPct)
	}
	return b.String()
}
