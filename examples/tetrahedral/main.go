// The 3-depth tetrahedral nest of the paper's Figs. 6–7 (§IV.C): the
// outermost recovery equation is a cubic whose convenient root passes
// through complex intermediates — at pc=1 the discriminant is negative
// yet the root evaluates to 0+0i. This example prints the symbolic
// roots, demonstrates the complex evaluation, emits the Fig. 7 C code,
// and runs the fully collapsed nest in parallel.
//
//	go run ./examples/tetrahedral [-N 120]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	nonrect "repro"
	"repro/internal/roots"
)

func main() {
	N := flag.Int64("N", 120, "size parameter")
	flag.Parse()

	n := nonrect.MustNewNest([]string{"N"},
		nonrect.L("i", "0", "N-1"),
		nonrect.L("j", "0", "i+1"),
		nonrect.L("k", "j", "i+1"),
	)
	res, err := nonrect.Collapse(n, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nest:")
	fmt.Print(n)
	fmt.Println("\nranking polynomial (paper §IV.C):")
	fmt.Println("  r(i,j,k) =", res.Ranking)
	fmt.Println("total iterations:", res.Total)

	fmt.Println("\nconvenient roots (selected automatically):")
	for lvl := 0; lvl < 2; lvl++ {
		e := res.Unranker.RootExpr(lvl)
		fmt.Printf("  level %d: floor(Re( %s ))\n", lvl, roots.String(e))
	}

	// §IV.C: evaluate the cubic root of level 0 at pc = 1: the inner
	// square root is of a negative number, but the full value is 0+0i.
	e0 := res.Unranker.RootExpr(0)
	x := e0.Eval(map[string]float64{"N": float64(*N), "pc": 1})
	fmt.Printf("\nlevel-0 root at pc=1 evaluates to %v (complex intermediates, real result)\n", x)

	fmt.Println("\n=== generated C code (paper Fig. 7) ===")
	src, err := nonrect.EmitC(res, nonrect.CodegenOptions{Scheme: nonrect.SchemePerIteration})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(src)

	// Run the collapsed tetrahedron and verify the iteration count.
	var count atomic.Int64
	params := map[string]int64{"N": *N}
	if err := nonrect.CollapsedFor(res, params, 6, nonrect.Schedule{Kind: nonrect.Static},
		func(tid int, idx []int64) { count.Add(1) }); err != nil {
		log.Fatal(err)
	}
	want := ((*N)*(*N)*(*N) - *N) / 6
	fmt.Printf("parallel run covered %d iterations; (N^3-N)/6 = %d; match = %v\n",
		count.Load(), want, count.Load() == want)
}
