package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/unrank"
)

// ---------------------------------------------------------------------
// Compile suite — the PR-5 compile-path throughput record: for every
// Fig. 5 kernel nest, the cost of building the collapsed form
//
//   - cold and serial (CompileWorkers=1: the per-level pipeline with no
//     fan-out — the pre-parallelization shape of the compile path);
//   - cold with the per-level fan-out (CompileWorkers=0, i.e.
//     GOMAXPROCS workers over level restriction/solving/selection);
//   - warm through the structural CollapseCache (signature lookup plus
//     the shallow rename of the cached artifact).
//
// It is the source of BENCH_PR5.json (`make bench-json`), whose
// acceptance bar is cached-vs-cold >= 2x on repeated collapses.
// ---------------------------------------------------------------------

// CompileRow is one kernel's compile-path measurement.
type CompileRow struct {
	Kernel string `json:"kernel"`
	Depth  int    `json:"depth"`
	C      int    `json:"collapse"`
	// Microseconds per Collapse under each regime.
	ColdSerialUs   float64 `json:"cold_serial_us"`
	ColdParallelUs float64 `json:"cold_parallel_us"`
	CachedUs       float64 `json:"cached_us"`
	// SpeedupParallel is serial over parallel cold compile (the fan-out's
	// contribution); SpeedupCached is parallel cold over warm cached (the
	// cache's contribution on repeated collapses).
	SpeedupParallel float64 `json:"speedup_parallel_vs_serial"`
	SpeedupCached   float64 `json:"speedup_cached_vs_cold"`
}

// CompileReport is the machine-readable document written to
// BENCH_PR5.json. GoVersion/GOMAXPROCS predate the Meta block and stay
// for schema-v1 readers; Meta is authoritative from schema v2 on.
type CompileReport struct {
	Suite      string       `json:"suite"` // "compile"
	Meta       BenchMeta    `json:"meta"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick"`
	Reps       int          `json:"reps"`
	Rows       []CompileRow `json:"kernels"`
	// Cache counters accumulated across the whole suite (every kernel's
	// warm phase runs against one shared cache).
	Cache core.CacheStats `json:"cache"`
}

// CompileOptions configure the suite.
type CompileOptions struct {
	Quick bool // fewer timing repetitions (CI smoke)
	// Reps is the best-of repetition count per timing (default 3; 1 in
	// Quick mode).
	Reps int
	// MinTime is the minimum accumulated duration per timing sample
	// (default 25ms; 2ms in Quick mode).
	MinTime time.Duration
	Verbose func(format string, args ...interface{})
}

func (o *CompileOptions) fill() {
	if o.Reps <= 0 {
		o.Reps = 3
		if o.Quick {
			o.Reps = 1
		}
	}
	if o.MinTime <= 0 {
		o.MinTime = 25 * time.Millisecond
		if o.Quick {
			o.MinTime = 2 * time.Millisecond
		}
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...interface{}) {}
	}
}

// Compile runs the suite over every kernel.
func Compile(opts CompileOptions) (*CompileReport, error) {
	opts.fill()
	rep := &CompileReport{
		Suite:      "compile",
		Meta:       NewBenchMeta(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Reps:       opts.Reps,
	}
	cache := core.NewCollapseCache(64)
	best := func(f func()) float64 {
		b := -1.0
		for r := 0; r < opts.Reps; r++ {
			if s := timeIt(opts.MinTime, f); b < 0 || s < b {
				b = s
			}
		}
		return b * 1e6 // microseconds
	}
	for _, k := range kernels.All() {
		row := CompileRow{Kernel: k.Name, Depth: k.Nest.Depth(), C: k.Collapse}
		var err error
		collapse := func(workers int) func() {
			return func() {
				if _, cerr := core.Collapse(k.Nest, k.Collapse,
					unrank.Options{CompileWorkers: workers}); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
		row.ColdSerialUs = best(collapse(1))
		row.ColdParallelUs = best(collapse(0))
		// Warm phase: first call populates the shared cache, the timed
		// calls hit it.
		if _, cerr := core.CollapseCached(cache, k.Nest, k.Collapse, unrank.Options{}); cerr != nil && err == nil {
			err = cerr
		}
		row.CachedUs = best(func() {
			if _, cerr := core.CollapseCached(cache, k.Nest, k.Collapse, unrank.Options{}); cerr != nil && err == nil {
				err = cerr
			}
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		if row.ColdParallelUs > 0 {
			row.SpeedupParallel = row.ColdSerialUs / row.ColdParallelUs
		}
		if row.CachedUs > 0 {
			row.SpeedupCached = row.ColdParallelUs / row.CachedUs
		}
		opts.Verbose("%s: serial %.0fus, parallel %.0fus (x%.2f), cached %.1fus (x%.1f)",
			k.Name, row.ColdSerialUs, row.ColdParallelUs, row.SpeedupParallel,
			row.CachedUs, row.SpeedupCached)
		rep.Rows = append(rep.Rows, row)
	}
	rep.Cache = cache.Stats()
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *CompileReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderCompile prints the report as an aligned table.
func RenderCompile(r *CompileReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compile suite — µs per Collapse (GOMAXPROCS=%d, best of %d)\n",
		r.GOMAXPROCS, r.Reps)
	fmt.Fprintf(&b, "%-18s %5s %12s %12s %10s %9s %9s\n",
		"kernel", "d/c", "cold-serial", "cold-par", "cached", "par-gain", "cache-x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %2d/%-2d %12.1f %12.1f %10.2f %8.2fx %8.1fx\n",
			row.Kernel, row.Depth, row.C, row.ColdSerialUs, row.ColdParallelUs,
			row.CachedUs, row.SpeedupParallel, row.SpeedupCached)
	}
	fmt.Fprintf(&b, "cache: %s\n", r.Cache)
	return b.String()
}
