package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
)

// The checkpoint journal is an append-only text file, one record per
// line:
//
//	<crc32c-hex> <json>\n
//
// where the checksum covers the JSON bytes exactly. The first record is
// the header (type "hdr") carrying the run fingerprint and total; every
// subsequent record is a completion (type "done") committing one closed
// pc-interval with its iteration count and order-independent checksum.
//
// Recovery rules (the crash model is fail-stop during append):
//
//   - a torn FINAL line — missing newline, truncated JSON, checksum
//     mismatch — is the expected residue of a crash mid-append: replay
//     stops at the last valid record and Reopen truncates the tail, so
//     the run resumes having merely lost its final commit;
//   - a bad record anywhere BEFORE the final line means the file body
//     itself is damaged (bit rot, concurrent writers): replay refuses
//     with faults.ErrJournalCorrupt rather than resume from a lie;
//   - an empty or headerless file is corrupt — there is nothing sound
//     to resume from.
type journalRecord struct {
	Type string `json:"t"` // "hdr" | "done"

	// Header fields.
	Version     int    `json:"v,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
	Total       int64  `json:"total,omitempty"`

	// Completion fields.
	Lo    int64  `json:"lo,omitempty"`
	Hi    int64  `json:"hi,omitempty"`
	Iters int64  `json:"iters,omitempty"`
	Sum   uint64 `json:"sum,omitempty"`
}

const journalVersion = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is the open, writable checkpoint log of one run. Append is
// not safe for concurrent use; the coordinator serializes commits.
type Journal struct {
	f    *os.File
	w    *bufio.Writer
	hist *telemetry.Histogram // journal fsync latency, may be nil
}

// encodeRecord renders one journal line (with trailing newline).
func encodeRecord(rec journalRecord) []byte {
	body, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("dist: journal record marshal: %v", err)) // struct of scalars; cannot fail
	}
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x", crc32.Checksum(body, crcTable))...)
	line = append(line, ' ')
	line = append(line, body...)
	line = append(line, '\n')
	return line
}

// decodeLine validates one journal line's checksum and decodes it.
func decodeLine(line string) (journalRecord, error) {
	var rec journalRecord
	crcHex, body, ok := strings.Cut(line, " ")
	if !ok || len(crcHex) != 8 {
		return rec, fmt.Errorf("malformed line (no checksum prefix)")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return rec, fmt.Errorf("malformed checksum %q", crcHex)
	}
	if got := crc32.Checksum([]byte(body), crcTable); got != uint32(want) {
		return rec, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return rec, fmt.Errorf("record JSON: %v", err)
	}
	return rec, nil
}

// CreateJournal starts a fresh journal at path (truncating any previous
// file) and writes the fsynced header record. tel, which may be nil,
// receives the "dist.journal_fsync_seconds" latency histogram.
func CreateJournal(path, fingerprint string, total int64, tel *telemetry.Registry) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), hist: tel.Histogram("dist.journal_fsync_seconds", nil)}
	hdr := journalRecord{Type: "hdr", Version: journalVersion, Fingerprint: fingerprint, Total: total}
	if err := j.append(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Append commits one completed interval. The record is flushed and
// fsynced before Append returns: once the coordinator acknowledges a
// completion, a crash cannot un-complete it.
func (j *Journal) Append(iv Interval, iters int64, sum uint64) error {
	return j.append(journalRecord{Type: "done", Lo: iv.Lo, Hi: iv.Hi, Iters: iters, Sum: sum})
}

func (j *Journal) append(rec journalRecord) error {
	if _, err := j.w.Write(encodeRecord(rec)); err != nil {
		return fmt.Errorf("dist: journal append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("dist: journal flush: %w", err)
	}
	t0 := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal fsync: %w", err)
	}
	j.hist.Observe(time.Since(t0).Seconds())
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// JournalState is the result of replaying a journal: the header, the
// merged coverage, and the exactly-once totals of the committed
// intervals (duplicate and overlapping records are deduplicated on
// replay, contributing their sums only for newly covered intervals).
type JournalState struct {
	Fingerprint string
	Total       int64
	Done        IntervalSet
	// Iters and Sum are the committed totals across deduplicated
	// records: the progress a resumed run starts from.
	Iters int64
	Sum   uint64
	// Records is the number of valid completion records replayed;
	// Duplicates how many of them were fully covered already.
	Records    int
	Duplicates int
	// TornTail reports that the final line was truncated or corrupt and
	// was dropped; validBytes is the clean prefix length Reopen keeps.
	TornTail   bool
	validBytes int64
	path       string
}

// ReplayJournal reads and validates the journal at path. A torn final
// line is tolerated (TornTail is set and the line ignored); corruption
// anywhere else, a missing header, or an empty file refuses with an
// error wrapping faults.ErrJournalCorrupt.
func ReplayJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("dist: %s: empty journal (no header): %w", path, faults.ErrJournalCorrupt)
	}
	st := &JournalState{path: path}
	rest := string(data)
	offset := int64(0)
	first := true
	for len(rest) > 0 {
		line, tail, sawNL := strings.Cut(rest, "\n")
		rec, derr := decodeLine(line)
		if derr != nil || !sawNL {
			// Invalid here. If this is the FINAL line of the file, it is
			// the torn residue of a crash mid-append: drop it and resume
			// from the clean prefix. Anything before the final line is
			// body corruption.
			if sawNL && strings.TrimSpace(tail) != "" {
				return nil, fmt.Errorf("dist: %s: record %d: %v: %w",
					path, st.Records+1, derr, faults.ErrJournalCorrupt)
			}
			if first {
				return nil, fmt.Errorf("dist: %s: unreadable header: %w", path, faults.ErrJournalCorrupt)
			}
			st.TornTail = true
			break
		}
		if first {
			if rec.Type != "hdr" || rec.Version != journalVersion {
				return nil, fmt.Errorf("dist: %s: first record is not a v%d header: %w",
					path, journalVersion, faults.ErrJournalCorrupt)
			}
			st.Fingerprint = rec.Fingerprint
			st.Total = rec.Total
			first = false
		} else {
			if rec.Type != "done" {
				return nil, fmt.Errorf("dist: %s: record %d: unexpected type %q: %w",
					path, st.Records+1, rec.Type, faults.ErrJournalCorrupt)
			}
			iv := Interval{Lo: rec.Lo, Hi: rec.Hi}
			if iv.Lo < 1 || iv.Hi > st.Total || iv.Lo > iv.Hi {
				return nil, fmt.Errorf("dist: %s: record %d: interval [%d,%d] outside 1..%d: %w",
					path, st.Records+1, iv.Lo, iv.Hi, st.Total, faults.ErrJournalCorrupt)
			}
			st.Records++
			switch added := st.Done.Add(iv); {
			case added == iv.Len():
				st.Iters += rec.Iters
				st.Sum += rec.Sum
			case added == 0:
				// A replayed duplicate (a speculative double-completion a
				// crashed coordinator journaled twice): coverage is already
				// accounted and the first completion's sums stand — adding
				// the duplicate's would double-count.
				st.Duplicates++
			default:
				// Partial overlap cannot come from this coordinator:
				// planned shards are disjoint and resume plans over the
				// complement, so a half-covered record means the file
				// mixes incompatible plans.
				return nil, fmt.Errorf("dist: %s: record %d: interval [%d,%d] partially overlaps prior coverage: %w",
					path, st.Records, iv.Lo, iv.Hi, faults.ErrJournalCorrupt)
			}
		}
		offset += int64(len(line)) + 1
		st.validBytes = offset
		rest = tail
	}
	if first {
		return nil, fmt.Errorf("dist: %s: no valid header: %w", path, faults.ErrJournalCorrupt)
	}
	return st, nil
}

// Reopen opens the replayed journal for appending, first truncating the
// torn tail (if any) so the file ends at the last valid record. The
// fingerprint has already been validated by the caller.
func (st *JournalState) Reopen(tel *telemetry.Registry) (*Journal, error) {
	f, err := os.OpenFile(st.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(st.validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, w: bufio.NewWriter(f), hist: tel.Histogram("dist.journal_fsync_seconds", nil)}, nil
}
