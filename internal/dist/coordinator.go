package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// Body is the per-iteration work of a sharded run. It is invoked from
// executor goroutines (worker is the executor id, idx the recovered
// tuple, reused per worker — do not retain) and returns this iteration's
// contribution to the run checksum. Under speculation, lease expiry and
// retry an iteration may be EXECUTED more than once; the returned
// contributions are buffered per attempt and folded into the run totals
// exactly once per committed pc-interval, so the Report's Sum/Executed
// are exactly-once even when execution was not. Bodies with external
// side effects must either be idempotent or apply their effects from a
// commit hook of their own keyed on the Report.
type Body func(worker int, pc int64, idx []int64) uint64

// Config shapes a sharded run. The zero value of every field selects a
// sensible default (see the field comments).
type Config struct {
	// Workers is the number of executor goroutines (default GOMAXPROCS).
	Workers int
	// Shards is the target shard count the pc-range is split into
	// (default 8×Workers). More shards = finer recovery units and better
	// balance, at more lease/journal traffic.
	Shards int
	// MinShard floors the shard-shrinking degradation ladder: a failing
	// shard is split in half until it reaches this size (default 64).
	MinShard int64
	// Chunk is the intra-shard heartbeat granularity in iterations
	// (default omp.DefaultShardChunk): the lease is renewed and
	// cancellation observed once per chunk.
	Chunk int64
	// LeaseTTL bounds an executor's silence: an attempt whose last
	// heartbeat is older than this is presumed dead, its shard requeued
	// and its context canceled with faults.ErrLeaseExpired (default 1s).
	LeaseTTL time.Duration
	// SpeculateAfter is the straggler threshold: once the queue is empty,
	// an in-flight attempt older than this gets a speculative backup,
	// first completion winning (default LeaseTTL/2; negative disables).
	SpeculateAfter time.Duration
	// MaxRetries is the per-shard retry budget before the splitting
	// ladder engages (default 3). Backoff and MaxBackoff shape the
	// capped jittered exponential delay between retries (defaults 2ms
	// and 250ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	MaxRetries int
	// AllowFallback lets a run whose ladder is exhausted degrade to the
	// uncollapsed worksharing engine over the whole domain (discarding
	// committed shard progress for the returned totals) instead of
	// failing with ErrShardFailed.
	AllowFallback bool
	// Journal is the checkpoint journal path ("" disables journaling).
	// With Resume, the journal is replayed (fingerprint-validated,
	// torn tail truncated) and only uncovered intervals execute.
	Journal string
	Resume  bool
	// Registry receives the dist.* metric families (may be nil).
	Registry *telemetry.Registry
	// Seed makes retry jitter deterministic in tests (default 1).
	Seed int64
	// Logf sinks recovery-event logs (nil: silent).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = omp.DefaultThreads()
	}
	if c.Shards <= 0 {
		c.Shards = 8 * c.Workers
	}
	if c.MinShard <= 0 {
		c.MinShard = 64
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.SpeculateAfter == 0 {
		c.SpeculateAfter = c.LeaseTTL / 2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// WorkerStats is one executor's committed contribution.
type WorkerStats struct {
	Worker     int
	Shards     int64 // committed attempts
	Iterations int64 // committed iterations
	Busy       time.Duration
}

// Report is the outcome of a sharded run: exactly-once committed totals
// plus the recovery ledger.
type Report struct {
	// Total is the pc-range cardinality; Executed the iterations
	// committed by this run's executors; Resumed the iterations
	// inherited from a replayed journal (Executed+Resumed == Total on a
	// clean finish). Sum is the order-independent checksum over both.
	Total    int64
	Executed int64
	Resumed  int64
	Sum      uint64

	// PlannedShards is how many shards this run planned (after resume
	// complement planning); Completions how many commits landed.
	PlannedShards int
	Completions   int64
	// Recovery ledger: duplicate completions dropped at commit, leases
	// expired and reassigned, speculative backups launched and won,
	// retries consumed, shards split by the degradation ladder.
	Duplicates      int64
	LeaseExpiries   int64
	SpeculativeRuns int64
	SpeculativeWins int64
	Retries         int64
	Splits          int64
	// FellBack reports the run degraded to the uncollapsed engine.
	FellBack  bool
	PerWorker []WorkerStats
}

// Imbalance derives the executor load-balance summary from the
// per-worker committed contributions.
func (r *Report) Imbalance() telemetry.ImbalanceReport {
	loads := make([]telemetry.ThreadLoad, len(r.PerWorker))
	for i, w := range r.PerWorker {
		loads[i] = telemetry.ThreadLoad{
			TID: w.Worker, Chunks: w.Shards, Iterations: w.Iterations, Busy: w.Busy,
		}
	}
	return telemetry.NewImbalance(loads)
}

// ShardError reports a shard that exhausted the recovery ladder; it
// wraps both faults.ErrShardFailed and the final attempt's error.
type ShardError struct {
	Interval Interval
	Attempts int
	Err      error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard [%d,%d] failed after %d attempts (retries and splits exhausted): %v",
		e.Interval.Lo, e.Interval.Hi, e.Attempts, e.Err)
}

func (e *ShardError) Unwrap() []error { return []error{faults.ErrShardFailed, e.Err} }

// Fingerprint is the identity a checkpoint journal is bound to: the
// α-invariant structural signature of the collapse request, the sorted
// parameter binding, and the exact total. Two runs may exchange
// journals exactly when their fingerprints are equal.
func Fingerprint(res *core.Result, params map[string]int64, total int64) string {
	sig, ok := core.NestSignature(res.Nest, res.C, unrank.Options{})
	if !ok {
		// Not α-canonicalizable (custom sampling etc.): fall back to the
		// deterministic rendering of the collapsed sub-nest.
		sig = "nest:" + strings.ReplaceAll(res.SubNest.String(), "\n", ";")
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "fp1|%s|params:", sig)
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", name, params[name])
	}
	fmt.Fprintf(&b, "|total:%d", total)
	return b.String()
}

// task is one pending shard (with its consumed retry budget).
type task struct {
	iv      Interval
	retries int
}

// attempt is one lease: a task assigned to an executor, heartbeating
// through lastBeat, cancelable through cancel.
type attempt struct {
	task
	id       int64
	worker   int
	spec     bool
	started  time.Time
	lastBeat int64 // UnixNano, written by the executor, read by the monitor
	ctx      context.Context
	cancel   context.CancelCauseFunc
	beatMu   sync.Mutex // serializes lastBeat writes vs monitor reads via atomic would also do
}

// errRunComplete is the cancellation cause of attempts outlived by the
// run (their interval was committed by someone else first).
var errRunComplete = errors.New("run complete")

// errNeedFallback marks the ladder-exhausted state that Run converts
// into the uncollapsed fallback when AllowFallback is set.
type errNeedFallback struct{ err error }

func (e *errNeedFallback) Error() string { return e.err.Error() }
func (e *errNeedFallback) Unwrap() error { return e.err }

type coordinator struct {
	cfg    Config
	res    *core.Result
	params map[string]int64
	body   Body
	tel    *telemetry.Registry

	runCtx context.Context

	// seeds maps planned shard-start ranks to their pre-recovered
	// iteration tuples (batch-recovered once before the executors spawn).
	// Written only during setup, read-only afterwards — safe to consult
	// from workerLoop without holding mu. Attempts whose Lo is not a
	// planned start (splits, resumed remainders) simply miss and recover
	// from scratch.
	seeds map[int64][]int64

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []task
	inflight  map[int64]*attempt
	perIv     map[Interval]int // active attempts per interval
	nextID    int64
	done      IntervalSet
	total     int64
	sum       uint64
	executed  int64
	journal   *Journal
	failure   error
	rng       *rand.Rand
	shardHist *telemetry.Histogram

	rep Report
}

// Run executes body over every pc in [1, total] of the collapsed result
// under the fault-tolerant shard protocol. It returns when every rank
// has been committed exactly once (or inherited from a resumed
// journal), when ctx is canceled, or when a shard exhausts the recovery
// ladder. The returned Report carries the exactly-once totals and the
// recovery ledger; on error the Report reflects committed progress (the
// journal, when configured, preserves it for -resume).
func Run(ctx context.Context, res *core.Result, params map[string]int64, cfg Config, body Body) (*Report, error) {
	cfg.fill()
	tel := cfg.Registry

	b0, err := res.Unranker.Bind(params)
	if err != nil {
		return nil, err
	}
	total := b0.Total()
	if total >= math.MaxInt64 {
		return nil, fmt.Errorf("dist: collapsed total %d overflows the pc range: %w",
			total, faults.ErrOverflow)
	}

	c := &coordinator{
		cfg:      cfg,
		res:      res,
		params:   params,
		body:     body,
		tel:      tel,
		runCtx:   ctx,
		inflight: map[int64]*attempt{},
		perIv:    map[Interval]int{},
		total:    total,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		rep:      Report{Total: total, PerWorker: make([]WorkerStats, cfg.Workers)},
	}
	c.cond = sync.NewCond(&c.mu)
	c.shardHist = tel.Histogram("dist.shard_seconds", nil)
	for w := range c.rep.PerWorker {
		c.rep.PerWorker[w].Worker = w
	}

	fp := Fingerprint(res, params, total)
	if cfg.Journal != "" {
		if cfg.Resume {
			st, err := ReplayJournal(cfg.Journal)
			if err != nil {
				return nil, err
			}
			if st.Fingerprint != fp {
				return nil, fmt.Errorf("dist: journal %s was written by a different run (journal fp %q, this run %q): %w",
					cfg.Journal, st.Fingerprint, fp, faults.ErrFingerprintMismatch)
			}
			c.done = st.Done
			c.sum = st.Sum
			c.rep.Resumed = st.Iters
			c.rep.Duplicates += int64(st.Duplicates)
			if st.TornTail {
				cfg.Logf("dist: journal %s: torn tail truncated at last valid record", cfg.Journal)
			}
			j, err := st.Reopen(tel)
			if err != nil {
				return nil, err
			}
			c.journal = j
		} else {
			j, err := CreateJournal(cfg.Journal, fp, total, tel)
			if err != nil {
				return nil, err
			}
			c.journal = j
		}
		defer c.journal.Close()
	}

	uncovered := c.done.Complement(1, total)
	c.queue = planShards(uncovered, cfg.Shards)
	c.rep.PlannedShards = len(c.queue)
	if len(c.queue) == 0 {
		c.finishReport()
		return &c.rep, nil
	}

	// Worker-private recovery state: bind once, clone per executor.
	bounds := make([]*unrank.Bound, cfg.Workers)
	bounds[0] = b0
	for w := 1; w < cfg.Workers; w++ {
		bounds[w] = b0.Clone()
	}

	// Batch-recover every planned shard-start tuple in one sorted pass:
	// nearby starts share their recovery prefix, so seeding all shards
	// costs little more than one full recovery. Executors then begin
	// each first-attempt shard at pure incrementation cost
	// (ShardForCtxFrom). Best-effort: on any batch failure the run
	// proceeds unseeded and per-attempt recovery reports the real error.
	c.seedShardStarts(b0)

	// The lease monitor and a ctx watcher keep cond.Wait honest.
	stopMonitor := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go c.monitor(stopMonitor, &monWG)
	if ctx != nil {
		monWG.Add(1)
		go func() {
			defer monWG.Done()
			select {
			case <-ctx.Done():
				c.cond.Broadcast()
			case <-stopMonitor:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c.workerLoop(worker, bounds[worker])
		}(w)
	}
	wg.Wait()
	close(stopMonitor)
	monWG.Wait()

	c.mu.Lock()
	runErr := c.failure
	if runErr == nil && c.done.Covered() != c.total {
		// Workers exited without failure or full coverage: the run
		// context must have been canceled between checks.
		if ctx != nil && ctx.Err() != nil {
			runErr = fmt.Errorf("dist: %v: %w", context.Cause(ctx), faults.ErrCanceled)
		} else {
			runErr = fmt.Errorf("dist: coordinator stopped at %d/%d covered: %w",
				c.done.Covered(), c.total, faults.ErrShardFailed)
		}
	}
	c.mu.Unlock()

	var nf *errNeedFallback
	if errors.As(runErr, &nf) && cfg.AllowFallback {
		cfg.Logf("dist: recovery ladder exhausted (%v); degrading to uncollapsed worksharing", nf.err)
		tel.Counter("dist.fallbacks").Inc()
		if err := c.runFallback(ctx); err != nil {
			c.finishReport()
			return &c.rep, err
		}
		runErr = nil
	}
	c.finishReport()
	return &c.rep, runErr
}

// seedShardStarts batch-recovers the start tuple of every planned shard
// on b0 — before any executor goroutine exists, so the bound is not yet
// shared — and indexes the tuples by rank for workerLoop. The starts
// are sorted and deduplicated so RecoverBatch's shared-prefix descent
// amortizes the recovery ladder across the whole plan.
func (c *coordinator) seedShardStarts(b0 *unrank.Bound) {
	if len(c.queue) == 0 {
		return
	}
	los := make([]int64, 0, len(c.queue))
	for _, t := range c.queue {
		los = append(los, t.iv.Lo)
	}
	sort.Slice(los, func(i, j int) bool { return los[i] < los[j] })
	n := 0
	for _, lo := range los {
		if n == 0 || los[n-1] != lo {
			los[n] = lo
			n++
		}
	}
	los = los[:n]
	d := b0.Depth()
	backing := make([]int64, n*d)
	out := make([][]int64, n)
	for i := range out {
		out[i] = backing[i*d : (i+1)*d]
	}
	if err := b0.RecoverBatch(los, out); err != nil {
		c.cfg.Logf("dist: shard-start seeding failed (%v); proceeding unseeded", err)
		return
	}
	c.seeds = make(map[int64][]int64, n)
	for i, lo := range los {
		c.seeds[lo] = out[i]
	}
}

// planShards splits the uncovered intervals into near-equal contiguous
// shards, targeting `shards` pieces across the whole uncovered set. The
// arithmetic mirrors the omp chunk planners' overflow hardening: sizes
// saturate at interval ends, and lo+size never wraps because every rank
// is < MaxInt64.
func planShards(uncovered []Interval, shards int) []task {
	remaining := int64(0)
	for _, iv := range uncovered {
		remaining += iv.Len()
	}
	if remaining == 0 {
		return nil
	}
	size := remaining / int64(shards)
	if remaining%int64(shards) != 0 {
		size++
	}
	if size < 1 {
		size = 1
	}
	var tasks []task
	for _, iv := range uncovered {
		for lo := iv.Lo; lo <= iv.Hi; {
			hi := lo + size - 1
			if hi > iv.Hi || hi < lo { // lo+size overflow saturates at the interval end
				hi = iv.Hi
			}
			tasks = append(tasks, task{iv: Interval{Lo: lo, Hi: hi}})
			if hi == iv.Hi {
				break
			}
			lo = hi + 1
		}
	}
	return tasks
}

// monitor is the lease reaper: it scans in-flight attempts every
// LeaseTTL/4 and expires those silent past the TTL — requeueing the
// shard and canceling the straggler with faults.ErrLeaseExpired so it
// stops at its next chunk boundary.
func (c *coordinator) monitor(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := c.cfg.LeaseTTL / 4
	if c.cfg.SpeculateAfter > 0 && c.cfg.SpeculateAfter/2 < tick {
		// Speculation decisions are made by idle workers woken from
		// cond.Wait; the monitor's periodic broadcast is what paces them,
		// so it must tick at straggler resolution, not just lease TTL.
		tick = c.cfg.SpeculateAfter / 2
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			cutoff := now.Add(-c.cfg.LeaseTTL).UnixNano()
			c.mu.Lock()
			for id, at := range c.inflight {
				if at.loadBeat() < cutoff {
					c.rep.LeaseExpiries++
					c.tel.Counter("dist.lease_expiries").Inc()
					c.cfg.Logf("dist: lease expired on shard [%d,%d] (worker %d); reassigning",
						at.iv.Lo, at.iv.Hi, at.worker)
					delete(c.inflight, id)
					c.perIv[at.iv]--
					at.cancel(faults.ErrLeaseExpired)
					c.queue = append(c.queue, at.task)
				}
			}
			c.mu.Unlock()
			// Wake waiters either way: requeued work, or a worker stuck in
			// Wait while the run context lapsed between broadcasts.
			c.cond.Broadcast()
		}
	}
}

func (at *attempt) beat() {
	at.beatMu.Lock()
	at.lastBeat = time.Now().UnixNano()
	at.beatMu.Unlock()
}

func (at *attempt) loadBeat() int64 {
	at.beatMu.Lock()
	defer at.beatMu.Unlock()
	return at.lastBeat
}

// workerLoop is one executor: take a lease, run the shard attempt with
// buffered effects, commit or route the failure through the recovery
// ladder, repeat until the run completes or fails.
func (c *coordinator) workerLoop(worker int, b *unrank.Bound) {
	ws := &c.rep.PerWorker[worker]
	for {
		at := c.next(worker)
		if at == nil {
			return
		}
		t0 := time.Now()
		var iters int64
		var sum uint64
		_, err := omp.ShardForCtxFrom(at.ctx, worker, b, c.seeds[at.iv.Lo], at.iv.Lo, at.iv.Hi, c.cfg.Chunk,
			func(int64) { at.beat() },
			func(pc int64, idx []int64) {
				sum += c.body(worker, pc, idx)
				iters++
			})
		busy := time.Since(t0)
		c.shardHist.Observe(busy.Seconds())
		if err == nil {
			if c.commit(at, iters, sum) {
				ws.Shards++
				ws.Iterations += iters
			}
			ws.Busy += busy
			continue
		}
		ws.Busy += busy
		c.fail(at, err)
	}
}

// next blocks until there is a lease to hand out, the run is complete,
// or the run failed/was canceled (nil return). Queue order is FIFO;
// with the queue empty it speculates on the oldest straggler.
func (c *coordinator) next(worker int) *attempt {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.failure != nil || c.done.Covered() == c.total {
			return nil
		}
		if c.runCtx != nil && c.runCtx.Err() != nil {
			return nil
		}
		if len(c.queue) > 0 {
			t := c.queue[0]
			c.queue = c.queue[1:]
			if c.done.Overlap(t.iv) == t.iv.Len() {
				// A requeued shard a backup already committed: skip.
				continue
			}
			return c.register(t, worker, false)
		}
		if at := c.speculateLocked(worker); at != nil {
			return at
		}
		c.cond.Wait()
	}
}

// speculateLocked launches a backup attempt for the oldest straggling
// lease (single-backup cap per interval). Caller holds c.mu.
func (c *coordinator) speculateLocked(worker int) *attempt {
	if c.cfg.SpeculateAfter < 0 {
		return nil
	}
	cutoff := time.Now().Add(-c.cfg.SpeculateAfter)
	var oldest *attempt
	for _, at := range c.inflight {
		if c.perIv[at.iv] != 1 || at.started.After(cutoff) {
			continue
		}
		if oldest == nil || at.started.Before(oldest.started) {
			oldest = at
		}
	}
	if oldest == nil {
		return nil
	}
	c.rep.SpeculativeRuns++
	c.tel.Counter("dist.speculative_runs").Inc()
	c.cfg.Logf("dist: speculating on straggler shard [%d,%d] (worker %d, running %s)",
		oldest.iv.Lo, oldest.iv.Hi, oldest.worker, time.Since(oldest.started).Round(time.Millisecond))
	return c.register(oldest.task, worker, true)
}

// register creates a lease for t on worker. Caller holds c.mu.
func (c *coordinator) register(t task, worker int, spec bool) *attempt {
	parent := c.runCtx
	if parent == nil {
		parent = context.Background()
	}
	actx, cancel := context.WithCancelCause(parent)
	c.nextID++
	at := &attempt{
		task: t, id: c.nextID, worker: worker, spec: spec,
		started: time.Now(), ctx: actx, cancel: cancel,
	}
	at.lastBeat = at.started.UnixNano()
	c.inflight[at.id] = at
	c.perIv[at.iv]++
	return at
}

// unregisterLocked drops the lease if still registered (the monitor may
// have expired it first). Caller holds c.mu.
func (c *coordinator) unregisterLocked(at *attempt) {
	if _, ok := c.inflight[at.id]; ok {
		delete(c.inflight, at.id)
		c.perIv[at.iv]--
	}
	at.cancel(errRunComplete)
}

// commit is the single point where buffered attempt effects become run
// state, exactly once per pc-interval: first completion wins, duplicate
// completions (expired-then-finished leases, losing speculative
// backups) are detected and dropped, and the journal record is fsynced
// before the completion is acknowledged. Returns whether the attempt's
// effects were committed.
func (c *coordinator) commit(at *attempt, iters int64, sum uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unregisterLocked(at)
	switch ov := c.done.Overlap(at.iv); {
	case ov == 0:
		// First completion of this interval: commit.
	case ov == at.iv.Len():
		c.rep.Duplicates++
		c.tel.Counter("dist.duplicates").Inc()
		c.cond.Broadcast()
		return false
	default:
		// Partially covered: a split's half landed while a whole-shard
		// backup kept running. The sums cannot be attributed, so the
		// late whole-shard completion is dropped; the queued remainder
		// tasks cover the gap exactly.
		c.rep.Duplicates++
		c.tel.Counter("dist.duplicates").Inc()
		c.cond.Broadcast()
		return false
	}
	if c.journal != nil {
		if err := c.journal.Append(at.iv, iters, sum); err != nil {
			if c.failure == nil {
				c.failure = err
			}
			c.cancelInflightLocked(err)
			c.cond.Broadcast()
			return false
		}
	}
	c.done.Add(at.iv)
	c.executed += iters
	c.sum += sum
	c.rep.Completions++
	c.tel.Counter("dist.completions").Inc()
	c.tel.Counter("dist.iterations").Add(iters)
	if at.spec {
		c.rep.SpeculativeWins++
		c.tel.Counter("dist.speculative_wins").Inc()
	}
	if c.done.Covered() == c.total {
		c.cancelInflightLocked(errRunComplete)
	}
	c.cond.Broadcast()
	return true
}

// cancelInflightLocked cancels every live lease (run over or run
// failed) so executors drain at their next chunk boundary.
func (c *coordinator) cancelInflightLocked(cause error) {
	for _, at := range c.inflight {
		at.cancel(cause)
	}
}

// fail routes an attempt error through the recovery ladder:
// abandoned leases are dropped silently (their shard is already back in
// the queue), cancellation propagates, and genuine failures retry with
// capped jittered backoff, then split, then exhaust.
func (c *coordinator) fail(at *attempt, err error) {
	c.mu.Lock()
	cause := context.Cause(at.ctx)
	expired := errors.Is(cause, faults.ErrLeaseExpired)
	superseded := errors.Is(cause, errRunComplete)
	c.unregisterLocked(at)
	if c.failure != nil || expired || superseded || c.done.Covered() == c.total {
		// Abandoned attempt: its work is requeued (lease expiry), already
		// covered (lost race), or the run is over anyway.
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	if c.runCtx != nil && c.runCtx.Err() != nil {
		// Run-level cancellation (deadline, Ctrl-C): not a shard fault,
		// whatever error the interrupted attempt happened to surface.
		c.failure = fmt.Errorf("dist: run canceled: %v: %w",
			context.Cause(c.runCtx), faults.ErrCanceled)
		c.cancelInflightLocked(c.failure)
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	if errors.Is(err, faults.ErrCanceled) {
		c.failure = err
		c.cancelInflightLocked(err)
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	t := at.task
	c.cfg.Logf("dist: shard [%d,%d] attempt failed (worker %d, retries %d): %v",
		t.iv.Lo, t.iv.Hi, at.worker, t.retries, err)
	switch {
	case t.retries < c.cfg.MaxRetries:
		t.retries++
		c.rep.Retries++
		c.tel.Counter("dist.retries").Inc()
		delay := c.backoffLocked(t.retries)
		c.mu.Unlock()
		// Sleep outside the lock (the worker owns this task while it
		// backs off); other executors keep draining the queue.
		time.Sleep(delay)
		c.mu.Lock()
		c.queue = append(c.queue, t)
	case t.iv.Len() > c.cfg.MinShard:
		// Shrink the recovery unit: split in half, fresh retry budgets.
		mid := t.iv.Lo + (t.iv.Hi-t.iv.Lo)/2
		c.rep.Splits++
		c.tel.Counter("dist.splits").Inc()
		c.cfg.Logf("dist: splitting shard [%d,%d] at %d after %d retries",
			t.iv.Lo, t.iv.Hi, mid, t.retries)
		c.queue = append(c.queue,
			task{iv: Interval{Lo: t.iv.Lo, Hi: mid}},
			task{iv: Interval{Lo: mid + 1, Hi: t.iv.Hi}})
	default:
		se := &ShardError{Interval: t.iv, Attempts: t.retries + 1, Err: err}
		c.failure = &errNeedFallback{err: se}
		c.cancelInflightLocked(se)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// backoffLocked computes the capped jittered exponential retry delay.
// Caller holds c.mu (the rng is not concurrency-safe).
func (c *coordinator) backoffLocked(retry int) time.Duration {
	d := c.cfg.Backoff << uint(retry-1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	// Full jitter in [d/2, d): bounded above, never zero.
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// runFallback executes the whole collapsed domain on the uncollapsed
// worksharing engine — the last rung of the degradation ladder. The
// returned totals REPLACE committed shard progress (the fallback
// re-executes from scratch; bodies must be idempotent for this rung,
// which is why it is opt-in).
func (c *coordinator) runFallback(ctx context.Context) error {
	sub := &nest.Nest{Params: c.res.Nest.Params, Loops: c.res.Nest.Loops[:c.res.C]}
	type cell struct {
		iters int64
		sum   uint64
		_     [6]uint64 // avoid false sharing between executors
	}
	cells := make([]cell, c.cfg.Workers)
	err := omp.UncollapsedFor(ctx, sub, c.params, c.cfg.Workers, omp.Schedule{Kind: omp.Static},
		func(tid int, idx []int64) {
			cells[tid].iters++
			cells[tid].sum += c.body(tid, 0, idx)
		})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.rep.FellBack = true
	c.executed = 0
	c.sum = 0
	c.rep.Resumed = 0
	for i := range cells {
		c.executed += cells[i].iters
		c.sum += cells[i].sum
	}
	c.mu.Unlock()
	return nil
}

// finishReport folds coordinator state into the report.
func (c *coordinator) finishReport() {
	c.mu.Lock()
	c.rep.Executed = c.executed
	c.rep.Sum = c.sum
	c.mu.Unlock()
}
