package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/telemetry"
	"repro/internal/unrank"
)

// ImbalanceOptions configure the per-schedule load-balance experiment.
type ImbalanceOptions struct {
	// Kernel names the benchmark to run (default "correlation", the
	// paper's motivating triangular nest).
	Kernel string
	// Threads is the team size (default 8).
	Threads int
	// Quick selects the small test problem sizes.
	Quick bool
	// Telemetry, when non-nil, receives the chunk timelines of every
	// schedule run on one shared timebase (for Chrome trace export).
	Telemetry *telemetry.Registry

	// Nest, when non-nil, replaces the named kernel: the Collapse
	// outermost loops of the nest run with an empty body under each
	// schedule, so arbitrary parsed sources (benchfig -src) can have
	// their chunk distribution measured. Params binds the nest's
	// parameters.
	Nest     *nest.Nest
	Collapse int
	Params   map[string]int64
}

// ImbalanceRow is one schedule's measured load distribution.
type ImbalanceRow struct {
	Label  string
	Sched  omp.Schedule
	Wall   time.Duration
	Stats  omp.CollapsedStats
	Report telemetry.ImbalanceReport
}

// imbalanceSchedules are the schedule clauses compared by the
// experiment, mirroring the paper's static-vs-dynamic discussion
// (Figs. 10–13): collapsed static is expected to be near-perfectly
// balanced, dynamic trades balance for dequeue overhead.
func imbalanceSchedules() []omp.Schedule {
	return []omp.Schedule{
		{Kind: omp.Static},
		{Kind: omp.StaticChunk, Chunk: 64},
		{Kind: omp.Dynamic, Chunk: 1},
		{Kind: omp.Dynamic, Chunk: 64},
		{Kind: omp.Guided},
	}
}

func scheduleLabel(s omp.Schedule) string {
	if s.Chunk > 0 {
		return fmt.Sprintf("%s(%d)", s.Kind, s.Chunk)
	}
	return s.Kind.String()
}

// Imbalance runs the collapsed form of the kernel under each schedule
// kind and reports the per-thread work distribution: iteration counts,
// busy times, recovery-vs-increment split, and the balance statistics
// (max/mean, coefficient of variation).
func Imbalance(opts ImbalanceOptions) ([]ImbalanceRow, error) {
	if opts.Threads <= 0 {
		opts.Threads = 8
	}
	var res *core.Result
	var params map[string]int64
	reset := func() {}
	body := func(tid int, idx []int64) {}
	if opts.Nest != nil {
		r, err := core.Collapse(opts.Nest, opts.Collapse, unrank.Options{})
		if err != nil {
			return nil, err
		}
		res, params = r, opts.Params
	} else {
		if opts.Kernel == "" {
			opts.Kernel = "correlation"
		}
		k, err := kernels.ByName(opts.Kernel)
		if err != nil {
			return nil, err
		}
		p := k.BenchParams
		if opts.Quick {
			p = k.TestParams
		}
		inst := k.New(p)
		res, err = k.Collapsed()
		if err != nil {
			return nil, err
		}
		params = k.NestParams(p)
		reset = inst.Reset
		body = func(tid int, idx []int64) { inst.RunCollapsed(idx) }
	}
	var rows []ImbalanceRow
	for _, sched := range imbalanceSchedules() {
		reset()
		start := time.Now()
		cs, err := omp.CollapsedForTelemetry(res, params, opts.Threads, sched,
			opts.Telemetry, body)
		if err != nil {
			return nil, fmt.Errorf("schedule %s: %w", scheduleLabel(sched), err)
		}
		rows = append(rows, ImbalanceRow{
			Label:  scheduleLabel(sched),
			Sched:  sched,
			Wall:   time.Since(start),
			Stats:  cs,
			Report: cs.ImbalanceReport(),
		})
	}
	return rows, nil
}

// RenderImbalance renders the per-schedule comparison as an aligned
// table, one summary row per schedule, followed by the per-thread
// breakdown of the most and least balanced runs.
func RenderImbalance(rows []ImbalanceRow, kernel string, threads int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Load imbalance of the collapsed %s kernel (%d threads)\n", kernel, threads)
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %10s %10s %12s %12s\n",
		"schedule", "wall", "iter max/mu", "busy max/mu", "busy cv", "chunks", "recovery", "rootevals")
	for _, r := range rows {
		var chunks int64
		for _, t := range r.Stats.PerThread {
			chunks += t.Chunks
		}
		fmt.Fprintf(&b, "%-14s %10s %12.4f %12.4f %10.4f %10d %12s %12d\n",
			r.Label, r.Wall.Round(time.Microsecond), r.Report.IterImbalance,
			r.Report.BusyImbalance, r.Report.BusyCV, chunks,
			r.Report.TotalRecovery.Round(time.Microsecond), r.Stats.Stats.RootEvals)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\nper-thread breakdown, %s:\n%s", rows[0].Label, rows[0].Report)
	}
	return b.String()
}
