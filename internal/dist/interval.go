// Package dist is the fault-tolerant shard coordinator over the
// collapsed pc-range. The paper's payoff — a non-rectangular nest
// becomes a single flat range pc = 1..total — makes the work trivially
// partitionable into contiguous shards and makes *exact* progress
// tracking possible: a completed shard is just a closed pc-interval.
//
// The coordinator (Run) splits the range into shards and hands them to
// executor goroutines under time-bounded leases with heartbeats. An
// expired lease returns its shard to the queue; stragglers get
// speculative backup attempts with first-completion-wins; failed shards
// retry with capped jittered backoff, then split, then (optionally)
// force the whole run down the uncollapsed fallback before failing with
// a typed faults error. Progress lands in an append-only checkpoint
// journal (completed pc-intervals + a run fingerprint) so an
// interrupted run resumes exactly where it stopped, executing only the
// uncovered intervals. See DESIGN.md "Sharded execution & recovery
// protocol" for the lease state machine and the exactly-once argument.
package dist

import "sort"

// Interval is a closed pc-interval [Lo, Hi] of the collapsed range
// (1-based inclusive bounds, matching the paper's pc = 1..total loop).
type Interval struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Len is the number of ranks the interval covers.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo + 1 }

// IntervalSet is a set of covered pc-ranks, maintained as sorted
// disjoint closed intervals. The zero value is the empty set. It is the
// coordinator's committed-progress ledger: Add is the single place
// double completions (speculative backups, replayed journal records)
// collapse into exactly-once coverage.
type IntervalSet struct {
	ivs     []Interval
	covered int64
}

// Covered is the number of ranks in the set.
func (s *IntervalSet) Covered() int64 { return s.covered }

// Intervals returns the sorted disjoint intervals (a copy).
func (s *IntervalSet) Intervals() []Interval {
	return append([]Interval(nil), s.ivs...)
}

// Contains reports whether every rank of iv is already in the set.
func (s *IntervalSet) Contains(iv Interval) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo })
	return i < len(s.ivs) && s.ivs[i].Lo <= iv.Lo && iv.Hi <= s.ivs[i].Hi
}

// Overlap returns how many ranks of iv are already covered: 0 means iv
// is entirely new, iv.Len() means it is a full duplicate, anything in
// between is a partial overlap the commit protocol refuses (sums of a
// partially-covered attempt cannot be attributed).
func (s *IntervalSet) Overlap(iv Interval) int64 {
	ov := int64(0)
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo })
	for ; i < len(s.ivs) && s.ivs[i].Lo <= iv.Hi; i++ {
		lo, hi := s.ivs[i].Lo, s.ivs[i].Hi
		if lo < iv.Lo {
			lo = iv.Lo
		}
		if hi > iv.Hi {
			hi = iv.Hi
		}
		ov += hi - lo + 1
	}
	return ov
}

// Add merges iv into the set and returns how many ranks were newly
// covered (0 for an exact duplicate or fully-overlapped interval).
// Overlapping and adjacent intervals coalesce, so the representation
// stays linear in the number of coverage gaps, not completions.
func (s *IntervalSet) Add(iv Interval) (added int64) {
	if iv.Lo > iv.Hi {
		return 0
	}
	// Find the window of existing intervals that touch or overlap iv
	// (adjacency counts: [1,3] and [4,6] merge into [1,6]).
	first := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= iv.Lo-1 })
	last := first
	for last < len(s.ivs) && s.ivs[last].Lo <= iv.Hi+1 {
		last++
	}
	if first == last {
		// No overlap: plain insertion.
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[first+1:], s.ivs[first:])
		s.ivs[first] = iv
		s.covered += iv.Len()
		return iv.Len()
	}
	merged := iv
	overlapped := int64(0)
	for i := first; i < last; i++ {
		e := s.ivs[i]
		overlapped += e.Len()
		if e.Lo < merged.Lo {
			merged.Lo = e.Lo
		}
		if e.Hi > merged.Hi {
			merged.Hi = e.Hi
		}
	}
	s.ivs[first] = merged
	s.ivs = append(s.ivs[:first+1], s.ivs[last:]...)
	added = merged.Len() - overlapped
	s.covered += added
	return added
}

// Complement returns the ranks of [lo, hi] not in the set, as sorted
// disjoint intervals — the uncovered work a resumed run must execute.
func (s *IntervalSet) Complement(lo, hi int64) []Interval {
	var out []Interval
	cur := lo
	for _, iv := range s.ivs {
		if iv.Hi < cur {
			continue
		}
		if iv.Lo > hi {
			break
		}
		if iv.Lo > cur {
			out = append(out, Interval{Lo: cur, Hi: iv.Lo - 1})
		}
		if iv.Hi+1 > cur {
			cur = iv.Hi + 1
		}
		if cur > hi {
			return out
		}
	}
	if cur <= hi {
		out = append(out, Interval{Lo: cur, Hi: hi})
	}
	return out
}
