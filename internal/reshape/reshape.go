// Package reshape implements the extensions sketched in the paper's
// conclusion (§IX): "the computation of a loop nest from another loop
// nest of a different shape, or the fusion of loop nests of different
// shapes".
//
// Both build directly on ranking/unranking:
//
//   - Reshape maps iteration tuples between two nests of equal
//     cardinality through their common rank: tuple t of the source nest
//     executes as tuple Unrank_dst(Rank_src(t)) of the destination nest.
//     Driving the *destination* shape while computing the *source*
//     body lets a rectangular (or GPU-grid-shaped) loop execute a
//     triangular computation with perfect balance.
//
//   - Fuse concatenates the collapsed ranges of several nests of
//     arbitrary shapes into one range 1..ΣTotal_k, so a single
//     worksharing loop load-balances across all of them at once
//     (classic loop fusion cannot do this unless the shapes match).
package reshape

import (
	"fmt"

	"repro/internal/unrank"
)

// Mapping is a rank-preserving bijection between two iteration spaces of
// equal cardinality.
type Mapping struct {
	src *unrank.Bound
	dst *unrank.Bound
}

// NewMapping builds the bijection between bound source and destination
// spaces. Both must contain the same number of points.
func NewMapping(src, dst *unrank.Bound) (*Mapping, error) {
	if src.Total() != dst.Total() {
		return nil, fmt.Errorf("reshape: cardinality mismatch: %d vs %d", src.Total(), dst.Total())
	}
	return &Mapping{src: src, dst: dst}, nil
}

// Total returns the common cardinality.
func (m *Mapping) Total() int64 { return m.src.Total() }

// SrcToDst writes into dst the destination tuple corresponding to the
// source tuple src (same rank). The source tuple must lie in its domain.
func (m *Mapping) SrcToDst(src, dst []int64) error {
	return m.dst.Unrank(m.src.Rank(src), dst)
}

// DstToSrc is the inverse direction.
func (m *Mapping) DstToSrc(dst, src []int64) error {
	return m.src.Unrank(m.dst.Rank(dst), src)
}

// ForEachPair calls f with every (source, destination) tuple pair in
// rank order. The slices are reused across calls.
func (m *Mapping) ForEachPair(f func(src, dst []int64) bool) error {
	total := m.Total()
	if total == 0 {
		return nil
	}
	sIdx := make([]int64, m.src.Instance().Depth())
	dIdx := make([]int64, m.dst.Instance().Depth())
	if err := m.src.Unrank(1, sIdx); err != nil {
		return err
	}
	if err := m.dst.Unrank(1, dIdx); err != nil {
		return err
	}
	for pc := int64(1); ; pc++ {
		if !f(sIdx, dIdx) {
			return nil
		}
		if pc == total {
			return nil
		}
		if !m.src.Increment(sIdx) || !m.dst.Increment(dIdx) {
			return fmt.Errorf("reshape: space exhausted at rank %d", pc)
		}
	}
}

// Fused is a concatenation of several collapsed iteration spaces into a
// single rank range 1..Total.
type Fused struct {
	parts  []*unrank.Bound
	starts []int64 // starts[k] = first global rank of part k
	total  int64
}

// NewFused concatenates the given bound spaces in order.
func NewFused(parts ...*unrank.Bound) (*Fused, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("reshape: no parts to fuse")
	}
	f := &Fused{parts: parts}
	var off int64
	for _, p := range parts {
		f.starts = append(f.starts, off+1)
		off += p.Total()
	}
	f.total = off
	return f, nil
}

// Total returns the fused cardinality.
func (f *Fused) Total() int64 { return f.total }

// Locate maps a global rank to (part index, local rank).
func (f *Fused) Locate(pc int64) (part int, local int64, err error) {
	if pc < 1 || pc > f.total {
		return 0, 0, fmt.Errorf("reshape: rank %d out of range 1..%d", pc, f.total)
	}
	// Linear scan: the number of fused parts is tiny.
	part = len(f.parts) - 1
	for k := 1; k < len(f.parts); k++ {
		if pc < f.starts[k] {
			part = k - 1
			break
		}
	}
	return part, pc - f.starts[part] + 1, nil
}

// Unrank recovers (part, tuple) for a global rank. idx must be at least
// as long as the deepest part.
func (f *Fused) Unrank(pc int64, idx []int64) (part int, err error) {
	part, local, err := f.Locate(pc)
	if err != nil {
		return 0, err
	}
	d := f.parts[part].Instance().Depth()
	return part, f.parts[part].Unrank(local, idx[:d])
}

// ForRange executes body for global ranks [lo, hi], recovering once per
// part-segment and incrementing inside each part (§V semantics across
// the fused range). body receives the part index and the tuple.
func (f *Fused) ForRange(lo, hi int64, body func(part int, idx []int64) bool) error {
	if lo > hi {
		return nil
	}
	if lo < 1 || hi > f.total {
		return fmt.Errorf("reshape: range [%d,%d] out of 1..%d", lo, hi, f.total)
	}
	maxDepth := 0
	for _, p := range f.parts {
		if d := p.Instance().Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	idx := make([]int64, maxDepth)
	pc := lo
	for pc <= hi {
		part, local, err := f.Locate(pc)
		if err != nil {
			return err
		}
		p := f.parts[part]
		d := p.Instance().Depth()
		segEnd := f.starts[part] + p.Total() - 1
		if segEnd > hi {
			segEnd = hi
		}
		if err := p.Unrank(local, idx[:d]); err != nil {
			return err
		}
		for {
			if !body(part, idx[:d]) {
				return nil
			}
			if pc == segEnd {
				break
			}
			pc++
			if !p.Increment(idx[:d]) {
				return fmt.Errorf("reshape: part %d exhausted at rank %d", part, pc)
			}
		}
		pc = segEnd + 1
	}
	return nil
}
