// Package nonrect is a Go implementation of automatic collapsing of
// non-rectangular loop nests, reproducing Clauss, Altıntaş & Kuhn,
// "Automatic Collapsing of Non-Rectangular Loops" (IPDPS 2017).
//
// Loop collapsing rewrites c perfectly nested parallel loops into a
// single loop pc = 1..Total, which a worksharing runtime can split into
// perfectly balanced contiguous chunks. OpenMP's collapse clause only
// supports rectangular (constant-bound) loops; this library handles any
// nest whose bounds are integer affine combinations of the surrounding
// iterators and size parameters — triangular, tetrahedral, trapezoidal,
// rhomboidal, parallelepiped spaces — by:
//
//  1. computing the ranking Ehrhart polynomial of the nest (the 1-based
//     lexicographic rank of each iteration) by exact symbolic summation;
//  2. inverting it with closed-form radical roots (degrees 1–4, complex
//     intermediates) selected and validated automatically, hardened with
//     an exact integer correction so unranking is always exact;
//  3. executing — or emitting C/Go source for — the collapsed loop with
//     the costly recovery hoisted to once per chunk and cheap
//     lexicographic incrementation in between (§V of the paper), under
//     static, static-chunked, dynamic and guided schedules on a
//     goroutine team.
//
// # Quick start
//
// Collapse the two triangular loops of the paper's correlation example
// and run the body on 8 goroutines with a static schedule:
//
//	n := nonrect.MustNewNest([]string{"N"},
//		nonrect.L("i", "0", "N-1"),
//		nonrect.L("j", "i+1", "N"),
//	)
//	res, err := nonrect.Collapse(n, 2)
//	if err != nil { ... }
//	err = nonrect.CollapsedFor(res, map[string]int64{"N": 1000}, 8,
//		nonrect.Schedule{Kind: nonrect.Static},
//		func(tid int, idx []int64) {
//			i, j := idx[0], idx[1]
//			_ = i + j // ... body ...
//		})
//
// The deeper machinery is exposed through the result value: the ranking
// polynomial (res.Ranking), the iteration-count polynomial (res.Total),
// the symbolic convenient roots (res.Unranker.RootExpr), and exact
// Rank/Unrank queries (res.Unranker.Bind).
//
// The source-to-source tool of the paper lives in cmd/collapsetool; the
// figure-regeneration harness in cmd/benchfig; rank/unrank queries in
// cmd/rankq. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-vs-measured record.
package nonrect

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/autotune"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/ehrhart"
	"repro/internal/faults"
	"repro/internal/nest"
	"repro/internal/omp"
	"repro/internal/poly"
	"repro/internal/reshape"
	"repro/internal/telemetry"
	"repro/internal/transform"
	"repro/internal/unrank"
)

// Typed failure classes of the pipeline and runtime (see internal/faults
// for the full taxonomy). Errors returned by Collapse and the runtime
// entry points wrap these sentinels; test with errors.Is.
var (
	// ErrNonAffine: a loop bound is outside the affine Fig. 5 model.
	ErrNonAffine = faults.ErrNonAffine
	// ErrDegreeTooHigh: the ranking polynomial exceeds radical
	// solvability (degree > 4, §IV.B).
	ErrDegreeTooHigh = faults.ErrDegreeTooHigh
	// ErrOverflow: an exact evaluation exceeds the int64 range.
	ErrOverflow = faults.ErrOverflow
	// ErrNoConvenientRoot: symbolic root selection failed (§IV.A).
	ErrNoConvenientRoot = faults.ErrNoConvenientRoot
	// ErrRecoveryDiverged: index recovery cannot be trusted even after
	// binary-search escalation.
	ErrRecoveryDiverged = faults.ErrRecoveryDiverged
	// ErrCanceled: a context-aware run stopped at a chunk boundary.
	ErrCanceled = faults.ErrCanceled
)

// PanicError is a panic recovered at an API boundary (worker goroutine
// or compile pipeline), carrying the panic value and stack.
type PanicError = faults.PanicError

// AsPanic extracts the *PanicError from an error chain, or nil.
func AsPanic(err error) *PanicError { return faults.AsPanic(err) }

// Collapsible reports whether err is an applicability failure of the
// collapsing technique (non-affine, degree too high, no convenient
// root, overflow) — the class CollapsedForAuto downgrades to an
// uncollapsed parallel loop rather than failing.
func Collapsible(err error) bool { return faults.Collapsible(err) }

// Telemetry is a metrics-and-tracing registry (atomic counters, latency
// histograms, a span/event recorder). Pass one via WithTelemetry to
// observe the compile pipeline and the parallel runtime; see
// internal/telemetry for the report and Chrome-trace exports.
type Telemetry = telemetry.Registry

// NewTelemetry creates an enabled telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// CollapsedStats is the per-run runtime record of an instrumented
// collapsed execution: team-wide recovery counters plus the per-thread
// breakdown (chunks, iterations, busy/recovery/increment time).
type CollapsedStats = omp.CollapsedStats

// ThreadStats is one thread's row of CollapsedStats.PerThread.
type ThreadStats = omp.ThreadStats

// Option configures optional behaviour of Collapse and the runtime
// entry points. All options default to off with near-zero overhead.
type Option func(*config)

type config struct {
	tel    *telemetry.Registry
	verify bool
	cache  *core.CollapseCache
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithTelemetry attaches a telemetry registry: Collapse/CollapseAt emit
// compile-pipeline phase spans, and CollapsedFor/ParallelFor record a
// per-thread chunk timeline plus recovery counters. A nil registry (or
// omitting the option) leaves every hot path uninstrumented.
func WithTelemetry(t *Telemetry) Option {
	return func(c *config) { c.tel = t }
}

// WithVerify makes every per-chunk index recovery re-rank the recovered
// tuple with exact rational arithmetic and escalate to binary search on
// mismatch (returning ErrRecoveryDiverged if even that disagrees): a
// paranoid mode guaranteeing a collapsed run never silently executes a
// wrong tuple, at the cost of one exact polynomial evaluation per
// recovery. Pass it to Collapse/CollapseAt/CollapsedForAuto.
func WithVerify() Option {
	return func(c *config) { c.verify = true }
}

// CollapseCache memoizes compiled collapse artifacts across Collapse
// calls, keyed by the structure of the collapsed band modulo variable
// naming (see core.NestSignature). It is bounded (sharded LRU) and safe
// for concurrent use; construct one with NewCollapseCache and attach it
// per call with WithCache.
type CollapseCache = core.CollapseCache

// CacheStats is a snapshot of a CollapseCache's effectiveness counters.
type CacheStats = core.CacheStats

// NewCollapseCache returns a cache holding at most capacity compiled
// collapse artifacts; capacity <= 0 selects a small default.
func NewCollapseCache(capacity int) *CollapseCache { return core.NewCollapseCache(capacity) }

// WithCache routes Collapse (and the collapse phase of CollapsedForAuto)
// through cache: a structural hit — same nest shape and options modulo
// parameter/iterator spelling — skips the symbolic pipeline entirely and
// adapts the cached artifact to the caller's names. Repeated collapses
// of the same nest shape become cheap lookups; cache.hits /
// cache.misses / cache.evictions counters appear in telemetry when
// WithTelemetry is also given.
func WithCache(cache *CollapseCache) Option {
	return func(c *config) { c.cache = cache }
}

// Nest is a perfect affine loop nest (paper Fig. 5 model).
type Nest = nest.Nest

// Loop is one level of a nest with affine bounds Lower <= idx < Upper.
type Loop = nest.Loop

// Result is a collapsed loop nest: ranking polynomial, total count, and
// the unranking machinery.
type Result = core.Result

// Schedule is an OpenMP-style schedule clause for the runtime.
type Schedule = omp.Schedule

// Schedule kinds (see omp.Kind).
const (
	Static      = omp.Static
	StaticChunk = omp.StaticChunk
	Dynamic     = omp.Dynamic
	Guided      = omp.Guided
	// ScheduleAuto delegates the choice of (schedule, chunk, workers) to
	// the autotuner (see CollapsedForTuned). Passed directly to an
	// untuned entry point it resolves to guided — safe, never optimal.
	ScheduleAuto = omp.ScheduleAuto
)

// Poly is an exact multivariate polynomial over the rationals.
type Poly = poly.Poly

// L builds a loop level from bound expressions; it panics on malformed
// expressions (use nest.Loop literals with poly.Parse for error
// handling).
func L(index, lower, upper string) Loop { return nest.L(index, lower, upper) }

// NewNest builds and validates a nest over the given parameters.
func NewNest(params []string, loops ...Loop) (*Nest, error) { return nest.New(params, loops...) }

// MustNewNest is NewNest but panics on error.
func MustNewNest(params []string, loops ...Loop) *Nest { return nest.MustNew(params, loops...) }

// Collapse builds the collapsed form of the c outermost loops of n: the
// ranking Ehrhart polynomial, its symbolic inverse (with automatically
// selected convenient roots), and the iteration-count polynomial.
// WithTelemetry records per-phase compile spans.
func Collapse(n *Nest, c int, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	return core.CollapseCached(cfg.cache, n, c, unrank.Options{Telemetry: cfg.tel, Verify: cfg.verify})
}

// CollapseBinarySearch is Collapse with the closed-form recovery
// replaced by exact binary search on the ranking polynomial — the
// baseline/oracle mode (no symbolic solving).
func CollapseBinarySearch(n *Nest, c int) (*Result, error) {
	return core.Collapse(n, c, unrank.Options{Mode: unrank.ModeBinarySearch})
}

// CollapseTable is Collapse with the closed-form recovery replaced by
// precomputed per-level breakpoint tables (unrank.ModeTable): recovery
// is an O(log depth) monotone table lookup with an exact short
// correction, bit-identical to binary search but without per-query
// polynomial solving. Like the binary-search oracle it needs no
// symbolic root, so it also covers nests whose ranking degree exceeds
// radical solvability (degree > 4).
func CollapseTable(n *Nest, c int, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	return core.CollapseCached(cfg.cache, n, c,
		unrank.Options{Mode: unrank.ModeTable, Telemetry: cfg.tel, Verify: cfg.verify})
}

// CollapseAt collapses c successive loops starting at level from
// (0-based); the surrounding iterators become symbolic parameters of the
// ranking polynomial, bound per outer iteration via res.Unranker.Bind.
func CollapseAt(n *Nest, from, c int, opts ...Option) (*Result, error) {
	cfg := buildConfig(opts)
	return core.CollapseAt(n, from, c, unrank.Options{Telemetry: cfg.tel, Verify: cfg.verify})
}

// CollapsedFor executes the collapsed iteration space on a goroutine
// team with the §V once-per-chunk recovery scheme. body receives the
// worker id and the recovered original indices (slice reused per
// worker).
func CollapsedFor(res *Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64), opts ...Option) error {
	cfg := buildConfig(opts)
	if cfg.tel == nil {
		return omp.CollapsedFor(res, params, threads, sched, body)
	}
	_, err := omp.CollapsedForTelemetry(res, params, threads, sched, cfg.tel, body)
	return err
}

// CollapsedForCtx is CollapsedFor with cooperative cancellation: ctx is
// checked at every chunk boundary (never mid-chunk), so cancellation
// stops the team promptly without slowing the hot loop. A canceled run
// returns an error wrapping ErrCanceled; a worker panic returns an
// error carrying a *PanicError with the worker's stack.
func CollapsedForCtx(ctx context.Context, res *Result, params map[string]int64, threads int,
	sched Schedule, body func(tid int, idx []int64), opts ...Option) error {
	cfg := buildConfig(opts)
	if cfg.tel == nil {
		return omp.CollapsedForCtx(ctx, res, params, threads, sched, body)
	}
	_, err := omp.CollapsedForTelemetryCtx(ctx, res, params, threads, sched, cfg.tel, body)
	return err
}

// CollapsedForAuto is the self-degrading entry point: it collapses the c
// outermost loops of n and runs the collapsed schedule, but when the
// technique is inapplicable to this nest it degrades gracefully. A
// symbolic-inversion failure (ranking degree above 4, no convenient
// root) first retries in breakpoint-table mode — still collapsed, still
// balanced, counted by the "omp.table_retries" telemetry counter —
// and only a genuinely uncollapsible nest (non-affine bounds, int64
// overflow) falls back to plain parallel worksharing of the outermost
// loop over the original nest: the program still runs, merely without
// the balance guarantee.
// It reports which path executed; a downgrade increments the
// "omp.downgrades" telemetry counter when WithTelemetry is given.
// Errors outside the applicability class (and any runtime error) are
// returned, not downgraded.
func CollapsedForAuto(ctx context.Context, n *Nest, c int, params map[string]int64, threads int,
	sched Schedule, body func(tid int, idx []int64), opts ...Option) (collapsed bool, err error) {
	cfg := buildConfig(opts)
	if c < 1 || c > len(n.Loops) {
		return false, fmt.Errorf("nonrect: collapse depth %d out of range [1,%d]", c, len(n.Loops))
	}
	res, cerr := core.CollapseCached(cfg.cache, n, c, unrank.Options{Telemetry: cfg.tel, Verify: cfg.verify})
	if cerr == nil {
		return true, CollapsedForCtx(ctx, res, params, threads, sched, body, opts...)
	}
	if !faults.Collapsible(cerr) {
		return false, cerr
	}
	// Symbolic inversion failed but the nest may still collapse: the
	// breakpoint-table mode needs no convenient root and accepts any
	// degree, so degree-above-radical and root-selection failures get a
	// second chance before the balance guarantee is surrendered.
	if errors.Is(cerr, faults.ErrDegreeTooHigh) || errors.Is(cerr, faults.ErrNoConvenientRoot) {
		res, terr := core.CollapseCached(cfg.cache, n, c,
			unrank.Options{Mode: unrank.ModeTable, Telemetry: cfg.tel, Verify: cfg.verify})
		if terr == nil {
			if cfg.tel != nil {
				cfg.tel.Counter("omp.table_retries").Inc()
			}
			return true, CollapsedForCtx(ctx, res, params, threads, sched, body, opts...)
		}
		if !faults.Collapsible(terr) {
			return false, terr
		}
	}
	if cfg.tel != nil {
		cfg.tel.Counter("omp.downgrades").Inc()
	}
	// Worksharing the outermost loop needs only the c loops the caller
	// asked to run (bounds of loop k reference levels < k only, so the
	// prefix is self-contained); body still sees idx of length c.
	sub := &nest.Nest{Params: n.Params, Loops: n.Loops[:c]}
	return false, omp.UncollapsedFor(ctx, sub, params, threads, sched, body)
}

// Tuner plans (schedule, chunk, workers) triples for collapsed nests by
// simulation against a measured cost model — see internal/autotune. One
// Tuner should be shared process-wide: it caches plans keyed by nest
// shape × parameter bucket × core count and refines them online from
// observed makespans.
type Tuner = autotune.Tuner

// TunerOptions configure a Tuner; the zero value works.
type TunerOptions = autotune.Options

// TunedRun records one autotuned execution: the plan in effect, whether
// it came from the cache, the measured wall time, and the per-thread
// runtime breakdown.
type TunedRun = autotune.Run

// Decision is a planner-chosen (schedule, chunk, workers) triple with
// its simulated makespan.
type Decision = autotune.Decision

// NewTuner returns a Tuner with opts' defaults filled in.
func NewTuner(opts TunerOptions) *Tuner { return autotune.New(opts) }

// defaultTuner backs CollapsedForTuned when the caller passes nil: one
// shared process-wide planner with default options.
var (
	defaultTunerOnce sync.Once
	defaultTunerVal  *Tuner
)

func defaultTuner() *Tuner {
	defaultTunerOnce.Do(func() { defaultTunerVal = autotune.New(autotune.Options{}) })
	return defaultTunerVal
}

// CollapsedForTuned executes the collapsed space under the tuner's
// chosen (schedule, chunk, workers) triple instead of a caller-picked
// schedule. The first run of a nest shape plans by simulation against
// its measured work vector (cached thereafter); every run feeds its
// observed makespan back, so a plan whose prediction drifts more than
// the configured deviation is re-planned. The visited iteration
// multiset is identical to any static schedule — only scheduling
// differs. A nil tuner uses a shared process-wide default.
func CollapsedForTuned(ctx context.Context, tuner *Tuner, res *Result, params map[string]int64,
	body func(tid int, idx []int64)) (TunedRun, error) {
	if tuner == nil {
		tuner = defaultTuner()
	}
	return tuner.CollapsedFor(ctx, res, params, body)
}

// CollapsedForStats is CollapsedFor returning the per-thread runtime
// breakdown (chunks, iterations, recovery vs increment time, unrank
// counters); pass WithTelemetry to additionally record the chunk
// timeline as trace events.
func CollapsedForStats(res *Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, idx []int64), opts ...Option) (CollapsedStats, error) {
	cfg := buildConfig(opts)
	return omp.CollapsedForTelemetry(res, params, threads, sched, cfg.tel, body)
}

// RangeStats is the range-batched engine's event record: flat innermost
// runs handed to the body, outer-prefix carries between them (the only
// points where bounds are re-evaluated), and iterations covered.
type RangeStats = core.RangeStats

// CollapsedForRanges executes the collapsed space with the range-batched
// §V engine — the fastest execution path. Each chunk performs one costly
// recovery; the body then receives maximal flat innermost runs:
// body(tid, pc, prefix, lo, hi) covers collapsed ranks pc..pc+(hi-lo)-1
// whose tuples share the outer prefix (levels 0..C-2, slice reused per
// worker) and take every innermost value lo <= i < hi. The caller's
// innermost loop is therefore a plain counted loop with no per-iteration
// runtime calls. WithTelemetry publishes the engine counters
// ("omp.range_batches", "omp.range_carries", "omp.iterations").
func CollapsedForRanges(res *Result, params map[string]int64, threads int, sched Schedule,
	body func(tid int, pc int64, prefix []int64, lo, hi int64), opts ...Option) error {
	cfg := buildConfig(opts)
	if cfg.tel == nil {
		return omp.CollapsedForRanges(res, params, threads, sched, body)
	}
	_, err := omp.CollapsedForRangesStats(res, params, threads, sched, cfg.tel, body)
	return err
}

// CollapsedForRangesCtx is CollapsedForRanges with cooperative
// cancellation checked at chunk boundaries (never inside a run).
func CollapsedForRangesCtx(ctx context.Context, res *Result, params map[string]int64,
	threads int, sched Schedule, body func(tid int, pc int64, prefix []int64, lo, hi int64)) error {
	return omp.CollapsedForRangesCtx(ctx, res, params, threads, sched, body)
}

// CollapsedForSIMD executes the collapsed space with the §VI.A batch
// scheme: body receives up to vlength consecutive index tuples.
func CollapsedForSIMD(res *Result, params map[string]int64, threads, vlength int,
	body func(tid int, batch [][]int64)) error {
	return omp.CollapsedForSIMD(res, params, threads, vlength, body)
}

// CollapsedForWarp executes the collapsed space with the §VI.B GPU-warp
// scheme: W lanes, each running iterations strided by W.
func CollapsedForWarp(res *Result, params map[string]int64, w int,
	body func(lane int, pc int64, idx []int64)) error {
	return omp.CollapsedForWarp(res, params, w, body)
}

// ParallelFor is the plain worksharing loop (the paper's baselines):
// body(tid, i) runs for every i in [lo, hi) under the schedule.
// WithTelemetry records each chunk as a trace event; without it the hot
// loop is completely uninstrumented.
func ParallelFor(threads int, lo, hi int64, sched Schedule, body func(tid int, i int64), opts ...Option) {
	cfg := buildConfig(opts)
	if cfg.tel == nil {
		omp.ParallelFor(threads, lo, hi, sched, body)
		return
	}
	omp.ParallelForTelemetry(threads, lo, hi, sched, cfg.tel, body)
}

// ParallelForCtx is ParallelFor with cooperative cancellation at chunk
// boundaries and worker panics returned as errors carrying *PanicError.
func ParallelForCtx(ctx context.Context, threads int, lo, hi int64, sched Schedule,
	body func(tid int, i int64)) error {
	return omp.ParallelForCtx(ctx, threads, lo, hi, sched, body)
}

// Team is a persistent worker pool (OpenMP-style thread team) for
// programs running many parallel regions; see omp.Team.
type Team = omp.Team

// NewTeam starts a persistent team of n workers; Close it when done.
func NewTeam(n int) *Team { return omp.NewTeam(n) }

// Ranking returns the ranking Ehrhart polynomial of a nest (§III).
func Ranking(n *Nest) *Poly { return ehrhart.Ranking(n) }

// Count returns the iteration-count (Ehrhart) polynomial of a nest.
func Count(n *Nest) *Poly { return ehrhart.Count(n) }

// ParseC parses an OpenMP-annotated C loop nest (the collapsetool front
// end): the pragma's collapse(c) clause selects the loops, free
// identifiers become parameters, and the body is kept as text.
func ParseC(src string) (*cparse.Program, error) { return cparse.Parse(src) }

// CodegenOptions configure source emission; see codegen.Options.
type CodegenOptions = codegen.Options

// Code-generation schemes (see codegen.Scheme).
const (
	SchemePerIteration   = codegen.PerIteration
	SchemeFirstIteration = codegen.FirstIteration
	SchemeChunked        = codegen.Chunked
	SchemeSIMD           = codegen.SIMD
	SchemeWarp           = codegen.Warp
)

// EmitC renders the collapsed nest as C source (paper Figs. 3, 4, 7 and
// the §V/§VI schemes).
func EmitC(res *Result, opts CodegenOptions) (string, error) { return codegen.EmitC(res, opts) }

// EmitGo renders the collapsed nest as a compilable serial Go function.
func EmitGo(res *Result, opts CodegenOptions) (string, error) { return codegen.EmitGo(res, opts) }

// GoFile wraps emitted Go functions into a complete source file.
func GoFile(pkg string, funcs ...string) string { return codegen.GoFile(pkg, funcs...) }

// Mapping is a rank-preserving bijection between two equal-cardinality
// iteration spaces (the paper's §IX "computation of a loop nest from
// another loop nest of a different shape" extension).
type Mapping = reshape.Mapping

// Fused concatenates several collapsed spaces into one rank range (the
// §IX "fusion of loop nests of different shapes" extension).
type Fused = reshape.Fused

// NewMapping builds the rank-preserving bijection between two bound
// spaces of equal cardinality. Bind a space with res.Unranker.Bind.
func NewMapping(src, dst *unrank.Bound) (*Mapping, error) { return reshape.NewMapping(src, dst) }

// NewFused concatenates the given bound spaces in order.
func NewFused(parts ...*unrank.Bound) (*Fused, error) { return reshape.NewFused(parts...) }

// Transformed is a nest produced by an affine loop transformation,
// together with the map back to original iteration tuples.
type Transformed = transform.Transformed

// Normalize shifts every loop's lower bound to 0 (the paper's §IV.A
// normal form), substituting through the deeper bounds.
func Normalize(n *Nest) (*Transformed, error) { return transform.Normalize(n) }

// Skew applies the unimodular skewing j' = j + factor·i (level `level`,
// outer loop `wrt`) — the Pluto-style transformation producing the
// rhomboidal and parallelepiped shapes the collapser targets.
func Skew(n *Nest, level, wrt int, factor int64) (*Transformed, error) {
	return transform.Skew(n, level, wrt, factor)
}

// Reverse flips a loop's direction (valid for dependence-free loops).
func Reverse(n *Nest, level int) (*Transformed, error) { return transform.Reverse(n, level) }
