package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func captureRun(t *testing.T, fig string, quick bool) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := run(fig, 12, quick, false, 12, 200, 5, false)
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestBenchfigFig2(t *testing.T) {
	out, err := captureRun(t, "2", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 2") || !strings.Contains(out, "thread  0") {
		t.Errorf("fig 2 output:\n%s", out)
	}
}

func TestBenchfigFig8(t *testing.T) {
	out, err := captureRun(t, "8", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pc=10") {
		t.Errorf("fig 8 output:\n%s", out)
	}
}

func TestBenchfigFig9Quick(t *testing.T) {
	out, err := captureRun(t, "9", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig. 9", "correlation_tiled", "ltmp", "gain vs dyn"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig 9 output missing %q", frag)
		}
	}
}

func TestBenchfigFig10Quick(t *testing.T) {
	out, err := captureRun(t, "10", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Fig. 10", "symm_full", "overhead(%)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("fig 10 output missing %q", frag)
		}
	}
}
