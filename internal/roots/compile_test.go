package roots

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/poly"
)

// TestCompileMatchesEval verifies the compiled evaluator agrees with the
// interpreted Expr.Eval on the solver output for random polynomials of
// every degree — this exercises every node kind the solvers emit
// (Num, PolyExpr, Add, Sub, Mul, Div, Neg, Pow with integer and
// fractional exponents).
func TestCompileMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	vars := []string{"N", "pc"}
	for trial := 0; trial < 300; trial++ {
		deg := 1 + r.Intn(4)
		coeffs := make([]*poly.Poly, deg+1)
		for i := range coeffs {
			// Mix constant and parameter-dependent coefficients.
			c := poly.Int(int64(r.Intn(9) - 4))
			if r.Intn(3) == 0 {
				c = c.Add(poly.Var("N").ScaleInt(int64(r.Intn(3) - 1)))
			}
			coeffs[i] = c
		}
		if coeffs[deg].IsZero() {
			coeffs[deg] = poly.Int(1)
		}
		// Inject pc into the constant term, as recovery equations do.
		coeffs[0] = coeffs[0].Sub(poly.Var("pc"))
		exprs, err := Solve(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		env := map[string]float64{
			"N":  float64(r.Intn(20) + 2),
			"pc": float64(r.Intn(100) + 1),
		}
		vals := []float64{env["N"], env["pc"]}
		for k, e := range exprs {
			fn, err := Compile(e, vars)
			if err != nil {
				t.Fatalf("Compile root %d: %v", k, err)
			}
			a := e.Eval(env)
			b := fn(vals)
			if cmplx.IsNaN(a) && cmplx.IsNaN(b) {
				continue
			}
			if cmplx.IsInf(a) && cmplx.IsInf(b) {
				continue
			}
			if d := cmplx.Abs(a - b); d > 1e-9*(1+cmplx.Abs(a)) {
				t.Fatalf("trial %d root %d: interpreted %v vs compiled %v", trial, k, a, b)
			}
		}
	}
}

func TestCompileIntegerPowers(t *testing.T) {
	cases := []struct {
		e    Expr
		want complex128
	}{
		{Pow{Base: NumInt(3), Num: 4, Den: 1}, 81},
		{Pow{Base: NumInt(2), Num: -2, Den: 1}, 0.25},
		{Pow{Base: NumInt(8), Num: 1, Den: 3}, 2},
		{Pow{Base: NumInt(16), Num: 3, Den: 4}, 8},
		{Sqrt(NumInt(-4)), complex(0, 2)},
	}
	for _, c := range cases {
		fn, err := Compile(c.e, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := fn(nil); cmplx.Abs(got-c.want) > 1e-12 {
			t.Errorf("Compile(%s) = %v, want %v", String(c.e), got, c.want)
		}
	}
}

func TestCompileErrorsAndMust(t *testing.T) {
	// A polynomial with a variable outside the order fails to compile.
	e := P(poly.Var("z"))
	if _, err := Compile(e, []string{"x"}); err == nil {
		t.Error("unknown variable accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile(e, []string{"x"})
}

func TestQuarticPrinting(t *testing.T) {
	// Quartic root expressions exercise the remaining printers (nested
	// Pow, Div by non-constant, Neg chains) in all three dialects.
	coeffs := []*poly.Poly{
		poly.MustParse("1 - pc"), poly.Int(2), poly.Int(1), poly.Int(1), poly.Rat(1, 4),
	}
	exprs, err := Solve(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exprs {
		if String(e) == "" || CString(e) == "" || GoString(e) == "" {
			t.Fatal("empty rendering")
		}
	}
	// Non-constant leading coefficient forces Div nodes.
	coeffsNC := []*poly.Poly{
		poly.MustParse("-pc"), poly.Int(1), poly.Int(0), poly.Int(0), poly.Var("N"),
	}
	exprsNC, err := Solve(coeffsNC)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exprsNC {
		fn, err := Compile(e, []string{"N", "pc"})
		if err != nil {
			t.Fatal(err)
		}
		x := fn([]float64{2, 5})
		// residual check: N*x^4 + x - pc = 0 with N=2, pc=5
		res := 2*x*x*x*x + x - 5
		if !cmplx.IsNaN(x) && cmplx.Abs(res) > 1e-6 {
			t.Errorf("root %v residual %v", x, res)
		}
	}
}

func TestCubicNonConstantLeading(t *testing.T) {
	// N·x³ − pc = 0 exercises the Div-by-polynomial path of the cubic.
	coeffs := []*poly.Poly{
		poly.MustParse("-pc"), poly.Int(0), poly.Int(0), poly.Var("N"),
	}
	exprs, err := Solve(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range exprs {
		x := e.Eval(map[string]float64{"N": 2, "pc": 16}) // x³ = 8 -> 2
		if cmplx.Abs(x-2) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("real cube root 2 not among candidates")
	}
}
