package benchcmp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// syntheticOverhead builds an overhead report whose ns metrics are
// scaled by nsScale (>1 = slower) for the named kernels only.
func syntheticOverhead(nsScale float64, scaled ...string) *experiments.OverheadReport {
	isScaled := func(k string) float64 {
		for _, s := range scaled {
			if s == k {
				return nsScale
			}
		}
		return 1
	}
	rep := &experiments.OverheadReport{Suite: "overhead", Meta: experiments.NewBenchMeta()}
	for _, k := range []string{"correlation", "syrk"} {
		f := isScaled(k)
		rep.Rows = append(rep.Rows, experiments.OverheadRow{
			Kernel:                k,
			Params:                map[string]int64{"N": 100},
			OriginalNsPerIter:     1.5 * f,
			RecoverEveryNsPerIter: 80 * f,
			Schedules: []experiments.OverheadSched{{
				Schedule:      "static",
				PerIter:       experiments.OverheadEngine{NsPerIter: 12 * f},
				Ranges:        experiments.OverheadEngine{NsPerIter: 3 * f},
				SpeedupRanges: 4 / f,
			}},
		})
	}
	return rep
}

func decode(t *testing.T, rep *experiments.OverheadReport) *Run {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestIdenticalRunsNoRegression(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1))
	rep, err := Compare(old, cur, Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("identical runs produced regressions: %v", regs)
	}
	if len(rep.Deltas) == 0 {
		t.Error("identical runs produced no comparisons at all")
	}
	if len(rep.Skipped) != 0 {
		t.Errorf("identical runs skipped: %v", rep.Skipped)
	}
}

func TestInjectedRegressionFlagged(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1.25, "syrk")) // 25% slower syrk
	rep, err := Compare(old, cur, Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) == 0 {
		t.Fatal("25% regression with 20% threshold not flagged")
	}
	for _, d := range regs {
		if d.Kernel != "syrk" {
			t.Errorf("regression attributed to %s/%s, only syrk was degraded", d.Kernel, d.Metric)
		}
		if d.WorsePct <= 20 {
			t.Errorf("%s/%s WorsePct = %.1f, want > 20", d.Kernel, d.Metric, d.WorsePct)
		}
	}
	// The degraded speedup (4 -> 3.2, 20% down) sits exactly at the
	// threshold, so the flagged metrics are the ns ones (25% up).
	for _, d := range rep.Deltas {
		if d.Kernel == "correlation" && d.Regression {
			t.Errorf("untouched kernel flagged: %+v", d)
		}
	}
}

func TestBelowThresholdPasses(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1.10, "syrk")) // 10% slower
	rep, err := Compare(old, cur, Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("10%% worsening flagged at 20%% threshold: %v", regs)
	}
}

func TestSpeedupDirection(t *testing.T) {
	// Speedups regress when they go DOWN; improvements must not flag.
	oldRep := syntheticOverhead(1)
	curRep := syntheticOverhead(1)
	curRep.Rows[0].Schedules[0].SpeedupRanges = 2 // was 4: halved
	curRep.Rows[1].Schedules[0].SpeedupRanges = 9 // was 4: better
	rep, err := Compare(decode(t, oldRep), decode(t, curRep), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	var flagged []string
	for _, d := range rep.Regressions() {
		flagged = append(flagged, d.Kernel+"/"+d.Metric)
	}
	if len(flagged) != 1 || !strings.Contains(flagged[0], "correlation/speedup_ranges") {
		t.Errorf("flagged = %v, want exactly correlation's halved speedup", flagged)
	}
}

func TestParamsMismatchSkipped(t *testing.T) {
	oldRep := syntheticOverhead(1)
	curRep := syntheticOverhead(3, "syrk") // would be a huge regression...
	curRep.Rows[1].Params = map[string]int64{"N": 500}
	rep, err := Compare(decode(t, oldRep), decode(t, curRep), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("param-mismatched kernel compared anyway: %v", regs)
	}
	found := false
	for _, s := range rep.Skipped {
		if strings.Contains(s, "syrk") && strings.Contains(s, "params differ") {
			found = true
		}
	}
	if !found {
		t.Errorf("no params-differ skip note; skipped = %v", rep.Skipped)
	}
}

func TestKernelThresholdOverride(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1.25, "syrk"))
	rep, err := Compare(old, cur, Options{
		ThresholdPct:       20,
		KernelThresholdPct: map[string]float64{"syrk": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("override to 50%% still flagged: %v", regs)
	}
}

func TestMetricFilter(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1.25, "syrk"))
	rep, err := Compare(old, cur, Options{ThresholdPct: 20, MetricFilter: []string{"speedup"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Deltas {
		if !strings.Contains(d.Metric, "speedup") {
			t.Errorf("filter leaked metric %s", d.Metric)
		}
	}
	if len(rep.Deltas) == 0 {
		t.Error("filter matched nothing")
	}
}

// TestSchemaV1Document: a pre-meta (v1) document loads, reports
// schema version 1, and backfills meta from the legacy top-level
// fields — and a v1 baseline compares cleanly against a v2 candidate.
func TestSchemaV1Document(t *testing.T) {
	v1 := `{
		"suite": "overhead",
		"go_version": "go1.21.0",
		"gomaxprocs": 8,
		"threads": 1,
		"quick": false,
		"reps": 3,
		"kernels": [{
			"kernel": "correlation",
			"params": {"N": 100},
			"iterations": 4950,
			"original_ns_per_iter": 1.5,
			"recover_every_ns_per_iter": 80,
			"ranges_overhead_vs_original_pct": 5,
			"schedules": [{
				"schedule": "static",
				"per_iteration": {"ns_per_iter": 12},
				"range_batched": {"ns_per_iter": 3},
				"speedup_ranges_vs_per_iter": 4
			}]
		}]
	}`
	run, err := Decode(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if run.SchemaVersion != 1 {
		t.Errorf("SchemaVersion = %d, want 1", run.SchemaVersion)
	}
	if run.Meta.GoVersion != "go1.21.0" || run.Meta.GOMAXPROCS != 8 {
		t.Errorf("v1 meta backfill = %+v", run.Meta)
	}
	v2 := decode(t, syntheticOverhead(1))
	if v2.SchemaVersion != experiments.BenchSchemaVersion {
		t.Errorf("v2 SchemaVersion = %d, want %d", v2.SchemaVersion, experiments.BenchSchemaVersion)
	}
	rep, err := Compare(run, v2, Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("v1-vs-v2 of equal numbers regressed: %v", regs)
	}
	// syrk exists only in the v2 run: noted, not compared.
	found := false
	for _, s := range rep.Skipped {
		if strings.Contains(s, "syrk") && strings.Contains(s, "no baseline") {
			found = true
		}
	}
	if !found {
		t.Errorf("new kernel not noted; skipped = %v", rep.Skipped)
	}
}

func TestCompileSuite(t *testing.T) {
	rep := &experiments.CompileReport{
		Suite: "compile",
		Meta:  experiments.NewBenchMeta(),
		Rows: []experiments.CompileRow{{
			Kernel: "correlation", Depth: 3, C: 2,
			ColdSerialUs: 100, ColdParallelUs: 40, CachedUs: 5,
			SpeedupParallel: 2.5, SpeedupCached: 8,
		}},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	k := run.Kernel("correlation")
	if k == nil {
		t.Fatal("compile kernel missing")
	}
	m := k.metric("speedup_cached_vs_cold")
	if m == nil || m.Value != 8 || !m.HigherIsBetter {
		t.Errorf("speedup_cached_vs_cold = %+v", m)
	}
	if m := k.metric("cached_us"); m == nil || m.HigherIsBetter {
		t.Errorf("cached_us direction wrong: %+v", m)
	}
}

// syntheticServe builds a serving-trajectory report with the given p99
// and achieved-QPS scaling (scale > 1 = slower and slower-serving runs
// diverge in opposite directions per metric sign).
func syntheticServe(p99Scale, qpsScale float64) *experiments.ServeReport {
	rep := &experiments.ServeReport{
		Suite: "serve",
		Meta:  experiments.NewBenchMeta(),
		Nest:  "i=0:N-1; j=i+1:N",
		Mix:   "rank=3,unrank=3,count=1",
	}
	for _, ph := range []struct {
		name string
		qps  float64
	}{{"0.5x", 200}, {"1x", 400}, {"2x", 800}} {
		rep.Rows = append(rep.Rows, experiments.ServeRow{
			Phase:       ph.name,
			TargetQPS:   ph.qps,
			OfferedQPS:  ph.qps,
			AchievedQPS: ph.qps * 0.9 * qpsScale,
			DurationS:   3,
			Sent:        int64(ph.qps * 3),
			OK:          int64(ph.qps * 2.7),
			P50Ms:       0.4 * p99Scale,
			P95Ms:       1.1 * p99Scale,
			P99Ms:       2.5 * p99Scale,
			ShedRate:    0.05,
		})
	}
	return rep
}

func decodeServe(t *testing.T, rep *experiments.ServeReport) *Run {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestServeSuite checks the BENCH_PR7-style serving trajectory loads,
// keys phases by target QPS, and diffs direction-aware: p99 regresses
// upward, achieved QPS regresses downward.
func TestServeSuite(t *testing.T) {
	run := decodeServe(t, syntheticServe(1, 1))
	if run.Suite != "serve" || len(run.Kernels) != 3 {
		t.Fatalf("decoded run: suite %q, %d kernels", run.Suite, len(run.Kernels))
	}
	k := run.Kernel("phase:2x")
	if k == nil {
		t.Fatal("phase:2x kernel missing")
	}
	if k.Params["target_qps"] != 800 {
		t.Fatalf("phase:2x params = %v", k.Params)
	}
	if m := k.metric("achieved_qps"); m == nil || !m.HigherIsBetter {
		t.Fatalf("achieved_qps direction wrong: %+v", m)
	}
	if m := k.metric("p99_ms"); m == nil || m.HigherIsBetter {
		t.Fatalf("p99_ms direction wrong: %+v", m)
	}

	// Identical runs: no regression.
	rep, err := Compare(run, decodeServe(t, syntheticServe(1, 1)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical serve runs regressed: %v", regs)
	}

	// p99 doubled: latency metrics regress in every phase.
	rep, err = Compare(run, decodeServe(t, syntheticServe(2, 1)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Regressions() {
		if d.Metric == "p99_ms" {
			found = true
		}
		if d.Metric == "achieved_qps" {
			t.Fatalf("unchanged achieved_qps flagged: %+v", d)
		}
	}
	if !found {
		t.Fatalf("doubled p99 not flagged; deltas = %+v", rep.Deltas)
	}

	// Achieved QPS halved: throughput regresses (direction flipped).
	rep, err = Compare(run, decodeServe(t, syntheticServe(1, 0.5)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range rep.Regressions() {
		if d.Metric == "achieved_qps" {
			found = true
		}
	}
	if !found {
		t.Fatalf("halved QPS not flagged; deltas = %+v", rep.Deltas)
	}
}

func TestSuiteMismatch(t *testing.T) {
	o := decode(t, syntheticOverhead(1))
	c := &Run{Suite: "compile"}
	if _, err := Compare(o, c, Options{}); err == nil {
		t.Error("suite mismatch not rejected")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"no":"suite"}`)); err == nil {
		t.Error("suiteless document accepted")
	}
	if _, err := Decode(strings.NewReader(`{"suite":"mystery"}`)); err == nil {
		t.Error("unknown suite accepted")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}

func TestRender(t *testing.T) {
	old := decode(t, syntheticOverhead(1))
	cur := decode(t, syntheticOverhead(1.5, "syrk"))
	rep, err := Compare(old, cur, Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Render(&buf, rep)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "syrk") {
		t.Errorf("render missing regression flag:\n%s", out)
	}
}

// syntheticDist builds a dist document with throughput scaled by
// mitersScale and recovery overhead scaled by overScale.
func syntheticDist(mitersScale, overScale float64) *experiments.DistReport {
	rep := &experiments.DistReport{
		Suite: "dist",
		Meta:  experiments.NewBenchMeta(),
		Nest:  "triangle",
	}
	for _, w := range []int{1, 2, 4} {
		rep.Rows = append(rep.Rows, experiments.DistRow{
			Scenario: fmt.Sprintf("clean/w=%d", w), Workers: w, Shards: 8 * w,
			Total: 100000, Seconds: 0.1,
			MIterPerSec: float64(w) * 10 * mitersScale,
		})
	}
	rep.Rows = append(rep.Rows, experiments.DistRow{
		Scenario: "chaos-kill", Workers: 4, Shards: 32,
		Total: 100000, Seconds: 0.15,
		MIterPerSec: 30 * mitersScale,
		OverheadPct: 50 * overScale,
		Retries:     7,
	})
	return rep
}

func decodeDist(t *testing.T, rep *experiments.DistReport) *Run {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestDistSuite checks the BENCH_PR8-style sharded-execution document
// loads, keys scenarios by worker count and problem size, and diffs
// direction-aware: throughput regresses downward, recovery overhead
// regresses upward.
func TestDistSuite(t *testing.T) {
	run := decodeDist(t, syntheticDist(1, 1))
	if run.Suite != "dist" || len(run.Kernels) != 4 {
		t.Fatalf("decoded run: suite %q, %d kernels", run.Suite, len(run.Kernels))
	}
	k := run.Kernel("dist:clean/w=4")
	if k == nil {
		t.Fatal("dist:clean/w=4 kernel missing")
	}
	if k.Params["workers"] != 4 || k.Params["total"] != 100000 {
		t.Fatalf("clean/w=4 params = %v", k.Params)
	}
	if m := k.metric("miter_per_sec"); m == nil || !m.HigherIsBetter {
		t.Fatalf("miter_per_sec direction wrong: %+v", m)
	}
	if m := run.Kernel("dist:chaos-kill").metric("overhead_pct"); m == nil || m.HigherIsBetter {
		t.Fatalf("overhead_pct direction wrong: %+v", m)
	}

	rep, err := Compare(run, decodeDist(t, syntheticDist(1, 1)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical dist runs regressed: %v", regs)
	}

	// Throughput halved: every scenario's miter_per_sec regresses.
	rep, err = Compare(run, decodeDist(t, syntheticDist(0.5, 1)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Regressions() {
		if d.Metric == "miter_per_sec" {
			found = true
		}
	}
	if !found {
		t.Fatalf("halved throughput not flagged; deltas = %+v", rep.Deltas)
	}

	// Recovery overhead doubled: chaos scenario regresses; the clean
	// rows (overhead 0, not comparable) stay skipped, not flagged.
	rep, err = Compare(run, decodeDist(t, syntheticDist(1, 2)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range rep.Regressions() {
		if d.Metric == "overhead_pct" && d.Kernel == "dist:chaos-kill" {
			found = true
		}
	}
	if !found {
		t.Fatalf("doubled recovery overhead not flagged; deltas = %+v", rep.Deltas)
	}
}

// syntheticInvert builds an invert report whose speedups are scaled by
// spScale (<1 = the table tier lost ground).
func syntheticInvert(spScale float64) *experiments.InvertReport {
	rep := &experiments.InvertReport{
		Suite: "invert",
		Meta:  experiments.NewBenchMeta(),
	}
	for _, n := range []string{"triangular2", "simplex5-deg5"} {
		row := experiments.InvertRow{
			Nest:   n,
			Params: map[string]int64{"N": 4096},
			Depth:  2,
		}
		for _, chunk := range []int64{1, 4096} {
			row.Chunks = append(row.Chunks, experiments.InvertChunk{
				ChunkPC:         chunk,
				Recoveries:      1000,
				SearchNs:        3000,
				TableNs:         300 / spScale,
				BatchNs:         20 / spScale,
				SearchRecPerSec: 1e9 / 3000,
				TableRecPerSec:  1e9 / 300 * spScale,
				BatchRecPerSec:  1e9 / 20 * spScale,
				SpeedupTable:    10 * spScale,
				SpeedupBatch:    150 * spScale,
			})
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

func decodeInvert(t *testing.T, rep *experiments.InvertReport) *Run {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestInvertSuite(t *testing.T) {
	run := decodeInvert(t, syntheticInvert(1))
	if run.Suite != "invert" || len(run.Kernels) != 4 {
		t.Fatalf("decoded run: suite %q, %d kernels", run.Suite, len(run.Kernels))
	}
	k := run.Kernel("invert:simplex5-deg5/chunk=1")
	if k == nil {
		t.Fatal("invert:simplex5-deg5/chunk=1 kernel missing")
	}
	if k.Params["N"] != 4096 {
		t.Fatalf("params = %v", k.Params)
	}
	// Every invert metric is a throughput or a speedup: higher is better.
	for _, name := range []string{"search_recoveries_per_sec", "table_recoveries_per_sec",
		"batch_recoveries_per_sec", "speedup_table_vs_search", "speedup_batch_vs_search"} {
		if m := k.metric(name); m == nil || !m.HigherIsBetter {
			t.Fatalf("%s direction wrong: %+v", name, m)
		}
	}

	rep, err := Compare(run, decodeInvert(t, syntheticInvert(1)), Options{ThresholdPct: 20})
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("identical invert runs regressed: %v", regs)
	}

	// Table tier halved its advantage: the speedup metrics regress even
	// under the gate's filter.
	rep, err = Compare(run, decodeInvert(t, syntheticInvert(0.5)),
		Options{ThresholdPct: 20, MetricFilter: []string{"speedup"}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Regressions() {
		if d.Metric == "speedup_table_vs_search" && d.Kernel == "invert:simplex5-deg5/chunk=1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("halved table speedup not flagged; deltas = %+v", rep.Deltas)
	}
}

// TestAutotuneSuite checks the BENCH_PR10-style autotuning document
// loads with the right metric directions: ratios are the gated
// machine-independent pair — auto_vs_best regresses up, worst_vs_auto
// regresses down.
func TestAutotuneSuite(t *testing.T) {
	rep := &experiments.AutotuneReport{
		Suite: "autotune",
		Meta:  experiments.NewBenchMeta(),
		Rows: []experiments.AutotuneRow{{
			Kernel: "ltmp", Params: map[string]int64{"N": 500},
			Decision: "guided,64 x12", AutoSec: 0.010,
			BestSpec: "guided,1", BestSec: 0.0095,
			WorstSpec: "dynamic,1", WorstSec: 0.030,
			AutoVsBest: 1.05, WorstVsAuto: 3.0,
		}},
		CacheHits: 1,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.Suite != "autotune" {
		t.Fatalf("suite = %q", run.Suite)
	}
	k := run.Kernel("autotune:ltmp")
	if k == nil {
		t.Fatal("autotune kernel missing")
	}
	if m := k.metric("auto_vs_best"); m == nil || m.Value != 1.05 || m.HigherIsBetter {
		t.Errorf("auto_vs_best = %+v", m)
	}
	if m := k.metric("worst_vs_auto"); m == nil || m.Value != 3.0 || !m.HigherIsBetter {
		t.Errorf("worst_vs_auto = %+v", m)
	}
	if m := k.metric("auto_sec"); m == nil || m.HigherIsBetter {
		t.Errorf("auto_sec direction wrong: %+v", m)
	}
}
