package unrank

import (
	"errors"
	"fmt"

	"repro/internal/faults"
)

// RecoverBatch resolves many collapsed ranks in one pass: out[i] receives
// the iteration tuple of rank pcs[i]. pcs must be sorted ascending
// (duplicates allowed) and every out[i] must have length Depth; the out
// slices are the caller's — steady-state batch recovery allocates
// nothing.
//
// Sorted inputs amortize the per-pc ladder three ways:
//
//   - pc == prev    → the previous tuple is copied;
//   - pc == prev+1  → the previous tuple is advanced lexicographically
//     (the §V incrementation, exact by construction);
//   - otherwise the recovered prefix of the previous tuple is reused:
//     levels whose subtree still contains pc — checked with two exact
//     evaluations of the monotone ranking polynomial — are kept, and
//     only the first level that moved (and everything deeper) goes back
//     through the recovery ladder. Nearby ranks share their table
//     descent prefix, so a batch of chunk starts costs little more than
//     one full recovery plus one cheap tail re-derivation per element.
//
// In verify mode each fully re-recovered tuple is exactly re-ranked as
// in Unrank; copy- and increment-derived tuples are exact by
// construction and skip the check. Errors follow Unrank's contract
// (typed validation errors, faults.ErrOverflow, ErrRecoveryDiverged).
func (b *Bound) RecoverBatch(pcs []int64, out [][]int64) error {
	return b.recoverBatch(0, nil, pcs, out)
}

// RecoverBatchSeeded is RecoverBatch continuing from an already
// recovered tuple: seed must be the exact iteration tuple of rank
// seedPC (typically the tail of a previous batch), and pcs[0] must not
// precede seedPC. The first element then rides the same copy /
// increment / shared-descent fast paths as the rest of the batch
// instead of paying a full ladder recovery — this is what lets the
// §VI.A SIMD driver materialise consecutive batches at pure
// incrementation cost. seed is read, never written.
func (b *Bound) RecoverBatchSeeded(seedPC int64, seed []int64, pcs []int64, out [][]int64) error {
	if len(seed) != b.depth {
		return fmt.Errorf("unrank: batch: seed tuple has length %d, want %d", len(seed), b.depth)
	}
	if seedPC < 1 || seedPC > b.total {
		return fmt.Errorf("unrank: batch: seed pc = %d out of range 1..%d", seedPC, b.total)
	}
	if len(pcs) > 0 && pcs[0] < seedPC {
		return fmt.Errorf("unrank: batch: pcs[0] = %d precedes seed pc %d", pcs[0], seedPC)
	}
	return b.recoverBatch(seedPC, seed, pcs, out)
}

func (b *Bound) recoverBatch(prevPC int64, prev []int64, pcs []int64, out [][]int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, faults.ErrOverflow) {
				err = fmt.Errorf("unrank: batch: %w", e)
				return
			}
			panic(r)
		}
	}()
	if len(out) != len(pcs) {
		return fmt.Errorf("unrank: batch: %d pcs but %d output tuples", len(pcs), len(out))
	}
	d := b.depth
	for i, pc := range pcs {
		if len(out[i]) != d {
			return fmt.Errorf("unrank: batch: output tuple %d has length %d, want %d", i, len(out[i]), d)
		}
		if pc < 1 || pc > b.total {
			return fmt.Errorf("unrank: batch: pcs[%d] = %d out of range 1..%d", i, pc, b.total)
		}
		if i > 0 && pc < pcs[i-1] {
			return fmt.Errorf("unrank: batch: pcs not ascending at %d (%d after %d)", i, pc, pcs[i-1])
		}
	}
	for i, pc := range pcs {
		idx := out[i]
		if prev == nil {
			if err := b.recoverInto(pc, idx); err != nil {
				return err
			}
			prev, prevPC = idx, pc
			continue
		}
		switch pc - prevPC {
		case 0:
			copy(idx, prev)
			prev, prevPC = idx, pc
			continue
		case 1:
			copy(idx, prev)
			if !b.inst.Increment(idx) {
				// pc ≤ total guarantees a successor exists; an exhausted
				// Increment means the previous tuple was corrupt.
				return fmt.Errorf("unrank: batch: iteration space exhausted advancing to pc=%d: %w",
					pc, faults.ErrRecoveryDiverged)
			}
			prev, prevPC = idx, pc
			continue
		}
		copy(idx, prev)
		// Shared-prefix descent: level k is kept iff pc still lies in the
		// subtree of prev's level-k value — rk(prefix, v) ≤ pc and either
		// v+1 is past the level's bound (pc is inside the parent subtree,
		// so the last child must contain it) or rk(prefix, v+1) > pc.
		k := 0
		for ; k < d-1; k++ {
			v := idx[k]
			lo, hi := b.inst.BoundsAt(k, idx)
			if v < lo || v >= hi || b.rkEval(k, v) > pc ||
				(v+1 < hi && b.rkEval(k, v+1) <= pc) {
				break
			}
			b.setLevel(k, v, idx)
		}
		for ; k < d-1; k++ {
			b.setLevel(k, b.recoverLevel(k, pc, idx), idx)
		}
		b.lastLevel(pc, idx)
		if err := b.maybeVerify(pc, idx); err != nil {
			return err
		}
		prev, prevPC = idx, pc
	}
	b.stats.BatchRecoveries += int64(len(pcs))
	return nil
}
