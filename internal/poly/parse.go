package poly

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// Parse builds a polynomial from a textual expression. The grammar
// supports integers, identifiers, parentheses, unary +/-, and the binary
// operators + - * / ^ where '^' takes a non-negative integer literal
// exponent and '/' requires a non-zero constant divisor:
//
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := ('+'|'-') factor | primary ('^' integer)?
//	primary:= integer | identifier | '(' expr ')'
//
// Examples: "(2*i*N + 2*j - i^2 - 3*i)/2", "N^3/6 - N/6".
func Parse(src string) (*Poly, error) {
	p := &parser{src: src}
	p.next()
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("poly: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return expr, nil
}

// MustParse is Parse but panics on error; for expressions in tests and
// table literals.
func MustParse(src string) *Poly {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokInt
	tokIdent
	tokOp // single-char operator or paren
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	off int
	tok token
}

func (p *parser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	ch := p.src[p.off]
	switch {
	case ch >= '0' && ch <= '9':
		for p.off < len(p.src) && p.src[p.off] >= '0' && p.src[p.off] <= '9' {
			p.off++
		}
		p.tok = token{kind: tokInt, text: p.src[start:p.off], pos: start}
	case isIdentStart(ch):
		for p.off < len(p.src) && isIdentCont(p.src[p.off]) {
			p.off++
		}
		p.tok = token{kind: tokIdent, text: p.src[start:p.off], pos: start}
	case strings.ContainsRune("+-*/^()", rune(ch)):
		p.off++
		p.tok = token{kind: tokOp, text: string(ch), pos: start}
	default:
		p.tok = token{kind: tokOp, text: string(ch), pos: start}
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
}

func isIdentCont(ch byte) bool {
	return isIdentStart(ch) || (ch >= '0' && ch <= '9')
}

func (p *parser) parseExpr() (*Poly, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			left = left.Add(right)
		} else {
			left = left.Sub(right)
		}
	}
	return left, nil
}

func (p *parser) parseTerm() (*Poly, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		pos := p.tok.pos
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			left = left.Mul(right)
			continue
		}
		if !right.IsConst() {
			return nil, fmt.Errorf("poly: division by non-constant at offset %d", pos)
		}
		d := right.ConstValue()
		if d.Sign() == 0 {
			return nil, fmt.Errorf("poly: division by zero at offset %d", pos)
		}
		left = left.Scale(new(big.Rat).Inv(d))
	}
	return left, nil
}

func (p *parser) parseFactor() (*Poly, error) {
	if p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		p.next()
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if op == "-" {
			f = f.Neg()
		}
		return f, nil
	}
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "^" {
		p.next()
		if p.tok.kind != tokInt {
			return nil, fmt.Errorf("poly: exponent must be an integer literal at offset %d", p.tok.pos)
		}
		var exp int
		if _, err := fmt.Sscanf(p.tok.text, "%d", &exp); err != nil || exp < 0 {
			return nil, fmt.Errorf("poly: bad exponent %q", p.tok.text)
		}
		if exp > 64 {
			return nil, fmt.Errorf("poly: exponent %d too large", exp)
		}
		p.next()
		base = base.PowInt(exp)
	}
	return base, nil
}

func (p *parser) parsePrimary() (*Poly, error) {
	switch p.tok.kind {
	case tokInt:
		v := new(big.Int)
		if _, ok := v.SetString(p.tok.text, 10); !ok {
			return nil, fmt.Errorf("poly: bad integer %q", p.tok.text)
		}
		p.next()
		return Const(new(big.Rat).SetInt(v)), nil
	case tokIdent:
		name := p.tok.text
		p.next()
		return Var(name), nil
	case tokOp:
		if p.tok.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokOp || p.tok.text != ")" {
				return nil, fmt.Errorf("poly: missing ')' at offset %d", p.tok.pos)
			}
			p.next()
			return e, nil
		}
	}
	return nil, fmt.Errorf("poly: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}
