package core

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/nest"
	"repro/internal/unrank"
)

// cacheShards is the number of independently locked shards of a
// CollapseCache. Shard selection hashes the signature, so concurrent
// Collapse calls on distinct nests contend only 1/cacheShards of the
// time; identical nests serialize on one shard lock for the few map
// operations of a hit.
const cacheShards = 16

// CollapseCache memoizes the expensive symbolic phase of Collapse — the
// ranking construction, radical solving, root selection and evaluator
// compilation — keyed by NestSignature, i.e. by the structure of the
// collapsed band modulo variable spelling. A hit adapts the cached
// Unranker to the caller's names with a shallow rename (compiled
// evaluators are positional and shared), so collapsing the same nest
// shape repeatedly — sweeps over parameter values, per-rank tools,
// long-running services — pays the compile cost once.
//
// The cache is safe for concurrent use and bounded: each of its shards
// keeps an LRU list and evicts its least recently used entry when over
// capacity.
type CollapseCache struct {
	capPerShard int
	shards      [cacheShards]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu  sync.Mutex
	lru list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element

	// Planner side-table: autotuning decisions cached alongside the
	// compiled artifacts they schedule. Keys extend the NestSignature
	// with the params bucket and core count (so a decision invalidates
	// implicitly when either changes); values are opaque to core — the
	// planner (internal/autotune) owns the concrete type. The table has
	// its own LRU list so plan churn cannot evict compiled artifacts,
	// and vice versa.
	planLRU list.List // values are *planEntry
	plans   map[string]*list.Element
}

type cacheEntry struct {
	sig string
	u   *unrank.Unranker
}

type planEntry struct {
	key string
	v   any
}

// NewCollapseCache returns a cache holding at most capacity compiled
// collapse artifacts (rounded up to the shard grain). capacity <= 0
// selects a default of 64.
func NewCollapseCache(capacity int) *CollapseCache {
	if capacity <= 0 {
		capacity = 64
	}
	per := (capacity + cacheShards - 1) / cacheShards
	c := &CollapseCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].plans = make(map[string]*list.Element)
	}
	return c
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      int64 // lookups served by a cached artifact
	Misses    int64 // lookups that fell through to a full compile
	Evictions int64 // entries dropped by the per-shard LRU bound
	Entries   int   // artifacts currently resident
}

// String renders the counters in a compact fixed-order form.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits %d, misses %d, evictions %d, entries %d",
		s.Hits, s.Misses, s.Evictions, s.Entries)
}

// Stats returns a snapshot of the cache counters.
func (c *CollapseCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	return st
}

func (c *CollapseCache) shard(sig string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(sig))
	return &c.shards[h.Sum32()%cacheShards]
}

// get returns the cached Unranker for sig, promoting the entry to most
// recently used.
func (c *CollapseCache) get(sig string) (*unrank.Unranker, bool) {
	sh := c.shard(sig)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[sig]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).u, true
}

// put stores u under sig, evicting the shard's least recently used entry
// when over capacity. evicted reports how many entries were dropped.
func (c *CollapseCache) put(sig string, u *unrank.Unranker) (evicted int) {
	sh := c.shard(sig)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[sig]; ok {
		// Concurrent miss on the same signature: keep the resident entry
		// (callers already hold independent Unrankers; the artifacts are
		// interchangeable).
		sh.lru.MoveToFront(el)
		return 0
	}
	sh.m[sig] = sh.lru.PushFront(&cacheEntry{sig: sig, u: u})
	for sh.lru.Len() > c.capPerShard {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).sig)
		evicted++
	}
	c.evictions.Add(int64(evicted))
	return evicted
}

// Has reports whether an artifact for sig (a NestSignature) is resident,
// without promoting it in the LRU order — a read-only peek for callers
// that want to report cache effectiveness per request (the serve daemon's
// "cached" response field).
func (c *CollapseCache) Has(sig string) bool {
	sh := c.shard(sig)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[sig]
	return ok
}

// planCapPerShard bounds the planner side-table per shard. Decisions
// are tiny (a schedule triple plus a few floats), so the bound is a
// multiple of the artifact capacity rather than sharing it.
func (c *CollapseCache) planCapPerShard() int { return 4 * c.capPerShard }

// GetPlan returns the cached planner decision stored under key (a
// NestSignature extended with the params bucket and core count),
// promoting it to most recently used.
func (c *CollapseCache) GetPlan(key string) (any, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.plans[key]
	if !ok {
		return nil, false
	}
	sh.planLRU.MoveToFront(el)
	return el.Value.(*planEntry).v, true
}

// PutPlan stores (or replaces) the planner decision under key, evicting
// the shard's least recently used plan when over capacity.
func (c *CollapseCache) PutPlan(key string, v any) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.plans[key]; ok {
		el.Value.(*planEntry).v = v
		sh.planLRU.MoveToFront(el)
		return
	}
	sh.plans[key] = sh.planLRU.PushFront(&planEntry{key: key, v: v})
	cap := c.planCapPerShard()
	for sh.planLRU.Len() > cap {
		back := sh.planLRU.Back()
		sh.planLRU.Remove(back)
		delete(sh.plans, back.Value.(*planEntry).key)
	}
}

// DeletePlan drops the decision under key (a no-op when absent) — the
// online-refinement path invalidates a plan whose prediction deviated
// from the observed makespan.
func (c *CollapseCache) DeletePlan(key string) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.plans[key]; ok {
		sh.planLRU.Remove(el)
		delete(sh.plans, key)
	}
}

// Plans reports how many planner decisions are resident.
func (c *CollapseCache) Plans() int {
	var n int
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.plans)
		sh.mu.Unlock()
	}
	return n
}

// CollapseCached is Collapse routed through cache: a structural hit skips
// the whole symbolic pipeline and adapts the cached artifact to the
// caller's variable names; a miss compiles normally and populates the
// cache. A nil cache, or a request NestSignature declines to canonicalize
// (custom SampleParams), degrades to a plain Collapse. Telemetry, when
// configured in opts, receives cache.hits / cache.misses /
// cache.evictions counters.
func CollapseCached(cache *CollapseCache, n *nest.Nest, c int, opts unrank.Options) (res *Result, err error) {
	if cache == nil {
		return Collapse(n, c, opts)
	}
	defer guard(&res, &err)
	sig, ok := NestSignature(n, c, opts)
	if !ok {
		return Collapse(n, c, opts)
	}
	tel := opts.Telemetry
	if u, hit := cache.get(sig); hit {
		cache.hits.Add(1)
		tel.Counter("cache.hits").Add(1)
		sp := tel.StartSpan("compile", "core.CollapseCached.hit", 0)
		sub := &nest.Nest{
			Params: append([]string(nil), n.Params...),
			Loops:  append([]nest.Loop(nil), n.Loops[:c]...),
		}
		ru := u.Renamed(sub)
		sp.End()
		return &Result{
			Nest:     n,
			C:        c,
			SubNest:  sub,
			Ranking:  ru.Ranking(),
			Total:    ru.Count(),
			Unranker: ru,
		}, nil
	}
	cache.misses.Add(1)
	tel.Counter("cache.misses").Add(1)
	res, err = Collapse(n, c, opts)
	if err == nil {
		if ev := cache.put(sig, res.Unranker); ev > 0 {
			tel.Counter("cache.evictions").Add(int64(ev))
		}
	}
	return res, err
}
